package lfi

import (
	"bufio"
	"context"
	"net"
	"os"
	osexec "os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"lfi/internal/exec"
	"lfi/internal/fleetd"
)

// spawnWorkerProcess re-executes this test binary as a real `lfi serve`
// worker subprocess (the MaybeExecWorker env hook) and returns its
// dialable address and a kill function. Extra env entries layer fleet
// registration (EnvRegister) or a mixed build (EnvPatch) on top.
func spawnWorkerProcess(t *testing.T, extraEnv ...string) (addr string, kill func()) {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := osexec.Command(self)
	cmd.Env = append(os.Environ(), exec.EnvServe+"=127.0.0.1:0", exec.EnvWorkerJobs+"=2")
	cmd.Env = append(cmd.Env, extraEnv...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(out).ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("worker said %q: %v", line, err)
	}
	addr = strings.TrimSpace(strings.TrimPrefix(line, "listening "))
	killed := false
	kill = func() {
		if !killed {
			killed = true
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	t.Cleanup(kill)
	return addr, kill
}

// startRegistry runs an in-process fleetd registry with a fast
// heartbeat so the test observes eviction in milliseconds.
func startRegistry(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go NewFleetRegistry(100*time.Millisecond, 3).Serve(ctx, ln, nil)
	return ln.Addr().String()
}

func exploreSigs(res *ExploreResult) []string {
	out := []string{}
	for _, b := range res.Bugs {
		out = append(out, b.Signature)
	}
	return out
}

// TestFleetServiceSelfRegistration is the fleet service mode
// end-to-end: two real worker subprocesses self-register with a
// registry, a session discovers them through WithFleet alone (no
// address list), one worker is killed mid-campaign — its in-flight
// batches requeue on the survivor and the registry evicts it on missed
// heartbeats — and the campaign still finds exactly the bugs and
// coverage an all-local run finds, folding every run exactly once.
func TestFleetServiceSelfRegistration(t *testing.T) {
	sys, ok := LookupSystem("minidb")
	if !ok {
		t.Fatal("minidb not registered")
	}
	baselineSess := mustSession(t, WithWorkers(4), WithStallBatches(1000))
	baseline, err := baselineSess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}

	regAddr := startRegistry(t)
	_, killA := spawnWorkerProcess(t, exec.EnvRegister+"="+regAddr)
	spawnWorkerProcess(t, exec.EnvRegister+"="+regAddr)

	waitWorkers := func(n int, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if ws, err := fleetd.Workers(regAddr); err == nil && len(ws) == n {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitWorkers(2, "both workers to self-register")

	// Kill worker A as soon as the registry has seen it execute work —
	// mid-campaign if the campaign is still running, which the requeue
	// path then has to absorb.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			ws, err := fleetd.Workers(regAddr)
			if err == nil {
				for _, w := range ws {
					if w.Stats.Batches > 0 {
						killA()
						return
					}
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	sess := mustSession(t, WithFleet(regAddr), WithStallBatches(1000))
	if n := len(sess.Executors()); n != 2 {
		t.Fatalf("session discovered %d backends from the registry, want 2", n)
	}
	res, err := sess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatalf("fleet campaign: %v", err)
	}
	<-killDone

	if !reflect.DeepEqual(exploreSigs(baseline), exploreSigs(res)) {
		t.Fatalf("fleet campaign found different bugs:\nlocal: %v\nfleet: %v", exploreSigs(baseline), exploreSigs(res))
	}
	if res.Final.BlocksCovered != baseline.Final.BlocksCovered {
		t.Fatalf("fleet coverage %d, local %d", res.Final.BlocksCovered, baseline.Final.BlocksCovered)
	}
	// Zero duplicate folds, zero lost runs: the deterministic candidate
	// space executes exactly once each, worker death notwithstanding.
	if res.Executed != baseline.Executed {
		t.Fatalf("fleet executed %d runs, local %d: work lost or folded twice across the requeue", res.Executed, baseline.Executed)
	}

	// The registry evicts the killed worker on missed heartbeats.
	waitWorkers(1, "the killed worker to be evicted")

	// The session published campaign progress for `lfi fleet status`.
	st, err := FleetStatus(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaign == nil {
		t.Fatal("no campaign snapshot published to the registry")
	}
	if got := st.Campaign.Systems["minidb"]; got.Executed == 0 || got.Bugs == 0 {
		t.Fatalf("published campaign status implausible: %+v", got)
	}
}

// TestSessionMixedBuildReconciliation: a worker running a different
// build (inert one-function patch, so behavior is identical but the
// image version and one fingerprint differ) joins the fleet. Its
// outcomes are reconciled by impact analysis — adopted when the edit
// provably cannot reach their coverage, re-executed on a build-matched
// backend otherwise — never silently dropped, and the store ends up
// fully keyed under the coordinator's image: a resume replays
// everything with zero re-execution.
func TestSessionMixedBuildReconciliation(t *testing.T) {
	sys, ok := LookupSystem("minidb")
	if !ok {
		t.Fatal("minidb not registered")
	}
	baselineSess := mustSession(t, WithWorkers(4), WithStallBatches(1000))
	baseline, err := baselineSess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}

	addr, _ := spawnWorkerProcess(t, exec.EnvPatch+"=minidb:errmsg_load")
	remote, err := DialExecutor(addr)
	if err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(t.TempDir(), "store")
	sess := mustSession(t,
		WithExecutors(NewLocalExecutor(2), remote),
		WithStallBatches(1000),
		WithStore(store),
	)
	res, err := sess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}

	if res.Mixed == nil {
		t.Fatal("no mixed-build summary: the patched worker executed nothing?")
	}
	if len(res.Mixed.Images) != 1 || !strings.HasPrefix(res.Mixed.Images[0], "minidb@") {
		t.Fatalf("foreign images seen = %v, want the patched worker's minidb image", res.Mixed.Images)
	}
	if res.Mixed.Migrated+res.Mixed.Revalidated == 0 {
		t.Fatal("mixed-build outcomes neither adopted nor re-validated")
	}
	// Identical results despite the mixed fleet: the patch is inert.
	if !reflect.DeepEqual(exploreSigs(baseline), exploreSigs(res)) {
		t.Fatalf("mixed fleet found different bugs:\nlocal: %v\nmixed: %v", exploreSigs(baseline), exploreSigs(res))
	}
	if res.Final.BlocksCovered != baseline.Final.BlocksCovered {
		t.Fatalf("mixed fleet coverage %d, local %d", res.Final.BlocksCovered, baseline.Final.BlocksCovered)
	}

	// Every outcome — adopted foreign ones included — landed in the
	// store under this build's keys exactly once: a local resume replays
	// the whole space without executing a single run.
	resumed := mustSession(t, WithWorkers(4), WithStallBatches(1000), WithStore(store))
	res2, err := resumed.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Executed != 0 {
		t.Fatalf("resume after mixed-build campaign re-executed %d runs, want 0", res2.Executed)
	}
	if !reflect.DeepEqual(exploreSigs(res), exploreSigs(res2)) {
		t.Fatalf("resume lost bugs: %v vs %v", exploreSigs(res), exploreSigs(res2))
	}
}
