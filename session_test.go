package lfi

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
)

func sessionScenario(t *testing.T, doc string) *Scenario {
	t.Helper()
	s, err := ParseScenarioString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionRun: Session.Run subsumes Campaign/CampaignParallel — it
// runs one test per scenario on the pool, streams every outcome to the
// observer, and reports outcomes in scenario order.
func TestSessionRun(t *testing.T) {
	sys, ok := LookupSystem("minivcs")
	if !ok {
		t.Fatal("minivcs not registered")
	}
	scens := []*Scenario{
		sessionScenario(t, `<scenario name="benign">
		  <trigger id="never" class="CallCountTrigger"><args><n>100000</n></args></trigger>
		  <function name="read" return="-1" errno="EINTR"><reftrigger ref="never" /></function>
		</scenario>`),
		sessionScenario(t, `<scenario name="first-malloc-fails">
		  <trigger id="all" class="CallCountTrigger"><args><from>1</from><to>200</to></args></trigger>
		  <function name="malloc" return="0" errno="ENOMEM"><reftrigger ref="all" /></function>
		</scenario>`),
	}

	var mu sync.Mutex
	streamed := 0
	sess := NewSession(WithWorkers(2), WithObserver(func(system string, o Outcome) {
		mu.Lock()
		defer mu.Unlock()
		if system != "minivcs" {
			t.Errorf("observer saw system %q", system)
		}
		streamed++
	}))
	rep, err := sess.Run(context.Background(), sys, scens)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 2 || streamed != 2 {
		t.Fatalf("want 2 outcomes streamed and reported, got %d reported / %d streamed", len(rep.Outcomes), streamed)
	}
	if rep.Outcomes[0].Scenario.Name != "benign" || rep.Outcomes[1].Scenario.Name != "first-malloc-fails" {
		t.Fatalf("outcomes out of scenario order: %v, %v", rep.Outcomes[0], rep.Outcomes[1])
	}
	if rep.Outcomes[0].Failed() {
		t.Fatalf("benign scenario failed: %v", rep.Outcomes[0])
	}
	if !rep.Outcomes[1].Failed() || rep.Failures != 1 || len(rep.Bugs) != 1 {
		t.Fatalf("malloc-exhaustion run should be the one failure: %+v", rep)
	}

	// A cancelled context stops the session before any test starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err = sess.Run(ctx, sys, scens)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(rep.Outcomes) != 0 {
		t.Fatalf("cancelled session still ran %d tests", len(rep.Outcomes))
	}
}

// TestSessionExploreStoreStats: the session surfaces the sharded
// store's compaction stats; an unchanged-target resume migrates every
// entry and invalidates none.
func TestSessionExploreStoreStats(t *testing.T) {
	sys, ok := LookupSystem("minidb")
	if !ok {
		t.Fatal("minidb not registered")
	}
	sess := NewSession(
		WithWorkers(4),
		WithStallBatches(1000),
		WithStore(filepath.Join(t.TempDir(), "store")),
	)
	first, err := sess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if first.StoreStats == nil {
		t.Fatal("no store stats on a stored run")
	}
	if first.StoreStats.Shards == 0 || first.StoreStats.Entries == 0 || first.StoreStats.Images != 1 {
		t.Fatalf("implausible first-run stats: %s", first.StoreStats)
	}
	if first.StoreStats.Migrated != 0 {
		t.Fatalf("first run migrated %d entries out of thin air", first.StoreStats.Migrated)
	}

	second, err := sess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.Replayed != first.Executed {
		t.Fatalf("resume executed %d / replayed %d, want 0 / %d", second.Executed, second.Replayed, first.Executed)
	}
	st := second.StoreStats
	if st == nil || st.Migrated != st.Entries || st.Invalidated != 0 {
		t.Fatalf("resume should migrate every entry and invalidate none: %s", st)
	}
}
