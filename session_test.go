package lfi

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestMain makes this test binary pool-capable: a copy re-executed by
// NewPoolExecutor with the worker env hook set becomes a protocol
// worker instead of running the tests.
func TestMain(m *testing.M) {
	MaybeExecWorker()
	os.Exit(m.Run())
}

func sessionScenario(t *testing.T, doc string) *Scenario {
	t.Helper()
	s, err := ParseScenarioString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustSession builds a session, failing the test on option errors.
func mustSession(t *testing.T, opts ...SessionOption) *Session {
	t.Helper()
	sess, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

// TestSessionRun: Session.Run subsumes Campaign/CampaignParallel — it
// runs one test per scenario on the pool, streams every outcome to the
// observer, and reports outcomes in scenario order.
func TestSessionRun(t *testing.T) {
	sys, ok := LookupSystem("minivcs")
	if !ok {
		t.Fatal("minivcs not registered")
	}
	scens := []*Scenario{
		sessionScenario(t, `<scenario name="benign">
		  <trigger id="never" class="CallCountTrigger"><args><n>100000</n></args></trigger>
		  <function name="read" return="-1" errno="EINTR"><reftrigger ref="never" /></function>
		</scenario>`),
		sessionScenario(t, `<scenario name="first-malloc-fails">
		  <trigger id="all" class="CallCountTrigger"><args><from>1</from><to>200</to></args></trigger>
		  <function name="malloc" return="0" errno="ENOMEM"><reftrigger ref="all" /></function>
		</scenario>`),
	}

	var mu sync.Mutex
	streamed := 0
	sess := mustSession(t, WithWorkers(2), WithObserver(func(system string, o Outcome) {
		mu.Lock()
		defer mu.Unlock()
		if system != "minivcs" {
			t.Errorf("observer saw system %q", system)
		}
		streamed++
	}))
	rep, err := sess.Run(context.Background(), sys, scens)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 2 || streamed != 2 {
		t.Fatalf("want 2 outcomes streamed and reported, got %d reported / %d streamed", len(rep.Outcomes), streamed)
	}
	if rep.Outcomes[0].Scenario.Name != "benign" || rep.Outcomes[1].Scenario.Name != "first-malloc-fails" {
		t.Fatalf("outcomes out of scenario order: %v, %v", rep.Outcomes[0], rep.Outcomes[1])
	}
	if rep.Outcomes[0].Failed() {
		t.Fatalf("benign scenario failed: %v", rep.Outcomes[0])
	}
	if !rep.Outcomes[1].Failed() || rep.Failures != 1 || len(rep.Bugs) != 1 {
		t.Fatalf("malloc-exhaustion run should be the one failure: %+v", rep)
	}

	// A cancelled context stops the session before any test starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err = sess.Run(ctx, sys, scens)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(rep.Outcomes) != 0 {
		t.Fatalf("cancelled session still ran %d tests", len(rep.Outcomes))
	}
}

// TestSessionExploreStoreStats: the session surfaces the sharded
// store's compaction stats; an unchanged-target resume migrates every
// entry and invalidates none.
func TestSessionExploreStoreStats(t *testing.T) {
	sys, ok := LookupSystem("minidb")
	if !ok {
		t.Fatal("minidb not registered")
	}
	sess := mustSession(t,
		WithWorkers(4),
		WithStallBatches(1000),
		WithStore(filepath.Join(t.TempDir(), "store")),
	)
	first, err := sess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if first.StoreStats == nil {
		t.Fatal("no store stats on a stored run")
	}
	if first.StoreStats.Shards == 0 || first.StoreStats.Entries == 0 || first.StoreStats.Images != 1 {
		t.Fatalf("implausible first-run stats: %s", first.StoreStats)
	}
	if first.StoreStats.Migrated != 0 {
		t.Fatalf("first run migrated %d entries out of thin air", first.StoreStats.Migrated)
	}

	second, err := sess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.Replayed != first.Executed {
		t.Fatalf("resume executed %d / replayed %d, want 0 / %d", second.Executed, second.Replayed, first.Executed)
	}
	st := second.StoreStats
	if st == nil || st.Migrated != st.Entries || st.Invalidated != 0 {
		t.Fatalf("resume should migrate every entry and invalidate none: %s", st)
	}
}

// TestNewSessionValidation: nonsensical options fail fast from
// NewSession with a clear error instead of panicking or stalling
// mid-campaign.
func TestNewSessionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []SessionOption
		want string
	}{
		{"zero workers", []SessionOption{WithWorkers(0)}, "WithWorkers"},
		{"negative workers", []SessionOption{WithWorkers(-3)}, "WithWorkers"},
		{"negative budget", []SessionOption{WithBudget(-1)}, "WithBudget"},
		{"negative batch", []SessionOption{WithBatchSize(-2)}, "WithBatchSize"},
		{"negative stall", []SessionOption{WithStallBatches(-2)}, "WithStallBatches"},
		{"nil executor", []SessionOption{WithExecutors(nil)}, "nil executor"},
		{"no executors", []SessionOption{WithExecutors()}, "no executors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := NewSession(tc.opts...)
			if err == nil {
				sess.Close()
				t.Fatalf("NewSession accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the bad option (%q)", err, tc.want)
			}
		})
	}

	// An unwritable store root: a regular file where the directory
	// should go.
	blocked := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if sess, err := NewSession(WithStore(filepath.Join(blocked, "store"))); err == nil {
		sess.Close()
		t.Fatal("NewSession accepted an unwritable store root")
	} else if !strings.Contains(err.Error(), "WithStore") {
		t.Fatalf("store error does not name the option: %q", err)
	}
}

// startSessionLoopback runs an in-process `lfi serve` worker and dials
// it.
func startSessionLoopback(t *testing.T, workers int) Executor {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go ServeExecutor(ctx, ln, workers, nil)
	r, err := DialExecutor(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSessionExecutorEquivalence is the public-API face of the
// executor equivalence property: Session.Run through the default local
// backend, a subprocess pool, and a loopback `lfi serve` worker must
// produce identical reports — outcome strings, failure counts and
// worker-computed bug signatures — for the same scenarios and seed.
func TestSessionExecutorEquivalence(t *testing.T) {
	sys, ok := LookupSystem("minidb")
	if !ok {
		t.Fatal("minidb not registered")
	}
	scens := []*Scenario{
		sessionScenario(t, `<scenario name="first-read-fails">
		  <trigger id="nth" class="CallCountTrigger"><args><n>1</n></args></trigger>
		  <function name="read" return="-1" errno="EIO"><reftrigger ref="nth" /></function>
		</scenario>`),
		sessionScenario(t, `<scenario name="malloc-exhaustion">
		  <trigger id="all" class="CallCountTrigger"><args><from>1</from><to>200</to></args></trigger>
		  <function name="malloc" return="0" errno="ENOMEM"><reftrigger ref="all" /></function>
		</scenario>`),
		sessionScenario(t, `<scenario name="benign">
		  <trigger id="never" class="CallCountTrigger"><args><n>100000</n></args></trigger>
		  <function name="read" return="-1" errno="EINTR"><reftrigger ref="never" /></function>
		</scenario>`),
	}
	pool, err := NewPoolExecutor(2)
	if err != nil {
		t.Fatal(err)
	}
	report := func(name string, e Executor) string {
		t.Helper()
		opts := []SessionOption{WithSeed(11)}
		if e != nil {
			opts = append(opts, WithExecutor(e))
		}
		sess := mustSession(t, opts...)
		rep, err := sess.Run(context.Background(), sys, scens)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var b bytes.Buffer
		for _, o := range rep.Outcomes {
			b.WriteString(o.String())
			b.WriteByte('\n')
		}
		bugs, _ := json.Marshal(rep.Bugs)
		b.Write(bugs)
		return b.String()
	}
	local := report("local", nil)
	if got := report("pool", pool); got != local {
		t.Fatalf("pool report diverges from local:\n%s\nvs\n%s", got, local)
	}
	if got := report("remote", startSessionLoopback(t, 2)); got != local {
		t.Fatalf("remote report diverges from local:\n%s\nvs\n%s", got, local)
	}
}

// TestSessionExploreRemoteMatchesLocal: exploring minidb entirely on a
// loopback remote worker finds exactly the bugs the local explorer
// finds, and a second session resumes from the shared store with zero
// re-execution — the store lives with the session, not the worker.
func TestSessionExploreRemoteMatchesLocal(t *testing.T) {
	sys, ok := LookupSystem("minidb")
	if !ok {
		t.Fatal("minidb not registered")
	}
	localSess := mustSession(t, WithWorkers(4), WithStallBatches(1000))
	localRes, err := localSess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}

	store := filepath.Join(t.TempDir(), "store")
	remoteSess := mustSession(t,
		WithExecutor(startSessionLoopback(t, 4)),
		WithStallBatches(1000),
		WithStore(store),
	)
	remoteRes, err := remoteSess.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	sigs := func(res *ExploreResult) []string {
		var out []string
		for _, b := range res.Bugs {
			out = append(out, b.Signature)
		}
		return out
	}
	lw, rw := sigs(localRes), sigs(remoteRes)
	if strings.Join(lw, "\n") != strings.Join(rw, "\n") {
		t.Fatalf("remote exploration found different bugs:\nlocal:  %v\nremote: %v", lw, rw)
	}
	if remoteRes.Executed == 0 {
		t.Fatal("remote exploration executed nothing")
	}

	resumed := mustSession(t, WithWorkers(4), WithStallBatches(1000), WithStore(store))
	res, err := resumed.Explore(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || res.Replayed != remoteRes.Executed {
		t.Fatalf("resume after remote run executed %d / replayed %d, want 0 / %d",
			res.Executed, res.Replayed, remoteRes.Executed)
	}
}
