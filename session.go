package lfi

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/explore"
	"lfi/internal/system"
)

// System describes one registered target system: how to build its
// binary, adapt it to the test controller (with or without coverage),
// which library profiles it links against, and which stock Table-1
// bugs the toolchain must rediscover. Built-in systems self-register
// via internal/system/all; external packages add their own with
// RegisterSystem and become first-class `lfi explore` / Session
// targets with no engine changes.
type System = system.Descriptor

// StockBug is a known bug a System descriptor advertises.
type StockBug = system.StockBug

var (
	// RegisterSystem adds a target system to the global registry
	// (database/sql-driver style; call it from your package's init).
	RegisterSystem = system.Register
	// LookupSystem returns the descriptor registered under name.
	LookupSystem = system.Lookup
	// Systems returns every registered system, sorted by name.
	Systems = system.All
	// SystemNames returns the registered system names, sorted.
	SystemNames = system.Names
)

// Session is the unified, context-aware entry point of the test
// controller and the fault-space explorer. One Session carries the
// campaign-wide knobs — store root, worker-pool width, run budget,
// seed, logging — and applies them to every system it tests, so
// single-scenario runs, scenario campaigns, per-system exploration and
// cross-system exploration (`lfi explore -all`) all flow through the
// same two methods, Run and Explore/ExploreAll.
//
// A Session is safe for sequential reuse across systems (that is the
// -all workflow: one session, one shared store root, one worker pool);
// its methods must not be called concurrently with each other.
type Session struct {
	store    string
	workers  int
	budget   int
	batch    int
	stall    int
	seed     int64
	log      io.Writer
	observer func(system string, o Outcome)
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithStore sets the persistent store root shared by every system the
// session explores (each system keeps its own shard directory under
// it); "" disables persistence.
func WithStore(root string) SessionOption { return func(s *Session) { s.store = root } }

// WithWorkers sets the shared campaign worker-pool width (default
// GOMAXPROCS).
func WithWorkers(n int) SessionOption { return func(s *Session) { s.workers = n } }

// WithBudget bounds executed test runs: per Explore call, and in total
// across systems for ExploreAll. Replayed store outcomes are free.
// 0 means unlimited.
func WithBudget(n int) SessionOption { return func(s *Session) { s.budget = n } }

// WithBatchSize sets the explorer's scheduling batch size (default 16).
func WithBatchSize(n int) SessionOption { return func(s *Session) { s.batch = n } }

// WithStallBatches stops exploration after n consecutive batches with
// no new coverage, bugs, or mutants (default 3).
func WithStallBatches(n int) SessionOption { return func(s *Session) { s.stall = n } }

// WithSeed fixes the runtime random source of every test the session
// runs, making Random triggers reproducible across runs and workers.
// (For a bare Runtime outside a session, use RuntimeSeed.)
func WithSeed(seed int64) SessionOption { return func(s *Session) { s.seed = seed } }

// WithLog streams per-batch exploration progress to w.
func WithLog(w io.Writer) SessionOption { return func(s *Session) { s.log = w } }

// WithObserver streams every completed Run outcome to fn as workers
// finish (completion order, serialized); the final report still lists
// outcomes in scenario order.
func WithObserver(fn func(system string, o Outcome)) SessionOption {
	return func(s *Session) { s.observer = fn }
}

// NewSession builds a Session from functional options.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{}
	for _, opt := range opts {
		opt(s)
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	return s
}

// RunReport is Run's final summary.
type RunReport struct {
	System   string
	Outcomes []Outcome // scenario order
	Failures int
	Bugs     []Bug // distinct failure signatures
	Elapsed  time.Duration
}

// Run executes one test per scenario against sys on the session's
// worker pool — the unified replacement for RunOne, Campaign and
// CampaignParallel. Outcomes stream to the WithObserver callback as
// they complete; the report lists them in scenario order (identical to
// a sequential campaign under the session seed). On cancellation,
// in-flight tests finish and the report carries the completed prefix
// together with ctx.Err().
func (s *Session) Run(ctx context.Context, sys *System, scenarios []*Scenario) (*RunReport, error) {
	begin := time.Now()
	tgt := sys.Target()
	var mu sync.Mutex
	outs, err := controller.RunNContext(ctx, s.workers, len(scenarios), func(i int) (Outcome, error) {
		o, rerr := controller.RunOne(tgt, scenarios[i], core.WithSeed(s.seed))
		if rerr != nil {
			return o, fmt.Errorf("session %s: scenario %q: %w", sys.Name, scenarios[i].Name, rerr)
		}
		if s.observer != nil {
			// The deferred unlock keeps a panicking observer from
			// wedging the pool: the panic re-raises through RunNContext
			// with the mutex released.
			func() {
				mu.Lock()
				defer mu.Unlock()
				s.observer(sys.Name, o)
			}()
		}
		return o, nil
	})
	rep := &RunReport{
		System:   sys.Name,
		Outcomes: outs,
		Bugs:     controller.DistinctBugs(sys.Name, outs),
		Elapsed:  time.Since(begin),
	}
	for _, o := range outs {
		if o.Failed() {
			rep.Failures++
		}
	}
	return rep, err
}

// config adapts the session knobs to one system's exploration config.
func (s *Session) config(sys *System) ExploreConfig {
	cfg := explore.ConfigForSystem(sys)
	cfg.Store = s.store
	cfg.Workers = s.workers
	cfg.BatchSize = s.batch
	cfg.StallBatches = s.stall
	cfg.Seed = s.seed
	cfg.Log = s.log
	return cfg
}

// Explore runs the coverage-guided fault-space explorer on one system.
// Cancellation flushes the sharded store cleanly (at most the
// interrupted batch is lost) and returns the partial result with
// ctx.Err(), so the next run resumes with no re-execution.
func (s *Session) Explore(ctx context.Context, sys *System) (*ExploreResult, error) {
	cfg := s.config(sys)
	cfg.MaxRuns = s.budget
	return explore.ExploreContext(ctx, cfg)
}

// ExploreAll explores several systems (default: every registered one)
// in one session: a shared worker pool, a shared store root, and a
// shared budget, with batches interleaved across systems by
// uncovered-recovery-block priority. Cancellation flushes every
// system's store cleanly and returns the partial result with
// ctx.Err().
func (s *Session) ExploreAll(ctx context.Context, systems ...*System) (*ExploreAllResult, error) {
	if len(systems) == 0 {
		systems = Systems()
	}
	cfgs := make([]ExploreConfig, 0, len(systems))
	seen := make(map[string]bool, len(systems))
	for _, sys := range systems {
		if seen[sys.Name] {
			continue // exploring a system twice in one session is a no-op
		}
		seen[sys.Name] = true
		cfgs = append(cfgs, s.config(sys))
	}
	return explore.ExploreAllContext(ctx, cfgs, s.budget)
}
