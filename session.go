package lfi

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"lfi/internal/controller"
	"lfi/internal/exec"
	"lfi/internal/explore"
	"lfi/internal/system"
)

// System describes one registered target system: how to build its
// binary, adapt it to the test controller (with or without coverage),
// which library profiles it links against, and which stock Table-1
// bugs the toolchain must rediscover. Built-in systems self-register
// via internal/system/all; external packages add their own with
// RegisterSystem and become first-class `lfi explore` / Session
// targets with no engine changes.
type System = system.Descriptor

// StockBug is a known bug a System descriptor advertises.
type StockBug = system.StockBug

var (
	// RegisterSystem adds a target system to the global registry
	// (database/sql-driver style; call it from your package's init).
	RegisterSystem = system.Register
	// LookupSystem returns the descriptor registered under name.
	LookupSystem = system.Lookup
	// Systems returns every registered system, sorted by name.
	Systems = system.All
	// SystemNames returns the registered system names, sorted.
	SystemNames = system.Names
)

// Session is the unified, context-aware entry point of the test
// controller and the fault-space explorer. One Session carries the
// campaign-wide knobs — store root, execution backends, run budget,
// seed, logging — and applies them to every system it tests, so
// single-scenario runs, scenario campaigns, per-system exploration and
// cross-system exploration (`lfi explore -all`) all flow through the
// same two methods, Run and Explore/ExploreAll.
//
// Where tests execute is pluggable: by default a session runs batches
// on the in-process worker pool, but WithExecutor/WithExecutors swap in
// or add crash-isolating subprocess pools (NewPoolExecutor) and remote
// `lfi serve` workers (DialExecutor). Mixed backends are scheduled by a
// per-system cost model; because all backends produce byte-identical
// outcomes for the same batch and seed, the mix never changes results,
// only speed. Close releases the backends.
//
// A Session is safe for sequential reuse across systems (that is the
// -all workflow: one session, one shared store root, one backend
// fleet); its methods must not be called concurrently with each other.
type Session struct {
	store    string
	workers  int
	budget   int
	batch    int
	stall    int
	impact   bool
	seed     int64
	log      io.Writer
	observer func(system string, o Outcome)
	execs    []Executor
	fleet    *exec.Fleet

	// Fleet service mode (WithFleet): the registry address, the
	// goroutine keeping the executor fleet in sync with the registry's
	// live worker set, and the campaign status publisher (see fleet.go).
	fleetReg     string
	fleetWatcher *fleetWatch
	publisher    *fleetPublisher
}

// SessionOption configures a Session. Options validate their arguments:
// NewSession fails fast on a nonsensical knob (non-positive workers, a
// negative budget, an unwritable store root) instead of panicking or
// stalling mid-campaign.
type SessionOption func(*Session) error

// WithStore sets the persistent store root shared by every system the
// session explores (each system keeps its own shard directory under
// it); "" disables persistence. NewSession verifies the root is
// creatable and writable.
func WithStore(root string) SessionOption {
	return func(s *Session) error { s.store = root; return nil }
}

// WithWorkers sets the in-process worker-pool width (default
// GOMAXPROCS). It must be positive; it sizes the default local
// execution backend.
func WithWorkers(n int) SessionOption {
	return func(s *Session) error {
		if n <= 0 {
			return fmt.Errorf("lfi: WithWorkers(%d): worker pool width must be positive", n)
		}
		s.workers = n
		return nil
	}
}

// WithBudget bounds executed test runs: per Explore call, and in total
// across systems for ExploreAll. Replayed store outcomes are free.
// 0 means unlimited; negative budgets are rejected.
func WithBudget(n int) SessionOption {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("lfi: WithBudget(%d): budget cannot be negative (0 means unlimited)", n)
		}
		s.budget = n
		return nil
	}
}

// WithBatchSize sets the explorer's scheduling batch size (default 16).
func WithBatchSize(n int) SessionOption {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("lfi: WithBatchSize(%d): batch size cannot be negative", n)
		}
		s.batch = n
		return nil
	}
}

// WithStallBatches stops exploration after n consecutive batches with
// no new coverage, bugs, or mutants (default 3).
func WithStallBatches(n int) SessionOption {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("lfi: WithStallBatches(%d): stall threshold cannot be negative", n)
		}
		s.stall = n
		return nil
	}
}

// WithImpact enables change-impact-aware store invalidation on resume
// (`lfi explore -impact`): instead of invalidating whole shards, the
// explorer diffs the binary's per-function fingerprints against the
// ones the store recorded for its previous image, walks the CFG to the
// recovery blocks the edit can reach, migrates cached entries whose
// recorded coverage is provably disjoint, and re-validates only the
// rest — scheduled ahead of fresh candidates by the persisted cost
// model. When the edit cannot be bounded (indirect branch, removed
// function, a store without fingerprints) the run falls back to the
// default whole-shard invalidation; correctness never depends on the
// analysis. Meaningful only together with WithStore.
func WithImpact() SessionOption {
	return func(s *Session) error { s.impact = true; return nil }
}

// WithSeed fixes the runtime random source of every test the session
// runs, making Random triggers reproducible across runs, workers and
// execution backends. (For a bare Runtime outside a session, use
// RuntimeSeed.)
func WithSeed(seed int64) SessionOption {
	return func(s *Session) error { s.seed = seed; return nil }
}

// WithLog streams per-batch exploration progress to w.
func WithLog(w io.Writer) SessionOption {
	return func(s *Session) error { s.log = w; return nil }
}

// WithObserver streams every completed Run outcome to fn as backends
// finish (completion order, serialized); the final report still lists
// outcomes in scenario order.
func WithObserver(fn func(system string, o Outcome)) SessionOption {
	return func(s *Session) error { s.observer = fn; return nil }
}

// WithExecutor makes e the session's only execution backend, replacing
// the default in-process pool. Combine backends with WithExecutors.
func WithExecutor(e Executor) SessionOption { return WithExecutors(e) }

// WithExecutors adds execution backends to the session. Batches fan
// out across the whole mix — local pools, crash-isolating subprocess
// pools, remote `lfi serve` workers — routed by the per-system cost
// model; a backend that dies has its in-flight work requeued on the
// survivors. The session takes ownership: Close closes every backend.
func WithExecutors(execs ...Executor) SessionOption {
	return func(s *Session) error {
		if len(execs) == 0 {
			return fmt.Errorf("lfi: WithExecutors: no executors given")
		}
		for _, e := range execs {
			if e == nil {
				return fmt.Errorf("lfi: WithExecutors: nil executor")
			}
		}
		s.execs = append(s.execs, execs...)
		return nil
	}
}

// NewSession builds a Session from functional options, failing fast on
// invalid ones: a non-positive WithWorkers, a negative WithBudget, an
// unwritable WithStore root, or a nil executor all error here rather
// than misbehaving mid-campaign.
func NewSession(opts ...SessionOption) (*Session, error) {
	s := &Session{}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.workers == 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.store != "" {
		// Probe the store root now: a typo'd or read-only path should
		// fail session construction, not the first mid-campaign flush.
		if err := os.MkdirAll(s.store, 0o755); err != nil {
			return nil, fmt.Errorf("lfi: WithStore(%q): store root not creatable: %w", s.store, err)
		}
		probe, err := os.CreateTemp(s.store, ".lfi-probe-*")
		if err != nil {
			return nil, fmt.Errorf("lfi: WithStore(%q): store root not writable: %w", s.store, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	if len(s.execs) == 0 && s.fleetReg == "" {
		// No explicit backends: default to the in-process pool. In fleet
		// mode the backends come from registry discovery instead — an
		// empty initial fleet is legitimate there (workers may join a
		// heartbeat later).
		s.execs = []Executor{exec.NewLocal(s.workers)}
	}
	s.fleet = exec.NewFleet(s.execs...)
	if s.fleetReg != "" {
		if err := s.initFleet(); err != nil {
			s.fleet.Close()
			return nil, err
		}
	}
	return s, nil
}

// Close releases the session's execution backends — worker
// subprocesses are reaped, remote connections closed. The session must
// not be used afterwards. Sessions with only the default local backend
// may skip Close; it is then a no-op.
func (s *Session) Close() error {
	if s.fleetWatcher != nil {
		s.fleetWatcher.close()
	}
	return s.fleet.Close()
}

// Executors reports the session's execution backends and their
// capability metadata, in dispatch (latency) order.
func (s *Session) Executors() []ExecutorInfo { return s.fleet.Executors() }

// RunReport is Run's final summary.
type RunReport struct {
	System   string
	Outcomes []Outcome // scenario order
	Failures int
	Bugs     []Bug // distinct failure signatures
	Elapsed  time.Duration
}

// Run executes one test per scenario against sys, fanned across the
// session's execution backends — the unified replacement for the old
// RunOne, Campaign and CampaignParallel entry points. Outcomes stream
// to the WithObserver callback as they complete; the report lists them
// in scenario order, identical to a sequential campaign under the
// session seed regardless of which backend ran which slice. On
// cancellation, in-flight tests finish (remote batches drain) and the
// report carries the completed prefix together with ctx.Err().
func (s *Session) Run(ctx context.Context, sys *System, scenarios []*Scenario) (*RunReport, error) {
	begin := time.Now()
	b := &exec.Batch{System: sys.Name, Seed: s.seed, Scenarios: scenarios}
	if s.observer != nil {
		b.Observe = func(i int, o *exec.Outcome) {
			s.observer(sys.Name, o.Controller(scenarios[i]))
		}
	}
	outs, err := s.fleet.Run(ctx, b)
	rep := &RunReport{System: sys.Name}
	for i, o := range outs {
		if o == nil {
			break // contiguous prefix: everything before the first gap
		}
		rep.Outcomes = append(rep.Outcomes, o.Controller(scenarios[i]))
		if o.Failed() {
			rep.Failures++
		}
	}
	rep.Bugs = distinctExecBugs(sys.Name, outs[:len(rep.Outcomes)])
	rep.Elapsed = time.Since(begin)
	return rep, err
}

// distinctExecBugs deduplicates failures by their worker-computed
// signature — the backend-independent analogue of
// controller.DistinctBugs (whose recomputation would need the
// injection log, which remote outcomes do not carry).
func distinctExecBugs(systemName string, outs []*exec.Outcome) []Bug {
	bySig := map[string]*controller.Bug{}
	for _, o := range outs {
		if o == nil || o.Signature == "" {
			continue
		}
		b, ok := bySig[o.Signature]
		if !ok {
			b = &controller.Bug{System: systemName, Signature: o.Signature}
			bySig[o.Signature] = b
		}
		b.Scenarios = append(b.Scenarios, o.Name)
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]Bug, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, *bySig[sig])
	}
	return out
}

// config adapts the session knobs to one system's exploration config.
func (s *Session) config(sys *System) ExploreConfig {
	cfg := explore.ConfigForSystem(sys)
	cfg.Store = s.store
	cfg.Workers = s.workers
	cfg.BatchSize = s.batch
	cfg.StallBatches = s.stall
	cfg.Impact = s.impact
	cfg.Seed = s.seed
	cfg.Log = s.log
	cfg.Exec = s.fleet
	if s.publisher != nil {
		cfg.Status = s.publisher.publish
	}
	return cfg
}

// Diff classifies the cached candidate space against the session's
// store without executing a single test or writing anything — the
// engine behind `lfi diff`: which candidates replay as-is, which would
// migrate intact under WithImpact, which must re-validate, and which
// were never cached. It requires WithStore.
func (s *Session) Diff(sys *System) (*DiffReport, error) {
	return explore.Diff(s.config(sys))
}

// Lint runs the whole-program interprocedural error-propagation
// analysis on one system without executing a single test — the engine
// behind `lfi lint`: every library call site classified by the paper's
// windowed Algorithm 1 and then refined across frames (checks beyond
// the window, errors checked in a caller, errors provably swallowed
// with their recovery blocks dead). With WithStore, per-function
// summaries persist in the image manifest and a later lint of an
// edited binary recomputes only the changed functions and their
// call-graph ancestors.
func (s *Session) Lint(sys *System) (*LintReport, error) {
	return explore.Lint(s.config(sys))
}

// Explore runs the coverage-guided fault-space explorer on one system,
// batches dispatched across the session's execution backends.
// Cancellation flushes the sharded store cleanly — completed local runs
// and drained remote responses included; only candidates that never ran
// are left for the next session — and returns the partial result with
// ctx.Err(), so the next run resumes with no re-execution.
func (s *Session) Explore(ctx context.Context, sys *System) (*ExploreResult, error) {
	cfg := s.config(sys)
	cfg.MaxRuns = s.budget
	return explore.ExploreContext(ctx, cfg)
}

// ExploreAll explores several systems (default: every registered one)
// in one session: a shared backend fleet, a shared store root, and a
// shared budget, with batches interleaved across systems by the cost
// model — expected coverage gain per second, seeded by uncovered
// recovery blocks and updated from observed runs/sec and gain/run.
// Cancellation flushes every system's store cleanly and returns the
// partial result with ctx.Err().
func (s *Session) ExploreAll(ctx context.Context, systems ...*System) (*ExploreAllResult, error) {
	if len(systems) == 0 {
		systems = Systems()
	}
	cfgs := make([]ExploreConfig, 0, len(systems))
	seen := make(map[string]bool, len(systems))
	for _, sys := range systems {
		if seen[sys.Name] {
			continue // exploring a system twice in one session is a no-op
		}
		seen[sys.Name] = true
		cfgs = append(cfgs, s.config(sys))
	}
	return explore.ExploreAllContext(ctx, cfgs, s.budget)
}
