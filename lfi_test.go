package lfi

import (
	"fmt"
	"strings"
	"testing"

	"lfi/internal/apps/minidb"
	"lfi/internal/controller"
	"lfi/internal/errno"
	"lfi/internal/libsim"
	"lfi/internal/libspec"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build a process, parse a scenario, install a
// runtime, observe the injection.
func TestFacadeEndToEnd(t *testing.T) {
	proc := NewProcess(1 << 20)
	proc.MustWriteFile("/f", []byte("payload"))
	th := proc.NewThread("app", "main")

	s, err := ParseScenarioString(`<scenario>
	  <trigger id="n1" class="CallCountTrigger"><args><n>1</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="n1" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(proc, s)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()

	fd := th.Open("/f", libsim.O_RDONLY)
	if n := th.Read(fd, make([]byte, 4)); n != -1 || th.Errno() != errno.EIO {
		t.Fatalf("injection missed: n=%d errno=%v", n, th.Errno())
	}
	if rt.Log().Len() != 1 {
		t.Fatal("log empty")
	}
}

// TestFacadeCustomTrigger registers a custom trigger through the public
// registry and drives it from a scenario.
func TestFacadeCustomTrigger(t *testing.T) {
	type bigReads struct {
		TriggerBase
	}
	evalBig := func(call *Call) bool { return call.Arg(2) >= 1024 }
	RegisterTrigger("FacadeBigReads", func() Trigger {
		return triggerFunc(evalBig)
	})
	_ = bigReads{}

	proc := NewProcess(1 << 20)
	proc.MustWriteFile("/f", make([]byte, 4096))
	th := proc.NewThread("app", "main")
	s, err := ParseScenarioString(`<scenario>
	  <trigger id="big" class="FacadeBigReads" />
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="big" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(proc, s)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()

	fd := th.Open("/f", libsim.O_RDONLY)
	if th.Read(fd, make([]byte, 16)) == -1 {
		t.Fatal("small read injected")
	}
	if th.Read(fd, make([]byte, 2048)) != -1 {
		t.Fatal("big read not injected")
	}
}

// triggerFunc adapts a closure to the public Trigger interface.
type triggerFunc func(*Call) bool

func (f triggerFunc) Init(*TriggerArgs) error { return nil }
func (f triggerFunc) Eval(c *Call) bool       { return f(c) }

// TestFacadeAnalyzerPipeline runs profile -> analyze -> generate
// through the re-exported names.
func TestFacadeAnalyzerPipeline(t *testing.T) {
	libc := ProfileBinary(libspec.BuildLibc())
	if libc.Func("read") == nil {
		t.Fatal("profiler broken")
	}
	a := &Analyzer{}
	bin := analyzedBinary()
	rep := a.Analyze(bin, libc)
	_, _, not := rep.ByClass()
	if len(not) == 0 {
		t.Fatal("no unchecked sites found")
	}
	scens := GenerateScenarios(bin, not, libc)
	if len(scens) == 0 {
		t.Fatal("no scenarios generated")
	}
	for _, s := range scens {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFacadeControllerRun drives the controller through the facade.
func TestFacadeControllerRun(t *testing.T) {
	tgt := Target{
		Name: "toy",
		Start: func() (*Process, func() error) {
			c := NewProcess(0)
			c.MustWriteFile("/f", []byte("x"))
			return c, func() error {
				th := c.NewThread("toy", "main")
				fd := th.Open("/f", libsim.O_RDONLY)
				th.Read(fd, make([]byte, 1))
				return nil
			}
		},
	}
	out, err := controller.RunOne(tgt, nil)
	if err != nil || out.Failed() {
		t.Fatalf("clean run: %v %v", err, out)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatal("outcome rendering")
	}
}

// TestParallelCampaignBitIdentical runs the Table 1 minidb random
// campaign sequentially and on an 8-worker pool under the same seed and
// demands byte-identical DistinctBugs output and per-run injection logs
// — the determinism contract that makes the parallel engine a drop-in.
func TestParallelCampaignBitIdentical(t *testing.T) {
	var scens []*Scenario
	for _, fn := range []struct {
		name, errno string
		retval      int64
	}{
		{"close", "EIO", -1},
		{"read", "EIO", -1},
		{"malloc", "ENOMEM", 0},
	} {
		for seed := 0; seed < 4; seed++ {
			s, err := ParseScenarioString(fmt.Sprintf(`<scenario name="random-%s-%d">
			  <trigger id="rnd" class="RandomTrigger"><args><probability>0.1</probability></args></trigger>
			  <function name="%s" return="%d" errno="%s"><reftrigger ref="rnd" /></function>
			</scenario>`, fn.name, seed, fn.name, fn.retval, fn.errno))
			if err != nil {
				t.Fatal(err)
			}
			scens = append(scens, s)
		}
	}
	seq, err := controller.Campaign(minidb.Target(), scens, RuntimeSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	par, err := controller.CampaignParallel(minidb.Target(), scens, 8, RuntimeSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("outcome counts: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].String() != par[i].String() {
			t.Fatalf("outcome %d:\nsequential: %s\nparallel:   %s", i, seq[i], par[i])
		}
		var seqLog, parLog string
		if seq[i].Log != nil {
			seqLog = seq[i].Log.String()
		}
		if par[i].Log != nil {
			parLog = par[i].Log.String()
		}
		if seqLog != parLog {
			t.Fatalf("log %d diverges:\n%s\nvs\n%s", i, seqLog, parLog)
		}
	}
	sb := fmt.Sprintf("%+v", DistinctBugs("minidb", seq))
	pb := fmt.Sprintf("%+v", DistinctBugs("minidb", par))
	if sb != pb {
		t.Fatalf("DistinctBugs diverge:\n%s\nvs\n%s", sb, pb)
	}
}

// TestTriggerClassesExported sanity-checks the registry surface.
func TestTriggerClassesExported(t *testing.T) {
	classes := TriggerClasses()
	found := 0
	for _, c := range classes {
		switch c {
		case "CallStackTrigger", "RandomTrigger", "SingletonTrigger",
			"DistributedTrigger", "ProgramStateTrigger", "CallCountTrigger":
			found++
		}
	}
	if found != 6 {
		t.Fatalf("stock triggers missing from registry: %v", classes)
	}
}
