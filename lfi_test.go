package lfi

import (
	"strings"
	"testing"

	"lfi/internal/errno"
	"lfi/internal/libsim"
	"lfi/internal/libspec"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build a process, parse a scenario, install a
// runtime, observe the injection.
func TestFacadeEndToEnd(t *testing.T) {
	proc := NewProcess(1 << 20)
	proc.MustWriteFile("/f", []byte("payload"))
	th := proc.NewThread("app", "main")

	s, err := ParseScenarioString(`<scenario>
	  <trigger id="n1" class="CallCountTrigger"><args><n>1</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="n1" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(proc, s)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()

	fd := th.Open("/f", libsim.O_RDONLY)
	if n := th.Read(fd, make([]byte, 4)); n != -1 || th.Errno() != errno.EIO {
		t.Fatalf("injection missed: n=%d errno=%v", n, th.Errno())
	}
	if rt.Log().Len() != 1 {
		t.Fatal("log empty")
	}
}

// TestFacadeCustomTrigger registers a custom trigger through the public
// registry and drives it from a scenario.
func TestFacadeCustomTrigger(t *testing.T) {
	type bigReads struct {
		TriggerBase
	}
	evalBig := func(call *Call) bool { return call.Arg(2) >= 1024 }
	RegisterTrigger("FacadeBigReads", func() Trigger {
		return triggerFunc(evalBig)
	})
	_ = bigReads{}

	proc := NewProcess(1 << 20)
	proc.MustWriteFile("/f", make([]byte, 4096))
	th := proc.NewThread("app", "main")
	s, err := ParseScenarioString(`<scenario>
	  <trigger id="big" class="FacadeBigReads" />
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="big" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(proc, s)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()

	fd := th.Open("/f", libsim.O_RDONLY)
	if th.Read(fd, make([]byte, 16)) == -1 {
		t.Fatal("small read injected")
	}
	if th.Read(fd, make([]byte, 2048)) != -1 {
		t.Fatal("big read not injected")
	}
}

// triggerFunc adapts a closure to the public Trigger interface.
type triggerFunc func(*Call) bool

func (f triggerFunc) Init(*TriggerArgs) error { return nil }
func (f triggerFunc) Eval(c *Call) bool       { return f(c) }

// TestFacadeAnalyzerPipeline runs profile -> analyze -> generate
// through the re-exported names.
func TestFacadeAnalyzerPipeline(t *testing.T) {
	libc := ProfileBinary(libspec.BuildLibc())
	if libc.Func("read") == nil {
		t.Fatal("profiler broken")
	}
	a := &Analyzer{}
	bin := analyzedBinary()
	rep := a.Analyze(bin, libc)
	_, _, not := rep.ByClass()
	if len(not) == 0 {
		t.Fatal("no unchecked sites found")
	}
	scens := GenerateScenarios(bin, not, libc)
	if len(scens) == 0 {
		t.Fatal("no scenarios generated")
	}
	for _, s := range scens {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFacadeControllerRun drives the controller through the facade.
func TestFacadeControllerRun(t *testing.T) {
	tgt := Target{
		Name:  "toy",
		Start: func() *Process { c := NewProcess(0); c.MustWriteFile("/f", []byte("x")); return c },
		Workload: func(c *Process) error {
			th := c.NewThread("toy", "main")
			fd := th.Open("/f", libsim.O_RDONLY)
			th.Read(fd, make([]byte, 1))
			return nil
		},
	}
	out, err := RunOne(tgt, nil)
	if err != nil || out.Failed() {
		t.Fatalf("clean run: %v %v", err, out)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatal("outcome rendering")
	}
}

// TestTriggerClassesExported sanity-checks the registry surface.
func TestTriggerClassesExported(t *testing.T) {
	classes := TriggerClasses()
	found := 0
	for _, c := range classes {
		switch c {
		case "CallStackTrigger", "RandomTrigger", "SingletonTrigger",
			"DistributedTrigger", "ProgramStateTrigger", "CallCountTrigger":
			found++
		}
	}
	if found != 6 {
		t.Fatalf("stock triggers missing from registry: %v", classes)
	}
}
