package lfi_test

import (
	"context"
	"fmt"
	"strings"

	"lfi"
)

// ExampleNewSession runs one hand-written XML fault-injection scenario
// against a registered target system: build a session, parse the
// scenario, run it, and read the failure report.
func ExampleNewSession() {
	sess, err := lfi.NewSession(lfi.WithWorkers(2))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sess.Close()

	sys, ok := lfi.LookupSystem("minivcs")
	if !ok {
		fmt.Println("minivcs not registered")
		return
	}
	scen, err := lfi.ParseScenarioString(`<scenario name="first-malloc-fails">
	  <trigger id="all" class="CallCountTrigger"><args><from>1</from><to>200</to></args></trigger>
	  <function name="malloc" return="0" errno="ENOMEM"><reftrigger ref="all" /></function>
	</scenario>`)
	if err != nil {
		fmt.Println(err)
		return
	}

	rep, err := sess.Run(context.Background(), sys, []*lfi.Scenario{scen})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d run(s), %d failure(s), %d distinct bug(s)\n",
		len(rep.Outcomes), rep.Failures, len(rep.Bugs))
	// Output: 1 run(s), 1 failure(s), 1 distinct bug(s)
}

// ExampleSession_Explore runs the coverage-guided fault-space explorer
// on one system — no hand-written scenarios — and checks it
// rediscovers every stock Table-1 crash bug the system's descriptor
// advertises. Add WithStore to persist outcomes and resume
// incrementally, and WithImpact to make resumes diff-aware after a
// code change (see `lfi explore -impact` and DESIGN.md).
func ExampleSession_Explore() {
	sess, err := lfi.NewSession(lfi.WithWorkers(4), lfi.WithStallBatches(1000))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sess.Close()

	sys, _ := lfi.LookupSystem("minidb")
	res, err := sess.Explore(context.Background(), sys)
	if err != nil {
		fmt.Println(err)
		return
	}

	found := 0
	for _, sb := range sys.StockBugs {
		for _, b := range res.Bugs {
			if b.IsCrash() && strings.Contains(b.Signature, sb.Match) {
				found++
				break
			}
		}
	}
	fmt.Printf("all minidb stock bugs rediscovered: %v\n", found == len(sys.StockBugs))
	// Output: all minidb stock bugs rediscovered: true
}
