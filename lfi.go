// Package lfi is a Go reproduction of "An Extensible Technique for
// High-Precision Testing of Recovery Code" (Marinescu, Banabic & Candea,
// USENIX ATC 2010) — the LFI library-level fault injector.
//
// The package re-exports the public surface of the toolchain:
//
//   - System / Systems / LookupSystem / RegisterSystem — the target
//     registry: every testable system self-describes with a descriptor
//     (binary, controller targets, library profiles, workload, stock
//     bugs) and registers itself database/sql-driver style, so engines
//     and tools never enumerate targets by hand;
//   - Session / NewSession — the unified, context-aware test driver:
//     functional options (WithStore, WithWorkers, WithBudget, WithSeed,
//     WithExecutors, …) configure one session whose Run, Explore and
//     ExploreAll methods stream outcomes, cancel cleanly, and fan out
//     over every registered system (`lfi explore -all`);
//   - Executor / NewLocalExecutor / NewPoolExecutor / DialExecutor /
//     ServeExecutor — the pluggable execution backends: batches run on
//     the in-process pool, in crash-isolating worker subprocesses, or
//     on remote `lfi serve` workers, scheduled by a per-system cost
//     model with identical results on every backend;
//   - Scenario / ParseScenario / NewScenarioBuilder — the XML fault
//     injection language (§4);
//   - Trigger / RegisterTrigger / TriggerArgs — the extensible trigger
//     framework and its registry (§3);
//   - Runtime / NewRuntime — the injection engine that splices into a
//     simulated process (§2, §6);
//   - Analyzer / GenerateScenarios — the call-site analyzer (§5);
//   - ProfileBinary — the automated library profiler (§2).
//
// The substrates (simulated C library, synthetic ISA, PBFT, target
// applications) live under internal/; see DESIGN.md ("Public API: the
// system registry and sessions") for the architecture and
// EXPERIMENTS.md for the paper-vs-measured results.
package lfi

import (
	"fmt"
	"io"

	"lfi/internal/callsite"
	"lfi/internal/cfg"
	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/errno"
	"lfi/internal/exec"
	"lfi/internal/explore"
	"lfi/internal/impact"
	"lfi/internal/interpose"
	"lfi/internal/isa"
	"lfi/internal/libsim"
	"lfi/internal/profile"
	"lfi/internal/scenario"
	"lfi/internal/trigger"

	// Register every built-in target system with the registry, so
	// facade users always see the full set.
	_ "lfi/internal/system/all"
)

// Core runtime.
type (
	// Runtime is the compiled, installable injection engine.
	Runtime = core.Runtime
	// Option configures a Runtime.
	Option = core.Option
	// Log is the injection log.
	Log = core.Log
	// Record is one logged injection.
	Record = core.Record
)

// Runtime constructors and options.
var (
	// NewRuntime compiles a scenario for a simulated process.
	NewRuntime = core.New
	// RuntimeSeed makes a Runtime's Random triggers reproducible. (It
	// was exported as WithSeed before the Session API claimed that
	// name; sessions seed every run they own via the WithSeed session
	// option instead.)
	RuntimeSeed = core.WithSeed
	// WithDecider installs a distributed-trigger central controller.
	WithDecider = core.WithDecider
	// WithMaxInjections bounds the number of injected faults.
	WithMaxInjections = core.WithMaxInjections
)

// Scenario language.
type (
	// Scenario is a parsed fault injection scenario.
	Scenario = scenario.Scenario
	// ScenarioBuilder assembles scenarios programmatically.
	ScenarioBuilder = scenario.Builder
)

// ParseScenario reads a scenario XML document.
func ParseScenario(r io.Reader) (*Scenario, error) { return scenario.Parse(r) }

// ParseScenarioString reads a scenario from a string.
func ParseScenarioString(doc string) (*Scenario, error) { return scenario.ParseString(doc) }

// NewScenarioBuilder starts a programmatic scenario.
func NewScenarioBuilder(name string) *ScenarioBuilder { return scenario.NewBuilder(name) }

// Trigger framework.
type (
	// Trigger is the paper's Trigger interface (Init/Eval).
	Trigger = trigger.Trigger
	// TriggerArgs is the parsed <args> tree passed to Init.
	TriggerArgs = trigger.Args
	// TriggerBase provides the no-op Init and Env plumbing.
	TriggerBase = trigger.Base
	// Call describes one intercepted library call.
	Call = interpose.Call
	// Frame is one virtual stack frame.
	Frame = interpose.Frame
)

// RegisterTrigger adds a custom trigger class to the global registry.
var RegisterTrigger = trigger.Register

// TriggerClasses lists all registered trigger classes.
var TriggerClasses = trigger.Classes

// Process simulation.
type (
	// Process is a simulated process image (the C library instance).
	Process = libsim.C
	// Thread is a simulated POSIX thread with errno and a virtual stack.
	Thread = libsim.Thread
	// Crash is an abnormal termination of a simulated program.
	Crash = libsim.Crash
	// Errno is a simulated C errno value.
	Errno = errno.Errno
)

// NewProcess creates a process image with the given heap capacity.
var NewProcess = libsim.New

// Common open(2) flags and errno values, re-exported so facade users
// can drive simulated programs without reaching into internal/.
const (
	O_RDONLY = libsim.O_RDONLY
	O_WRONLY = libsim.O_WRONLY
	O_CREAT  = libsim.O_CREAT

	EINTR  = errno.EINTR
	EIO    = errno.EIO
	ENOMEM = errno.ENOMEM
)

// Binary analyses.
type (
	// Analyzer runs the call site analysis (Algorithm 1).
	Analyzer = callsite.Analyzer
	// SiteReport is one analyzed call site.
	SiteReport = callsite.Site
	// LibraryProfile is a library fault profile.
	LibraryProfile = profile.Profile
)

var (
	// ProfileBinary infers a library's fault profile from its binary.
	ProfileBinary = profile.ProfileBinary
	// GenerateScenarios emits injection scenarios for vulnerable sites.
	GenerateScenarios = callsite.GenerateScenarios
	// GenerateExercise emits recovery-exercising scenarios for checked sites.
	GenerateExercise = callsite.GenerateExercise
)

// Test controller.
type (
	// Target describes a program under test.
	Target = controller.Target
	// Outcome is one test run's observed result.
	Outcome = controller.Outcome
	// Bug is a deduplicated failure signature.
	Bug = controller.Bug
)

var (
	// DistinctBugs deduplicates campaign failures.
	DistinctBugs = controller.DistinctBugs
	// FailureSignature computes a failed outcome's dedup signature.
	FailureSignature = controller.FailureSignature
)

// Execution backends. A Session runs batches through one or more
// executors: the default in-process pool, crash-isolating subprocess
// pools, or remote `lfi serve` workers reached over TCP. All backends
// produce byte-identical outcomes for the same batch and seed, so the
// mix changes throughput, never results.
type (
	// Executor is a pluggable execution backend (local / pool /
	// remote) a Session dispatches test batches to.
	Executor = exec.Executor
	// ExecutorInfo is an executor's capability and cost metadata.
	ExecutorInfo = exec.Info
	// ExecBatch is one dispatch unit: scenarios + system + seed.
	ExecBatch = exec.Batch
	// ProtoMismatchError reports a remote worker whose wire protocol
	// this client cannot speak. Fleet assembly should drop the worker
	// (it needs a rebuild), not abort the campaign.
	ProtoMismatchError = exec.ProtoMismatchError
	// ExecOutcome is one run's serializable, backend-independent
	// result.
	ExecOutcome = exec.Outcome
	// CostModel is a system's persisted execution economics (EWMA
	// runs/sec per backend, coverage gain per run) — the scheduling
	// signal behind Session.ExploreAll and the fleet's batch routing.
	CostModel = exec.CostModel
)

var (
	// NewLocalExecutor returns the in-process backend (the default).
	NewLocalExecutor = exec.NewLocal
	// NewPoolExecutor starts a pool of crash-isolating worker
	// subprocesses; the calling binary must invoke MaybeExecWorker
	// first thing in main (cmd/lfi does) or TestMain.
	NewPoolExecutor = exec.NewPool
	// DialExecutor connects to an `lfi serve` worker.
	DialExecutor = exec.Dial
	// ServeExecutor accepts executor connections on a listener — the
	// engine behind `lfi serve`.
	ServeExecutor = exec.Serve
	// MaybeExecWorker turns the current process into an execution
	// worker when the worker environment hooks are set; call it first
	// thing in main or TestMain to make a binary pool-capable.
	MaybeExecWorker = exec.MaybeWorker
)

// Fault-space exploration.
type (
	// ExploreConfig parametrizes a coverage-guided exploration run.
	ExploreConfig = explore.Config
	// ExploreResult is an exploration run's outcome.
	ExploreResult = explore.Result
	// ExploreAllResult is a cross-system exploration's outcome — the
	// Session.ExploreAll / `lfi explore -all` shape.
	ExploreAllResult = explore.MultiResult
	// ExploreCandidate is one proposed injection experiment.
	ExploreCandidate = explore.Candidate
	// StoreStats is a persistent store's compaction summary (shards,
	// retained image versions, entries migrated vs invalidated).
	StoreStats = explore.StoreStats
	// ImpactSummary reports what the change-impact plan did on an
	// -impact resume: functions diffed, recovery blocks reached,
	// entries migrated intact vs queued for re-validation
	// (ExploreResult.Impact; see WithImpact).
	ImpactSummary = explore.ImpactSummary
	// DiffReport classifies the cached candidate space against a code
	// edit without executing anything — the `lfi diff` shape (see
	// Session.Diff).
	DiffReport = explore.DiffReport
	// LintReport is the whole-program interprocedural analysis of one
	// system — the `lfi lint` shape (see Session.Lint).
	LintReport = explore.LintReport
	// LintSite is one classified library call site in a LintReport.
	LintSite = explore.LintSite
)

// DefaultAnalysisWindow is the paper's post-call analysis window (§5):
// the number of instructions the windowed Algorithm 1 walks after a
// library call. cmd/lfi-analyzer resolves `-window 0` to it.
const DefaultAnalysisWindow = cfg.DefaultWindow

// GenerateCandidates enumerates the candidate fault space.
var GenerateCandidates = explore.Generate

// PatchSystem returns a copy of sys whose program image has fn's inert
// prologue immediate flipped — a one-function code edit that moves that
// function's fingerprint (and the image version) without changing any
// behavior. It exists to exercise the incremental re-exploration
// workflow end to end (`lfi explore -patch`, the CI incremental-smoke
// job): explore, patch, re-explore with WithImpact, and watch only the
// entries the edit can reach re-execute. Patching the same function
// twice restores the original image. The returned descriptor is a
// detached copy, not registered.
func PatchSystem(sys *System, fn string) (*System, error) {
	bin, _ := sys.Binary()
	if _, err := impact.PatchFunc(bin, fn); err != nil {
		return nil, fmt.Errorf("lfi: patching %s: %w", sys.Name, err)
	}
	ns := *sys
	orig := sys.Binary
	ns.Binary = func() (*isa.Binary, map[string]uint64) {
		b, offs := orig()
		pb, err := impact.PatchFunc(b, fn)
		if err != nil {
			return b, offs // validated above; cannot happen
		}
		return pb, offs
	}
	return &ns, nil
}
