// Command lfi is the LFI controller (§2): it takes an injection
// scenario (XML file or the analyzer's generated set), conducts a test
// against one of the built-in target systems, and prints the outcome
// and the injection log.
//
// Usage:
//
//	lfi -app minivcs -scenario fail-read.xml
//	lfi -app minidns -auto           # run all analyzer-generated scenarios
//	lfi -app minidb -auto -v         # verbose: print every injection log
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"lfi/internal/apps/minidb"
	"lfi/internal/apps/minidns"
	"lfi/internal/apps/minivcs"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/isa"
	"lfi/internal/libspec"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

func target(name string) (controller.Target, *isa.Binary, bool) {
	switch name {
	case "minivcs":
		b, _ := minivcs.Binary()
		return minivcs.Target(), b, true
	case "minidns":
		b, _ := minidns.Binary()
		return minidns.Target(), b, true
	case "minidb":
		b, _ := minidb.Binary()
		return minidb.Target(), b, true
	}
	return controller.Target{}, nil, false
}

func main() {
	app := flag.String("app", "minivcs", "target system: minivcs, minidns, minidb")
	scenFile := flag.String("scenario", "", "injection scenario XML file")
	auto := flag.Bool("auto", false, "generate scenarios with the call-site analyzer and run them all")
	verbose := flag.Bool("v", false, "print each run's injection log")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "campaign worker pool size (1 = sequential)")
	flag.Parse()

	tgt, bin, ok := target(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "lfi: unknown target %q\n", *app)
		os.Exit(2)
	}

	var scens []*scenario.Scenario
	switch {
	case *scenFile != "":
		f, err := os.Open(*scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi:", err)
			os.Exit(1)
		}
		s, err := scenario.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi:", err)
			os.Exit(1)
		}
		scens = append(scens, s)
	case *auto:
		profs := []*profile.Profile{
			profile.ProfileBinary(libspec.BuildLibc()),
			profile.ProfileBinary(libspec.BuildLibxml()),
			profile.ProfileBinary(libspec.BuildLibapr()),
		}
		a := &callsite.Analyzer{}
		rep := a.Analyze(bin, profs...)
		yes, part, not := rep.ByClass()
		scens = callsite.GenerateScenarios(bin, append(not, part...), profs...)
		scens = append(scens, callsite.GenerateExercise(bin, yes, profs...)...)
		fmt.Printf("analyzer generated %d scenarios for %s\n", len(scens), bin.Name)
	default:
		fmt.Fprintln(os.Stderr, "lfi: need -scenario FILE or -auto")
		os.Exit(2)
	}

	outs, err := controller.CampaignParallel(tgt, scens, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi:", err)
		os.Exit(1)
	}
	failures := 0
	for _, o := range outs {
		fmt.Println(o)
		if *verbose && o.Log != nil && o.Log.Len() > 0 {
			fmt.Print(o.Log)
		}
		if o.Failed() {
			failures++
		}
	}
	bugs := controller.DistinctBugs(*app, outs)
	fmt.Printf("\n%d/%d runs failed; %d distinct failure signatures:\n", failures, len(outs), len(bugs))
	for _, b := range bugs {
		fmt.Printf("  %s (%d scenarios)\n", b.Signature, len(b.Scenarios))
	}
}
