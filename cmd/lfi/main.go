// Command lfi is the LFI controller (§2): it takes an injection
// scenario (XML file or the analyzer's generated set), conducts a test
// against one of the built-in target systems, and prints the outcome
// and the injection log.
//
// Usage:
//
//	lfi -app minivcs -scenario fail-read.xml
//	lfi -app minidns -auto           # run all analyzer-generated scenarios
//	lfi -app minidb -auto -v         # verbose: print every injection log
//
// The explore subcommand runs the coverage-guided fault-space explorer
// instead of a fixed scenario list: it enumerates candidate injections
// from the library fault profiles and the call-site analysis,
// prioritizes them by which uncovered recovery blocks they can reach,
// and persists outcomes so a second run resumes incrementally:
//
//	lfi explore -app minidb
//	lfi explore -app pbft -store .lfi-store -budget 200 -v
//
// The explore store is a shard directory (one shard per targeted code
// region, per-image-version manifests), so stores for several targets
// and image versions share one root; a v1 single-file store is
// migrated automatically.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"lfi/internal/apps/minidb"
	"lfi/internal/apps/minidns"
	"lfi/internal/apps/minivcs"
	"lfi/internal/apps/miniweb"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/explore"
	"lfi/internal/isa"
	"lfi/internal/libspec"
	"lfi/internal/pbft"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

func target(name string) (controller.Target, *isa.Binary, bool) {
	switch name {
	case "minivcs":
		b, _ := minivcs.Binary()
		return minivcs.Target(), b, true
	case "minidns":
		b, _ := minidns.Binary()
		return minidns.Target(), b, true
	case "minidb":
		b, _ := minidb.Binary()
		return minidb.Target(), b, true
	case "miniweb":
		b, _ := miniweb.Binary()
		return miniweb.Target(), b, true
	case "pbft":
		b, _ := pbft.Binary()
		return pbft.Target(), b, true
	}
	return controller.Target{}, nil, false
}

// runExplore implements `lfi explore`.
func runExplore(args []string) {
	fs := flag.NewFlagSet("lfi explore", flag.ExitOnError)
	app := fs.String("app", "minidb", "target system: "+strings.Join(explore.Systems(), ", "))
	store := fs.String("store", "", "persistent campaign store (shard directory); resumes incrementally")
	budget := fs.Int("budget", 0, "max executed test runs (0 = explore everything)")
	batch := fs.Int("batch", 0, "candidates per scheduling batch (default 16)")
	stall := fs.Int("stall", 0, "stop after this many batches with no new coverage/bugs (default 3)")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "campaign worker pool size (1 = sequential)")
	seed := fs.Int64("seed", 0, "runtime random seed")
	verbose := fs.Bool("v", false, "print per-batch progress")
	fs.Parse(args)

	cfg, ok := explore.ConfigFor(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "lfi explore: unknown target %q (have %v)\n", *app, explore.Systems())
		os.Exit(2)
	}
	cfg.Store = *store
	cfg.MaxRuns = *budget
	cfg.BatchSize = *batch
	cfg.StallBatches = *stall
	cfg.Workers = *jobs
	cfg.Seed = *seed
	if *verbose {
		cfg.Log = os.Stderr
	}
	res, err := explore.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi explore:", err)
		os.Exit(1)
	}
	fmt.Print(res)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explore" {
		runExplore(os.Args[2:])
		return
	}
	app := flag.String("app", "minivcs", "target system: minivcs, minidns, minidb, miniweb, pbft")
	scenFile := flag.String("scenario", "", "injection scenario XML file")
	auto := flag.Bool("auto", false, "generate scenarios with the call-site analyzer and run them all")
	verbose := flag.Bool("v", false, "print each run's injection log")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "campaign worker pool size (1 = sequential)")
	flag.Parse()

	tgt, bin, ok := target(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "lfi: unknown target %q\n", *app)
		os.Exit(2)
	}

	var scens []*scenario.Scenario
	switch {
	case *scenFile != "":
		f, err := os.Open(*scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi:", err)
			os.Exit(1)
		}
		s, err := scenario.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi:", err)
			os.Exit(1)
		}
		scens = append(scens, s)
	case *auto:
		profs := []*profile.Profile{
			profile.ProfileBinary(libspec.BuildLibc()),
			profile.ProfileBinary(libspec.BuildLibxml()),
			profile.ProfileBinary(libspec.BuildLibapr()),
		}
		a := &callsite.Analyzer{}
		rep := a.Analyze(bin, profs...)
		yes, part, not := rep.ByClass()
		scens = callsite.GenerateScenarios(bin, append(not, part...), profs...)
		scens = append(scens, callsite.GenerateExercise(bin, yes, profs...)...)
		fmt.Printf("analyzer generated %d scenarios for %s\n", len(scens), bin.Name)
	default:
		fmt.Fprintln(os.Stderr, "lfi: need -scenario FILE or -auto")
		os.Exit(2)
	}

	outs, err := controller.CampaignParallel(tgt, scens, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi:", err)
		os.Exit(1)
	}
	failures := 0
	for _, o := range outs {
		fmt.Println(o)
		if *verbose && o.Log != nil && o.Log.Len() > 0 {
			fmt.Print(o.Log)
		}
		if o.Failed() {
			failures++
		}
	}
	bugs := controller.DistinctBugs(*app, outs)
	fmt.Printf("\n%d/%d runs failed; %d distinct failure signatures:\n", failures, len(outs), len(bugs))
	for _, b := range bugs {
		fmt.Printf("  %s (%d scenarios)\n", b.Signature, len(b.Scenarios))
	}
}
