// Command lfi is the LFI controller (§2): it takes an injection
// scenario (XML file or the analyzer's generated set), conducts a test
// against one of the registered target systems, and prints the outcome
// and the injection log. Targets come from the system registry
// (internal/system): every -app value and usage string is enumerated
// from it, so a newly registered system is immediately drivable with no
// command changes.
//
// Usage:
//
//	lfi -app minivcs -scenario fail-read.xml
//	lfi -app minidns -auto           # run all analyzer-generated scenarios
//	lfi -app minidb -auto -v         # verbose: print every injection log
//
// The explore subcommand runs the coverage-guided fault-space explorer
// instead of a fixed scenario list: it enumerates candidate injections
// from the library fault profiles and the call-site analysis,
// prioritizes them by which uncovered recovery blocks they can reach,
// and persists outcomes so a second run resumes incrementally:
//
//	lfi explore -app minidb
//	lfi explore -app pbft -store .lfi-store -budget 200 -v
//	lfi explore -all -store .lfi-store       # every registered system
//	lfi explore -app minidb,minivcs -budget 500
//
// With -all (or a comma-separated -app list) one session fans out over
// the systems with a shared backend fleet, a shared store root and a
// shared budget, interleaving batches across systems by the per-system
// cost model (expected coverage gain per second). Ctrl-C cancels
// cleanly: in-flight tests finish, every store is flushed (no torn
// shards), and the next run resumes with zero re-execution. -v adds
// per-batch progress and the per-store compaction stats (shards,
// retained image versions, entries migrated vs invalidated).
//
// Resumes are diff-aware on request. Every campaign records the
// image's per-function code fingerprints in the store; after a code
// change, -impact diffs the new binary against them, walks the CFG to
// the recovery blocks the edit can reach, migrates cached outcomes
// whose coverage the edit provably cannot touch, and re-executes only
// the rest (falling back to whole-shard invalidation whenever the edit
// cannot be bounded). The diff subcommand previews that classification
// without running anything, and -patch applies an inert one-function
// edit for exercising the workflow end to end:
//
//	lfi explore -app minidb -store .lfi-store
//	lfi diff    -app minidb -store .lfi-store -patch errmsg_load
//	lfi explore -app minidb -store .lfi-store -patch errmsg_load -impact -v
//
// Execution backends are pluggable. The serve subcommand turns this
// binary into a remote test-execution worker speaking length-prefixed
// JSON-RPC over TCP:
//
//	lfi serve -addr :7411 -j 8
//
// and explore fans batches across any mix of backends:
//
//	lfi explore -all -workers-remote host1:7411,host2:7411
//	lfi explore -app minidb -pool 4     # crash-isolating subprocess pool
//
// Remote workers drain their in-flight batch on Ctrl-C; a worker killed
// mid-batch has its unfinished runs requeued on the surviving backends.
//
// Fleet service mode removes the hand-maintained worker list entirely.
// A registry process coordinates the cluster, workers announce
// themselves to it, and explorers discover whatever is alive:
//
//	lfi fleet registry -addr :7410
//	lfi serve -addr :0 -register host:7410      # on every worker box
//	lfi explore -all -fleet host:7410
//	lfi fleet status -registry host:7410        # live throughput + campaign progress
//
// Workers that join mid-campaign are dialed and used; workers that miss
// heartbeats are evicted and their in-flight batches requeue on the
// survivors. `lfi serve -patch system:function` starts a deliberately
// mixed-build worker (inert one-function patch) whose outcomes the
// explorer reconciles by impact analysis instead of dropping.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"lfi"
)

// appsUsage enumerates the registered systems for usage/error text.
func appsUsage() string { return strings.Join(lfi.SystemNames(), ", ") }

// lookupApps resolves a comma-separated -app list against the registry
// (duplicates collapsed), exiting with the registry's contents on an
// unknown name.
func lookupApps(list string) []*lfi.System {
	var systems []*lfi.System
	seen := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		sys, ok := lfi.LookupSystem(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "lfi: unknown target %q (registered: %s)\n", name, appsUsage())
			os.Exit(2)
		}
		systems = append(systems, sys)
	}
	if len(systems) == 0 {
		fmt.Fprintf(os.Stderr, "lfi: no target given (registered: %s)\n", appsUsage())
		os.Exit(2)
	}
	return systems
}

// interruptible is the Ctrl-C contract: SIGINT/SIGTERM cancel the
// context; sessions finish in-flight tests, flush their stores, and
// return the partial result with context.Canceled.
func interruptible() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// newSession builds a session or exits with the validation error.
func newSession(opts ...lfi.SessionOption) *lfi.Session {
	sess, err := lfi.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi:", err)
		os.Exit(2)
	}
	return sess
}

// executorOpts translates the backend flags (-pool, -workers-remote,
// -drain-grace) into session options: the local pool always
// participates unless -no-local is set, subprocess/remote backends join
// the mix with the configured cancellation drain grace. haveFleet
// relaxes the at-least-one-backend rule: with -fleet the session
// discovers workers from the registry, so an empty explicit list is
// legitimate.
func executorOpts(jobs, pool int, remotes string, noLocal bool, drainGrace time.Duration, haveFleet bool) []lfi.SessionOption {
	var execs []lfi.Executor
	if !noLocal {
		execs = append(execs, lfi.NewLocalExecutor(jobs))
	}
	if pool > 0 {
		p, err := lfi.NewPoolExecutor(pool)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi: -pool:", err)
			os.Exit(2)
		}
		p.SetDrainGrace(drainGrace)
		execs = append(execs, p)
	}
	for _, addr := range strings.Split(remotes, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		r, err := lfi.DialExecutor(addr)
		if err != nil {
			// A worker speaking the wrong protocol version just needs a
			// rebuild: drop it with a warning and keep the campaign on
			// the remaining backends. Anything else (refused connection,
			// bad address) is a configuration error and still fatal.
			var pm *lfi.ProtoMismatchError
			if errors.As(err, &pm) {
				fmt.Fprintln(os.Stderr, "lfi: -workers-remote: skipping:", err)
				continue
			}
			fmt.Fprintln(os.Stderr, "lfi: -workers-remote:", err)
			os.Exit(2)
		}
		r.SetDrainGrace(drainGrace)
		execs = append(execs, r)
	}
	if len(execs) == 0 {
		if haveFleet {
			return []lfi.SessionOption{lfi.WithWorkers(jobs)}
		}
		fmt.Fprintln(os.Stderr, "lfi: -no-local needs at least one -pool, -workers-remote or -fleet backend")
		os.Exit(2)
	}
	return []lfi.SessionOption{lfi.WithExecutors(execs...), lfi.WithWorkers(jobs)}
}

// patchSystems applies the inert one-function -patch edit to every
// listed system in place, exiting on an unknown function name.
func patchSystems(systems []*lfi.System, fn string) {
	if fn == "" {
		return
	}
	for i, sys := range systems {
		ps, err := lfi.PatchSystem(sys, fn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi: -patch:", err)
			os.Exit(2)
		}
		systems[i] = ps
	}
}

// runDiff implements `lfi diff`: classify the cached candidate space
// against the current (optionally -patch'ed) binary without executing a
// single test or writing the store.
func runDiff(args []string) {
	fs := flag.NewFlagSet("lfi diff", flag.ExitOnError)
	app := fs.String("app", "", "target system(s), comma-separated: "+appsUsage())
	store := fs.String("store", "", "campaign store root to diff against (required)")
	patch := fs.String("patch", "", "flip this `function`'s inert prologue immediate before diffing")
	fs.Parse(args)
	if *store == "" {
		fmt.Fprintln(os.Stderr, "lfi diff: need -store (nothing to diff without a campaign store)")
		os.Exit(2)
	}
	systems := lookupApps(*app)
	patchSystems(systems, *patch)
	sess := newSession(lfi.WithStore(*store))
	defer sess.Close()
	for _, sys := range systems {
		rep, err := sess.Diff(sys)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi diff:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
	}
}

// runLint implements `lfi lint`: the whole-program interprocedural
// error-propagation analysis, registry-resolved, no test executed. With
// -store, per-function summaries persist next to the campaign's
// manifests, so linting after a -patch edit recomputes only the changed
// function and its call-graph ancestors.
func runLint(args []string) {
	fs := flag.NewFlagSet("lfi lint", flag.ExitOnError)
	app := fs.String("app", "", "target system(s), comma-separated (default: every registered system): "+appsUsage())
	store := fs.String("store", "", "campaign store root to persist summaries in (optional)")
	patch := fs.String("patch", "", "flip this `function`'s inert prologue immediate before linting")
	asJSON := fs.Bool("json", false, "emit one JSON report per system instead of text")
	fs.Parse(args)
	systems := lfi.Systems()
	if *app != "" {
		systems = lookupApps(*app)
	}
	patchSystems(systems, *patch)
	sess := newSession(lfi.WithStore(*store))
	defer sess.Close()
	for _, sys := range systems {
		rep, err := sess.Lint(sys)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi lint:", err)
			os.Exit(1)
		}
		if *asJSON {
			out, err := json.Marshal(rep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfi lint:", err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", out)
			continue
		}
		fmt.Print(rep)
	}
}

// runServe implements `lfi serve`: this process becomes a remote test
// execution worker for `lfi explore -workers-remote`, or — with
// -register — a self-registering member of a fleetd cluster that
// `lfi explore -fleet` discovers without being handed any address.
func runServe(args []string) {
	fs := flag.NewFlagSet("lfi serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "TCP listen address")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "worker pool size for batches this worker executes")
	register := fs.String("register", "", "fleet registry `host:port` to self-register with (see `lfi fleet registry`)")
	advertise := fs.String("advertise", "", "dial-back `address` announced to the registry (default: the listen address)")
	patch := fs.String("patch", "", "apply an inert one-function patch (`system:function`) before serving — a deliberately mixed-build worker for exercising reconciliation")
	verbose := fs.Bool("v", false, "log connections and registry traffic")
	fs.Parse(args)

	if *patch != "" {
		if err := lfi.PatchWorkerSystem(*patch); err != nil {
			fmt.Fprintln(os.Stderr, "lfi serve: -patch:", err)
			os.Exit(2)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi serve:", err)
		os.Exit(1)
	}
	ctx, cancel := interruptible()
	defer cancel()
	fmt.Printf("listening %s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "lfi serve: %d workers, systems: %s\n", *jobs, appsUsage())
	if *register != "" {
		fmt.Fprintf(os.Stderr, "lfi serve: registering with fleet registry %s\n", *register)
	}
	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	err = lfi.ServeRegistered(ctx, ln, *jobs, logw, *register, *advertise)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "lfi serve: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi serve:", err)
		os.Exit(1)
	}
}

// runFleet implements `lfi fleet`: the registry process and the status
// reader of fleet service mode.
func runFleet(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "lfi fleet: need a verb: registry (run the coordinator) or status (query one)")
		os.Exit(2)
	}
	switch args[0] {
	case "registry":
		runFleetRegistry(args[1:])
	case "status":
		runFleetStatus(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "lfi fleet: unknown verb %q (want registry or status)\n", args[0])
		os.Exit(2)
	}
}

// runFleetRegistry runs the fleetd coordinator: workers register with
// it (`lfi serve -register`), explorers discover them from it
// (`lfi explore -fleet`), and anyone can read the merged status.
func runFleetRegistry(args []string) {
	fs := flag.NewFlagSet("lfi fleet registry", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7410", "TCP listen address")
	heartbeat := fs.Duration("heartbeat", lfi.DefaultFleetHeartbeat, "heartbeat interval assigned to workers")
	miss := fs.Int("miss", lfi.DefaultFleetMiss, "missed heartbeats before a worker is evicted")
	fs.Parse(args)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi fleet registry:", err)
		os.Exit(1)
	}
	ctx, cancel := interruptible()
	defer cancel()
	fmt.Printf("listening %s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "lfi fleet registry: heartbeat %v, eviction after %d missed\n", *heartbeat, *miss)
	err = lfi.NewFleetRegistry(*heartbeat, *miss).Serve(ctx, ln, os.Stderr)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "lfi fleet registry: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi fleet registry:", err)
		os.Exit(1)
	}
}

// runFleetStatus prints a registry's merged status: the live worker set
// with throughput derived from heartbeats, and the latest campaign
// snapshot a coordinator published.
func runFleetStatus(args []string) {
	fs := flag.NewFlagSet("lfi fleet status", flag.ExitOnError)
	registry := fs.String("registry", "", "fleet registry `host:port` to query (required)")
	asJSON := fs.Bool("json", false, "print the raw status document as JSON")
	fs.Parse(args)
	if *registry == "" {
		fmt.Fprintln(os.Stderr, "lfi fleet status: need -registry")
		os.Exit(2)
	}
	st, err := lfi.FleetStatus(*registry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi fleet status:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(st)
		return
	}
	fmt.Printf("registry %s: %d worker(s) live, heartbeat %v, %d evicted\n",
		*registry, len(st.Workers), time.Duration(st.HeartbeatMS)*time.Millisecond, st.Evicted)
	for _, w := range st.Workers {
		fmt.Printf("  %-4s %-22s cap %d proto %d  %7.1f runs/s  %d runs / %d batches / %d cancelled  last seen %s ago\n",
			w.ID, w.Addr, w.Capacity, w.Proto, w.RunsPerSec,
			w.Stats.Runs, w.Stats.Batches, w.Stats.Cancels,
			st.Now.Sub(w.LastSeen).Round(time.Millisecond))
	}
	if st.Campaign == nil {
		fmt.Println("no campaign published")
		return
	}
	fmt.Printf("campaign %s (updated %s ago):\n",
		st.Campaign.Session, st.Now.Sub(st.Campaign.Updated).Round(time.Millisecond))
	names := make([]string, 0, len(st.Campaign.Systems))
	for name := range st.Campaign.Systems {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := st.Campaign.Systems[name]
		fmt.Printf("  %-10s %d executed, %d replayed, %d bugs, %d blocks covered (%d recovery), gain/run %.3f\n",
			name, ss.Executed, ss.Replayed, ss.Bugs, ss.Covered, ss.RecoveryBlocks, ss.GainPerRun)
	}
}

// runExplore implements `lfi explore`.
func runExplore(args []string) {
	fs := flag.NewFlagSet("lfi explore", flag.ExitOnError)
	app := fs.String("app", "minidb", "target system(s), comma-separated: "+appsUsage())
	all := fs.Bool("all", false, "explore every registered system in one session")
	store := fs.String("store", "", "persistent campaign store root (shard directory per system); resumes incrementally")
	budget := fs.Int("budget", 0, "max executed test runs, total across systems (0 = explore everything)")
	batch := fs.Int("batch", 0, "candidates per scheduling batch (default 16)")
	stall := fs.Int("stall", 0, "stop after this many batches with no new coverage/bugs (default 3)")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "local campaign worker pool size (1 = sequential)")
	pool := fs.Int("pool", 0, "add a crash-isolating pool of this many worker subprocesses")
	remotes := fs.String("workers-remote", "", "comma-separated host:port list of `lfi serve` workers to fan batches across")
	fleet := fs.String("fleet", "", "fleet registry `host:port`; discover self-registered `lfi serve -register` workers and follow joins/evictions for the whole campaign")
	noLocal := fs.Bool("no-local", false, "run batches only on -pool/-workers-remote/-fleet backends")
	drainGrace := fs.Duration("drain-grace", 30*time.Second, "how long an interrupted run drains in-flight pool/remote batches before force-closing them")
	seed := fs.Int64("seed", 0, "runtime random seed")
	impact := fs.Bool("impact", false, "diff-aware resume: invalidate only cached entries the code change can reach (needs -store)")
	patch := fs.String("patch", "", "flip this `function`'s inert prologue immediate before exploring (exercises -impact end to end)")
	verbose := fs.Bool("v", false, "print per-batch progress and per-store compaction stats")
	fs.Parse(args)

	var systems []*lfi.System
	if *all {
		systems = lfi.Systems()
	} else {
		systems = lookupApps(*app)
	}
	if *impact && *store == "" {
		fmt.Fprintln(os.Stderr, "lfi explore: -impact needs -store (the previous image's fingerprints live there)")
		os.Exit(2)
	}
	patchSystems(systems, *patch)

	opts := []lfi.SessionOption{
		lfi.WithStore(*store),
		lfi.WithSeed(*seed),
	}
	if *impact {
		opts = append(opts, lfi.WithImpact())
	}
	if *budget > 0 {
		opts = append(opts, lfi.WithBudget(*budget))
	}
	if *batch > 0 {
		opts = append(opts, lfi.WithBatchSize(*batch))
	}
	if *stall > 0 {
		opts = append(opts, lfi.WithStallBatches(*stall))
	}
	if *verbose {
		opts = append(opts, lfi.WithLog(os.Stderr))
	}
	if *fleet != "" {
		opts = append(opts, lfi.WithFleet(*fleet))
	}
	opts = append(opts, executorOpts(*jobs, *pool, *remotes, *noLocal, *drainGrace, *fleet != "")...)
	sess := newSession(opts...)
	defer sess.Close()
	if *verbose {
		for _, info := range sess.Executors() {
			fmt.Fprintf(os.Stderr, "lfi explore: backend %s (capacity %d, isolated %v)\n", info.Name, info.Capacity, info.Isolated)
		}
	}
	ctx, cancel := interruptible()
	defer cancel()

	printStats := func(res *lfi.ExploreResult) {
		if *verbose && res != nil && res.StoreStats != nil {
			fmt.Printf("  %s\n", res.StoreStats)
		}
	}

	var err error
	if len(systems) == 1 {
		var res *lfi.ExploreResult
		res, err = sess.Explore(ctx, systems[0])
		if res != nil {
			fmt.Print(res)
			printStats(res)
		}
	} else {
		var res *lfi.ExploreAllResult
		res, err = sess.ExploreAll(ctx, systems...)
		if res != nil {
			fmt.Print(res)
			for _, r := range res.Results {
				printStats(r)
			}
		}
	}
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "lfi explore: interrupted — stores flushed; rerun to resume with no re-execution")
		os.Exit(130)
	case err != nil:
		fmt.Fprintln(os.Stderr, "lfi explore:", err)
		os.Exit(1)
	}
}

func main() {
	// Become a pool worker when re-executed by NewPoolExecutor (or a
	// serve worker via the env hook); no-op otherwise.
	lfi.MaybeExecWorker()
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "explore":
			runExplore(os.Args[2:])
			return
		case "diff":
			runDiff(os.Args[2:])
			return
		case "lint":
			runLint(os.Args[2:])
			return
		case "serve":
			runServe(os.Args[2:])
			return
		case "fleet":
			runFleet(os.Args[2:])
			return
		}
	}
	app := flag.String("app", "minivcs", "target system: "+appsUsage())
	scenFile := flag.String("scenario", "", "injection scenario XML file")
	auto := flag.Bool("auto", false, "generate scenarios with the call-site analyzer and run them all")
	verbose := flag.Bool("v", false, "print each run's injection log")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "campaign worker pool size (1 = sequential)")
	flag.Parse()

	sys, ok := lfi.LookupSystem(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "lfi: unknown target %q (registered: %s)\n", *app, appsUsage())
		os.Exit(2)
	}

	var scens []*lfi.Scenario
	switch {
	case *scenFile != "":
		f, err := os.Open(*scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi:", err)
			os.Exit(1)
		}
		s, err := lfi.ParseScenario(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi:", err)
			os.Exit(1)
		}
		scens = append(scens, s)
	case *auto:
		bin, _ := sys.Binary()
		profs := sys.Profiles()
		a := &lfi.Analyzer{}
		rep := a.Analyze(bin, profs...)
		yes, part, not := rep.ByClass()
		scens = lfi.GenerateScenarios(bin, append(not, part...), profs...)
		scens = append(scens, lfi.GenerateExercise(bin, yes, profs...)...)
		fmt.Printf("analyzer generated %d scenarios for %s\n", len(scens), bin.Name)
	default:
		fmt.Fprintln(os.Stderr, "lfi: need -scenario FILE or -auto")
		os.Exit(2)
	}

	ctx, cancel := interruptible()
	defer cancel()
	sess := newSession(lfi.WithWorkers(*jobs))
	defer sess.Close()
	rep, err := sess.Run(ctx, sys, scens)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "lfi:", err)
		os.Exit(1)
	}
	for _, o := range rep.Outcomes {
		fmt.Println(o)
		if *verbose && o.Log != nil && o.Log.Len() > 0 {
			fmt.Print(o.Log)
		}
	}
	fmt.Printf("\n%d/%d runs failed; %d distinct failure signatures:\n", rep.Failures, len(rep.Outcomes), len(rep.Bugs))
	for _, b := range rep.Bugs {
		fmt.Printf("  %s (%d scenarios)\n", b.Signature, len(b.Scenarios))
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "lfi: interrupted")
		os.Exit(130)
	}
}
