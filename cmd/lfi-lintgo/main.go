// Command lfi-lintgo runs the repository's own Go-source policy linter
// (internal/lint): no hand-rolled system-name dispatch outside the
// registry, no ambient clocks or global randomness in deterministic
// packages. CI runs it beside go vet; a non-empty finding set fails
// the build.
//
// Usage: lfi-lintgo [root]
//
// root defaults to the current directory.
package main

import (
	"fmt"
	"os"

	"lfi/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	issues, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi-lintgo:", err)
		os.Exit(2)
	}
	for _, i := range issues {
		fmt.Println(i)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "lfi-lintgo: %d issue(s)\n", len(issues))
		os.Exit(1)
	}
}
