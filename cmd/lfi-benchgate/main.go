// Command lfi-benchgate is the CI perf regression wall: it diffs a
// fresh scripts/bench.sh run against the committed BENCH_<n>.json
// baseline and fails (exit 1) when a gated benchmark regressed.
//
// Gating rules, per benchmark matched by name (the -GOMAXPROCS suffix
// is stripped so laptop baselines compare against CI runners):
//
//   - allocs/op may never increase — the dispatch fast path is
//     contractually allocation-free, and allocation counts are exact
//     and machine-independent;
//   - ns/op may not regress by more than -tolerance (default 25%);
//   - tests/s (the campaign and executor benchmarks' custom throughput
//     metric) may not drop by more than -tolerance — wall-clock
//     throughput is the paper's own headline unit, so a change that
//     keeps allocs flat but halves tests/s still fails;
//   - a gated benchmark present in the baseline must be present in the
//     candidate (silently dropping a benchmark is not a pass).
//
// Usage:
//
//	lfi-benchgate -candidate BENCH_ci.json            # baseline auto-picked
//	lfi-benchgate -baseline BENCH_1.json -candidate BENCH_ci.json -v
//
// With -baseline auto (the default) the highest-numbered committed
// BENCH_<n>.json in the working directory is used.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Bench is one benchmark row of scripts/bench.sh's JSON output.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"B_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	TestsPerS   float64 `json:"tests_per_s"`
}

type benchFile struct {
	Generated  string  `json:"generated"`
	Benchmarks []Bench `json:"benchmarks"`
}

// gomaxprocsSuffix strips the -N worker-count suffix go test appends.
// The suffix only exists when GOMAXPROCS != 1, so a baseline recorded
// on a 1-CPU box has bare names ("…/workers-8") while a CI runner's
// candidate carries a suffix ("…/workers-8-4") — and a name's own
// trailing -N (a sub-benchmark parameter) looks identical to the
// GOMAXPROCS one. findBench therefore matches along a ladder — exact,
// then one side canonicalized, then both — instead of blindly
// stripping, so "workers-1" and "workers-8" can never collapse into
// one key.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func canon(name string) string { return gomaxprocsSuffix.ReplaceAllString(name, "") }

func findBench(candidate []Bench, name string) (Bench, bool) {
	for _, c := range candidate {
		if c.Name == name {
			return c, true
		}
	}
	for _, c := range candidate {
		if canon(c.Name) == name {
			return c, true
		}
	}
	for _, c := range candidate {
		if c.Name == canon(name) || canon(c.Name) == canon(name) {
			return c, true
		}
	}
	return Bench{}, false
}

// gate compares candidate against baseline over the benchmarks whose
// name matches prefix, and returns the violations.
func gate(baseline, candidate []Bench, prefix string, tolerance float64) []string {
	var violations []string
	for _, base := range baseline {
		name := base.Name
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		c, ok := findBench(candidate, name)
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from candidate run", name))
			continue
		}
		if c.AllocsPerOp > base.AllocsPerOp {
			violations = append(violations, fmt.Sprintf("%s: allocs/op increased %.0f -> %.0f",
				name, base.AllocsPerOp, c.AllocsPerOp))
		}
		if base.NsPerOp > 0 && c.NsPerOp > base.NsPerOp*(1+tolerance) {
			violations = append(violations, fmt.Sprintf("%s: ns/op regressed %.1f -> %.1f (+%.0f%%, limit +%.0f%%)",
				name, base.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/base.NsPerOp-1), 100*tolerance))
		}
		// Throughput is only gated where the baseline recorded it; a
		// candidate that stopped reporting the metric fails too (that's
		// a dropped gate, same as a missing benchmark).
		if base.TestsPerS > 0 && c.TestsPerS < base.TestsPerS*(1-tolerance) {
			violations = append(violations, fmt.Sprintf("%s: tests/s dropped %.0f -> %.0f (%.0f%%, limit -%.0f%%)",
				name, base.TestsPerS, c.TestsPerS, 100*(c.TestsPerS/base.TestsPerS-1), 100*tolerance))
		}
	}
	sort.Strings(violations)
	return violations
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// latestBaseline picks the highest-numbered BENCH_<n>.json in dir.
func latestBaseline(dir string) (string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	numbered := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	best, bestN := "", -1
	for _, name := range names {
		m := numbered.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		var n int
		fmt.Sscanf(m[1], "%d", &n)
		if n > bestN {
			best, bestN = name, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no committed BENCH_<n>.json baseline in %s", dir)
	}
	return best, nil
}

func main() {
	baseline := flag.String("baseline", "auto", "baseline JSON (auto = highest committed BENCH_<n>.json)")
	candidate := flag.String("candidate", "", "candidate JSON from this run's scripts/bench.sh")
	prefix := flag.String("prefix", "BenchmarkDispatch", "gate benchmarks whose name has this prefix")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression")
	verbose := flag.Bool("v", false, "print the gated comparison table")
	flag.Parse()

	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "lfi-benchgate: -candidate is required")
		os.Exit(2)
	}
	basePath := *baseline
	if basePath == "auto" {
		var err error
		basePath, err = latestBaseline(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi-benchgate:", err)
			os.Exit(2)
		}
	}
	base, err := load(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi-benchgate:", err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi-benchgate:", err)
		os.Exit(2)
	}

	if *verbose {
		fmt.Printf("%-40s %14s %14s %10s %10s\n", "benchmark (vs "+filepath.Base(basePath)+")",
			"base ns/op", "cand ns/op", "base a/op", "cand a/op")
		for _, b := range base.Benchmarks {
			if !strings.HasPrefix(b.Name, *prefix) {
				continue
			}
			c, _ := findBench(cand.Benchmarks, b.Name)
			fmt.Printf("%-40s %14.1f %14.1f %10.0f %10.0f\n", b.Name, b.NsPerOp, c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp)
		}
	}

	violations := gate(base.Benchmarks, cand.Benchmarks, *prefix, *tolerance)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "lfi-benchgate: %d regression(s) vs %s:\n", len(violations), basePath)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	fmt.Printf("lfi-benchgate: ok — no alloc/op increase and ns/op within %.0f%% of %s\n",
		100**tolerance, basePath)
}
