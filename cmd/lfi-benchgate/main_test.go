package main

import (
	"strings"
	"testing"
)

func bench(name string, ns, allocs float64) Bench {
	return Bench{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

// TestGateCatchesSlowdown pins the CI acceptance criterion: a
// deliberate dispatch-path slowdown beyond the tolerance fails.
func TestGateCatchesSlowdown(t *testing.T) {
	base := []Bench{bench("BenchmarkDispatchInstrumentedHit-8", 100, 0)}
	slow := []Bench{bench("BenchmarkDispatchInstrumentedHit-4", 126, 0)}
	v := gate(base, slow, "BenchmarkDispatch", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op regressed") {
		t.Fatalf("slowdown not caught: %v", v)
	}
	// Within tolerance passes (and the GOMAXPROCS suffix is ignored).
	okRun := []Bench{bench("BenchmarkDispatchInstrumentedHit-16", 124, 0)}
	if v := gate(base, okRun, "BenchmarkDispatch", 0.25); len(v) != 0 {
		t.Fatalf("within-tolerance run rejected: %v", v)
	}
}

func TestGateCatchesAllocIncrease(t *testing.T) {
	base := []Bench{bench("BenchmarkDispatchInstrumentedMiss-8", 50, 0)}
	leaky := []Bench{bench("BenchmarkDispatchInstrumentedMiss-8", 48, 1)}
	v := gate(base, leaky, "BenchmarkDispatch", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op increased") {
		t.Fatalf("alloc increase not caught: %v", v)
	}
}

func TestGateCatchesMissingBenchmark(t *testing.T) {
	base := []Bench{
		bench("BenchmarkDispatchUninstrumented-8", 10, 0),
		bench("BenchmarkDispatchInstrumentedHit-8", 100, 0),
	}
	dropped := []Bench{bench("BenchmarkDispatchUninstrumented-8", 10, 0)}
	v := gate(base, dropped, "BenchmarkDispatch", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("dropped benchmark not caught: %v", v)
	}
}

// TestGateSubBenchmarkSuffixes: a baseline recorded on a 1-CPU box has
// no GOMAXPROCS suffix while the CI candidate does, and sub-benchmark
// names carry their own meaningful trailing -N — the matching ladder
// must neither collapse "workers-1"/"workers-8" into one key nor
// report them missing.
func TestGateSubBenchmarkSuffixes(t *testing.T) {
	base := []Bench{
		bench("BenchmarkCampaignParallel/cpu/workers-1", 100, 0),
		bench("BenchmarkCampaignParallel/cpu/workers-8", 50, 0),
	}
	candidate := []Bench{
		bench("BenchmarkCampaignParallel/cpu/workers-1-4", 101, 0),
		bench("BenchmarkCampaignParallel/cpu/workers-8-4", 52, 0),
	}
	if v := gate(base, candidate, "BenchmarkCampaign", 0.25); len(v) != 0 {
		t.Fatalf("suffix mismatch produced false violations: %v", v)
	}
	candidate[1].NsPerOp = 100 // regress only workers-8
	v := gate(base, candidate, "BenchmarkCampaign", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "workers-8") {
		t.Fatalf("regression not attributed to the right sub-benchmark: %v", v)
	}
}

// TestGateCatchesThroughputDrop: the tests/s custom metric is gated
// where the baseline recorded it — including the degenerate candidate
// that stopped reporting it at all (reads as 0 tests/s).
func TestGateCatchesThroughputDrop(t *testing.T) {
	base := []Bench{{Name: "BenchmarkCampaignParallel/cpu/workers-1", NsPerOp: 100, TestsPerS: 30000}}
	slow := []Bench{{Name: "BenchmarkCampaignParallel/cpu/workers-1", NsPerOp: 100, TestsPerS: 20000}}
	v := gate(base, slow, "BenchmarkCampaign", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "tests/s dropped") {
		t.Fatalf("throughput drop not caught: %v", v)
	}
	okRun := []Bench{{Name: "BenchmarkCampaignParallel/cpu/workers-1", NsPerOp: 100, TestsPerS: 25000}}
	if v := gate(base, okRun, "BenchmarkCampaign", 0.25); len(v) != 0 {
		t.Fatalf("within-tolerance throughput rejected: %v", v)
	}
	unreported := []Bench{{Name: "BenchmarkCampaignParallel/cpu/workers-1", NsPerOp: 100}}
	v = gate(base, unreported, "BenchmarkCampaign", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "tests/s dropped") {
		t.Fatalf("vanished throughput metric not caught: %v", v)
	}
	// A baseline without the metric gates nothing.
	noMetric := []Bench{{Name: "BenchmarkCampaignParallel/cpu/workers-1", NsPerOp: 100}}
	if v := gate(noMetric, unreported, "BenchmarkCampaign", 0.25); len(v) != 0 {
		t.Fatalf("metric-free baseline produced violations: %v", v)
	}
}

func TestGateIgnoresUngatedBenchmarks(t *testing.T) {
	base := []Bench{bench("BenchmarkCampaignParallel-8", 1000, 50)}
	worse := []Bench{bench("BenchmarkCampaignParallel-8", 5000, 80)}
	if v := gate(base, worse, "BenchmarkDispatch", 0.25); len(v) != 0 {
		t.Fatalf("ungated benchmark gated: %v", v)
	}
}
