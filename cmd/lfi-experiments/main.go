// Command lfi-experiments regenerates the paper's evaluation (§7):
// every table, Figure 3, the DoS study, and the analyzer-efficiency
// measurement.
//
// Usage:
//
//	lfi-experiments                  # run everything
//	lfi-experiments -table 2        # one table (1..6)
//	lfi-experiments -figure3        # the PBFT degradation series
//	lfi-experiments -dos            # the §7.3 DoS study
//	lfi-experiments -explorer       # coverage-guided explorer vs stock campaigns
//	lfi-experiments -quick          # smaller run counts everywhere
package main

import (
	"flag"
	"fmt"
	"os"

	"lfi/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "run a single table (1..6); 0 = as selected by other flags")
	fig3 := flag.Bool("figure3", false, "run the Figure 3 series")
	dos := flag.Bool("dos", false, "run the DoS study")
	eff := flag.Bool("efficiency", false, "run the analyzer-efficiency measurement")
	explorer := flag.Bool("explorer", false, "run the coverage-guided explorer comparison")
	quick := flag.Bool("quick", false, "reduced run counts (for smoke testing)")
	flag.Parse()

	all := *table == 0 && !*fig3 && !*dos && !*eff && !*explorer

	runs := 100
	t5req := 1000
	f3ops, f3trials := 15, 3
	if *quick {
		runs, t5req, f3ops, f3trials = 25, 200, 8, 2
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "lfi-experiments:", err)
		os.Exit(1)
	}

	if all || *table == 1 {
		res, err := experiments.Table1(*quick)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
	}
	if all || *table == 2 {
		res, err := experiments.Table2(runs)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
	}
	if all || *table == 3 {
		res, err := experiments.Table3()
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
	}
	if all || *table == 4 {
		fmt.Println(experiments.Table4())
	}
	if all || *table == 5 {
		res, err := experiments.Table5(t5req)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
		fmt.Printf("(max overhead %.1f%%)\n\n", res.MaxOverheadPct())
	}
	if all || *table == 6 {
		res, err := experiments.Table6(0)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
		fmt.Printf("(max overhead %.1f%%)\n\n", res.MaxOverheadPct())
	}
	if all || *fig3 {
		res, err := experiments.Figure3(f3ops, f3trials)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
	}
	if all || *dos {
		res, err := experiments.DoS(0)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
	}
	if all || *eff {
		fmt.Println(experiments.Efficiency())
	}
	if all || *explorer {
		res, err := experiments.Explorer(*quick)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
	}
}
