package main

import (
	"testing"

	"lfi"
)

func TestResolveWindow(t *testing.T) {
	if _, err := resolveWindow(-1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := resolveWindow(-100); err == nil {
		t.Error("negative window accepted")
	}
	w, err := resolveWindow(0)
	if err != nil || w != lfi.DefaultAnalysisWindow {
		t.Errorf("resolveWindow(0) = %d, %v; want the default window %d", w, err, lfi.DefaultAnalysisWindow)
	}
	w, err = resolveWindow(25)
	if err != nil || w != 25 {
		t.Errorf("resolveWindow(25) = %d, %v; want 25 verbatim", w, err)
	}
}
