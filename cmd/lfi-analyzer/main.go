// Command lfi-analyzer runs the call site analyzer (§5, Algorithm 1)
// over an application binary: it classifies every library call site as
// checked / partially checked / unchecked and generates the fault
// injection scenarios aimed at the vulnerable sites. Targets are
// resolved through the system registry, so every registered system is
// analyzable with no command changes.
//
// Usage:
//
//	lfi-analyzer -app minivcs                # classify all sites
//	lfi-analyzer -app minidns -scenarios     # also emit scenario XML
//	lfi-analyzer -app pbft -dis              # dump the disassembly
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lfi"
)

// resolveWindow maps the -window flag to the analyzer's window: 0 (the
// flag default) selects the paper's standard window explicitly rather
// than relying on the analyzer's internal fallback; negative widths
// are a usage error.
func resolveWindow(w int) (int, error) {
	if w < 0 {
		return 0, fmt.Errorf("-window %d: analysis window cannot be negative", w)
	}
	if w == 0 {
		return lfi.DefaultAnalysisWindow, nil
	}
	return w, nil
}

func main() {
	app := flag.String("app", "minivcs", "application binary: "+strings.Join(lfi.SystemNames(), ", "))
	emit := flag.Bool("scenarios", false, "emit generated injection scenarios (XML) for C_not and C_part")
	dis := flag.Bool("dis", false, "dump the binary disassembly to stderr")
	window := flag.Int("window", 0, fmt.Sprintf("post-call analysis window in instructions (default %d)", lfi.DefaultAnalysisWindow))
	flag.Parse()

	win, err := resolveWindow(*window)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfi-analyzer:", err)
		flag.Usage()
		os.Exit(2)
	}

	sys, ok := lfi.LookupSystem(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "lfi-analyzer: unknown application %q (registered: %s)\n",
			*app, strings.Join(lfi.SystemNames(), ", "))
		os.Exit(2)
	}
	bin, _ := sys.Binary()
	if *dis {
		fmt.Fprintln(os.Stderr, bin.Disassemble())
	}

	profs := sys.Profiles()
	a := &lfi.Analyzer{Window: win}
	rep := a.Analyze(bin, profs...)

	yes, part, not := rep.ByClass()
	fmt.Printf("%s: %d call sites: %d checked, %d partially checked, %d unchecked\n\n",
		bin.Name, len(rep.Sites), len(yes), len(part), len(not))
	for _, s := range rep.Sites {
		flagStr := ""
		if s.Indirect {
			flagStr = " [indirect branches near site]"
		}
		fmt.Printf("%6x  %-10s in %-22s %-9s eq=%v ineq=%v missing=%v%s\n",
			s.Offset, s.Callee, s.Caller, s.Class, s.ChkEq, s.ChkIneq, s.Missing, flagStr)
	}

	if *emit {
		scens := lfi.GenerateScenarios(bin, append(not, part...), profs...)
		fmt.Printf("\n%d generated scenarios:\n\n", len(scens))
		for _, s := range scens {
			os.Stdout.Write(s.Serialize())
			fmt.Println()
		}
	}
}
