// Command lfi-profiler runs the automated library profiler (§2): it
// statically analyzes a simulated library binary and emits the fault
// profile XML (error return values and errno side effects per exported
// function).
//
// Usage:
//
//	lfi-profiler -lib libc        # profile the built-in libc image
//	lfi-profiler -lib libxml
//	lfi-profiler -lib libapr
//	lfi-profiler -lib libc -dis   # also dump the disassembly
package main

import (
	"flag"
	"fmt"
	"os"

	"lfi/internal/isa"
	"lfi/internal/libspec"
	"lfi/internal/profile"
)

func main() {
	lib := flag.String("lib", "libc", "library to profile: libc, libxml, libapr")
	dis := flag.Bool("dis", false, "dump the library disassembly to stderr")
	flag.Parse()

	var bin *isa.Binary
	switch *lib {
	case "libc":
		bin = libspec.BuildLibc()
	case "libxml":
		bin = libspec.BuildLibxml()
	case "libapr":
		bin = libspec.BuildLibapr()
	default:
		fmt.Fprintf(os.Stderr, "lfi-profiler: unknown library %q\n", *lib)
		os.Exit(2)
	}
	if *dis {
		fmt.Fprintln(os.Stderr, bin.Disassemble())
	}
	p := profile.ProfileBinary(bin)
	os.Stdout.Write(p.Serialize())
}
