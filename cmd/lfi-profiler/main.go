// Command lfi-profiler runs the automated library profiler (§2): it
// statically analyzes a simulated library binary and emits the fault
// profile XML (error return values and errno side effects per exported
// function). Libraries are enumerated from the system registry's
// library table, not a hand-rolled switch.
//
// Usage:
//
//	lfi-profiler -lib libc        # profile the built-in libc image
//	lfi-profiler -lib libxml
//	lfi-profiler -lib libapr
//	lfi-profiler -lib libc -dis   # also dump the disassembly
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lfi/internal/profile"
	"lfi/internal/system"
)

func main() {
	lib := flag.String("lib", "libc", "library to profile: "+strings.Join(system.Libraries(), ", "))
	dis := flag.Bool("dis", false, "dump the library disassembly to stderr")
	flag.Parse()

	bin, ok := system.BuildLibrary(*lib)
	if !ok {
		fmt.Fprintf(os.Stderr, "lfi-profiler: unknown library %q (have: %s)\n",
			*lib, strings.Join(system.Libraries(), ", "))
		os.Exit(2)
	}
	if *dis {
		fmt.Fprintln(os.Stderr, bin.Disassemble())
	}
	p := profile.ProfileBinary(bin)
	os.Stdout.Write(p.Serialize())
}
