package raft

import (
	"fmt"

	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// electionPolls is the length of the trace's election segment: the
// follower's main loop polls from the election site this many times
// before entering the replication loop. The scripted trace (six terms
// of vote-request/heartbeat churn plus a settling heartbeat) matches it
// exactly; raft_test.go pins the alignment.
const electionPolls = 13

// sendRetries bounds the release build's silent resend of a failed
// sendto (the robust reply layer).
const sendRetries = 8

// Follower is the RAFT replica-under-test: a follower of a three-node
// cluster whose leader and rival candidate are scripted by the harness.
type Follower struct {
	ID int

	C  *libsim.C
	Th *libsim.Thread
	fd int64

	// Cov tracks block coverage for the fault-space explorer; blocks
	// follow the rec.<siteLabel> convention of the application targets.
	Cov   *coverage.Tracker
	covOn bool

	term     int
	votedFor int
	leader   int
	// log is the replicated entry slice (1-based index i at log[i-1]);
	// "" marks a truncated hole — an entry whose APPEND was lost and
	// whose piggybacked repair chance was lost with the next one.
	log    []string
	commit int
	polls  int
}

// NewFollower creates follower id, bound to the shared network.
func NewFollower(id int, net libsim.NetBackend) *Follower {
	c := libsim.New(1 << 22)
	c.Node = fmt.Sprintf("N%d", id)
	c.SetNet(net)
	c.MustMkdirAll("/raft")
	f := &Follower{
		ID:       id,
		C:        c,
		Th:       c.NewThread(ModuleFollower, "main"),
		Cov:      coverage.New(),
		votedFor: -1,
		leader:   -1,
	}
	f.registerCoverage()
	return f
}

func (f *Follower) registerCoverage() {
	reg := func(id string, loc int, rec bool) { f.Cov.Register(id, loc, rec) }
	reg("main.vote", 18, false)
	reg("main.heartbeat", 12, false)
	reg("main.append", 20, false)
	reg("main.repair", 16, false)
	reg("main.commit", 10, false)
	reg("main.snapshot", 12, false)
	reg("main.shutdown", 8, false)
	// Recovery arms: the two receive-failure paths (election loop,
	// replication loop), the reply retry loop, and the tolerated
	// periodic-snapshot open failure.
	reg("rec.el_recvfrom", 5, true)
	reg("rec.ap_recvfrom", 5, true)
	reg("rec.rp_sendto", 6, true)
	reg("rec.sn_fopen_ok", 3, true)
}

// hit records a coverage block when tracking is enabled.
func (f *Follower) hit(id string) {
	if f.covOn {
		f.Cov.Hit(id)
	}
}

// EnableCoverage turns per-block coverage recording on.
func (f *Follower) EnableCoverage() { f.covOn = true }

// Image returns the follower's simulated process.
func (f *Follower) Image() *libsim.C { return f.C }

// Coverage returns the follower's block tracker.
func (f *Follower) Coverage() *coverage.Tracker { return f.Cov }

// Committed returns the follower's commit index.
func (f *Follower) Committed() int { return f.commit }

// Log returns a copy of the replicated log ("" = truncated hole).
func (f *Follower) Log() []string { return append([]string(nil), f.log...) }

func (f *Follower) at(fn, label string) func() {
	_, offsets := Binary()
	return f.Th.Enter(ModuleFollower, fn, offsets[label])
}

// Open creates and binds the follower socket; the harness drives
// receives itself.
func (f *Follower) Open() error {
	t := f.Th
	f.fd = t.Socket()
	if f.fd < 0 {
		return fmt.Errorf("raft: follower %d: socket: %v", f.ID, t.Errno())
	}
	if t.Bind(f.fd, NodeAddr(f.ID)) < 0 {
		return fmt.Errorf("raft: follower %d: bind: %v", f.ID, t.Errno())
	}
	return nil
}

// PollOnce performs exactly one non-blocking receive and handles the
// message if one arrived, reporting whether a datagram was consumed.
// The follower's main loop runs the election phase for the scripted
// number of polls before entering the replication loop, so the two
// receive interceptions come from distinct call sites — the reason
// site-local (call-stack window) bursts can reach the replication
// stream when global occurrence counts cannot.
func (f *Follower) PollOnce(buf []byte) bool {
	f.polls++
	var pop func()
	election := f.polls <= electionPolls
	if election {
		pop = f.at("election", "el_recvfrom")
	} else {
		pop = f.at("applog", "ap_recvfrom")
	}
	var from string
	n := f.Th.Recvfrom(f.fd, buf, &from, 0)
	pop()
	if n <= 0 {
		if election {
			f.hit("rec.el_recvfrom")
		} else {
			f.hit("rec.ap_recvfrom")
		}
		return false
	}
	if m, ok := DecodeMsg(buf[:n]); ok {
		f.handle(m)
	}
	return true
}

// send transmits one reply, silently retrying a bounded number of
// times on failure (release build: a reply that cannot be delivered is
// given up, never reported).
func (f *Follower) send(dst string, m Msg) {
	payload := m.Encode()
	for i := 0; i < 1+sendRetries; i++ {
		pop := f.at("reply", "rp_sendto")
		n := f.Th.Sendto(f.fd, payload, dst)
		pop()
		if n >= 0 {
			return
		}
		if i == 0 {
			f.hit("rec.rp_sendto") // retry path entered
		}
	}
}

// handle dispatches one received message.
func (f *Follower) handle(m Msg) {
	switch m.Type {
	case TypeVoteReq:
		f.onVoteReq(m)
	case TypeAppend:
		f.onAppend(m)
	}
}

// onVoteReq grants a vote for any term newer than the follower's own —
// one vote per term, the core of election safety.
func (f *Follower) onVoteReq(m Msg) {
	f.hit("main.vote")
	if m.Term < f.term {
		return
	}
	if m.Term > f.term {
		f.term, f.votedFor = m.Term, -1
	}
	if f.votedFor != -1 && f.votedFor != m.From {
		return // one vote per term
	}
	f.votedFor = m.From
	f.send(NodeAddr(m.From), Msg{Type: TypeVoteResp, Term: f.term, From: f.ID})
}

// onAppend handles a heartbeat (Idx 0) or a log replication. A hole of
// exactly one entry is repaired from the message's piggybacked
// predecessor; a deeper hole is truncated — filled with contentless
// slots the trace never retransmits. The commit index advances from
// the leader's word alone; the seeded bug is that nothing re-checks
// that every entry below it has content (see Snapshot).
func (f *Follower) onAppend(m Msg) {
	if m.Term >= f.term {
		f.term, f.leader = m.Term, m.From
	}
	if m.Idx == 0 {
		f.hit("main.heartbeat")
	} else {
		f.hit("main.append")
		if m.Idx <= len(f.log) {
			if f.log[m.Idx-1] == "" {
				f.log[m.Idx-1] = m.Op // late retransmission repairs in place
			}
		} else {
			for len(f.log) < m.Idx-2 {
				f.log = append(f.log, "") // truncated: predecessor content is gone
			}
			if len(f.log) == m.Idx-2 {
				// One-entry hole: repair from the piggybacked predecessor.
				f.hit("main.repair")
				f.log = append(f.log, m.PrevOp)
			}
			f.log = append(f.log, m.Op)
		}
	}
	if m.Commit > f.commit {
		// BUG (Table 1 class): the leader's commit index is adopted
		// without verifying the local log actually holds content for
		// every entry below it.
		f.hit("main.commit")
		f.commit = m.Commit
	}
	f.send(NodeAddr(m.From), Msg{Type: TypeAck, Term: f.term, From: f.ID, Idx: len(f.log)})
}

// Snapshot persists the committed prefix (the checked-fopen periodic
// path). Walking the prefix dereferences every committed entry — a
// truncated hole below the commit index is the seeded crash.
func (f *Follower) Snapshot() {
	t := f.Th
	f.hit("main.snapshot")
	for i := 1; i <= f.commit; i++ {
		if i > len(f.log) || f.log[i-1] == "" {
			t.RaiseCrash(libsim.Segfault,
				"log truncation: snapshot of committed entry %d with no content", i)
		}
	}
	pop := f.at("snapshot", "sn_fopen_ok")
	fp := t.Fopen(fmt.Sprintf("/raft/snap-%d", f.commit), "w")
	pop()
	if fp == 0 {
		f.hit("rec.sn_fopen_ok")
		return // periodic snapshot failure is tolerated
	}
	pop = f.at("snapshot", "sn_fwrite_ok")
	t.Fwrite([]byte(fmt.Sprintf("snap %d term=%d", f.commit, f.term)), fp)
	pop()
	t.Fclose(fp)
}

// ShutdownSnapshot is the follower's exit path: it writes a final
// snapshot WITHOUT checking that the file opened — the unchecked-fopen
// bug (fwrite through a NULL FILE*).
func (f *Follower) ShutdownSnapshot() {
	t := f.Th
	f.hit("main.shutdown")
	pop := f.at("shutdown", "sd_fopen")
	fp := t.Fopen("/raft/snapshot-final", "w")
	pop()
	// BUG: fp not checked.
	pop = f.at("shutdown", "sd_fwrite")
	t.Fwrite([]byte(fmt.Sprintf("final snap commit=%d", f.commit)), fp)
	pop()
	t.Fclose(fp)
}

// Finish runs the post-trace epilogue: the periodic snapshot (where a
// truncated committed entry crashes) and the shutdown snapshot (where
// the unchecked fopen crashes).
func (f *Follower) Finish() {
	f.Snapshot()
	f.ShutdownSnapshot()
}
