package raft

import (
	"sync"

	"lfi/internal/asm"
	"lfi/internal/isa"
)

// ModuleFollower is the follower binary's module name; explorer
// call-stack triggers pin to it.
const ModuleFollower = "raft/follower"

// Sites is the ground-truth call-site model of the follower binary.
// The receive path is split across two call sites — the election loop
// and the replication loop — which is what makes the log-truncation
// burst a *call-stack* window: the global recvfrom count has already
// passed the occurrence bound by the time the replication site runs.
func Sites() []asm.FuncSpec {
	return []asm.FuncSpec{
		{Name: "election", Sites: []asm.SiteSpec{
			// The election loop feeds the recvfrom return straight into
			// message handling without an error check.
			{Label: "el_recvfrom", Callee: "recvfrom", Style: asm.CheckNone},
		}},
		{Name: "applog", Sites: []asm.SiteSpec{
			// Same unchecked pattern in the replication loop.
			{Label: "ap_recvfrom", Callee: "recvfrom", Style: asm.CheckNone},
		}},
		{Name: "reply", Sites: []asm.SiteSpec{
			// Vote replies and acks: send failures are silently retried
			// a bounded number of times, then given up (release build).
			{Label: "rp_sendto", Callee: "sendto", Style: asm.CheckNone},
		}},
		{Name: "snapshot", Sites: []asm.SiteSpec{
			{Label: "sn_fopen_ok", Callee: "fopen", Style: asm.CheckEqZero},
			{Label: "sn_fwrite_ok", Callee: "fwrite", Style: asm.CheckEq, Codes: []int64{0}},
		}},
		{Name: "shutdown", Sites: []asm.SiteSpec{
			// BUG (Table 1 class): the final snapshot's fopen is
			// unchecked; the following fwrite crashes on the NULL stream.
			{Label: "sd_fopen", Callee: "fopen", Style: asm.CheckNone},
			{Label: "sd_fwrite", Callee: "fwrite", Style: asm.CheckIneq},
		}},
	}
}

var (
	binOnce sync.Once
	bin     *isa.Binary
	offs    map[string]uint64
)

// Binary returns the compiled follower program image and site offsets.
func Binary() (*isa.Binary, map[string]uint64) {
	binOnce.Do(func() {
		var err error
		bin, offs, err = asm.Program(ModuleFollower, Sites())
		if err != nil {
			panic("raft: " + err.Error())
		}
	})
	return bin, offs
}
