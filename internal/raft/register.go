package raft

import "lfi/internal/system"

// SystemName is the registry name of the scripted RAFT follower harness.
const SystemName = "raft"

// The descriptor makes the RAFT follower harness visible to every
// registry-driven entry point — the whole registration is this one
// package (the distharness layer supplies the trace loop). The
// log-truncation crash is StackWindowOnly: the replication APPENDs sit
// at global recvfrom counts past the occurrence bound (the election
// churn consumed it), and a single loss is repaired from the next
// message's piggybacked entry — only a bred call-stack window, a burst
// counted locally at the applog receive site, can lose two consecutive
// APPENDs. The conformance test enforces that nothing else finds it.
func init() {
	system.Register(&system.Descriptor{
		Name:               SystemName,
		Workload:           "scripted deterministic follower-trace harness (six-term election churn, then four replicated log entries)",
		Binary:             Binary,
		Target:             Target,
		TargetWithCoverage: TargetWithCoverage,
		Profiles:           system.DefaultProfiles,
		StockBugs: []system.StockBug{
			{Match: "fwrite(NULL FILE*)", Note: "shutdown snapshot's unchecked fopen crashes the following fwrite"},
			{Match: "log truncation", Note: "commit index advanced past entries truncated by two consecutive APPEND losses; the snapshot of the committed prefix dereferences the hole", WindowOnly: true, StackWindowOnly: true},
		},
	})
}
