// Package raft implements a RAFT follower (Ongaro & Ousterhout) over
// the simulated network, as the second distributed target system — the
// one-package registration that demonstrates the distharness layer's
// extensibility claim: no trace-loop machinery of its own, just the
// protocol knowledge (trace, replica, oracle).
//
// The scripted harness drives a follower through a noisy six-term
// startup (vote requests and heartbeats — leader election recovery)
// and then a four-entry log replication with piggybacked repair. Two
// Table-1-class bugs are seeded, mirroring the PBFT pair:
//
//   - the shutdown snapshot writes through a FILE* obtained from an
//     unchecked fopen — fwrite(NULL) crashes;
//   - the follower advances its commit index from the leader's word
//     alone, without re-checking that every committed entry has
//     content. A single lost APPEND is repaired from the next
//     message's piggybacked predecessor entry, but losing two
//     *consecutive* APPENDs leaves a truncated hole below the commit
//     index, and the snapshot of the committed prefix then
//     dereferences it. Because the replication phase sits past the
//     election churn in the receive stream, the burst is out of the
//     global occurrence counter's range — only the explorer's bred
//     call-stack windows (site-local bursts) reach it.
package raft

import (
	"encoding/json"
	"fmt"
)

// Message types.
const (
	// TypeVoteReq solicits a vote for a candidate's term.
	TypeVoteReq = "VOTE-REQ"
	// TypeVoteResp grants a vote.
	TypeVoteResp = "VOTE-RESP"
	// TypeAppend replicates a log entry; with Idx 0 it is a heartbeat.
	TypeAppend = "APPEND"
	// TypeAck acknowledges an append or heartbeat.
	TypeAck = "ACK"
)

// Msg is the wire format of every RAFT message. PrevOp piggybacks the
// predecessor entry's content, so a follower that lost exactly one
// APPEND can repair the hole from the next one.
type Msg struct {
	Type   string `json:"t"`
	Term   int    `json:"tm,omitempty"`
	From   int    `json:"f"`
	Idx    int    `json:"i,omitempty"`
	Op     string `json:"op,omitempty"`
	PrevOp string `json:"po,omitempty"`
	Commit int    `json:"c,omitempty"`
}

// Encode serializes the message.
func (m Msg) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("raft: marshal: %v", err))
	}
	return b
}

// DecodeMsg parses one datagram; ok is false for garbage.
func DecodeMsg(b []byte) (Msg, bool) {
	var m Msg
	if err := json.Unmarshal(b, &m); err != nil {
		return Msg{}, false
	}
	return m, m.Type != ""
}

// NodeAddr returns the network address of node i.
func NodeAddr(i int) string { return fmt.Sprintf("raft-%d", i) }
