package raft

import (
	"fmt"

	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/distharness"
	"lfi/internal/netsim"
)

// followerID is the replica-under-test: follower 1 of a three-node
// cluster whose leader (node 0) and rival candidate (node 2) are
// scripted by the trace.
const followerID = 1

// protocol is RAFT's distharness plug — the whole adaptation of a new
// distributed target to the generic trace loop.
type protocol struct{}

// Protocol returns RAFT's scripted-trace protocol description.
func Protocol() distharness.Protocol { return protocol{} }

func (protocol) Name() string { return "raft" }

func (protocol) Addr() string { return NodeAddr(followerID) }

// Sinks lists the two peers, so vote replies and acks have live
// destinations.
func (protocol) Sinks() []string {
	return []string{NodeAddr(0), NodeAddr(2)}
}

// NewReplica stages a follower with coverage recording on.
func (protocol) NewReplica(net *netsim.Network) distharness.Replica {
	f := NewFollower(followerID, net)
	f.EnableCoverage()
	return f
}

// Trace is the recorded message sequence: a noisy six-term startup —
// node 2 soliciting votes, node 0 answering with heartbeats — then a
// settling heartbeat, then four replicated entries and the heartbeat
// that commits the last one. The election segment is exactly
// electionPolls messages long, so the replication APPENDs all arrive
// at the applog call site — past the global occurrence range, inside
// the site-local one.
func (protocol) Trace() [][]byte {
	var msgs []Msg
	for term := 1; term <= 6; term++ {
		msgs = append(msgs,
			Msg{Type: TypeVoteReq, Term: term, From: 2},
			Msg{Type: TypeAppend, Term: term, From: 0}, // heartbeat
		)
	}
	msgs = append(msgs, Msg{Type: TypeAppend, Term: 6, From: 0}) // the cluster settles
	if len(msgs) != electionPolls {
		panic(fmt.Sprintf("raft: election trace %d messages, want %d", len(msgs), electionPolls))
	}
	// Replication: each APPEND piggybacks its predecessor's content
	// (PrevOp), so a follower that lost exactly one message repairs the
	// hole from the next; two consecutive losses truncate the log. The
	// final message retransmits entry 4 and commits it, so a single
	// loss anywhere in the segment still converges.
	op := func(i int) string { return fmt.Sprintf("op-%d", i) }
	msgs = append(msgs,
		Msg{Type: TypeAppend, Term: 6, From: 0, Idx: 1, Op: op(1), Commit: 0},
		Msg{Type: TypeAppend, Term: 6, From: 0, Idx: 2, Op: op(2), PrevOp: op(1), Commit: 1},
		Msg{Type: TypeAppend, Term: 6, From: 0, Idx: 3, Op: op(3), PrevOp: op(2), Commit: 2},
		Msg{Type: TypeAppend, Term: 6, From: 0, Idx: 4, Op: op(4), PrevOp: op(3), Commit: 3},
		Msg{Type: TypeAppend, Term: 6, From: 0, Idx: 4, Op: op(4), PrevOp: op(3), Commit: 4},
	)
	trace := make([][]byte, len(msgs))
	for i, m := range msgs {
		trace[i] = m.Encode()
	}
	return trace
}

// Check is the liveness oracle: a surviving run must have committed
// all four entries.
func (protocol) Check(r distharness.Replica) error {
	if got := r.(*Follower).Committed(); got != 4 {
		return fmt.Errorf("raft harness: committed %d of 4 entries", got)
	}
	return nil
}

// Target adapts the scripted harness to the LFI controller.
func Target() controller.Target { return distharness.Target(Protocol()) }

// TargetWithCoverage is Target plus per-run coverage merged into acc.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return distharness.TargetWithCoverage(Protocol(), acc)
}
