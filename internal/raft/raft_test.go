package raft

import (
	"fmt"
	"strings"
	"testing"

	"lfi/internal/controller"
	"lfi/internal/errno"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// TestTraceAlignment pins the phase boundary: the election segment must
// be exactly electionPolls messages, so every replication APPEND lands
// on the applog call site.
func TestTraceAlignment(t *testing.T) {
	trace := Protocol().Trace()
	if got, want := len(trace), electionPolls+5; got != want {
		t.Fatalf("trace length %d, want %d", got, want)
	}
}

// TestBaselineCommits runs the harness uninjected: all four entries
// commit, no crash.
func TestBaselineCommits(t *testing.T) {
	out, err := controller.RunOne(Target(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("baseline failed: %v", out)
	}
}

// siteWindow builds the shape the explorer breeds for this target: a
// CallStackTrigger pinning one receive site composed with a
// SiteCountTrigger burst counted locally at that site.
func siteWindow(t *testing.T, label string, from, to uint64) *scenario.Scenario {
	t.Helper()
	_, offsets := Binary()
	off, ok := offsets[label]
	if !ok {
		t.Fatalf("no site %q", label)
	}
	bld := scenario.NewBuilder(fmt.Sprintf("raft-%s-window-%d-%d", label, from, to))
	cs := bld.Trigger("cs", "CallStackTrigger", &trigger.Args{
		Name: "args",
		Children: []*trigger.Args{{
			Name: "frame",
			Children: []*trigger.Args{
				{Name: "module", Text: ModuleFollower},
				{Name: "offset", Text: fmt.Sprintf("%x", off)},
			},
		}},
	})
	win := bld.Trigger("win", "SiteCountTrigger", scenario.BurstArgs(from, to))
	bld.Inject("recvfrom", 0, -1, errno.EINTR, cs, win)
	s, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSingleLossRepaired: losing exactly one APPEND is repaired from
// the next message's piggybacked predecessor entry — the run commits
// everything and survives.
func TestSingleLossRepaired(t *testing.T) {
	for _, win := range [][2]uint64{{1, 1}, {2, 2}, {3, 3}, {4, 4}} {
		out, err := controller.RunOne(Target(), siteWindow(t, "ap_recvfrom", win[0], win[1]))
		if err != nil {
			t.Fatal(err)
		}
		if out.Injections == 0 {
			t.Fatalf("window %v: no injection", win)
		}
		if out.Failed() {
			t.Fatalf("window %v: single loss not repaired: %v", win, out)
		}
	}
}

// TestConsecutiveLossTruncates: losing two consecutive APPENDs leaves a
// hole below the commit index that single-entry repair cannot fill; the
// snapshot of the committed prefix crashes — the seeded
// StackWindowOnly bug.
func TestConsecutiveLossTruncates(t *testing.T) {
	for _, win := range [][2]uint64{{1, 2}, {2, 3}} {
		out, err := controller.RunOne(Target(), siteWindow(t, "ap_recvfrom", win[0], win[1]))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crash == nil || !strings.Contains(out.Crash.Reason, "log truncation") {
			t.Fatalf("window %v: want log truncation crash, got %v", win, out)
		}
	}
}

// TestElectionLossTolerated: the same burst at the election site is
// protocol noise the follower rides out.
func TestElectionLossTolerated(t *testing.T) {
	out, err := controller.RunOne(Target(), siteWindow(t, "el_recvfrom", 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Injections == 0 {
		t.Fatal("no injection")
	}
	if out.Failed() {
		t.Fatalf("election losses not tolerated: %v", out)
	}
}

// TestTailLossFailsWorkload: losing the commit-carrying tail is not a
// crash but the liveness oracle notices the missing commits.
func TestTailLossFailsWorkload(t *testing.T) {
	out, err := controller.RunOne(Target(), siteWindow(t, "ap_recvfrom", 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil {
		t.Fatalf("unexpected crash: %v", out.Crash)
	}
	if out.WorkErr == nil || !strings.Contains(out.WorkErr.Error(), "committed") {
		t.Fatalf("want committed-X-of-4 workload failure, got %v", out)
	}
}
