package errno

import (
	"testing"
	"testing/quick"
)

func TestStringKnown(t *testing.T) {
	cases := map[Errno]string{
		OK: "OK", EINTR: "EINTR", EIO: "EIO", ENOMEM: "ENOMEM", EAGAIN: "EAGAIN",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(e), got, want)
		}
	}
}

func TestStringUnknown(t *testing.T) {
	if got := Errno(9999).String(); got != "errno(9999)" {
		t.Errorf("unknown errno = %q", got)
	}
}

func TestParseSymbolic(t *testing.T) {
	e, ok := Parse("EINTR")
	if !ok || e != EINTR {
		t.Fatalf("Parse(EINTR) = %v, %v", e, ok)
	}
}

func TestParseNumeric(t *testing.T) {
	e, ok := Parse("5")
	if !ok || e != EIO {
		t.Fatalf("Parse(5) = %v, %v", e, ok)
	}
}

func TestParseGarbage(t *testing.T) {
	if _, ok := Parse("NOT_AN_ERRNO"); ok {
		t.Fatal("Parse accepted garbage")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, e := range All() {
		got, ok := Parse(e.String())
		if !ok || got != e {
			t.Errorf("round trip failed for %v", e)
		}
	}
}

func TestAllSortedAndKnown(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("All returned nothing")
	}
	for i, e := range all {
		if e == OK {
			t.Error("All contains OK")
		}
		if !Known(e) {
			t.Errorf("All contains unknown errno %v", e)
		}
		if i > 0 && all[i-1] >= e {
			t.Errorf("All not strictly ascending at %d: %v >= %v", i, all[i-1], e)
		}
	}
}

func TestErrorInterface(t *testing.T) {
	var err error = EIO
	if err.Error() != "EIO" {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		Parse(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
