// Package errno defines the simulated C-library error numbers used
// throughout the LFI reproduction.
//
// The values deliberately mirror the common Linux numbering so that fault
// profiles, injection scenarios, and logs read like the paper's examples
// (EINTR=4, EIO=5, ...). Everything that crosses the simulated
// program/library boundary reports failure via a return value plus one of
// these codes stored in the calling thread's errno slot.
package errno

import "fmt"

// Errno is a simulated C errno value. The zero value means "no error".
type Errno int

// Simulated errno values (Linux numbering).
const (
	OK           Errno = 0   // no error
	EPERM        Errno = 1   // operation not permitted
	ENOENT       Errno = 2   // no such file or directory
	EINTR        Errno = 4   // interrupted system call
	EIO          Errno = 5   // I/O error
	EBADF        Errno = 9   // bad file descriptor
	EAGAIN       Errno = 11  // resource temporarily unavailable
	ENOMEM       Errno = 12  // cannot allocate memory
	EACCES       Errno = 13  // permission denied
	EFAULT       Errno = 14  // bad address
	EBUSY        Errno = 16  // device or resource busy
	EEXIST       Errno = 17  // file exists
	ENOTDIR      Errno = 20  // not a directory
	EISDIR       Errno = 21  // is a directory
	EINVAL       Errno = 22  // invalid argument
	ENFILE       Errno = 23  // too many open files in system
	EMFILE       Errno = 24  // too many open files
	ENOSPC       Errno = 28  // no space left on device
	EPIPE        Errno = 32  // broken pipe
	ENAMETOOLONG Errno = 36  // file name too long
	ENOSYS       Errno = 38  // function not implemented
	ELOOP        Errno = 40  // too many levels of symbolic links
	ECONNRESET   Errno = 104 // connection reset by peer
	ETIMEDOUT    Errno = 110 // connection timed out
	ECONNREFUSED Errno = 111 // connection refused
	EHOSTUNREACH Errno = 113 // no route to host
)

var names = map[Errno]string{
	OK:           "OK",
	EPERM:        "EPERM",
	ENOENT:       "ENOENT",
	EINTR:        "EINTR",
	EIO:          "EIO",
	EBADF:        "EBADF",
	EAGAIN:       "EAGAIN",
	ENOMEM:       "ENOMEM",
	EACCES:       "EACCES",
	EFAULT:       "EFAULT",
	EBUSY:        "EBUSY",
	EEXIST:       "EEXIST",
	ENOTDIR:      "ENOTDIR",
	EISDIR:       "EISDIR",
	EINVAL:       "EINVAL",
	ENFILE:       "ENFILE",
	EMFILE:       "EMFILE",
	ENOSPC:       "ENOSPC",
	EPIPE:        "EPIPE",
	ENAMETOOLONG: "ENAMETOOLONG",
	ENOSYS:       "ENOSYS",
	ELOOP:        "ELOOP",
	ECONNRESET:   "ECONNRESET",
	ETIMEDOUT:    "ETIMEDOUT",
	ECONNREFUSED: "ECONNREFUSED",
	EHOSTUNREACH: "EHOSTUNREACH",
}

var byName map[string]Errno

func init() {
	byName = make(map[string]Errno, len(names))
	for e, n := range names {
		byName[n] = e
	}
}

// String returns the symbolic name ("EINTR") or a numeric form for
// unknown values.
func (e Errno) String() string {
	if n, ok := names[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Error implements the error interface so simulated failures can flow
// through Go error plumbing in tests and tools.
func (e Errno) Error() string { return e.String() }

// Parse maps a symbolic name ("EIO") or decimal string to an Errno.
// It returns OK,false for names it does not know.
func Parse(s string) (Errno, bool) {
	if e, ok := byName[s]; ok {
		return e, true
	}
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err == nil {
		return Errno(v), true
	}
	return OK, false
}

// Known reports whether e is one of the defined errno constants.
func Known(e Errno) bool {
	_, ok := names[e]
	return ok
}

// All returns every defined errno value except OK, in ascending order.
func All() []Errno {
	out := make([]Errno, 0, len(names)-1)
	for e := range names {
		if e != OK {
			out = append(out, e)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
