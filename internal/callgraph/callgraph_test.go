package callgraph

import (
	"reflect"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/callsite"
	"lfi/internal/impact"
	"lfi/internal/isa"
	"lfi/internal/libspec"
	"lfi/internal/profile"
)

func libcProfiles() []*profile.Profile {
	return []*profile.Profile{profile.ProfileBinary(libspec.BuildLibc())}
}

func siteAt(t *testing.T, a *Analysis, offs map[string]uint64, label string) Site {
	t.Helper()
	off, ok := offs[label]
	if !ok {
		t.Fatalf("label %s not in site map", label)
	}
	for _, s := range a.Sites {
		if s.Offset == off {
			return s
		}
	}
	t.Fatalf("no analyzed site at %s (offset %#x)", label, off)
	return Site{}
}

// TestWholeFunctionRefinement: the function-bounded walk keeps the
// windowed classes where they are right, promotes provably-dropped
// errors to Swallowed, sees checks beyond the 100-instruction window,
// and falls back to the windowed class under indirect control flow.
func TestWholeFunctionRefinement(t *testing.T) {
	specs := []asm.FuncSpec{
		{Name: "load", Sites: []asm.SiteSpec{
			{Label: "read_full", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1, 0}},
			{Label: "read_none", Callee: "read", Style: asm.CheckNone},
		}},
		{Name: "slow", Sites: []asm.SiteSpec{
			{Label: "close_far", Callee: "close", Style: asm.CheckBeyondWindow},
		}},
		{Name: "hidden", Sites: []asm.SiteSpec{
			{Label: "open_hidden", Callee: "open", Style: asm.CheckHiddenIndirect, Codes: []int64{-1}},
		}},
	}
	bin, offs, err := asm.Program("app", specs)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(bin, libcProfiles())

	if s := siteAt(t, a, offs, "read_full"); s.Final != callsite.Checked {
		t.Errorf("read_full: final %v, want checked", s.Final)
	}
	s := siteAt(t, a, offs, "read_none")
	if s.Final != callsite.Swallowed || !s.DeadRecovery {
		t.Errorf("read_none: final %v (dead=%v), want swallowed+dead", s.Final, s.DeadRecovery)
	}
	s = siteAt(t, a, offs, "close_far")
	if s.Intra != callsite.Unchecked {
		t.Errorf("close_far: windowed class %v, want unchecked (beyond window)", s.Intra)
	}
	if s.Final != callsite.Checked {
		t.Errorf("close_far: final %v, want checked (whole-function walk)", s.Final)
	}
	// The hidden-indirect site keeps the paper's known false positive:
	// the walk meets an IJMP, so the windowed class stands.
	s = siteAt(t, a, offs, "open_hidden")
	if s.Final != callsite.Unchecked || s.Final != s.Intra {
		t.Errorf("open_hidden: final %v intra %v, want both unchecked", s.Final, s.Intra)
	}
	if a.IndirectCalls == 0 {
		t.Error("IndirectCalls = 0, want > 0 (hidden IJMP accounted)")
	}
}

// checkingCaller emits a function that CALLNs target and checks the
// returned value against -1 with a recovery branch.
func checkingCaller(b *asm.Builder, name, target string) {
	b.Func(name)
	b.Movi(13, 0)
	b.J(isa.CALLN, target)
	b.Cmpi(0, -1)
	b.J(isa.JE, name+".err")
	b.Movi(0, 0)
	b.Ret()
	b.Label(name + ".err")
	b.Movi(11, -1)
	b.Movi(0, 0)
	b.Ret()
}

// TestCheckedInCaller: an unchecked-but-propagating site is demoted
// once every direct caller checks the propagated value — including
// through a chain of propagating frames — and stays C_not as soon as
// one caller drops it.
func TestCheckedInCaller(t *testing.T) {
	build := func(extra func(*asm.Builder)) (*isa.Binary, uint64) {
		b := asm.NewBuilder("chain")
		b.Func("prop")
		b.Label("prop.entry")
		b.Movi(13, 0)
		off := b.CallImport("read")
		b.Ret()
		checkingCaller(b, "good", "prop.entry")
		if extra != nil {
			extra(b)
		}
		bin, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return bin, off
	}

	// Single checking caller: demoted.
	bin, off := build(nil)
	a := Analyze(bin, libcProfiles())
	if cls, ok := a.ClassAt(off); !ok || cls != callsite.CheckedInCaller {
		t.Fatalf("prop read: class %v, want checked-in-caller", cls)
	}
	if !a.RetChecked["prop"] {
		t.Error("RetChecked[prop] = false, want true")
	}

	// A second caller that drops the value: demotion withdrawn.
	bin, off = build(func(b *asm.Builder) {
		b.Func("bad")
		b.Movi(13, 0)
		b.J(isa.CALLN, "prop.entry")
		b.Movi(0, 0)
		b.Ret()
	})
	a = Analyze(bin, libcProfiles())
	if cls, _ := a.ClassAt(off); cls != callsite.Unchecked {
		t.Fatalf("prop read with dropping caller: class %v, want unchecked", cls)
	}

	// A propagating middle frame checked at the top: demoted through
	// the chain.
	b := asm.NewBuilder("deep")
	b.Func("prop")
	b.Label("prop.entry")
	b.Movi(13, 0)
	off = b.CallImport("read")
	b.Ret()
	b.Func("mid")
	b.Label("mid.entry")
	b.Movi(13, 0)
	b.J(isa.CALLN, "prop.entry")
	b.Ret()
	checkingCaller(b, "top", "mid.entry")
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a = Analyze(bin, libcProfiles())
	if cls, _ := a.ClassAt(off); cls != callsite.CheckedInCaller {
		t.Fatalf("chained prop read: class %v, want checked-in-caller", cls)
	}

	// An indirect call anywhere in the image: unknown callers, no
	// demotion claimable.
	bin, off = build(func(b *asm.Builder) {
		b.Func("dyn")
		b.Movi(13, 0)
		b.MoviLabel(5, "prop.entry")
		b.IJmp(5)
	})
	a = Analyze(bin, libcProfiles())
	if cls, _ := a.ClassAt(off); cls != callsite.Unchecked {
		t.Fatalf("prop read under indirect flow: class %v, want unchecked", cls)
	}
}

// TestSCCCondensation: mutual recursion lands in one component, and
// components come out callees-first.
func TestSCCCondensation(t *testing.T) {
	b := asm.NewBuilder("rec")
	b.Func("a")
	b.Label("a.entry")
	b.Movi(13, 0)
	b.J(isa.CALLN, "b.entry")
	b.Ret()
	b.Func("b")
	b.Label("b.entry")
	b.Movi(13, 0)
	b.J(isa.CALLN, "a.entry")
	b.Ret()
	b.Func("main")
	b.Movi(13, 0)
	b.J(isa.CALLN, "a.entry")
	b.Movi(0, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(bin, libcProfiles())
	want := [][]string{{"a", "b"}, {"main"}}
	if !reflect.DeepEqual(a.SCCs, want) {
		t.Fatalf("SCCs = %v, want %v", a.SCCs, want)
	}
}

// chainBinary builds main -> mid -> leaf plus an unrelated function,
// each with one library site.
func chainBinary(t *testing.T) *isa.Binary {
	t.Helper()
	b := asm.NewBuilder("chain")
	site := func(label string) {
		b.EmitSite(asm.SiteSpec{Label: label, Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}})
	}
	b.Func("leaf")
	b.Label("leaf.entry")
	b.Movi(13, 0)
	site("leaf.read")
	b.Movi(0, 0)
	b.Ret()
	b.Func("mid")
	b.Label("mid.entry")
	b.Movi(13, 0)
	b.J(isa.CALLN, "leaf.entry")
	site("mid.read")
	b.Movi(0, 0)
	b.Ret()
	b.Func("main")
	b.Movi(13, 0)
	b.J(isa.CALLN, "mid.entry")
	site("main.read")
	b.Movi(0, 0)
	b.Ret()
	b.Func("other")
	b.Movi(13, 0)
	site("other.read")
	b.Movi(0, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestIncrementalRecompute: an unchanged image reuses every summary; a
// one-function edit recomputes exactly that function plus its
// transitive callers; results match a from-scratch analysis.
func TestIncrementalRecompute(t *testing.T) {
	bin := chainBinary(t)
	ps := libcProfiles()
	full := Analyze(bin, ps)
	if got := len(full.Recomputed); got != 4 {
		t.Fatalf("cold analysis recomputed %d funcs, want 4", got)
	}

	same := AnalyzeIncremental(bin, ps, full.Summaries)
	if len(same.Recomputed) != 0 || same.Reused != 4 {
		t.Fatalf("unchanged image: recomputed %v reused %d, want none/4", same.Recomputed, same.Reused)
	}

	patched, err := impact.PatchFunc(bin, "leaf")
	if err != nil {
		t.Fatal(err)
	}
	inc := AnalyzeIncremental(patched, ps, full.Summaries)
	wantRecomputed := []string{"leaf", "main", "mid"}
	if !reflect.DeepEqual(inc.Recomputed, wantRecomputed) {
		t.Fatalf("patched leaf: recomputed %v, want %v (changed + ancestors)", inc.Recomputed, wantRecomputed)
	}
	if inc.Reused != 1 {
		t.Fatalf("patched leaf: reused %d summaries, want 1 (other)", inc.Reused)
	}

	scratch := Analyze(patched, ps)
	if !reflect.DeepEqual(inc.Sites, scratch.Sites) {
		t.Fatalf("incremental sites diverge from scratch:\n inc: %+v\n scr: %+v", inc.Sites, scratch.Sites)
	}
}
