// Package callgraph lifts the paper's deliberately intra-procedural §5
// analysis whole-program. It builds a call graph over a synthetic
// binary's direct CALLN edges, condenses it with Tarjan's SCC
// algorithm, and runs a summary-based interprocedural
// error-propagation analysis over the condensation: each function gets
// a summary recording, for every library call site, whether the error
// return is checked locally, propagated to the caller through the
// return register, stored to memory, or provably overwritten unchecked
// — and, for every internal call site, whether the caller inspects the
// callee's return. A fixpoint over the condensation then resolves the
// cross-frame facts: a site whose error provably propagates to a
// caller that checks it is demoted from C_not to CheckedInCaller
// (a windowed-analysis false positive), and a site whose error is
// provably dropped on every path is promoted to Swallowed (an
// error-swallowing bug the windowed analysis cannot distinguish from
// mere distance).
//
// Soundness follows the repo's conservative-fallback discipline:
// indirect branches and calls (IJMP/ICALL) are not followed, and any
// walk that meets one — or that the function boundary truncates —
// disables the interprocedural refinement for the facts it was
// computing, falling back to the paper's windowed result. Summaries
// are content-addressed by the same per-function fingerprints the
// store's image manifests carry (internal/impact), so an edit
// recomputes only the changed functions' summaries plus their
// transitive callers — the precision-reuse idea of Beyer et al.
// applied to the analysis instead of the test entries.
package callgraph

import (
	"sort"

	"lfi/internal/isa"
)

// graph is the direct-call structure of one binary: nodes are function
// symbol names, edges are CALLN sites. It is reconstructed from
// summaries, so a cached summary is as good as a fresh one.
type graph struct {
	nodes   []string            // sorted function names
	callees map[string][]string // f -> functions f calls directly
	callers map[string][]string // f -> functions that call f directly
}

// buildGraph derives the call graph from a summary set.
func buildGraph(sums Summaries) *graph {
	g := &graph{
		callees: make(map[string][]string, len(sums)),
		callers: make(map[string][]string, len(sums)),
	}
	for name := range sums {
		g.nodes = append(g.nodes, name)
	}
	sort.Strings(g.nodes)
	for _, name := range g.nodes {
		seen := map[string]bool{}
		for _, c := range sums[name].Calls {
			if _, ok := sums[c.Callee]; !ok {
				continue // unresolved target (e.g. CALLN into data)
			}
			if !seen[c.Callee] {
				seen[c.Callee] = true
				g.callees[name] = append(g.callees[name], c.Callee)
			}
			g.callers[c.Callee] = append(g.callers[c.Callee], name)
		}
	}
	return g
}

// ancestors returns the transitive callers of the given functions
// (excluding functions not in the graph), sorted.
func (g *graph) ancestors(of []string) []string {
	seen := map[string]bool{}
	queue := append([]string(nil), of...)
	start := map[string]bool{}
	for _, f := range of {
		start[f] = true
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, caller := range g.callers[f] {
			if !seen[caller] {
				seen[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	var out []string
	for f := range seen {
		if !start[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// scc condenses the graph with Tarjan's algorithm. Components are
// returned in reverse-topological order of the condensation — callees
// before callers — which is the bottom-up order the summary fixpoint
// iterates in. Node order within a component, and the tie-break across
// independent components, follow the sorted node list, so the output
// is deterministic.
func (g *graph) scc() [][]string {
	n := len(g.nodes)
	index := make(map[string]int, n)
	low := make(map[string]int, n)
	onStack := make(map[string]bool, n)
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range g.nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// funcAt maps code offsets to entry symbols, for CALLN resolution.
func funcAt(b *isa.Binary) map[uint64]string {
	out := make(map[uint64]string, len(b.Symbols))
	for _, s := range b.Symbols {
		out[s.Off] = s.Name
	}
	return out
}
