package callgraph

import (
	"sort"

	"lfi/internal/callsite"
	"lfi/internal/cfg"
	"lfi/internal/dataflow"
	"lfi/internal/isa"
	"lfi/internal/profile"
)

// SiteSummary is the per-library-call-site element of the summary
// lattice: the windowed Algorithm 1 class, the whole-function-bounded
// refinement of it, and the fate of the returned value at the function
// boundary. Propagates/Stored are only asserted when the post-call
// walk is complete (no indirect branches, no truncation); an
// incomplete walk keeps them false so no cross-frame refinement can be
// built on unknown control flow.
type SiteSummary struct {
	Offset uint64         `json:"off"`
	Callee string         `json:"callee"`
	Intra  callsite.Class `json:"intra"` // paper's 100-instruction-window class
	Local  callsite.Class `json:"local"` // whole-function class; Swallowed when provably dropped
	// Propagates: the error return may reach the enclosing function's
	// own return register at a RET.
	Propagates bool `json:"prop,omitempty"`
	// Stored: a copy may be written to a stack slot.
	Stored bool `json:"stored,omitempty"`
}

// CallSummary is the per-internal-call-site (CALLN) element: whether
// this caller inspects the callee's return, and whether it forwards it
// to its own caller. Walkable gates both — an incomplete post-call
// walk proves nothing.
type CallSummary struct {
	Offset     uint64 `json:"off"`
	Callee     string `json:"callee"`
	Checked    bool   `json:"checked,omitempty"`
	Propagates bool   `json:"prop,omitempty"`
	Walkable   bool   `json:"walkable,omitempty"`
}

// FuncSummary is one function's complete local analysis record. It
// carries everything the interprocedural fixpoint needs, so a summary
// loaded from a store manifest substitutes for re-analyzing the
// function as long as its fingerprint still matches.
type FuncSummary struct {
	Name string `json:"name"`
	// Hash is the function-body fingerprint (impact.FuncHashes), the
	// reuse key for incremental re-analysis.
	Hash string `json:"hash"`
	// Indirect counts IJMP/ICALL instructions in the body — unknown
	// control flow that disables cross-frame refinement.
	Indirect int           `json:"indirect,omitempty"`
	Calls    []CallSummary `json:"calls,omitempty"`
	Sites    []SiteSummary `json:"sites,omitempty"`
}

// Summaries maps function name to summary — the unit persisted in
// store image manifests next to the funcs/profiles hash maps.
type Summaries map[string]*FuncSummary

// Hashes extracts the name → fingerprint map, the shape
// impact.DiffFuncs consumes.
func (s Summaries) Hashes() map[string]string {
	out := make(map[string]string, len(s))
	for name, fs := range s {
		out[name] = fs.Hash
	}
	return out
}

// errCodes maps each profiled library function the binary imports to
// its injectable error-code set E — first profile wins on duplicates,
// matching the scenario generator's resolution order.
func errCodes(b *isa.Binary, profiles []*profile.Profile) map[string][]int64 {
	out := make(map[string][]int64)
	for _, p := range profiles {
		for _, fn := range p.FuncNames() {
			if _, dup := out[fn]; dup {
				continue
			}
			E := p.Func(fn).ErrorCodes()
			if len(E) == 0 || b.ImportIndex(fn) < 0 {
				continue
			}
			out[fn] = E
		}
	}
	return out
}

// summarize computes one function's summary from scratch: a linear
// sweep over the symbol extent enumerates call sites and indirect
// instructions (completeness does not depend on reachability), and a
// function-bounded post-call walk per site computes the whole-function
// class and the return-value fates.
func summarize(b *isa.Binary, sym isa.Symbol, hash string, E map[string][]int64, entries map[uint64]string, window int) *FuncSummary {
	fs := &FuncSummary{Name: sym.Name, Hash: hash}
	for _, in := range b.DecodeRange(sym.Off, sym.Off+sym.Size) {
		switch in.Op {
		case isa.IJMP, isa.ICALL:
			fs.Indirect++
		case isa.CALL:
			callee := b.ImportName(in.Imm)
			codes, profiled := E[callee]
			if !profiled {
				continue
			}
			fs.Sites = append(fs.Sites, summarizeSite(b, sym, in.Offset, callee, codes, window))
		case isa.CALLN:
			target := uint64(uint32(in.Imm))
			callee := entries[target]
			if callee == "" {
				// Unresolvable target: record the edge loss as unknown
				// control flow so the fixpoint stays conservative.
				fs.Indirect++
				continue
			}
			fs.Calls = append(fs.Calls, summarizeCall(b, sym, in.Offset, callee))
		}
	}
	sort.Slice(fs.Sites, func(i, j int) bool { return fs.Sites[i].Offset < fs.Sites[j].Offset })
	sort.Slice(fs.Calls, func(i, j int) bool { return fs.Calls[i].Offset < fs.Calls[j].Offset })
	return fs
}

func summarizeSite(b *isa.Binary, sym isa.Symbol, off uint64, callee string, E []int64, window int) SiteSummary {
	s := SiteSummary{Offset: off, Callee: callee}

	// The paper's windowed result — the conservative fallback.
	wg := cfg.BuildPartial(b, off+isa.InstSize, window)
	s.Intra, _ = callsite.Classify(dataflow.Analyze(wg), E)

	// The whole-function-bounded walk. The window region is a subset
	// of the function region (both stop at RET and follow the same
	// direct edges), so the refined class is never less checked.
	fg := cfg.BuildFrom(b, sym, off+isa.InstSize)
	if fg.Indirect > 0 || fg.Truncated {
		s.Local = s.Intra // unknown control flow: keep the windowed class
		return s
	}
	fates := dataflow.AnalyzeFates(fg)
	s.Local, _ = callsite.Classify(fates.Result, E)
	s.Propagates = fates.Propagates
	s.Stored = fates.Stored
	if s.Local == callsite.Unchecked && fates.Dropped() {
		s.Local = callsite.Swallowed
	}
	return s
}

func summarizeCall(b *isa.Binary, sym isa.Symbol, off uint64, callee string) CallSummary {
	c := CallSummary{Offset: off, Callee: callee}
	fg := cfg.BuildFrom(b, sym, off+isa.InstSize)
	if fg.Indirect > 0 || fg.Truncated {
		return c // not walkable: proves nothing
	}
	fates := dataflow.AnalyzeFates(fg)
	c.Walkable = true
	c.Checked = fates.Checked()
	c.Propagates = fates.Propagates
	return c
}
