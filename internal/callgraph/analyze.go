package callgraph

import (
	"sort"

	"lfi/internal/callsite"
	"lfi/internal/cfg"
	"lfi/internal/impact"
	"lfi/internal/isa"
	"lfi/internal/profile"
)

// Site is one library call site with its interprocedural verdict.
type Site struct {
	Offset uint64
	Callee string
	Caller string
	// Intra is the paper's windowed Algorithm 1 class.
	Intra callsite.Class
	// Final is the interprocedural class: the whole-function refinement
	// of Intra, further resolved across frames (CheckedInCaller,
	// Swallowed) by the fixpoint.
	Final callsite.Class
	// Propagates/Stored mirror the summary fates (asserted only under a
	// complete walk).
	Propagates bool
	Stored     bool
	// DeadRecovery: the error is provably dropped at this site, so any
	// recovery block registered for it is unreachable by an error path.
	DeadRecovery bool
}

// Analysis is the whole-program result over one binary.
type Analysis struct {
	Binary    *isa.Binary
	Summaries Summaries
	// Sites lists every profiled library call site, sorted by offset.
	Sites []Site
	// SCCs is the call-graph condensation in bottom-up (callees-first)
	// fixpoint order.
	SCCs [][]string
	// RetChecked marks functions whose own return value is checked (or
	// propagated to a checking frame) by every direct caller.
	RetChecked map[string]bool
	// IndirectCalls counts IJMP/ICALL instructions across the binary —
	// when nonzero the call graph is incomplete and no cross-frame
	// demotion (CheckedInCaller) is claimed anywhere.
	IndirectCalls int
	// Recomputed lists the functions whose summaries were computed this
	// run (sorted); Reused counts summaries taken from the prior set.
	Recomputed []string
	Reused     int
}

// Counts tallies the final classes — the golden numbers the
// conformance harness pins per system.
type Counts struct {
	Checked         int `json:"checked"`
	Partial         int `json:"partial"`
	Unchecked       int `json:"unchecked"`
	Swallowed       int `json:"swallowed"`
	CheckedInCaller int `json:"checkedInCaller"`
}

// Counts tallies the analysis' final site classes.
func (a *Analysis) Counts() Counts {
	var c Counts
	for _, s := range a.Sites {
		switch s.Final {
		case callsite.Checked:
			c.Checked++
		case callsite.Partial:
			c.Partial++
		case callsite.Swallowed:
			c.Swallowed++
		case callsite.CheckedInCaller:
			c.CheckedInCaller++
		default:
			c.Unchecked++
		}
	}
	return c
}

// ClassAt returns the final class for the site at a code offset.
func (a *Analysis) ClassAt(off uint64) (callsite.Class, bool) {
	for _, s := range a.Sites {
		if s.Offset == off {
			return s.Final, true
		}
	}
	return 0, false
}

// Analyze runs the full interprocedural analysis from scratch.
func Analyze(b *isa.Binary, profiles []*profile.Profile) *Analysis {
	return AnalyzeIncremental(b, profiles, nil)
}

// AnalyzeIncremental analyzes b, reusing prior summaries for functions
// whose body fingerprint is unchanged. A changed, added, or removed
// function invalidates its own summary plus — because cross-frame
// facts flow through call edges — those of its transitive callers;
// everything else is taken from prior verbatim. Prior summaries must
// come from an analysis over the same fault profiles: a profile edit
// changes the site set itself, so callers diff profile hashes and pass
// nil prior when they differ.
func AnalyzeIncremental(b *isa.Binary, profiles []*profile.Profile, prior Summaries) *Analysis {
	a := &Analysis{Binary: b, Summaries: make(Summaries, len(b.Symbols))}
	E := errCodes(b, profiles)
	entries := funcAt(b)
	hashes := impact.FuncHashes(b)

	// Decide which functions must be re-summarized.
	recompute := make(map[string]bool, len(b.Symbols))
	if prior == nil {
		for _, sym := range b.Symbols {
			recompute[sym.Name] = true
		}
	} else {
		d := impact.DiffFuncs(prior.Hashes(), hashes)
		for _, f := range d.Changed {
			recompute[f] = true
		}
		for _, f := range d.Added {
			recompute[f] = true
		}
		// Transitive callers: their bodies are unchanged, but the facts
		// flowing through their edges to/from the changed functions are
		// not. Caller edges of unchanged functions are identical in
		// prior, so the prior graph plus fresh edges of changed
		// functions covers the ancestry exactly.
		seed := make([]string, 0, len(recompute))
		for f := range recompute {
			seed = append(seed, f)
		}
		sort.Strings(seed)
		merged := make(Summaries, len(b.Symbols))
		for _, sym := range b.Symbols {
			if recompute[sym.Name] {
				merged[sym.Name] = summarize(b, sym, hashes[sym.Name], E, entries, cfg.DefaultWindow)
			} else if ps, ok := prior[sym.Name]; ok {
				merged[ps.Name] = ps
			}
		}
		for _, f := range buildGraph(merged).ancestors(seed) {
			recompute[f] = true
		}
	}

	for _, sym := range b.Symbols {
		if recompute[sym.Name] {
			a.Summaries[sym.Name] = summarize(b, sym, hashes[sym.Name], E, entries, cfg.DefaultWindow)
			a.Recomputed = append(a.Recomputed, sym.Name)
		} else {
			a.Summaries[sym.Name] = prior[sym.Name]
			a.Reused++
		}
	}
	sort.Strings(a.Recomputed)

	g := buildGraph(a.Summaries)
	a.SCCs = g.scc()
	for _, fs := range a.Summaries {
		a.IndirectCalls += fs.Indirect
	}
	a.RetChecked = retCheckedFixpoint(g, a.Summaries, a.IndirectCalls > 0)
	a.Sites = finalSites(a.Summaries, a.RetChecked)
	return a
}

// retCheckedFixpoint computes, per function, whether every direct
// caller checks the function's returned value — either locally or by
// propagating it to a frame that does. It is the least fixpoint of
//
//	RetChecked(f) = callers(f) ≠ ∅ ∧ ∀ call sites s of f:
//	    walkable(s) ∧ (checked(s) ∨ (propagates(s) ∧ RetChecked(caller(s))))
//
// starting from all-false, so cycle-supported claims never bootstrap
// and entry functions (no callers: the value escapes to the harness)
// stay false. Iteration runs over the condensation in top-down
// (callers-first) order — the reverse of the bottom-up summary order —
// because the facts flow from callers to callees; mutual recursion
// converges by re-running the sweep until nothing changes. Any
// indirect call in the image means unknown callers, which makes every
// positive claim unprovable.
func retCheckedFixpoint(g *graph, sums Summaries, indirect bool) map[string]bool {
	ret := make(map[string]bool, len(g.nodes))
	if indirect {
		return ret
	}
	// Call sites indexed by callee.
	type siteRef struct {
		caller string
		cs     CallSummary
	}
	sitesOf := make(map[string][]siteRef)
	for _, caller := range g.nodes {
		for _, cs := range sums[caller].Calls {
			sitesOf[cs.Callee] = append(sitesOf[cs.Callee], siteRef{caller, cs})
		}
	}
	comps := g.scc()
	for changed := true; changed; {
		changed = false
		for i := len(comps) - 1; i >= 0; i-- { // callers first
			for _, f := range comps[i] {
				if ret[f] {
					continue
				}
				refs := sitesOf[f]
				if len(refs) == 0 {
					continue
				}
				ok := true
				for _, r := range refs {
					if !r.cs.Walkable || !(r.cs.Checked || (r.cs.Propagates && ret[r.caller])) {
						ok = false
						break
					}
				}
				if ok {
					ret[f] = true
					changed = true
				}
			}
		}
	}
	return ret
}

// finalSites resolves every library site's final class: the local
// (whole-function) class, demoted to CheckedInCaller when the error
// provably propagates to the function's return and every caller checks
// it. Swallowed sites additionally mark their recovery block dead — no
// error-conditional path out of the call exists.
func finalSites(sums Summaries, retChecked map[string]bool) []Site {
	var out []Site
	for name, fs := range sums {
		for _, ss := range fs.Sites {
			s := Site{
				Offset:     ss.Offset,
				Callee:     ss.Callee,
				Caller:     name,
				Intra:      ss.Intra,
				Final:      ss.Local,
				Propagates: ss.Propagates,
				Stored:     ss.Stored,
			}
			if s.Final == callsite.Unchecked && ss.Propagates && retChecked[name] {
				s.Final = callsite.CheckedInCaller
			}
			if s.Final == callsite.Swallowed {
				s.DeadRecovery = true
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}
