package libsim

import (
	"fmt"

	"lfi/internal/interpose"
)

// CrashKind classifies abnormal terminations of a simulated program,
// mirroring how the paper's controller distinguishes observed failures
// (segmentation faults, aborts, data loss detected by the workload).
type CrashKind int

const (
	// Segfault models dereferencing an invalid pointer (NULL FILE*,
	// NULL DIR*, freed or never-allocated heap pointer, ...).
	Segfault CrashKind = iota
	// Abort models assertion failures and abort() calls, e.g. BIND's
	// dst_lib_destroy assertion or a double pthread_mutex_unlock.
	Abort
	// DataLoss models silent corruption detected by workload checks,
	// e.g. Git running an external command with an incomplete
	// environment after a failed setenv.
	DataLoss
)

func (k CrashKind) String() string {
	switch k {
	case Segfault:
		return "SIGSEGV"
	case Abort:
		return "SIGABRT"
	case DataLoss:
		return "DATA-LOSS"
	default:
		return fmt.Sprintf("crash(%d)", int(k))
	}
}

// Crash is the panic payload raised when a simulated program performs an
// operation that would kill a real process. The controller recovers it
// and records an abnormal exit, exactly as the paper's controller
// observes a non-zero exit status or a core dump.
type Crash struct {
	Kind   CrashKind
	Reason string
	Thread int
	Stack  []interpose.Frame
}

func (c *Crash) Error() string {
	return fmt.Sprintf("%s in thread %d: %s", c.Kind, c.Thread, c.Reason)
}

// RaiseCrash terminates the simulated program with a crash, capturing the
// calling thread's virtual stack.
func (t *Thread) RaiseCrash(kind CrashKind, format string, args ...any) {
	panic(&Crash{
		Kind:   kind,
		Reason: fmt.Sprintf(format, args...),
		Thread: t.ID,
		Stack:  t.StackCopy(),
	})
}

// Assert models a C assert(): the program aborts when cond is false.
func (t *Thread) Assert(cond bool, format string, args ...any) {
	if !cond {
		t.RaiseCrash(Abort, "assertion failed: "+format, args...)
	}
}
