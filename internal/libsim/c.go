// Package libsim is the simulated C library underneath every program in
// this reproduction.
//
// The paper injects faults at the boundary between programs and shared
// libraries (GNU libc, libxml, apr, ...). Go cannot practically hook
// shared libraries, so the boundary itself is rebuilt: libsim implements
// an in-memory filesystem, heap, stdio, directory streams, mutexes,
// environment, and datagram sockets, and routes every call through an
// interpose.Dispatcher. What programs observe — return values and errno —
// matches the documented libc behaviour, which is all LFI ever sees.
//
// One C value models one process image: its file descriptors, heap, and
// environment are process-wide, while errno lives on Thread.
package libsim

import (
	"sync"
	"sync/atomic"

	"lfi/internal/errno"
	"lfi/internal/interpose"
)

// NetBackend provides datagram transport for the socket calls. The
// netsim package implements it; tests may substitute their own.
type NetBackend interface {
	NewEndpoint() NetEndpoint
}

// NetEndpoint is one datagram socket's transport.
type NetEndpoint interface {
	Bind(addr string) errno.Errno
	SendTo(dst string, payload []byte) errno.Errno
	// RecvFrom blocks up to timeoutMs (0 = poll, <0 = forever) and
	// returns the payload and sender address, or ETIMEDOUT.
	RecvFrom(timeoutMs int) ([]byte, string, errno.Errno)
	Close()
}

// C is one simulated process's view of the C library.
type C struct {
	// Disp is the interposition point; the LFI runtime installs its
	// hook here. A fresh Dispatcher passes everything through.
	Disp *interpose.Dispatcher
	// Node names this process in distributed setups (PBFT replica ids);
	// distributed triggers see it on every intercepted call.
	Node string

	// Owner is an opaque backlink to the application wrapping this
	// process image; controller.Target.Recycle hooks use it to return
	// the whole app to a worker-local pool between runs.
	Owner any

	// threadIDs allocates per-process thread ids (dense from 1), so
	// logs stay deterministic when independent runs execute in parallel.
	threadIDs atomic.Int64

	mu    sync.Mutex
	root  *inode
	fds   map[int]*fdesc
	nexfd int

	// Descriptor and file-inode pools, reclaimed by Reset (never on
	// Close, so nothing can observe a recycled object mid-run).
	fdPool   []*fdesc
	fdNext   int
	fileFree []*inode

	heap *Arena

	env map[string]string

	files    map[int64]*file // FILE* handles
	nextFile int64

	dirs    map[int64]*dirStream // DIR* handles
	nextDir int64

	mutexes   map[int64]*simMutex
	nextMutex int64

	net NetBackend

	xml *xmlLib

	vars map[string]func() int64
}

// New creates a process image with an empty filesystem, a heap of the
// given capacity in bytes, and no network backend.
func New(heapBytes int64) *C {
	c := &C{
		Disp:      &interpose.Dispatcher{},
		root:      newDir(),
		fds:       make(map[int]*fdesc),
		nexfd:     3, // 0,1,2 reserved like stdin/stdout/stderr
		heap:      NewArena(heapBytes),
		env:       make(map[string]string),
		files:     make(map[int64]*file),
		nextFile:  0x4000_0000,
		dirs:      make(map[int64]*dirStream),
		nextDir:   0x5000_0000,
		mutexes:   make(map[int64]*simMutex),
		nextMutex: 0x6000_0000,
	}
	return c
}

// SetNet installs the datagram transport used by socket calls.
func (c *C) SetNet(n NetBackend) { c.net = n }

// Reset returns the process image to its pristine state — the state
// right after New plus whatever fixtures SnapshotFS recorded — while
// retaining every reusable buffer (heap blocks, inodes, descriptor
// objects, map storage). A reset image is observationally identical to
// a fresh one: descriptor numbers restart at 3, every handle space
// restarts at its base, the heap hands out the same pointers, and the
// dispatcher's per-function call counters restart at zero, so a run on
// a recycled image is byte-for-byte the run a fresh image would give.
//
// Registered program variables survive (their getters capture the
// owning app, which is itself recycled), as do live Threads — the app
// resets those separately via Thread.Reset.
func (c *C) Reset() {
	c.Disp.ResetCounts()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetFS()
	c.heap.Reset()
	clear(c.env)
	clear(c.files)
	c.nextFile = 0x4000_0000
	clear(c.dirs)
	c.nextDir = 0x5000_0000
	// simMutex objects are never recycled: a crashed run can leave the
	// inner lock held (the double-unlock crash raises before the inner
	// unlock), so recycling one could deadlock the next run.
	clear(c.mutexes)
	c.nextMutex = 0x6000_0000
	if c.xml != nil {
		clear(c.xml.m)
		c.xml.next = 0x7000_0000
	}
}

// RegisterVar publishes a named program variable (a global like MySQL's
// thread_count or shutdown_in_progress) so that program state-based
// triggers can read it. In the paper the trigger reads the variable from
// the process image directly; here the program registers a getter.
func (c *C) RegisterVar(name string, get func() int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.vars == nil {
		c.vars = make(map[string]func() int64)
	}
	c.vars[name] = get
}

// ReadVar reads a registered program variable.
func (c *C) ReadVar(name string) (int64, bool) {
	c.mu.Lock()
	get, ok := c.vars[name]
	c.mu.Unlock()
	if !ok {
		return 0, false
	}
	return get(), true
}

// Heap exposes the allocator for tests and fault setup (e.g. forcing
// ENOMEM at a particular allocation).
func (c *C) Heap() *Arena { return c.heap }

// --- environment ------------------------------------------------------

// Setenv models setenv(3): returns 0 on success, -1/ENOMEM on (injected)
// failure. Real setenv can fail when the environment block cannot grow.
func (t *Thread) Setenv(name, value string) int64 {
	c := t.C
	return t.call(fnSetenv, []int64{int64(len(name)), int64(len(value))}, func() (int64, errno.Errno) {
		if name == "" {
			return -1, errno.EINVAL
		}
		c.mu.Lock()
		c.env[name] = value
		c.mu.Unlock()
		return 0, errno.OK
	})
}

// Getenv models getenv(3). It returns the value and whether it was set;
// getenv itself is not interposed (it cannot fail in the errno sense).
func (t *Thread) Getenv(name string) (string, bool) {
	c := t.C
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.env[name]
	return v, ok
}

// Unsetenv models unsetenv(3).
func (t *Thread) Unsetenv(name string) int64 {
	c := t.C
	return t.call(fnUnsetenv, nil, func() (int64, errno.Errno) {
		if name == "" {
			return -1, errno.EINVAL
		}
		c.mu.Lock()
		delete(c.env, name)
		c.mu.Unlock()
		return 0, errno.OK
	})
}

// EnvSnapshot returns a copy of the environment, used by workloads to
// verify that external commands would run with a complete environment
// (the Git data-loss bug).
func (c *C) EnvSnapshot() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.env))
	for k, v := range c.env {
		out[k] = v
	}
	return out
}

// --- fcntl ------------------------------------------------------------

// fcntl command values (Linux numbering).
const (
	F_GETFL = 3
	F_SETFL = 4
	F_GETLK = 5
	F_SETLK = 6
)

// O_NONBLOCK is the only status flag the simulation tracks.
const O_NONBLOCK = 0x800

// Fcntl models fcntl(2) for the GETFL/SETFL/GETLK/SETLK commands.
func (t *Thread) Fcntl(fd int64, cmd int64, arg int64) int64 {
	c := t.C
	return t.call(fnFcntl, []int64{fd, cmd, arg}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		d, ok := c.fds[int(fd)]
		if !ok {
			return -1, errno.EBADF
		}
		switch cmd {
		case F_GETFL:
			return d.flags, errno.OK
		case F_SETFL:
			d.flags = arg
			return 0, errno.OK
		case F_GETLK, F_SETLK:
			// The simulated filesystem has no contending processes,
			// so locks always succeed.
			return 0, errno.OK
		default:
			return -1, errno.EINVAL
		}
	})
}

// RawNonblocking reports whether fd has O_NONBLOCK set, bypassing the
// dispatcher. Triggers use raw accessors so that their own inspection
// calls are not themselves intercepted (the paper's triggers call fcntl
// from inside Eval for the same purpose).
func (c *C) RawNonblocking(fd int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.fds[int(fd)]
	return ok && d.flags&O_NONBLOCK != 0
}
