package libsim

import (
	"sync"

	"lfi/internal/errno"
)

// Arena is the simulated heap behind malloc/free. Allocations are dense
// handles in a private address range; the arena tracks block liveness so
// that use-after-free and double-free surface as simulated crashes, and
// it can run out of memory either naturally (capacity) or on demand
// (FailNext / FailAll), which is how tests seed genuine ENOMEM paths.
type Arena struct {
	mu       sync.Mutex
	next     int64
	capacity int64
	used     int64
	blocks   map[int64]*block
	failNext int  // fail the next N allocations
	failAll  bool // fail every allocation
	// freelist recycles block objects across Reset cycles, keyed by
	// size class, so a steady-state run loop allocates no heap blocks.
	freelist map[int64][]*block
}

type block struct {
	size  int64
	freed bool
	data  []byte
}

// heapBase keeps heap pointers visually distinct from other handle
// spaces in logs.
const heapBase = 0x1000_0000

// NewArena creates a heap with the given capacity in bytes; capacity <= 0
// means unlimited.
func NewArena(capacity int64) *Arena {
	return &Arena{next: heapBase, capacity: capacity, blocks: make(map[int64]*block)}
}

// FailNext forces the next n allocations to return NULL/ENOMEM.
func (a *Arena) FailNext(n int) {
	a.mu.Lock()
	a.failNext = n
	a.mu.Unlock()
}

// FailAll switches every subsequent allocation to failure (and back).
func (a *Arena) FailAll(v bool) {
	a.mu.Lock()
	a.failAll = v
	a.mu.Unlock()
}

// Reset returns the arena to its post-NewArena state while recycling
// every block's backing storage into a per-size freelist. The next
// allocation sequence sees the same pointer handles a fresh arena would
// hand out, and reused storage is zeroed on allocation, so a recycled
// arena is observationally identical to a new one.
func (a *Arena) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.freelist == nil {
		a.freelist = make(map[int64][]*block)
	}
	for _, b := range a.blocks {
		b.freed = false
		a.freelist[int64(cap(b.data))] = append(a.freelist[int64(cap(b.data))], b)
	}
	clear(a.blocks)
	a.next = heapBase
	a.used = 0
	a.failNext = 0
	a.failAll = false
}

// Used returns the live byte count.
func (a *Arena) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Live returns the number of live (allocated, unfreed) blocks.
func (a *Arena) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, b := range a.blocks {
		if !b.freed {
			n++
		}
	}
	return n
}

func (a *Arena) alloc(size int64) (int64, errno.Errno) {
	if size <= 0 {
		return 0, errno.EINVAL
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failAll || a.failNext > 0 {
		if a.failNext > 0 {
			a.failNext--
		}
		return 0, errno.ENOMEM
	}
	if a.capacity > 0 && a.used+size > a.capacity {
		return 0, errno.ENOMEM
	}
	ptr := a.next
	a.next += (size + 15) &^ 15 // 16-byte alignment, like real allocators
	if l := a.freelist[size]; len(l) > 0 {
		b := l[len(l)-1]
		a.freelist[size] = l[:len(l)-1]
		clear(b.data) // reused storage must read as freshly zeroed
		b.size = size
		b.freed = false
		a.blocks[ptr] = b
	} else {
		a.blocks[ptr] = &block{size: size, data: make([]byte, size)}
	}
	a.used += size
	return ptr, errno.OK
}

func (a *Arena) release(ptr int64) errno.Errno {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.blocks[ptr]
	if !ok || b.freed {
		return errno.EFAULT // caller turns this into a crash
	}
	b.freed = true
	a.used -= b.size
	return errno.OK
}

// Malloc models malloc(3): a non-zero pointer handle, or 0 with ENOMEM.
func (t *Thread) Malloc(size int64) int64 {
	a := t.C.heap
	return t.call(fnMalloc, []int64{size}, func() (int64, errno.Errno) {
		return a.alloc(size)
	})
}

// Calloc models calloc(3) (single-chunk form).
func (t *Thread) Calloc(n, size int64) int64 {
	a := t.C.heap
	return t.call(fnCalloc, []int64{n, size}, func() (int64, errno.Errno) {
		if n <= 0 || size <= 0 || n > (1<<40)/size {
			return 0, errno.EINVAL
		}
		return a.alloc(n * size)
	})
}

// Free models free(3). Freeing NULL is a no-op; freeing a wild or
// already-freed pointer crashes the program, as glibc would abort.
func (t *Thread) Free(ptr int64) {
	a := t.C.heap
	t.call(fnFree, []int64{ptr}, func() (int64, errno.Errno) {
		if ptr == 0 {
			return 0, errno.OK
		}
		if e := a.release(ptr); e != errno.OK {
			t.RaiseCrash(Abort, "free(): invalid pointer %#x", ptr)
		}
		return 0, errno.OK
	})
}

// Deref validates a heap pointer before simulated use. Programs call it
// where C code would dereference; a NULL or dead pointer crashes with
// SIGSEGV, which is how the paper's unchecked-malloc bugs manifest.
func (t *Thread) Deref(ptr int64) []byte {
	a := t.C.heap
	a.mu.Lock()
	b, ok := a.blocks[ptr]
	a.mu.Unlock()
	if ptr == 0 {
		t.RaiseCrash(Segfault, "NULL pointer dereference")
	}
	if !ok || b.freed {
		t.RaiseCrash(Segfault, "invalid pointer dereference %#x", ptr)
	}
	return b.data
}
