package libsim

import (
	"sync"

	"lfi/internal/errno"
)

// simMutex is the object behind a pthread_mutex_t handle. It is a
// non-recursive mutex with owner tracking so that the double-unlock
// class of bug (the MySQL mi_create crash from Table 1) aborts the
// simulated program the way glibc's error-checking mutexes do.
type simMutex struct {
	mu    sync.Mutex
	inner sync.Mutex
	owner int // thread id, 0 when unlocked
}

// MutexInit models pthread_mutex_init(3), returning a mutex handle.
// Initialization itself is not a fault-injection target in the paper, so
// it is not interposed.
func (c *C) MutexInit() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.nextMutex
	c.nextMutex++
	c.mutexes[h] = &simMutex{}
	return h
}

func (c *C) mutex(h int64) (*simMutex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.mutexes[h]
	return m, ok
}

// MutexLock models pthread_mutex_lock(3). The call is interposed so that
// stateful triggers (WithMutex, close-after-unlock) can observe it.
func (t *Thread) MutexLock(h int64) int64 {
	c := t.C
	return t.call(fnMutexLock, []int64{h}, func() (int64, errno.Errno) {
		m, ok := c.mutex(h)
		if !ok {
			return -1, errno.EINVAL
		}
		m.inner.Lock()
		m.mu.Lock()
		m.owner = t.ID
		m.mu.Unlock()
		t.addLock(1)
		return 0, errno.OK
	})
}

// MutexUnlock models pthread_mutex_unlock(3). Unlocking a mutex the
// thread does not hold aborts the program (double unlock).
func (t *Thread) MutexUnlock(h int64) int64 {
	c := t.C
	return t.call(fnMutexUnlock, []int64{h}, func() (int64, errno.Errno) {
		m, ok := c.mutex(h)
		if !ok {
			return -1, errno.EINVAL
		}
		m.mu.Lock()
		owner := m.owner
		if owner == t.ID {
			m.owner = 0
		}
		m.mu.Unlock()
		if owner != t.ID {
			t.RaiseCrash(Abort, "pthread_mutex_unlock: mutex %#x not held (double unlock)", h)
		}
		m.inner.Unlock()
		t.addLock(-1)
		return 0, errno.OK
	})
}

// Self models pthread_self(3).
func (t *Thread) Self() int64 { return int64(t.ID) }
