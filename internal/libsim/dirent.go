package libsim

import (
	"sort"

	"lfi/internal/errno"
)

// dirStream is the object behind a DIR* handle.
type dirStream struct {
	names []string
	pos   int
}

// Opendir models opendir(3): a non-zero DIR* handle, or 0 (NULL) on
// error. The entry list is snapshotted and sorted for reproducibility.
func (t *Thread) Opendir(path string) int64 {
	c := t.C
	return t.call(fnOpendir, []int64{int64(len(path))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		n, e := c.lookup(path)
		if e != errno.OK {
			return 0, e
		}
		if n.kind != S_IFDIR {
			return 0, errno.ENOTDIR
		}
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		h := c.nextDir
		c.nextDir++
		c.dirs[h] = &dirStream{names: names}
		return h, errno.OK
	})
}

// Readdir models readdir(3). It returns the next entry name and true, or
// "",false at end of stream. Passing a NULL or invalid DIR* crashes the
// program — the Git bug class (readdir after an unchecked opendir).
func (t *Thread) Readdir(dir int64) (string, bool) {
	c := t.C
	var name string
	var ok bool
	t.call(fnReaddir, []int64{dir}, func() (int64, errno.Errno) {
		if dir == 0 {
			t.RaiseCrash(Segfault, "readdir(NULL DIR*)")
		}
		c.mu.Lock()
		d, found := c.dirs[dir]
		c.mu.Unlock()
		if !found {
			t.RaiseCrash(Segfault, "readdir on invalid DIR* %#x", dir)
		}
		if d.pos >= len(d.names) {
			return 0, errno.OK
		}
		name, ok = d.names[d.pos], true
		d.pos++
		return 1, errno.OK
	})
	return name, ok
}

// Closedir models closedir(3).
func (t *Thread) Closedir(dir int64) int64 {
	c := t.C
	return t.call(fnClosedir, []int64{dir}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.dirs[dir]; !ok {
			return -1, errno.EBADF
		}
		delete(c.dirs, dir)
		return 0, errno.OK
	})
}
