package libsim

import "lfi/internal/interpose"

// Interned FuncIDs for every function libsim interposes. Each stub
// resolves its identity once, at package init, so the per-call dispatch
// path never hashes a function name — the analogue of the paper's
// synthesized stubs knowing their own jump-table slot.
var (
	fnOpen     = interpose.Intern("open")
	fnClose    = interpose.Intern("close")
	fnRead     = interpose.Intern("read")
	fnWrite    = interpose.Intern("write")
	fnLseek    = interpose.Intern("lseek")
	fnUnlink   = interpose.Intern("unlink")
	fnMkdir    = interpose.Intern("mkdir")
	fnStat     = interpose.Intern("stat")
	fnFstat    = interpose.Intern("fstat")
	fnPipe     = interpose.Intern("pipe")
	fnReadlink = interpose.Intern("readlink")

	fnMalloc = interpose.Intern("malloc")
	fnCalloc = interpose.Intern("calloc")
	fnFree   = interpose.Intern("free")

	fnFopen  = interpose.Intern("fopen")
	fnFwrite = interpose.Intern("fwrite")
	fnFread  = interpose.Intern("fread")
	fnFclose = interpose.Intern("fclose")
	fnFflush = interpose.Intern("fflush")

	fnOpendir  = interpose.Intern("opendir")
	fnReaddir  = interpose.Intern("readdir")
	fnClosedir = interpose.Intern("closedir")

	fnSetenv   = interpose.Intern("setenv")
	fnUnsetenv = interpose.Intern("unsetenv")
	fnFcntl    = interpose.Intern("fcntl")

	fnMutexLock   = interpose.Intern("pthread_mutex_lock")
	fnMutexUnlock = interpose.Intern("pthread_mutex_unlock")

	fnSocket   = interpose.Intern("socket")
	fnBind     = interpose.Intern("bind")
	fnSendto   = interpose.Intern("sendto")
	fnRecvfrom = interpose.Intern("recvfrom")

	fnXMLNewTextWriterDoc       = interpose.Intern("xmlNewTextWriterDoc")
	fnXMLTextWriterWriteElement = interpose.Intern("xmlTextWriterWriteElement")
	fnXMLFreeTextWriter         = interpose.Intern("xmlFreeTextWriter")
	fnAprFileRead               = interpose.Intern("apr_file_read")
	fnAprStat                   = interpose.Intern("apr_stat")
)
