package libsim

import (
	"lfi/internal/errno"
)

// This file models the non-libc shared libraries that the paper's target
// systems link against: a sliver of libxml2 (used by BIND's HTTP stats
// channel) and of the Apache Portable Runtime (used by the Apache/miniweb
// overhead study). Like their real counterparts they are separate
// libraries with their own fault profiles, but they share the process's
// dispatcher, just as multiple LFI shim libraries coexist in one process.

// --- libxml -------------------------------------------------------------

// xmlWriter is the object behind an xmlTextWriter handle; it accumulates
// serialized output in memory.
type xmlWriter struct {
	buf []byte
}

func (c *C) xmlState() *xmlLib {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.xml == nil {
		c.xml = &xmlLib{m: map[int64]*xmlWriter{}, next: 0x7000_0000}
	}
	return c.xml
}

// xmlLib is the per-process libxml state.
type xmlLib struct {
	m    map[int64]*xmlWriter
	next int64
}

// XMLNewTextWriterDoc models xmlNewTextWriterDoc: a writer handle, or 0
// (NULL) when the allocation fails. The underlying buffer comes from the
// process heap so that heap exhaustion propagates naturally.
func (t *Thread) XMLNewTextWriterDoc() int64 {
	c := t.C
	return t.call(fnXMLNewTextWriterDoc, nil, func() (int64, errno.Errno) {
		if _, e := c.heap.alloc(256); e != errno.OK {
			return 0, errno.ENOMEM
		}
		x := c.xmlState()
		c.mu.Lock()
		defer c.mu.Unlock()
		h := x.next
		x.next++
		x.m[h] = &xmlWriter{}
		return h, errno.OK
	})
}

// XMLTextWriterWriteElement appends <name>value</name> to the document.
// Writing through a NULL writer crashes — the BIND statschannel bug.
func (t *Thread) XMLTextWriterWriteElement(w int64, name, value string) int64 {
	c := t.C
	return t.call(fnXMLTextWriterWriteElement, []int64{w, int64(len(name)), int64(len(value))}, func() (int64, errno.Errno) {
		if w == 0 {
			t.RaiseCrash(Segfault, "xmlTextWriterWriteElement(NULL writer)")
		}
		x := c.xmlState()
		c.mu.Lock()
		wr, ok := x.m[w]
		c.mu.Unlock()
		if !ok {
			t.RaiseCrash(Segfault, "xmlTextWriterWriteElement on invalid writer %#x", w)
		}
		wr.buf = append(wr.buf, '<')
		wr.buf = append(wr.buf, name...)
		wr.buf = append(wr.buf, '>')
		wr.buf = append(wr.buf, value...)
		wr.buf = append(wr.buf, "</"...)
		wr.buf = append(wr.buf, name...)
		wr.buf = append(wr.buf, '>')
		return 0, errno.OK
	})
}

// XMLFreeTextWriter releases a writer; the document text is returned so
// callers (minidns) can ship it to the client.
func (t *Thread) XMLFreeTextWriter(w int64) string {
	c := t.C
	var doc string
	t.call(fnXMLFreeTextWriter, []int64{w}, func() (int64, errno.Errno) {
		if w == 0 {
			t.RaiseCrash(Segfault, "xmlFreeTextWriter(NULL writer)")
		}
		x := c.xmlState()
		c.mu.Lock()
		wr, ok := x.m[w]
		if ok {
			delete(x.m, w)
		}
		c.mu.Unlock()
		if !ok {
			t.RaiseCrash(Segfault, "xmlFreeTextWriter on invalid writer %#x", w)
		}
		doc = string(wr.buf)
		return 0, errno.OK
	})
	return doc
}

// --- Apache Portable Runtime (apr) ---------------------------------------

// APRFileRead models apr_file_read: read into buf through an apr file,
// which in this simulation is an ordinary descriptor. Returns APR_SUCCESS
// (0) and updates *n, or an errno-like status.
func (t *Thread) APRFileRead(fd int64, buf []byte, n *int64) int64 {
	c := t.C
	return t.call(fnAprFileRead, []int64{fd, 0, int64(len(buf))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		d, ok := c.fds[int(fd)]
		c.mu.Unlock()
		if !ok {
			return int64(errno.EBADF), errno.EBADF
		}
		if d.node == nil || d.node.kind != S_IFREG {
			return int64(errno.EINVAL), errno.EINVAL
		}
		d.node.mu.Lock()
		defer d.node.mu.Unlock()
		if d.off >= int64(len(d.node.data)) {
			*n = 0
			return 0, errno.OK
		}
		cnt := copy(buf, d.node.data[d.off:])
		d.off += int64(cnt)
		*n = int64(cnt)
		return 0, errno.OK
	})
}

// APRStat models apr_stat over a descriptor (the paper's Trigger 1 uses
// it to check whether a descriptor points at a socket).
func (t *Thread) APRStat(fd int64, out *Stat) int64 {
	c := t.C
	return t.call(fnAprStat, []int64{fd}, func() (int64, errno.Errno) {
		st, ok := c.RawStatFD(fd)
		if !ok {
			return int64(errno.EBADF), errno.EBADF
		}
		*out = st
		return 0, errno.OK
	})
}
