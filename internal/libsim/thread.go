package libsim

import (
	"sync"

	"lfi/internal/errno"
	"lfi/internal/interpose"
)

// Thread is a simulated POSIX thread. Go has no thread-local storage, so
// everything the paper keeps in TLS — most importantly errno — lives in
// an explicit handle that simulated code threads through its calls. A
// Thread also maintains the virtual call stack that call-stack triggers
// inspect (the analogue of backtrace()) and the count of POSIX mutexes
// currently held (used by WithMutex-style triggers).
type Thread struct {
	ID int
	C  *C

	errno errno.Errno

	mu     sync.Mutex
	frames []interpose.Frame
	locks  int

	// scratch holds reusable Call values, one per dispatch nesting
	// depth, so the hot path allocates nothing after warm-up. Only the
	// owning thread touches it (simulated threads are single goroutines).
	scratch []*interpose.Call
	depth   int

	// pop is the single pop-one-frame closure Enter/EnterAt return;
	// caching it keeps frame push/pop allocation-free after the first
	// call. Correct because frames form a stack: every Enter's matching
	// pop removes whatever frame is innermost at that point.
	pop func()
}

// popFrame returns the cached frame-pop closure, creating it once.
// Caller holds t.mu.
func (t *Thread) popFrame() func() {
	if t.pop == nil {
		t.pop = func() {
			t.mu.Lock()
			t.frames = t.frames[:len(t.frames)-1]
			t.mu.Unlock()
		}
	}
	return t.pop
}

// Reset rewinds the thread to its post-NewThread state: entry frame
// only, no held locks, errno clear. Worker pools call it between runs;
// the Call scratch values are retained.
func (t *Thread) Reset() {
	t.mu.Lock()
	t.frames = t.frames[:1]
	t.locks = 0
	t.mu.Unlock()
	t.errno = errno.OK
	t.depth = 0
}

// NewThread creates a thread bound to library c. The first stack frame
// names the thread's entry point, like a process's main. Thread IDs are
// per-process (dense from 1), which keeps logs deterministic even when
// independent test runs execute in parallel.
func (c *C) NewThread(entryModule, entryFunc string) *Thread {
	t := &Thread{ID: int(c.threadIDs.Add(1)), C: c}
	t.frames = append(t.frames, interpose.Frame{Module: entryModule, Func: entryFunc})
	return t
}

// Errno returns the thread's errno value, the side-effect channel that
// library functions use to describe failures.
func (t *Thread) Errno() errno.Errno { return t.errno }

// SetErrno overwrites the thread's errno. Library wrappers and the LFI
// runtime both use this; simulated programs normally only read errno.
func (t *Thread) SetErrno(e errno.Errno) { t.errno = e }

// Enter pushes a virtual stack frame and returns the matching pop. App
// code calls it at function entry:
//
//	defer t.Enter("minivcs", "xdl_do_merge", 0x567)()
//
// Offset is the module-relative address of the frame's call site, chosen
// to match the synthetic binary built for the same application so that
// analyzer-generated call-stack triggers match at runtime.
func (t *Thread) Enter(module, fn string, offset uint64) func() {
	t.mu.Lock()
	t.frames = append(t.frames, interpose.Frame{Module: module, Func: fn, Offset: offset})
	pop := t.popFrame()
	t.mu.Unlock()
	return pop
}

// EnterAt is Enter with DWARF-style file/line debug info attached,
// mirroring LFI's ability to match frames by filename/line pairs.
func (t *Thread) EnterAt(module, fn string, offset uint64, file string, line int) func() {
	t.mu.Lock()
	t.frames = append(t.frames, interpose.Frame{
		Module: module, Func: fn, Offset: offset, File: file, Line: line,
	})
	pop := t.popFrame()
	t.mu.Unlock()
	return pop
}

// StackCopy returns a snapshot of the virtual call stack, innermost
// frame last. This is what intercepted calls materialize on demand.
func (t *Thread) StackCopy() []interpose.Frame {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]interpose.Frame, len(t.frames))
	copy(out, t.frames)
	return out
}

// CaptureStack implements interpose.CallSource.
func (t *Thread) CaptureStack() []interpose.Frame { return t.StackCopy() }

// CaptureLocks implements interpose.CallSource.
func (t *Thread) CaptureLocks() int { return t.Locks() }

// Depth returns the current virtual stack depth.
func (t *Thread) Depth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.frames)
}

// Locks returns how many POSIX mutexes the thread currently holds.
func (t *Thread) Locks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.locks
}

func (t *Thread) addLock(delta int) {
	t.mu.Lock()
	t.locks += delta
	t.mu.Unlock()
}

// call routes one library call through the process dispatcher, updating
// errno the way a real libc function would: on failure the wrapper
// stores the error code, on success errno is left untouched (per POSIX,
// successful calls do not reset errno).
//
// The Call is a per-thread scratch value (one per nesting depth) whose
// stack/locks context is captured lazily via the CallSource interface,
// so a pass-through dispatch performs zero heap allocations.
func (t *Thread) call(fn interpose.FuncID, args []int64, impl func() (int64, errno.Errno)) int64 {
	if t.depth == len(t.scratch) {
		t.scratch = append(t.scratch, new(interpose.Call))
	}
	c := t.scratch[t.depth]
	t.depth++
	c.Prepare(fn, t.ID, t.C.Node, t.errno, t, args)
	ret, e := t.C.Disp.Dispatch(c, impl)
	t.depth--
	if e != errno.OK {
		t.errno = e
	}
	return ret
}
