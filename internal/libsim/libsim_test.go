package libsim

import (
	"testing"

	"lfi/internal/errno"
)

func newProc() (*C, *Thread) {
	c := New(1 << 20)
	t := c.NewThread("test", "main")
	return c, t
}

// catchCrash runs f and returns the crash it raised, or nil.
func catchCrash(f func()) (crash *Crash) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(*Crash); ok {
				crash = c
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// --- filesystem ---------------------------------------------------------

func TestOpenReadWriteClose(t *testing.T) {
	c, th := newProc()
	c.MustMkdirAll("/data")
	fd := th.Open("/data/f.txt", O_CREAT|O_RDWR)
	if fd < 0 {
		t.Fatalf("open failed: %v", th.Errno())
	}
	if n := th.Write(fd, []byte("hello world")); n != 11 {
		t.Fatalf("write = %d", n)
	}
	if th.Lseek(fd, 0) != 0 {
		t.Fatal("lseek failed")
	}
	buf := make([]byte, 5)
	if n := th.Read(fd, buf); n != 5 || string(buf) != "hello" {
		t.Fatalf("read = %d %q", n, buf)
	}
	if th.Close(fd) != 0 {
		t.Fatal("close failed")
	}
	if th.Close(fd) != -1 || th.Errno() != errno.EBADF {
		t.Fatal("double close should fail with EBADF")
	}
}

func TestOpenMissingSetsENOENT(t *testing.T) {
	_, th := newProc()
	if fd := th.Open("/nope", O_RDONLY); fd != -1 {
		t.Fatalf("open succeeded: %d", fd)
	}
	if th.Errno() != errno.ENOENT {
		t.Fatalf("errno = %v", th.Errno())
	}
}

func TestErrnoPreservedOnSuccess(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/f", []byte("x"))
	th.Open("/missing", O_RDONLY) // sets ENOENT
	fd := th.Open("/f", O_RDONLY)
	if fd < 0 {
		t.Fatal("open failed")
	}
	if th.Errno() != errno.ENOENT {
		t.Fatal("successful call must not clear errno (POSIX)")
	}
}

func TestReadAtEOFReturnsZero(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/f", []byte("ab"))
	fd := th.Open("/f", O_RDONLY)
	buf := make([]byte, 8)
	if n := th.Read(fd, buf); n != 2 {
		t.Fatalf("first read = %d", n)
	}
	if n := th.Read(fd, buf); n != 0 {
		t.Fatalf("read at EOF = %d, want 0", n)
	}
}

func TestUnlinkAndStat(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/dir/f", []byte("abc"))
	var st Stat
	if th.StatPath("/dir/f", &st) != 0 || st.Size != 3 || st.IsDir() {
		t.Fatalf("stat: %+v", st)
	}
	if th.Unlink("/dir/f") != 0 {
		t.Fatal("unlink failed")
	}
	if th.StatPath("/dir/f", &st) != -1 || th.Errno() != errno.ENOENT {
		t.Fatal("stat after unlink should ENOENT")
	}
	if th.Unlink("/dir") != -1 || th.Errno() != errno.EISDIR {
		t.Fatal("unlink dir should EISDIR")
	}
}

func TestMkdirDuplicate(t *testing.T) {
	_, th := newProc()
	if th.Mkdir("/a") != 0 {
		t.Fatal("mkdir failed")
	}
	if th.Mkdir("/a") != -1 || th.Errno() != errno.EEXIST {
		t.Fatal("duplicate mkdir should EEXIST")
	}
}

func TestOpenTruncAndAppend(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/f", []byte("old-contents"))
	fd := th.Open("/f", O_WRONLY|O_TRUNC)
	th.Write(fd, []byte("new"))
	th.Close(fd)
	data, _ := c.ReadFileRaw("/f")
	if string(data) != "new" {
		t.Fatalf("after trunc: %q", data)
	}
	fd = th.Open("/f", O_WRONLY|O_APPEND)
	th.Write(fd, []byte("+more"))
	th.Close(fd)
	data, _ = c.ReadFileRaw("/f")
	if string(data) != "new+more" {
		t.Fatalf("after append: %q", data)
	}
}

func TestPipeReadWrite(t *testing.T) {
	_, th := newProc()
	var fds [2]int64
	if th.Pipe(&fds) != 0 {
		t.Fatal("pipe failed")
	}
	var st Stat
	th.Fstat(fds[0], &st)
	if !st.IsFIFO() {
		t.Fatal("pipe fd should stat as FIFO")
	}
	th.Write(fds[1], []byte("ping"))
	buf := make([]byte, 16)
	if n := th.Read(fds[0], buf); n != 4 || string(buf[:4]) != "ping" {
		t.Fatalf("pipe read = %d %q", n, buf[:n])
	}
	// Close write end: read now sees EOF.
	th.Close(fds[1])
	if n := th.Read(fds[0], buf); n != 0 {
		t.Fatalf("read after writer close = %d, want EOF", n)
	}
}

func TestPipeNonblockEAGAIN(t *testing.T) {
	_, th := newProc()
	var fds [2]int64
	th.Pipe(&fds)
	th.Fcntl(fds[0], F_SETFL, O_NONBLOCK)
	buf := make([]byte, 4)
	if n := th.Read(fds[0], buf); n != -1 || th.Errno() != errno.EAGAIN {
		t.Fatalf("nonblocking empty pipe read = %d errno=%v", n, th.Errno())
	}
}

func TestWriteToClosedPipeEPIPE(t *testing.T) {
	_, th := newProc()
	var fds [2]int64
	th.Pipe(&fds)
	th.Close(fds[0])
	if n := th.Write(fds[1], []byte("x")); n != -1 || th.Errno() != errno.EPIPE {
		t.Fatalf("write to closed pipe = %d errno=%v", n, th.Errno())
	}
}

// --- heap ----------------------------------------------------------------

func TestMallocFree(t *testing.T) {
	c, th := newProc()
	p := th.Malloc(100)
	if p == 0 {
		t.Fatal("malloc failed")
	}
	if c.Heap().Live() != 1 {
		t.Fatal("live count wrong")
	}
	data := th.Deref(p)
	if len(data) != 100 {
		t.Fatalf("block size %d", len(data))
	}
	th.Free(p)
	if c.Heap().Live() != 0 {
		t.Fatal("block still live after free")
	}
}

func TestMallocENOMEMOnCapacity(t *testing.T) {
	c := New(64)
	th := c.NewThread("test", "main")
	if p := th.Malloc(65); p != 0 || th.Errno() != errno.ENOMEM {
		t.Fatalf("oversized malloc = %d errno=%v", p, th.Errno())
	}
}

func TestMallocFailNext(t *testing.T) {
	c, th := newProc()
	c.Heap().FailNext(1)
	if p := th.Malloc(8); p != 0 {
		t.Fatal("FailNext ignored")
	}
	if p := th.Malloc(8); p == 0 {
		t.Fatal("allocation after FailNext window failed")
	}
}

func TestFreeNULLNoop(t *testing.T) {
	_, th := newProc()
	if crash := catchCrash(func() { th.Free(0) }); crash != nil {
		t.Fatalf("free(NULL) crashed: %v", crash)
	}
}

func TestDoubleFreeAborts(t *testing.T) {
	_, th := newProc()
	p := th.Malloc(8)
	th.Free(p)
	crash := catchCrash(func() { th.Free(p) })
	if crash == nil || crash.Kind != Abort {
		t.Fatalf("double free: %v", crash)
	}
}

func TestDerefNULLSegfaults(t *testing.T) {
	_, th := newProc()
	crash := catchCrash(func() { th.Deref(0) })
	if crash == nil || crash.Kind != Segfault {
		t.Fatalf("NULL deref: %v", crash)
	}
}

func TestUseAfterFreeSegfaults(t *testing.T) {
	_, th := newProc()
	p := th.Malloc(8)
	th.Free(p)
	crash := catchCrash(func() { th.Deref(p) })
	if crash == nil || crash.Kind != Segfault {
		t.Fatalf("use-after-free: %v", crash)
	}
}

// --- stdio -----------------------------------------------------------------

func TestFopenFwriteFreadFclose(t *testing.T) {
	c, th := newProc()
	c.MustMkdirAll("/tmp")
	fp := th.Fopen("/tmp/x", "w")
	if fp == 0 {
		t.Fatalf("fopen(w) failed: %v", th.Errno())
	}
	if th.Fwrite([]byte("data!"), fp) != 5 {
		t.Fatal("fwrite short")
	}
	th.Fclose(fp)
	fp = th.Fopen("/tmp/x", "r")
	buf := make([]byte, 16)
	if n := th.Fread(buf, fp); n != 5 || string(buf[:5]) != "data!" {
		t.Fatalf("fread = %d %q", n, buf[:n])
	}
	th.Fclose(fp)
}

func TestFopenMissingReturnsNULL(t *testing.T) {
	_, th := newProc()
	if fp := th.Fopen("/no/such", "r"); fp != 0 {
		t.Fatalf("fopen = %#x", fp)
	}
	if th.Errno() != errno.ENOENT {
		t.Fatalf("errno = %v", th.Errno())
	}
}

func TestFwriteNULLCrashes(t *testing.T) {
	_, th := newProc()
	crash := catchCrash(func() { th.Fwrite([]byte("x"), 0) })
	if crash == nil || crash.Kind != Segfault {
		t.Fatalf("fwrite(NULL): %v", crash)
	}
}

func TestFopenAppendMode(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/f", []byte("AB"))
	fp := th.Fopen("/f", "a")
	th.Fwrite([]byte("CD"), fp)
	th.Fclose(fp)
	data, _ := c.ReadFileRaw("/f")
	if string(data) != "ABCD" {
		t.Fatalf("append result %q", data)
	}
}

// --- dirent -----------------------------------------------------------------

func TestOpendirReaddir(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/d/b", nil)
	c.MustWriteFile("/d/a", nil)
	dir := th.Opendir("/d")
	if dir == 0 {
		t.Fatal("opendir failed")
	}
	var names []string
	for {
		n, ok := th.Readdir(dir)
		if !ok {
			break
		}
		names = append(names, n)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("entries %v", names)
	}
	if th.Closedir(dir) != 0 {
		t.Fatal("closedir failed")
	}
}

func TestOpendirMissingReturnsNULL(t *testing.T) {
	_, th := newProc()
	if d := th.Opendir("/missing"); d != 0 || th.Errno() != errno.ENOENT {
		t.Fatalf("opendir = %#x errno=%v", d, th.Errno())
	}
}

func TestReaddirNULLCrashes(t *testing.T) {
	_, th := newProc()
	crash := catchCrash(func() { th.Readdir(0) })
	if crash == nil || crash.Kind != Segfault {
		t.Fatalf("readdir(NULL): %v", crash)
	}
}

// --- mutexes -----------------------------------------------------------------

func TestMutexLockUnlock(t *testing.T) {
	c, th := newProc()
	m := c.MutexInit()
	if th.MutexLock(m) != 0 {
		t.Fatal("lock failed")
	}
	if th.Locks() != 1 {
		t.Fatalf("lock count = %d", th.Locks())
	}
	if th.MutexUnlock(m) != 0 {
		t.Fatal("unlock failed")
	}
	if th.Locks() != 0 {
		t.Fatalf("lock count = %d", th.Locks())
	}
}

func TestDoubleUnlockAborts(t *testing.T) {
	c, th := newProc()
	m := c.MutexInit()
	th.MutexLock(m)
	th.MutexUnlock(m)
	crash := catchCrash(func() { th.MutexUnlock(m) })
	if crash == nil || crash.Kind != Abort {
		t.Fatalf("double unlock: %v", crash)
	}
}

// --- env -----------------------------------------------------------------------

func TestSetenvGetenv(t *testing.T) {
	_, th := newProc()
	if th.Setenv("PATH", "/bin") != 0 {
		t.Fatal("setenv failed")
	}
	if v, ok := th.Getenv("PATH"); !ok || v != "/bin" {
		t.Fatalf("getenv = %q %v", v, ok)
	}
	th.Unsetenv("PATH")
	if _, ok := th.Getenv("PATH"); ok {
		t.Fatal("unsetenv did not remove")
	}
}

func TestSetenvEmptyNameEINVAL(t *testing.T) {
	_, th := newProc()
	if th.Setenv("", "x") != -1 || th.Errno() != errno.EINVAL {
		t.Fatal("setenv(\"\") should EINVAL")
	}
}

// --- virtual stacks ---------------------------------------------------------

func TestEnterPopStack(t *testing.T) {
	_, th := newProc()
	pop := th.Enter("mod", "f", 0x100)
	inner := th.Enter("mod", "g", 0x200)
	st := th.StackCopy()
	if len(st) != 3 || st[2].Func != "g" || st[1].Func != "f" {
		t.Fatalf("stack %v", st)
	}
	inner()
	pop()
	if th.Depth() != 1 {
		t.Fatalf("depth after pops = %d", th.Depth())
	}
}

// --- fcntl + vars -------------------------------------------------------------

func TestFcntlFlags(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/f", nil)
	fd := th.Open("/f", O_RDONLY)
	if th.Fcntl(fd, F_GETFL, 0)&O_NONBLOCK != 0 {
		t.Fatal("O_NONBLOCK set initially")
	}
	th.Fcntl(fd, F_SETFL, O_NONBLOCK)
	if !c.RawNonblocking(fd) {
		t.Fatal("RawNonblocking false after F_SETFL")
	}
	if th.Fcntl(999, F_GETFL, 0) != -1 || th.Errno() != errno.EBADF {
		t.Fatal("fcntl on bad fd")
	}
}

func TestRegisterVar(t *testing.T) {
	c, _ := newProc()
	v := int64(41)
	c.RegisterVar("thread_count", func() int64 { return v })
	got, ok := c.ReadVar("thread_count")
	if !ok || got != 41 {
		t.Fatalf("ReadVar = %d %v", got, ok)
	}
	v = 64
	if got, _ := c.ReadVar("thread_count"); got != 64 {
		t.Fatal("getter not live")
	}
	if _, ok := c.ReadVar("nope"); ok {
		t.Fatal("unknown var found")
	}
}

// --- xml / apr libs -------------------------------------------------------------

func TestXMLWriterLifecycle(t *testing.T) {
	_, th := newProc()
	w := th.XMLNewTextWriterDoc()
	if w == 0 {
		t.Fatal("writer alloc failed")
	}
	th.XMLTextWriterWriteElement(w, "counter", "7")
	doc := th.XMLFreeTextWriter(w)
	if doc != "<counter>7</counter>" {
		t.Fatalf("doc = %q", doc)
	}
}

func TestXMLWriterOOM(t *testing.T) {
	c, th := newProc()
	c.Heap().FailAll(true)
	if w := th.XMLNewTextWriterDoc(); w != 0 || th.Errno() != errno.ENOMEM {
		t.Fatalf("writer under OOM = %#x errno=%v", w, th.Errno())
	}
}

func TestXMLWriteNULLCrashes(t *testing.T) {
	_, th := newProc()
	crash := catchCrash(func() { th.XMLTextWriterWriteElement(0, "a", "b") })
	if crash == nil || crash.Kind != Segfault {
		t.Fatalf("NULL writer: %v", crash)
	}
}

func TestAPRFileRead(t *testing.T) {
	c, th := newProc()
	c.MustWriteFile("/web/index.html", []byte("<html>"))
	fd := th.Open("/web/index.html", O_RDONLY)
	buf := make([]byte, 32)
	var n int64
	if st := th.APRFileRead(fd, buf, &n); st != 0 || n != 6 {
		t.Fatalf("apr_file_read status=%d n=%d", st, n)
	}
	var s Stat
	if th.APRStat(fd, &s) != 0 || s.IsSock() {
		t.Fatalf("apr_stat %+v", s)
	}
}

// --- crash metadata -------------------------------------------------------------

func TestCrashCarriesStack(t *testing.T) {
	_, th := newProc()
	pop := th.Enter("app", "handler", 0x42)
	defer pop()
	crash := catchCrash(func() { th.RaiseCrash(Segfault, "boom %d", 1) })
	if crash == nil {
		t.Fatal("no crash")
	}
	if crash.Reason != "boom 1" || crash.Thread != th.ID {
		t.Fatalf("crash fields: %+v", crash)
	}
	if len(crash.Stack) != 2 || crash.Stack[1].Func != "handler" {
		t.Fatalf("crash stack: %v", crash.Stack)
	}
	if crash.Error() == "" {
		t.Fatal("empty Error()")
	}
}

func TestAssert(t *testing.T) {
	_, th := newProc()
	if crash := catchCrash(func() { th.Assert(true, "fine") }); crash != nil {
		t.Fatal("true assert crashed")
	}
	crash := catchCrash(func() { th.Assert(false, "dst != NULL") })
	if crash == nil || crash.Kind != Abort {
		t.Fatalf("false assert: %v", crash)
	}
}
