package libsim

import (
	"lfi/internal/errno"
)

// Socket models socket(2) for datagram sockets, returning a file
// descriptor bound to the process's network backend.
func (t *Thread) Socket() int64 {
	c := t.C
	return t.call(fnSocket, []int64{2 /* AF_INET */, 2 /* SOCK_DGRAM */, 0}, func() (int64, errno.Errno) {
		if c.net == nil {
			return -1, errno.ENOSYS
		}
		ep := c.net.NewEndpoint()
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.newFD(&fdesc{ep: ep})), errno.OK
	})
}

// Bind models bind(2), attaching the socket to a string address.
func (t *Thread) Bind(fd int64, addr string) int64 {
	c := t.C
	return t.call(fnBind, []int64{fd, int64(len(addr))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		d, ok := c.fds[int(fd)]
		c.mu.Unlock()
		if !ok || d.ep == nil {
			return -1, errno.EBADF
		}
		if e := d.ep.Bind(addr); e != errno.OK {
			return -1, e
		}
		return 0, errno.OK
	})
}

// Sendto models sendto(2): returns the payload length or -1.
func (t *Thread) Sendto(fd int64, payload []byte, dst string) int64 {
	c := t.C
	return t.call(fnSendto, []int64{fd, 0, int64(len(payload)), 0, int64(len(dst))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		d, ok := c.fds[int(fd)]
		c.mu.Unlock()
		if !ok || d.ep == nil {
			return -1, errno.EBADF
		}
		if e := d.ep.SendTo(dst, payload); e != errno.OK {
			return -1, e
		}
		return int64(len(payload)), errno.OK
	})
}

// Recvfrom models recvfrom(2). It blocks up to timeoutMs (0 = poll,
// <0 = forever), copies the datagram into buf, stores the sender address
// in from, and returns the byte count or -1 (ETIMEDOUT/EAGAIN on
// timeout, matching a SO_RCVTIMEO socket).
func (t *Thread) Recvfrom(fd int64, buf []byte, from *string, timeoutMs int) int64 {
	c := t.C
	return t.call(fnRecvfrom, []int64{fd, 0, int64(len(buf)), 0}, func() (int64, errno.Errno) {
		c.mu.Lock()
		d, ok := c.fds[int(fd)]
		c.mu.Unlock()
		if !ok || d.ep == nil {
			return -1, errno.EBADF
		}
		payload, src, e := d.ep.RecvFrom(timeoutMs)
		if e != errno.OK {
			return -1, e
		}
		n := copy(buf, payload)
		if from != nil {
			*from = src
		}
		return int64(n), errno.OK
	})
}
