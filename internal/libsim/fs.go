package libsim

import (
	"sort"
	"sync"

	"lfi/internal/errno"
)

// File kind bits, mirroring the st_mode format bits of struct stat.
const (
	S_IFREG  = 0x8000
	S_IFDIR  = 0x4000
	S_IFIFO  = 0x1000
	S_IFSOCK = 0xC000
)

// open(2) flag bits used by the simulation.
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_CREAT  = 0x40
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// Stat is the simulated struct stat.
type Stat struct {
	Mode int64
	Size int64
}

// IsFIFO reports whether the stat describes a pipe, as S_ISFIFO would.
func (s Stat) IsFIFO() bool { return s.Mode&0xF000 == S_IFIFO }

// IsDir reports whether the stat describes a directory.
func (s Stat) IsDir() bool { return s.Mode&0xF000 == S_IFDIR }

// IsSock reports whether the stat describes a socket.
func (s Stat) IsSock() bool { return s.Mode&0xF000 == S_IFSOCK }

type inode struct {
	mu       sync.Mutex
	kind     int64 // S_IFREG, S_IFDIR, S_IFIFO
	data     []byte
	children map[string]*inode
	pipe     *pipeBuf

	// Fixture snapshot state (SnapshotFS / C.Reset). A fixed node is
	// part of the pristine image; fix holds a file's original contents
	// and fixChildren a directory's original entry set.
	fixed       bool
	fix         []byte
	fixChildren map[string]*inode
}

func newDir() *inode  { return &inode{kind: S_IFDIR, children: make(map[string]*inode)} }
func newFile() *inode { return &inode{kind: S_IFREG} }

type fdesc struct {
	node  *inode
	off   int64
	flags int64
	ep    NetEndpoint // non-nil for sockets
	pipe  *pipeBuf    // non-nil for pipe ends
	pipeW bool        // this fd is the write end
}

type pipeBuf struct {
	mu      sync.Mutex
	cond    *sync.Cond
	data    []byte
	readers int
	writers int
}

func newPipeBuf() *pipeBuf {
	p := &pipeBuf{readers: 1, writers: 1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// --- path resolution (caller holds c.mu) --------------------------------

// pathIter yields the meaningful segments of a slash-separated path
// ("" and "." are skipped) without allocating — path resolution is on
// the run loop's hot path.
type pathIter struct {
	path string
	i    int
}

func (it *pathIter) next() (string, bool) {
	for {
		for it.i < len(it.path) && it.path[it.i] == '/' {
			it.i++
		}
		if it.i >= len(it.path) {
			return "", false
		}
		start := it.i
		for it.i < len(it.path) && it.path[it.i] != '/' {
			it.i++
		}
		if seg := it.path[start:it.i]; seg != "." {
			return seg, true
		}
	}
}

// lastSeg returns the bounds of the final meaningful path segment, or
// ok=false when the path has none ("", "/", "/.").
func lastSeg(path string) (start, end int, ok bool) {
	end = len(path)
	for {
		for end > 0 && path[end-1] == '/' {
			end--
		}
		if end == 0 {
			return 0, 0, false
		}
		start = end
		for start > 0 && path[start-1] != '/' {
			start--
		}
		if path[start:end] != "." {
			return start, end, true
		}
		end = start
	}
}

func (c *C) lookup(path string) (*inode, errno.Errno) {
	n := c.root
	it := pathIter{path: path}
	for {
		part, ok := it.next()
		if !ok {
			return n, errno.OK
		}
		if n.kind != S_IFDIR {
			return nil, errno.ENOTDIR
		}
		child, ok := n.children[part]
		if !ok {
			return nil, errno.ENOENT
		}
		n = child
	}
}

func (c *C) lookupParent(path string) (*inode, string, errno.Errno) {
	start, end, ok := lastSeg(path)
	if !ok {
		return nil, "", errno.EINVAL
	}
	n := c.root
	it := pathIter{path: path[:start]}
	for {
		part, more := it.next()
		if !more {
			return n, path[start:end], errno.OK
		}
		child, ok := n.children[part]
		if !ok {
			return nil, "", errno.ENOENT
		}
		if child.kind != S_IFDIR {
			return nil, "", errno.ENOTDIR
		}
		n = child
	}
}

func (c *C) newFD(d *fdesc) int {
	fd := c.nexfd
	c.nexfd++
	c.fds[fd] = d
	return fd
}

// allocFD hands out a descriptor object from the per-process pool.
// Pooled objects are only reclaimed by Reset — never on Close — so a
// descriptor cannot be reused while any code path still holds it.
func (c *C) allocFD() *fdesc {
	if c.fdNext < len(c.fdPool) {
		d := c.fdPool[c.fdNext]
		c.fdNext++
		*d = fdesc{}
		return d
	}
	d := &fdesc{}
	c.fdPool = append(c.fdPool, d)
	c.fdNext++
	return d
}

// newFileNode hands out a regular-file inode, reusing one reclaimed by
// a previous Reset when available (data capacity is retained).
func (c *C) newFileNode() *inode {
	if n := len(c.fileFree); n > 0 {
		f := c.fileFree[n-1]
		c.fileFree = c.fileFree[:n-1]
		return f
	}
	return newFile()
}

// --- fixture snapshot / reset --------------------------------------------

// SnapshotFS records the current filesystem tree as the pristine
// fixture image that C.Reset restores: directory entry sets and file
// contents. Apps call it once, after staging fixtures in New.
func (c *C) SnapshotFS() {
	c.mu.Lock()
	defer c.mu.Unlock()
	snapshotNode(c.root)
}

func snapshotNode(n *inode) {
	n.fixed = true
	if n.kind != S_IFDIR {
		n.fix = append(n.fix[:0], n.data...)
		return
	}
	if n.fixChildren == nil {
		n.fixChildren = make(map[string]*inode, len(n.children))
	}
	clear(n.fixChildren)
	for name, ch := range n.children {
		n.fixChildren[name] = ch
		snapshotNode(ch)
	}
}

// resetFS restores the snapshot: drops descriptors, removes nodes the
// run created, re-links fixture nodes the run unlinked, and restores
// fixture file contents. Reclaimed file inodes feed newFileNode so the
// next run's creations allocate nothing. Caller holds c.mu.
func (c *C) resetFS() {
	clear(c.fds)
	c.nexfd = 3
	c.fdNext = 0
	c.restoreNode(c.root)
}

func (c *C) restoreNode(n *inode) {
	if n.kind != S_IFDIR {
		n.data = append(n.data[:0], n.fix...)
		return
	}
	for name, ch := range n.children {
		if !ch.fixed {
			delete(n.children, name)
			c.reclaimNode(ch)
		}
	}
	for name, ch := range n.fixChildren {
		n.children[name] = ch
		c.restoreNode(ch)
	}
}

func (c *C) reclaimNode(n *inode) {
	if n.kind == S_IFDIR {
		for name, ch := range n.children {
			delete(n.children, name)
			c.reclaimNode(ch)
		}
		return // directories are not pooled; they are rare
	}
	if n.pipe == nil && n.kind == S_IFREG {
		n.data = n.data[:0]
		c.fileFree = append(c.fileFree, n)
	}
}

// --- filesystem setup helpers (not interposed) ---------------------------

// MustWriteFile creates path (and parents) with the given contents,
// bypassing the dispatcher. Tests and workloads use it to stage fixtures.
func (c *C) MustWriteFile(path string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start, end, ok := lastSeg(path)
	if !ok {
		return
	}
	n := c.root
	it := pathIter{path: path[:start]}
	for {
		part, more := it.next()
		if !more {
			break
		}
		child, ok := n.children[part]
		if !ok {
			child = newDir()
			n.children[part] = child
		}
		n = child
	}
	name := path[start:end]
	f, ok := n.children[name]
	if !ok || f.kind != S_IFREG {
		f = newFile()
		n.children[name] = f
	}
	f.data = append(f.data[:0], data...)
}

// MustMkdirAll creates a directory path, bypassing the dispatcher.
func (c *C) MustMkdirAll(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.root
	it := pathIter{path: path}
	for {
		part, more := it.next()
		if !more {
			return
		}
		child, ok := n.children[part]
		if !ok {
			child = newDir()
			n.children[part] = child
		}
		n = child
	}
}

// ReadFileRaw returns a file's contents, bypassing the dispatcher.
func (c *C) ReadFileRaw(path string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, e := c.lookup(path)
	if e != errno.OK || n.kind != S_IFREG {
		return nil, false
	}
	return append([]byte(nil), n.data...), true
}

// --- interposed filesystem calls -----------------------------------------

// Open models open(2), returning a file descriptor or -1.
func (t *Thread) Open(path string, flags int64) int64 {
	c := t.C
	return t.call(fnOpen, []int64{int64(len(path)), flags}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		n, e := c.lookup(path)
		if e != errno.OK {
			if flags&O_CREAT == 0 {
				return -1, e
			}
			parent, name, pe := c.lookupParent(path)
			if pe != errno.OK {
				return -1, pe
			}
			n = c.newFileNode()
			parent.children[name] = n
		} else if n.kind == S_IFDIR && flags&(O_WRONLY|O_RDWR) != 0 {
			return -1, errno.EISDIR
		}
		if flags&O_TRUNC != 0 && n.kind == S_IFREG {
			n.data = n.data[:0]
		}
		d := c.allocFD()
		d.node, d.flags = n, flags
		if flags&O_APPEND != 0 {
			d.off = int64(len(n.data))
		}
		return int64(c.newFD(d)), errno.OK
	})
}

// Close models close(2).
func (t *Thread) Close(fd int64) int64 {
	c := t.C
	return t.call(fnClose, []int64{fd}, func() (int64, errno.Errno) {
		c.mu.Lock()
		d, ok := c.fds[int(fd)]
		if ok {
			delete(c.fds, int(fd))
		}
		c.mu.Unlock()
		if !ok {
			return -1, errno.EBADF
		}
		if d.ep != nil {
			d.ep.Close()
		}
		if d.pipe != nil {
			d.pipe.mu.Lock()
			if d.pipeW {
				d.pipe.writers--
			} else {
				d.pipe.readers--
			}
			d.pipe.cond.Broadcast()
			d.pipe.mu.Unlock()
		}
		return 0, errno.OK
	})
}

// Read models read(2) into buf, returning the byte count, 0 at EOF, or -1.
func (t *Thread) Read(fd int64, buf []byte) int64 {
	c := t.C
	return t.call(fnRead, []int64{fd, 0, int64(len(buf))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		d, ok := c.fds[int(fd)]
		c.mu.Unlock()
		if !ok {
			return -1, errno.EBADF
		}
		if d.pipe != nil && !d.pipeW {
			return d.pipe.read(buf, d.flags&O_NONBLOCK != 0)
		}
		if d.node == nil || d.node.kind != S_IFREG {
			return -1, errno.EINVAL
		}
		d.node.mu.Lock()
		defer d.node.mu.Unlock()
		if d.off >= int64(len(d.node.data)) {
			return 0, errno.OK
		}
		n := copy(buf, d.node.data[d.off:])
		d.off += int64(n)
		return int64(n), errno.OK
	})
}

// Write models write(2), returning the byte count or -1.
func (t *Thread) Write(fd int64, buf []byte) int64 {
	c := t.C
	return t.call(fnWrite, []int64{fd, 0, int64(len(buf))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		d, ok := c.fds[int(fd)]
		c.mu.Unlock()
		if !ok {
			return -1, errno.EBADF
		}
		if d.pipe != nil && d.pipeW {
			return d.pipe.write(buf)
		}
		if d.node == nil || d.node.kind != S_IFREG {
			return -1, errno.EINVAL
		}
		d.node.mu.Lock()
		defer d.node.mu.Unlock()
		if gap := d.off - int64(len(d.node.data)); gap > 0 {
			d.node.data = append(d.node.data, make([]byte, gap)...)
		}
		n := copy(d.node.data[d.off:], buf)
		d.node.data = append(d.node.data, buf[n:]...)
		d.off += int64(len(buf))
		return int64(len(buf)), errno.OK
	})
}

// Lseek models lseek(2) with SEEK_SET semantics only (whence 0).
func (t *Thread) Lseek(fd, off int64) int64 {
	c := t.C
	return t.call(fnLseek, []int64{fd, off, 0}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		d, ok := c.fds[int(fd)]
		if !ok {
			return -1, errno.EBADF
		}
		if off < 0 || d.node == nil {
			return -1, errno.EINVAL
		}
		d.off = off
		return off, errno.OK
	})
}

// Unlink models unlink(2).
func (t *Thread) Unlink(path string) int64 {
	c := t.C
	return t.call(fnUnlink, []int64{int64(len(path))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		parent, name, e := c.lookupParent(path)
		if e != errno.OK {
			return -1, e
		}
		n, ok := parent.children[name]
		if !ok {
			return -1, errno.ENOENT
		}
		if n.kind == S_IFDIR {
			return -1, errno.EISDIR
		}
		delete(parent.children, name)
		return 0, errno.OK
	})
}

// Mkdir models mkdir(2).
func (t *Thread) Mkdir(path string) int64 {
	c := t.C
	return t.call(fnMkdir, []int64{int64(len(path))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		parent, name, e := c.lookupParent(path)
		if e != errno.OK {
			return -1, e
		}
		if _, ok := parent.children[name]; ok {
			return -1, errno.EEXIST
		}
		parent.children[name] = newDir()
		return 0, errno.OK
	})
}

// StatPath models stat(2); the out parameter plays the role of the
// caller-provided struct stat buffer.
func (t *Thread) StatPath(path string, out *Stat) int64 {
	c := t.C
	return t.call(fnStat, []int64{int64(len(path))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		n, e := c.lookup(path)
		if e != errno.OK {
			return -1, e
		}
		out.Mode = n.kind
		out.Size = int64(len(n.data))
		return 0, errno.OK
	})
}

// Fstat models fstat(2).
func (t *Thread) Fstat(fd int64, out *Stat) int64 {
	c := t.C
	return t.call(fnFstat, []int64{fd}, func() (int64, errno.Errno) {
		st, ok := c.RawStatFD(fd)
		if !ok {
			return -1, errno.EBADF
		}
		*out = st
		return 0, errno.OK
	})
}

// RawStatFD is Fstat without interposition, for use inside triggers.
func (c *C) RawStatFD(fd int64) (Stat, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.fds[int(fd)]
	if !ok {
		return Stat{}, false
	}
	switch {
	case d.pipe != nil:
		return Stat{Mode: S_IFIFO}, true
	case d.ep != nil:
		return Stat{Mode: S_IFSOCK}, true
	default:
		d.node.mu.Lock()
		defer d.node.mu.Unlock()
		return Stat{Mode: d.node.kind, Size: int64(len(d.node.data))}, true
	}
}

// Pipe models pipe(2): on success fds[0] is the read end and fds[1] the
// write end.
func (t *Thread) Pipe(fds *[2]int64) int64 {
	c := t.C
	return t.call(fnPipe, nil, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		p := newPipeBuf()
		rd := c.allocFD()
		rd.pipe = p
		wr := c.allocFD()
		wr.pipe, wr.pipeW = p, true
		fds[0] = int64(c.newFD(rd))
		fds[1] = int64(c.newFD(wr))
		return 0, errno.OK
	})
}

func (p *pipeBuf) read(buf []byte, nonblock bool) (int64, errno.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.data) == 0 {
		if p.writers == 0 {
			return 0, errno.OK // EOF
		}
		if nonblock {
			return -1, errno.EAGAIN
		}
		p.cond.Wait()
	}
	n := copy(buf, p.data)
	p.data = p.data[n:]
	p.cond.Broadcast()
	return int64(n), errno.OK
}

func (p *pipeBuf) write(buf []byte) (int64, errno.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readers == 0 {
		return -1, errno.EPIPE
	}
	p.data = append(p.data, buf...)
	p.cond.Broadcast()
	return int64(len(buf)), errno.OK
}

// Readlink models readlink(2). The simulated fs stores link targets as
// file contents under a ".lnk" naming convention used by minivcs.
func (t *Thread) Readlink(path string, buf []byte) int64 {
	c := t.C
	return t.call(fnReadlink, []int64{int64(len(path)), 0, int64(len(buf))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		n, e := c.lookup(path + ".lnk")
		if e != errno.OK {
			return -1, errno.EINVAL
		}
		cnt := copy(buf, n.data)
		return int64(cnt), errno.OK
	})
}

// ListDirRaw returns sorted child names of a directory, bypassing the
// dispatcher (fixture/verification helper).
func (c *C) ListDirRaw(path string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, e := c.lookup(path)
	if e != errno.OK || n.kind != S_IFDIR {
		return nil, false
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, true
}
