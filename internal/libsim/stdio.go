package libsim

import (
	"lfi/internal/errno"
)

// file is the object behind a FILE* handle.
type file struct {
	node *inode
	off  int64
	wr   bool
}

// Fopen models fopen(3): a non-zero FILE* handle, or 0 (NULL) on error.
// Supported modes are "r", "w", and "a".
func (t *Thread) Fopen(path, mode string) int64 {
	c := t.C
	return t.call(fnFopen, []int64{int64(len(path)), int64(len(mode))}, func() (int64, errno.Errno) {
		c.mu.Lock()
		defer c.mu.Unlock()
		var n *inode
		var e errno.Errno
		switch mode {
		case "r":
			n, e = c.lookup(path)
			if e != errno.OK {
				return 0, e
			}
			if n.kind != S_IFREG {
				return 0, errno.EISDIR
			}
		case "w", "a":
			n, e = c.lookup(path)
			if e == errno.ENOENT {
				parent, name, pe := c.lookupParent(path)
				if pe != errno.OK {
					return 0, pe
				}
				n = c.newFileNode()
				parent.children[name] = n
			} else if e != errno.OK {
				return 0, e
			} else if n.kind != S_IFREG {
				return 0, errno.EISDIR
			}
			if mode == "w" {
				n.data = n.data[:0]
			}
		default:
			return 0, errno.EINVAL
		}
		h := c.nextFile
		c.nextFile++
		f := &file{node: n, wr: mode != "r"}
		if mode == "a" {
			f.off = int64(len(n.data))
		}
		c.files[h] = f
		return h, errno.OK
	})
}

// lookupFile resolves a FILE* handle; a NULL or stale handle crashes,
// which is exactly how the PBFT checkpoint bug (fwrite after failed
// fopen) manifests.
func (t *Thread) lookupFile(h int64, op string) *file {
	c := t.C
	c.mu.Lock()
	f, ok := c.files[h]
	c.mu.Unlock()
	if h == 0 {
		t.RaiseCrash(Segfault, "%s(NULL FILE*)", op)
	}
	if !ok {
		t.RaiseCrash(Segfault, "%s on invalid FILE* %#x", op, h)
	}
	return f
}

// Fwrite models fwrite(3) with size=1: returns the number of bytes
// written. Calling it with a NULL stream crashes the program.
func (t *Thread) Fwrite(data []byte, stream int64) int64 {
	return t.call(fnFwrite, []int64{0, 1, int64(len(data)), stream}, func() (int64, errno.Errno) {
		f := t.lookupFile(stream, "fwrite")
		if !f.wr {
			return 0, errno.EBADF
		}
		f.node.mu.Lock()
		defer f.node.mu.Unlock()
		f.node.data = append(f.node.data[:f.off], data...)
		f.off += int64(len(data))
		return int64(len(data)), errno.OK
	})
}

// Fread models fread(3) with size=1: returns the number of bytes read
// (possibly short at EOF). A NULL stream crashes.
func (t *Thread) Fread(buf []byte, stream int64) int64 {
	return t.call(fnFread, []int64{0, 1, int64(len(buf)), stream}, func() (int64, errno.Errno) {
		f := t.lookupFile(stream, "fread")
		f.node.mu.Lock()
		defer f.node.mu.Unlock()
		if f.off >= int64(len(f.node.data)) {
			return 0, errno.OK
		}
		n := copy(buf, f.node.data[f.off:])
		f.off += int64(n)
		return int64(n), errno.OK
	})
}

// Fclose models fclose(3). Closing NULL crashes (as glibc does).
func (t *Thread) Fclose(stream int64) int64 {
	c := t.C
	return t.call(fnFclose, []int64{stream}, func() (int64, errno.Errno) {
		t.lookupFile(stream, "fclose")
		c.mu.Lock()
		delete(c.files, stream)
		c.mu.Unlock()
		return 0, errno.OK
	})
}

// Fflush models fflush(3); the in-memory stream has nothing buffered, so
// it only validates the handle.
func (t *Thread) Fflush(stream int64) int64 {
	return t.call(fnFflush, []int64{stream}, func() (int64, errno.Errno) {
		t.lookupFile(stream, "fflush")
		return 0, errno.OK
	})
}
