// Package system is the registry of target systems the LFI toolchain
// can test — the extensibility seam of the paper's §3 pitch, applied to
// targets instead of triggers.
//
// Every built-in application (internal/apps/*, internal/pbft) describes
// itself with a Descriptor — how to build its binary and symbol-offset
// map, how to adapt it to the test controller with and without coverage
// accumulation, which library fault profiles it links against, what its
// default workload suite is, and which stock Table-1 crash bugs the
// toolchain is expected to rediscover — and registers it from an init
// function, database/sql-driver style. Engines and entry points
// (cmd/lfi, the analyzer, the explorer, the public Session API) consume
// descriptors through Lookup/All and never enumerate systems by hand,
// so adding a target means writing one package that calls Register; no
// engine or command changes. The descriptor contract is enforced by the
// registry conformance test at the repository root.
//
// Like database/sql drivers, a descriptor is only visible after its
// package has been imported; lfi/internal/system/all blank-imports
// every built-in system and is itself imported by the public lfi
// package, so facade users always see the full set.
package system

import (
	"fmt"
	"sort"
	"sync"

	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/isa"
	"lfi/internal/profile"
)

// StockBug is one known bug a system's descriptor advertises — a crash
// the paper's Table 1 campaigns find and the coverage-guided explorer
// must rediscover with no hand-written scenario (the conformance
// contract).
type StockBug struct {
	// Match is a stable substring of the failure signature
	// (controller.FailureSignature) that identifies the bug.
	Match string
	// Note says what the bug is, for reports and test output.
	Note string
	// WindowOnly marks bugs that need sustained fault pressure: no
	// single generated candidate can trigger them, only the explorer's
	// bred window mutants — global occurrence windows or site-local
	// call-stack windows (e.g. PBFT's view-change crash).
	WindowOnly bool
	// StackWindowOnly marks bugs that additionally hide past the global
	// occurrence counter's range: only a *call-stack* window — a burst
	// counted locally at one call site — can place the faults (e.g.
	// RAFT's log-truncation crash, which sits in the replication loop
	// after the election churn has consumed the global count). Implies
	// the WindowOnly contract.
	StackWindowOnly bool
}

// Descriptor describes one testable target system. All fields up to
// StockBugs are required; a nil BlockForSite falls back to the shared
// "rec." + site-label convention derived from the Binary offset map.
type Descriptor struct {
	// Name is the registry key, the store directory name, and the
	// system label on bug reports (e.g. "minidb").
	Name string
	// Workload describes the default test-suite workload the Target
	// runs, for docs and usage text.
	Workload string
	// Binary assembles the program image and returns it with the
	// site-label → code-offset map the application's instrumentation
	// uses (labels double as coverage block IDs).
	Binary func() (*isa.Binary, map[string]uint64)
	// Target adapts the system to the test controller: each Start
	// stages a fresh process image bound to the default workload suite
	// and must be safe for concurrent campaign workers.
	Target func() controller.Target
	// TargetWithCoverage is Target plus per-run coverage accumulation
	// into the given tracker — the shape the explorer and the Table 3
	// workflow consume.
	TargetWithCoverage func(*coverage.Tracker) controller.Target
	// Profiles returns the fault profiles of the libraries the system
	// links against (usually DefaultProfiles).
	Profiles func() []*profile.Profile
	// BlockForSite maps (callee, call-site offset) to the recovery
	// block its error path executes, "" if unknown. Optional: nil uses
	// the built-in convention ("rec." + the site label at that offset).
	BlockForSite func(callee string, offset uint64) string
	// StockBugs are the system's known Table-1 crash bugs.
	StockBugs []StockBug
}

// validate reports the first missing required field.
func (d *Descriptor) validate() error {
	switch {
	case d == nil:
		return fmt.Errorf("system: Register called with nil descriptor")
	case d.Name == "":
		return fmt.Errorf("system: descriptor has no Name")
	case d.Binary == nil:
		return fmt.Errorf("system %q: descriptor has no Binary", d.Name)
	case d.Target == nil:
		return fmt.Errorf("system %q: descriptor has no Target", d.Name)
	case d.TargetWithCoverage == nil:
		return fmt.Errorf("system %q: descriptor has no TargetWithCoverage", d.Name)
	case d.Profiles == nil:
		return fmt.Errorf("system %q: descriptor has no Profiles", d.Name)
	}
	return nil
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]*Descriptor)
)

// Register makes a system available by name. Like database/sql.Register
// it is meant to be called from the system package's init function and
// panics on an invalid or duplicate registration — both are wiring bugs
// that should fail at program start, not at lookup time.
func Register(d *Descriptor) {
	if err := d.validate(); err != nil {
		panic(err.Error())
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[d.Name]; dup {
		panic("system: Register called twice for " + d.Name)
	}
	registry[d.Name] = d
}

// Replace swaps an already-registered descriptor for a modified copy
// under the same name. It exists for one consumer: a worker process
// simulating a mixed build (`lfi serve -patch`), which must make its
// *own* registry reflect the patched image so hellos, fingerprints and
// executions all agree. It errors — rather than registering — when the
// name is unknown, so it can never be used to smuggle in a new system.
func Replace(d *Descriptor) error {
	if err := d.validate(); err != nil {
		return fmt.Errorf("system: Replace: %s", err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[d.Name]; !ok {
		return fmt.Errorf("system: Replace: %q is not registered", d.Name)
	}
	registry[d.Name] = d
	return nil
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (*Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	return d, ok
}

// All returns every registered descriptor, sorted by name.
func All() []*Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered system names, sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}
