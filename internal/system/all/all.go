// Package all registers every built-in target system with the system
// registry, database/sql-driver style: importing it for side effects is
// the one line that pulls the built-in descriptors into a binary. The
// public lfi package imports it, so facade users always see the full
// set; a program that wants only a subset can import the individual
// system packages instead.
package all

import (
	_ "lfi/internal/apps/minidb"
	_ "lfi/internal/apps/minidns"
	_ "lfi/internal/apps/minivcs"
	_ "lfi/internal/apps/miniweb"
	_ "lfi/internal/pbft"
	_ "lfi/internal/raft"
)
