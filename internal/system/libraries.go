package system

import (
	"fmt"
	"sync"

	"lfi/internal/isa"
	"lfi/internal/libspec"
	"lfi/internal/profile"
)

// This file registers the simulated shared libraries next to the target
// systems, so library-facing entry points (the profiler, DefaultProfiles)
// enumerate them instead of hand-rolling a switch.

var libraries = []struct {
	name  string
	build func() *isa.Binary
}{
	// Profile order is load-bearing: fault lookups scan profiles in
	// this order and take the first library exporting the function.
	{"libc", libspec.BuildLibc},
	{"libxml", libspec.BuildLibxml},
	{"libapr", libspec.BuildLibapr},
}

// Libraries returns the names of the simulated shared libraries, in
// profile order.
func Libraries() []string {
	out := make([]string, 0, len(libraries))
	for _, lib := range libraries {
		out = append(out, lib.name)
	}
	return out
}

// BuildLibrary assembles one simulated library binary by name.
func BuildLibrary(name string) (*isa.Binary, bool) {
	for _, lib := range libraries {
		if lib.name == name {
			return lib.build(), true
		}
	}
	return nil, false
}

var (
	profilesOnce sync.Once
	profilesSet  []*profile.Profile
)

// DefaultProfiles builds the fault profiles of every simulated library
// by running the library profiler over their binaries. The set is built
// once and shared — profiles are read-only after construction, and every
// descriptor and campaign call site wants the same ones.
func DefaultProfiles() []*profile.Profile {
	profilesOnce.Do(func() {
		for _, name := range Libraries() {
			bin, ok := BuildLibrary(name)
			if !ok {
				panic(fmt.Sprintf("system: library %q vanished", name))
			}
			profilesSet = append(profilesSet, profile.ProfileBinary(bin))
		}
	})
	return profilesSet
}
