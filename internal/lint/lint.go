// Package lint is the repository's own Go-source linter — rules that
// gofmt and go vet cannot express because they encode project policy,
// not language correctness:
//
//  1. No hand-rolled system-name dispatch. Target systems are
//     registered descriptors (internal/system); a switch over the
//     built-in system names outside the registry and the application
//     packages reintroduces the per-system plumbing the registry
//     removed, and silently misses externally-registered systems.
//  2. No ambient nondeterminism in deterministic paths. The explorer,
//     the scenario language and the distributed trace harness promise
//     byte-identical results for the same inputs and seed; time.Now,
//     time.Since and math/rand in those packages break replay and
//     store reuse. Wall-clock elapsed reporting is allowlisted
//     explicitly.
//
// cmd/lfi-lintgo wires it into the build (CI runs it beside go vet).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Issue is one policy violation.
type Issue struct {
	Pos  string // file:line:col, file slash-separated and root-relative
	Rule string // "system-switch" or "determinism"
	Msg  string
}

func (i Issue) String() string { return i.Pos + ": " + i.Rule + ": " + i.Msg }

// systemNames are the built-in target systems. The linter is the one
// deliberate place outside internal/system that spells them out: it is
// the tool that keeps every other such list from existing.
var systemNames = map[string]bool{
	"minidb":  true,
	"minidns": true,
	"minivcs": true,
	"miniweb": true,
	"pbft":    true,
	"raft":    true,
}

// deterministicDirs are package directories whose non-test sources
// must not consult wall clocks or the global random source.
var deterministicDirs = []string{
	"internal/explore",
	"internal/scenario",
	"internal/distharness",
}

// clockAllowlist exempts files whose only clock use is reporting how
// long a run took — elapsed time is presented to humans, never fed
// back into scheduling or results.
var clockAllowlist = map[string]bool{
	"internal/explore/explore.go": true,
	"internal/explore/multi.go":   true,
}

// Run lints every non-test .go file under root and returns the issues
// sorted by position. root is typically the repository root.
func Run(root string) ([]Issue, error) {
	var issues []Issue
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		issues = append(issues, lintFile(fset, f, rel)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(issues, func(i, j int) bool { return issues[i].Pos < issues[j].Pos })
	return issues, nil
}

func lintFile(fset *token.FileSet, f *ast.File, rel string) []Issue {
	var issues []Issue
	at := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d:%d", rel, p.Line, p.Column)
	}

	if !strings.HasPrefix(rel, "internal/system/") && !strings.HasPrefix(rel, "internal/apps/") {
		issues = append(issues, systemSwitches(f, at)...)
	}
	if inDeterministicDir(rel) {
		issues = append(issues, nondeterminism(f, rel, at)...)
	}
	return issues
}

func inDeterministicDir(rel string) bool {
	for _, dir := range deterministicDirs {
		if strings.HasPrefix(rel, dir+"/") {
			return true
		}
	}
	return false
}

// systemSwitches flags switch statements dispatching on the built-in
// system names: two or more case clauses whose expressions are string
// literals naming registered systems.
func systemSwitches(f *ast.File, at func(token.Pos) string) []Issue {
	var issues []Issue
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		var names []string
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				lit, ok := e.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				if s, err := strconv.Unquote(lit.Value); err == nil && systemNames[s] {
					names = append(names, s)
				}
			}
		}
		if len(names) >= 2 {
			issues = append(issues, Issue{
				Pos:  at(sw.Pos()),
				Rule: "system-switch",
				Msg: fmt.Sprintf("switch dispatches on system names (%s); resolve through the internal/system registry instead",
					strings.Join(names, ", ")),
			})
		}
		return true
	})
	return issues
}

// nondeterminism flags math/rand imports and time.Now / time.Since
// calls in deterministic packages.
func nondeterminism(f *ast.File, rel string, at func(token.Pos) string) []Issue {
	var issues []Issue
	timeName := "" // local name of the "time" import, "" if absent
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "math/rand", "math/rand/v2":
			issues = append(issues, Issue{
				Pos:  at(imp.Pos()),
				Rule: "determinism",
				Msg:  fmt.Sprintf("%s imported in a deterministic package; derive randomness from the run seed", path),
			})
		case "time":
			timeName = "time"
			if imp.Name != nil {
				timeName = imp.Name.Name
			}
		}
	}
	if timeName == "" || timeName == "_" || clockAllowlist[rel] {
		return issues
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Name != timeName || ident.Obj != nil {
			return true
		}
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			issues = append(issues, Issue{
				Pos:  at(sel.Pos()),
				Rule: "determinism",
				Msg:  fmt.Sprintf("time.%s in a deterministic package; results must not depend on the wall clock", sel.Sel.Name),
			})
		}
		return true
	})
	return issues
}
