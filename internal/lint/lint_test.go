package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays out a synthetic source tree and returns its root.
func write(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func rules(issues []Issue) []string {
	var out []string
	for _, i := range issues {
		out = append(out, i.Rule)
	}
	return out
}

func TestSystemSwitchFlagged(t *testing.T) {
	root := write(t, map[string]string{
		"cmd/tool/main.go": `package main
func pick(app string) int {
	switch app {
	case "minivcs":
		return 1
	case "pbft", "raft":
		return 2
	}
	return 0
}
`,
	})
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || issues[0].Rule != "system-switch" {
		t.Fatalf("issues = %v, want one system-switch", issues)
	}
	if !strings.Contains(issues[0].Msg, "minivcs") || !strings.Contains(issues[0].Msg, "raft") {
		t.Fatalf("message does not name the offending systems: %s", issues[0].Msg)
	}
}

func TestSystemSwitchExemptions(t *testing.T) {
	sw := `package p
func pick(app string) int {
	switch app {
	case "minidb":
		return 1
	case "miniweb":
		return 2
	}
	return 0
}
`
	root := write(t, map[string]string{
		// The registry and the application packages may name systems.
		"internal/system/registry.go": sw,
		"internal/apps/minidb/reg.go": sw,
		// Tests may too.
		"internal/explore/x_test.go": sw,
		// A switch with just one system-name case is not dispatch.
		"internal/explore/one.go": `package explore
func f(s string) bool {
	switch s {
	case "minidb":
		return true
	case "something-else":
		return false
	}
	return false
}
`,
	})
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("exempt files flagged: %v", issues)
	}
}

func TestDeterminismRule(t *testing.T) {
	root := write(t, map[string]string{
		"internal/explore/sched.go": `package explore
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/scenario/shuffle.go": `package scenario
import "math/rand"
func pick() int { return rand.Int() }
`,
		// Outside the deterministic set: clocks are fine.
		"internal/controller/run.go": `package controller
import "time"
func now() time.Time { return time.Now() }
`,
		// Allowlisted elapsed reporting.
		"internal/explore/explore.go": `package explore
import "time"
func elapsed(begin time.Time) time.Duration { return time.Since(begin) }
`,
		// time.Duration types and constants are not clock reads.
		"internal/explore/types.go": `package explore
import "time"
const tick = 5 * time.Millisecond
func wait(d time.Duration) {}
`,
		// A local variable named like the package is not the package.
		"internal/explore/shadow.go": `package explore
type clock struct{ Now func() int64 }
func use(time clock) int64 { return time.Now() }
`,
	})
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	got := rules(issues)
	if len(issues) != 2 || got[0] != "determinism" || got[1] != "determinism" {
		t.Fatalf("issues = %v, want exactly two determinism findings", issues)
	}
	var files []string
	for _, i := range issues {
		files = append(files, strings.SplitN(i.Pos, ":", 2)[0])
	}
	want := []string{"internal/explore/sched.go", "internal/scenario/shuffle.go"}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("flagged files %v, want %v", files, want)
		}
	}
}

// TestRepositoryClean runs the linter over the real repository — the
// same invocation CI makes. A failure here means a policy violation
// crept in (or a new legitimate clock use needs allowlisting).
func TestRepositoryClean(t *testing.T) {
	issues, err := Run(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range issues {
		t.Errorf("%s", i)
	}
}

// repoRoot walks up from the package directory to the directory
// holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above package directory")
		}
		dir = parent
	}
}
