package minidb

import (
	"lfi/internal/controller"
	"lfi/internal/libsim"
)

// Target adapts minidb to the LFI controller (default suite workload).
func Target() controller.Target {
	var app *App
	return controller.Target{
		Name: Module,
		Start: func() *libsim.C {
			app = New()
			return app.C
		},
		Workload: func(*libsim.C) error {
			return app.RunSuite()
		},
	}
}

// MergeBigTarget runs only the merge-big component (Table 2).
func MergeBigTarget() controller.Target {
	var app *App
	return controller.Target{
		Name: Module + "-merge-big",
		Start: func() *libsim.C {
			app = New()
			return app.C
		},
		Workload: func(*libsim.C) error {
			return app.MergeBig()
		},
	}
}
