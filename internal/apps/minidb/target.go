package minidb

import (
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// Target adapts minidb to the LFI controller (default suite workload).
// Each Start builds its own App, so the target is safe for concurrent
// campaign workers.
func Target() controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, app.RunSuite
		},
	}
}

// TargetWithCoverage is Target plus per-run coverage accumulation into
// acc — the Table 3 / explorer workflow, where lcov-style data from
// every test run is merged before computing campaign coverage.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, func() error {
				defer func() { acc.Merge(app.Cov) }()
				return app.RunSuite()
			}
		},
	}
}

// MergeBigTarget runs only the merge-big component (Table 2).
func MergeBigTarget() controller.Target {
	return controller.Target{
		Name: Module + "-merge-big",
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, app.MergeBig
		},
	}
}
