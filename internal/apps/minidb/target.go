package minidb

import (
	"lfi/internal/controller"
	"lfi/internal/libsim"
)

// Target adapts minidb to the LFI controller (default suite workload).
// Each Start builds its own App, so the target is safe for concurrent
// campaign workers.
func Target() controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, app.RunSuite
		},
	}
}

// MergeBigTarget runs only the merge-big component (Table 2).
func MergeBigTarget() controller.Target {
	return controller.Target{
		Name: Module + "-merge-big",
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, app.MergeBig
		},
	}
}
