package minidb

import "lfi/internal/system"

// The descriptor makes minidb visible to every registry-driven entry
// point (cmd/lfi, the analyzer, the explorer, the Session API) without
// those packages naming it; the conformance test at the repository root
// enforces the contract, including rediscovery of the stock bugs below.
func init() {
	system.Register(&system.Descriptor{
		Name:               Module,
		Workload:           "MyISAM-style create/insert/select/merge regression suite (RunSuite)",
		Binary:             Binary,
		Target:             Target,
		TargetWithCoverage: TargetWithCoverage,
		Profiles:           system.DefaultProfiles,
		StockBugs: []system.StockBug{
			{Match: "double unlock", Note: "double mutex unlock in mi_create's recovery path (MySQL bug [19])"},
			{Match: "uninitialized errmsg", Note: "crash on uninitialized error-message structure after a failed read (MySQL bug [20])"},
		},
	})
}
