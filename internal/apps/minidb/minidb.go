// Package minidb is the MySQL 5.1.44 stand-in: a small storage engine
// with MyISAM-style table creation, an error-message catalogue, a lock
// manager, and an OLTP query path, written against the simulated C
// library.
//
// It carries the MySQL bugs of Table 1:
//
//   - abort from a double mutex unlock: mi_create's error-handling code
//     releases resources, including a mutex the normal flow has already
//     unlocked, so a failed close right after the unlock triggers a
//     double unlock [19];
//   - crash after a failed read of errmsg.sys: the error is logged, but
//     an uninitialized message structure is accessed anyway [20]. (The
//     related missing-file bug [21] is fixed: a failed open is handled.)
//
// The OLTP path (transactions doing fcntl/read/write) and the registered
// globals thread_count and shutdown_in_progress support the Table 6
// trigger-overhead study; the merge-big workload reproduces Table 2.
package minidb

import (
	"fmt"
	"sync"

	"lfi/internal/asm"
	"lfi/internal/coverage"
	"lfi/internal/isa"
	"lfi/internal/libsim"
)

// Module is the binary/module name used in stack frames and scenarios.
const Module = "minidb"

// Source files used in DWARF-style frame info; the Table 2 "within
// bug's file" trigger matches MiCreateFile.
const (
	MiCreateFile = "myisam/mi_create.c"
	HandlerFile  = "sql/handler.cc"
	ErrmsgFile   = "sql/derror.cc"
)

// Sites is the ground-truth call-site model.
func Sites() []asm.FuncSpec {
	return []asm.FuncSpec{
		{Name: "mi_create", Sites: []asm.SiteSpec{
			{Label: "mc_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "mc_write", Callee: "write", Style: asm.CheckIneq},
			{Label: "mc_scratch_close", Callee: "close", Style: asm.CheckIneq},
			{Label: "mc_close", Callee: "close", Style: asm.CheckIneq}, // checked; recovery double-unlocks [19]
		}},
		{Name: "errmsg_load", Sites: []asm.SiteSpec{
			{Label: "em_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "em_read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}}, // logs, then crashes [20]
			{Label: "em_close", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "handler_flush", Sites: []asm.SiteSpec{
			{Label: "hf_close1", Callee: "close", Style: asm.CheckIneq},
			{Label: "hf_close2", Callee: "close", Style: asm.CheckIneq},
			{Label: "hf_close3", Callee: "close", Style: asm.CheckEqViaCopy, Codes: []int64{-1}},
		}},
		{Name: "lock_manager", Sites: []asm.SiteSpec{
			{Label: "lm_fcntl", Callee: "fcntl", Style: asm.CheckIneq},
			{Label: "lm_fcntl2", Callee: "fcntl", Style: asm.CheckEq, Codes: []int64{-1}},
		}},
		{Name: "buffer_pool_init", Sites: []asm.SiteSpec{
			{Label: "bp_malloc1", Callee: "malloc", Style: asm.CheckEqZero},
			{Label: "bp_malloc2", Callee: "malloc", Style: asm.CheckEqZero},
		}},
		{Name: "oltp_txn", Sites: []asm.SiteSpec{
			{Label: "tx_read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1, 0}},
			{Label: "tx_write", Callee: "write", Style: asm.CheckIneq},
		}},
	}
}

var (
	binOnce sync.Once
	bin     *isa.Binary
	offs    map[string]uint64
)

// Binary returns the compiled minidb program image and site offsets.
func Binary() (*isa.Binary, map[string]uint64) {
	binOnce.Do(func() {
		var err error
		bin, offs, err = asm.Program(Module, Sites())
		if err != nil {
			panic("minidb: " + err.Error())
		}
	})
	return bin, offs
}

// App is one running minidb instance.
type App struct {
	C   *libsim.C
	Th  *libsim.Thread
	Cov *coverage.Tracker

	mutex       int64 // THR_LOCK_myisam
	tableFD     int64
	errmsgReady bool
	errmsgs     []string

	threadCount        int64
	shutdownInProgress int64
	txnCount           int64

	// Reused run-loop scratch: the suite's read buffers and the bound
	// workload closure, kept on the instance so a pooled app's runs
	// allocate nothing for them.
	readBuf [256]byte
	txnBuf  [16]byte
	suite   func() error
}

// Fixed byte/path constants of the suite, hoisted so the hot run loop
// does not rebuild them per call.
var (
	myiHeader = []byte("MYI-header")
	updateRec = []byte("update;")

	flushLabels   = [...]string{"hf_close1", "hf_close2", "hf_close3"}
	flushRecIDs   = [...]string{"rec.hf_close1", "rec.hf_close2", "rec.hf_close3"}
	bufpoolLabels = [...]string{"bp_malloc1", "bp_malloc2"}
	bufpoolRecIDs = [...]string{"rec.bp_malloc1", "rec.bp_malloc2"}
)

// mergeNames are the six merge-big table names with their derived
// paths, precomputed because MergeBig runs them every suite.
var mergeNames = func() [6]struct{ name, tmp, myi string } {
	var out [6]struct{ name, tmp, myi string }
	for i := range out {
		name := fmt.Sprintf("merge_%d", i)
		out[i] = struct{ name, tmp, myi string }{name, "/var/db/" + name + ".tmp", "/var/db/" + name + ".MYI"}
	}
	return out
}()

// New stages database fixtures and returns a ready instance.
func New() *App {
	c := libsim.New(1 << 22)
	a := &App{C: c, Th: c.NewThread(Module, "main"), Cov: coverage.New()}
	c.Owner = a
	a.suite = a.RunSuite
	a.mutex = c.MutexInit()
	c.MustMkdirAll("/var/db")
	c.MustWriteFile("/var/db/errmsg.sys", []byte("ER_DUP_KEY;ER_NO_SUCH_TABLE;ER_LOCK_WAIT"))
	c.MustWriteFile("/var/db/table.MYD", []byte("row1;row2;row3;row4"))
	c.SnapshotFS()
	c.RegisterVar("thread_count", func() int64 { return a.threadCount })
	c.RegisterVar("shutdown_in_progress", func() int64 { return a.shutdownInProgress })
	a.registerCoverage()
	return a
}

// Reset rewinds the instance to its post-New state so a worker pool can
// reuse it: process image restored (fixtures, heap, handles, dispatcher
// counters), thread rewound, coverage hits cleared, app state zeroed.
// The mutex is freshly created rather than recycled — a crashed run can
// abandon the old one in a locked state.
func (a *App) Reset() {
	a.C.Reset()
	a.Th.Reset()
	a.Cov.ResetHits()
	a.mutex = a.C.MutexInit()
	a.tableFD = 0
	a.errmsgReady = false
	a.errmsgs = a.errmsgs[:0]
	a.threadCount = 0
	a.shutdownInProgress = 0
	a.txnCount = 0
}

func (a *App) atLine(fn, label, file string, line int) func() {
	_, offsets := Binary()
	return a.Th.EnterAt(Module, fn, offsets[label], file, line)
}

func (a *App) registerCoverage() {
	reg := func(id string, loc int, rec bool) { a.Cov.Register(id, loc, rec) }
	reg("main.mi_create", 60, false)
	reg("main.errmsg", 30, false)
	reg("main.flush", 25, false)
	reg("main.lock", 20, false)
	reg("main.bufpool", 20, false)
	reg("main.txn", 30, false)
	reg("rec.mc_open", 8, true)
	reg("rec.mc_write", 10, true)
	reg("rec.mc_scratch_close", 4, true)
	reg("rec.mc_close", 12, true)
	reg("rec.em_open", 8, true)
	reg("rec.em_read", 6, true)
	reg("rec.em_close", 4, true)
	reg("rec.hf_close1", 3, true)
	reg("rec.hf_close2", 3, true)
	reg("rec.hf_close3", 3, true)
	reg("rec.lm_fcntl", 6, true)
	reg("rec.lm_fcntl2", 6, true)
	reg("rec.bp_malloc1", 7, true)
	reg("rec.bp_malloc2", 7, true)
	reg("rec.tx_read", 8, true)
	reg("rec.tx_write", 8, true)
}

// --- MyISAM table creation (Table 1 bug [19], Table 2 target) --------------

// MiCreate creates one MyISAM table. The close after the mutex unlock is
// checked, but its error-handling path releases the already-released
// mutex — glibc-style error-checking mutexes abort on the double unlock.
func (a *App) MiCreate(name string) error {
	return a.miCreate("/var/db/"+name+".tmp", "/var/db/"+name+".MYI")
}

// miCreate is MiCreate on precomputed paths (MergeBig reruns the same
// six tables every suite; rebuilding their path strings per run would
// dominate the allocation profile).
func (a *App) miCreate(tmpPath, myiPath string) error {
	t := a.Th
	a.Cov.Hit("main.mi_create")

	// A scratch descriptor, closed well before the lock region. Its
	// failure is tolerated (logged) without aborting table creation.
	scratch := t.Open(tmpPath, libsim.O_CREAT|libsim.O_WRONLY)
	if scratch >= 0 {
		pop := a.atLine("mi_create", "mc_scratch_close", MiCreateFile, 512)
		if t.Close(scratch) < 0 {
			a.Cov.Hit("rec.mc_scratch_close")
		}
		pop()
	}

	pop := a.atLine("mi_create", "mc_open", MiCreateFile, 540)
	fd := t.Open(myiPath, libsim.O_CREAT|libsim.O_WRONLY|libsim.O_TRUNC)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.mc_open")
		return fmt.Errorf("mi_create: open: %v", t.Errno())
	}

	t.MutexLock(a.mutex)

	pop = a.atLine("mi_create", "mc_write", MiCreateFile, 555)
	n := t.Write(fd, myiHeader)
	pop()
	if n < 0 {
		a.Cov.Hit("rec.mc_write")
		t.MutexUnlock(a.mutex)
		t.Close(fd)
		return fmt.Errorf("mi_create: write: %v", t.Errno())
	}

	// Normal flow releases the mutex...
	t.MutexUnlock(a.mutex)

	// ...and closes the index file immediately afterwards.
	pop = a.atLine("mi_create", "mc_close", MiCreateFile, 571)
	rc := t.Close(fd)
	pop()
	if rc < 0 {
		// BUG [19]: the error path releases "all" resources,
		// including the mutex the normal flow already released.
		a.Cov.Hit("rec.mc_close")
		t.MutexUnlock(a.mutex) // double unlock -> abort
		return fmt.Errorf("mi_create: close: %v", t.Errno())
	}
	return nil
}

// --- error message catalogue (Table 1 bug [20]) ------------------------------

// ErrmsgLoad reads errmsg.sys. A missing file is handled (bug [21] was
// fixed), but a failed read is only logged: the uninitialized message
// structure is accessed anyway and the server crashes.
func (a *App) ErrmsgLoad() error {
	t := a.Th
	a.Cov.Hit("main.errmsg")

	pop := a.atLine("errmsg_load", "em_open", ErrmsgFile, 120)
	fd := t.Open("/var/db/errmsg.sys", libsim.O_RDONLY)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.em_open")
		return fmt.Errorf("errmsg: cannot open errmsg.sys: %v", t.Errno())
	}

	buf := a.readBuf[:]
	pop = a.atLine("errmsg_load", "em_read", ErrmsgFile, 134)
	n := t.Read(fd, buf)
	pop()
	if n == -1 {
		// BUG [20]: log and continue; errmsgs stays uninitialized.
		a.Cov.Hit("rec.em_read")
	} else {
		a.errmsgs = splitMsgs(a.errmsgs[:0], string(buf[:max64(n, 0)]))
		a.errmsgReady = true
	}

	pop = a.atLine("errmsg_load", "em_close", ErrmsgFile, 150)
	if t.Close(fd) < 0 {
		a.Cov.Hit("rec.em_close")
	}
	pop()

	// First use of the catalogue: crashes if initialization failed.
	_ = a.Errmsg(0)
	return nil
}

// Errmsg returns message i from the catalogue, crashing on access to an
// uninitialized structure (the C code dereferences a garbage pointer).
func (a *App) Errmsg(i int) string {
	if !a.errmsgReady {
		a.Th.RaiseCrash(libsim.Segfault, "access to uninitialized errmsg structure")
	}
	if i < 0 || i >= len(a.errmsgs) {
		return ""
	}
	return a.errmsgs[i]
}

// splitMsgs appends the ';'-separated segments of s to out (the caller
// may pass a reused slice truncated to zero length).
func splitMsgs(out []string, s string) []string {
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ';' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- handler / flush (the "other" closes of Table 2) --------------------------

// HandlerFlush closes three table-cache descriptors in sql/handler.cc.
// Failures here are real errors: the statement is aborted (gracefully).
func (a *App) HandlerFlush() error {
	t := a.Th
	a.Cov.Hit("main.flush")
	for i, label := range flushLabels {
		fd := t.Open("/var/db/table.MYD", libsim.O_RDONLY)
		if fd < 0 {
			return fmt.Errorf("flush: open: %v", t.Errno())
		}
		pop := a.atLine("handler_flush", label, HandlerFile, 800+10*i)
		rc := t.Close(fd)
		pop()
		if rc < 0 {
			a.Cov.Hit(flushRecIDs[i])
			return fmt.Errorf("flush: close %d: %v", i, t.Errno())
		}
	}
	return nil
}

// --- lock manager + OLTP (Table 6) --------------------------------------------

// ensureTable opens the shared data file once per instance.
func (a *App) ensureTable() int64 {
	if a.tableFD == 0 {
		a.tableFD = a.Th.Open("/var/db/table.MYD", libsim.O_RDONLY)
	}
	return a.tableFD
}

// LockCheck performs the fcntl(F_GETLK) handshake the OLTP path issues
// per transaction.
func (a *App) LockCheck() error {
	t := a.Th
	a.Cov.Hit("main.lock")
	fd := a.ensureTable()

	pop := a.atLine("lock_manager", "lm_fcntl", HandlerFile, 900)
	rc := t.Fcntl(fd, libsim.F_GETLK, 0)
	pop()
	if rc < 0 {
		a.Cov.Hit("rec.lm_fcntl")
		return fmt.Errorf("lock: fcntl: %v", t.Errno())
	}
	pop = a.atLine("lock_manager", "lm_fcntl2", HandlerFile, 910)
	rc = t.Fcntl(fd, libsim.F_SETLK, 0)
	pop()
	if rc == -1 {
		a.Cov.Hit("rec.lm_fcntl2")
		return fmt.Errorf("lock: fcntl setlk: %v", t.Errno())
	}
	return nil
}

// Txn executes one OLTP transaction: lock check, reads, and (for
// read-write) an update.
func (a *App) Txn(readWrite bool) error {
	t := a.Th
	a.Cov.Hit("main.txn")
	a.threadCount++
	defer func() { a.threadCount-- }()

	if err := a.LockCheck(); err != nil {
		return err
	}
	fd := a.ensureTable()
	t.Lseek(fd, 0)
	buf := a.txnBuf[:]
	pop := a.atLine("oltp_txn", "tx_read", HandlerFile, 950)
	n := t.Read(fd, buf)
	pop()
	if n == -1 {
		a.Cov.Hit("rec.tx_read")
		return fmt.Errorf("txn: read: %v", t.Errno())
	}
	if readWrite {
		wfd := t.Open("/var/db/txn.log", libsim.O_CREAT|libsim.O_WRONLY|libsim.O_APPEND)
		if wfd >= 0 {
			pop = a.atLine("oltp_txn", "tx_write", HandlerFile, 960)
			if t.Write(wfd, updateRec) < 0 {
				a.Cov.Hit("rec.tx_write")
			}
			pop()
			t.Close(wfd)
		}
	}
	a.txnCount++
	return nil
}

// TxnCount returns the number of committed transactions.
func (a *App) TxnCount() int64 { return a.txnCount }

// SetShutdown flips the shutdown_in_progress global.
func (a *App) SetShutdown(v bool) {
	if v {
		a.shutdownInProgress = 1
	} else {
		a.shutdownInProgress = 0
	}
}

// BufferPoolInit allocates the two buffer-pool segments.
func (a *App) BufferPoolInit() error {
	t := a.Th
	a.Cov.Hit("main.bufpool")
	for i, label := range bufpoolLabels {
		pop := a.atLine("buffer_pool_init", label, HandlerFile, 100)
		p := t.Malloc(4096)
		pop()
		if p == 0 {
			a.Cov.Hit(bufpoolRecIDs[i])
			return fmt.Errorf("bufpool: out of memory")
		}
		t.Free(p)
	}
	return nil
}

// MergeBig is the merge-big test-suite component of Table 2: six
// iterations, each flushing the handler caches (three closes in
// sql/handler.cc) and then creating a table via MiCreate. A failed flush
// aborts the run — "execution does not reach the intended target".
func (a *App) MergeBig() error {
	for i := range mergeNames {
		if err := a.HandlerFlush(); err != nil {
			return err
		}
		m := &mergeNames[i]
		if err := a.miCreate(m.tmp, m.myi); err != nil {
			return err
		}
	}
	return nil
}

// RunSuite is the default test suite.
func (a *App) RunSuite() error {
	if err := a.BufferPoolInit(); err != nil {
		return err
	}
	if err := a.ErrmsgLoad(); err != nil {
		return err
	}
	if err := a.MergeBig(); err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := a.Txn(i%2 == 0); err != nil {
			return err
		}
	}
	return nil
}
