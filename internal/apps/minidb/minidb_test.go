package minidb

import (
	"fmt"
	"strings"
	"testing"

	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

func TestSuiteCleanWithoutInjection(t *testing.T) {
	out, err := controller.RunOne(Target(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("clean run failed: %v", out)
	}
}

func TestDoubleUnlockBug(t *testing.T) {
	// MySQL bug [19]: fail the close right after the mutex unlock in
	// mi_create; the error path double-unlocks and aborts.
	s, err := scenario.ParseString(`<scenario name="close-after-unlock">
	  <trigger id="cau" class="CloseAfterUnlock"><args><distance>2</distance></args></trigger>
	  <function name="pthread_mutex_unlock" return="unused" errno="unused">
	    <reftrigger ref="cau" />
	  </function>
	  <function name="close" return="-1" errno="EIO">
	    <reftrigger ref="cau" />
	  </function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := controller.RunOne(MergeBigTarget(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.Abort {
		t.Fatalf("expected double-unlock abort, got %v", out)
	}
	if !strings.Contains(out.Crash.Reason, "double unlock") {
		t.Fatalf("crash reason %q", out.Crash.Reason)
	}
}

func TestErrmsgReadBug(t *testing.T) {
	// MySQL bug [20]: a failed read of errmsg.sys is logged but the
	// uninitialized structure is accessed anyway.
	_, offsets := Binary()
	doc := fmt.Sprintf(`<scenario name="errmsg-read">
	  <trigger id="cs" class="CallStackTrigger">
	    <args><frame><module>%s</module><offset>%x</offset></frame></args>
	  </trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="cs" /></function>
	</scenario>`, Module, offsets["em_read"])
	s, err := scenario.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := controller.RunOne(Target(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.Segfault {
		t.Fatalf("expected segfault, got %v", out)
	}
	if !strings.Contains(out.Crash.Reason, "errmsg") {
		t.Fatalf("crash reason %q", out.Crash.Reason)
	}
}

func TestErrmsgMissingFileHandled(t *testing.T) {
	// Bug [21] is fixed: a failed open of errmsg.sys is an error, not
	// a crash.
	_, offsets := Binary()
	doc := fmt.Sprintf(`<scenario name="errmsg-open">
	  <trigger id="cs" class="CallStackTrigger">
	    <args><frame><module>%s</module><offset>%x</offset></frame></args>
	  </trigger>
	  <function name="open" return="-1" errno="ENOENT"><reftrigger ref="cs" /></function>
	</scenario>`, Module, offsets["em_open"])
	s, err := scenario.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := controller.RunOne(Target(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil {
		t.Fatalf("fixed path crashed: %v", out.Crash)
	}
	if out.WorkErr == nil {
		t.Fatal("missing errmsg.sys should surface as an error")
	}
}

func TestFileScopedTriggerOnlyHitsMiCreate(t *testing.T) {
	// A 100% random trigger scoped to mi_create.c must never touch
	// the handler closes.
	s, err := scenario.ParseString(fmt.Sprintf(`<scenario name="in-file">
	  <trigger id="file" class="CallStackTrigger">
	    <args><frame><file>%s</file></frame></args>
	  </trigger>
	  <function name="close" return="-1" errno="EIO"><reftrigger ref="file" /></function>
	</scenario>`, MiCreateFile))
	if err != nil {
		t.Fatal(err)
	}
	out, err := controller.RunOne(MergeBigTarget(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Every injection's stack must include a mi_create.c frame.
	for _, rec := range out.Log.Records() {
		found := false
		for _, f := range rec.Stack {
			if f.File == MiCreateFile {
				found = true
			}
		}
		if !found {
			t.Fatalf("injection outside %s: %+v", MiCreateFile, rec)
		}
	}
	if out.Injections == 0 {
		t.Fatal("file-scoped trigger never fired")
	}
}

func TestOLTPTxns(t *testing.T) {
	app := New()
	if err := app.BufferPoolInit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := app.Txn(i%2 == 1); err != nil {
			t.Fatal(err)
		}
	}
	if app.TxnCount() != 10 {
		t.Fatalf("txn count %d", app.TxnCount())
	}
	log, ok := app.C.ReadFileRaw("/var/db/txn.log")
	if !ok || len(log) == 0 {
		t.Fatal("read-write txns wrote nothing")
	}
}

func TestProgramStateTriggerOnThreadCount(t *testing.T) {
	// The Table 6 trigger: inject only when thread_count > 64. The
	// workload never exceeds 1, so nothing must be injected, but the
	// trigger must evaluate.
	app := New()
	s, err := scenario.ParseString(`<scenario name="tc">
	  <trigger id="tc" class="ProgramStateTrigger">
	    <args><var>thread_count</var><op>gt</op><value>64</value></args>
	  </trigger>
	  <function name="fcntl" return="-1" errno="EBADF"><reftrigger ref="tc" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(app.C, s)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	defer rt.Uninstall()
	for i := 0; i < 5; i++ {
		if err := app.Txn(false); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Injections() != 0 {
		t.Fatal("injected despite thread_count <= 64")
	}
	if rt.Evals() == 0 {
		t.Fatal("trigger never evaluated")
	}
}

func TestShutdownVar(t *testing.T) {
	app := New()
	app.SetShutdown(true)
	if v, _ := app.C.ReadVar("shutdown_in_progress"); v != 1 {
		t.Fatal("shutdown var not set")
	}
	app.SetShutdown(false)
	if v, _ := app.C.ReadVar("shutdown_in_progress"); v != 0 {
		t.Fatal("shutdown var not cleared")
	}
}

func TestMergeBigCleanWithoutInjection(t *testing.T) {
	app := New()
	if err := app.MergeBig(); err != nil {
		t.Fatal(err)
	}
}
