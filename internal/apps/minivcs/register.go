package minivcs

import "lfi/internal/system"

// The descriptor makes minivcs visible to every registry-driven entry
// point; see internal/system. The stock-bug matches pin the five Git
// crash/data-loss signatures of Table 1 by their stable fragments (the
// three malloc sites are distinct bugs, so each is matched by its call
// site).
func init() {
	system.Register(&system.Descriptor{
		Name:               Module,
		Workload:           "init/add/commit/log/gc repository regression suite (RunSuite)",
		Binary:             Binary,
		Target:             Target,
		TargetWithCoverage: TargetWithCoverage,
		Profiles:           system.DefaultProfiles,
		StockBugs: []system.StockBug{
			{Match: "malloc at minivcs+0x150", Note: "unchecked malloc in xmalloc wrapper, site 1 (Git)"},
			{Match: "malloc at minivcs+0x168", Note: "unchecked malloc in xmalloc wrapper, site 2 (Git)"},
			{Match: "malloc at minivcs+0x1d8", Note: "unchecked malloc in xprintf path (Git)"},
			{Match: "readdir(NULL DIR*)", Note: "opendir failure not checked before readdir (Git)"},
			{Match: "GIT_DIR unset", Note: "hook runs with incomplete environment after failed setenv (Git data loss)"},
		},
	})
}
