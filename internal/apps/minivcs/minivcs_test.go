package minivcs

import (
	"fmt"
	"strings"
	"testing"

	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
	"lfi/internal/libspec"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

func TestSuiteCleanWithoutInjection(t *testing.T) {
	out, err := controller.RunOne(Target(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("clean run failed: %v", out)
	}
}

// siteScenario builds the analyzer-style scenario for one site label.
func siteScenario(t *testing.T, fn string, retval int64, errnoName, label string) *scenario.Scenario {
	t.Helper()
	_, offsets := Binary()
	doc := fmt.Sprintf(`<scenario name="%s">
	  <trigger id="cs" class="CallStackTrigger">
	    <args><frame><module>%s</module><offset>%x</offset></frame></args>
	  </trigger>
	  <trigger id="once" class="SingletonTrigger" />
	  <function name="%s" return="%d" errno="%s">
	    <reftrigger ref="cs" /><reftrigger ref="once" />
	  </function>
	</scenario>`, label, Module, offsets[label], fn, retval, errnoName)
	s, err := scenario.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUncheckedOpendirBugCrashes(t *testing.T) {
	out, err := controller.RunOne(Target(), siteScenario(t, "opendir", 0, "ENOMEM", "rc_opendir"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.Segfault {
		t.Fatalf("expected readdir(NULL) segfault, got %v", out)
	}
	if !strings.Contains(out.Crash.Reason, "readdir(NULL DIR*)") {
		t.Fatalf("crash reason %q", out.Crash.Reason)
	}
}

func TestUncheckedMallocBugsCrash(t *testing.T) {
	for _, label := range []string{"xm_malloc_567", "xm_malloc_571", "xp_malloc_191"} {
		out, err := controller.RunOne(Target(), siteScenario(t, "malloc", 0, "ENOMEM", label))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crash == nil || out.Crash.Kind != libsim.Segfault {
			t.Errorf("%s: expected segfault, got %v", label, out)
		}
	}
}

func TestSetenvBugLosesData(t *testing.T) {
	out, err := controller.RunOne(Target(), siteScenario(t, "setenv", -1, "ENOMEM", "re_setenv_dir"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.DataLoss {
		t.Fatalf("expected data loss, got %v", out)
	}
}

func TestCheckedSitesRecoverGracefully(t *testing.T) {
	cases := []struct {
		fn, errno, label string
		retval           int64
	}{
		{"open", "EACCES", "ui_open", -1},
		{"read", "EIO", "ui_read", -1},
		{"close", "EIO", "ui_close", -1},
		{"malloc", "ENOMEM", "xm_malloc_ok", 0},
		{"malloc", "ENOMEM", "xp_malloc_ok", 0},
		{"setenv", "ENOMEM", "re_setenv_work", -1},
		{"open", "EMFILE", "os_open", -1},
		{"write", "ENOSPC", "os_write", -1},
		{"close", "EIO", "os_close1", -1},
		{"opendir", "ENOMEM", "gc_opendir", 0},
		{"unlink", "EACCES", "gc_unlink", -1},
		{"read", "EIO", "or_read", -1},
	}
	for _, c := range cases {
		out, err := controller.RunOne(Target(), siteScenario(t, c.fn, c.retval, c.errno, c.label))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crash != nil {
			t.Errorf("%s: checked site crashed: %v", c.label, out.Crash)
		}
		if out.Injections == 0 {
			t.Errorf("%s: scenario never injected (workload does not reach the site?)", c.label)
		}
	}
}

func TestInjectionAtEOFCode(t *testing.T) {
	// Injecting read()=0 at the fully-checked or_read site exercises
	// the EOF recovery arm.
	out, err := controller.RunOne(Target(), siteScenario(t, "read", 0, "unused", "or_read"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil {
		t.Fatalf("EOF injection crashed: %v", out.Crash)
	}
	if out.Injections == 0 {
		t.Fatal("no injection")
	}
}

func TestCoverageImprovesUnderInjection(t *testing.T) {
	// Baseline: no recovery code runs.
	app := New()
	if err := app.RunSuite(); err != nil {
		t.Fatal(err)
	}
	base := app.Cov.Recovery()
	if base.BlocksCovered != 0 {
		t.Fatalf("baseline recovery coverage nonzero: %+v", base)
	}
	// One injected fault exercises one recovery block. The workload
	// reports the (gracefully handled) failure — that is expected;
	// what must not happen is a crash.
	acc := coverage.New()
	out, err := controller.RunOne(TargetWithCoverage(acc), siteScenario(t, "open", -1, "EACCES", "ui_open"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil {
		t.Fatalf("crash: %v", out.Crash)
	}
	rec := acc.Recovery()
	if rec.BlocksCovered == 0 {
		t.Fatalf("injection did not improve recovery coverage: %+v", rec)
	}
}

func TestAnalyzerFindsSeededBugs(t *testing.T) {
	bin, sites := Binary()
	p := profile.ProfileBinary(libspec.BuildLibc())
	a := &callsite.Analyzer{}
	rep := a.Analyze(bin, p)
	_, _, not := rep.ByClass()
	unchecked := map[uint64]bool{}
	for _, s := range not {
		unchecked[s.Offset] = true
	}
	for _, label := range []string{"rc_opendir", "xm_malloc_567", "xm_malloc_571", "xp_malloc_191", "re_setenv_dir"} {
		if !unchecked[sites[label]] {
			t.Errorf("analyzer missed seeded bug site %s", label)
		}
	}
	// And the healthy sites must not be flagged unchecked.
	for _, label := range []string{"ui_open", "os_write", "gc_opendir", "xm_malloc_ok"} {
		if unchecked[sites[label]] {
			t.Errorf("analyzer flagged healthy site %s", label)
		}
	}
}

func TestDistinctBugsDeduplicated(t *testing.T) {
	var outs []controller.Outcome
	for i := 0; i < 2; i++ { // same bug twice
		out, err := controller.RunOne(Target(), siteScenario(t, "opendir", 0, "ENOMEM", "rc_opendir"))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	bugs := controller.DistinctBugs(Module, outs)
	if len(bugs) != 1 || len(bugs[0].Scenarios) != 2 {
		t.Fatalf("bugs %+v", bugs)
	}
}
