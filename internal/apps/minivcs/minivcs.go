// Package minivcs is the Git 1.6.5.4 stand-in: a scaled-down version
// control system with an object store, an index, an xdiff-style merge
// engine, and external-command invocation, written against the simulated
// C library.
//
// It carries the Git bugs of Table 1, each in the control-flow shape the
// paper describes:
//
//   - data loss from running an external command with an incomplete
//     environment after a failed setenv;
//   - crash from calling readdir with the NULL pointer returned by a
//     previously failed (and unchecked) opendir;
//   - three crashes from unchecked mallocs in xdiff/xmerge.c (lines 567
//     and 571) and xdiff/xpatience.c (line 191).
//
// The same call-site models compile (package asm) into the minivcs
// program binary that the call-site analyzer inspects; the virtual stack
// frames pushed at runtime carry the binary's call-site offsets, so
// analyzer-generated call-stack triggers match the running program.
package minivcs

import (
	"fmt"
	"sync"

	"lfi/internal/asm"
	"lfi/internal/coverage"
	"lfi/internal/isa"
	"lfi/internal/libsim"
)

// Module is the binary/module name used in stack frames and scenarios.
const Module = "minivcs"

// Sites is the ground-truth call-site model: one entry per library call
// the application makes, with the checking style its code implements.
// This single table drives both the synthetic binary (analyzer input)
// and, by construction, the Go code paths below.
func Sites() []asm.FuncSpec {
	return []asm.FuncSpec{
		{Name: "cmd_update_index", Sites: []asm.SiteSpec{
			{Label: "ui_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "ui_read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}}, // partial: EOF (0) unhandled
			{Label: "ui_close", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "refresh_cache", Sites: []asm.SiteSpec{
			{Label: "rc_opendir", Callee: "opendir", Style: asm.CheckNone}, // BUG: readdir(NULL)
			{Label: "rc_close", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "xdl_do_merge", Sites: []asm.SiteSpec{
			{Label: "xm_malloc_567", Callee: "malloc", Style: asm.CheckNone}, // BUG: xmerge.c:567
			{Label: "xm_malloc_571", Callee: "malloc", Style: asm.CheckNone}, // BUG: xmerge.c:571
			{Label: "xm_malloc_ok", Callee: "malloc", Style: asm.CheckEqZero},
		}},
		{Name: "xdl_patience", Sites: []asm.SiteSpec{
			{Label: "xp_malloc_191", Callee: "malloc", Style: asm.CheckNone}, // BUG: xpatience.c:191
			{Label: "xp_malloc_ok", Callee: "malloc", Style: asm.CheckEqZero},
		}},
		{Name: "run_external", Sites: []asm.SiteSpec{
			{Label: "re_setenv_dir", Callee: "setenv", Style: asm.CheckNone}, // BUG: incomplete env
			{Label: "re_setenv_work", Callee: "setenv", Style: asm.CheckIneq},
		}},
		{Name: "object_store_write", Sites: []asm.SiteSpec{
			{Label: "os_malloc", Callee: "malloc", Style: asm.CheckEqZero},
			{Label: "os_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "os_write", Callee: "write", Style: asm.CheckIneq},
			{Label: "os_close1", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "object_store_read", Sites: []asm.SiteSpec{
			{Label: "or_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "or_read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1, 0}},
			{Label: "or_close", Callee: "close", Style: asm.CheckIneqViaCopy},
			{Label: "or_readlink", Callee: "readlink", Style: asm.CheckEq, Codes: []int64{-1}},
		}},
		{Name: "gc_prune", Sites: []asm.SiteSpec{
			{Label: "gc_opendir", Callee: "opendir", Style: asm.CheckEqZero},
			{Label: "gc_unlink", Callee: "unlink", Style: asm.CheckIneq},
			{Label: "gc_close2", Callee: "close", Style: asm.CheckEqViaCopy, Codes: []int64{-1}},
			{Label: "gc_close3", Callee: "close", Style: asm.CheckIneq},
		}},
	}
}

var (
	binOnce sync.Once
	bin     *isa.Binary
	offs    map[string]uint64
)

// Binary returns the compiled minivcs program image and its site-label →
// offset map (memoized; the build is deterministic).
func Binary() (*isa.Binary, map[string]uint64) {
	binOnce.Do(func() {
		var err error
		bin, offs, err = asm.Program(Module, Sites())
		if err != nil {
			panic("minivcs: " + err.Error())
		}
	})
	return bin, offs
}

// App is one running minivcs instance.
type App struct {
	C   *libsim.C
	Th  *libsim.Thread
	Cov *coverage.Tracker

	suite func() error // bound RunSuite, reused across pooled runs
}

// New stages a repository fixture and returns a ready instance.
func New() *App {
	c := libsim.New(1 << 22)
	a := &App{C: c, Th: c.NewThread(Module, "main"), Cov: coverage.New()}
	c.Owner = a
	a.suite = a.RunSuite
	c.MustMkdirAll("/repo/.git/objects")
	c.MustMkdirAll("/repo/.git/refs")
	c.MustWriteFile("/repo/.git/index", []byte("DIRC0001 file-a file-b file-c"))
	c.MustWriteFile("/repo/file-a", []byte("alpha contents\n"))
	c.MustWriteFile("/repo/file-b", []byte("bravo contents\n"))
	c.MustWriteFile("/repo/link-x.lnk", []byte("file-a"))
	c.SnapshotFS()
	a.registerCoverage()
	return a
}

// Reset rewinds the instance to its post-New state for reuse by a
// pooled target: process image restored (repository fixture, heap,
// handles, dispatcher counters), thread rewound, coverage hits cleared.
func (a *App) Reset() {
	a.C.Reset()
	a.Th.Reset()
	a.Cov.ResetHits()
}

// at pushes the virtual stack frame for one modelled call site.
func (a *App) at(fn, label string) func() {
	_, offsets := Binary()
	return a.Th.Enter(Module, fn, offsets[label])
}

// atLine is at with DWARF-style file/line info, used for the xdiff sites
// the paper identifies by source location.
func (a *App) atLine(fn, label, file string, line int) func() {
	_, offsets := Binary()
	return a.Th.EnterAt(Module, fn, offsets[label], file, line)
}

func (a *App) registerCoverage() {
	reg := func(id string, loc int, rec bool) { a.Cov.Register(id, loc, rec) }
	// Mainline blocks. LOC weights are sized so that recovery code is
	// a few percent of the program, as in Git: the Table 3 experiment
	// needs total coverage to move by ~1 point while recovery
	// coverage moves by tens of points.
	reg("main.update_index", 900, false)
	reg("main.refresh_cache", 700, false)
	reg("main.merge", 1800, false)
	reg("main.patience", 900, false)
	reg("main.run_external", 500, false)
	reg("main.object_write", 1100, false)
	reg("main.object_read", 900, false)
	reg("main.gc", 800, false)
	// Recovery blocks (the Table 3 numerator).
	reg("rec.ui_open", 8, true)
	reg("rec.ui_read", 6, true)
	reg("rec.ui_close", 4, true)
	reg("rec.rc_close", 4, true)
	reg("rec.xm_malloc_ok", 10, true)
	reg("rec.xp_malloc_ok", 9, true)
	reg("rec.re_setenv_work", 5, true)
	reg("rec.os_malloc", 7, true)
	reg("rec.os_open", 8, true)
	reg("rec.os_write", 12, true)
	reg("rec.os_close1", 4, true)
	reg("rec.or_open", 8, true)
	reg("rec.or_read", 10, true)
	reg("rec.or_eof", 5, true)
	reg("rec.or_close", 4, true)
	reg("rec.or_readlink", 6, true)
	reg("rec.gc_opendir", 7, true)
	reg("rec.gc_unlink", 6, true)
	reg("rec.gc_close2", 4, true)
	reg("rec.gc_close3", 4, true)
	// Recovery code the trimmed LFI campaign does not target (keeps
	// the coverage gain below 100%, as in the paper).
	reg("rec.pack_mmap", 22, true)
	reg("rec.net_push", 30, true)
	reg("rec.net_fetch", 28, true)
	reg("rec.alternates", 12, true)
	// Cold feature code never exercised by the default suite.
	reg("cold.bisect", 600, false)
	reg("cold.cvsimport", 700, false)
	reg("cold.svn_bridge", 534, false)
}

// --- commands (the Go code paths mirroring the site models) ---------------

// UpdateIndex reads the index file (git update-index).
func (a *App) UpdateIndex() error {
	t := a.Th
	a.Cov.Hit("main.update_index")

	pop := a.at("cmd_update_index", "ui_open")
	fd := t.Open("/repo/.git/index", libsim.O_RDONLY)
	pop()
	if fd < 0 { // CheckIneq
		a.Cov.Hit("rec.ui_open")
		return fmt.Errorf("update-index: cannot open index: %v", t.Errno())
	}

	buf := make([]byte, 64)
	pop = a.at("cmd_update_index", "ui_read")
	n := t.Read(fd, buf)
	pop()
	if n == -1 { // CheckEq{-1}: EOF (0) is NOT handled — a partial check
		a.Cov.Hit("rec.ui_read")
		a.closeQuiet(fd, "cmd_update_index", "ui_close")
		return fmt.Errorf("update-index: read failed: %v", t.Errno())
	}
	_ = buf[:n]

	pop = a.at("cmd_update_index", "ui_close")
	rc := t.Close(fd)
	pop()
	if rc < 0 {
		a.Cov.Hit("rec.ui_close")
		return fmt.Errorf("update-index: close failed: %v", t.Errno())
	}
	return nil
}

func (a *App) closeQuiet(fd int64, fn, label string) {
	pop := a.at(fn, label)
	if a.Th.Close(fd) < 0 {
		a.Cov.Hit("rec." + label)
	}
	pop()
}

// RefreshCache scans the object directory. The opendir return is not
// checked — Git bug [9]: "crash on make test" via readdir(NULL).
func (a *App) RefreshCache() error {
	t := a.Th
	a.Cov.Hit("main.refresh_cache")

	pop := a.at("refresh_cache", "rc_opendir")
	dir := t.Opendir("/repo/.git/objects")
	pop()
	// BUG: no NULL check; a failed opendir hands NULL to readdir.
	count := 0
	for {
		name, ok := t.Readdir(dir)
		if !ok {
			break
		}
		_ = name
		count++
	}
	t.Closedir(dir)

	pop = a.at("refresh_cache", "rc_close")
	// A bookkeeping descriptor; close failure handled.
	fd := t.Open("/repo/.git/index", libsim.O_RDONLY)
	if fd >= 0 {
		if t.Close(fd) < 0 {
			a.Cov.Hit("rec.rc_close")
		}
	}
	pop()
	return nil
}

// Merge performs a three-way merge (xdiff/xmerge.c). The first two
// mallocs are unchecked — Git bug [10], lines 567 and 571.
func (a *App) Merge(oursLen, theirsLen int64) error {
	t := a.Th
	a.Cov.Hit("main.merge")

	pop := a.atLine("xdl_do_merge", "xm_malloc_567", "xdiff/xmerge.c", 567)
	dest := t.Malloc(oursLen + theirsLen)
	pop()
	// BUG: dest not checked; a failed malloc crashes on first use.
	destBuf := t.Deref(dest)

	pop = a.atLine("xdl_do_merge", "xm_malloc_571", "xdiff/xmerge.c", 571)
	markers := t.Malloc(64)
	pop()
	// BUG: markers not checked either.
	markBuf := t.Deref(markers)

	pop = a.atLine("xdl_do_merge", "xm_malloc_ok", "xdiff/xmerge.c", 602)
	scratch := t.Malloc(128)
	pop()
	if scratch == 0 { // CheckEqZero: proper recovery
		a.Cov.Hit("rec.xm_malloc_ok")
		t.Free(dest)
		t.Free(markers)
		return fmt.Errorf("merge: out of memory")
	}

	copy(destBuf, "merged")
	copy(markBuf, "<<<<<<<")
	t.Free(scratch)
	t.Free(markers)
	t.Free(dest)
	return nil
}

// Patience runs the patience-diff preprocessing (xdiff/xpatience.c).
// The histogram allocation is unchecked — Git bug [10], line 191.
func (a *App) Patience(entries int64) error {
	t := a.Th
	a.Cov.Hit("main.patience")

	pop := a.atLine("xdl_patience", "xp_malloc_191", "xdiff/xpatience.c", 191)
	table := t.Malloc(entries * 16)
	pop()
	// BUG: table not checked.
	tb := t.Deref(table)
	tb[0] = 1

	pop = a.atLine("xdl_patience", "xp_malloc_ok", "xdiff/xpatience.c", 230)
	aux := t.Malloc(entries * 8)
	pop()
	if aux == 0 {
		a.Cov.Hit("rec.xp_malloc_ok")
		t.Free(table)
		return fmt.Errorf("patience: out of memory")
	}
	t.Free(aux)
	t.Free(table)
	return nil
}

// RunExternal prepares the environment and "runs" an external command
// (hooks, editors). GIT_DIR's setenv is unchecked — Git bug [11]: the
// command runs in the wrong environment, losing data.
func (a *App) RunExternal(command string) error {
	t := a.Th
	a.Cov.Hit("main.run_external")

	pop := a.at("run_external", "re_setenv_dir")
	t.Setenv("GIT_DIR", "/repo/.git") // BUG: return ignored
	pop()

	pop = a.at("run_external", "re_setenv_work")
	if t.Setenv("GIT_WORK_TREE", "/repo") < 0 {
		pop()
		a.Cov.Hit("rec.re_setenv_work")
		return fmt.Errorf("run-external: cannot set GIT_WORK_TREE: %v", t.Errno())
	}
	pop()

	// The external command resolves the repository through GIT_DIR. If
	// the variable is missing it operates on the wrong directory —
	// silent data loss, which the simulation surfaces explicitly.
	if _, ok := t.Getenv("GIT_DIR"); !ok {
		t.RaiseCrash(libsim.DataLoss,
			"external command %q ran with incomplete environment (GIT_DIR unset)", command)
	}
	return nil
}

// StoreObject writes one object into the object store.
func (a *App) StoreObject(name string, data []byte) error {
	t := a.Th
	a.Cov.Hit("main.object_write")

	pop := a.at("object_store_write", "os_malloc")
	buf := t.Malloc(int64(len(data)) + 16)
	pop()
	if buf == 0 {
		a.Cov.Hit("rec.os_malloc")
		return fmt.Errorf("object-store: out of memory")
	}
	defer t.Free(buf)
	copy(t.Deref(buf), data)

	path := "/repo/.git/objects/" + name
	pop = a.at("object_store_write", "os_open")
	fd := t.Open(path, libsim.O_CREAT|libsim.O_WRONLY|libsim.O_TRUNC)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.os_open")
		return fmt.Errorf("object-store: open %s: %v", path, t.Errno())
	}

	pop = a.at("object_store_write", "os_write")
	n := t.Write(fd, data)
	pop()
	if n < 0 {
		a.Cov.Hit("rec.os_write")
		a.closeQuiet(fd, "object_store_write", "os_close1")
		return fmt.Errorf("object-store: write: %v", t.Errno())
	}

	pop = a.at("object_store_write", "os_close1")
	rc := t.Close(fd)
	pop()
	if rc < 0 {
		a.Cov.Hit("rec.os_close1")
		return fmt.Errorf("object-store: close: %v", t.Errno())
	}
	return nil
}

// LoadObject reads one object back.
func (a *App) LoadObject(name string) ([]byte, error) {
	t := a.Th
	a.Cov.Hit("main.object_read")

	pop := a.at("object_store_read", "or_open")
	fd := t.Open("/repo/.git/objects/"+name, libsim.O_RDONLY)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.or_open")
		return nil, fmt.Errorf("object-store: open %s: %v", name, t.Errno())
	}

	buf := make([]byte, 256)
	pop = a.at("object_store_read", "or_read")
	n := t.Read(fd, buf)
	pop()
	switch {
	case n == -1: // full CheckEq{-1,0}
		a.Cov.Hit("rec.or_read")
		a.closeQuiet(fd, "object_store_read", "or_close")
		return nil, fmt.Errorf("object-store: read: %v", t.Errno())
	case n == 0:
		a.Cov.Hit("rec.or_eof")
		a.closeQuiet(fd, "object_store_read", "or_close")
		return nil, fmt.Errorf("object-store: object %s empty", name)
	}

	pop = a.at("object_store_read", "or_close")
	rc := t.Close(fd)
	pop()
	if rc < 0 {
		a.Cov.Hit("rec.or_close")
	}

	lbuf := make([]byte, 64)
	pop = a.at("object_store_read", "or_readlink")
	ln := t.Readlink("/repo/link-x", lbuf)
	pop()
	if ln == -1 {
		a.Cov.Hit("rec.or_readlink")
	}
	return buf[:n], nil
}

// GC prunes loose objects.
func (a *App) GC() error {
	t := a.Th
	a.Cov.Hit("main.gc")

	pop := a.at("gc_prune", "gc_opendir")
	dir := t.Opendir("/repo/.git/objects")
	pop()
	if dir == 0 { // CheckEqZero: proper recovery, unlike refresh_cache
		a.Cov.Hit("rec.gc_opendir")
		return fmt.Errorf("gc: opendir: %v", t.Errno())
	}
	var victims []string
	for {
		name, ok := t.Readdir(dir)
		if !ok {
			break
		}
		if len(name) > 4 && name[:4] == "tmp_" {
			victims = append(victims, name)
		}
	}
	t.Closedir(dir)

	for _, v := range victims {
		pop = a.at("gc_prune", "gc_unlink")
		rc := t.Unlink("/repo/.git/objects/" + v)
		pop()
		if rc < 0 {
			a.Cov.Hit("rec.gc_unlink")
		}
	}

	// Two audit descriptors with copy-style close checks.
	fd := t.Open("/repo/.git/index", libsim.O_RDONLY)
	if fd >= 0 {
		pop = a.at("gc_prune", "gc_close2")
		rc := t.Close(fd)
		pop()
		if rc == -1 {
			a.Cov.Hit("rec.gc_close2")
		}
	}
	fd = t.Open("/repo/file-a", libsim.O_RDONLY)
	if fd >= 0 {
		pop = a.at("gc_prune", "gc_close3")
		rc := t.Close(fd)
		pop()
		if rc < 0 {
			a.Cov.Hit("rec.gc_close3")
		}
	}
	return nil
}

// RunSuite is the default test suite ("make test"): it exercises every
// command once with benign inputs.
func (a *App) RunSuite() error {
	if err := a.UpdateIndex(); err != nil {
		return err
	}
	if err := a.RefreshCache(); err != nil {
		return err
	}
	if err := a.Merge(64, 64); err != nil {
		return err
	}
	if err := a.Patience(16); err != nil {
		return err
	}
	if err := a.RunExternal("hook/post-commit"); err != nil {
		return err
	}
	if err := a.StoreObject("tmp_obj1", []byte("blob 14")); err != nil {
		return err
	}
	if _, err := a.LoadObject("tmp_obj1"); err != nil {
		return err
	}
	return a.GC()
}
