package minivcs

import (
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// Target adapts minivcs to the LFI controller: Start stages a fresh
// repository, Workload runs the default test suite. The returned Target
// carries its own App reference, so independent campaigns do not share
// state (but a single Target must not be used from concurrent runs).
func Target() controller.Target {
	var app *App
	return controller.Target{
		Name: Module,
		Start: func() *libsim.C {
			app = New()
			return app.C
		},
		Workload: func(*libsim.C) error {
			return app.RunSuite()
		},
	}
}

// TargetWithCoverage is Target plus per-run coverage accumulation into
// acc — the Table 3 workflow, where lcov data from every test run is
// merged before computing campaign coverage.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	var app *App
	return controller.Target{
		Name: Module,
		Start: func() *libsim.C {
			app = New()
			return app.C
		},
		Workload: func(*libsim.C) error {
			defer func() { acc.Merge(app.Cov) }()
			return app.RunSuite()
		},
	}
}
