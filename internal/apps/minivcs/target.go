package minivcs

import (
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// Target adapts minivcs to the LFI controller: Start stages a fresh
// repository and returns the default test suite as the workload. Each
// Start builds its own App, so one Target may serve concurrent campaign
// workers.
func Target() controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, app.RunSuite
		},
	}
}

// TargetWithCoverage is Target plus per-run coverage accumulation into
// acc — the Table 3 workflow, where lcov data from every test run is
// merged before computing campaign coverage.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, func() error {
				defer func() { acc.Merge(app.Cov) }()
				return app.RunSuite()
			}
		},
	}
}
