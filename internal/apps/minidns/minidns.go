// Package minidns is the BIND 9.6.1 stand-in: a small authoritative DNS
// server with zone loading, query serving, an XML statistics channel,
// and a DST (crypto key) subsystem, written against the simulated C
// library.
//
// It carries the BIND bugs of Table 1:
//
//   - crash when xmlNewTextWriterDoc fails while a user retrieves
//     statistics over HTTP (the return value is never checked, and the
//     NULL writer is dereferenced) [4];
//   - abort in dst_lib_init: the malloc return IS checked, but the
//     recovery code calls dst_lib_destroy before the dst_initialized
//     flag is set, tripping destroy's first assertion [3].
//
// The zone loader's open call is checked through a jump table
// (CheckHiddenIndirect); the call-site analyzer cannot see that check
// and reports the site unchecked — the single false positive in the
// BIND/open row of Table 4. Injection then verifies the site is in fact
// robust.
package minidns

import (
	"fmt"
	"strings"
	"sync"

	"lfi/internal/asm"
	"lfi/internal/coverage"
	"lfi/internal/isa"
	"lfi/internal/libsim"
)

// Module is the binary/module name used in stack frames and scenarios.
const Module = "minidns"

// Sites is the ground-truth call-site model (see minivcs for the
// convention).
func Sites() []asm.FuncSpec {
	return []asm.FuncSpec{
		{Name: "statschannel_render", Sites: []asm.SiteSpec{
			{Label: "sc_xmlnew", Callee: "xmlNewTextWriterDoc", Style: asm.CheckNone}, // BUG [4]
			{Label: "sc_xmlwrite", Callee: "xmlTextWriterWriteElement", Style: asm.CheckEq, Codes: []int64{-1}},
		}},
		{Name: "dst_lib_init", Sites: []asm.SiteSpec{
			{Label: "dst_malloc_key", Callee: "malloc", Style: asm.CheckEqZero}, // checked; recovery buggy [3]
			{Label: "dst_malloc_ctx", Callee: "malloc", Style: asm.CheckEqZero},
		}},
		{Name: "load_zone", Sites: []asm.SiteSpec{
			{Label: "lz_open", Callee: "open", Style: asm.CheckHiddenIndirect, Codes: []int64{-1}}, // Table 4 FP
			{Label: "lz_read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1, 0}},
			{Label: "lz_close", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "journal_rollforward", Sites: []asm.SiteSpec{
			{Label: "jr_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "jr_read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}}, // partial
			{Label: "jr_unlink", Callee: "unlink", Style: asm.CheckIneq},
			{Label: "jr_close", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "cache_alloc", Sites: []asm.SiteSpec{
			{Label: "ca_malloc1", Callee: "malloc", Style: asm.CheckEqZero},
			{Label: "ca_malloc2", Callee: "malloc", Style: asm.CheckEqViaCopy, Codes: []int64{0}},
			{Label: "ca_malloc3", Callee: "malloc", Style: asm.CheckEqZero},
		}},
		{Name: "dump_stats_file", Sites: []asm.SiteSpec{
			{Label: "df_fopen", Callee: "fopen", Style: asm.CheckEqZero},
			{Label: "df_fwrite", Callee: "fwrite", Style: asm.CheckEq, Codes: []int64{0}},
			{Label: "df_fclose", Callee: "fclose", Style: asm.CheckIneq},
			{Label: "df_unlink", Callee: "unlink", Style: asm.CheckIneqViaCopy},
		}},
		{Name: "shutdown_server", Sites: []asm.SiteSpec{
			{Label: "sd_close1", Callee: "close", Style: asm.CheckIneq},
			{Label: "sd_close2", Callee: "close", Style: asm.CheckIneq},
			{Label: "sd_close3", Callee: "close", Style: asm.CheckEqViaCopy, Codes: []int64{-1}},
		}},
		{Name: "reload_config", Sites: []asm.SiteSpec{
			{Label: "cf_open1", Callee: "open", Style: asm.CheckIneq},
			{Label: "cf_open2", Callee: "open", Style: asm.CheckEq, Codes: []int64{-1}},
			{Label: "cf_open3", Callee: "open", Style: asm.CheckEqViaCopy, Codes: []int64{-1}},
			{Label: "cf_open4", Callee: "open", Style: asm.CheckIneqViaCopy, Filler: 6},
			{Label: "cf_close", Callee: "close", Style: asm.CheckIneq},
		}},
	}
}

var (
	binOnce sync.Once
	bin     *isa.Binary
	offs    map[string]uint64
)

// Binary returns the compiled minidns program image and site offsets.
func Binary() (*isa.Binary, map[string]uint64) {
	binOnce.Do(func() {
		var err error
		bin, offs, err = asm.Program(Module, Sites())
		if err != nil {
			panic("minidns: " + err.Error())
		}
	})
	return bin, offs
}

// App is one running minidns instance.
type App struct {
	C   *libsim.C
	Th  *libsim.Thread
	Cov *coverage.Tracker

	zones          map[string]string // name -> address
	queriesServed  int64
	dstInitialized bool
	dstKeyBuf      int64
	dstCtxBuf      int64

	suite func() error // bound RunSuite, reused across pooled runs
}

// New stages zone fixtures and returns a ready instance.
func New() *App {
	c := libsim.New(1 << 22)
	a := &App{
		C:     c,
		Th:    c.NewThread(Module, "main"),
		Cov:   coverage.New(),
		zones: make(map[string]string),
	}
	c.Owner = a
	a.suite = a.RunSuite
	c.MustMkdirAll("/etc/named")
	c.MustWriteFile("/etc/named/example.zone",
		[]byte("www.example.com=10.0.0.1;mail.example.com=10.0.0.2"))
	c.MustWriteFile("/etc/named/journal", []byte("ixfr-delta-1"))
	c.SnapshotFS()
	c.RegisterVar("queries_served", func() int64 { return a.queriesServed })
	a.registerCoverage()
	return a
}

// Reset rewinds the instance to its post-New state for reuse by a
// pooled target: process image restored (zone fixtures, heap, handles,
// dispatcher counters), thread rewound, coverage hits cleared, app
// state zeroed.
func (a *App) Reset() {
	a.C.Reset()
	a.Th.Reset()
	a.Cov.ResetHits()
	clear(a.zones)
	a.queriesServed = 0
	a.dstInitialized = false
	a.dstKeyBuf = 0
	a.dstCtxBuf = 0
}

func (a *App) at(fn, label string) func() {
	_, offsets := Binary()
	return a.Th.Enter(Module, fn, offsets[label])
}

func (a *App) registerCoverage() {
	reg := func(id string, loc int, rec bool) { a.Cov.Register(id, loc, rec) }
	// Mainline blocks, weighted like BIND so that recovery code is a
	// small share of the program (see the minivcs note).
	reg("main.stats", 700, false)
	reg("main.dst_init", 500, false)
	reg("main.load_zone", 1100, false)
	reg("main.journal", 700, false)
	reg("main.cache", 500, false)
	reg("main.dump", 600, false)
	reg("main.query", 700, false)
	reg("main.shutdown", 500, false)
	reg("main.reload", 700, false)
	// Recovery blocks.
	reg("rec.sc_xmlwrite", 6, true)
	reg("rec.dst_malloc_key", 8, true)
	reg("rec.dst_malloc_ctx", 8, true)
	reg("rec.lz_open", 10, true)
	reg("rec.lz_read", 8, true)
	reg("rec.lz_eof", 4, true)
	reg("rec.lz_close", 4, true)
	reg("rec.jr_open", 8, true)
	reg("rec.jr_read", 6, true)
	reg("rec.jr_unlink", 5, true)
	reg("rec.jr_close", 4, true)
	reg("rec.ca_malloc1", 6, true)
	reg("rec.ca_malloc2", 6, true)
	reg("rec.ca_malloc3", 6, true)
	reg("rec.df_fopen", 7, true)
	reg("rec.df_fwrite", 9, true)
	reg("rec.df_fclose", 4, true)
	reg("rec.df_unlink", 5, true)
	reg("rec.sd_close1", 3, true)
	reg("rec.sd_close2", 3, true)
	reg("rec.sd_close3", 3, true)
	reg("rec.cf_open", 8, true)
	reg("rec.cf_close", 3, true)
	// Recovery outside the trimmed campaign's reach.
	reg("rec.tsig_verify", 14, true)
	reg("rec.notify_send", 12, true)
	reg("rec.axfr_stream", 16, true)
	// Cold features.
	reg("cold.dnssec_sign", 1600, false)
	reg("cold.lwres", 1000, false)
	reg("cold.dlz_backend", 1028, false)
}

// --- subsystems -------------------------------------------------------------

// StatsChannel renders server statistics as XML for the HTTP channel.
// BUG [4]: xmlNewTextWriterDoc's return is not checked.
func (a *App) StatsChannel() (string, error) {
	t := a.Th
	a.Cov.Hit("main.stats")

	pop := a.at("statschannel_render", "sc_xmlnew")
	w := t.XMLNewTextWriterDoc()
	pop()
	// BUG: no NULL check; the write below crashes when allocation failed.
	pop = a.at("statschannel_render", "sc_xmlwrite")
	rc := t.XMLTextWriterWriteElement(w, "queries", fmt.Sprint(a.queriesServed))
	pop()
	if rc == -1 {
		a.Cov.Hit("rec.sc_xmlwrite")
		t.XMLFreeTextWriter(w)
		return "", fmt.Errorf("stats: xml write failed")
	}
	return t.XMLFreeTextWriter(w), nil
}

// DstLibDestroy tears down the DST subsystem. Its first statement is an
// assertion that the subsystem was initialized — exactly BIND's
// dst_lib_destroy.
func (a *App) DstLibDestroy() {
	t := a.Th
	t.Assert(a.dstInitialized, "dst != NULL && dst_initialized")
	if a.dstKeyBuf != 0 {
		t.Free(a.dstKeyBuf)
		a.dstKeyBuf = 0
	}
	if a.dstCtxBuf != 0 {
		t.Free(a.dstCtxBuf)
		a.dstCtxBuf = 0
	}
	a.dstInitialized = false
}

// DstLibInit initializes the DST subsystem. BUG [3]: the malloc returns
// are checked, but the recovery path calls DstLibDestroy before
// dst_initialized is set, tripping the assertion (abort).
func (a *App) DstLibInit() error {
	t := a.Th
	a.Cov.Hit("main.dst_init")

	pop := a.at("dst_lib_init", "dst_malloc_key")
	a.dstKeyBuf = t.Malloc(512)
	pop()
	if a.dstKeyBuf == 0 {
		a.Cov.Hit("rec.dst_malloc_key")
		a.DstLibDestroy() // BUG: flag not yet set -> assertion aborts
		return fmt.Errorf("dst: out of memory")
	}

	pop = a.at("dst_lib_init", "dst_malloc_ctx")
	a.dstCtxBuf = t.Malloc(256)
	pop()
	if a.dstCtxBuf == 0 {
		// Correct recovery: release what was allocated directly,
		// without going through the assertion-guarded destroy.
		a.Cov.Hit("rec.dst_malloc_ctx")
		t.Free(a.dstKeyBuf)
		a.dstKeyBuf = 0
		return fmt.Errorf("dst: out of memory")
	}

	a.dstInitialized = true
	return nil
}

// LoadZone parses one zone file. The open check is routed through a
// jump table in the binary (invisible to the analyzer) but is a real
// check: injected open failures are handled gracefully.
func (a *App) LoadZone(path string) error {
	t := a.Th
	a.Cov.Hit("main.load_zone")

	pop := a.at("load_zone", "lz_open")
	fd := t.Open(path, libsim.O_RDONLY)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.lz_open")
		return fmt.Errorf("zone: cannot open %s: %v", path, t.Errno())
	}

	buf := make([]byte, 512)
	pop = a.at("load_zone", "lz_read")
	n := t.Read(fd, buf)
	pop()
	if n == -1 {
		a.Cov.Hit("rec.lz_read")
		a.closeZone(fd)
		return fmt.Errorf("zone: read %s: %v", path, t.Errno())
	}
	if n == 0 {
		a.Cov.Hit("rec.lz_eof")
		a.closeZone(fd)
		return fmt.Errorf("zone: %s is empty", path)
	}
	for _, rr := range strings.Split(string(buf[:n]), ";") {
		if name, addr, ok := strings.Cut(rr, "="); ok {
			a.zones[name] = addr
		}
	}
	a.closeZone(fd)
	return nil
}

func (a *App) closeZone(fd int64) {
	pop := a.at("load_zone", "lz_close")
	if a.Th.Close(fd) < 0 {
		a.Cov.Hit("rec.lz_close")
	}
	pop()
}

// JournalRollforward replays the zone journal and truncates it.
func (a *App) JournalRollforward() error {
	t := a.Th
	a.Cov.Hit("main.journal")

	pop := a.at("journal_rollforward", "jr_open")
	fd := t.Open("/etc/named/journal", libsim.O_RDONLY)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.jr_open")
		return fmt.Errorf("journal: open: %v", t.Errno())
	}
	buf := make([]byte, 128)
	pop = a.at("journal_rollforward", "jr_read")
	n := t.Read(fd, buf)
	pop()
	if n == -1 { // partial: EOF not distinguished
		a.Cov.Hit("rec.jr_read")
		n = 0
	}
	_ = buf[:n]

	pop = a.at("journal_rollforward", "jr_unlink")
	rc := t.Unlink("/etc/named/journal.old")
	pop()
	if rc < 0 {
		a.Cov.Hit("rec.jr_unlink")
	}

	pop = a.at("journal_rollforward", "jr_close")
	rc = t.Close(fd)
	pop()
	if rc < 0 {
		a.Cov.Hit("rec.jr_close")
	}
	return nil
}

// CacheAlloc grows the answer cache (three checked allocations).
func (a *App) CacheAlloc() error {
	t := a.Th
	a.Cov.Hit("main.cache")
	for i, label := range []string{"ca_malloc1", "ca_malloc2", "ca_malloc3"} {
		pop := a.at("cache_alloc", label)
		p := t.Malloc(int64(64 << i))
		pop()
		if p == 0 {
			a.Cov.Hit("rec." + label)
			return fmt.Errorf("cache: out of memory (stage %d)", i)
		}
		t.Free(p)
	}
	return nil
}

// DumpStats writes the statistics file (rndc stats).
func (a *App) DumpStats() error {
	t := a.Th
	a.Cov.Hit("main.dump")

	pop := a.at("dump_stats_file", "df_fopen")
	fp := t.Fopen("/etc/named/named.stats", "w")
	pop()
	if fp == 0 {
		a.Cov.Hit("rec.df_fopen")
		return fmt.Errorf("stats: fopen: %v", t.Errno())
	}
	pop = a.at("dump_stats_file", "df_fwrite")
	n := t.Fwrite([]byte(fmt.Sprintf("queries %d\n", a.queriesServed)), fp)
	pop()
	if n == 0 {
		a.Cov.Hit("rec.df_fwrite")
		a.fcloseStats(fp)
		return fmt.Errorf("stats: fwrite failed")
	}
	a.fcloseStats(fp)

	pop = a.at("dump_stats_file", "df_unlink")
	if t.Unlink("/etc/named/named.stats.old") < 0 {
		a.Cov.Hit("rec.df_unlink")
	}
	pop()
	return nil
}

func (a *App) fcloseStats(fp int64) {
	pop := a.at("dump_stats_file", "df_fclose")
	if a.Th.Fclose(fp) < 0 {
		a.Cov.Hit("rec.df_fclose")
	}
	pop()
}

// Query answers one DNS query from the loaded zones.
func (a *App) Query(name string) (string, bool) {
	a.Cov.Hit("main.query")
	a.queriesServed++
	addr, ok := a.zones[name]
	return addr, ok
}

// Shutdown closes listener descriptors.
func (a *App) Shutdown() {
	t := a.Th
	a.Cov.Hit("main.shutdown")
	for _, label := range []string{"sd_close1", "sd_close2", "sd_close3"} {
		fd := t.Open("/etc/named/example.zone", libsim.O_RDONLY)
		if fd < 0 {
			continue
		}
		pop := a.at("shutdown_server", label)
		if t.Close(fd) < 0 {
			a.Cov.Hit("rec." + label)
		}
		pop()
	}
}

// ReloadConfig re-reads the four configuration fragments (named.conf
// includes); every open is checked, in various compiled idioms.
func (a *App) ReloadConfig() error {
	t := a.Th
	a.Cov.Hit("main.reload")
	for _, label := range []string{"cf_open1", "cf_open2", "cf_open3", "cf_open4"} {
		pop := a.at("reload_config", label)
		fd := t.Open("/etc/named/example.zone", libsim.O_RDONLY)
		pop()
		if fd < 0 {
			a.Cov.Hit("rec.cf_open")
			return fmt.Errorf("reload: open (%s): %v", label, t.Errno())
		}
		pop = a.at("reload_config", "cf_close")
		rc := t.Close(fd)
		pop()
		if rc < 0 {
			a.Cov.Hit("rec.cf_close")
		}
	}
	return nil
}

// RunSuite is the default test suite.
func (a *App) RunSuite() error {
	if err := a.DstLibInit(); err != nil {
		return err
	}
	if err := a.ReloadConfig(); err != nil {
		return err
	}
	if err := a.LoadZone("/etc/named/example.zone"); err != nil {
		return err
	}
	if err := a.JournalRollforward(); err != nil {
		return err
	}
	if err := a.CacheAlloc(); err != nil {
		return err
	}
	if _, ok := a.Query("www.example.com"); !ok {
		return fmt.Errorf("suite: lookup failed")
	}
	if _, err := a.StatsChannel(); err != nil {
		return err
	}
	if err := a.DumpStats(); err != nil {
		return err
	}
	a.Shutdown()
	return nil
}
