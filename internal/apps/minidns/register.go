package minidns

import "lfi/internal/system"

// The descriptor makes minidns visible to every registry-driven entry
// point; see internal/system.
func init() {
	system.Register(&system.Descriptor{
		Name:               Module,
		Workload:           "zone-load/query/statistics-channel regression suite (RunSuite)",
		Binary:             Binary,
		Target:             Target,
		TargetWithCoverage: TargetWithCoverage,
		Profiles:           system.DefaultProfiles,
		StockBugs: []system.StockBug{
			{Match: "dst != NULL && dst_initialized", Note: "recovery path destroys the dst subsystem before its init flag is set (BIND assertion)"},
			{Match: "xmlTextWriterWriteElement(NULL writer)", Note: "failed xmlNewTextWriterDoc not checked before use (BIND statistics channel)"},
		},
	})
}
