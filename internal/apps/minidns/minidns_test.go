package minidns

import (
	"fmt"
	"strings"
	"testing"

	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/libsim"
	"lfi/internal/libspec"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

func siteScenario(t *testing.T, fn string, retval int64, errnoName, label string) *scenario.Scenario {
	t.Helper()
	_, offsets := Binary()
	doc := fmt.Sprintf(`<scenario name="%s">
	  <trigger id="cs" class="CallStackTrigger">
	    <args><frame><module>%s</module><offset>%x</offset></frame></args>
	  </trigger>
	  <trigger id="once" class="SingletonTrigger" />
	  <function name="%s" return="%d" errno="%s">
	    <reftrigger ref="cs" /><reftrigger ref="once" />
	  </function>
	</scenario>`, label, Module, offsets[label], fn, retval, errnoName)
	s, err := scenario.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteCleanWithoutInjection(t *testing.T) {
	out, err := controller.RunOne(Target(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("clean run failed: %v", out)
	}
}

func TestStatsChannelBugCrashes(t *testing.T) {
	// BIND bug [4]: xmlNewTextWriterDoc fails while a user retrieves
	// statistics -> NULL writer dereference.
	out, err := controller.RunOne(Target(), siteScenario(t, "xmlNewTextWriterDoc", 0, "ENOMEM", "sc_xmlnew"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.Segfault {
		t.Fatalf("expected segfault, got %v", out)
	}
	if !strings.Contains(out.Crash.Reason, "NULL writer") {
		t.Fatalf("crash reason %q", out.Crash.Reason)
	}
}

func TestDstLibInitRecoveryBugAborts(t *testing.T) {
	// BIND bug [3]: the malloc IS checked, but the recovery path calls
	// dst_lib_destroy before dst_initialized is set -> assertion abort.
	out, err := controller.RunOne(Target(), siteScenario(t, "malloc", 0, "ENOMEM", "dst_malloc_key"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.Abort {
		t.Fatalf("expected abort, got %v", out)
	}
	if !strings.Contains(out.Crash.Reason, "dst") {
		t.Fatalf("crash reason %q", out.Crash.Reason)
	}
}

func TestHiddenCheckSiteIsActuallyRobust(t *testing.T) {
	// The lz_open check is invisible to the analyzer (jump table) but
	// real: injection is handled gracefully. This is how testers
	// refute the analyzer's false positive.
	out, err := controller.RunOne(Target(), siteScenario(t, "open", -1, "EACCES", "lz_open"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil {
		t.Fatalf("robust site crashed: %v", out.Crash)
	}
	if out.Injections == 0 {
		t.Fatal("no injection at lz_open")
	}
}

func TestCheckedSitesRecoverGracefully(t *testing.T) {
	cases := []struct {
		fn, errno, label string
		retval           int64
	}{
		{"read", "EIO", "lz_read", -1},
		{"close", "EIO", "lz_close", -1},
		{"open", "ENOENT", "jr_open", -1},
		{"unlink", "EACCES", "jr_unlink", -1},
		{"malloc", "ENOMEM", "ca_malloc1", 0},
		{"malloc", "ENOMEM", "ca_malloc2", 0},
		{"fopen", "EMFILE", "df_fopen", 0},
		{"fwrite", "ENOSPC", "df_fwrite", 0},
		{"close", "EINTR", "sd_close1", -1},
		{"xmlTextWriterWriteElement", "EINVAL", "sc_xmlwrite", -1},
	}
	for _, c := range cases {
		out, err := controller.RunOne(Target(), siteScenario(t, c.fn, c.retval, c.errno, c.label))
		if err != nil {
			t.Fatal(err)
		}
		if out.Crash != nil {
			t.Errorf("%s: checked site crashed: %v", c.label, out.Crash)
		}
		if out.Injections == 0 {
			t.Errorf("%s: scenario never injected", c.label)
		}
	}
}

func TestAnalyzerFalsePositiveOnHiddenOpen(t *testing.T) {
	bin, sites := Binary()
	libc := profile.ProfileBinary(libspec.BuildLibc())
	a := &callsite.Analyzer{}
	rep := a.Analyze(bin, libc)
	s, ok := callsite.SiteAt(rep.Sites, sites["lz_open"])
	if !ok {
		t.Fatal("lz_open not analyzed")
	}
	if s.Class != callsite.Unchecked || !s.Indirect {
		t.Fatalf("expected the known FP (unchecked + indirect), got %+v", s)
	}
	// Accuracy over minidns open sites shows exactly one FP — the
	// BIND/open row of Table 4.
	truth := callsite.TruthByOffset(Sites(), sites)
	acc := callsite.MeasureAccuracy("open", rep.Sites, truth)
	if acc.FP != 1 || acc.FN != 0 {
		t.Fatalf("open accuracy %+v", acc)
	}
}

func TestAnalyzerFindsStatsBug(t *testing.T) {
	bin, sites := Binary()
	libxml := profile.ProfileBinary(libspec.BuildLibxml())
	a := &callsite.Analyzer{}
	rep := a.Analyze(bin, libxml)
	s, ok := callsite.SiteAt(rep.Sites, sites["sc_xmlnew"])
	if !ok || s.Class != callsite.Unchecked {
		t.Fatalf("xmlNewTextWriterDoc site: %+v (ok=%v)", s, ok)
	}
}

func TestQueriesServedVar(t *testing.T) {
	app := New()
	if err := app.RunSuite(); err != nil {
		t.Fatal(err)
	}
	v, ok := app.C.ReadVar("queries_served")
	if !ok || v < 1 {
		t.Fatalf("queries_served = %d, %v", v, ok)
	}
}
