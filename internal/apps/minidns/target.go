package minidns

import (
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// Target adapts minidns to the LFI controller. Each Start builds its
// own App, so one Target may serve concurrent campaign workers.
func Target() controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, app.RunSuite
		},
	}
}

// TargetWithCoverage merges each run's coverage into acc (Table 3).
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, func() error {
				defer func() { acc.Merge(app.Cov) }()
				return app.RunSuite()
			}
		},
	}
}
