package minidns

import (
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// Target adapts minidns to the LFI controller.
func Target() controller.Target {
	var app *App
	return controller.Target{
		Name: Module,
		Start: func() *libsim.C {
			app = New()
			return app.C
		},
		Workload: func(*libsim.C) error {
			return app.RunSuite()
		},
	}
}

// TargetWithCoverage merges each run's coverage into acc (Table 3).
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	var app *App
	return controller.Target{
		Name: Module,
		Start: func() *libsim.C {
			app = New()
			return app.C
		},
		Workload: func(*libsim.C) error {
			defer func() { acc.Merge(app.Cov) }()
			return app.RunSuite()
		},
	}
}
