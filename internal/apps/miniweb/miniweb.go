// Package miniweb is the Apache 2.2.14 stand-in used by the Table 5
// precision/performance study: a small web server whose request path
// issues apr_file_read calls at high frequency, under both a cheap
// static-HTML workload and a computation-heavy "PHP" workload.
//
// The Table 5 measurement paths themselves carry no injected faults
// (the paper did not inject while measuring overhead), but the server
// seeds two Apache-class recovery bugs for the fault-space explorer:
//
//   - the access-log writer never checks fopen's return, so a failed
//     open crashes the following fwrite on a NULL stream (the classic
//     unchecked-log-open bug family of Table 1);
//   - the static handler's read-error recovery releases "all" request
//     resources, including the worker mutex the deferred cleanup also
//     releases — error-checking mutexes abort on the double unlock.
//
// Both are dormant under the no-injection workloads, so the Table 5
// numbers are unaffected.
package miniweb

import (
	"fmt"
	"sync"

	"lfi/internal/asm"
	"lfi/internal/coverage"
	"lfi/internal/isa"
	"lfi/internal/libsim"
)

// Module is the binary/module name used in stack frames and scenarios.
const Module = "miniweb"

// Request method numbers, following Apache's request_rec.method_number.
const (
	MethodGET  = 0
	MethodPOST = 2
)

// Sites is the ground-truth call-site model.
func Sites() []asm.FuncSpec {
	return []asm.FuncSpec{
		{Name: "default_handler", Sites: []asm.SiteSpec{
			{Label: "dh_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "dh_apr_read", Callee: "apr_file_read", Style: asm.CheckIneq},
			{Label: "dh_close", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "php_handler", Sites: []asm.SiteSpec{
			{Label: "ph_open", Callee: "open", Style: asm.CheckIneq},
			{Label: "ph_apr_read", Callee: "apr_file_read", Style: asm.CheckIneq},
			{Label: "ph_close", Callee: "close", Style: asm.CheckIneq},
		}},
		{Name: "log_transaction", Sites: []asm.SiteSpec{
			// BUG: the access-log fopen is unchecked; the fwrite below
			// crashes on the NULL stream when it fails.
			{Label: "lt_fopen", Callee: "fopen", Style: asm.CheckNone},
			{Label: "lt_fwrite", Callee: "fwrite", Style: asm.CheckEq, Codes: []int64{0}},
		}},
	}
}

var (
	binOnce sync.Once
	bin     *isa.Binary
	offs    map[string]uint64
)

// Binary returns the compiled miniweb program image and site offsets.
func Binary() (*isa.Binary, map[string]uint64) {
	binOnce.Do(func() {
		var err error
		bin, offs, err = asm.Program(Module, Sites())
		if err != nil {
			panic("miniweb: " + err.Error())
		}
	})
	return bin, offs
}

// App is one running miniweb instance.
type App struct {
	C   *libsim.C
	Th  *libsim.Thread
	Cov *coverage.Tracker

	methodNumber int64
	served       int64
	mutex        int64

	suite func() error // bound RunSuite, reused across pooled runs
}

// New stages the document root and returns a ready instance.
func New() *App {
	c := libsim.New(1 << 22)
	a := &App{C: c, Th: c.NewThread(Module, "main"), Cov: coverage.New()}
	c.Owner = a
	a.suite = a.RunSuite
	a.mutex = c.MutexInit()
	c.MustMkdirAll("/www")
	c.MustMkdirAll("/var/log")
	page := make([]byte, 16384)
	for i := range page {
		page[i] = byte('a' + i%26)
	}
	c.MustWriteFile("/www/index.html", page)
	c.MustWriteFile("/www/app.php", []byte("<?php compute(); ?>"))
	c.SnapshotFS()
	c.RegisterVar("method_number", func() int64 { return a.methodNumber })
	a.Cov.Register("main.static", 40, false)
	a.Cov.Register("main.php", 60, false)
	a.Cov.Register("main.log", 14, false)
	a.Cov.Register("rec.dh_open", 6, true)
	a.Cov.Register("rec.dh_apr_read", 8, true)
	a.Cov.Register("rec.ph_open", 6, true)
	a.Cov.Register("rec.ph_apr_read", 8, true)
	a.Cov.Register("rec.lt_fwrite", 5, true)
	return a
}

// Reset rewinds the instance to its post-New state for reuse by a
// pooled target. The worker mutex is freshly created rather than
// recycled — a crashed run can abandon the old one in a locked state.
func (a *App) Reset() {
	a.C.Reset()
	a.Th.Reset()
	a.Cov.ResetHits()
	a.mutex = a.C.MutexInit()
	a.methodNumber = 0
	a.served = 0
}

func (a *App) at(fn, label string) func() {
	_, offsets := Binary()
	return a.Th.Enter(Module, fn, offsets[label])
}

// ServeStatic handles one static-HTML request: open the file, read it
// through apr_file_read in 1 KB chunks, close it. The request path runs
// inside an ap_process_request_internal frame, which the Table 5
// call-stack trigger matches, and holds the worker mutex during reads
// for the custom WithMutex trigger.
func (a *App) ServeStatic(path string, method int64) error {
	t := a.Th
	a.Cov.Hit("main.static")
	a.methodNumber = method
	popReq := t.Enter(Module, "ap_process_request_internal", 0)
	defer popReq()

	pop := a.at("default_handler", "dh_open")
	fd := t.Open(path, libsim.O_RDONLY)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.dh_open")
		return fmt.Errorf("static: open %s: %v", path, t.Errno())
	}
	defer func() {
		pop := a.at("default_handler", "dh_close")
		t.Close(fd)
		pop()
	}()

	t.MutexLock(a.mutex)
	defer t.MutexUnlock(a.mutex)

	buf := make([]byte, 1024)
	for {
		var n int64
		pop := a.at("default_handler", "dh_apr_read")
		st := t.APRFileRead(fd, buf, &n)
		pop()
		if st != 0 {
			// BUG: the error path tears down "all" request resources,
			// including the worker mutex the deferred cleanup below
			// also releases — a double unlock, which error-checking
			// mutexes turn into an abort (the mi_create bug family).
			a.Cov.Hit("rec.dh_apr_read")
			t.MutexUnlock(a.mutex)
			return fmt.Errorf("static: apr_file_read: status %d", st)
		}
		if n == 0 {
			break
		}
	}
	a.served++
	return nil
}

// ServePHP handles one dynamic request: a read followed by
// computational work (the paper's PHP workload is CPU-heavy, with fewer
// library calls per unit time).
func (a *App) ServePHP(path string, method int64) error {
	t := a.Th
	a.Cov.Hit("main.php")
	a.methodNumber = method
	popReq := t.Enter(Module, "ap_process_request_internal", 0)
	defer popReq()

	pop := a.at("php_handler", "ph_open")
	fd := t.Open(path, libsim.O_RDONLY)
	pop()
	if fd < 0 {
		a.Cov.Hit("rec.ph_open")
		return fmt.Errorf("php: open %s: %v", path, t.Errno())
	}
	defer func() {
		pop := a.at("php_handler", "ph_close")
		t.Close(fd)
		pop()
	}()

	buf := make([]byte, 256)
	var n int64
	pop = a.at("php_handler", "ph_apr_read")
	st := t.APRFileRead(fd, buf, &n)
	pop()
	if st != 0 {
		a.Cov.Hit("rec.ph_apr_read")
		return fmt.Errorf("php: apr_file_read: status %d", st)
	}

	// Interpret the "script": a pure-CPU hash loop.
	var h uint64 = 14695981039346656037
	for round := 0; round < 2000; round++ {
		for _, b := range buf[:n] {
			h = (h ^ uint64(b)) * 1099511628211
		}
	}
	if h == 0 {
		return fmt.Errorf("php: impossible hash")
	}
	a.served++
	return nil
}

// LogTransaction appends one access-log line, mod_log_config style.
// BUG: the fopen return is never checked; when the log cannot be
// opened, the fwrite crashes on the NULL stream.
func (a *App) LogTransaction(line string) {
	t := a.Th
	a.Cov.Hit("main.log")
	pop := a.at("log_transaction", "lt_fopen")
	fp := t.Fopen("/var/log/access_log", "a")
	pop()
	// BUG: fp not checked.
	pop = a.at("log_transaction", "lt_fwrite")
	n := t.Fwrite([]byte(line+"\n"), fp)
	pop()
	if n == 0 {
		a.Cov.Hit("rec.lt_fwrite")
	}
	t.Fclose(fp)
}

// Served returns the number of completed requests.
func (a *App) Served() int64 { return a.served }

// RunAB replays the Apache-benchmark workload: n requests, static or
// PHP, alternating GET/POST so the program-state trigger sees both.
func (a *App) RunAB(n int, php bool) error {
	for i := 0; i < n; i++ {
		method := int64(MethodGET)
		if i%4 == 3 {
			method = MethodPOST
		}
		var err error
		if php {
			err = a.ServePHP("/www/app.php", method)
		} else {
			err = a.ServeStatic("/www/index.html", method)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RunSuite is the default test suite the explorer drives: a handful of
// logged static and PHP requests, enough to execute every modelled call
// site at least once.
func (a *App) RunSuite() error {
	for i := 0; i < 3; i++ {
		method := int64(MethodGET)
		if i%2 == 1 {
			method = MethodPOST
		}
		if err := a.ServeStatic("/www/index.html", method); err != nil {
			return err
		}
		a.LogTransaction(fmt.Sprintf("GET /index.html %d", i))
	}
	if err := a.ServePHP("/www/app.php", MethodGET); err != nil {
		return err
	}
	a.LogTransaction("GET /app.php")
	return nil
}
