package miniweb

import (
	"fmt"

	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// Table5Scenario builds the k-trigger (1 ≤ k ≤ 5) observational stack
// of the paper's Apache overhead study (§7.4, Table 5):
//
//  1. target apr_file_read calls whose descriptor points at a socket
//     (checked via the raw apr_stat equivalent);
//  2. require the caller to be Apache's core (a call-stack frame in the
//     miniweb module), excluding dynamically loaded modules;
//  3. require ap_process_request_internal on the call stack;
//  4. require the request method to be POST (program-state trigger on
//     the request_rec method_number);
//  5. require the calling thread to hold a mutex (custom trigger).
//
// All associations are observational ("unused"): the study measures
// trigger-evaluation overhead, not recovery, so calls pass through.
func Table5Scenario(k int) (*scenario.Scenario, error) {
	if k < 1 || k > 5 {
		return nil, fmt.Errorf("miniweb: trigger count %d out of [1,5]", k)
	}
	b := scenario.NewBuilder(fmt.Sprintf("table5-%dtriggers", k))
	refs := []string{b.Trigger("t1", "FDIsSocket", nil)}
	if k >= 2 {
		refs = append(refs, b.Trigger("t2", "CallStackTrigger", frameArgs("module", Module)))
	}
	if k >= 3 {
		refs = append(refs, b.Trigger("t3", "CallStackTrigger",
			frameArgs("function", "ap_process_request_internal")))
	}
	if k >= 4 {
		refs = append(refs, b.Trigger("t4", "ProgramStateTrigger",
			scenario.IntArgs("var", "method_number", "op", "eq", "value", MethodPOST)))
	}
	if k >= 5 {
		refs = append(refs, b.Trigger("t5", "WithMutex", nil))
	}
	b.Observe("apr_file_read", refs...)
	return b.Build()
}

// frameArgs builds a single-frame CallStackTrigger <args> tree matching
// by one attribute (module or function).
func frameArgs(kind, value string) *trigger.Args {
	return &trigger.Args{
		Name: "args",
		Children: []*trigger.Args{{
			Name:     "frame",
			Children: []*trigger.Args{{Name: kind, Text: value}},
		}},
	}
}
