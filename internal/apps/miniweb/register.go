package miniweb

import "lfi/internal/system"

// The descriptor makes miniweb visible to every registry-driven entry
// point; see internal/system.
func init() {
	system.Register(&system.Descriptor{
		Name:               Module,
		Workload:           "static + PHP request-serving suite with access logging (RunSuite)",
		Binary:             Binary,
		Target:             Target,
		TargetWithCoverage: TargetWithCoverage,
		Profiles:           system.DefaultProfiles,
		StockBugs: []system.StockBug{
			{Match: "fwrite(NULL FILE*)", Note: "unchecked access-log fopen crashes the following fwrite (Apache class)"},
			{Match: "double unlock", Note: "double mutex unlock in the static handler's read-error recovery (Apache class)"},
		},
	})
}
