package miniweb

import (
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// Target adapts miniweb to the LFI controller (default suite workload).
// Each Start builds its own App, so the target is safe for concurrent
// campaign workers.
func Target() controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, app.RunSuite
		},
	}
}

// TargetWithCoverage is Target plus per-run coverage accumulation into
// acc — the explorer workflow, where every run's lcov-style data is
// merged before computing campaign coverage.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := New()
			return app.C, func() error {
				defer func() { acc.Merge(app.Cov) }()
				return app.RunSuite()
			}
		},
	}
}
