package miniweb

import (
	"sync"

	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
)

// pool recycles App instances across runs: Start draws a reset app,
// Recycle rewinds it after the controller has captured the outcome.
// Concurrent campaign workers each hold distinct apps, so the target
// stays safe for parallel campaigns while steady-state runs skip the
// full fixture staging of New.
var pool = sync.Pool{New: func() any { return New() }}

func acquire() *App { return pool.Get().(*App) }

func recycle(c *libsim.C) {
	if app, ok := c.Owner.(*App); ok {
		app.Reset()
		pool.Put(app)
	}
}

// Target adapts miniweb to the LFI controller (default suite workload).
func Target() controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := acquire()
			return app.C, app.suite
		},
		Recycle: recycle,
	}
}

// TargetWithCoverage is Target plus per-run coverage accumulation into
// acc — the explorer workflow, where every run's lcov-style data is
// merged before computing campaign coverage.
func TargetWithCoverage(acc *coverage.Tracker) controller.Target {
	return controller.Target{
		Name: Module,
		Start: func() (*libsim.C, func() error) {
			app := acquire()
			return app.C, func() error {
				defer func() { acc.Merge(app.Cov) }()
				return app.RunSuite()
			}
		},
		Recycle: recycle,
	}
}
