package miniweb

import (
	"testing"

	"lfi/internal/core"
)

func TestStaticRequests(t *testing.T) {
	app := New()
	if err := app.RunAB(50, false); err != nil {
		t.Fatal(err)
	}
	if app.Served() != 50 {
		t.Fatalf("served %d", app.Served())
	}
}

func TestPHPRequests(t *testing.T) {
	app := New()
	if err := app.RunAB(10, true); err != nil {
		t.Fatal(err)
	}
	if app.Served() != 10 {
		t.Fatalf("served %d", app.Served())
	}
}

func TestTable5ScenarioBounds(t *testing.T) {
	if _, err := Table5Scenario(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Table5Scenario(6); err == nil {
		t.Fatal("k=6 accepted")
	}
	for k := 1; k <= 5; k++ {
		s, err := Table5Scenario(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(s.Triggers) != k {
			t.Fatalf("k=%d: %d triggers", k, len(s.Triggers))
		}
		if !s.Functions[0].Observational() {
			t.Fatalf("k=%d: scenario would inject", k)
		}
	}
}

func TestTriggersEvaluateWithoutPerturbing(t *testing.T) {
	for k := 1; k <= 5; k++ {
		app := New()
		s, err := Table5Scenario(k)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := core.New(app.C, s)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		rt.Install()
		if err := app.RunAB(20, false); err != nil {
			t.Fatalf("k=%d: workload: %v", k, err)
		}
		rt.Uninstall()
		if rt.Injections() != 0 {
			t.Fatalf("k=%d: observational scenario injected", k)
		}
		if rt.Evals() == 0 {
			t.Fatalf("k=%d: triggers never evaluated", k)
		}
		if app.Served() != 20 {
			t.Fatalf("k=%d: served %d", k, app.Served())
		}
	}
}

func TestTriggerStackShortCircuits(t *testing.T) {
	// The first trigger (FDIsSocket) is false for file reads, so a
	// 5-trigger stack must evaluate only ~1 trigger per interception.
	app := New()
	s, err := Table5Scenario(5)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(app.C, s)
	if err != nil {
		t.Fatal(err)
	}
	rt.Install()
	if err := app.RunAB(10, false); err != nil {
		t.Fatal(err)
	}
	rt.Uninstall()
	reads := app.C.Disp.CallCount("apr_file_read")
	if rt.Evals() != reads {
		t.Fatalf("evals %d != apr_file_read count %d (short-circuit broken)", rt.Evals(), reads)
	}
}

func TestMethodNumberVar(t *testing.T) {
	app := New()
	if err := app.ServeStatic("/www/index.html", MethodPOST); err != nil {
		t.Fatal(err)
	}
	if v, ok := app.C.ReadVar("method_number"); !ok || v != MethodPOST {
		t.Fatalf("method_number = %d %v", v, ok)
	}
}

func TestMissingFileRecovered(t *testing.T) {
	app := New()
	if err := app.ServeStatic("/www/nope.html", MethodGET); err == nil {
		t.Fatal("missing file served")
	}
	if app.Cov.Recovery().BlocksCovered == 0 {
		t.Fatal("open recovery not exercised")
	}
}
