package callsite

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"lfi/internal/asm"
	"lfi/internal/libspec"
	"lfi/internal/profile"
)

// Property (DESIGN.md): for randomly generated programs, the analyzer's
// classification matches the ground truth derived from each site's
// checking style — except for the deliberately-planted obfuscations
// (hidden-indirect and beyond-window checks), where the analyzer must
// report Unchecked (the documented false positive), never Checked.
func TestPropertyAnalyzerMatchesGroundTruth(t *testing.T) {
	libc := profile.ProfileBinary(libspec.BuildLibc())

	// Callees with single-code E sets keep expected classes crisp.
	callees := []struct {
		fn   string
		code int64
	}{
		{"malloc", 0},
		{"close", -1},
		{"unlink", -1},
		{"setenv", -1},
		{"fclose", -1},
	}
	styles := []asm.CheckStyle{
		asm.CheckNone, asm.CheckEq, asm.CheckIneq, asm.CheckEqZero,
		asm.CheckEqViaCopy, asm.CheckIneqViaCopy,
		asm.CheckHiddenIndirect, asm.CheckBeyondWindow,
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nFuncs := 1 + rng.Intn(3)
		var specs []asm.FuncSpec
		label := 0
		for fi := 0; fi < nFuncs; fi++ {
			fn := asm.FuncSpec{Name: fmt.Sprintf("f%d", fi)}
			for si := 0; si < 1+rng.Intn(4); si++ {
				callee := callees[rng.Intn(len(callees))]
				style := styles[rng.Intn(len(styles))]
				codes := []int64{callee.code}
				if style == asm.CheckEqZero && callee.code != 0 {
					style = asm.CheckEq // test+je only checks 0
				}
				fn.Sites = append(fn.Sites, asm.SiteSpec{
					Label:  fmt.Sprintf("s%d", label),
					Callee: callee.fn,
					Style:  style,
					Codes:  codes,
					Filler: rng.Intn(8),
				})
				label++
			}
			specs = append(specs, fn)
		}
		bin, offs, err := asm.Program("prop", specs)
		if err != nil {
			return false
		}
		a := &Analyzer{}
		rep := a.Analyze(bin, libc)
		truth := TruthByOffset(specs, offs)
		for _, site := range rep.Sites {
			spec, ok := truth[site.Offset]
			if !ok {
				return false
			}
			switch spec.Style {
			case asm.CheckNone:
				if site.Class != Unchecked {
					t.Logf("seed %d: %s/%s style=%v class=%v", seed, spec.Label, spec.Callee, spec.Style, site.Class)
					return false
				}
			case asm.CheckHiddenIndirect, asm.CheckBeyondWindow:
				// The analyzer cannot see these checks; it must
				// flag them (a false positive), never miss a real
				// bug by calling them Checked.
				if site.Class == Checked {
					t.Logf("seed %d: obfuscated %s classified Checked", seed, spec.Label)
					return false
				}
			default:
				// Single-code E, directly checked: fully checked.
				if site.Class != Checked {
					t.Logf("seed %d: %s/%s style=%v class=%v eq=%v ineq=%v",
						seed, spec.Label, spec.Callee, spec.Style, site.Class, site.ChkEq, site.ChkIneq)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: scenario generation emits at least one valid scenario per
// unchecked site, and every scenario references only the profiled
// callee with a profile-sanctioned fault.
func TestPropertyGeneratedScenariosValid(t *testing.T) {
	libc := profile.ProfileBinary(libspec.BuildLibc())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sites []asm.SiteSpec
		for i := 0; i < 1+rng.Intn(5); i++ {
			sites = append(sites, asm.SiteSpec{
				Label:  fmt.Sprintf("u%d", i),
				Callee: []string{"malloc", "close", "read", "fopen"}[rng.Intn(4)],
				Style:  asm.CheckNone,
			})
		}
		bin, _, err := asm.Program("prop2", []asm.FuncSpec{{Name: "f", Sites: sites}})
		if err != nil {
			return false
		}
		a := &Analyzer{}
		rep := a.Analyze(bin, libc)
		_, _, not := rep.ByClass()
		if len(not) != len(sites) {
			return false
		}
		scens := GenerateScenarios(bin, not, libc)
		if len(scens) < len(sites) {
			return false
		}
		for _, s := range scens {
			if s.Validate() != nil {
				return false
			}
			rv, _, err := s.Functions[0].RetvalErrno()
			if err != nil {
				return false
			}
			fp := libc.Func(s.Functions[0].Name)
			if fp == nil {
				return false
			}
			okCode := false
			for _, c := range fp.ErrorCodes() {
				if c == rv {
					okCode = true
				}
			}
			if !okCode {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
