package callsite

import (
	"fmt"

	"lfi/internal/asm"
	"lfi/internal/isa"
)

// Accuracy measurement against ground truth (§7.2). The confusion
// matrix follows the paper:
//
//	                          actually checked | not actually checked
//	LFI says checked                 TN        |         FN
//	LFI says not checked             FP        |         TP
//
// "Checked" on the LFI side means classified C_yes; Partial and
// Unchecked both count as "error return is not checked" for the purpose
// of flagging a site as an injection target.
type Accuracy struct {
	Func           string
	TP, TN, FP, FN int
}

// Total returns the number of call sites measured.
func (a Accuracy) Total() int { return a.TP + a.TN + a.FP + a.FN }

// Value computes (TP+TN) / (TP+TN+FP+FN).
func (a Accuracy) Value() float64 {
	t := a.Total()
	if t == 0 {
		return 1
	}
	return float64(a.TP+a.TN) / float64(t)
}

// String renders one Table 4 row.
func (a Accuracy) String() string {
	return fmt.Sprintf("%-12s TP+TN=%3d FN=%d FP=%d accuracy=%3.0f%%",
		a.Func, a.TP+a.TN, a.FN, a.FP, 100*a.Value())
}

// MeasureAccuracy compares the analyzer's verdicts for one function
// against the ground-truth site specs the binary was assembled from.
// Sites whose spec label is absent from truth are skipped.
func MeasureAccuracy(fn string, sites []Site, truth map[uint64]asm.SiteSpec) Accuracy {
	acc := Accuracy{Func: fn}
	for _, s := range sites {
		spec, ok := truth[s.Offset]
		if !ok || spec.Callee != fn {
			continue
		}
		saysChecked := s.Class == Checked
		actuallyChecked := spec.Style.Checked()
		switch {
		case saysChecked && actuallyChecked:
			acc.TN++
		case saysChecked && !actuallyChecked:
			acc.FN++
		case !saysChecked && actuallyChecked:
			acc.FP++
		default:
			acc.TP++
		}
	}
	return acc
}

// TruthByOffset indexes an application's site specs by the offsets the
// assembler assigned, for accuracy measurement.
func TruthByOffset(specs []asm.FuncSpec, siteOffs map[string]uint64) map[uint64]asm.SiteSpec {
	out := make(map[uint64]asm.SiteSpec)
	for _, f := range specs {
		for _, s := range f.Sites {
			if off, ok := siteOffs[s.Label]; ok {
				out[off] = s
			}
		}
	}
	return out
}

// SiteAt finds the analyzed site at a given offset.
func SiteAt(sites []Site, off uint64) (Site, bool) {
	for _, s := range sites {
		if s.Offset == off {
			return s, true
		}
	}
	return Site{}, false
}

// EnclosingSymbolName is exported for tools that want to resolve a call
// site to its containing function (debug-symbol style reporting).
func EnclosingSymbolName(b *isa.Binary, off uint64) string { return enclosingSymbol(b, off) }
