// Package callsite implements the call site analyzer of §5 (Algorithm
// 1): it combs a target program binary for places where a library
// function is called, builds a partial control-flow graph of the
// instructions after each call, runs the dataflow analysis of package
// dataflow, and classifies each site as fully checked (C_yes), partially
// checked (C_part), or completely unchecked (C_not). From C_not and
// C_part it generates fault injection scenarios that use call-stack
// triggers aimed at the vulnerable sites.
package callsite

import (
	"fmt"
	"sort"

	"lfi/internal/cfg"
	"lfi/internal/dataflow"
	"lfi/internal/errno"
	"lfi/internal/isa"
	"lfi/internal/profile"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// Class is the Algorithm 1 classification of one call site.
type Class int

const (
	// Checked (C_yes): all error codes in E are checked by equality,
	// or an inequality check covers the range.
	Checked Class = iota
	// Partial (C_part): some but not all error codes in E are checked
	// by equality.
	Partial
	// Unchecked (C_not): no error code in E is checked, even if codes
	// outside E are.
	Unchecked
	// CheckedInCaller refines C_not interprocedurally (package
	// callgraph): the site is unchecked locally, but the returned value
	// provably propagates to the enclosing function's own return and
	// every direct caller checks it one frame up. The windowed Algorithm
	// 1 analyzer never produces this class.
	CheckedInCaller
	// Swallowed refines C_not interprocedurally (package callgraph):
	// the returned value is provably dropped — overwritten on every
	// path with no check, no store, and no propagation to the caller.
	// The windowed Algorithm 1 analyzer never produces this class.
	Swallowed
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Checked:
		return "checked"
	case Partial:
		return "partial"
	case Unchecked:
		return "unchecked"
	case CheckedInCaller:
		return "checked-in-caller"
	case Swallowed:
		return "swallowed"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Vulnerable reports whether a site of this class is an injection
// target: anything not known to be checked, locally or in a caller.
// Swallowed sites are vulnerable — the error is statically proven to be
// dropped — while CheckedInCaller sites are not.
func (c Class) Vulnerable() bool {
	return c == Unchecked || c == Partial || c == Swallowed
}

// Site is the analysis result for one call site.
type Site struct {
	Offset   uint64 // call instruction offset in the binary
	Callee   string // library function called
	Caller   string // enclosing symbol, when resolvable
	Class    Class
	Missing  []int64 // error codes in E not covered by checks
	ChkEq    []int64
	ChkIneq  []int64
	ErrnoChk []int64 // errno literals checked after this call
	Indirect bool    // the partial CFG hit indirect branches
}

// Report is the analysis of one binary against a set of fault profiles.
type Report struct {
	Binary *isa.Binary
	Sites  []Site
}

// ByClass partitions the report's sites — the <C_yes, C_part, C_not>
// triple Algorithm 1 returns.
func (r *Report) ByClass() (yes, part, not []Site) {
	for _, s := range r.Sites {
		switch s.Class {
		case Checked:
			yes = append(yes, s)
		case Partial:
			part = append(part, s)
		default:
			not = append(not, s)
		}
	}
	return
}

// Analyzer runs Algorithm 1 with configurable window size.
type Analyzer struct {
	// Window is the post-call instruction budget (default 100, the
	// paper's empirically sufficient value).
	Window int
}

// AnalyzeFunction implements Algorithm 1 for one target function F with
// error code set E, returning the classified call sites.
func (a *Analyzer) AnalyzeFunction(b *isa.Binary, fn string, E []int64) []Site {
	window := a.Window
	if window <= 0 {
		window = cfg.DefaultWindow
	}
	var sites []Site
	for _, off := range b.CallSites(fn) { // line 2: parse all calls to F in X
		g := cfg.BuildPartial(b, off+isa.InstSize, window) // line 4: partial CFG
		res := dataflow.Analyze(g)                         // line 5: dataflow
		s := Site{
			Offset:   off,
			Callee:   fn,
			Caller:   enclosingSymbol(b, off),
			ChkEq:    res.EqCodes(),
			ChkIneq:  res.IneqCodes(),
			ErrnoChk: res.ErrnoCodes(),
			Indirect: g.Indirect > 0,
		}
		s.Class, s.Missing = Classify(res, E) // lines 6-11
		sites = append(sites, s)
	}
	return sites
}

// Classify applies lines 6-11 of Algorithm 1 to a dataflow result,
// returning the class and the error codes in E not covered by checks.
// Exported so the interprocedural analyzer (package callgraph) can
// classify whole-function-bounded results under the same rules.
func Classify(res dataflow.Result, E []int64) (Class, []int64) {
	eqCovered := func(code int64) bool { return res.ChkEq[code] }
	allEq := true
	anyEq := false
	var missing []int64
	for _, code := range E {
		if eqCovered(code) {
			anyEq = true
		} else {
			allEq = false
			missing = append(missing, code)
		}
	}
	switch {
	case (len(E) > 0 && allEq) || len(res.ChkIneq) > 0:
		// Chk_eq ⊇ E  ∨  Chk_ineq ≠ ∅  (an inequality check is assumed
		// to cover the entire range of error codes).
		return Checked, nil
	case anyEq:
		// Chk_eq ≠ ∅ ∧ Chk_eq ⊂ E.
		return Partial, missing
	default:
		// Nothing in E is checked — even if codes outside E are.
		return Unchecked, missing
	}
}

// Analyze runs Algorithm 1 for every profiled function the binary
// imports, using each function's profile-derived error code set.
func (a *Analyzer) Analyze(b *isa.Binary, profiles ...*profile.Profile) *Report {
	rep := &Report{Binary: b}
	for _, p := range profiles {
		for _, fn := range p.FuncNames() {
			fp := p.Func(fn)
			E := fp.ErrorCodes()
			if len(E) == 0 {
				continue // nothing injectable for this function
			}
			if b.ImportIndex(fn) < 0 {
				continue
			}
			rep.Sites = append(rep.Sites, a.AnalyzeFunction(b, fn, E)...)
		}
	}
	sort.Slice(rep.Sites, func(i, j int) bool { return rep.Sites[i].Offset < rep.Sites[j].Offset })
	return rep
}

func enclosingSymbol(b *isa.Binary, off uint64) string {
	for _, s := range b.Symbols {
		if off >= s.Off && off < s.Off+s.Size {
			return s.Name
		}
	}
	return ""
}

// --- scenario generation ---------------------------------------------------

// lookupErrnos finds the errno side effects for (callee, code) across
// the given profiles.
func lookupErrnos(ps []*profile.Profile, callee string, code int64) []errno.Errno {
	for _, p := range ps {
		if fp := p.Func(callee); fp != nil {
			if es := fp.ErrnosFor(code); len(es) > 0 {
				return es
			}
		}
	}
	return nil
}

// GenerateScenarios produces one injection scenario per (vulnerable
// site, missing error code, errno side effect), each using a call-stack
// trigger pinned to the site's module and offset composed with a
// singleton so each test run injects the fault once. The sites argument
// is typically C_not first, then C_part (§5: testers exhaust C_not
// before moving on).
func GenerateScenarios(b *isa.Binary, sites []Site, profiles ...*profile.Profile) []*scenario.Scenario {
	var out []*scenario.Scenario
	for _, s := range sites {
		for _, code := range s.Missing {
			errnos := lookupErrnos(profiles, s.Callee, code)
			if len(errnos) == 0 {
				errnos = []errno.Errno{errno.OK}
			}
			for _, e := range errnos {
				name := fmt.Sprintf("%s-%s-%x-%d-%s", b.Name, s.Callee, s.Offset, code, e)
				bld := scenario.NewBuilder(name)
				csID := bld.Trigger(fmt.Sprintf("%x", s.Offset), "CallStackTrigger",
					frameArgs(b.Name, s.Offset))
				onceID := bld.Trigger("once", "SingletonTrigger", nil)
				bld.Inject(s.Callee, 0, code, e, csID, onceID)
				sc, err := bld.Build()
				if err != nil {
					// Generated scenarios are well-formed by construction.
					panic(err)
				}
				out = append(out, sc)
			}
		}
	}
	return out
}

// GenerateExercise produces recovery-exercising scenarios for CHECKED
// sites: one scenario per (site, error code in E, errno). Injecting at a
// checked site runs its recovery code — this is how the coverage
// campaign of Table 3 exercises recovery blocks, and how recovery-code
// bugs behind correct checks (BIND's dst_lib_init, MySQL's mi_create)
// surface.
func GenerateExercise(b *isa.Binary, sites []Site, profiles ...*profile.Profile) []*scenario.Scenario {
	var out []*scenario.Scenario
	for _, s := range sites {
		if s.Class != Checked {
			continue
		}
		codes := s.ChkEq
		if len(codes) == 0 {
			// Inequality-checked: use the profile's error codes.
			for _, p := range profiles {
				if fp := p.Func(s.Callee); fp != nil {
					codes = fp.ErrorCodes()
					break
				}
			}
		}
		for _, code := range codes {
			errnos := lookupErrnos(profiles, s.Callee, code)
			if len(errnos) == 0 {
				errnos = []errno.Errno{errno.OK}
			}
			name := fmt.Sprintf("exercise-%s-%s-%x-%d-%s", b.Name, s.Callee, s.Offset, code, errnos[0])
			bld := scenario.NewBuilder(name)
			csID := bld.Trigger(fmt.Sprintf("%x", s.Offset), "CallStackTrigger",
				frameArgs(b.Name, s.Offset))
			onceID := bld.Trigger("once", "SingletonTrigger", nil)
			bld.Inject(s.Callee, 0, code, errnos[0], csID, onceID)
			sc, err := bld.Build()
			if err != nil {
				panic(err)
			}
			out = append(out, sc)
		}
	}
	return out
}

func frameArgs(module string, off uint64) *trigger.Args {
	return &trigger.Args{
		Name: "args",
		Children: []*trigger.Args{{
			Name: "frame",
			Children: []*trigger.Args{
				{Name: "module", Text: module},
				{Name: "offset", Text: fmt.Sprintf("%x", off)},
			},
		}},
	}
}
