package callsite

import (
	"strings"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/errno"
	"lfi/internal/libspec"
	"lfi/internal/profile"
)

// testProgram assembles a program exercising every checking style
// against libc functions, returning the binary, site offsets, and specs.
func testProgram(t *testing.T) (*Report, map[string]uint64, []asm.FuncSpec) {
	t.Helper()
	specs := []asm.FuncSpec{
		{Name: "load_config", Sites: []asm.SiteSpec{
			{Label: "read_full", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1, 0}},
			{Label: "read_part", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}},
			{Label: "read_none", Callee: "read", Style: asm.CheckNone},
			{Label: "read_sign", Callee: "read", Style: asm.CheckIneq},
		}},
		{Name: "init_tables", Sites: []asm.SiteSpec{
			{Label: "malloc_ok", Callee: "malloc", Style: asm.CheckEqZero},
			{Label: "malloc_bad", Callee: "malloc", Style: asm.CheckNone},
			{Label: "malloc_copy", Callee: "malloc", Style: asm.CheckEqViaCopy, Codes: []int64{0}},
		}},
		{Name: "shutdown", Sites: []asm.SiteSpec{
			{Label: "close_sign", Callee: "close", Style: asm.CheckIneqViaCopy},
			{Label: "close_none", Callee: "close", Style: asm.CheckNone},
			{Label: "open_hidden", Callee: "open", Style: asm.CheckHiddenIndirect, Codes: []int64{-1}},
		}},
	}
	bin, sites, err := asm.Program("app", specs)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.ProfileBinary(libspec.BuildLibc())
	a := &Analyzer{}
	return a.Analyze(bin, p), sites, specs
}

func classOf(t *testing.T, rep *Report, sites map[string]uint64, label string) Class {
	t.Helper()
	s, ok := SiteAt(rep.Sites, sites[label])
	if !ok {
		t.Fatalf("site %s not analyzed", label)
	}
	return s.Class
}

func TestAlgorithm1Classification(t *testing.T) {
	rep, sites, _ := testProgram(t)
	cases := map[string]Class{
		"read_full":   Checked, // Chk_eq ⊇ {-1, 0}
		"read_part":   Partial, // only -1 of {-1, 0}
		"read_none":   Unchecked,
		"read_sign":   Checked, // Chk_ineq ≠ ∅
		"malloc_ok":   Checked, // NULL check covers E = {0}
		"malloc_bad":  Unchecked,
		"malloc_copy": Checked,
		"close_sign":  Checked,
		"close_none":  Unchecked,
		"open_hidden": Unchecked, // the analyzer cannot see it (known FP)
	}
	for label, want := range cases {
		if got := classOf(t, rep, sites, label); got != want {
			t.Errorf("%s: class %v, want %v", label, got, want)
		}
	}
}

func TestMissingCodes(t *testing.T) {
	rep, sites, _ := testProgram(t)
	s, _ := SiteAt(rep.Sites, sites["read_part"])
	if len(s.Missing) != 1 || s.Missing[0] != 0 {
		t.Fatalf("read_part missing = %v, want [0]", s.Missing)
	}
	s, _ = SiteAt(rep.Sites, sites["read_none"])
	if len(s.Missing) != 2 {
		t.Fatalf("read_none missing = %v", s.Missing)
	}
}

func TestCallerAttribution(t *testing.T) {
	rep, sites, _ := testProgram(t)
	s, _ := SiteAt(rep.Sites, sites["malloc_bad"])
	if s.Caller != "init_tables" {
		t.Fatalf("caller = %q", s.Caller)
	}
}

func TestIndirectFlagged(t *testing.T) {
	rep, sites, _ := testProgram(t)
	s, _ := SiteAt(rep.Sites, sites["open_hidden"])
	if !s.Indirect {
		t.Fatal("indirect branch not flagged")
	}
}

func TestByClassPartition(t *testing.T) {
	rep, _, _ := testProgram(t)
	yes, part, not := rep.ByClass()
	if len(yes)+len(part)+len(not) != len(rep.Sites) {
		t.Fatal("partition lost sites")
	}
	if len(part) != 1 || len(not) != 4 {
		t.Fatalf("partition sizes yes=%d part=%d not=%d", len(yes), len(part), len(not))
	}
}

func TestAccuracyMatchesTable4Shape(t *testing.T) {
	rep, sites, specs := testProgram(t)
	truth := TruthByOffset(specs, sites)

	// malloc: all three sites classified correctly -> 100%.
	acc := MeasureAccuracy("malloc", rep.Sites, truth)
	if acc.Total() != 3 || acc.Value() != 1.0 || acc.FP != 0 {
		t.Fatalf("malloc accuracy %+v", acc)
	}
	// open: one hidden-indirect site -> one FP, like BIND's open row.
	acc = MeasureAccuracy("open", rep.Sites, truth)
	if acc.FP != 1 || acc.Value() != 0 {
		t.Fatalf("open accuracy %+v", acc)
	}
	// read: 4 sites, all correct (partial counts as not-checked=target).
	acc = MeasureAccuracy("read", rep.Sites, truth)
	if acc.Total() != 4 || acc.FN != 0 {
		t.Fatalf("read accuracy %+v", acc)
	}
	if !strings.Contains(acc.String(), "accuracy") {
		t.Fatal("String() malformed")
	}
}

func TestGenerateScenarios(t *testing.T) {
	rep, sites, _ := testProgram(t)
	p := profile.ProfileBinary(libspec.BuildLibc())
	_, part, not := rep.ByClass()
	scens := GenerateScenarios(rep.Binary, append(not, part...), p)
	if len(scens) == 0 {
		t.Fatal("no scenarios generated")
	}
	// Every scenario must validate and inject a profile-sanctioned fault.
	foundMallocNull := false
	for _, sc := range scens {
		if err := sc.Validate(); err != nil {
			t.Fatalf("generated scenario invalid: %v\n%s", err, sc.Serialize())
		}
		fa := sc.Functions[0]
		rv, e, err := fa.RetvalErrno()
		if err != nil {
			t.Fatal(err)
		}
		if fa.Name == "malloc" && rv == 0 && e == errno.ENOMEM {
			foundMallocNull = true
		}
		if len(fa.Refs) != 2 {
			t.Fatalf("scenario should compose call-stack + singleton: %v", fa.Refs)
		}
	}
	if !foundMallocNull {
		t.Fatal("no malloc NULL/ENOMEM scenario for the unchecked malloc site")
	}
	// The unchecked read site (E = {-1,0}, 4 errnos on -1 + bare 0)
	// should contribute 5 scenarios; verify scenario count scales.
	siteScens := 0
	readOff := sites["read_none"]
	for _, sc := range scens {
		if strings.Contains(sc.Name, "read") && strings.Contains(sc.Name, "-"+hex(readOff)+"-") {
			siteScens++
		}
	}
	if siteScens != 5 {
		t.Fatalf("read_none scenarios = %d, want 5", siteScens)
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v&0xF]}, b...)
		v >>= 4
	}
	return string(b)
}

func TestWindowOption(t *testing.T) {
	// A site checked beyond a tiny window must classify Unchecked
	// under that window but Checked under a large one.
	specs := []asm.FuncSpec{{Name: "f", Sites: []asm.SiteSpec{
		{Label: "s", Callee: "close", Style: asm.CheckEq, Codes: []int64{-1}, Filler: 30},
	}}}
	bin, sites, err := asm.Program("app", specs)
	if err != nil {
		t.Fatal(err)
	}
	small := &Analyzer{Window: 10}
	big := &Analyzer{Window: 200}
	sSmall := small.AnalyzeFunction(bin, "close", []int64{-1})
	sBig := big.AnalyzeFunction(bin, "close", []int64{-1})
	s1, _ := SiteAt(sSmall, sites["s"])
	s2, _ := SiteAt(sBig, sites["s"])
	if s1.Class != Unchecked || s2.Class != Checked {
		t.Fatalf("window effect: small=%v big=%v", s1.Class, s2.Class)
	}
}

func TestClassStrings(t *testing.T) {
	if Checked.String() != "checked" || Partial.String() != "partial" || Unchecked.String() != "unchecked" {
		t.Fatal("class names")
	}
}
