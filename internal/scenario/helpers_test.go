package scenario

import (
	"bytes"
	"io"

	"lfi/internal/trigger"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// normalize strips fields that are semantically irrelevant to round-trip
// equality: Attr maps on args nodes default to empty vs nil after
// serialization, and argument text whitespace is trimmed by the parser.
func normalize(s *Scenario) *Scenario {
	out := &Scenario{Name: s.Name}
	for _, td := range s.Triggers {
		out.Triggers = append(out.Triggers, TriggerDecl{
			ID: td.ID, Class: td.Class, Args: normalizeArgs(td.Args),
		})
	}
	out.Functions = append(out.Functions, s.Functions...)
	return out
}

func normalizeArgs(a *trigger.Args) *trigger.Args {
	if a == nil || (len(a.Children) == 0 && a.Text == "") {
		return nil
	}
	n := &trigger.Args{Name: a.Name, Text: a.Text}
	for _, c := range a.Children {
		if nc := normalizeArgs(c); nc != nil {
			n.Children = append(n.Children, nc)
		} else {
			n.Children = append(n.Children, &trigger.Args{Name: c.Name, Text: c.Text})
		}
	}
	return n
}
