// Package scenario implements LFI's XML-based fault injection language
// (§4 of the paper).
//
// A scenario has two constructs: trigger declarations, which make a
// trigger class known to LFI and create a named, optionally parametrized
// instance; and function associations, which link trigger instances to
// an intercepted library function together with the fault to inject
// (return value and errno side effect).
//
// Composition follows §4.2: all <reftrigger> elements inside one
// <function> form a conjunction; repeating <function> elements for the
// same function name forms a disjunction; a reftrigger may carry
// negate="true" to invert one conjunct.
//
// Associations whose return or errno attribute is "unused" never inject;
// they exist so stateful triggers observe calls (e.g. a WithMutex
// instance watching pthread_mutex_lock/unlock).
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"lfi/internal/errno"
	"lfi/internal/trigger"
)

// Unused is the attribute value marking observation-only associations.
const Unused = "unused"

// TriggerDecl declares a named trigger instance of a registered class,
// with an optional <args> parameter tree passed to the trigger's Init.
type TriggerDecl struct {
	ID    string
	Class string
	Args  *trigger.Args
}

// TriggerRef references a declared trigger from a function association.
type TriggerRef struct {
	Ref    string
	Negate bool
}

// FunctionAssoc associates trigger instances (a conjunction) with one
// intercepted function and the fault to inject when they all fire.
type FunctionAssoc struct {
	Name   string
	Argc   int
	Return string // decimal/hex value, or Unused
	Errno  string // symbolic errno name, or Unused
	Refs   []TriggerRef
}

// Observational reports whether this association can ever inject.
func (f *FunctionAssoc) Observational() bool {
	return f.Return == Unused || f.Return == ""
}

// RetvalErrno decodes the injected fault. It must not be called on
// observational associations.
func (f *FunctionAssoc) RetvalErrno() (int64, errno.Errno, error) {
	rv, err := strconv.ParseInt(strings.TrimSpace(f.Return), 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("scenario: function %q: bad return %q", f.Name, f.Return)
	}
	if f.Errno == "" || f.Errno == Unused {
		return rv, errno.OK, nil
	}
	e, ok := errno.Parse(f.Errno)
	if !ok {
		return 0, 0, fmt.Errorf("scenario: function %q: unknown errno %q", f.Name, f.Errno)
	}
	return rv, e, nil
}

// Scenario is a complete fault injection scenario.
//
// The canon/canonHash fields cache the canonical serialized form and
// its content hash. They are written exactly once, by seal(), before
// the scenario escapes Build or Parse — after that the scenario is
// treated as immutable, so concurrent readers (wire encoders on
// parallel fleet backends) need no synchronization. Hand-constructed
// literals skip the cache and recompute per call.
type Scenario struct {
	Name      string
	Triggers  []TriggerDecl
	Functions []FunctionAssoc

	canon     []byte
	canonHash string
}

// FindTrigger returns the declaration with the given id, or nil.
func (s *Scenario) FindTrigger(id string) *TriggerDecl {
	for i := range s.Triggers {
		if s.Triggers[i].ID == id {
			return &s.Triggers[i]
		}
	}
	return nil
}

// isXMLName reports whether s can serve as an XML element or attribute
// name in a serialized scenario: an ASCII name-start character (letter
// or '_') followed by ASCII name characters, with ':' excluded because
// XML parsers treat it as a namespace separator and rewrite the name.
// Serialize writes Args names and attribute keys verbatim, so a name
// outside this grammar (a digit-leading key like "0", or "A:0", both
// found by FuzzRoundTrip) would produce a document that does not read
// back — Validate rejects it up front instead.
func isXMLName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		nameStart := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if i == 0 && !nameStart {
			return false
		}
		if !nameStart && r != '-' && r != '.' && !(r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// validateArgs walks a trigger's parameter tree checking every element
// name and attribute key is serializable.
func validateArgs(id string, a *trigger.Args) error {
	if a == nil {
		return nil
	}
	if !isXMLName(a.Name) {
		return fmt.Errorf("scenario: trigger %q: args element name %q is not a valid XML name", id, a.Name)
	}
	for k := range a.Attr {
		if !isXMLName(k) {
			return fmt.Errorf("scenario: trigger %q: args attribute name %q is not a valid XML name", id, k)
		}
	}
	for _, c := range a.Children {
		if err := validateArgs(id, c); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks referential integrity and fault encodings: every
// reftrigger resolves, trigger ids are unique, trigger classes exist in
// the registry, every args tree is serializable, and every injecting
// association has a decodable fault.
func (s *Scenario) Validate() error {
	seen := make(map[string]bool, len(s.Triggers))
	for _, td := range s.Triggers {
		if td.ID == "" {
			return fmt.Errorf("scenario: trigger with empty id")
		}
		if seen[td.ID] {
			return fmt.Errorf("scenario: duplicate trigger id %q", td.ID)
		}
		seen[td.ID] = true
		if _, err := trigger.New(td.Class); err != nil {
			return err
		}
		if err := validateArgs(td.ID, td.Args); err != nil {
			return err
		}
	}
	for i := range s.Functions {
		fa := &s.Functions[i]
		if fa.Name == "" {
			return fmt.Errorf("scenario: function association with empty name")
		}
		if len(fa.Refs) == 0 {
			return fmt.Errorf("scenario: function %q has no reftrigger", fa.Name)
		}
		for _, r := range fa.Refs {
			if !seen[r.Ref] {
				return fmt.Errorf("scenario: function %q references unknown trigger %q", fa.Name, r.Ref)
			}
		}
		if !fa.Observational() {
			if _, _, err := fa.RetvalErrno(); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- builder ----------------------------------------------------------------

// Builder assembles scenarios programmatically; the call-site analyzer
// and tests use it instead of string-pasting XML.
type Builder struct {
	s Scenario
}

// NewBuilder starts a scenario with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{s: Scenario{Name: name}}
}

// Trigger declares a trigger instance and returns its id for chaining.
func (b *Builder) Trigger(id, class string, args *trigger.Args) string {
	b.s.Triggers = append(b.s.Triggers, TriggerDecl{ID: id, Class: class, Args: args})
	return id
}

// Inject associates refs (a conjunction) with fn and the fault (retval, e).
func (b *Builder) Inject(fn string, argc int, retval int64, e errno.Errno, refs ...string) *Builder {
	fa := FunctionAssoc{
		Name:   fn,
		Argc:   argc,
		Return: strconv.FormatInt(retval, 10),
		Errno:  e.String(),
	}
	for _, r := range refs {
		fa.Refs = append(fa.Refs, TriggerRef{Ref: r})
	}
	b.s.Functions = append(b.s.Functions, fa)
	return b
}

// Observe associates refs with fn without ever injecting, so stateful
// triggers can watch the calls.
func (b *Builder) Observe(fn string, refs ...string) *Builder {
	fa := FunctionAssoc{Name: fn, Return: Unused, Errno: Unused}
	for _, r := range refs {
		fa.Refs = append(fa.Refs, TriggerRef{Ref: r})
	}
	b.s.Functions = append(b.s.Functions, fa)
	return b
}

// Build validates, seals (caching the canonical form and content
// hash), and returns the scenario.
func (b *Builder) Build() (*Scenario, error) {
	s := b.s
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.seal()
	return &s, nil
}

// IntArgs builds a one-level <args> tree from key/value pairs, a
// convenience for parametrized triggers.
func IntArgs(kv ...any) *trigger.Args {
	a := &trigger.Args{Name: "args"}
	for i := 0; i+1 < len(kv); i += 2 {
		a.Children = append(a.Children, &trigger.Args{
			Name: kv[i].(string),
			Text: fmt.Sprint(kv[i+1]),
		})
	}
	return a
}

// BurstArgs builds the <from>/<to> argument tree of a CallCountTrigger
// occurrence window — the burst form ("inject on calls from..to") used
// by the DoS study and by the explorer's window mutants.
func BurstArgs(from, to uint64) *trigger.Args {
	return IntArgs("from", from, "to", to)
}
