package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lfi/internal/trigger"
)

// This file parses and serializes the XML surface syntax. Scenarios are
// both human- and machine-readable (§4.1); the analyzer emits them and
// testers edit them, so round-tripping must be lossless for the fields
// the language defines.

// Parse reads a scenario document. The root element may be <scenario>
// (with an optional name attribute); for compatibility with the paper's
// fragment style, a document consisting of bare <trigger>/<function>
// elements wrapped in any root is also accepted.
func Parse(r io.Reader) (*Scenario, error) {
	root, err := decodeTree(xml.NewDecoder(r))
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("scenario: empty document")
	}
	s := &Scenario{Name: root.Attr["name"]}
	for _, el := range root.Children {
		switch el.Name {
		case "trigger":
			td := TriggerDecl{ID: el.Attr["id"], Class: el.Attr["class"]}
			if args := el.Child("args"); args != nil {
				td.Args = args
			}
			s.Triggers = append(s.Triggers, td)
		case "function":
			fa := FunctionAssoc{
				Name:  el.Attr["name"],
				Errno: el.Attr["errno"],
			}
			// The paper uses both return= and retval= (compare §4.1
			// with the PBFT fragment in §7.1); accept either.
			fa.Return = el.Attr["return"]
			if fa.Return == "" {
				fa.Return = el.Attr["retval"]
			}
			if v := el.Attr["argc"]; v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("scenario: function %q: bad argc %q", fa.Name, v)
				}
				fa.Argc = n
			}
			for _, ref := range el.ChildrenNamed("reftrigger") {
				fa.Refs = append(fa.Refs, TriggerRef{
					Ref:    ref.Attr["ref"],
					Negate: ref.Attr["negate"] == "true",
				})
			}
			s.Functions = append(s.Functions, fa)
		}
	}
	s.seal()
	return s, nil
}

// ParseString is Parse over a string.
func ParseString(doc string) (*Scenario, error) {
	return Parse(strings.NewReader(doc))
}

// decodeTree reads one XML document into the generic Args tree that
// triggers consume (the xmlNodePtr analogue).
func decodeTree(dec *xml.Decoder) (*trigger.Args, error) {
	var stack []*trigger.Args
	var root *trigger.Args
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &trigger.Args{Name: t.Name.Local, Attr: map[string]string{}}
			for _, a := range t.Attr {
				n.Attr[a.Name.Local] = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("scenario: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("scenario: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += strings.TrimSpace(string(t))
			}
		}
	}
	return root, nil
}

// Serialize returns the scenario as an XML document with a <scenario>
// root. The output is byte-deterministic and parses back to an equal
// Scenario. Scenarios built by Build or Parse return their sealed
// canonical bytes without re-serializing; callers must not modify the
// returned slice.
func (s *Scenario) Serialize() []byte {
	if s.canon != nil {
		return s.canon
	}
	return s.serialize()
}

// ContentHash returns the hex of the first 8 bytes of the SHA-256 of
// the canonical serialized form — the scenario-identity half of every
// store key. Sealed scenarios answer from cache.
func (s *Scenario) ContentHash() string {
	if s.canonHash != "" {
		return s.canonHash
	}
	sum := sha256.Sum256(s.Serialize())
	return hex.EncodeToString(sum[:8])
}

// seal computes and caches the canonical form and content hash. It
// must be called before the scenario is shared across goroutines and
// the scenario must not be mutated afterwards.
func (s *Scenario) seal() {
	s.canon = s.serialize()
	sum := sha256.Sum256(s.canon)
	s.canonHash = hex.EncodeToString(sum[:8])
}

// serialize materializes the canonical XML document.
func (s *Scenario) serialize() []byte {
	var b bytes.Buffer
	b.WriteString("<scenario")
	if s.Name != "" {
		writeAttr(&b, "name", s.Name)
	}
	b.WriteString(">\n")
	for _, td := range s.Triggers {
		b.WriteString("  <trigger")
		writeAttr(&b, "id", td.ID)
		writeAttr(&b, "class", td.Class)
		if td.Args == nil {
			b.WriteString(" />\n")
			continue
		}
		b.WriteString(">\n")
		writeArgs(&b, td.Args, 4)
		b.WriteString("  </trigger>\n")
	}
	for _, fa := range s.Functions {
		b.WriteString("  <function")
		writeAttr(&b, "name", fa.Name)
		if fa.Argc > 0 {
			writeAttr(&b, "argc", strconv.Itoa(fa.Argc))
		}
		writeAttr(&b, "return", fa.Return)
		writeAttr(&b, "errno", fa.Errno)
		b.WriteString(">\n")
		for _, r := range fa.Refs {
			b.WriteString("    <reftrigger")
			writeAttr(&b, "ref", r.Ref)
			if r.Negate {
				writeAttr(&b, "negate", "true")
			}
			b.WriteString(" />\n")
		}
		b.WriteString("  </function>\n")
	}
	b.WriteString("</scenario>\n")
	return b.Bytes()
}

// writeAttr writes one attribute with XML escaping. Newlines, carriage
// returns and tabs must be written as character references — a parser
// normalizes the literal characters to spaces inside attribute values.
func writeAttr(b *bytes.Buffer, name, value string) {
	b.WriteByte(' ')
	b.WriteString(name)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#xA;")
		case '\r':
			b.WriteString("&#xD;")
		case '\t':
			b.WriteString("&#x9;")
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}

func writeArgs(b *bytes.Buffer, n *trigger.Args, indent int) {
	pad := strings.Repeat(" ", indent)
	fmt.Fprintf(b, "%s<%s", pad, n.Name)
	keys := make([]string, 0, len(n.Attr))
	for k := range n.Attr {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeAttr(b, k, n.Attr[k])
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString(" />\n")
		return
	}
	b.WriteString(">")
	if n.Text != "" {
		xml.EscapeText(b, []byte(n.Text))
	}
	if len(n.Children) > 0 {
		b.WriteString("\n")
		for _, c := range n.Children {
			writeArgs(b, c, indent+2)
		}
		b.WriteString(pad)
	}
	fmt.Fprintf(b, "</%s>\n", n.Name)
}
