package scenario

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lfi/internal/trigger"
)

// This file parses and serializes the XML surface syntax. Scenarios are
// both human- and machine-readable (§4.1); the analyzer emits them and
// testers edit them, so round-tripping must be lossless for the fields
// the language defines.

// Parse reads a scenario document. The root element may be <scenario>
// (with an optional name attribute); for compatibility with the paper's
// fragment style, a document consisting of bare <trigger>/<function>
// elements wrapped in any root is also accepted.
func Parse(r io.Reader) (*Scenario, error) {
	root, err := decodeTree(xml.NewDecoder(r))
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("scenario: empty document")
	}
	s := &Scenario{Name: root.Attr["name"]}
	for _, el := range root.Children {
		switch el.Name {
		case "trigger":
			td := TriggerDecl{ID: el.Attr["id"], Class: el.Attr["class"]}
			if args := el.Child("args"); args != nil {
				td.Args = args
			}
			s.Triggers = append(s.Triggers, td)
		case "function":
			fa := FunctionAssoc{
				Name:  el.Attr["name"],
				Errno: el.Attr["errno"],
			}
			// The paper uses both return= and retval= (compare §4.1
			// with the PBFT fragment in §7.1); accept either.
			fa.Return = el.Attr["return"]
			if fa.Return == "" {
				fa.Return = el.Attr["retval"]
			}
			if v := el.Attr["argc"]; v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("scenario: function %q: bad argc %q", fa.Name, v)
				}
				fa.Argc = n
			}
			for _, ref := range el.ChildrenNamed("reftrigger") {
				fa.Refs = append(fa.Refs, TriggerRef{
					Ref:    ref.Attr["ref"],
					Negate: ref.Attr["negate"] == "true",
				})
			}
			s.Functions = append(s.Functions, fa)
		}
	}
	return s, nil
}

// ParseString is Parse over a string.
func ParseString(doc string) (*Scenario, error) {
	return Parse(strings.NewReader(doc))
}

// decodeTree reads one XML document into the generic Args tree that
// triggers consume (the xmlNodePtr analogue).
func decodeTree(dec *xml.Decoder) (*trigger.Args, error) {
	var stack []*trigger.Args
	var root *trigger.Args
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &trigger.Args{Name: t.Name.Local, Attr: map[string]string{}}
			for _, a := range t.Attr {
				n.Attr[a.Name.Local] = a.Value
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("scenario: multiple root elements")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("scenario: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += strings.TrimSpace(string(t))
			}
		}
	}
	return root, nil
}

// Serialize writes the scenario as an XML document with a <scenario>
// root. The output parses back to an equal Scenario.
func (s *Scenario) Serialize() []byte {
	var b bytes.Buffer
	b.WriteString("<scenario")
	if s.Name != "" {
		fmt.Fprintf(&b, " name=%q", s.Name)
	}
	b.WriteString(">\n")
	for _, td := range s.Triggers {
		fmt.Fprintf(&b, "  <trigger id=%q class=%q", td.ID, td.Class)
		if td.Args == nil || len(td.Args.Children) == 0 {
			b.WriteString(" />\n")
			continue
		}
		b.WriteString(">\n")
		writeArgs(&b, td.Args, 4)
		b.WriteString("  </trigger>\n")
	}
	for _, fa := range s.Functions {
		fmt.Fprintf(&b, "  <function name=%q", fa.Name)
		if fa.Argc > 0 {
			fmt.Fprintf(&b, " argc=%q", strconv.Itoa(fa.Argc))
		}
		fmt.Fprintf(&b, " return=%q errno=%q>\n", fa.Return, fa.Errno)
		for _, r := range fa.Refs {
			if r.Negate {
				fmt.Fprintf(&b, "    <reftrigger ref=%q negate=\"true\" />\n", r.Ref)
			} else {
				fmt.Fprintf(&b, "    <reftrigger ref=%q />\n", r.Ref)
			}
		}
		b.WriteString("  </function>\n")
	}
	b.WriteString("</scenario>\n")
	return b.Bytes()
}

func writeArgs(b *bytes.Buffer, n *trigger.Args, indent int) {
	pad := strings.Repeat(" ", indent)
	fmt.Fprintf(b, "%s<%s", pad, n.Name)
	for k, v := range n.Attr {
		fmt.Fprintf(b, " %s=%q", k, v)
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString(" />\n")
		return
	}
	b.WriteString(">")
	if n.Text != "" {
		xml.EscapeText(b, []byte(n.Text))
	}
	if len(n.Children) > 0 {
		b.WriteString("\n")
		for _, c := range n.Children {
			writeArgs(b, c, indent+2)
		}
		b.WriteString(pad)
	}
	fmt.Fprintf(b, "</%s>\n", n.Name)
}
