package scenario

import (
	"reflect"
	"testing"

	"lfi/internal/errno"
)

// paperExample is the pipe-read composition scenario from §4.2, with the
// classes mapped to our registered equivalents.
const paperExample = `
<scenario name="pipe-read">
  <trigger id="readTrig2" class="ReadPipe">
    <args>
      <low>1024</low>
      <high>4096</high>
    </args>
  </trigger>
  <trigger id="mutexTrig" class="WithMutex" />
  <function name="read" argc="3" return="-1" errno="EINVAL">
    <reftrigger ref="readTrig2" />
    <reftrigger ref="mutexTrig" />
  </function>
  <function name="pthread_mutex_lock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig" />
  </function>
  <function name="pthread_mutex_unlock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig" />
  </function>
</scenario>`

func TestParsePaperExample(t *testing.T) {
	s, err := ParseString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "pipe-read" {
		t.Errorf("name = %q", s.Name)
	}
	if len(s.Triggers) != 2 || len(s.Functions) != 3 {
		t.Fatalf("parsed %d triggers, %d functions", len(s.Triggers), len(s.Functions))
	}
	td := s.FindTrigger("readTrig2")
	if td == nil || td.Class != "ReadPipe" {
		t.Fatalf("readTrig2 = %+v", td)
	}
	if td.Args.Int("low", 0) != 1024 || td.Args.Int("high", 0) != 4096 {
		t.Fatal("args not parsed")
	}
	read := s.Functions[0]
	if read.Name != "read" || read.Argc != 3 || len(read.Refs) != 2 {
		t.Fatalf("read assoc: %+v", read)
	}
	rv, e, err := read.RetvalErrno()
	if err != nil || rv != -1 || e != errno.EINVAL {
		t.Fatalf("fault = %d/%v/%v", rv, e, err)
	}
	if !s.Functions[1].Observational() {
		t.Fatal("unused association not observational")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseRetvalAttribute(t *testing.T) {
	// §7.1's PBFT fragment uses retval= rather than return=.
	doc := `<scenario>
	  <trigger id="t" class="SingletonTrigger" />
	  <function name="fopen" retval="0" errno="EINVAL">
	    <reftrigger ref="t" />
	  </function>
	</scenario>`
	s, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	rv, e, err := s.Functions[0].RetvalErrno()
	if err != nil || rv != 0 || e != errno.EINVAL {
		t.Fatalf("fault = %d/%v/%v", rv, e, err)
	}
}

func TestParseNegate(t *testing.T) {
	doc := `<scenario>
	  <trigger id="nb" class="NonBlockingFD" />
	  <function name="read" return="-1" errno="EAGAIN">
	    <reftrigger ref="nb" negate="true" />
	  </function>
	</scenario>`
	s, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Functions[0].Refs[0].Negate {
		t.Fatal("negate lost")
	}
}

func TestValidateDanglingRef(t *testing.T) {
	doc := `<scenario>
	  <trigger id="a" class="SingletonTrigger" />
	  <function name="read" return="-1" errno="EIO">
	    <reftrigger ref="ghost" />
	  </function>
	</scenario>`
	s, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err == nil {
		t.Fatal("dangling ref accepted")
	}
}

func TestValidateUnknownClass(t *testing.T) {
	doc := `<scenario>
	  <trigger id="a" class="Imaginary" />
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="a" /></function>
	</scenario>`
	s, _ := ParseString(doc)
	if err := s.Validate(); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestValidateDuplicateID(t *testing.T) {
	doc := `<scenario>
	  <trigger id="a" class="SingletonTrigger" />
	  <trigger id="a" class="SingletonTrigger" />
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="a" /></function>
	</scenario>`
	s, _ := ParseString(doc)
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate trigger id accepted")
	}
}

func TestValidateBadErrno(t *testing.T) {
	doc := `<scenario>
	  <trigger id="a" class="SingletonTrigger" />
	  <function name="read" return="-1" errno="EWHAT"><reftrigger ref="a" /></function>
	</scenario>`
	s, _ := ParseString(doc)
	if err := s.Validate(); err == nil {
		t.Fatal("bad errno accepted")
	}
}

func TestValidateNoRefs(t *testing.T) {
	doc := `<scenario>
	  <function name="read" return="-1" errno="EIO"></function>
	</scenario>`
	s, _ := ParseString(doc)
	if err := s.Validate(); err == nil {
		t.Fatal("function without reftrigger accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := ParseString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(bytesReader(s.Serialize()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, s.Serialize())
	}
	if !reflect.DeepEqual(normalize(s), normalize(s2)) {
		t.Fatalf("round trip changed scenario:\n%#v\nvs\n%#v", s, s2)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("auto")
	id := b.Trigger("cs1", "CallCountTrigger", IntArgs("n", 3))
	b.Inject("read", 3, -1, errno.EIO, id)
	b.Observe("pthread_mutex_lock", id)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Functions) != 2 {
		t.Fatal("builder dropped associations")
	}
	rv, e, _ := s.Functions[0].RetvalErrno()
	if rv != -1 || e != errno.EIO {
		t.Fatalf("builder fault %d/%v", rv, e)
	}
	if !s.Functions[1].Observational() {
		t.Fatal("Observe not observational")
	}
	// Builder output must itself round-trip.
	s2, err := Parse(bytesReader(s.Serialize()))
	if err != nil || !reflect.DeepEqual(normalize(s), normalize(s2)) {
		t.Fatalf("builder round trip: %v", err)
	}
}

func TestBuilderRejectsBadScenario(t *testing.T) {
	b := NewBuilder("bad")
	b.Inject("read", 0, -1, errno.EIO, "missing-trigger")
	if _, err := b.Build(); err == nil {
		t.Fatal("builder accepted dangling ref")
	}
}

func TestParseEmptyDoc(t *testing.T) {
	if _, err := ParseString(""); err == nil {
		t.Fatal("empty doc accepted")
	}
}
