package scenario

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"lfi/internal/trigger"
)

// This file checks the lossless-round-trip contract of Serialize: for
// any scenario the language can express — text-only <args> payloads,
// XML metacharacters in names and values, multi-attribute args nodes,
// negated reftriggers — Parse(Serialize(s)) must equal s, and Serialize
// must be byte-deterministic.

// scenarioEqual compares scenarios up to the one representation detail
// Parse cannot preserve: a nil Attr map on a built Args tree comes back
// as an empty (non-nil) map.
func scenarioEqual(a, b *Scenario) bool {
	if a.Name != b.Name || len(a.Triggers) != len(b.Triggers) || len(a.Functions) != len(b.Functions) {
		return false
	}
	for i := range a.Triggers {
		ta, tb := a.Triggers[i], b.Triggers[i]
		if ta.ID != tb.ID || ta.Class != tb.Class || !argsEqual(ta.Args, tb.Args) {
			return false
		}
	}
	for i := range a.Functions {
		fa, fb := a.Functions[i], b.Functions[i]
		if fa.Name != fb.Name || fa.Argc != fb.Argc || fa.Return != fb.Return || fa.Errno != fb.Errno {
			return false
		}
		if len(fa.Refs) != len(fb.Refs) {
			return false
		}
		for j := range fa.Refs {
			if fa.Refs[j] != fb.Refs[j] {
				return false
			}
		}
	}
	return true
}

func argsEqual(a, b *trigger.Args) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Name != b.Name || a.Text != b.Text || len(a.Attr) != len(b.Attr) || len(a.Children) != len(b.Children) {
		return false
	}
	for k, v := range a.Attr {
		bv, ok := b.Attr[k]
		if !ok || bv != v {
			return false
		}
	}
	for i := range a.Children {
		if !argsEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func roundTrip(t *testing.T, s *Scenario) {
	t.Helper()
	doc := s.Serialize()
	s2, err := Parse(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("re-parse: %v\ndoc:\n%s", err, doc)
	}
	if !scenarioEqual(s, s2) {
		t.Fatalf("round trip changed scenario:\n%#v\nvs\n%#v\ndoc:\n%s", s, s2, doc)
	}
}

// TestRoundTripTextOnlyArgs is the regression test for the dropped
// text-only <args> payload: a trigger whose args tree has Text but no
// children used to serialize as a self-closed <trigger />.
func TestRoundTripTextOnlyArgs(t *testing.T) {
	s := &Scenario{
		Name: "text-args",
		Triggers: []TriggerDecl{{
			ID: "t", Class: "SingletonTrigger",
			Args: &trigger.Args{Name: "args", Text: "payload"},
		}},
		Functions: []FunctionAssoc{{
			Name: "read", Return: "-1", Errno: "EIO",
			Refs: []TriggerRef{{Ref: "t"}},
		}},
	}
	roundTrip(t, s)
}

// TestRoundTripAttrsOnlyArgs covers the sibling case: an args tree that
// carries only attributes, no children and no text.
func TestRoundTripAttrsOnlyArgs(t *testing.T) {
	s := &Scenario{
		Triggers: []TriggerDecl{{
			ID: "t", Class: "SingletonTrigger",
			Args: &trigger.Args{
				Name: "args",
				Attr: map[string]string{"mode": "strict", "weight": "2"},
			},
		}},
	}
	roundTrip(t, s)
}

// TestRoundTripSpecialCharacters exercises XML metacharacters, quotes
// and whitespace escapes in attribute values and text payloads.
func TestRoundTripSpecialCharacters(t *testing.T) {
	nasty := []string{
		`a&b`, `a<b>c`, `"quoted"`, `it's`, "tab\there", "line\nbreak",
		`&amp;`, `]]>`, `a="b"`, "mix<&>\"'\n\tend", "später-日本語",
	}
	for i, v := range nasty {
		s := &Scenario{
			Name: "nasty-" + v,
			Triggers: []TriggerDecl{{
				ID: "t", Class: "SingletonTrigger",
				Args: &trigger.Args{
					Name: "args",
					Attr: map[string]string{"value": v},
					Children: []*trigger.Args{
						{Name: "payload", Text: v},
					},
				},
			}},
			Functions: []FunctionAssoc{{
				Name: "fn" + v, Return: v, Errno: v,
				Refs: []TriggerRef{{Ref: "t", Negate: i%2 == 0}},
			}},
		}
		roundTrip(t, s)
	}
}

// TestSerializeDeterministic asserts byte-identical output across many
// serializations of a scenario whose args node has enough attributes to
// make map-iteration order visible.
func TestSerializeDeterministic(t *testing.T) {
	attrs := map[string]string{}
	for i := 0; i < 12; i++ {
		attrs[fmt.Sprintf("k%02d", i)] = fmt.Sprintf("v%d", i)
	}
	s := &Scenario{
		Triggers: []TriggerDecl{{
			ID: "t", Class: "SingletonTrigger",
			Args: &trigger.Args{Name: "args", Attr: attrs},
		}},
	}
	first := s.Serialize()
	for i := 0; i < 50; i++ {
		if got := s.Serialize(); !bytes.Equal(first, got) {
			t.Fatalf("serialization %d differs:\n%s\nvs\n%s", i, first, got)
		}
	}
}

// --- randomized property test ----------------------------------------------

const nameAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// valueAlphabet includes every XML metacharacter plus whitespace that
// attribute-value normalization would mangle without proper escaping.
var valueAlphabet = []rune("abc123&<>\"'\n\t;=ü∆ ")

func randName(r *rand.Rand) string {
	n := 1 + r.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(nameAlphabet[r.Intn(len(nameAlphabet))])
	}
	return b.String()
}

func randValue(r *rand.Rand) string {
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(valueAlphabet[r.Intn(len(valueAlphabet))])
	}
	return b.String()
}

// randText is randValue restricted to trim-stable strings: the parser
// trims leading/trailing whitespace around element text, which is the
// documented (and paper-compatible) behaviour, not a round-trip defect.
func randText(r *rand.Rand) string {
	for {
		s := strings.TrimSpace(randValue(r))
		if s == "" && r.Intn(2) == 0 {
			continue
		}
		return s
	}
}

func randArgs(r *rand.Rand, depth int) *trigger.Args {
	a := &trigger.Args{Name: "args"}
	if depth > 0 {
		a.Name = randName(r)
	}
	for i := r.Intn(3); i > 0; i-- {
		if a.Attr == nil {
			a.Attr = map[string]string{}
		}
		a.Attr[randName(r)] = randValue(r)
	}
	if r.Intn(2) == 0 {
		a.Text = randText(r)
	}
	if depth < 2 {
		for i := r.Intn(3); i > 0; i-- {
			a.Children = append(a.Children, randArgs(r, depth+1))
		}
	}
	if a.Text == "" && len(a.Attr) == 0 && len(a.Children) == 0 && r.Intn(2) == 0 {
		a.Text = randText(r)
	}
	return a
}

func randScenario(r *rand.Rand) *Scenario {
	s := &Scenario{}
	if r.Intn(4) > 0 {
		s.Name = randValue(r)
	}
	nt := 1 + r.Intn(3)
	ids := make([]string, 0, nt)
	for i := 0; i < nt; i++ {
		id := fmt.Sprintf("%s%d", randName(r), i)
		ids = append(ids, id)
		td := TriggerDecl{ID: id, Class: randName(r)}
		if r.Intn(3) > 0 {
			td.Args = randArgs(r, 0)
		}
		s.Triggers = append(s.Triggers, td)
	}
	for i := r.Intn(4); i > 0; i-- {
		fa := FunctionAssoc{
			Name:   randName(r),
			Return: randValue(r),
			Errno:  randValue(r),
		}
		if r.Intn(2) == 0 {
			fa.Argc = 1 + r.Intn(5)
		}
		for j := 1 + r.Intn(3); j > 0; j-- {
			fa.Refs = append(fa.Refs, TriggerRef{
				Ref:    ids[r.Intn(len(ids))],
				Negate: r.Intn(3) == 0,
			})
		}
		s.Functions = append(s.Functions, fa)
	}
	return s
}

// TestRoundTripProperty generates a few thousand random scenarios over
// the nasty-character alphabet and asserts the round trip is lossless
// and byte-deterministic for each.
func TestRoundTripProperty(t *testing.T) {
	iters := 3000
	if testing.Short() {
		iters = 300
	}
	r := rand.New(rand.NewSource(0x1f1))
	for i := 0; i < iters; i++ {
		s := randScenario(r)
		roundTrip(t, s)
		if !bytes.Equal(s.Serialize(), s.Serialize()) {
			t.Fatalf("iteration %d: nondeterministic serialization", i)
		}
	}
}

// FuzzRoundTrip drives the same property from the native fuzzer, with
// the interesting corners as the seed corpus.
func FuzzRoundTrip(f *testing.F) {
	f.Add("name", "id", "Class", "key", `a&<>"value`, "text\nline", int64(-1), true)
	f.Add("", "t", "SingletonTrigger", "probability", "0.5", "", int64(0), false)
	f.Add("x&y", "a", "C", "k", "\ttab\t", "]]>", int64(7), true)
	f.Fuzz(func(t *testing.T, name, id, class, key, val, text string, ret int64, negate bool) {
		if strings.ContainsAny(id+class, "<>&\"'/= \n\r\t") || id == "" || class == "" {
			t.Skip() // ids/classes are serialized as attribute values; junk ones are tested elsewhere
		}
		if !isXMLName(key) {
			t.Skip() // only key becomes an attribute *name*, which XML constrains
		}
		if strings.TrimSpace(text) != text {
			t.Skip() // element text is documented as whitespace-trimmed
		}
		if !utf8ValidXML(name) || !utf8ValidXML(val) || !utf8ValidXML(text) ||
			!utf8ValidXML(id) || !utf8ValidXML(class) || !utf8ValidXML(key) {
			t.Skip()
		}
		s := &Scenario{
			Name: name,
			Triggers: []TriggerDecl{{
				ID: id, Class: class,
				Args: &trigger.Args{
					Name: "args",
					Attr: map[string]string{key: val},
					Text: text,
				},
			}},
			Functions: []FunctionAssoc{{
				Name:   "read",
				Return: fmt.Sprint(ret),
				Errno:  "EIO",
				Refs:   []TriggerRef{{Ref: id, Negate: negate}},
			}},
		}
		roundTrip(t, s)
	})
}

// TestValidateRejectsUnserializableArgNames pins the library-side
// enforcement behind the fuzzer's skip guard: the fuzzer found that a
// digit-leading attribute key like "0" (or a non-ASCII letter whose
// XML name classification differs between Unicode tables) serializes
// to a document no parser reads back, so Validate — and therefore
// Builder.Build — must reject such names up front. The crashing
// inputs are kept in testdata/fuzz as regression corpus.
func TestValidateRejectsUnserializableArgNames(t *testing.T) {
	for _, key := range []string{"0", "ˌ", "a b", "-x", ""} {
		s := &Scenario{
			Triggers: []TriggerDecl{{
				ID: "t", Class: "SingletonTrigger",
				Args: &trigger.Args{Name: "args", Attr: map[string]string{key: "v"}},
			}},
		}
		if err := s.Validate(); err == nil {
			t.Errorf("attr name %q accepted by Validate", key)
		}
		b := NewBuilder("n")
		b.Trigger("t", "SingletonTrigger", IntArgs(key, 1))
		b.Observe("read", "t")
		if _, err := b.Build(); err == nil {
			t.Errorf("Builder accepted arg name %q", key)
		}
	}
	// Child element names are checked too.
	s := &Scenario{
		Triggers: []TriggerDecl{{
			ID: "t", Class: "SingletonTrigger",
			Args: &trigger.Args{Name: "args", Children: []*trigger.Args{{Name: "1st", Text: "x"}}},
		}},
	}
	if err := s.Validate(); err == nil {
		t.Error("invalid child element name accepted")
	}
}

// utf8ValidXML reports whether s consists of characters XML 1.0 can
// carry at all (the fuzzer will happily produce control bytes and
// invalid UTF-8, which no escaping scheme can round-trip).
func utf8ValidXML(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		switch {
		case r == '\t' || r == '\n' || r == '\r':
		case r < 0x20:
			return false
		case r >= 0xD800 && r <= 0xDFFF:
			return false
		case r == 0xFFFE || r == 0xFFFF:
			return false
		}
	}
	return true
}
