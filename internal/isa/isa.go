// Package isa defines the synthetic instruction set that stands in for
// x86 in this reproduction.
//
// The paper's library profiler and call-site analyzer operate on program
// and library binaries: they walk symbol tables, disassemble machine
// code, build partial control-flow graphs, and run dataflow analyses
// over registers and stack slots. To keep those analyses genuine while
// staying hardware-independent, target applications and libraries are
// compiled (by package asm) into this small RISC-like ISA, and the
// analyses in packages cfg, dataflow, profile, and callsite consume its
// binaries exactly as LFI consumes x86: bytes in, instructions out.
//
// Conventions:
//   - 16 general registers R0..R15; R0 carries function return values
//     (the EAX analogue) and the first few arguments live in R1..R3.
//   - A flags register is set by CMP/CMPI/TEST and consumed by
//     conditional branches.
//   - errno lives in thread-local storage reached by SETERRI/GETERR,
//     modelling stores/loads through __errno_location.
//   - Instructions encode to 8 bytes: opcode, rd, rs, rt, imm(int32).
//     Branch and call targets are absolute code offsets in imm.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Op is an opcode.
type Op byte

// Opcodes.
const (
	NOP     Op = iota
	MOVI       // rd <- imm
	MOV        // rd <- rs
	ADDI       // rd <- rs + imm
	LD         // rd <- stack[imm]
	ST         // stack[imm] <- rs
	CMPI       // flags <- compare(rs, imm)
	CMP        // flags <- compare(rs, rt)
	TEST       // flags <- compare(rs, 0)
	JE         // jump to imm if equal
	JNE        // jump if not equal
	JL         // jump if less
	JLE        // jump if less-or-equal
	JG         // jump if greater
	JGE        // jump if greater-or-equal
	JMP        // unconditional jump to imm
	IJMP       // indirect jump through rs (analyzer bails out)
	CALL       // call imported library function; imm = import index
	CALLN      // call internal function at code offset imm
	ICALL      // indirect call through rs
	RET        // return; R0 holds the return value
	SETERRI    // errno <- imm (library-side error reporting)
	GETERR     // rd <- errno (caller-side errno inspection)
)

var opNames = [...]string{
	NOP: "nop", MOVI: "movi", MOV: "mov", ADDI: "addi", LD: "ld", ST: "st",
	CMPI: "cmpi", CMP: "cmp", TEST: "test",
	JE: "je", JNE: "jne", JL: "jl", JLE: "jle", JG: "jg", JGE: "jge",
	JMP: "jmp", IJMP: "ijmp", CALL: "call", CALLN: "calln", ICALL: "icall",
	RET: "ret", SETERRI: "seterri", GETERR: "geterr",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < len(opNames) && opNames[o] != "" }

// InstSize is the fixed encoding size in bytes.
const InstSize = 8

// Inst is one decoded instruction.
type Inst struct {
	Op     Op
	Rd     byte
	Rs     byte
	Rt     byte
	Imm    int32
	Offset uint64 // code offset this instruction was decoded from
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool { return i.Op >= JE && i.Op <= JGE }

// IsBranch reports whether the instruction transfers control (branches,
// jumps, returns), ending a basic block.
func (i Inst) IsBranch() bool {
	return i.IsCondBranch() || i.Op == JMP || i.Op == IJMP || i.Op == RET
}

// EqBranch reports whether a conditional branch encodes an equality
// check (JE/JNE), as opposed to an inequality/range check.
func (i Inst) EqBranch() bool { return i.Op == JE || i.Op == JNE }

// Encode appends the 8-byte encoding of i to dst.
func (i Inst) Encode(dst []byte) []byte {
	var b [InstSize]byte
	b[0] = byte(i.Op)
	b[1] = i.Rd
	b[2] = i.Rs
	b[3] = i.Rt
	binary.LittleEndian.PutUint32(b[4:], uint32(i.Imm))
	return append(dst, b[:]...)
}

// Decode decodes the instruction at offset off in code.
func Decode(code []byte, off uint64) (Inst, error) {
	if off+InstSize > uint64(len(code)) {
		return Inst{}, fmt.Errorf("isa: decode past end at %#x", off)
	}
	if off%InstSize != 0 {
		return Inst{}, fmt.Errorf("isa: misaligned decode at %#x", off)
	}
	op := Op(code[off])
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d at %#x", code[off], off)
	}
	return Inst{
		Op:     op,
		Rd:     code[off+1],
		Rs:     code[off+2],
		Rt:     code[off+3],
		Imm:    int32(binary.LittleEndian.Uint32(code[off+4 : off+8])),
		Offset: off,
	}, nil
}

// String renders the instruction in disassembly form.
func (i Inst) String() string {
	switch i.Op {
	case NOP, RET:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("movi r%d, %d", i.Rd, i.Imm)
	case MOV:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Rs)
	case ADDI:
		return fmt.Sprintf("addi r%d, r%d, %d", i.Rd, i.Rs, i.Imm)
	case LD:
		return fmt.Sprintf("ld r%d, [sp+%d]", i.Rd, i.Imm)
	case ST:
		return fmt.Sprintf("st [sp+%d], r%d", i.Imm, i.Rs)
	case CMPI:
		return fmt.Sprintf("cmpi r%d, %d", i.Rs, i.Imm)
	case CMP:
		return fmt.Sprintf("cmp r%d, r%d", i.Rs, i.Rt)
	case TEST:
		return fmt.Sprintf("test r%d", i.Rs)
	case JE, JNE, JL, JLE, JG, JGE, JMP, CALLN:
		return fmt.Sprintf("%s %#x", i.Op, uint32(i.Imm))
	case IJMP, ICALL:
		return fmt.Sprintf("%s r%d", i.Op, i.Rs)
	case CALL:
		return fmt.Sprintf("call @%d", i.Imm)
	case SETERRI:
		return fmt.Sprintf("seterri %d", i.Imm)
	case GETERR:
		return fmt.Sprintf("geterr r%d", i.Rd)
	default:
		return i.Op.String()
	}
}

// Symbol is one entry of a binary's symbol table: a defined function.
type Symbol struct {
	Name string
	Off  uint64
	Size uint64
}

// Binary is a compiled module: code image, symbol table, and import
// table. CALL instructions index the import table; call sites of library
// function F are found by scanning for CALL with F's import index.
type Binary struct {
	Name    string
	Code    []byte
	Symbols []Symbol
	Imports []string
}

// FindSymbol returns the symbol with the given name.
func (b *Binary) FindSymbol(name string) (Symbol, bool) {
	for _, s := range b.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// ImportIndex returns the import-table index of a library function name,
// or -1 when the binary does not import it.
func (b *Binary) ImportIndex(name string) int {
	for i, imp := range b.Imports {
		if imp == name {
			return i
		}
	}
	return -1
}

// ImportName returns the imported name for a CALL's import index.
func (b *Binary) ImportName(idx int32) string {
	if idx < 0 || int(idx) >= len(b.Imports) {
		return ""
	}
	return b.Imports[idx]
}

// DecodeAt decodes the instruction at off.
func (b *Binary) DecodeAt(off uint64) (Inst, error) { return Decode(b.Code, off) }

// DecodeRange decodes instructions in [start, end), stopping at decode
// errors (a linear sweep, like a disassembler crossing data).
func (b *Binary) DecodeRange(start, end uint64) []Inst {
	if end > uint64(len(b.Code)) {
		end = uint64(len(b.Code))
	}
	var out []Inst
	for off := start; off+InstSize <= end; off += InstSize {
		in, err := Decode(b.Code, off)
		if err != nil {
			break
		}
		out = append(out, in)
	}
	return out
}

// CallSites returns the code offsets of every CALL to the named imported
// function — the paper's callSites_F set.
func (b *Binary) CallSites(fn string) []uint64 {
	idx := b.ImportIndex(fn)
	if idx < 0 {
		return nil
	}
	var sites []uint64
	for off := uint64(0); off+InstSize <= uint64(len(b.Code)); off += InstSize {
		in, err := Decode(b.Code, off)
		if err != nil {
			continue
		}
		if in.Op == CALL && in.Imm == int32(idx) {
			sites = append(sites, off)
		}
	}
	return sites
}

// Disassemble renders the whole binary as text, one instruction per
// line, with symbol headers — the lfi-analyzer's -dis output.
func (b *Binary) Disassemble() string {
	symAt := make(map[uint64]string, len(b.Symbols))
	for _, s := range b.Symbols {
		symAt[s.Off] = s.Name
	}
	out := ""
	for off := uint64(0); off+InstSize <= uint64(len(b.Code)); off += InstSize {
		if name, ok := symAt[off]; ok {
			out += fmt.Sprintf("\n<%s>:\n", name)
		}
		in, err := Decode(b.Code, off)
		if err != nil {
			out += fmt.Sprintf("%6x: ??\n", off)
			continue
		}
		if in.Op == CALL {
			out += fmt.Sprintf("%6x: call %s\n", off, b.ImportName(in.Imm))
			continue
		}
		out += fmt.Sprintf("%6x: %s\n", off, in)
	}
	return out
}
