package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Inst{
		{Op: MOVI, Rd: 3, Imm: -1},
		{Op: MOV, Rd: 1, Rs: 0},
		{Op: CMPI, Rs: 0, Imm: -1},
		{Op: JE, Imm: 0x40},
		{Op: CALL, Imm: 7},
		{Op: RET},
		{Op: SETERRI, Imm: 5},
		{Op: ST, Rs: 4, Imm: 16},
	}
	var code []byte
	for _, in := range ins {
		code = in.Encode(code)
	}
	for i, want := range ins {
		got, err := Decode(code, uint64(i*InstSize))
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		want.Offset = uint64(i * InstSize)
		if got != want {
			t.Fatalf("inst %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	code := Inst{Op: RET}.Encode(nil)
	if _, err := Decode(code, 8); err == nil {
		t.Fatal("decode past end accepted")
	}
	if _, err := Decode(code, 3); err == nil {
		t.Fatal("misaligned decode accepted")
	}
	bad := append([]byte(nil), code...)
	bad[0] = 0xFF
	if _, err := Decode(bad, 0); err == nil {
		t.Fatal("invalid opcode accepted")
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(op byte, rd, rs, rt byte, imm int32) bool {
		o := Op(op % 24)
		if !o.Valid() {
			return true
		}
		in := Inst{Op: o, Rd: rd, Rs: rs, Rt: rt, Imm: imm}
		got, err := Decode(in.Encode(nil), 0)
		return err == nil && got.Op == o && got.Rd == rd && got.Rs == rs && got.Rt == rt && got.Imm == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchPredicates(t *testing.T) {
	if !(Inst{Op: JE}).IsCondBranch() || !(Inst{Op: JGE}).IsCondBranch() {
		t.Fatal("JE/JGE not cond branches")
	}
	if (Inst{Op: JMP}).IsCondBranch() {
		t.Fatal("JMP is not conditional")
	}
	if !(Inst{Op: JMP}).IsBranch() || !(Inst{Op: RET}).IsBranch() || !(Inst{Op: IJMP}).IsBranch() {
		t.Fatal("IsBranch wrong")
	}
	if (Inst{Op: CALL}).IsBranch() {
		t.Fatal("CALL falls through, not a block terminator here")
	}
	if !(Inst{Op: JE}).EqBranch() || !(Inst{Op: JNE}).EqBranch() || (Inst{Op: JL}).EqBranch() {
		t.Fatal("EqBranch wrong")
	}
}

func TestBinaryLookups(t *testing.T) {
	b := &Binary{
		Name:    "m",
		Symbols: []Symbol{{Name: "f", Off: 0, Size: 16}, {Name: "g", Off: 16, Size: 8}},
		Imports: []string{"read", "close"},
	}
	if s, ok := b.FindSymbol("g"); !ok || s.Off != 16 {
		t.Fatal("FindSymbol")
	}
	if _, ok := b.FindSymbol("h"); ok {
		t.Fatal("ghost symbol found")
	}
	if b.ImportIndex("close") != 1 || b.ImportIndex("mmap") != -1 {
		t.Fatal("ImportIndex")
	}
	if b.ImportName(0) != "read" || b.ImportName(9) != "" {
		t.Fatal("ImportName")
	}
}

func TestCallSitesScan(t *testing.T) {
	var code []byte
	code = Inst{Op: CALL, Imm: 0}.Encode(code) // read
	code = Inst{Op: NOP}.Encode(code)
	code = Inst{Op: CALL, Imm: 1}.Encode(code) // close
	code = Inst{Op: CALL, Imm: 0}.Encode(code) // read
	b := &Binary{Code: code, Imports: []string{"read", "close"}}
	sites := b.CallSites("read")
	if len(sites) != 2 || sites[0] != 0 || sites[1] != 24 {
		t.Fatalf("read sites %v", sites)
	}
	if len(b.CallSites("close")) != 1 {
		t.Fatal("close sites")
	}
	if b.CallSites("mmap") != nil {
		t.Fatal("unimported function has sites")
	}
}

func TestDisassembleContainsSymbolsAndImports(t *testing.T) {
	var code []byte
	code = Inst{Op: CALL, Imm: 0}.Encode(code)
	code = Inst{Op: RET}.Encode(code)
	b := &Binary{
		Code:    code,
		Symbols: []Symbol{{Name: "main", Off: 0, Size: 16}},
		Imports: []string{"malloc"},
	}
	dis := b.Disassemble()
	for _, want := range []string{"<main>:", "call malloc", "ret"} {
		if !contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestInstStrings(t *testing.T) {
	cases := map[string]Inst{
		"movi r1, -5":    {Op: MOVI, Rd: 1, Imm: -5},
		"cmpi r0, -1":    {Op: CMPI, Rs: 0, Imm: -1},
		"test r0":        {Op: TEST, Rs: 0},
		"ld r2, [sp+16]": {Op: LD, Rd: 2, Imm: 16},
		"st [sp+8], r3":  {Op: ST, Rs: 3, Imm: 8},
		"seterri 5":      {Op: SETERRI, Imm: 5},
		"geterr r4":      {Op: GETERR, Rd: 4},
		"ijmp r7":        {Op: IJMP, Rs: 7},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%v) = %q want %q", in.Op, got, want)
		}
	}
}
