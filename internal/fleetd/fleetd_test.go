package fleetd

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testClock is an injectable registry clock: heartbeat/eviction logic
// is tested by advancing it explicitly, never by sleeping.
type testClock struct {
	base time.Time
	off  atomic.Int64
}

func (c *testClock) now() time.Time          { return c.base.Add(time.Duration(c.off.Load())) }
func (c *testClock) advance(d time.Duration) { c.off.Add(int64(d)) }

// newTestRegistry starts a registry on a loopback HTTP listener with an
// injected clock.
func newTestRegistry(t *testing.T, heartbeat time.Duration, miss int) (*Server, *testClock, string) {
	t.Helper()
	s := NewServer(heartbeat, miss)
	clk := &testClock{base: time.Unix(1_000_000, 0)}
	s.now = clk.now
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, clk, srv.URL
}

func TestRegisterHeartbeatWorkers(t *testing.T) {
	_, clk, url := newTestRegistry(t, 2*time.Second, 3)

	id1, interval, err := Register(url, Worker{Addr: "10.0.0.1:7411", Capacity: 4, Proto: 3, Systems: []string{"minidb"}})
	if err != nil {
		t.Fatal(err)
	}
	if id1 == "" || interval != 2*time.Second {
		t.Fatalf("registration reply: id %q, interval %v", id1, interval)
	}
	clk.advance(time.Second)
	id2, _, err := Register(url, Worker{Addr: "10.0.0.2:7411", Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatalf("two workers share id %q", id1)
	}

	// Throughput comes from heartbeat counter deltas: 50 runs in 1s.
	clk.advance(time.Second)
	if err := Heartbeat(url, id1, WorkerStats{Batches: 5, Runs: 100}); err != nil {
		t.Fatal(err)
	}

	workers, err := Workers(url)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 {
		t.Fatalf("want 2 live workers, got %d: %+v", len(workers), workers)
	}
	// Stable registration order.
	if workers[0].ID != id1 || workers[1].ID != id2 {
		t.Fatalf("worker order not by registration: %+v", workers)
	}
	// w1 registered at t0, heartbeat at t0+2s with 100 runs: 50 runs/s.
	if got := workers[0].RunsPerSec; got < 49.9 || got > 50.1 {
		t.Fatalf("runs/sec from heartbeat delta: got %v, want ~50", got)
	}
	if workers[0].Stats.Runs != 100 || workers[0].Stats.Batches != 5 {
		t.Fatalf("heartbeat stats not recorded: %+v", workers[0].Stats)
	}
}

func TestEvictionAndReregistration(t *testing.T) {
	srv, clk, url := newTestRegistry(t, time.Second, 3)

	id, _, err := Register(url, Worker{Addr: "10.0.0.1:7411"})
	if err != nil {
		t.Fatal(err)
	}
	// Within the miss horizon the worker stays live.
	clk.advance(2 * time.Second)
	if ws, _ := Workers(url); len(ws) != 1 {
		t.Fatalf("worker evicted before the miss horizon: %+v", ws)
	}
	// Past it (3 × 1s of silence) the worker is gone and its heartbeat
	// answers ErrUnknownWorker — the re-register signal.
	clk.advance(2 * time.Second)
	if ws, _ := Workers(url); len(ws) != 0 {
		t.Fatalf("worker not evicted after missed heartbeats: %+v", ws)
	}
	if err := Heartbeat(url, id, WorkerStats{}); err != ErrUnknownWorker {
		t.Fatalf("heartbeat after eviction: got %v, want ErrUnknownWorker", err)
	}
	srv.mu.Lock()
	evicted := srv.evicted
	srv.mu.Unlock()
	if evicted != 1 {
		t.Fatalf("eviction counter = %d, want 1", evicted)
	}

	// Re-registration under the same address replaces, never duplicates.
	if _, _, err := Register(url, Worker{Addr: "10.0.0.1:7411"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Register(url, Worker{Addr: "10.0.0.1:7411"}); err != nil {
		t.Fatal(err)
	}
	ws, _ := Workers(url)
	if len(ws) != 1 {
		t.Fatalf("re-registration duplicated the worker: %+v", ws)
	}
}

func TestCampaignStatusRoundTrip(t *testing.T) {
	_, clk, url := newTestRegistry(t, time.Second, 3)
	clk.advance(time.Minute)

	c := CampaignStatus{
		Session: "host/123",
		Systems: map[string]SystemStatus{
			"minidb": {Executed: 40, Replayed: 2, Bugs: 3, Covered: 17, RecoveryBlocks: 20, GainPerRun: 0.25},
		},
	}
	if err := PublishCampaign(url, c); err != nil {
		t.Fatal(err)
	}
	st, err := FetchStatus(url)
	if err != nil {
		t.Fatal(err)
	}
	if st.HeartbeatMS != 1000 {
		t.Fatalf("status heartbeat = %dms, want 1000", st.HeartbeatMS)
	}
	if st.Campaign == nil || st.Campaign.Session != "host/123" {
		t.Fatalf("campaign snapshot lost: %+v", st.Campaign)
	}
	if got := st.Campaign.Systems["minidb"]; got.Executed != 40 || got.Bugs != 3 {
		t.Fatalf("campaign system status mangled: %+v", got)
	}
	if !st.Campaign.Updated.Equal(clk.now()) {
		t.Fatalf("registry did not stamp Updated: %v vs %v", st.Campaign.Updated, clk.now())
	}
}

// TestAgentReregisters drives a real Agent loop against the registry:
// it registers, heartbeats, and — when the registry forgets it (clock
// jump past the miss horizon) — re-registers on its own.
func TestAgentReregisters(t *testing.T) {
	_, clk, url := newTestRegistry(t, 20*time.Millisecond, 3)

	var runs atomic.Int64
	agent := NewAgent(url, Worker{Addr: "10.0.0.9:7411", Capacity: 2}, func() WorkerStats {
		return WorkerStats{Runs: runs.Load()}
	})
	agent.retry = 10 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go agent.Run(ctx)

	waitFor := func(cond func([]Worker) bool, what string) []Worker {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			ws, err := Workers(url)
			if err == nil && cond(ws) {
				return ws
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
		return nil
	}

	ws := waitFor(func(ws []Worker) bool { return len(ws) == 1 }, "initial registration")
	firstID := ws[0].ID

	// Heartbeats carry the live counters.
	runs.Store(77)
	waitFor(func(ws []Worker) bool { return len(ws) == 1 && ws[0].Stats.Runs == 77 }, "heartbeat stats")

	// Evict by jumping the registry clock far past the miss horizon: the
	// agent's next heartbeat gets a 404 and it re-registers immediately.
	clk.advance(time.Hour)
	waitFor(func(ws []Worker) bool { return len(ws) == 1 && ws[0].ID != firstID }, "re-registration after eviction")
}
