package fleetd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrUnknownWorker is returned by Heartbeat when the registry no longer
// knows the worker (evicted, or the registry restarted). The correct
// reaction is to re-register, which Agent.Run does automatically.
var ErrUnknownWorker = errors.New("fleetd: unknown worker")

// httpClient bounds every registry call: the registry is on the same
// network as the workers, so anything slower than this is down.
var httpClient = &http.Client{Timeout: 5 * time.Second}

// baseURL normalizes a registry address ("host:port" or a full URL)
// into an http base.
func baseURL(registry string) string {
	if strings.Contains(registry, "://") {
		return strings.TrimSuffix(registry, "/")
	}
	return "http://" + registry
}

// postJSON POSTs v to the endpoint and decodes the reply into out (nil
// out discards the body). Non-2xx statuses become errors; 404 maps to
// ErrUnknownWorker so heartbeat loops can distinguish "re-register"
// from "registry unreachable".
func postJSON(registry, path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := httpClient.Post(baseURL(registry)+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownWorker
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("fleetd: %s: registry answered %s", path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getJSON GETs the endpoint and decodes the reply into out.
func getJSON(registry, path string, out any) error {
	resp, err := httpClient.Get(baseURL(registry) + path)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("fleetd: %s: registry answered %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register announces a worker to the registry and returns the assigned
// id plus the heartbeat interval the registry expects.
func Register(registry string, w Worker) (string, time.Duration, error) {
	var reply registerReply
	if err := postJSON(registry, "/v1/register", w, &reply); err != nil {
		return "", 0, err
	}
	interval := time.Duration(reply.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = DefaultHeartbeat
	}
	return reply.ID, interval, nil
}

// Heartbeat reports a worker alive with its cumulative counters.
func Heartbeat(registry, id string, stats WorkerStats) error {
	return postJSON(registry, "/v1/heartbeat", heartbeatMsg{ID: id, Stats: stats}, nil)
}

// Workers fetches the registry's live worker set.
func Workers(registry string) ([]Worker, error) {
	var reply workersReply
	if err := getJSON(registry, "/v1/workers", &reply); err != nil {
		return nil, err
	}
	return reply.Workers, nil
}

// PublishCampaign replaces the registry's campaign progress snapshot.
func PublishCampaign(registry string, c CampaignStatus) error {
	return postJSON(registry, "/v1/campaign", c, nil)
}

// FetchStatus reads the registry's merged status document.
func FetchStatus(registry string) (*Status, error) {
	var st Status
	if err := getJSON(registry, "/v1/status", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Agent is a worker's registration keeper: it registers, heartbeats at
// the registry-assigned interval, and re-registers whenever the
// registry forgets it or stops answering. Run it in its own goroutine
// next to the worker's accept loop.
type Agent struct {
	registry string
	worker   Worker
	stats    func() WorkerStats
	// Log receives one line per state change (registered, evicted,
	// registry unreachable); nil silences it.
	Log io.Writer
	// retry is the pause between failed registration attempts,
	// injectable for tests.
	retry time.Duration
}

// NewAgent builds an agent that keeps the given worker registered with
// the registry; stats is sampled at every heartbeat and must be safe to
// call concurrently with the worker's serving goroutines.
func NewAgent(registry string, w Worker, stats func() WorkerStats) *Agent {
	if stats == nil {
		stats = func() WorkerStats { return WorkerStats{} }
	}
	return &Agent{registry: registry, worker: w, stats: stats, retry: time.Second}
}

func (a *Agent) logf(format string, args ...any) {
	if a.Log != nil {
		fmt.Fprintf(a.Log, "fleetd: "+format+"\n", args...)
	}
}

// Run keeps the worker registered until ctx is cancelled. Registration
// failures retry every second; a heartbeat 404 re-registers
// immediately; transient heartbeat transport errors ride through until
// the registry either answers again or has evicted us (which the next
// successful heartbeat reports as a 404).
func (a *Agent) Run(ctx context.Context) {
	for ctx.Err() == nil {
		id, interval, err := Register(a.registry, a.worker)
		if err != nil {
			a.logf("register with %s failed: %v (retrying)", a.registry, err)
			if !sleep(ctx, a.retry) {
				return
			}
			continue
		}
		a.logf("registered with %s as %s (heartbeat %v)", a.registry, id, interval)
		for {
			if !sleep(ctx, interval) {
				return
			}
			err := Heartbeat(a.registry, id, a.stats())
			if errors.Is(err, ErrUnknownWorker) {
				a.logf("registration %s lost, re-registering", id)
				break
			}
			if err != nil {
				a.logf("heartbeat failed: %v", err)
			}
		}
	}
}

// sleep waits d or until ctx is cancelled; false means cancelled.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
