// Package fleetd is the fleet coordinator: the registry that turns a
// pile of `lfi serve` processes into a discoverable, observable
// exploration cluster.
//
// The moving parts:
//
//   - workers self-register (`lfi serve -register host:port`) and
//     heartbeat at the interval the registry assigns; a worker that
//     misses enough heartbeats is evicted — in-flight batches on it
//     fail over through the exec.Fleet requeue path, so eviction is
//     about not *dispatching* to the dead, never about losing work;
//   - coordinators (`lfi explore -fleet host:port`) fetch the live
//     worker set instead of being handed host:port lists, watch it
//     for joins and evictions mid-campaign, and publish campaign
//     progress back;
//   - `lfi fleet status` (or any HTTP client — the endpoints are
//     plain JSON over GET/POST) reads the merged picture: per-worker
//     throughput derived from heartbeat counter deltas, plus the
//     coordinator's outcomes-folded / coverage-frontier / cost-model
//     snapshot.
//
// The package deliberately knows nothing about the wire protocol or
// the exec layer: it moves registration records and status documents,
// nothing else, so the registry can run anywhere a net.Listener does.
package fleetd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// WorkerStats are a worker's lifetime execution counters, reported
// cumulatively in every heartbeat; the registry derives throughput
// from successive deltas so workers need no clocks or windows.
type WorkerStats struct {
	Batches int64 `json:"batches"`
	Runs    int64 `json:"runs"`
	Cancels int64 `json:"cancels"`
}

// Worker is one registered worker's record: what it announced at
// registration plus what the registry has observed since.
type Worker struct {
	ID       string            `json:"id,omitempty"`
	Addr     string            `json:"addr"`
	Capacity int               `json:"capacity,omitempty"`
	Proto    int               `json:"proto,omitempty"`
	Systems  []string          `json:"systems,omitempty"`
	Images   map[string]string `json:"images,omitempty"`

	Registered time.Time   `json:"registered,omitempty"`
	LastSeen   time.Time   `json:"last_seen,omitempty"`
	Stats      WorkerStats `json:"stats"`
	// RunsPerSec is the registry's EWMA over heartbeat counter deltas.
	RunsPerSec float64 `json:"runs_per_sec,omitempty"`
}

// SystemStatus is one system's slice of a coordinator's campaign
// report: outcomes folded, the coverage frontier, and the EWMA cost
// model driving the fleet's scheduling.
type SystemStatus struct {
	Executed       int                `json:"executed"`
	Replayed       int                `json:"replayed"`
	Bugs           int                `json:"bugs"`
	Covered        int                `json:"covered"`
	RecoveryBlocks int                `json:"recovery_blocks"`
	GainPerRun     float64            `json:"gain_per_run"`
	Speed          map[string]float64 `json:"runs_per_sec,omitempty"`
}

// CampaignStatus is the coordinator's progress report, replaced
// wholesale on every publish.
type CampaignStatus struct {
	Session string                  `json:"session,omitempty"`
	Systems map[string]SystemStatus `json:"systems"`
	Updated time.Time               `json:"updated,omitempty"` // stamped by the registry
}

// Status is the registry's full picture, served at /v1/status.
type Status struct {
	Now         time.Time       `json:"now"`
	HeartbeatMS int64           `json:"heartbeat_ms"`
	Evicted     int64           `json:"evicted"`
	Workers     []Worker        `json:"workers"`
	Campaign    *CampaignStatus `json:"campaign,omitempty"`
}

// DefaultHeartbeat is the interval the registry assigns workers unless
// configured otherwise; DefaultMiss is how many intervals of silence
// cost a worker its registration. Short on purpose: eviction only
// gates *new* dispatches, so the sole cost of a false positive is a
// worker re-registering.
const (
	DefaultHeartbeat = 2 * time.Second
	DefaultMiss      = 3
)

// workerState pairs the public record with the delta baseline the
// throughput EWMA needs.
type workerState struct {
	w           Worker
	lastStats   WorkerStats
	lastStatsAt time.Time
}

// ewmaAlpha matches the exec cost model's smoothing: converge in a few
// observations without whipsawing on one noisy heartbeat.
const ewmaAlpha = 0.4

// Server is the registry. It is an http.Handler; Serve wires it to a
// listener with context shutdown. All state is in memory: a restarted
// registry comes back empty and the workers' heartbeat loops re-register
// within one interval.
type Server struct {
	heartbeat time.Duration
	miss      int
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	nextID   int
	workers  map[string]*workerState
	campaign *CampaignStatus
	evicted  int64
}

// NewServer builds a registry with the given heartbeat interval and
// miss budget (zero values take the defaults).
func NewServer(heartbeat time.Duration, miss int) *Server {
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}
	if miss <= 0 {
		miss = DefaultMiss
	}
	return &Server{
		heartbeat: heartbeat,
		miss:      miss,
		now:       time.Now,
		workers:   make(map[string]*workerState),
	}
}

// Serve answers registry requests on ln until ctx is cancelled.
func (s *Server) Serve(ctx context.Context, ln net.Listener, logw io.Writer) error {
	srv := &http.Server{Handler: s}
	if logw != nil {
		srv.ErrorLog = nil
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			srv.Close()
		case <-done:
		}
	}()
	err := srv.Serve(ln)
	close(done)
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// sweep evicts workers whose last heartbeat is older than the miss
// horizon. Callers hold s.mu.
func (s *Server) sweep() {
	horizon := s.now().Add(-time.Duration(s.miss) * s.heartbeat)
	for id, ws := range s.workers {
		if ws.w.LastSeen.Before(horizon) {
			delete(s.workers, id)
			s.evicted++
		}
	}
}

// ServeHTTP routes the registry's five endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/register":
		s.handleRegister(w, r)
	case "/v1/heartbeat":
		s.handleHeartbeat(w, r)
	case "/v1/workers":
		s.handleWorkers(w, r)
	case "/v1/campaign":
		s.handleCampaign(w, r)
	case "/v1/status":
		s.handleStatus(w, r)
	default:
		http.Error(w, "unknown endpoint", http.StatusNotFound)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// registerReply is what a worker gets back: its assigned id and the
// heartbeat interval the registry expects.
type registerReply struct {
	ID          string `json:"id"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var rec Worker
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil || rec.Addr == "" {
		http.Error(w, "malformed registration", http.StatusBadRequest)
		return
	}
	now := s.now()
	s.mu.Lock()
	s.sweep()
	// One record per worker address: a re-registering worker (registry
	// restart, missed heartbeats) replaces its old self rather than
	// appearing twice.
	for id, ws := range s.workers {
		if ws.w.Addr == rec.Addr {
			delete(s.workers, id)
		}
	}
	s.nextID++
	rec.ID = fmt.Sprintf("w%d", s.nextID)
	rec.Registered, rec.LastSeen = now, now
	s.workers[rec.ID] = &workerState{w: rec, lastStats: rec.Stats, lastStatsAt: now}
	s.mu.Unlock()
	writeJSON(w, registerReply{ID: rec.ID, HeartbeatMS: s.heartbeat.Milliseconds()})
}

// heartbeatMsg is a worker's periodic proof of life plus counters.
type heartbeatMsg struct {
	ID    string      `json:"id"`
	Stats WorkerStats `json:"stats"`
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var hb heartbeatMsg
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil || hb.ID == "" {
		http.Error(w, "malformed heartbeat", http.StatusBadRequest)
		return
	}
	now := s.now()
	s.mu.Lock()
	s.sweep()
	ws, ok := s.workers[hb.ID]
	if !ok {
		s.mu.Unlock()
		// 404 tells the worker its registration is gone (evicted, or
		// the registry restarted): re-register, don't retry.
		http.Error(w, "unknown worker", http.StatusNotFound)
		return
	}
	if dt := now.Sub(ws.lastStatsAt).Seconds(); dt > 0 {
		delta := hb.Stats.Runs - ws.lastStats.Runs
		if delta >= 0 {
			obs := float64(delta) / dt
			if ws.w.RunsPerSec > 0 {
				obs = ewmaAlpha*obs + (1-ewmaAlpha)*ws.w.RunsPerSec
			}
			ws.w.RunsPerSec = obs
		}
	}
	ws.lastStats, ws.lastStatsAt = hb.Stats, now
	ws.w.Stats, ws.w.LastSeen = hb.Stats, now
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// workersReply lists the live worker set.
type workersReply struct {
	Workers []Worker `json:"workers"`
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweep()
	out := s.liveLocked()
	s.mu.Unlock()
	writeJSON(w, workersReply{Workers: out})
}

// liveLocked snapshots the live workers, stably ordered by id.
func (s *Server) liveLocked() []Worker {
	out := make([]Worker, 0, len(s.workers))
	for _, ws := range s.workers {
		out = append(out, ws.w)
	}
	for i := 1; i < len(out); i++ { // insertion sort: the set is tiny
		for j := i; j > 0 && out[j-1].Registered.After(out[j].Registered); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var c CampaignStatus
	if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
		http.Error(w, "malformed campaign status", http.StatusBadRequest)
		return
	}
	c.Updated = s.now()
	s.mu.Lock()
	s.campaign = &c
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.sweep()
	st := Status{
		Now:         s.now(),
		HeartbeatMS: s.heartbeat.Milliseconds(),
		Evicted:     s.evicted,
		Workers:     s.liveLocked(),
		Campaign:    s.campaign,
	}
	s.mu.Unlock()
	writeJSON(w, st)
}
