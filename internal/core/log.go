package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"lfi/internal/errno"
	"lfi/internal/interpose"
	"lfi/internal/scenario"
)

// Record is one injected fault as written to the LFI log: which call was
// failed, with what return value and side effect, and the events that
// triggered it (per-function call count, thread, node, stack trace).
// This is the information the paper uses to match injections to observed
// program behaviour and to build deterministic replays.
type Record struct {
	Seq      int
	Func     string
	Retval   int64
	Errno    errno.Errno
	Triggers []string
	Count    uint64
	Thread   int
	Node     string
	Stack    []interpose.Frame
}

// Log collects injection records for one campaign run.
type Log struct {
	mu      sync.Mutex
	records []Record
	errs    map[string]error
}

// NewLog creates an empty log. The errs map is built lazily on the
// first noteError — one log is allocated per run, and misconfigured
// triggers are the rare case.
func NewLog() *Log {
	return &Log{}
}

func (l *Log) record(call *interpose.Call, rv int64, e errno.Errno, triggers []string) {
	// call.Stack() materializes a private snapshot owned by the call;
	// the record takes it over (the call never mutates a captured
	// stack, and its next Prepare drops the reference).
	stack := call.Stack()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, Record{
		Seq:      len(l.records) + 1,
		Func:     call.Func,
		Retval:   rv,
		Errno:    e,
		Triggers: triggers,
		Count:    call.Count,
		Thread:   call.Thread,
		Node:     call.Node,
		Stack:    stack,
	})
}

func (l *Log) noteError(id string, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.errs == nil {
		l.errs = make(map[string]error)
	}
	if _, dup := l.errs[id]; !dup {
		l.errs[id] = err
	}
}

// Records returns a snapshot of all injection records.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Last returns the most recent injection record without snapshotting
// the whole log (diagnosis paths only need the causal, i.e. final,
// injection).
func (l *Log) Last() (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return Record{}, false
	}
	return l.records[len(l.records)-1], true
}

// Len returns the number of injections logged.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// TriggerErrors returns initialization errors of misconfigured triggers,
// keyed by trigger id.
func (l *Log) TriggerErrors() map[string]error {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]error, len(l.errs))
	for k, v := range l.errs {
		out[k] = v
	}
	return out
}

// String renders the log the way the lfi CLI prints it.
func (l *Log) String() string {
	var b bytes.Buffer
	for _, r := range l.Records() {
		fmt.Fprintf(&b, "#%d inject %s -> %d errno=%s (call %d, thread %d",
			r.Seq, r.Func, r.Retval, r.Errno, r.Count, r.Thread)
		if r.Node != "" {
			fmt.Fprintf(&b, ", node %s", r.Node)
		}
		fmt.Fprintf(&b, ") triggers=%v\n", r.Triggers)
		for i := len(r.Stack) - 1; i >= 0; i-- {
			f := r.Stack[i]
			fmt.Fprintf(&b, "    at %s!%s+%#x", f.Module, f.Func, f.Offset)
			if f.File != "" {
				fmt.Fprintf(&b, " (%s:%d)", f.File, f.Line)
			}
			b.WriteString("\n")
		}
	}
	if errs := l.TriggerErrors(); len(errs) > 0 {
		ids := make([]string, 0, len(errs))
		for id := range errs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "trigger %s: ERROR %v\n", id, errs[id])
		}
	}
	return b.String()
}

// ReplayScenario builds a scenario that deterministically re-injects one
// logged fault: a call-count trigger pinned to the recorded per-function
// call count. This is the log's "failure replay script" role — programs
// driven deterministically by their environment replay the same failure.
func (r Record) ReplayScenario() *scenario.Scenario {
	b := scenario.NewBuilder(fmt.Sprintf("replay-%s-%d", r.Func, r.Count))
	id := b.Trigger("replay", "CallCountTrigger", scenario.IntArgs("n", r.Count))
	b.Inject(r.Func, 0, r.Retval, r.Errno, id)
	s, err := b.Build()
	if err != nil {
		// The builder is fed only well-formed values above.
		panic(err)
	}
	return s
}
