package core

import (
	"sync"
	"sync/atomic"

	"lfi/internal/errno"
	"lfi/internal/interpose"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// Program is the immutable compiled form of a scenario: the validated
// trigger declarations, the FuncID-indexed entry table, and the
// touched-function bitset. One Program is shared by every Runtime that
// runs its scenario — concurrently and across runs — so the explorer
// compiles each scenario structure once per campaign instead of once
// per run. All per-run state (trigger instances, log, rng, counters)
// lives in the Runtime overlay.
type Program struct {
	src     *scenario.Scenario
	decls   []declInfo
	declIdx map[string]int
	entries [][]progEntry // indexed by interpose.FuncID
	touched []uint64      // bitset over FuncIDs with at least one entry

	// pool recycles Runtimes for this program between runs; a pooled
	// Runtime keeps its rng, instance table, and eval shards, so a
	// steady-state acquire allocates only the run's fresh Log.
	pool sync.Pool
}

// declInfo is one compiled trigger declaration.
type declInfo struct {
	id    string
	class string
	args  *trigger.Args
}

// progRef references a declared trigger by decl index.
type progRef struct {
	decl   int
	negate bool
}

// progEntry is one compiled <function> association.
type progEntry struct {
	refs          []progRef
	ids           []string // referenced trigger ids, precomputed at compile time
	observational bool
	retval        int64
	e             errno.Errno
}

// progCacheMax caps the compiled-program cache; beyond it the cache is
// dropped wholesale (simpler than LRU, and campaigns reuse a bounded
// working set of scenario structures anyway).
const progCacheMax = 4096

var (
	progCache     sync.Map // *scenario.Scenario -> *Program
	progCacheSize atomic.Int64
)

// Compile validates and compiles a scenario, memoized by scenario
// identity: repeated compiles of the same *Scenario return the same
// Program. Scenarios must not be mutated after first use, which the
// toolchain already guarantees (builders and parsers hand out fresh
// values).
func Compile(s *scenario.Scenario) (*Program, error) {
	if p, ok := progCache.Load(s); ok {
		return p.(*Program), nil
	}
	p, err := compile(s)
	if err != nil {
		return nil, err
	}
	if actual, loaded := progCache.LoadOrStore(s, p); loaded {
		return actual.(*Program), nil
	}
	if progCacheSize.Add(1) > progCacheMax {
		progCache.Range(func(k, _ any) bool {
			progCache.Delete(k)
			return true
		})
		progCacheSize.Store(0)
	}
	return p, nil
}

func compile(s *scenario.Scenario) (*Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := &Program{src: s, declIdx: make(map[string]int, len(s.Triggers))}
	for i := range s.Triggers {
		td := &s.Triggers[i]
		p.declIdx[td.ID] = len(p.decls)
		p.decls = append(p.decls, declInfo{id: td.ID, class: td.Class, args: td.Args})
	}
	for i := range s.Functions {
		fa := &s.Functions[i]
		en := progEntry{observational: fa.Observational()}
		if !en.observational {
			rv, e, err := fa.RetvalErrno()
			if err != nil {
				return nil, err
			}
			en.retval, en.e = rv, e
		}
		for _, ref := range fa.Refs {
			en.refs = append(en.refs, progRef{decl: p.declIdx[ref.Ref], negate: ref.Negate})
			en.ids = append(en.ids, ref.Ref)
		}
		id := interpose.Intern(fa.Name)
		if n := int(id) + 1; n > len(p.entries) {
			grown := make([][]progEntry, n)
			copy(grown, p.entries)
			p.entries = grown
			bits := make([]uint64, (n+63)/64)
			copy(bits, p.touched)
			p.touched = bits
		}
		p.entries[id] = append(p.entries[id], en)
		p.touched[int(id)/64] |= 1 << (uint(id) % 64)
	}
	return p, nil
}
