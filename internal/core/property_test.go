package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

// opTrace runs a deterministic random sequence of library operations on
// a fresh process and records every return value and errno.
func opTrace(seed int64, rt func(*libsim.C) *Runtime) []string {
	c := libsim.New(1 << 20)
	c.MustWriteFile("/a", []byte("alpha"))
	c.MustWriteFile("/dir/b", []byte("bravo"))
	th := c.NewThread("prop", "main")
	if rt != nil {
		r := rt(c)
		r.Install()
		defer r.Uninstall()
	}
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	rec := func(op string, v int64) {
		trace = append(trace, fmt.Sprintf("%s=%d errno=%v", op, v, th.Errno()))
	}
	var fds []int64
	mtx := c.MutexInit()
	locked := false
	for i := 0; i < 60; i++ {
		switch rng.Intn(10) {
		case 0:
			rec("open", th.Open("/a", libsim.O_RDONLY))
		case 1:
			rec("open-missing", th.Open("/nope", libsim.O_RDONLY))
		case 2:
			fd := th.Open("/dir/b", libsim.O_RDONLY)
			fds = append(fds, fd)
			rec("open-b", fd)
		case 3:
			if len(fds) > 0 {
				rec("read", th.Read(fds[len(fds)-1], make([]byte, 3)))
			}
		case 4:
			if len(fds) > 0 {
				fd := fds[len(fds)-1]
				fds = fds[:len(fds)-1]
				rec("close", th.Close(fd))
			}
		case 5:
			p := th.Malloc(int64(8 + rng.Intn(64)))
			rec("malloc", p)
			if p != 0 {
				th.Free(p)
			}
		case 6:
			rec("setenv", th.Setenv("K", "V"))
		case 7:
			if !locked {
				rec("lock", th.MutexLock(mtx))
				locked = true
			} else {
				rec("unlock", th.MutexUnlock(mtx))
				locked = false
			}
		case 8:
			var st libsim.Stat
			rec("stat", th.StatPath("/dir/b", &st))
		case 9:
			rec("unlink-missing", th.Unlink("/ghost"))
		}
	}
	return trace
}

// Property (DESIGN.md, interposition transparency): with an installed
// runtime whose triggers never fire, every operation returns exactly
// what the un-interposed process returns.
func TestPropertyTransparency(t *testing.T) {
	neverFire := func(c *libsim.C) *Runtime {
		s, err := scenario.ParseString(`<scenario>
		  <trigger id="never" class="CallCountTrigger"><args><n>1099511627776</n></args></trigger>
		  <function name="read" return="-1" errno="EIO"><reftrigger ref="never" /></function>
		  <function name="open" return="-1" errno="EIO"><reftrigger ref="never" /></function>
		  <function name="close" return="-1" errno="EIO"><reftrigger ref="never" /></function>
		  <function name="malloc" return="0" errno="ENOMEM"><reftrigger ref="never" /></function>
		  <function name="setenv" return="-1" errno="ENOMEM"><reftrigger ref="never" /></function>
		  <function name="stat" return="-1" errno="EACCES"><reftrigger ref="never" /></function>
		  <function name="unlink" return="-1" errno="EACCES"><reftrigger ref="never" /></function>
		  <function name="pthread_mutex_lock" return="-1" errno="EINVAL"><reftrigger ref="never" /></function>
		</scenario>`)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(c, s)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	f := func(seed int64) bool {
		bare := opTrace(seed, nil)
		hooked := opTrace(seed, neverFire)
		if len(bare) != len(hooked) {
			return false
		}
		for i := range bare {
			if bare[i] != hooked[i] {
				t.Logf("seed %d step %d: %q vs %q", seed, i, bare[i], hooked[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (injection fidelity): when a fault IS injected, the caller
// observes exactly the scenario's (retval, errno) and the underlying
// implementation is not executed — verified here by injecting unlink
// failures and checking the file always survives.
func TestPropertyInjectionFidelity(t *testing.T) {
	f := func(seed int64, pByte uint8) bool {
		p := float64(pByte%100) / 100
		c := libsim.New(1 << 20)
		c.MustWriteFile("/victim", []byte("x"))
		th := c.NewThread("prop", "main")
		s, err := scenario.ParseString(fmt.Sprintf(`<scenario>
		  <trigger id="rnd" class="RandomTrigger"><args><probability>%v</probability></args></trigger>
		  <function name="unlink" return="-1" errno="EBUSY"><reftrigger ref="rnd" /></function>
		</scenario>`, p))
		if err != nil {
			return false
		}
		r, err := New(c, s, WithSeed(seed))
		if err != nil {
			return false
		}
		r.Install()
		defer r.Uninstall()
		injected := 0
		for i := 0; i < 30; i++ {
			rc := th.Unlink("/victim")
			if rc == -1 && th.Errno() == 16 /* EBUSY */ {
				injected++
				if _, ok := c.ReadFileRaw("/victim"); !ok {
					return false // impl ran despite injection
				}
				continue
			}
			if rc == 0 {
				// Real unlink succeeded once; recreate for the
				// next round.
				c.MustWriteFile("/victim", []byte("x"))
			}
		}
		return uint64(injected) == r.Injections()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
