package core

import (
	"sync"
	"testing"

	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

// TestConcurrentDispatchStress drives the full stub path — simulated
// threads making library calls through the dispatcher — while runtimes
// are installed and uninstalled underneath them, the exact interleaving
// a parallel campaign plus a hot-swapped scenario produces. It must be
// -race clean: the hook handoff is an atomic pointer, per-thread Call
// scratch is goroutine-confined, and the eval counter is sharded.
func TestConcurrentDispatchStress(t *testing.T) {
	c := libsim.New(1 << 20)
	c.MustWriteFile("/f", []byte("0123456789abcdef"))

	bld := scenario.NewBuilder("stress")
	ref := bld.Trigger("never", "CallCountTrigger", scenario.IntArgs("n", int64(1)<<40))
	bld.Observe("read", ref)
	s, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(c, s)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 1500
	stop := make(chan struct{})
	var flips sync.WaitGroup
	flips.Add(1)
	go func() {
		defer flips.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				rt.Install()
			} else {
				rt.Uninstall()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := c.NewThread("stress", "worker")
			fd := th.Open("/f", libsim.O_RDONLY)
			buf := make([]byte, 8)
			for i := 0; i < iters; i++ {
				th.Lseek(fd, 0)
				if th.Read(fd, buf) < 0 {
					t.Error("observational scenario injected a fault")
					return
				}
			}
			th.Close(fd)
		}()
	}
	wg.Wait()
	close(stop)
	flips.Wait()

	if got := c.Disp.CallCount("read"); got != workers*iters {
		t.Fatalf("read count = %d, want %d", got, workers*iters)
	}
}
