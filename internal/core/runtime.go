// Package core implements the LFI runtime: it compiles a fault
// injection scenario into per-function interception entries, installs
// itself as the interposition hook of a simulated process, evaluates
// triggers on every intercepted call, injects faults (return value plus
// errno side effect), and records everything in the injection log.
//
// The runtime reproduces the evaluation rules of §4.3:
//
//   - the trigger list for the intercepted function is found in O(1),
//     independent of scenario size (a map from function name);
//   - triggers inside one <function> element are a conjunction evaluated
//     in scenario order with short-circuiting;
//   - repeated <function> elements for the same function form a
//     disjunction, evaluated in scenario order;
//   - trigger instances are initialized lazily, right before their first
//     evaluation, to avoid program-startup overhead.
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"lfi/internal/errno"
	"lfi/internal/interpose"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// instance is one declared trigger instance. The same instance may be
// referenced from several function associations (that is how stateful
// triggers observe lock/unlock while injecting into read).
type instance struct {
	id    string
	class string
	args  *trigger.Args
	env   *trigger.Env

	once sync.Once
	trig trigger.Trigger
	err  error
}

// get lazily instantiates and initializes the trigger (§4.3: "each
// trigger is initialized right before it is invoked for the first
// time").
func (in *instance) get() (trigger.Trigger, error) {
	in.once.Do(func() {
		t, err := trigger.New(in.class)
		if err != nil {
			in.err = err
			return
		}
		if b, ok := t.(trigger.EnvBinder); ok {
			b.SetEnv(in.env)
		}
		if in.args != nil {
			if err := t.Init(in.args); err != nil {
				in.err = err
				return
			}
		} else if err := t.Init(&trigger.Args{Name: "args"}); err != nil {
			in.err = err
			return
		}
		in.trig = t
	})
	return in.trig, in.err
}

type compiledRef struct {
	inst   *instance
	negate bool
}

// entry is one compiled <function> association.
type entry struct {
	refs          []compiledRef
	observational bool
	retval        int64
	e             errno.Errno
	fired         atomic.Uint64
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithSeed fixes the random source used by Random triggers, making
// campaigns reproducible.
func WithSeed(seed int64) Option {
	return func(r *Runtime) { r.seed = seed }
}

// WithDecider installs the distributed-trigger central controller.
func WithDecider(d trigger.Decider) Option {
	return func(r *Runtime) { r.decider = d }
}

// WithMaxInjections stops injecting after n faults (0 = unlimited). The
// controller uses it for one-fault-per-run campaigns.
func WithMaxInjections(n uint64) Option {
	return func(r *Runtime) { r.maxInject = n }
}

// Runtime is the compiled, installable injection engine for one process.
type Runtime struct {
	proc      *libsim.C
	entries   map[string][]*entry
	instances map[string]*instance
	log       *Log
	env       *trigger.Env
	seed      int64
	decider   trigger.Decider
	maxInject uint64
	injected  atomic.Uint64
	evals     atomic.Uint64
}

// inspector adapts libsim.C to the trigger.Inspector interface.
type inspector struct{ c *libsim.C }

func (i inspector) FDMode(fd int64) (int64, bool) {
	st, ok := i.c.RawStatFD(fd)
	return st.Mode, ok
}
func (i inspector) Nonblocking(fd int64) bool         { return i.c.RawNonblocking(fd) }
func (i inspector) ReadVar(name string) (int64, bool) { return i.c.ReadVar(name) }

// New compiles a scenario for the given process. The scenario is
// validated; unknown trigger classes or dangling references fail here
// rather than mid-campaign.
func New(proc *libsim.C, s *scenario.Scenario, opts ...Option) (*Runtime, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		proc:      proc,
		entries:   make(map[string][]*entry),
		instances: make(map[string]*instance),
		log:       NewLog(),
		seed:      1,
	}
	for _, o := range opts {
		o(r)
	}
	rng := rand.New(rand.NewSource(r.seed))
	var rngMu sync.Mutex
	r.env = &trigger.Env{
		Rand: func() float64 {
			rngMu.Lock()
			defer rngMu.Unlock()
			return rng.Float64()
		},
		Inspect: inspector{proc},
		Dist:    r.decider,
	}
	for i := range s.Triggers {
		td := &s.Triggers[i]
		r.instances[td.ID] = &instance{id: td.ID, class: td.Class, args: td.Args, env: r.env}
	}
	for i := range s.Functions {
		fa := &s.Functions[i]
		en := &entry{observational: fa.Observational()}
		if !en.observational {
			rv, e, err := fa.RetvalErrno()
			if err != nil {
				return nil, err
			}
			en.retval, en.e = rv, e
		}
		for _, ref := range fa.Refs {
			en.refs = append(en.refs, compiledRef{inst: r.instances[ref.Ref], negate: ref.Negate})
		}
		r.entries[fa.Name] = append(r.entries[fa.Name], en)
	}
	return r, nil
}

// Install splices the runtime into the process's dispatcher.
func (r *Runtime) Install() { r.proc.Disp.Install(r) }

// Uninstall removes the runtime from the dispatcher.
func (r *Runtime) Uninstall() { r.proc.Disp.Install(nil) }

// Log returns the injection log.
func (r *Runtime) Log() *Log { return r.log }

// Injections returns how many faults have been injected so far.
func (r *Runtime) Injections() uint64 { return r.injected.Load() }

// Evals returns how many trigger evaluations have run (the §7.4
// overhead studies report triggerings/second from this counter).
func (r *Runtime) Evals() uint64 { return r.evals.Load() }

// TriggerInstance exposes a live trigger instance by id (tests use it to
// reach stateful triggers). It forces initialization.
func (r *Runtime) TriggerInstance(id string) (trigger.Trigger, error) {
	in, ok := r.instances[id]
	if !ok {
		return nil, fmt.Errorf("core: no trigger instance %q", id)
	}
	return in.get()
}

// Before implements interpose.Hook: it evaluates the disjunction of
// entries for the intercepted function and injects on the first entry
// whose conjunction holds.
func (r *Runtime) Before(call *interpose.Call) interpose.Decision {
	entries, ok := r.entries[call.Func]
	if !ok {
		return interpose.Decision{}
	}
	for _, en := range entries {
		if !r.evalEntry(en, call) {
			continue
		}
		if en.observational {
			continue
		}
		if r.maxInject != 0 && r.injected.Load() >= r.maxInject {
			continue
		}
		r.injected.Add(1)
		en.fired.Add(1)
		r.log.record(call, en.retval, en.e, r.refIDs(en))
		return interpose.Decision{Inject: true, Retval: en.retval, Errno: en.e}
	}
	return interpose.Decision{}
}

// After implements interpose.Hook; pass-through results are not logged,
// matching the paper's log (which records injections, not all calls).
func (r *Runtime) After(*interpose.Call, int64, errno.Errno) {}

// evalEntry evaluates one conjunction with short-circuiting.
func (r *Runtime) evalEntry(en *entry, call *interpose.Call) bool {
	if len(en.refs) == 0 {
		return false
	}
	for _, ref := range en.refs {
		t, err := ref.inst.get()
		if err != nil {
			// A misconfigured trigger never fires; the error is
			// surfaced once in the log so the tester notices.
			r.log.noteError(ref.inst.id, err)
			return false
		}
		r.evals.Add(1)
		v := t.Eval(call)
		if ref.negate {
			v = !v
		}
		if !v {
			return false
		}
	}
	return true
}

func (r *Runtime) refIDs(en *entry) []string {
	ids := make([]string, len(en.refs))
	for i, ref := range en.refs {
		ids[i] = ref.inst.id
	}
	return ids
}
