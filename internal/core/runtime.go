// Package core implements the LFI runtime: it compiles a fault
// injection scenario into per-function interception entries, installs
// itself as the interposition hook of a simulated process, evaluates
// triggers on every intercepted call, injects faults (return value plus
// errno side effect), and records everything in the injection log.
//
// The runtime reproduces the evaluation rules of §4.3:
//
//   - the trigger list for the intercepted function is found in O(1),
//     independent of scenario size (a map from function name);
//   - triggers inside one <function> element are a conjunction evaluated
//     in scenario order with short-circuiting;
//   - repeated <function> elements for the same function form a
//     disjunction, evaluated in scenario order;
//   - trigger instances are initialized lazily, right before their first
//     evaluation, to avoid program-startup overhead.
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"lfi/internal/errno"
	"lfi/internal/interpose"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// instance is one declared trigger instance. The same instance may be
// referenced from several function associations (that is how stateful
// triggers observe lock/unlock while injecting into read).
type instance struct {
	id    string
	class string
	args  *trigger.Args
	env   *trigger.Env

	once sync.Once
	trig trigger.Trigger
	err  error
}

// get lazily instantiates and initializes the trigger (§4.3: "each
// trigger is initialized right before it is invoked for the first
// time").
func (in *instance) get() (trigger.Trigger, error) {
	in.once.Do(func() {
		t, err := trigger.New(in.class)
		if err != nil {
			in.err = err
			return
		}
		if b, ok := t.(trigger.EnvBinder); ok {
			b.SetEnv(in.env)
		}
		if in.args != nil {
			if err := t.Init(in.args); err != nil {
				in.err = err
				return
			}
		} else if err := t.Init(&trigger.Args{Name: "args"}); err != nil {
			in.err = err
			return
		}
		in.trig = t
	})
	return in.trig, in.err
}

type compiledRef struct {
	inst   *instance
	negate bool
}

// entry is one compiled <function> association.
type entry struct {
	refs          []compiledRef
	ids           []string // referenced trigger ids, precomputed at compile time
	observational bool
	retval        int64
	e             errno.Errno
	fired         atomic.Uint64
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithSeed fixes the random source used by Random triggers, making
// campaigns reproducible.
func WithSeed(seed int64) Option {
	return func(r *Runtime) { r.seed = seed }
}

// WithDecider installs the distributed-trigger central controller.
func WithDecider(d trigger.Decider) Option {
	return func(r *Runtime) { r.decider = d }
}

// WithMaxInjections stops injecting after n faults (0 = unlimited). The
// controller uses it for one-fault-per-run campaigns.
func WithMaxInjections(n uint64) Option {
	return func(r *Runtime) { r.maxInject = n }
}

// evalShards is the number of cache-line-padded shards backing the
// trigger-evaluation counter. Concurrent simulated threads land on
// different shards (by thread id), so the §7.4 counter does not become
// a point of cache-line contention on the hot path.
const evalShards = 16

// Runtime is the compiled, installable injection engine for one process.
//
// Scenario entries are compiled into a FuncID-indexed table plus a
// bitset of touched functions: an intercepted call whose function has no
// scenario entry bails out with two array reads, no map lookup and no
// allocation.
type Runtime struct {
	proc      *libsim.C
	entries   [][]*entry // indexed by interpose.FuncID
	touched   []uint64   // bitset over FuncIDs with at least one entry
	instances map[string]*instance
	log       *Log
	env       *trigger.Env
	seed      int64
	decider   trigger.Decider
	maxInject uint64
	injected  atomic.Uint64
	evals     [evalShards]interpose.PaddedUint64
}

// inspector adapts libsim.C to the trigger.Inspector interface.
type inspector struct{ c *libsim.C }

func (i inspector) FDMode(fd int64) (int64, bool) {
	st, ok := i.c.RawStatFD(fd)
	return st.Mode, ok
}
func (i inspector) Nonblocking(fd int64) bool         { return i.c.RawNonblocking(fd) }
func (i inspector) ReadVar(name string) (int64, bool) { return i.c.ReadVar(name) }

// New compiles a scenario for the given process. The scenario is
// validated; unknown trigger classes or dangling references fail here
// rather than mid-campaign.
func New(proc *libsim.C, s *scenario.Scenario, opts ...Option) (*Runtime, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		proc:      proc,
		instances: make(map[string]*instance),
		log:       NewLog(),
		seed:      1,
	}
	for _, o := range opts {
		o(r)
	}
	rng := rand.New(rand.NewSource(r.seed))
	var rngMu sync.Mutex
	r.env = &trigger.Env{
		Rand: func() float64 {
			rngMu.Lock()
			defer rngMu.Unlock()
			return rng.Float64()
		},
		Inspect: inspector{proc},
		Dist:    r.decider,
	}
	for i := range s.Triggers {
		td := &s.Triggers[i]
		r.instances[td.ID] = &instance{id: td.ID, class: td.Class, args: td.Args, env: r.env}
	}
	for i := range s.Functions {
		fa := &s.Functions[i]
		en := &entry{observational: fa.Observational()}
		if !en.observational {
			rv, e, err := fa.RetvalErrno()
			if err != nil {
				return nil, err
			}
			en.retval, en.e = rv, e
		}
		for _, ref := range fa.Refs {
			en.refs = append(en.refs, compiledRef{inst: r.instances[ref.Ref], negate: ref.Negate})
			en.ids = append(en.ids, ref.Ref)
		}
		id := interpose.Intern(fa.Name)
		if n := int(id) + 1; n > len(r.entries) {
			grown := make([][]*entry, n)
			copy(grown, r.entries)
			r.entries = grown
			bits := make([]uint64, (n+63)/64)
			copy(bits, r.touched)
			r.touched = bits
		}
		r.entries[id] = append(r.entries[id], en)
		r.touched[int(id)/64] |= 1 << (uint(id) % 64)
	}
	return r, nil
}

// Install splices the runtime into the process's dispatcher.
func (r *Runtime) Install() { r.proc.Disp.Install(r) }

// Uninstall removes the runtime from the dispatcher.
func (r *Runtime) Uninstall() { r.proc.Disp.Install(nil) }

// Log returns the injection log.
func (r *Runtime) Log() *Log { return r.log }

// Injections returns how many faults have been injected so far.
func (r *Runtime) Injections() uint64 { return r.injected.Load() }

// Evals returns how many trigger evaluations have run (the §7.4
// overhead studies report triggerings/second from this counter). The
// count is sharded per thread on the hot path and summed here.
func (r *Runtime) Evals() uint64 {
	var sum uint64
	for i := range r.evals {
		sum += r.evals[i].V.Load()
	}
	return sum
}

// TriggerInstance exposes a live trigger instance by id (tests use it to
// reach stateful triggers). It forces initialization.
func (r *Runtime) TriggerInstance(id string) (trigger.Trigger, error) {
	in, ok := r.instances[id]
	if !ok {
		return nil, fmt.Errorf("core: no trigger instance %q", id)
	}
	return in.get()
}

// Before implements interpose.Hook: it evaluates the disjunction of
// entries for the intercepted function and injects on the first entry
// whose conjunction holds. Calls to functions the scenario never
// mentions bail on the bitset without touching the entry table.
func (r *Runtime) Before(call *interpose.Call) interpose.Decision {
	id := call.Resolve()
	w := int(id) / 64
	if w >= len(r.touched) || r.touched[w]&(1<<(uint(id)%64)) == 0 {
		return interpose.Decision{}
	}
	for _, en := range r.entries[id] {
		if !r.evalEntry(en, call) {
			continue
		}
		if en.observational {
			continue
		}
		if r.maxInject != 0 && r.injected.Load() >= r.maxInject {
			continue
		}
		r.injected.Add(1)
		en.fired.Add(1)
		r.log.record(call, en.retval, en.e, en.ids)
		return interpose.Decision{Inject: true, Retval: en.retval, Errno: en.e}
	}
	return interpose.Decision{}
}

// After implements interpose.Hook; pass-through results are not logged,
// matching the paper's log (which records injections, not all calls).
func (r *Runtime) After(*interpose.Call, int64, errno.Errno) {}

// evalEntry evaluates one conjunction with short-circuiting.
func (r *Runtime) evalEntry(en *entry, call *interpose.Call) bool {
	if len(en.refs) == 0 {
		return false
	}
	shard := &r.evals[uint(call.Thread)%evalShards]
	for _, ref := range en.refs {
		t, err := ref.inst.get()
		if err != nil {
			// A misconfigured trigger never fires; the error is
			// surfaced once in the log so the tester notices.
			r.log.noteError(ref.inst.id, err)
			return false
		}
		shard.V.Add(1)
		v := t.Eval(call)
		if ref.negate {
			v = !v
		}
		if !v {
			return false
		}
	}
	return true
}
