// Package core implements the LFI runtime: it compiles a fault
// injection scenario into per-function interception entries, installs
// itself as the interposition hook of a simulated process, evaluates
// triggers on every intercepted call, injects faults (return value plus
// errno side effect), and records everything in the injection log.
//
// The runtime reproduces the evaluation rules of §4.3:
//
//   - the trigger list for the intercepted function is found in O(1),
//     independent of scenario size (a map from function name);
//   - triggers inside one <function> element are a conjunction evaluated
//     in scenario order with short-circuiting;
//   - repeated <function> elements for the same function form a
//     disjunction, evaluated in scenario order;
//   - trigger instances are initialized lazily, right before their first
//     evaluation, to avoid program-startup overhead.
//
// Compilation is split in two (see Program): the immutable entry table
// is compiled and cached once per scenario, and New only assembles the
// small per-run overlay — pooled and reused via Release, so the
// steady-state run loop allocates almost nothing.
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"lfi/internal/errno"
	"lfi/internal/interpose"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// instance is one live trigger instance for one run. The same instance
// may be referenced from several function associations (that is how
// stateful triggers observe lock/unlock while injecting into read).
// Instances are embedded in a Runtime-owned slice and reset in place
// between runs, never copied.
type instance struct {
	decl *declInfo
	env  *trigger.Env

	// state is 0 until the first get initializes the trigger, then 1;
	// mu serializes the one-time initialization across simulated
	// threads. Unlike sync.Once this is resettable between runs.
	state atomic.Uint32
	mu    sync.Mutex
	trig  trigger.Trigger
	err   error
}

// get lazily instantiates and initializes the trigger (§4.3: "each
// trigger is initialized right before it is invoked for the first
// time").
func (in *instance) get() (trigger.Trigger, error) {
	if in.state.Load() == 1 {
		return in.trig, in.err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.state.Load() != 1 {
		in.init()
		in.state.Store(1)
	}
	return in.trig, in.err
}

func (in *instance) init() {
	t, err := trigger.New(in.decl.class)
	if err != nil {
		in.err = err
		return
	}
	if b, ok := t.(trigger.EnvBinder); ok {
		b.SetEnv(in.env)
	}
	args := in.decl.args
	if args == nil {
		args = &trigger.Args{Name: "args"}
	}
	if err := t.Init(args); err != nil {
		in.err = err
		return
	}
	in.trig = t
}

// reset re-arms the instance for the next run: the next get builds a
// fresh trigger, so no cross-run trigger state (Singleton.fired,
// CallStack frame lists grown by Init) can leak between runs.
func (in *instance) reset() {
	in.state.Store(0)
	in.trig = nil
	in.err = nil
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithSeed fixes the random source used by Random triggers, making
// campaigns reproducible.
func WithSeed(seed int64) Option {
	return func(r *Runtime) { r.seed = seed }
}

// WithDecider installs the distributed-trigger central controller.
func WithDecider(d trigger.Decider) Option {
	return func(r *Runtime) { r.decider = d }
}

// WithMaxInjections stops injecting after n faults (0 = unlimited). The
// controller uses it for one-fault-per-run campaigns.
func WithMaxInjections(n uint64) Option {
	return func(r *Runtime) { r.maxInject = n }
}

// evalShards is the number of cache-line-padded shards backing the
// trigger-evaluation counter. Concurrent simulated threads land on
// different shards (by thread id), so the §7.4 counter does not become
// a point of cache-line contention on the hot path.
const evalShards = 16

// Runtime is the per-run injection engine for one process: a thin
// overlay (live trigger instances, injection log, rng, counters) over
// an immutable compiled Program.
//
// Scenario entries are compiled into a FuncID-indexed table plus a
// bitset of touched functions: an intercepted call whose function has no
// scenario entry bails out with two array reads, no map lookup and no
// allocation.
type Runtime struct {
	prog      *Program
	proc      *libsim.C
	insts     []instance // index-aligned with prog.decls
	log       *Log
	env       trigger.Env
	insp      inspector
	rng       *rand.Rand
	rngMu     sync.Mutex
	seed      int64
	decider   trigger.Decider
	maxInject uint64
	injected  atomic.Uint64
	evals     [evalShards]interpose.PaddedUint64
}

// inspector adapts libsim.C to the trigger.Inspector interface. It is
// embedded in the Runtime and retargeted per run, so binding it into
// the trigger Env costs nothing per acquire.
type inspector struct{ c *libsim.C }

func (i *inspector) FDMode(fd int64) (int64, bool) {
	st, ok := i.c.RawStatFD(fd)
	return st.Mode, ok
}
func (i *inspector) Nonblocking(fd int64) bool         { return i.c.RawNonblocking(fd) }
func (i *inspector) ReadVar(name string) (int64, bool) { return i.c.ReadVar(name) }

// New compiles a scenario for the given process. The scenario is
// validated; unknown trigger classes or dangling references fail here
// rather than mid-campaign. Compilation is cached per scenario, and the
// returned Runtime is drawn from the program's pool — callers that are
// done with a run may hand it back with Release.
func New(proc *libsim.C, s *scenario.Scenario, opts ...Option) (*Runtime, error) {
	p, err := Compile(s)
	if err != nil {
		return nil, err
	}
	return p.acquire(proc, opts...), nil
}

// acquire assembles a run-ready overlay Runtime: pooled when available,
// freshly built otherwise.
func (p *Program) acquire(proc *libsim.C, opts ...Option) *Runtime {
	r, _ := p.pool.Get().(*Runtime)
	if r == nil {
		r = &Runtime{
			prog:  p,
			insts: make([]instance, len(p.decls)),
			rng:   rand.New(rand.NewSource(1)),
		}
		r.env.Rand = func() float64 {
			r.rngMu.Lock()
			defer r.rngMu.Unlock()
			return r.rng.Float64()
		}
		r.env.Inspect = &r.insp
		for i := range r.insts {
			r.insts[i].decl = &p.decls[i]
			r.insts[i].env = &r.env
		}
	}
	r.proc = proc
	r.insp.c = proc
	r.seed = 1
	r.decider = nil
	r.maxInject = 0
	for _, o := range opts {
		o(r)
	}
	r.env.Dist = r.decider
	r.rng.Seed(r.seed)
	r.log = NewLog()
	r.injected.Store(0)
	for i := range r.evals {
		r.evals[i].V.Store(0)
	}
	for i := range r.insts {
		r.insts[i].reset()
	}
	return r
}

// Release returns the runtime to its program's pool for reuse by a
// later New on the same scenario. The caller must be completely done
// with it: uninstalled, log captured (the Log itself is never recycled,
// so captured logs stay valid). Runtimes that are never released are
// simply collected by the GC.
func (r *Runtime) Release() {
	r.proc = nil
	r.insp.c = nil
	r.log = nil
	r.decider = nil
	r.env.Dist = nil
	r.prog.pool.Put(r)
}

// Install splices the runtime into the process's dispatcher.
func (r *Runtime) Install() { r.proc.Disp.Install(r) }

// Uninstall removes the runtime from the dispatcher.
func (r *Runtime) Uninstall() { r.proc.Disp.Install(nil) }

// Log returns the injection log.
func (r *Runtime) Log() *Log { return r.log }

// Injections returns how many faults have been injected so far.
func (r *Runtime) Injections() uint64 { return r.injected.Load() }

// Evals returns how many trigger evaluations have run (the §7.4
// overhead studies report triggerings/second from this counter). The
// count is sharded per thread on the hot path and summed here.
func (r *Runtime) Evals() uint64 {
	var sum uint64
	for i := range r.evals {
		sum += r.evals[i].V.Load()
	}
	return sum
}

// TriggerInstance exposes a live trigger instance by id (tests use it to
// reach stateful triggers). It forces initialization.
func (r *Runtime) TriggerInstance(id string) (trigger.Trigger, error) {
	i, ok := r.prog.declIdx[id]
	if !ok {
		return nil, fmt.Errorf("core: no trigger instance %q", id)
	}
	return r.insts[i].get()
}

// Before implements interpose.Hook: it evaluates the disjunction of
// entries for the intercepted function and injects on the first entry
// whose conjunction holds. Calls to functions the scenario never
// mentions bail on the bitset without touching the entry table.
func (r *Runtime) Before(call *interpose.Call) interpose.Decision {
	id := call.Resolve()
	w := int(id) / 64
	touched := r.prog.touched
	if w >= len(touched) || touched[w]&(1<<(uint(id)%64)) == 0 {
		return interpose.Decision{}
	}
	ens := r.prog.entries[id]
	for i := range ens {
		en := &ens[i]
		if !r.evalEntry(en, call) {
			continue
		}
		if en.observational {
			continue
		}
		if r.maxInject != 0 && r.injected.Load() >= r.maxInject {
			continue
		}
		r.injected.Add(1)
		r.log.record(call, en.retval, en.e, en.ids)
		return interpose.Decision{Inject: true, Retval: en.retval, Errno: en.e}
	}
	return interpose.Decision{}
}

// After implements interpose.Hook; pass-through results are not logged,
// matching the paper's log (which records injections, not all calls).
func (r *Runtime) After(*interpose.Call, int64, errno.Errno) {}

// evalEntry evaluates one conjunction with short-circuiting.
func (r *Runtime) evalEntry(en *progEntry, call *interpose.Call) bool {
	if len(en.refs) == 0 {
		return false
	}
	shard := &r.evals[uint(call.Thread)%evalShards]
	for _, ref := range en.refs {
		in := &r.insts[ref.decl]
		t, err := in.get()
		if err != nil {
			// A misconfigured trigger never fires; the error is
			// surfaced once in the log so the tester notices.
			r.log.noteError(in.decl.id, err)
			return false
		}
		shard.V.Add(1)
		v := t.Eval(call)
		if ref.negate {
			v = !v
		}
		if !v {
			return false
		}
	}
	return true
}
