package core

import (
	"strings"
	"testing"

	"lfi/internal/errno"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

func newProc() (*libsim.C, *libsim.Thread) {
	c := libsim.New(1 << 20)
	c.MustWriteFile("/f", []byte("hello"))
	return c, c.NewThread("test", "main")
}

func install(t *testing.T, c *libsim.C, doc string, opts ...Option) *Runtime {
	t.Helper()
	s, err := scenario.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(c, s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	r.Install()
	t.Cleanup(r.Uninstall)
	return r
}

func TestInjectOnNthCall(t *testing.T) {
	c, th := newProc()
	r := install(t, c, `<scenario>
	  <trigger id="n2" class="CallCountTrigger"><args><n>2</n></args></trigger>
	  <function name="read" argc="3" return="-1" errno="EINTR">
	    <reftrigger ref="n2" />
	  </function>
	</scenario>`)

	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 2)
	if n := th.Read(fd, buf); n != 2 {
		t.Fatalf("first read injected early: %d", n)
	}
	if n := th.Read(fd, buf); n != -1 || th.Errno() != errno.EINTR {
		t.Fatalf("second read not injected: n=%d errno=%v", n, th.Errno())
	}
	if n := th.Read(fd, buf); n != 2 {
		t.Fatalf("third read wrong: %d (file offset must be unaffected by injection)", n)
	}
	if r.Injections() != 1 {
		t.Fatalf("injections = %d", r.Injections())
	}
}

func TestInjectionSkipsImplementation(t *testing.T) {
	c, th := newProc()
	install(t, c, `<scenario>
	  <trigger id="always" class="CallCountTrigger"><args><from>1</from></args></trigger>
	  <function name="unlink" return="-1" errno="EACCES">
	    <reftrigger ref="always" />
	  </function>
	</scenario>`)
	if th.Unlink("/f") != -1 || th.Errno() != errno.EACCES {
		t.Fatal("unlink not injected")
	}
	if _, ok := c.ReadFileRaw("/f"); !ok {
		t.Fatal("file was actually deleted despite injected failure")
	}
}

func TestEmptyScenarioTransparent(t *testing.T) {
	c, th := newProc()
	install(t, c, `<scenario></scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 5)
	if n := th.Read(fd, buf); n != 5 || string(buf) != "hello" {
		t.Fatalf("empty scenario perturbed read: %d %q", n, buf)
	}
}

func TestConjunctionSemantics(t *testing.T) {
	// Inject in read only while a mutex is held.
	c, th := newProc()
	install(t, c, `<scenario>
	  <trigger id="mtx" class="WithMutex" />
	  <trigger id="any" class="CallCountTrigger"><args><from>1</from></args></trigger>
	  <function name="read" argc="3" return="-1" errno="EIO">
	    <reftrigger ref="mtx" />
	    <reftrigger ref="any" />
	  </function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 2)
	if th.Read(fd, buf) != 2 {
		t.Fatal("injected without mutex held")
	}
	m := c.MutexInit()
	th.MutexLock(m)
	if th.Read(fd, buf) != -1 || th.Errno() != errno.EIO {
		t.Fatal("not injected with mutex held")
	}
	th.MutexUnlock(m)
	if th.Read(fd, buf) != 2 {
		t.Fatal("injected after unlock")
	}
}

func TestDisjunctionViaRepeatedFunction(t *testing.T) {
	c, th := newProc()
	install(t, c, `<scenario>
	  <trigger id="n1" class="CallCountTrigger"><args><n>1</n></args></trigger>
	  <trigger id="n3" class="CallCountTrigger"><args><n>3</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="n1" /></function>
	  <function name="read" return="-1" errno="EINTR"><reftrigger ref="n3" /></function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	if th.Read(fd, buf) != -1 || th.Errno() != errno.EIO {
		t.Fatal("call 1 should inject EIO")
	}
	if th.Read(fd, buf) != 1 {
		t.Fatal("call 2 should pass")
	}
	if th.Read(fd, buf) != -1 || th.Errno() != errno.EINTR {
		t.Fatal("call 3 should inject EINTR")
	}
}

func TestNegation(t *testing.T) {
	c, th := newProc()
	install(t, c, `<scenario>
	  <trigger id="mtx" class="WithMutex" />
	  <function name="read" return="-1" errno="EIO">
	    <reftrigger ref="mtx" negate="true" />
	  </function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	if th.Read(fd, buf) != -1 {
		t.Fatal("negated WithMutex should inject without lock")
	}
	m := c.MutexInit()
	th.MutexLock(m)
	if th.Read(fd, buf) == -1 && th.Errno() == errno.EIO {
		t.Fatal("negated WithMutex injected while locked")
	}
	th.MutexUnlock(m)
}

func TestObservationalAssociationFeedsState(t *testing.T) {
	// The CloseAfterUnlock trigger observes unlocks through an
	// observational association and injects only into close.
	c, th := newProc()
	install(t, c, `<scenario>
	  <trigger id="cau" class="CloseAfterUnlock"><args><distance>2</distance></args></trigger>
	  <function name="pthread_mutex_unlock" return="unused" errno="unused">
	    <reftrigger ref="cau" />
	  </function>
	  <function name="close" return="-1" errno="EIO">
	    <reftrigger ref="cau" />
	  </function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	// close before any unlock: passes through.
	if th.Close(fd) != 0 {
		t.Fatal("close before unlock was injected")
	}
	m := c.MutexInit()
	th.MutexLock(m)
	th.MutexUnlock(m)
	fd = th.Open("/f", libsim.O_RDONLY)
	if th.Close(fd) != -1 || th.Errno() != errno.EIO {
		t.Fatal("close after unlock not injected")
	}
}

func TestSingletonInConjunction(t *testing.T) {
	c, th := newProc()
	install(t, c, `<scenario>
	  <trigger id="always" class="CallCountTrigger"><args><from>1</from></args></trigger>
	  <trigger id="once" class="SingletonTrigger" />
	  <function name="read" return="-1" errno="EIO">
	    <reftrigger ref="always" />
	    <reftrigger ref="once" />
	  </function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	if th.Read(fd, buf) != -1 {
		t.Fatal("first read should inject")
	}
	for i := 0; i < 5; i++ {
		if th.Read(fd, buf) == -1 {
			t.Fatal("singleton injected twice")
		}
	}
}

func TestShortCircuitSkipsLaterTriggers(t *testing.T) {
	// Singleton placed after an n-th-call trigger must not burn its
	// one shot on calls where the first trigger is false (§4.3).
	c, th := newProc()
	install(t, c, `<scenario>
	  <trigger id="n3" class="CallCountTrigger"><args><n>3</n></args></trigger>
	  <trigger id="once" class="SingletonTrigger" />
	  <function name="read" return="-1" errno="EIO">
	    <reftrigger ref="n3" />
	    <reftrigger ref="once" />
	  </function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	th.Read(fd, buf)
	th.Read(fd, buf)
	if th.Read(fd, buf) != -1 {
		t.Fatal("third read should inject: singleton was evaluated too early")
	}
}

func TestMaxInjections(t *testing.T) {
	c, th := newProc()
	r := install(t, c, `<scenario>
	  <trigger id="always" class="CallCountTrigger"><args><from>1</from></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="always" /></function>
	</scenario>`, WithMaxInjections(2))
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	injected := 0
	for i := 0; i < 6; i++ {
		if th.Read(fd, buf) == -1 {
			injected++
		}
	}
	if injected != 2 || r.Injections() != 2 {
		t.Fatalf("injected %d (counter %d), want 2", injected, r.Injections())
	}
}

func TestLogRecords(t *testing.T) {
	c, th := newProc()
	r := install(t, c, `<scenario>
	  <trigger id="n2" class="CallCountTrigger"><args><n>2</n></args></trigger>
	  <function name="read" return="-1" errno="EINTR"><reftrigger ref="n2" /></function>
	</scenario>`)
	pop := th.Enter("app", "loader", 0x1234)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	th.Read(fd, buf)
	th.Read(fd, buf)
	pop()
	recs := r.Log().Records()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	rec := recs[0]
	if rec.Func != "read" || rec.Retval != -1 || rec.Errno != errno.EINTR || rec.Count != 2 {
		t.Fatalf("record %+v", rec)
	}
	if len(rec.Triggers) != 1 || rec.Triggers[0] != "n2" {
		t.Fatalf("trigger ids %v", rec.Triggers)
	}
	found := false
	for _, f := range rec.Stack {
		if f.Func == "loader" && f.Offset == 0x1234 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stack lost: %v", rec.Stack)
	}
	if !strings.Contains(r.Log().String(), "inject read -> -1 errno=EINTR") {
		t.Fatalf("log text:\n%s", r.Log().String())
	}
}

func TestReplayScenarioReproducesInjection(t *testing.T) {
	c, th := newProc()
	r := install(t, c, `<scenario>
	  <trigger id="n3" class="CallCountTrigger"><args><n>3</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="n3" /></function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	for i := 0; i < 4; i++ {
		th.Read(fd, buf)
	}
	rec := r.Log().Records()[0]
	r.Uninstall()

	// Fresh process, replay scenario: same injection on the same call.
	c2 := libsim.New(1 << 20)
	c2.MustWriteFile("/f", []byte("hello"))
	th2 := c2.NewThread("test", "main")
	rep, err := New(c2, rec.ReplayScenario())
	if err != nil {
		t.Fatal(err)
	}
	rep.Install()
	defer rep.Uninstall()
	fd2 := th2.Open("/f", libsim.O_RDONLY)
	results := make([]int64, 4)
	for i := range results {
		results[i] = th2.Read(fd2, buf)
	}
	if results[2] != -1 || results[0] == -1 || results[1] == -1 || results[3] == -1 {
		t.Fatalf("replay results %v, want injection only on call 3", results)
	}
}

func TestRandomSeedReproducible(t *testing.T) {
	run := func(seed int64) []int64 {
		c := libsim.New(1 << 20)
		c.MustWriteFile("/f", []byte("hello"))
		th := c.NewThread("test", "main")
		s, _ := scenario.ParseString(`<scenario>
		  <trigger id="rnd" class="RandomTrigger"><args><probability>0.5</probability></args></trigger>
		  <function name="read" return="-1" errno="EIO"><reftrigger ref="rnd" /></function>
		</scenario>`)
		r, _ := New(c, s, WithSeed(seed))
		r.Install()
		defer r.Uninstall()
		fd := th.Open("/f", libsim.O_RDONLY)
		buf := make([]byte, 1)
		out := make([]int64, 32)
		for i := range out {
			out[i] = th.Read(fd, buf)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	cDiff := run(8)
	same := true
	for i := range a {
		if a[i] != cDiff[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical outcomes (suspicious)")
	}
}

func TestMisconfiguredTriggerNeverFires(t *testing.T) {
	c, th := newProc()
	r := install(t, c, `<scenario>
	  <trigger id="bad" class="CallCountTrigger" />
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="bad" /></function>
	</scenario>`)
	fd := th.Open("/f", libsim.O_RDONLY)
	buf := make([]byte, 1)
	if th.Read(fd, buf) == -1 {
		t.Fatal("misconfigured trigger injected")
	}
	if len(r.Log().TriggerErrors()) != 1 {
		t.Fatal("init error not surfaced in log")
	}
}

func TestTriggerInstanceAccess(t *testing.T) {
	c, _ := newProc()
	r := install(t, c, `<scenario>
	  <trigger id="once" class="SingletonTrigger" />
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="once" /></function>
	</scenario>`)
	tr, err := r.TriggerInstance("once")
	if err != nil || tr == nil {
		t.Fatalf("TriggerInstance: %v", err)
	}
	if _, err := r.TriggerInstance("ghost"); err == nil {
		t.Fatal("unknown instance id accepted")
	}
}

func TestValidateRejectedAtNew(t *testing.T) {
	c, _ := newProc()
	s, _ := scenario.ParseString(`<scenario>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="ghost" /></function>
	</scenario>`)
	if _, err := New(c, s); err == nil {
		t.Fatal("invalid scenario accepted by New")
	}
}
