package trigger

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"lfi/internal/interpose"
)

// This file implements the six stock triggers of §3.2: call stack,
// program state, call count, singleton, random, and distributed.

func init() {
	Register("CallStackTrigger", func() Trigger { return &CallStack{} })
	Register("ProgramStateTrigger", func() Trigger { return &ProgramState{} })
	Register("CallCountTrigger", func() Trigger { return &CallCount{} })
	Register("SingletonTrigger", func() Trigger { return &Singleton{} })
	Register("RandomTrigger", func() Trigger { return &Random{} })
	Register("DistributedTrigger", func() Trigger { return &Distributed{} })
}

// --- call stack -----------------------------------------------------------

// FrameSpec identifies one user-provided stack frame. Frames can be
// matched by module name + binary offset, by file/line (DWARF debug
// info), by function name, or any combination; unset fields match
// anything.
type FrameSpec struct {
	Module string
	Func   string
	Offset uint64 // 0 = unset
	File   string
	Line   int // 0 = unset
}

// Matches reports whether a stack frame satisfies the spec.
func (s FrameSpec) Matches(f interpose.Frame) bool {
	if s.Module != "" && s.Module != f.Module {
		return false
	}
	if s.Func != "" && s.Func != f.Func {
		return false
	}
	if s.Offset != 0 && s.Offset != f.Offset {
		return false
	}
	if s.File != "" && s.File != f.File {
		return false
	}
	if s.Line != 0 && s.Line != f.Line {
		return false
	}
	return true
}

// CallStack fires when the current call stack contains the configured
// frames as a subsequence (outermost first). The analyzer-generated
// scenarios use a single module+offset frame identifying the vulnerable
// call site.
type CallStack struct {
	Base
	Frames []FrameSpec
}

// Init parses <frame> children: <module>, <function>, <offset> (hex or
// decimal), <file>, <line>.
func (t *CallStack) Init(args *Args) error {
	for _, fr := range args.ChildrenNamed("frame") {
		spec := FrameSpec{
			Module: fr.String("module", ""),
			Func:   fr.String("function", ""),
			File:   fr.String("file", ""),
			Line:   int(fr.Int("line", 0)),
		}
		if off := fr.String("offset", ""); off != "" {
			v, err := strconv.ParseUint(off, 16, 64)
			if err != nil {
				v2, err2 := strconv.ParseUint(off, 0, 64)
				if err2 != nil {
					return fmt.Errorf("CallStackTrigger: bad offset %q", off)
				}
				v = v2
			}
			spec.Offset = v
		}
		t.Frames = append(t.Frames, spec)
	}
	if len(t.Frames) == 0 {
		return fmt.Errorf("CallStackTrigger: no <frame> elements")
	}
	return nil
}

// Eval implements the subsequence match over the virtual stack.
func (t *CallStack) Eval(call *interpose.Call) bool {
	i := 0
	for _, f := range call.Stack() {
		if i < len(t.Frames) && t.Frames[i].Matches(f) {
			i++
		}
	}
	return i == len(t.Frames)
}

// --- program state ----------------------------------------------------------

// ProgramState fires when a relation between program variables holds,
// e.g. numConnections==maxConnections or thread_count>64. The stock
// trigger supports eq/ne/lt/le/gt/ge between a variable and either a
// literal or a second variable.
type ProgramState struct {
	Base
	Var   string
	Op    string
	Value int64
	Var2  string // when set, compared instead of Value
}

// Init parses <var>, <op> (default eq), and <value> or <var2>.
func (t *ProgramState) Init(args *Args) error {
	t.Var = args.String("var", "")
	if t.Var == "" {
		return fmt.Errorf("ProgramStateTrigger: missing <var>")
	}
	t.Op = args.String("op", "eq")
	switch t.Op {
	case "eq", "ne", "lt", "le", "gt", "ge":
	default:
		return fmt.Errorf("ProgramStateTrigger: unknown op %q", t.Op)
	}
	t.Var2 = args.String("var2", "")
	t.Value = args.Int("value", 0)
	return nil
}

// Eval reads the variables through the raw inspector and applies the
// relation. Unknown variables evaluate to false (no injection).
func (t *ProgramState) Eval(*interpose.Call) bool {
	if t.Env == nil || t.Env.Inspect == nil {
		return false
	}
	a, ok := t.Env.Inspect.ReadVar(t.Var)
	if !ok {
		return false
	}
	b := t.Value
	if t.Var2 != "" {
		if b, ok = t.Env.Inspect.ReadVar(t.Var2); !ok {
			return false
		}
	}
	switch t.Op {
	case "eq":
		return a == b
	case "ne":
		return a != b
	case "lt":
		return a < b
	case "le":
		return a <= b
	case "gt":
		return a > b
	case "ge":
		return a >= b
	}
	return false
}

// --- call count --------------------------------------------------------------

// CallCount fires exactly on the n-th interception of the associated
// function (1-based). With <every> set it instead fires on every n-th
// call, and with <from>/<to> on a count window — the generalization used
// by the PBFT DoS bursts ("inject 500 consecutive faults").
type CallCount struct {
	Base
	N     uint64
	Every uint64
	From  uint64
	To    uint64
}

// Init parses <n>, or <every>, or <from>/<to>.
func (t *CallCount) Init(args *Args) error {
	t.N = uint64(args.Int("n", 0))
	t.Every = uint64(args.Int("every", 0))
	t.From = uint64(args.Int("from", 0))
	t.To = uint64(args.Int("to", 0))
	if t.N == 0 && t.Every == 0 && t.From == 0 {
		return fmt.Errorf("CallCountTrigger: need <n>, <every>, or <from>/<to>")
	}
	return nil
}

// Eval compares against the dispatcher-maintained per-function count.
func (t *CallCount) Eval(call *interpose.Call) bool {
	switch {
	case t.N != 0:
		return call.Count == t.N
	case t.Every != 0:
		return call.Count%t.Every == 0
	default:
		return call.Count >= t.From && (t.To == 0 || call.Count <= t.To)
	}
}

// --- singleton ----------------------------------------------------------------

// Singleton fires exactly once, then never again. Composed at the end of
// a conjunction it ensures a fault is injected only the first time the
// other triggers all hold (§3.2).
type Singleton struct {
	Base
	fired atomic.Bool
}

// Eval returns true on the first evaluation only.
func (t *Singleton) Eval(*interpose.Call) bool {
	return t.fired.CompareAndSwap(false, true)
}

// Reset re-arms the singleton (between controller test runs).
func (t *Singleton) Reset() { t.fired.Store(false) }

// --- random -------------------------------------------------------------------

// Random fires with a configurable probability.
type Random struct {
	Base
	P float64
}

// Init parses <probability> (default 0, i.e. never).
func (t *Random) Init(args *Args) error {
	t.P = args.Float("probability", 0)
	if t.P < 0 || t.P > 1 {
		return fmt.Errorf("RandomTrigger: probability %v out of [0,1]", t.P)
	}
	return nil
}

// Eval draws from the runtime's deterministic random source.
func (t *Random) Eval(*interpose.Call) bool {
	if t.Env == nil || t.Env.Rand == nil {
		return false
	}
	return t.Env.Rand() < t.P
}

// --- distributed ----------------------------------------------------------------

// Distributed forwards the intercepted call (node, function, arguments,
// stack) to the central controller, which decides based on its global
// view of the system. To minimize overhead it should be composed after
// node-local triggers so the controller is consulted only when the
// decision cannot be made locally (§3.2).
type Distributed struct {
	Base
}

// Eval defers to the central decider; with none configured it never fires.
func (t *Distributed) Eval(call *interpose.Call) bool {
	if t.Env == nil || t.Env.Dist == nil {
		return false
	}
	return t.Env.Dist.Decide(call)
}

// --- shared helper state for cross-call triggers -----------------------------

// perThread is a tiny concurrent map keyed by thread id, shared by the
// stateful extra triggers.
type perThread[T any] struct {
	mu sync.Mutex
	m  map[int]T
}

func (p *perThread[T]) get(tid int) T {
	p.mu.Lock()
	defer p.mu.Unlock()
	var zero T
	if p.m == nil {
		return zero
	}
	return p.m[tid]
}

func (p *perThread[T]) set(tid int, v T) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[int]T)
	}
	p.m[tid] = v
}
