// Package trigger implements LFI's fault-injection triggers (§3 of the
// paper): pluggable predicates that decide, per intercepted library
// call, whether a fault should be injected.
//
// A trigger mirrors the paper's C++ Trigger interface — an optional Init
// that receives the <args> XML subtree from the injection scenario, and
// an Eval invoked on every interception of an associated function.
// Triggers may keep state across Evals (the paper's
// ReadPipe1K4KwithMutex counts mutex locks, for example).
//
// Trigger classes are registered by name in a global registry — the
// paper's Registry-pattern equivalent of Java's Class.forName — so that
// scenarios can reference them with class="Name".
package trigger

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"lfi/internal/interpose"
)

// Args is the parsed <args> element of a trigger declaration: a generic
// XML tree, playing the role of the xmlNodePtr the paper hands to Init.
type Args struct {
	Name     string
	Text     string
	Attr     map[string]string
	Children []*Args
}

// Child returns the first child element with the given name, or nil.
func (a *Args) Child(name string) *Args {
	if a == nil {
		return nil
	}
	for _, c := range a.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name.
func (a *Args) ChildrenNamed(name string) []*Args {
	if a == nil {
		return nil
	}
	var out []*Args
	for _, c := range a.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// String returns the text of the named child, or def when absent.
func (a *Args) String(name, def string) string {
	if c := a.Child(name); c != nil {
		return c.Text
	}
	return def
}

// Int returns the integer value of the named child, or def when absent
// or malformed. Hexadecimal values may use a 0x prefix.
func (a *Args) Int(name string, def int64) int64 {
	c := a.Child(name)
	if c == nil {
		return def
	}
	v, err := strconv.ParseInt(c.Text, 0, 64)
	if err != nil {
		return def
	}
	return v
}

// Float returns the float value of the named child, or def.
func (a *Args) Float(name string, def float64) float64 {
	c := a.Child(name)
	if c == nil {
		return def
	}
	v, err := strconv.ParseFloat(c.Text, 64)
	if err != nil {
		return def
	}
	return v
}

// Inspector gives triggers raw (un-interposed) access to process state,
// the analogue of the paper's triggers calling fstat/fcntl or reading
// program variables directly. The core runtime adapts libsim.C to it.
type Inspector interface {
	// FDMode returns the st_mode format bits of an open descriptor.
	FDMode(fd int64) (mode int64, ok bool)
	// Nonblocking reports whether a descriptor has O_NONBLOCK set.
	Nonblocking(fd int64) bool
	// ReadVar reads a named program variable (global state).
	ReadVar(name string) (int64, bool)
}

// Decider is the central controller consulted by distributed triggers;
// distsim implements it.
type Decider interface {
	Decide(call *interpose.Call) bool
}

// Env is ambient state handed to triggers that need more than the call
// itself: a deterministic random source, raw process inspection, and the
// distributed-injection controller.
type Env struct {
	Rand    func() float64 // uniform [0,1)
	Inspect Inspector
	Dist    Decider
}

// Trigger is the paper's Trigger interface. Init is optional in spirit:
// implementations that need no parameters simply ignore args. Eval must
// be cheap — it runs on every interception of an associated function.
type Trigger interface {
	Init(args *Args) error
	Eval(call *interpose.Call) bool
}

// EnvBinder is implemented by triggers that need the Env; the runtime
// calls SetEnv after instantiation and before Init.
type EnvBinder interface {
	SetEnv(env *Env)
}

// Base provides a no-op Init and Env storage, so concrete triggers only
// implement what they need (the paper's abstract base class).
type Base struct {
	Env *Env
}

// Init implements Trigger with the paper's empty default.
func (b *Base) Init(*Args) error { return nil }

// SetEnv implements EnvBinder.
func (b *Base) SetEnv(env *Env) { b.Env = env }

// Factory constructs a fresh trigger instance.
type Factory func() Trigger

var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: make(map[string]Factory)}

// Register adds a trigger class to the registry. It panics on duplicate
// names, which would indicate two classes fighting over one scenario
// identifier. Call it from an init function — the Go equivalent of the
// paper's DECLARE_TRIGGER static-initialization trick.
func Register(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic("trigger: duplicate registration of " + name)
	}
	registry.m[name] = f
}

// New instantiates a trigger class by name.
func New(name string) (Trigger, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("trigger: unknown class %q", name)
	}
	return f(), nil
}

// Classes returns the sorted names of all registered trigger classes.
func Classes() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
