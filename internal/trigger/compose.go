package trigger

import "lfi/internal/interpose"

// Composition (§4.2): conjunction, disjunction, and negation of
// triggers. The runtime composes conjunctions from the <reftrigger> list
// of one <function> element and disjunctions from repeated <function>
// elements; these types also let custom triggers and tests compose
// programmatically.

// And fires only when every child fires. Evaluation short-circuits on
// the first false child (§4.3), so order the cheap triggers first. Note
// that stateful children placed after an earlier false child will not
// see the call — the same behaviour as C's && and as LFI.
type And struct {
	Children []Trigger
}

// Init is a no-op; children are initialized individually.
func (t *And) Init(*Args) error { return nil }

// Eval short-circuits like a C logical expression.
func (t *And) Eval(call *interpose.Call) bool {
	for _, c := range t.Children {
		if !c.Eval(call) {
			return false
		}
	}
	return len(t.Children) > 0
}

// Or fires when any child fires, short-circuiting on the first true.
type Or struct {
	Children []Trigger
}

// Init is a no-op; children are initialized individually.
func (t *Or) Init(*Args) error { return nil }

// Eval short-circuits on the first true child.
func (t *Or) Eval(call *interpose.Call) bool {
	for _, c := range t.Children {
		if c.Eval(call) {
			return true
		}
	}
	return false
}

// Not inverts a trigger's decision.
type Not struct {
	Child Trigger
}

// Init is a no-op; the child is initialized individually.
func (t *Not) Init(*Args) error { return nil }

// Eval inverts the child's verdict.
func (t *Not) Eval(call *interpose.Call) bool { return !t.Child.Eval(call) }

// FuncTrigger adapts a plain predicate to the Trigger interface, which
// keeps tests and examples concise.
type FuncTrigger func(call *interpose.Call) bool

// Init is a no-op.
func (f FuncTrigger) Init(*Args) error { return nil }

// Eval calls the wrapped predicate.
func (f FuncTrigger) Eval(call *interpose.Call) bool { return f(call) }
