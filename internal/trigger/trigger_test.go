package trigger

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lfi/internal/interpose"
)

func args(kv ...string) *Args {
	a := &Args{Name: "args"}
	for i := 0; i+1 < len(kv); i += 2 {
		a.Children = append(a.Children, &Args{Name: kv[i], Text: kv[i+1]})
	}
	return a
}

func mustNew(t *testing.T, class string, a *Args, env *Env) Trigger {
	t.Helper()
	tr, err := New(class)
	if err != nil {
		t.Fatal(err)
	}
	if env != nil {
		if b, ok := tr.(EnvBinder); ok {
			b.SetEnv(env)
		}
	}
	if a == nil {
		a = &Args{Name: "args"}
	}
	if err := tr.Init(a); err != nil {
		t.Fatal(err)
	}
	return tr
}

// --- registry -----------------------------------------------------------

func TestRegistryStockClasses(t *testing.T) {
	for _, name := range []string{
		"CallStackTrigger", "ProgramStateTrigger", "CallCountTrigger",
		"SingletonTrigger", "RandomTrigger", "DistributedTrigger",
		"WithMutex", "ReadPipe", "ArgEquals", "NonBlockingFD",
		"CloseAfterUnlock", "FuncIs",
	} {
		if _, err := New(name); err != nil {
			t.Errorf("stock class %s missing: %v", name, err)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("NoSuchTrigger"); err == nil {
		t.Fatal("unknown class did not error")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("CallStackTrigger", func() Trigger { return &CallStack{} })
}

func TestClassesSorted(t *testing.T) {
	cs := Classes()
	if len(cs) < 6 {
		t.Fatalf("only %d classes", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("Classes not sorted at %d", i)
		}
	}
}

// --- args helpers --------------------------------------------------------

func TestArgsAccessors(t *testing.T) {
	a := args("low", "1024", "p", "0.5", "hex", "0x10")
	if a.Int("low", 0) != 1024 {
		t.Fatal("Int")
	}
	if a.Int("hex", 0) != 16 {
		t.Fatal("hex Int")
	}
	if a.Int("missing", 7) != 7 {
		t.Fatal("Int default")
	}
	if a.Float("p", 0) != 0.5 {
		t.Fatal("Float")
	}
	if a.String("missing", "d") != "d" {
		t.Fatal("String default")
	}
	if a.Child("nope") != nil {
		t.Fatal("Child on missing")
	}
	var nilArgs *Args
	if nilArgs.Child("x") != nil || nilArgs.ChildrenNamed("x") != nil {
		t.Fatal("nil Args accessors")
	}
}

// --- call stack -----------------------------------------------------------

func stackCall(frames ...interpose.Frame) *interpose.Call {
	c := &interpose.Call{Func: "read"}
	c.SetStack(frames)
	return c
}

func TestCallStackSubsequence(t *testing.T) {
	a := &Args{Name: "args", Children: []*Args{
		{Name: "frame", Children: []*Args{{Name: "module", Text: "app"}, {Name: "function", Text: "outer"}}},
		{Name: "frame", Children: []*Args{{Name: "function", Text: "inner"}}},
	}}
	tr := mustNew(t, "CallStackTrigger", a, nil)
	match := stackCall(
		interpose.Frame{Module: "app", Func: "main"},
		interpose.Frame{Module: "app", Func: "outer"},
		interpose.Frame{Module: "app", Func: "mid"},
		interpose.Frame{Module: "app", Func: "inner"},
	)
	if !tr.Eval(match) {
		t.Fatal("subsequence should match")
	}
	wrongOrder := stackCall(
		interpose.Frame{Module: "app", Func: "inner"},
		interpose.Frame{Module: "app", Func: "outer"},
	)
	if tr.Eval(wrongOrder) {
		t.Fatal("out-of-order frames matched")
	}
}

func TestCallStackOffsetHex(t *testing.T) {
	// The paper's analyzer emits bare hex offsets like 8054a69.
	a := &Args{Name: "args", Children: []*Args{
		{Name: "frame", Children: []*Args{
			{Name: "module", Text: "bft/simple-server"},
			{Name: "offset", Text: "8054a69"},
		}},
	}}
	tr := mustNew(t, "CallStackTrigger", a, nil)
	if !tr.Eval(stackCall(interpose.Frame{Module: "bft/simple-server", Offset: 0x8054a69})) {
		t.Fatal("hex offset frame should match")
	}
	if tr.Eval(stackCall(interpose.Frame{Module: "bft/simple-server", Offset: 0x1})) {
		t.Fatal("wrong offset matched")
	}
}

func TestCallStackFileLine(t *testing.T) {
	a := &Args{Name: "args", Children: []*Args{
		{Name: "frame", Children: []*Args{
			{Name: "file", Text: "xdiff/xmerge.c"},
			{Name: "line", Text: "567"},
		}},
	}}
	tr := mustNew(t, "CallStackTrigger", a, nil)
	if !tr.Eval(stackCall(interpose.Frame{File: "xdiff/xmerge.c", Line: 567})) {
		t.Fatal("file:line should match")
	}
	if tr.Eval(stackCall(interpose.Frame{File: "xdiff/xmerge.c", Line: 571})) {
		t.Fatal("wrong line matched")
	}
}

func TestCallStackNoFramesErrors(t *testing.T) {
	tr, _ := New("CallStackTrigger")
	if err := tr.Init(args()); err == nil {
		t.Fatal("empty frame list accepted")
	}
}

// --- program state ----------------------------------------------------------

type fakeInspector struct {
	vars  map[string]int64
	modes map[int64]int64
	nb    map[int64]bool
}

func (f *fakeInspector) FDMode(fd int64) (int64, bool) {
	m, ok := f.modes[fd]
	return m, ok
}
func (f *fakeInspector) Nonblocking(fd int64) bool { return f.nb[fd] }
func (f *fakeInspector) ReadVar(n string) (int64, bool) {
	v, ok := f.vars[n]
	return v, ok
}

func TestProgramStateOps(t *testing.T) {
	ins := &fakeInspector{vars: map[string]int64{"n": 64, "max": 64}}
	env := &Env{Inspect: ins}
	cases := []struct {
		op   string
		val  string
		want bool
	}{
		{"eq", "64", true}, {"eq", "63", false},
		{"ne", "63", true}, {"lt", "65", true}, {"le", "64", true},
		{"gt", "63", true}, {"ge", "65", false},
	}
	for _, c := range cases {
		tr := mustNew(t, "ProgramStateTrigger", args("var", "n", "op", c.op, "value", c.val), env)
		if got := tr.Eval(&interpose.Call{}); got != c.want {
			t.Errorf("n %s %s = %v, want %v", c.op, c.val, got, c.want)
		}
	}
}

func TestProgramStateVarVsVar(t *testing.T) {
	ins := &fakeInspector{vars: map[string]int64{"numConnections": 10, "maxConnections": 10}}
	tr := mustNew(t, "ProgramStateTrigger",
		args("var", "numConnections", "var2", "maxConnections"), &Env{Inspect: ins})
	if !tr.Eval(&interpose.Call{}) {
		t.Fatal("equal vars should fire")
	}
	ins.vars["numConnections"] = 9
	if tr.Eval(&interpose.Call{}) {
		t.Fatal("unequal vars fired")
	}
}

func TestProgramStateUnknownVar(t *testing.T) {
	tr := mustNew(t, "ProgramStateTrigger", args("var", "ghost"), &Env{Inspect: &fakeInspector{}})
	if tr.Eval(&interpose.Call{}) {
		t.Fatal("unknown var fired")
	}
}

func TestProgramStateBadOp(t *testing.T) {
	tr, _ := New("ProgramStateTrigger")
	if err := tr.Init(args("var", "x", "op", "xor")); err == nil {
		t.Fatal("bad op accepted")
	}
}

// --- call count ----------------------------------------------------------------

func TestCallCountNth(t *testing.T) {
	tr := mustNew(t, "CallCountTrigger", args("n", "3"), nil)
	for i := uint64(1); i <= 5; i++ {
		got := tr.Eval(&interpose.Call{Count: i})
		if got != (i == 3) {
			t.Errorf("count %d: %v", i, got)
		}
	}
}

func TestCallCountEvery(t *testing.T) {
	tr := mustNew(t, "CallCountTrigger", args("every", "2"), nil)
	fired := 0
	for i := uint64(1); i <= 10; i++ {
		if tr.Eval(&interpose.Call{Count: i}) {
			fired++
		}
	}
	if fired != 5 {
		t.Fatalf("every=2 fired %d/10", fired)
	}
}

func TestCallCountWindow(t *testing.T) {
	tr := mustNew(t, "CallCountTrigger", args("from", "10", "to", "12"), nil)
	for i := uint64(1); i <= 20; i++ {
		want := i >= 10 && i <= 12
		if got := tr.Eval(&interpose.Call{Count: i}); got != want {
			t.Errorf("count %d: %v want %v", i, got, want)
		}
	}
}

func TestCallCountOpenWindow(t *testing.T) {
	tr := mustNew(t, "CallCountTrigger", args("from", "500"), nil)
	if tr.Eval(&interpose.Call{Count: 499}) || !tr.Eval(&interpose.Call{Count: 10000}) {
		t.Fatal("open window wrong")
	}
}

func TestCallCountNoParamErrors(t *testing.T) {
	tr, _ := New("CallCountTrigger")
	if err := tr.Init(args()); err == nil {
		t.Fatal("empty call count accepted")
	}
}

// --- singleton ---------------------------------------------------------------------

func TestSingletonFiresOnce(t *testing.T) {
	tr := mustNew(t, "SingletonTrigger", nil, nil)
	if !tr.Eval(&interpose.Call{}) {
		t.Fatal("first eval false")
	}
	for i := 0; i < 10; i++ {
		if tr.Eval(&interpose.Call{}) {
			t.Fatal("fired twice")
		}
	}
	tr.(*Singleton).Reset()
	if !tr.Eval(&interpose.Call{}) {
		t.Fatal("reset did not re-arm")
	}
}

// --- random ---------------------------------------------------------------------------

func TestRandomProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	env := &Env{Rand: rng.Float64}
	tr := mustNew(t, "RandomTrigger", args("probability", "0.1"), env)
	fired := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if tr.Eval(&interpose.Call{}) {
			fired++
		}
	}
	if fired < 800 || fired > 1200 {
		t.Fatalf("p=0.1 fired %d/%d", fired, n)
	}
}

func TestRandomZeroAndOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	env := &Env{Rand: rng.Float64}
	never := mustNew(t, "RandomTrigger", args("probability", "0"), env)
	always := mustNew(t, "RandomTrigger", args("probability", "1"), env)
	for i := 0; i < 100; i++ {
		if never.Eval(&interpose.Call{}) {
			t.Fatal("p=0 fired")
		}
		if !always.Eval(&interpose.Call{}) {
			t.Fatal("p=1 did not fire")
		}
	}
}

func TestRandomBadProbability(t *testing.T) {
	tr, _ := New("RandomTrigger")
	if err := tr.Init(args("probability", "1.5")); err == nil {
		t.Fatal("p=1.5 accepted")
	}
}

// --- distributed -----------------------------------------------------------------------

type fakeDecider struct{ node string }

func (d *fakeDecider) Decide(c *interpose.Call) bool { return c.Node == d.node }

func TestDistributedDefersToDecider(t *testing.T) {
	tr := mustNew(t, "DistributedTrigger", nil, &Env{Dist: &fakeDecider{node: "R1"}})
	if !tr.Eval(&interpose.Call{Node: "R1"}) {
		t.Fatal("decider yes ignored")
	}
	if tr.Eval(&interpose.Call{Node: "R2"}) {
		t.Fatal("decider no ignored")
	}
}

func TestDistributedNoDecider(t *testing.T) {
	tr := mustNew(t, "DistributedTrigger", nil, &Env{})
	if tr.Eval(&interpose.Call{Node: "R1"}) {
		t.Fatal("fired without decider")
	}
}

// --- extras ------------------------------------------------------------------------------

func TestWithMutex(t *testing.T) {
	tr := mustNew(t, "WithMutex", nil, nil)
	unlocked := &interpose.Call{}
	unlocked.SetLocks(0)
	if tr.Eval(unlocked) {
		t.Fatal("fired without lock")
	}
	locked := &interpose.Call{}
	locked.SetLocks(2)
	if !tr.Eval(locked) {
		t.Fatal("did not fire with locks held")
	}
}

func TestReadPipe(t *testing.T) {
	ins := &fakeInspector{modes: map[int64]int64{5: 0x1000, 6: 0x8000}}
	env := &Env{Inspect: ins}
	tr := mustNew(t, "ReadPipe", args("low", "1024", "high", "4096"), env)
	mk := func(fn string, fd, size int64) *interpose.Call {
		return &interpose.Call{Func: fn, Args: []int64{fd, 0, size}}
	}
	if !tr.Eval(mk("read", 5, 2048)) {
		t.Fatal("pipe read in range should fire")
	}
	if tr.Eval(mk("read", 6, 2048)) {
		t.Fatal("regular file fired")
	}
	if tr.Eval(mk("read", 5, 512)) || tr.Eval(mk("read", 5, 8192)) {
		t.Fatal("out-of-range size fired")
	}
	if tr.Eval(mk("write", 5, 2048)) {
		t.Fatal("non-read function fired")
	}
}

func TestReadPipeBadBounds(t *testing.T) {
	tr, _ := New("ReadPipe")
	if err := tr.Init(args("low", "100", "high", "10")); err == nil {
		t.Fatal("low>high accepted")
	}
}

func TestArgEquals(t *testing.T) {
	tr := mustNew(t, "ArgEquals", args("index", "1", "value", "5"), nil)
	if !tr.Eval(&interpose.Call{Func: "fcntl", Args: []int64{3, 5, 0}}) {
		t.Fatal("matching arg should fire")
	}
	if tr.Eval(&interpose.Call{Func: "fcntl", Args: []int64{3, 4, 0}}) {
		t.Fatal("non-matching arg fired")
	}
}

func TestNonBlockingFD(t *testing.T) {
	ins := &fakeInspector{nb: map[int64]bool{7: true}}
	tr := mustNew(t, "NonBlockingFD", nil, &Env{Inspect: ins})
	if !tr.Eval(&interpose.Call{Args: []int64{7}}) {
		t.Fatal("nonblocking fd should fire")
	}
	if tr.Eval(&interpose.Call{Args: []int64{8}}) {
		t.Fatal("blocking fd fired")
	}
}

func TestCloseAfterUnlock(t *testing.T) {
	tr := mustNew(t, "CloseAfterUnlock", args("distance", "2"), nil)
	call := func(fn string) bool {
		return tr.Eval(&interpose.Call{Func: fn, Thread: 1})
	}
	// close before any unlock: never fires.
	if call("close") {
		t.Fatal("close before unlock fired")
	}
	call("pthread_mutex_unlock")
	if !call("close") {
		t.Fatal("close at distance 1 should fire")
	}
	// Re-arm: unlock, then burn the window with other calls.
	call("pthread_mutex_unlock")
	call("read")
	call("read")
	if call("close") {
		t.Fatal("close beyond distance fired")
	}
}

func TestCloseAfterUnlockPerThread(t *testing.T) {
	tr := mustNew(t, "CloseAfterUnlock", args("distance", "2"), nil)
	tr.Eval(&interpose.Call{Func: "pthread_mutex_unlock", Thread: 1})
	if tr.Eval(&interpose.Call{Func: "close", Thread: 2}) {
		t.Fatal("thread 2 close fired off thread 1 unlock")
	}
	if !tr.Eval(&interpose.Call{Func: "close", Thread: 1}) {
		t.Fatal("thread 1 close should fire")
	}
}

func TestFuncIs(t *testing.T) {
	tr := mustNew(t, "FuncIs", args("name", "close"), nil)
	if !tr.Eval(&interpose.Call{Func: "close"}) || tr.Eval(&interpose.Call{Func: "read"}) {
		t.Fatal("FuncIs mismatch")
	}
}

// --- composition ------------------------------------------------------------------------

func TestAndOrNotTruthTables(t *testing.T) {
	tt := FuncTrigger(func(*interpose.Call) bool { return true })
	ff := FuncTrigger(func(*interpose.Call) bool { return false })
	c := &interpose.Call{}
	if !(&And{Children: []Trigger{tt, tt}}).Eval(c) {
		t.Fatal("T∧T")
	}
	if (&And{Children: []Trigger{tt, ff}}).Eval(c) {
		t.Fatal("T∧F")
	}
	if (&And{}).Eval(c) {
		t.Fatal("empty And must not fire")
	}
	if !(&Or{Children: []Trigger{ff, tt}}).Eval(c) {
		t.Fatal("F∨T")
	}
	if (&Or{Children: []Trigger{ff, ff}}).Eval(c) {
		t.Fatal("F∨F")
	}
	if (&Not{Child: tt}).Eval(c) || !(&Not{Child: ff}).Eval(c) {
		t.Fatal("Not")
	}
}

func TestAndShortCircuit(t *testing.T) {
	evals := 0
	counting := FuncTrigger(func(*interpose.Call) bool { evals++; return false })
	never := FuncTrigger(func(*interpose.Call) bool { t.Fatal("short-circuit violated"); return false })
	and := &And{Children: []Trigger{counting, never}}
	and.Eval(&interpose.Call{})
	if evals != 1 {
		t.Fatalf("first child evaluated %d times", evals)
	}
}

func TestOrShortCircuit(t *testing.T) {
	never := FuncTrigger(func(*interpose.Call) bool { t.Fatal("short-circuit violated"); return false })
	or := &Or{Children: []Trigger{FuncTrigger(func(*interpose.Call) bool { return true }), never}}
	if !or.Eval(&interpose.Call{}) {
		t.Fatal("Or true lost")
	}
}

// Property: composition equals boolean combination of the leaves, for
// random leaf assignments.
func TestPropertyCompositionSemantics(t *testing.T) {
	f := func(vals []bool) bool {
		if len(vals) == 0 {
			return true
		}
		leaves := make([]Trigger, len(vals))
		want := true
		for i, v := range vals {
			v := v
			leaves[i] = FuncTrigger(func(*interpose.Call) bool { return v })
			want = want && v
		}
		and := &And{Children: leaves}
		if and.Eval(&interpose.Call{}) != want {
			return false
		}
		wantOr := false
		for _, v := range vals {
			wantOr = wantOr || v
		}
		or := &Or{Children: leaves}
		return or.Eval(&interpose.Call{}) == wantOr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
