package trigger

import (
	"fmt"
	"sync/atomic"

	"lfi/internal/interpose"
)

func init() {
	Register("SiteCountTrigger", func() Trigger { return &SiteCount{} })
}

// SiteCount fires on a window of its *own* evaluations: the n-th time
// this trigger instance is consulted (1-based), not the n-th
// interception of the function. CallCount compares against the
// dispatcher-maintained global per-function count, so a burst deep in a
// run is out of its reach once the function has already been called
// many times elsewhere. SiteCount instead counts locally, which makes
// it composable: placed in a conjunction AFTER a CallStackTrigger (the
// conjunction short-circuits, so a stateful child after a false child
// never sees the call), it counts only the calls made from that stack
// frame — "the from-th through to-th recvfrom *of this call site*",
// independent of how often the rest of the program called recvfrom.
// The explorer's call-stack window mutants are built exactly this way.
type SiteCount struct {
	Base
	From uint64
	To   uint64 // 0 = unbounded

	n atomic.Uint64
}

// Init parses <from> (required, >= 1) and <to> (0 = unbounded).
func (t *SiteCount) Init(args *Args) error {
	t.From = uint64(args.Int("from", 0))
	t.To = uint64(args.Int("to", 0))
	if t.From == 0 {
		return fmt.Errorf("SiteCountTrigger: need <from> >= 1")
	}
	if t.To != 0 && t.To < t.From {
		return fmt.Errorf("SiteCountTrigger: <to> %d < <from> %d", t.To, t.From)
	}
	return nil
}

// Eval counts this evaluation and fires inside the [From, To] window.
func (t *SiteCount) Eval(*interpose.Call) bool {
	n := t.n.Add(1)
	return n >= t.From && (t.To == 0 || n <= t.To)
}

// Reset re-arms the counter (between controller test runs).
func (t *SiteCount) Reset() { t.n.Store(0) }
