package trigger

import (
	"fmt"

	"lfi/internal/interpose"
)

// This file implements the specialized triggers used by the paper's
// evaluation: WithMutex and ReadPipe (§3.1/§4.2 composition example),
// ArgEquals (the fcntl cmd==F_GETLK trigger of Table 6), NonBlockingFD
// (the realism guard of §3.2), and CloseAfterUnlock (the 100%-precision
// trigger of Table 2).

func init() {
	Register("WithMutex", func() Trigger { return &WithMutex{} })
	Register("ReadPipe", func() Trigger { return &ReadPipe{} })
	Register("ArgEquals", func() Trigger { return &ArgEquals{} })
	Register("NonBlockingFD", func() Trigger { return &NonBlockingFD{} })
	Register("CloseAfterUnlock", func() Trigger { return &CloseAfterUnlock{} })
	Register("FuncIs", func() Trigger { return &FuncIs{} })
	Register("FDIsSocket", func() Trigger { return &FDIsSocket{} })
}

// FDIsSocket fires when the descriptor in argument 0 refers to a
// socket. It is the paper's Apache "Trigger 1": target apr_file_read
// calls whose descriptor points at a socket, checked via apr_stat (here
// the raw inspector).
type FDIsSocket struct {
	Base
}

// Eval checks the descriptor's mode bits.
func (t *FDIsSocket) Eval(call *interpose.Call) bool {
	if t.Env == nil || t.Env.Inspect == nil {
		return false
	}
	mode, ok := t.Env.Inspect.FDMode(call.Arg(0))
	return ok && mode&0xF000 == 0xC000 // S_ISSOCK
}

// WithMutex fires for any function called while the calling thread holds
// at least one POSIX mutex. The paper's version counts
// pthread_mutex_lock/unlock interceptions itself; here the thread's lock
// count rides on the Call, so Eval stays O(1) and composition-friendly.
type WithMutex struct {
	Base
}

// Eval checks the caller's held-lock count.
func (t *WithMutex) Eval(call *interpose.Call) bool { return call.Locks() > 0 }

// ReadPipe fires for read calls whose descriptor is a pipe and whose
// requested byte count lies in [Low, High] — the parametrized half of
// the paper's ReadPipe1K4KwithMutex composition example.
type ReadPipe struct {
	Base
	Low, High int64
}

// Init parses <low> and <high> (defaults 1 KB / 4 KB as in the paper).
func (t *ReadPipe) Init(args *Args) error {
	t.Low = args.Int("low", 1024)
	t.High = args.Int("high", 4096)
	if t.Low > t.High {
		return fmt.Errorf("ReadPipe: low %d > high %d", t.Low, t.High)
	}
	return nil
}

// Eval matches read(fd, buf, size): argument 0 is the descriptor,
// argument 2 the size. The descriptor type check goes through the raw
// inspector (the trigger's fstat).
func (t *ReadPipe) Eval(call *interpose.Call) bool {
	if call.Func != "read" {
		return false
	}
	size := call.Arg(2)
	if size < t.Low || size > t.High {
		return false
	}
	if t.Env == nil || t.Env.Inspect == nil {
		return false
	}
	mode, ok := t.Env.Inspect.FDMode(call.Arg(0))
	return ok && mode&0xF000 == 0x1000 // S_ISFIFO
}

// ArgEquals fires when the i-th word-sized argument equals a value —
// e.g. fcntl's cmd argument equals F_GETLK (Table 6, trigger 1).
type ArgEquals struct {
	Base
	Index int
	Value int64
}

// Init parses <index> and <value>.
func (t *ArgEquals) Init(args *Args) error {
	t.Index = int(args.Int("index", 0))
	t.Value = args.Int("value", 0)
	if t.Index < 0 {
		return fmt.Errorf("ArgEquals: negative index")
	}
	return nil
}

// Eval compares the argument.
func (t *ArgEquals) Eval(call *interpose.Call) bool {
	return call.Arg(t.Index) == t.Value
}

// NonBlockingFD fires only when the descriptor in argument 0 has
// O_NONBLOCK set. §3.2 recommends composing it with I/O injections that
// set EAGAIN, so the injected fault stays realistic (EAGAIN should only
// occur on non-blocking descriptors).
type NonBlockingFD struct {
	Base
}

// Eval checks the descriptor's status flags via the raw inspector.
func (t *NonBlockingFD) Eval(call *interpose.Call) bool {
	if t.Env == nil || t.Env.Inspect == nil {
		return false
	}
	return t.Env.Inspect.Nonblocking(call.Arg(0))
}

// CloseAfterUnlock fires for close calls that happen at most MaxDist
// library calls after the calling thread's most recent
// pthread_mutex_unlock. It is the paper's final Table 2 trigger: the
// MySQL double-unlock bug lives in cleanup code where close follows an
// unlock within two lines, and this trigger reproduced the bug 100% of
// the time with distance 2.
//
// The trigger must be associated with both close and
// pthread_mutex_unlock so that it observes unlocks (those associations
// use return="unused", so they never inject).
type CloseAfterUnlock struct {
	Base
	MaxDist int64
	// state per thread: calls seen since the last unlock; -1 = none yet.
	since perThread[*int64]
}

// Init parses <distance> (default 2, the paper's value).
func (t *CloseAfterUnlock) Init(args *Args) error {
	t.MaxDist = args.Int("distance", 2)
	if t.MaxDist < 0 {
		return fmt.Errorf("CloseAfterUnlock: negative distance")
	}
	return nil
}

// Eval updates per-thread distance state and decides for close calls.
func (t *CloseAfterUnlock) Eval(call *interpose.Call) bool {
	ctr := t.since.get(call.Thread)
	switch call.Func {
	case "pthread_mutex_unlock":
		if ctr == nil {
			ctr = new(int64)
			t.since.set(call.Thread, ctr)
		}
		*ctr = 0
		return false
	case "close":
		if ctr == nil {
			return false
		}
		*ctr++
		return *ctr <= t.MaxDist
	default:
		if ctr != nil {
			*ctr++
		}
		return false
	}
}

// FuncIs fires when the intercepted function has a given name. It is
// useful inside conjunctions where a stateful trigger is associated with
// several functions but the injection should happen in only one of them.
type FuncIs struct {
	Base
	Name string
}

// Init parses <name>.
func (t *FuncIs) Init(args *Args) error {
	t.Name = args.String("name", "")
	if t.Name == "" {
		return fmt.Errorf("FuncIs: missing <name>")
	}
	return nil
}

// Eval compares the function name.
func (t *FuncIs) Eval(call *interpose.Call) bool { return call.Func == t.Name }
