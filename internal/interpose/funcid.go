package interpose

import (
	"sync"
	"sync/atomic"
)

// FuncID is a dense integer identifier for an interposed function name.
// IDs are assigned by Intern in registration order starting at 1; the
// zero value means "not yet resolved" and is never handed out. Stubs
// intern their function name once (package init in libsim), so the hot
// dispatch path indexes arrays instead of hashing strings — the paper's
// equivalent is the stub knowing its own slot in the synthesized jump
// table.
type FuncID int32

// funcTable is the global, append-only interning table. Names are
// process-wide (the universe is the simulated libc surface plus whatever
// tests register), so a single table lets every Dispatcher share IDs.
// A nil names pointer means "empty" so that Intern works from package-
// variable initializers, which run before init functions.
var funcTable struct {
	mu    sync.Mutex
	ids   map[string]FuncID
	names atomic.Pointer[[]string] // index 0 is the invalid-ID sentinel
}

// Intern returns the stable FuncID for a function name, assigning the
// next dense ID on first sight. It is safe for concurrent use; stubs
// call it once at package init, never per call.
func Intern(name string) FuncID {
	if id, ok := LookupFunc(name); ok {
		return id
	}
	funcTable.mu.Lock()
	defer funcTable.mu.Unlock()
	if id, ok := funcTable.ids[name]; ok {
		return id
	}
	if funcTable.ids == nil {
		funcTable.ids = make(map[string]FuncID)
	}
	old := []string{""}
	if p := funcTable.names.Load(); p != nil {
		old = *p
	}
	id := FuncID(len(old))
	names := make([]string, len(old)+1)
	copy(names, old)
	names[id] = name
	funcTable.ids[name] = id
	funcTable.names.Store(&names)
	return id
}

// LookupFunc returns the FuncID of an already-interned name without
// creating one. It takes the table lock and is meant for cold paths
// (counter queries, hand-built Calls); hot paths hold a FuncID already.
func LookupFunc(name string) (FuncID, bool) {
	funcTable.mu.Lock()
	id, ok := funcTable.ids[name]
	funcTable.mu.Unlock()
	return id, ok
}

// FuncName returns the interned name for an ID ("" for invalid IDs).
// It is lock-free: the names slice is copy-on-write.
func FuncName(id FuncID) string {
	p := funcTable.names.Load()
	if p == nil {
		return ""
	}
	names := *p
	if id <= 0 || int(id) >= len(names) {
		return ""
	}
	return names[id]
}

// NumFuncs returns the size of the current FuncID universe including the
// invalid slot 0, i.e. every valid ID satisfies 0 < id < NumFuncs().
// Consumers size ID-indexed tables with it.
func NumFuncs() int {
	p := funcTable.names.Load()
	if p == nil {
		return 1
	}
	return len(*p)
}
