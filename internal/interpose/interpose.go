// Package interpose implements the shim layer between simulated programs
// and the simulated C library.
//
// In the paper, LFI synthesizes a shared library whose stub functions are
// spliced in front of the real library with LD_PRELOAD (UNIX) or Detours
// (Windows). Each stub resolves the original function, evaluates the
// triggers attached to that function, and either injects an erroneous
// return (plus side effects such as errno) or jumps to the original.
//
// Here the splice point is a dispatch table: every call made through
// libsim routes through Dispatcher.Dispatch, which consults the installed
// Hook. The decision procedure is identical to the paper's stub; only the
// splicing mechanism differs (documented in DESIGN.md).
package interpose

import (
	"sync"
	"sync/atomic"

	"lfi/internal/errno"
)

// Frame is one entry of a virtual call stack, identifying the program
// location from which a library call was (transitively) made. Module is
// the object-file name, Offset the call-site offset within that module's
// binary image, and File/Line optional DWARF-style debug info.
type Frame struct {
	Module string
	Func   string
	Offset uint64
	File   string
	Line   int
}

// Call describes one intercepted library call. It is what a stub passes
// to the trigger machinery: the function name, word-sized arguments, the
// calling thread's identity and stack, and the running per-function call
// count (1-based: the first call to a function has Count==1).
type Call struct {
	Func   string
	Args   []int64
	Thread int         // simulated thread id
	Stack  []Frame     // innermost frame last
	Count  uint64      // per-function call count, including this call
	Node   string      // node name in distributed setups ("" locally)
	Locks  int         // POSIX mutexes currently held by the thread
	Errno  errno.Errno // thread errno value before the call
}

// Arg returns the i-th argument or 0 when absent, mirroring the paper's
// convention that stubs pass exactly argc word-sized values.
func (c *Call) Arg(i int) int64 {
	if i < 0 || i >= len(c.Args) {
		return 0
	}
	return c.Args[i]
}

// Decision is a hook's verdict for one intercepted call.
type Decision struct {
	Inject bool
	Retval int64
	Errno  errno.Errno
}

// Hook is the interface the LFI runtime implements to observe and steer
// intercepted calls. Before is invoked for every dispatched call; if it
// returns Inject==true the original implementation is NOT executed and
// the caller observes (Retval, Errno). After is invoked only for calls
// that passed through, with the original result, so that stateful
// triggers and logs can observe real outcomes.
type Hook interface {
	Before(call *Call) Decision
	After(call *Call, retval int64, e errno.Errno)
}

// Dispatcher owns the interposition state for one simulated process. The
// zero value is ready to use and passes every call straight through.
type Dispatcher struct {
	mu     sync.RWMutex
	hook   Hook
	counts sync.Map // func name -> *uint64
	total  atomic.Uint64
}

// Install splices a hook in front of the library. Passing nil uninstalls.
func (d *Dispatcher) Install(h Hook) {
	d.mu.Lock()
	d.hook = h
	d.mu.Unlock()
}

// Installed reports whether a hook is currently spliced in.
func (d *Dispatcher) Installed() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.hook != nil
}

// TotalCalls returns the number of calls dispatched so far.
func (d *Dispatcher) TotalCalls() uint64 { return d.total.Load() }

// CallCount returns how many times the named function has been dispatched.
func (d *Dispatcher) CallCount(fn string) uint64 {
	if p, ok := d.counts.Load(fn); ok {
		return atomic.LoadUint64(p.(*uint64))
	}
	return 0
}

func (d *Dispatcher) bump(fn string) uint64 {
	p, ok := d.counts.Load(fn)
	if !ok {
		p, _ = d.counts.LoadOrStore(fn, new(uint64))
	}
	d.total.Add(1)
	return atomic.AddUint64(p.(*uint64), 1)
}

// ResetCounts zeroes all per-function call counters (used between test
// campaigns so call-count triggers are reproducible).
func (d *Dispatcher) ResetCounts() {
	d.counts.Range(func(k, v any) bool {
		atomic.StoreUint64(v.(*uint64), 0)
		return true
	})
	d.total.Store(0)
}

// Dispatch routes one library call through the shim. impl runs the
// original library implementation and returns (retval, errno). The
// returned values are what the calling program observes.
func (d *Dispatcher) Dispatch(call *Call, impl func() (int64, errno.Errno)) (int64, errno.Errno) {
	call.Count = d.bump(call.Func)

	d.mu.RLock()
	h := d.hook
	d.mu.RUnlock()

	if h != nil {
		if dec := h.Before(call); dec.Inject {
			return dec.Retval, dec.Errno
		}
	}
	ret, e := impl()
	if h != nil {
		h.After(call, ret, e)
	}
	return ret, e
}
