// Package interpose implements the shim layer between simulated programs
// and the simulated C library.
//
// In the paper, LFI synthesizes a shared library whose stub functions are
// spliced in front of the real library with LD_PRELOAD (UNIX) or Detours
// (Windows). Each stub resolves the original function, evaluates the
// triggers attached to that function, and either injects an erroneous
// return (plus side effects such as errno) or jumps to the original.
//
// Here the splice point is a dispatch table: every call made through
// libsim routes through Dispatcher.Dispatch, which consults the installed
// Hook. The decision procedure is identical to the paper's stub; only the
// splicing mechanism differs (documented in DESIGN.md).
//
// The dispatch path is built to be allocation-free when no fault can be
// injected: function names are interned to dense FuncIDs, per-function
// counters live in an ID-indexed table of cache-line-padded atomics, the
// hook is an atomic pointer, and the virtual stack / held-lock count are
// captured lazily, only when a trigger or the log actually reads them.
package interpose

import (
	"sync"
	"sync/atomic"

	"lfi/internal/errno"
)

// Frame is one entry of a virtual call stack, identifying the program
// location from which a library call was (transitively) made. Module is
// the object-file name, Offset the call-site offset within that module's
// binary image, and File/Line optional DWARF-style debug info.
type Frame struct {
	Module string
	Func   string
	Offset uint64
	File   string
	Line   int
}

// CallSource captures expensive call context on demand. libsim.Thread
// implements it; triggers that never look at the stack never pay for a
// stack copy.
type CallSource interface {
	// CaptureStack returns a snapshot of the virtual call stack,
	// innermost frame last. The caller owns the returned slice.
	CaptureStack() []Frame
	// CaptureLocks returns how many POSIX mutexes the calling thread
	// currently holds.
	CaptureLocks() int
}

// Call describes one intercepted library call. It is what a stub passes
// to the trigger machinery: the function identity, word-sized arguments,
// the calling thread, and the running per-function call count (1-based:
// the first call to a function has Count==1). Stack and held-lock
// context are materialized lazily through the Stack and Locks methods.
//
// Stubs reuse Call values between dispatches, so hooks must not retain a
// *Call (or its Args slice) past the dispatch that delivered it; the log
// copies what it needs.
type Call struct {
	// Func is the intercepted function's name; ID its interned id.
	// Hand-built Calls may set either: Dispatch resolves the other.
	Func string
	ID   FuncID

	Args   []int64
	Thread int         // simulated thread id
	Count  uint64      // per-function call count, including this call
	Node   string      // node name in distributed setups ("" locally)
	Errno  errno.Errno // thread errno value before the call

	// Source provides lazy stack/locks capture. Nil for hand-built
	// Calls, which preset the fields with SetStack/SetLocks instead.
	Source CallSource

	argv    [8]int64 // in-place storage for Args on the stub fast path
	stack   []Frame
	stackOK bool
	locks   int
	locksOK bool
}

// Prepare reinitializes a (possibly reused) Call for a new dispatch,
// copying args into the Call's own storage so stubs can pass
// stack-allocated slices.
func (c *Call) Prepare(id FuncID, thread int, node string, e errno.Errno, src CallSource, args []int64) {
	c.Func = FuncName(id)
	c.ID = id
	c.Thread = thread
	c.Count = 0
	c.Node = node
	c.Errno = e
	c.Source = src
	c.stack = nil
	c.stackOK = false
	c.locks = 0
	c.locksOK = false
	if len(args) <= len(c.argv) {
		n := copy(c.argv[:], args)
		c.Args = c.argv[:n:n]
	} else {
		c.Args = append([]int64(nil), args...)
	}
}

// Arg returns the i-th argument or 0 when absent, mirroring the paper's
// convention that stubs pass exactly argc word-sized values.
func (c *Call) Arg(i int) int64 {
	if i < 0 || i >= len(c.Args) {
		return 0
	}
	return c.Args[i]
}

// Stack returns the virtual call stack at the time of the call,
// innermost frame last, capturing it from the call's Source on first
// use. Callers must treat the result as read-only; it stays valid after
// the dispatch (the capture is a private snapshot).
func (c *Call) Stack() []Frame {
	if !c.stackOK {
		if c.Source != nil {
			c.stack = c.Source.CaptureStack()
		}
		c.stackOK = true
	}
	return c.stack
}

// Locks returns how many POSIX mutexes the calling thread held at the
// time of the call, capturing lazily like Stack.
func (c *Call) Locks() int {
	if !c.locksOK {
		if c.Source != nil {
			c.locks = c.Source.CaptureLocks()
		}
		c.locksOK = true
	}
	return c.locks
}

// SetStack presets the captured stack (tests and replay tooling build
// Calls by hand; dispatch stubs use a CallSource instead).
func (c *Call) SetStack(stack []Frame) {
	c.stack = stack
	c.stackOK = true
}

// SetLocks presets the held-lock count.
func (c *Call) SetLocks(n int) {
	c.locks = n
	c.locksOK = true
}

// Resolve fills in whichever of Func/ID a hand-built Call left unset
// and returns the id. Stub-built Calls arrive fully prepared, so this
// is a pair of comparisons on the hot path.
func (c *Call) Resolve() FuncID {
	id := c.ID
	if id == 0 {
		id = Intern(c.Func)
		c.ID = id
	}
	if c.Func == "" {
		c.Func = FuncName(id)
	}
	return id
}

// Decision is a hook's verdict for one intercepted call.
type Decision struct {
	Inject bool
	Retval int64
	Errno  errno.Errno
}

// Hook is the interface the LFI runtime implements to observe and steer
// intercepted calls. Before is invoked for every dispatched call; if it
// returns Inject==true the original implementation is NOT executed and
// the caller observes (Retval, Errno). After is invoked only for calls
// that passed through, with the original result, so that stateful
// triggers and logs can observe real outcomes.
type Hook interface {
	Before(call *Call) Decision
	After(call *Call, retval int64, e errno.Errno)
}

// PaddedUint64 is an atomic counter padded out to its own cache line so
// concurrent writers of adjacent counters do not false-share (64B line:
// 8B counter + 56B pad). The dispatcher's per-function counters and the
// core runtime's sharded eval counter both use it.
type PaddedUint64 struct {
	V atomic.Uint64
	_ [56]byte
}

// Dispatcher owns the interposition state for one simulated process. The
// zero value is ready to use and passes every call straight through.
type Dispatcher struct {
	// hook is consulted on every dispatch; a nil pointer means pass
	// everything through. The extra box indirection exists because Hook
	// is an interface and atomic.Pointer needs a concrete type.
	hook atomic.Pointer[hookBox]

	// counts is a FuncID-indexed table of padded counters. The table is
	// grown copy-on-write (the slice holds pointers, so counters loaded
	// from a stale table still receive their increments).
	counts atomic.Pointer[[]*PaddedUint64]
	growMu sync.Mutex

	total atomic.Uint64
}

type hookBox struct{ h Hook }

// Install splices a hook in front of the library. Passing nil uninstalls.
func (d *Dispatcher) Install(h Hook) {
	if h == nil {
		d.hook.Store(nil)
		return
	}
	d.hook.Store(&hookBox{h: h})
}

// Installed reports whether a hook is currently spliced in.
func (d *Dispatcher) Installed() bool { return d.hook.Load() != nil }

// TotalCalls returns the number of calls dispatched so far.
func (d *Dispatcher) TotalCalls() uint64 { return d.total.Load() }

// CallCount returns how many times the named function has been dispatched.
func (d *Dispatcher) CallCount(fn string) uint64 {
	id, ok := LookupFunc(fn)
	if !ok {
		return 0
	}
	if t := d.counts.Load(); t != nil && int(id) < len(*t) {
		return (*t)[id].V.Load()
	}
	return 0
}

// bump increments and returns the per-function counter for id.
func (d *Dispatcher) bump(id FuncID) uint64 {
	t := d.counts.Load()
	if t == nil || int(id) >= len(*t) {
		t = d.grow(id)
	}
	d.total.Add(1)
	return (*t)[id].V.Add(1)
}

// grow extends the counter table to cover id (and the whole current
// FuncID universe, so one grow per process is typical).
func (d *Dispatcher) grow(id FuncID) *[]*PaddedUint64 {
	d.growMu.Lock()
	defer d.growMu.Unlock()
	t := d.counts.Load()
	if t != nil && int(id) < len(*t) {
		return t
	}
	want := NumFuncs()
	if int(id) >= want {
		want = int(id) + 1
	}
	nt := make([]*PaddedUint64, want)
	var old []*PaddedUint64
	if t != nil {
		old = *t
	}
	copy(nt, old)
	backing := make([]PaddedUint64, want-len(old))
	for i := len(old); i < want; i++ {
		nt[i] = &backing[i-len(old)]
	}
	d.counts.Store(&nt)
	return &nt
}

// ResetCounts zeroes all per-function call counters (used between test
// campaigns so call-count triggers are reproducible).
func (d *Dispatcher) ResetCounts() {
	if t := d.counts.Load(); t != nil {
		for _, c := range *t {
			c.V.Store(0)
		}
	}
	d.total.Store(0)
}

// Dispatch routes one library call through the shim. impl runs the
// original library implementation and returns (retval, errno). The
// returned values are what the calling program observes.
func (d *Dispatcher) Dispatch(call *Call, impl func() (int64, errno.Errno)) (int64, errno.Errno) {
	call.Count = d.bump(call.Resolve())

	box := d.hook.Load()
	if box == nil {
		return impl()
	}
	if dec := box.h.Before(call); dec.Inject {
		return dec.Retval, dec.Errno
	}
	ret, e := impl()
	box.h.After(call, ret, e)
	return ret, e
}
