package interpose

import (
	"fmt"
	"sync"
	"testing"

	"lfi/internal/errno"
)

type fakeHook struct {
	mu      sync.Mutex
	befores []string
	afters  []string
	decide  func(*Call) Decision
}

func (h *fakeHook) Before(c *Call) Decision {
	h.mu.Lock()
	h.befores = append(h.befores, c.Func)
	h.mu.Unlock()
	if h.decide != nil {
		return h.decide(c)
	}
	return Decision{}
}

func (h *fakeHook) After(c *Call, rv int64, e errno.Errno) {
	h.mu.Lock()
	h.afters = append(h.afters, c.Func)
	h.mu.Unlock()
}

func TestDispatchPassThrough(t *testing.T) {
	var d Dispatcher
	ran := false
	rv, e := d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) {
		ran = true
		return 42, errno.OK
	})
	if !ran || rv != 42 || e != errno.OK {
		t.Fatalf("pass-through broken: ran=%v rv=%d e=%v", ran, rv, e)
	}
}

func TestDispatchInjectSkipsImpl(t *testing.T) {
	var d Dispatcher
	h := &fakeHook{decide: func(*Call) Decision {
		return Decision{Inject: true, Retval: -1, Errno: errno.EIO}
	}}
	d.Install(h)
	ran := false
	rv, e := d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) {
		ran = true
		return 0, errno.OK
	})
	if ran {
		t.Fatal("impl ran despite injection")
	}
	if rv != -1 || e != errno.EIO {
		t.Fatalf("got %d/%v", rv, e)
	}
	if len(h.afters) != 0 {
		t.Fatal("After called on injected call")
	}
}

func TestDispatchAfterOnPassThrough(t *testing.T) {
	var d Dispatcher
	h := &fakeHook{}
	d.Install(h)
	d.Dispatch(&Call{Func: "open"}, func() (int64, errno.Errno) { return 3, errno.OK })
	if len(h.befores) != 1 || len(h.afters) != 1 {
		t.Fatalf("hook calls: before=%d after=%d", len(h.befores), len(h.afters))
	}
}

func TestCallCounts(t *testing.T) {
	var d Dispatcher
	var counts []uint64
	h := &fakeHook{decide: func(c *Call) Decision {
		counts = append(counts, c.Count)
		return Decision{}
	}}
	d.Install(h)
	for i := 0; i < 3; i++ {
		d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
	}
	d.Dispatch(&Call{Func: "write"}, func() (int64, errno.Errno) { return 0, errno.OK })
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 3 || counts[3] != 1 {
		t.Fatalf("per-function counts wrong: %v", counts)
	}
	if d.CallCount("read") != 3 || d.CallCount("write") != 1 {
		t.Fatalf("CallCount: read=%d write=%d", d.CallCount("read"), d.CallCount("write"))
	}
	if d.TotalCalls() != 4 {
		t.Fatalf("TotalCalls = %d", d.TotalCalls())
	}
}

func TestResetCounts(t *testing.T) {
	var d Dispatcher
	d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
	d.ResetCounts()
	if d.CallCount("read") != 0 || d.TotalCalls() != 0 {
		t.Fatal("ResetCounts did not zero counters")
	}
	d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
	if d.CallCount("read") != 1 {
		t.Fatal("count after reset wrong")
	}
}

func TestUninstall(t *testing.T) {
	var d Dispatcher
	h := &fakeHook{decide: func(*Call) Decision {
		return Decision{Inject: true, Retval: -1, Errno: errno.EIO}
	}}
	d.Install(h)
	if !d.Installed() {
		t.Fatal("Installed() false after Install")
	}
	d.Install(nil)
	if d.Installed() {
		t.Fatal("Installed() true after uninstall")
	}
	rv, _ := d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 7, errno.OK })
	if rv != 7 {
		t.Fatal("uninstalled hook still injecting")
	}
}

func TestArgHelper(t *testing.T) {
	c := &Call{Args: []int64{10, 20}}
	if c.Arg(0) != 10 || c.Arg(1) != 20 {
		t.Fatal("Arg values wrong")
	}
	if c.Arg(2) != 0 || c.Arg(-1) != 0 {
		t.Fatal("out-of-range Arg should be 0")
	}
}

// TestConcurrentInstallDispatch hammers the dispatcher from worker
// goroutines while the hook is repeatedly installed and uninstalled —
// the campaign-parallel pattern. Run under -race this validates the
// atomic hook pointer and the copy-on-write counter table (counts must
// not be lost across table growth).
func TestConcurrentInstallDispatch(t *testing.T) {
	var d Dispatcher
	const workers = 8
	const callsPerWorker = 2000
	stop := make(chan struct{})
	var flips sync.WaitGroup
	flips.Add(1)
	go func() {
		defer flips.Done()
		h := &fakeHook{}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				d.Install(h)
			} else {
				d.Install(nil)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave an existing name with fresh ones so counter
			// table growth happens mid-flight.
			fresh := Intern(fmt.Sprintf("stress-fn-%d", w))
			for j := 0; j < callsPerWorker; j++ {
				d.Dispatch(&Call{ID: fnStress}, passImpl)
				d.Dispatch(&Call{ID: fresh}, passImpl)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flips.Wait()
	if got := d.CallCount("stress-shared"); got != workers*callsPerWorker {
		t.Fatalf("shared count = %d, want %d", got, workers*callsPerWorker)
	}
	for w := 0; w < workers; w++ {
		if got := d.CallCount(fmt.Sprintf("stress-fn-%d", w)); got != callsPerWorker {
			t.Fatalf("worker %d count = %d, want %d", w, got, callsPerWorker)
		}
	}
}

var fnStress = Intern("stress-shared")

func passImpl() (int64, errno.Errno) { return 0, errno.OK }

// TestLazyCaptureOnlyOnDemand verifies that Stack/Locks are captured
// once, lazily, from the CallSource.
func TestLazyCaptureOnlyOnDemand(t *testing.T) {
	src := &countingSource{frames: []Frame{{Module: "m", Func: "f"}}, locks: 3}
	c := &Call{}
	c.Prepare(Intern("lazy-fn"), 1, "", errno.OK, src, []int64{7})
	if src.stackCaptures != 0 || src.lockCaptures != 0 {
		t.Fatal("capture happened eagerly")
	}
	if len(c.Stack()) != 1 || c.Stack()[0].Func != "f" {
		t.Fatalf("stack: %v", c.Stack())
	}
	if c.Locks() != 3 || c.Locks() != 3 {
		t.Fatalf("locks: %d", c.Locks())
	}
	if src.stackCaptures != 1 || src.lockCaptures != 1 {
		t.Fatalf("captures: stack=%d locks=%d, want 1/1", src.stackCaptures, src.lockCaptures)
	}
	if c.Arg(0) != 7 {
		t.Fatalf("arg: %d", c.Arg(0))
	}
	// Reuse must reset memoization.
	c.Prepare(Intern("lazy-fn"), 1, "", errno.OK, &countingSource{}, nil)
	if len(c.Stack()) != 0 || c.Locks() != 0 {
		t.Fatal("stale capture survived Prepare")
	}
}

type countingSource struct {
	frames        []Frame
	locks         int
	stackCaptures int
	lockCaptures  int
}

func (s *countingSource) CaptureStack() []Frame {
	s.stackCaptures++
	return append([]Frame(nil), s.frames...)
}
func (s *countingSource) CaptureLocks() int {
	s.lockCaptures++
	return s.locks
}

// TestInternStableDense checks the FuncID contract: dense, stable,
// shared across dispatchers.
func TestInternStableDense(t *testing.T) {
	a, b := Intern("intern-a"), Intern("intern-a")
	if a != b || a == 0 {
		t.Fatalf("Intern not stable: %d vs %d", a, b)
	}
	if got := FuncName(a); got != "intern-a" {
		t.Fatalf("FuncName: %q", got)
	}
	if id, ok := LookupFunc("intern-a"); !ok || id != a {
		t.Fatalf("LookupFunc: %d %v", id, ok)
	}
	if _, ok := LookupFunc("never-interned"); ok {
		t.Fatal("LookupFunc invented an id")
	}
	if FuncName(0) != "" || FuncName(FuncID(1<<30)) != "" {
		t.Fatal("FuncName out-of-range not empty")
	}
	if n := NumFuncs(); int(a) >= n {
		t.Fatalf("NumFuncs %d does not cover id %d", n, a)
	}
}

func TestConcurrentDispatch(t *testing.T) {
	var d Dispatcher
	d.Install(&fakeHook{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
			}
		}()
	}
	wg.Wait()
	if d.CallCount("read") != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", d.CallCount("read"))
	}
}
