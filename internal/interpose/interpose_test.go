package interpose

import (
	"sync"
	"testing"

	"lfi/internal/errno"
)

type fakeHook struct {
	mu      sync.Mutex
	befores []string
	afters  []string
	decide  func(*Call) Decision
}

func (h *fakeHook) Before(c *Call) Decision {
	h.mu.Lock()
	h.befores = append(h.befores, c.Func)
	h.mu.Unlock()
	if h.decide != nil {
		return h.decide(c)
	}
	return Decision{}
}

func (h *fakeHook) After(c *Call, rv int64, e errno.Errno) {
	h.mu.Lock()
	h.afters = append(h.afters, c.Func)
	h.mu.Unlock()
}

func TestDispatchPassThrough(t *testing.T) {
	var d Dispatcher
	ran := false
	rv, e := d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) {
		ran = true
		return 42, errno.OK
	})
	if !ran || rv != 42 || e != errno.OK {
		t.Fatalf("pass-through broken: ran=%v rv=%d e=%v", ran, rv, e)
	}
}

func TestDispatchInjectSkipsImpl(t *testing.T) {
	var d Dispatcher
	h := &fakeHook{decide: func(*Call) Decision {
		return Decision{Inject: true, Retval: -1, Errno: errno.EIO}
	}}
	d.Install(h)
	ran := false
	rv, e := d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) {
		ran = true
		return 0, errno.OK
	})
	if ran {
		t.Fatal("impl ran despite injection")
	}
	if rv != -1 || e != errno.EIO {
		t.Fatalf("got %d/%v", rv, e)
	}
	if len(h.afters) != 0 {
		t.Fatal("After called on injected call")
	}
}

func TestDispatchAfterOnPassThrough(t *testing.T) {
	var d Dispatcher
	h := &fakeHook{}
	d.Install(h)
	d.Dispatch(&Call{Func: "open"}, func() (int64, errno.Errno) { return 3, errno.OK })
	if len(h.befores) != 1 || len(h.afters) != 1 {
		t.Fatalf("hook calls: before=%d after=%d", len(h.befores), len(h.afters))
	}
}

func TestCallCounts(t *testing.T) {
	var d Dispatcher
	var counts []uint64
	h := &fakeHook{decide: func(c *Call) Decision {
		counts = append(counts, c.Count)
		return Decision{}
	}}
	d.Install(h)
	for i := 0; i < 3; i++ {
		d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
	}
	d.Dispatch(&Call{Func: "write"}, func() (int64, errno.Errno) { return 0, errno.OK })
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 3 || counts[3] != 1 {
		t.Fatalf("per-function counts wrong: %v", counts)
	}
	if d.CallCount("read") != 3 || d.CallCount("write") != 1 {
		t.Fatalf("CallCount: read=%d write=%d", d.CallCount("read"), d.CallCount("write"))
	}
	if d.TotalCalls() != 4 {
		t.Fatalf("TotalCalls = %d", d.TotalCalls())
	}
}

func TestResetCounts(t *testing.T) {
	var d Dispatcher
	d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
	d.ResetCounts()
	if d.CallCount("read") != 0 || d.TotalCalls() != 0 {
		t.Fatal("ResetCounts did not zero counters")
	}
	d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
	if d.CallCount("read") != 1 {
		t.Fatal("count after reset wrong")
	}
}

func TestUninstall(t *testing.T) {
	var d Dispatcher
	h := &fakeHook{decide: func(*Call) Decision {
		return Decision{Inject: true, Retval: -1, Errno: errno.EIO}
	}}
	d.Install(h)
	if !d.Installed() {
		t.Fatal("Installed() false after Install")
	}
	d.Install(nil)
	if d.Installed() {
		t.Fatal("Installed() true after uninstall")
	}
	rv, _ := d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 7, errno.OK })
	if rv != 7 {
		t.Fatal("uninstalled hook still injecting")
	}
}

func TestArgHelper(t *testing.T) {
	c := &Call{Args: []int64{10, 20}}
	if c.Arg(0) != 10 || c.Arg(1) != 20 {
		t.Fatal("Arg values wrong")
	}
	if c.Arg(2) != 0 || c.Arg(-1) != 0 {
		t.Fatal("out-of-range Arg should be 0")
	}
}

func TestConcurrentDispatch(t *testing.T) {
	var d Dispatcher
	d.Install(&fakeHook{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				d.Dispatch(&Call{Func: "read"}, func() (int64, errno.Errno) { return 0, errno.OK })
			}
		}()
	}
	wg.Wait()
	if d.CallCount("read") != 8000 {
		t.Fatalf("concurrent count = %d, want 8000", d.CallCount("read"))
	}
}
