package asm

import (
	"testing"

	"lfi/internal/isa"
)

func TestBuilderLabelsAndFixups(t *testing.T) {
	b := NewBuilder("m")
	b.Func("f")
	b.Cmpi(0, -1)
	b.J(isa.JE, "err")
	b.Movi(0, 1)
	b.Ret()
	b.Label("err")
	b.Movi(0, -1)
	b.Ret()
	bin := b.MustBuild()

	in, err := bin.DecodeAt(1 * isa.InstSize)
	if err != nil || in.Op != isa.JE {
		t.Fatalf("branch decode: %v %v", in, err)
	}
	if uint64(uint32(in.Imm)) != 4*isa.InstSize {
		t.Fatalf("fixup target %#x, want %#x", in.Imm, 4*isa.InstSize)
	}
	sym, ok := bin.FindSymbol("f")
	if !ok || sym.Off != 0 || sym.Size != 6*isa.InstSize {
		t.Fatalf("symbol %+v", sym)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("m")
	b.Func("f")
	b.J(isa.JMP, "nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestBuilderImportsDeduplicated(t *testing.T) {
	b := NewBuilder("m")
	b.Func("f")
	o1 := b.CallImport("read")
	o2 := b.CallImport("read")
	b.CallImport("close")
	b.Ret()
	bin := b.MustBuild()
	if len(bin.Imports) != 2 {
		t.Fatalf("imports %v", bin.Imports)
	}
	if o1 == o2 {
		t.Fatal("call sites share an offset")
	}
	if got := bin.CallSites("read"); len(got) != 2 {
		t.Fatalf("read call sites %v", got)
	}
}

func TestProgramSiteOffsets(t *testing.T) {
	bin, sites, err := Program("app", []FuncSpec{
		{Name: "alpha", Sites: []SiteSpec{
			{Label: "a1", Callee: "malloc", Style: CheckEqZero, Codes: []int64{0}},
			{Label: "a2", Callee: "read", Style: CheckNone},
		}},
		{Name: "beta", Sites: []SiteSpec{
			{Label: "b1", Callee: "close", Style: CheckIneq},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 3 {
		t.Fatalf("site map %v", sites)
	}
	// Every labelled offset must hold a CALL to the right callee.
	for label, callee := range map[string]string{"a1": "malloc", "a2": "read", "b1": "close"} {
		off := sites[label]
		in, err := bin.DecodeAt(off)
		if err != nil || in.Op != isa.CALL {
			t.Fatalf("site %s: %v %v", label, in, err)
		}
		if bin.ImportName(in.Imm) != callee {
			t.Fatalf("site %s calls %s", label, bin.ImportName(in.Imm))
		}
	}
	// Symbols should cover the sites.
	if _, ok := bin.FindSymbol("alpha"); !ok {
		t.Fatal("missing symbol")
	}
}

func TestDuplicateSiteLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate site label accepted")
		}
	}()
	b := NewBuilder("m")
	b.Func("f")
	b.EmitSite(SiteSpec{Label: "x", Callee: "read", Style: CheckNone})
	b.EmitSite(SiteSpec{Label: "x", Callee: "read", Style: CheckNone})
}

func TestCheckStyleStrings(t *testing.T) {
	styles := []CheckStyle{
		CheckNone, CheckEq, CheckIneq, CheckEqZero, CheckEqViaCopy,
		CheckIneqViaCopy, CheckHiddenIndirect, CheckBeyondWindow, CheckErrnoEq,
	}
	seen := map[string]bool{}
	for _, s := range styles {
		str := s.String()
		if seen[str] {
			t.Fatalf("duplicate style name %q", str)
		}
		seen[str] = true
	}
	if CheckNone.Checked() {
		t.Fatal("CheckNone claims checked")
	}
	if !CheckHiddenIndirect.Checked() {
		t.Fatal("hidden-indirect is a real check (ground truth)")
	}
}

func TestBuildLibraryStructure(t *testing.T) {
	bin, err := BuildLibrary("libc", []LibFuncSpec{
		{Name: "close", Success: 0, Errors: []ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: []int64{9, 5}},
		}},
		{Name: "read", ComputedSuccess: true, Errors: []ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: []int64{4}},
			{Ret: 0},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Symbols) != 2 {
		t.Fatalf("symbols %v", bin.Symbols)
	}
	// close must contain a SETERRI and a MOVI -1.
	sym, _ := bin.FindSymbol("close")
	var sawSetErr, sawMinusOne bool
	for _, in := range bin.DecodeRange(sym.Off, sym.Off+sym.Size) {
		if in.Op == isa.SETERRI {
			sawSetErr = true
		}
		if in.Op == isa.MOVI && in.Rd == 0 && in.Imm == -1 {
			sawMinusOne = true
		}
	}
	if !sawSetErr || !sawMinusOne {
		t.Fatalf("close body missing error path: seterr=%v minusone=%v", sawSetErr, sawMinusOne)
	}
}
