// Package asm assembles synthetic binaries (package isa) for the
// analyses to consume.
//
// Two producers use it: the target applications compile their call-site
// models into program binaries (so the call-site analyzer has real code
// to disassemble, with ground truth attached), and BuildLibrary compiles
// library implementations whose error paths set errno and return error
// constants (so the library profiler has real return/side-effect code to
// infer fault profiles from).
package asm

import (
	"fmt"

	"lfi/internal/isa"
)

// Builder assembles one binary. Instructions are appended through the
// emit helpers; labels give symbolic branch targets resolved at Build.
type Builder struct {
	name    string
	insts   []isa.Inst
	symbols []isa.Symbol
	imports []string
	impIdx  map[string]int

	labels map[string]uint64 // label -> code offset
	fixups []fixup

	siteOffs map[string]uint64

	curFunc string
	funcBeg uint64
	uniq    int
}

type fixup struct {
	inst  int // index into insts
	label string
}

// NewBuilder starts a binary named after the module.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		impIdx:   make(map[string]int),
		labels:   make(map[string]uint64),
		siteOffs: make(map[string]uint64),
	}
}

// off returns the code offset the next instruction will occupy.
func (b *Builder) off() uint64 { return uint64(len(b.insts)) * isa.InstSize }

// Func opens a new function symbol, closing the previous one.
func (b *Builder) Func(name string) {
	b.endFunc()
	b.curFunc = name
	b.funcBeg = b.off()
}

func (b *Builder) endFunc() {
	if b.curFunc == "" {
		return
	}
	b.symbols = append(b.symbols, isa.Symbol{
		Name: b.curFunc,
		Off:  b.funcBeg,
		Size: b.off() - b.funcBeg,
	})
	b.curFunc = ""
}

// Label binds a name to the current offset.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("asm: duplicate label " + name)
	}
	b.labels[name] = b.off()
}

// fresh returns a unique label with the given prefix.
func (b *Builder) fresh(prefix string) string {
	b.uniq++
	return fmt.Sprintf(".%s%d", prefix, b.uniq)
}

func (b *Builder) emit(i isa.Inst) int {
	i.Offset = b.off()
	b.insts = append(b.insts, i)
	return len(b.insts) - 1
}

// Emit helpers (each returns the emitted instruction's offset).

// Movi emits rd <- imm.
func (b *Builder) Movi(rd byte, imm int32) { b.emit(isa.Inst{Op: isa.MOVI, Rd: rd, Imm: imm}) }

// Mov emits rd <- rs.
func (b *Builder) Mov(rd, rs byte) { b.emit(isa.Inst{Op: isa.MOV, Rd: rd, Rs: rs}) }

// Addi emits rd <- rs + imm.
func (b *Builder) Addi(rd, rs byte, imm int32) {
	b.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs: rs, Imm: imm})
}

// Ld emits rd <- stack[slot].
func (b *Builder) Ld(rd byte, slot int32) { b.emit(isa.Inst{Op: isa.LD, Rd: rd, Imm: slot}) }

// St emits stack[slot] <- rs.
func (b *Builder) St(slot int32, rs byte) { b.emit(isa.Inst{Op: isa.ST, Rs: rs, Imm: slot}) }

// Cmpi emits flags <- compare(rs, imm).
func (b *Builder) Cmpi(rs byte, imm int32) { b.emit(isa.Inst{Op: isa.CMPI, Rs: rs, Imm: imm}) }

// Test emits flags <- compare(rs, 0).
func (b *Builder) Test(rs byte) { b.emit(isa.Inst{Op: isa.TEST, Rs: rs}) }

// J emits a branch (JE..JGE, JMP, CALLN) to a label.
func (b *Builder) J(op isa.Op, label string) {
	idx := b.emit(isa.Inst{Op: op})
	b.fixups = append(b.fixups, fixup{inst: idx, label: label})
}

// MoviLabel emits rd <- address-of(label), used to feed indirect jumps.
func (b *Builder) MoviLabel(rd byte, label string) {
	idx := b.emit(isa.Inst{Op: isa.MOVI, Rd: rd})
	b.fixups = append(b.fixups, fixup{inst: idx, label: label})
}

// IJmp emits an indirect jump through rs.
func (b *Builder) IJmp(rs byte) { b.emit(isa.Inst{Op: isa.IJMP, Rs: rs}) }

// Ret emits a return.
func (b *Builder) Ret() { b.emit(isa.Inst{Op: isa.RET}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.NOP}) }

// SetErrI emits errno <- imm (library error paths).
func (b *Builder) SetErrI(imm int32) { b.emit(isa.Inst{Op: isa.SETERRI, Imm: imm}) }

// GetErr emits rd <- errno (caller-side errno inspection).
func (b *Builder) GetErr(rd byte) { b.emit(isa.Inst{Op: isa.GETERR, Rd: rd}) }

// CallImport emits a call to an imported library function and returns
// the call instruction's offset (the call-site address).
func (b *Builder) CallImport(fn string) uint64 {
	idx, ok := b.impIdx[fn]
	if !ok {
		idx = len(b.imports)
		b.imports = append(b.imports, fn)
		b.impIdx[fn] = idx
	}
	off := b.off()
	b.emit(isa.Inst{Op: isa.CALL, Imm: int32(idx)})
	return off
}

// SiteOffset returns the recorded offset of a labelled call site.
func (b *Builder) SiteOffset(label string) (uint64, bool) {
	off, ok := b.siteOffs[label]
	return off, ok
}

// Build resolves fixups and returns the binary.
func (b *Builder) Build() (*isa.Binary, error) {
	b.endFunc()
	for _, f := range b.fixups {
		off, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		b.insts[f.inst].Imm = int32(off)
	}
	var code []byte
	for _, in := range b.insts {
		code = in.Encode(code)
	}
	return &isa.Binary{
		Name:    b.name,
		Code:    code,
		Symbols: b.symbols,
		Imports: b.imports,
	}, nil
}

// MustBuild is Build for statically-known-correct programs.
func (b *Builder) MustBuild() *isa.Binary {
	bin, err := b.Build()
	if err != nil {
		panic(err)
	}
	return bin
}
