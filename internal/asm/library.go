package asm

import (
	"lfi/internal/isa"
)

// ErrorReturn is one error behaviour of a library function: the value
// returned and the errno codes that may accompany it. SetsErrno false
// models returns like read()'s 0-at-EOF, which is not an errno-reported
// failure but still a return the caller must handle.
type ErrorReturn struct {
	Ret       int64
	Errnos    []int64
	SetsErrno bool
}

// LibFuncSpec describes one exported library function for BuildLibrary.
// Success is the value returned on the success path; ComputedSuccess
// instead returns a data-dependent (non-constant) value, like read()'s
// byte count.
type LibFuncSpec struct {
	Name            string
	Errors          []ErrorReturn
	Success         int64
	ComputedSuccess bool
}

// BuildLibrary assembles a shared-library binary whose exported
// functions branch to error paths that set errno and return error
// constants, and otherwise return success. The profiler consumes these
// binaries to infer fault profiles, exactly as LFI's profiler consumes
// libc.so.
//
// The dispatch structure mirrors compiled C: a chain of compares on an
// incoming argument selects the failure path.
func BuildLibrary(name string, funcs []LibFuncSpec) (*isa.Binary, error) {
	b := NewBuilder(name)
	for _, f := range funcs {
		b.Func(f.Name)
		// Enumerate (ret, errno) paths: each gets its own branch.
		type path struct {
			ret   int64
			errno int64 // 0 = none
		}
		var paths []path
		for _, er := range f.Errors {
			if !er.SetsErrno || len(er.Errnos) == 0 {
				paths = append(paths, path{ret: er.Ret})
				continue
			}
			for _, e := range er.Errnos {
				paths = append(paths, path{ret: er.Ret, errno: e})
			}
		}
		labels := make([]string, len(paths))
		for i := range paths {
			labels[i] = b.fresh("epath")
			b.Cmpi(1, int32(i)) // dispatch on first argument
			b.J(isa.JE, labels[i])
		}
		// Success path.
		if f.ComputedSuccess {
			b.Addi(0, 1, 42) // data-dependent result
		} else {
			b.Movi(0, int32(f.Success))
		}
		b.Ret()
		for i, p := range paths {
			b.Label(labels[i])
			if p.errno != 0 {
				b.SetErrI(int32(p.errno))
			}
			b.Movi(0, int32(p.ret))
			b.Ret()
		}
	}
	return b.Build()
}
