package asm

import (
	"fmt"

	"lfi/internal/isa"
)

// CheckStyle describes how (and whether) a call site checks the callee's
// error return. The styles cover the checking idioms the paper's
// dataflow analysis must handle: direct equality/inequality tests,
// checks on copies of the return value (through registers and stack
// spills), checks hidden behind indirect branches (the analyzer ignores
// those and reports a false positive, as with BIND's open in Table 4),
// and checks placed beyond the analysis window.
type CheckStyle int

const (
	// CheckNone: the result is ignored — a genuine bug site.
	CheckNone CheckStyle = iota
	// CheckEq: retval compared for equality against each of Codes.
	CheckEq
	// CheckIneq: a sign test (retval < 0), covering the whole range.
	CheckIneq
	// CheckEqZero: test+je against zero (the malloc NULL-check idiom).
	CheckEqZero
	// CheckEqViaCopy: retval copied through a register and a stack
	// slot before the equality check.
	CheckEqViaCopy
	// CheckIneqViaCopy: copy chain ending in a sign test.
	CheckIneqViaCopy
	// CheckHiddenIndirect: a real check that control reaches only via
	// an indirect jump; the analyzer cannot follow it (false positive).
	CheckHiddenIndirect
	// CheckBeyondWindow: a real check placed past the analysis window.
	CheckBeyondWindow
	// CheckErrnoEq: retval checked by inequality and errno compared
	// against Errnos (the EINTR-retry idiom).
	CheckErrnoEq
)

// String names the style in reports.
func (s CheckStyle) String() string {
	switch s {
	case CheckNone:
		return "none"
	case CheckEq:
		return "eq"
	case CheckIneq:
		return "ineq"
	case CheckEqZero:
		return "eq-zero"
	case CheckEqViaCopy:
		return "eq-via-copy"
	case CheckIneqViaCopy:
		return "ineq-via-copy"
	case CheckHiddenIndirect:
		return "hidden-indirect"
	case CheckBeyondWindow:
		return "beyond-window"
	case CheckErrnoEq:
		return "errno-eq"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// Checked reports whether the style actually checks the return value
// (ground truth for accuracy measurement, independent of whether the
// analyzer can see it).
func (s CheckStyle) Checked() bool { return s != CheckNone }

// SiteSpec models one library call site in an application function:
// which function is called, how its return is checked, and how much
// unrelated code sits between call and check.
type SiteSpec struct {
	Label  string // stable identifier; also the runtime site key
	Callee string // imported library function
	Style  CheckStyle
	Codes  []int64 // codes checked by equality styles
	Errnos []int64 // errno values checked by CheckErrnoEq
	Filler int     // unrelated instructions between call and check
}

// EmitSite assembles one modelled call site inside the current function
// and records its call offset under spec.Label. The emitted code is what
// a compiler would produce for the corresponding C idiom.
func (b *Builder) EmitSite(spec SiteSpec) uint64 {
	off := b.CallImport(spec.Callee)
	if _, dup := b.siteOffs[spec.Label]; dup {
		panic("asm: duplicate site label " + spec.Label)
	}
	b.siteOffs[spec.Label] = off

	// Unrelated work between the call and the check; r5/r6 never
	// carry the return value, so the dataflow must skip over these.
	for i := 0; i < spec.Filler; i++ {
		b.Movi(5, int32(i))
		b.Addi(6, 5, 1)
	}

	cont := b.fresh("cont")
	err := b.fresh("err")
	switch spec.Style {
	case CheckNone:
		// Result discarded; r0 immediately reused for something else.
		b.Movi(0, 0)

	case CheckEq:
		for _, c := range spec.Codes {
			b.Cmpi(0, int32(c))
			b.J(isa.JE, err)
		}
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	case CheckEqZero:
		b.Test(0)
		b.J(isa.JE, err)
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	case CheckIneq:
		b.Test(0)
		b.J(isa.JL, err)
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	case CheckEqViaCopy:
		b.Mov(4, 0)  // copy to r4
		b.St(16, 4)  // spill
		b.Movi(4, 7) // clobber the register copy
		b.Ld(7, 16)  // reload into r7
		for _, c := range spec.Codes {
			b.Cmpi(7, int32(c))
			b.J(isa.JE, err)
		}
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	case CheckIneqViaCopy:
		b.Mov(4, 0)
		b.St(24, 4)
		b.Ld(8, 24)
		b.Test(8)
		b.J(isa.JL, err)
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	case CheckHiddenIndirect:
		// The check is real but reachable only through an indirect
		// jump (a jump table in the original program). The analyzer
		// ignores indirect branches (§5), so it cannot see the check.
		tgt := b.fresh("itgt")
		b.MoviLabel(9, tgt)
		b.IJmp(9)
		b.Label(tgt)
		for _, c := range spec.Codes {
			b.Cmpi(0, int32(c))
			b.J(isa.JE, err)
		}
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	case CheckBeyondWindow:
		// Push the check past the 100-instruction window with real
		// filler; the site is checked but the bounded CFG misses it.
		for i := 0; i < 110; i++ {
			b.Nop()
		}
		b.Cmpi(0, int32(firstOr(spec.Codes, -1)))
		b.J(isa.JE, err)
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	case CheckErrnoEq:
		b.Test(0)
		b.J(isa.JGE, cont) // retval >= 0: success
		b.GetErr(10)
		for _, e := range spec.Errnos {
			b.Cmpi(10, int32(e))
			b.J(isa.JE, err) // e.g. EINTR: retry path
		}
		b.J(isa.JMP, cont)
		b.Label(err)
		b.emitRecovery()

	default:
		panic("asm: unknown check style")
	}
	b.Label(cont)
	b.Nop()
	return off
}

// emitRecovery assembles a small recovery block (what the error-handling
// arm of the C code would compile to).
func (b *Builder) emitRecovery() {
	b.Movi(11, -1)
	b.Movi(12, 0)
	b.Nop()
}

func firstOr(cs []int64, def int64) int64 {
	if len(cs) == 0 {
		return def
	}
	return cs[0]
}

// Program assembles an application binary from per-function site lists.
// Functions are emitted in order; each gets a prologue, its modelled
// sites, and an epilogue. Returns the binary and the site-label → offset
// map that the runtime application uses for its virtual stack frames.
func Program(module string, funcs []FuncSpec) (*isa.Binary, map[string]uint64, error) {
	b := NewBuilder(module)
	for _, f := range funcs {
		b.Func(f.Name)
		b.Movi(13, 0) // prologue
		for _, s := range f.Sites {
			b.EmitSite(s)
		}
		b.Movi(0, 0) // function returns success
		b.Ret()
	}
	bin, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	sites := make(map[string]uint64, len(b.siteOffs))
	for k, v := range b.siteOffs {
		sites[k] = v
	}
	return bin, sites, nil
}

// FuncSpec is one application function and its modelled call sites.
type FuncSpec struct {
	Name  string
	Sites []SiteSpec
}
