package coverage

import (
	"testing"
	"testing/quick"
)

func TestRegisterHitStats(t *testing.T) {
	tr := New()
	tr.Register("main.a", 10, false)
	tr.Register("rec.a", 5, true)
	tr.Register("rec.b", 7, true)
	tr.Hit("main.a")
	tr.Hit("rec.a")
	tr.Hit("rec.a")

	rec := tr.Recovery()
	if rec.Blocks != 2 || rec.BlocksCovered != 1 || rec.LOC != 12 || rec.LOCCovered != 5 {
		t.Fatalf("recovery stats %+v", rec)
	}
	tot := tr.Total()
	if tot.Blocks != 3 || tot.BlocksCovered != 2 || tot.LOC != 22 || tot.LOCCovered != 15 {
		t.Fatalf("total stats %+v", tot)
	}
}

func TestPercent(t *testing.T) {
	tr := New()
	tr.Register("a", 50, false)
	tr.Register("b", 50, false)
	tr.Hit("a")
	if p := tr.Total().Percent(); p != 50 {
		t.Fatalf("percent %v", p)
	}
	if (Stats{}).Percent() != 0 {
		t.Fatal("empty percent")
	}
}

func TestHitUnregisteredImplicit(t *testing.T) {
	tr := New()
	tr.Hit("surprise")
	if tr.Total().BlocksCovered != 1 {
		t.Fatal("implicit block lost")
	}
}

func TestResetHits(t *testing.T) {
	tr := New()
	tr.Register("a", 1, true)
	tr.Hit("a")
	tr.ResetHits()
	if tr.Recovery().BlocksCovered != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestReRegisterPreservesHits(t *testing.T) {
	tr := New()
	tr.Register("a", 1, false)
	tr.Hit("a")
	tr.Register("a", 9, true)
	rec := tr.Recovery()
	if rec.BlocksCovered != 1 || rec.LOC != 9 {
		t.Fatalf("re-register %+v", rec)
	}
}

func TestMergeUnion(t *testing.T) {
	base := New()
	base.Register("a", 5, true)
	base.Register("b", 5, true)

	run1 := New()
	run1.Register("a", 5, true)
	run1.Register("b", 5, true)
	run1.Hit("a")

	run2 := New()
	run2.Register("a", 5, true)
	run2.Register("b", 5, true)
	run2.Hit("b")

	base.Merge(run1)
	base.Merge(run2)
	rec := base.Recovery()
	if rec.BlocksCovered != 2 {
		t.Fatalf("merged coverage %+v", rec)
	}
}

func TestMergeBringsNewBlocks(t *testing.T) {
	base := New()
	other := New()
	other.Register("x", 3, true)
	other.Hit("x")
	base.Merge(other)
	if base.Recovery().BlocksCovered != 1 {
		t.Fatal("merge dropped new block")
	}
}

func TestCoveredIDsSorted(t *testing.T) {
	tr := New()
	for _, id := range []string{"c", "a", "b"} {
		tr.Register(id, 1, false)
		tr.Hit(id)
	}
	ids := tr.CoveredIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Fatalf("ids %v", ids)
	}
}

// Property: covered counts never exceed totals, and merging is
// monotone in covered blocks.
func TestPropertyMergeMonotone(t *testing.T) {
	f := func(hits []uint8) bool {
		a, b := New(), New()
		for i := 0; i < 8; i++ {
			id := string(rune('a' + i))
			a.Register(id, i+1, i%2 == 0)
			b.Register(id, i+1, i%2 == 0)
		}
		for _, h := range hits {
			b.Hit(string(rune('a' + int(h)%8)))
		}
		before := a.Total().BlocksCovered
		a.Merge(b)
		after := a.Total().BlocksCovered
		tot := a.Total()
		return after >= before && tot.BlocksCovered <= tot.Blocks && tot.LOCCovered <= tot.LOC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
