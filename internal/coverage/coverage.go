// Package coverage measures recovery-code coverage, standing in for the
// paper's gcov/lcov workflow (§7.1, Table 3).
//
// Applications register their basic blocks up front, marking which ones
// are recovery code (error-handling arms) and how many source lines each
// block represents, then report execution with Hit. The tracker answers
// the two Table 3 questions: what fraction of recovery blocks/lines did
// a campaign execute, and what was total line coverage.
package coverage

import (
	"fmt"
	"sort"
	"sync"
)

// Block is one registered basic block.
type Block struct {
	ID       string
	LOC      int
	Recovery bool
	Hits     uint64
}

// Tracker accumulates coverage for one application image.
type Tracker struct {
	mu      sync.Mutex
	blocks  map[string]*Block
	scratch []string // reused by CoveredIDs/CoveredRecoveryIDs
}

// New creates an empty tracker.
func New() *Tracker {
	return &Tracker{blocks: make(map[string]*Block)}
}

// Register adds a block. Registering an existing ID updates its
// metadata but preserves hits.
func (t *Tracker) Register(id string, loc int, recovery bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.blocks[id]; ok {
		b.LOC, b.Recovery = loc, recovery
		return
	}
	t.blocks[id] = &Block{ID: id, LOC: loc, Recovery: recovery}
}

// Hit records one execution of a block. Unregistered IDs are registered
// implicitly as 1-line non-recovery blocks so that coverage never
// silently drops data.
func (t *Tracker) Hit(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.blocks[id]
	if !ok {
		b = &Block{ID: id, LOC: 1}
		t.blocks[id] = b
	}
	b.Hits++
}

// ResetHits zeroes execution counts, keeping registrations.
func (t *Tracker) ResetHits() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range t.blocks {
		b.Hits = 0
	}
}

// Stats is a coverage summary.
type Stats struct {
	Blocks        int
	BlocksCovered int
	LOC           int
	LOCCovered    int
}

// Percent returns line coverage in percent.
func (s Stats) Percent() float64 {
	if s.LOC == 0 {
		return 0
	}
	return 100 * float64(s.LOCCovered) / float64(s.LOC)
}

// String renders the summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d/%d blocks, %d/%d LOC (%.1f%%)",
		s.BlocksCovered, s.Blocks, s.LOCCovered, s.LOC, s.Percent())
}

// Recovery returns coverage over recovery blocks only.
func (t *Tracker) Recovery() Stats { return t.stats(true) }

// Total returns coverage over all registered blocks.
func (t *Tracker) Total() Stats { return t.stats(false) }

func (t *Tracker) stats(recoveryOnly bool) Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s Stats
	for _, b := range t.blocks {
		if recoveryOnly && !b.Recovery {
			continue
		}
		s.Blocks++
		s.LOC += b.LOC
		if b.Hits > 0 {
			s.BlocksCovered++
			s.LOCCovered += b.LOC
		}
	}
	return s
}

// CoveredIDs returns the IDs of blocks executed at least once, sorted.
// The returned slice is tracker-owned scratch, invalidated by the next
// CoveredIDs/CoveredRecoveryIDs call — callers that retain it (store
// and wire serialization boundaries) must copy.
func (t *Tracker) CoveredIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.scratch[:0]
	for id, b := range t.blocks {
		if b.Hits > 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	t.scratch = out
	return out
}

// RegisteredIDs returns the IDs of all registered blocks, sorted.
func (t *Tracker) RegisteredIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.blocks))
	for id := range t.blocks {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RecoveryIDs returns the IDs of all registered recovery blocks,
// sorted — the block universe the fault-space explorer validates
// replayed store entries against.
func (t *Tracker) RecoveryIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for id, b := range t.blocks {
		if b.Recovery {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// CoveredRecoveryIDs returns the IDs of recovery blocks executed at
// least once, sorted — the per-run footprint the fault-space explorer
// attributes to each scenario. Like CoveredIDs it returns tracker-owned
// scratch; retaining callers must copy.
func (t *Tracker) CoveredRecoveryIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.scratch[:0]
	for id, b := range t.blocks {
		if b.Recovery && b.Hits > 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	t.scratch = out
	return out
}

// Merge folds another tracker's hits into this one (campaigns union
// coverage across many runs, like lcov merging .info files). Both locks
// are held for the duration, destination first; merges only ever flow
// per-run tracker → campaign accumulator, so the order cannot invert.
// This keeps the steady-state merge allocation-free (no snapshot slice)
// once the accumulator knows the universe.
func (t *Tracker) Merge(other *Tracker) {
	if other == t {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	for id, ob := range other.blocks {
		b, ok := t.blocks[id]
		if !ok {
			nb := *ob
			t.blocks[id] = &nb
			continue
		}
		b.Hits += ob.Hits
	}
}
