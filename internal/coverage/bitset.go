package coverage

import (
	"math/bits"
	"sort"
)

// Bitset is a dense bitset over a block universe established by an
// Index: bit i stands for the block at universe position i. It is the
// hot-path encoding of per-run coverage footprints — the sorted
// []string ID form survives only at JSON serialization boundaries
// (stores, wire fallback), materialized on demand via Index.AppendIDs.
type Bitset []uint64

// NewBitset returns a zeroed bitset able to hold n bits.
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set sets bit i. The bitset must have been sized to hold it.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Has reports whether bit i is set; out-of-range bits read as unset.
func (b Bitset) Has(i int) bool {
	w := i / 64
	return w >= 0 && w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// Or folds other into b (b must be at least as long).
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// And intersects b with other in place; bits beyond other clear.
func (b Bitset) And(other Bitset) {
	for i := range b {
		if i < len(other) {
			b[i] &= other[i]
		} else {
			b[i] = 0
		}
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// Reset clears every bit, keeping capacity.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// FoldNew ors src∩mask into b and calls fn with each position that was
// newly set, in ascending order — the one-pass "which recovery blocks
// did this run cover first" fold of the explorer.
func (b Bitset) FoldNew(src, mask Bitset, fn func(i int)) {
	for w := 0; w < len(src) && w < len(b); w++ {
		m := src[w]
		if w < len(mask) {
			m &= mask[w]
		} else {
			m = 0
		}
		nw := m &^ b[w]
		b[w] |= nw
		for nw != 0 {
			t := bits.TrailingZeros64(nw)
			fn(w*64 + t)
			nw &^= 1 << uint(t)
		}
	}
}

// Range calls fn with each set bit's position, in ascending order.
func (b Bitset) Range(fn func(i int)) {
	for w, word := range b {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			fn(w*64 + t)
			word &^= 1 << uint(t)
		}
	}
}

// Index is an immutable ID↔position table over a block universe: the
// sorted registered-block IDs of one application image. Everyone who
// shares an Index (worker and session, executor and explorer) agrees on
// what each bit of a Bitset means. Wire backends establish a shared
// Index at handshake; in-process users take it from the Tracker that
// registered the universe.
type Index struct {
	ids []string
	pos map[string]int
}

// NewIndex builds an index over the given IDs (copied, sorted,
// deduplicated).
func NewIndex(ids []string) *Index {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	x := &Index{ids: sorted[:0], pos: make(map[string]int, len(sorted))}
	for _, id := range sorted {
		if _, dup := x.pos[id]; dup {
			continue
		}
		x.pos[id] = len(x.ids)
		x.ids = append(x.ids, id)
	}
	return x
}

// Len returns the universe size.
func (x *Index) Len() int { return len(x.ids) }

// IDs returns the sorted universe. Callers must not mutate it.
func (x *Index) IDs() []string { return x.ids }

// Pos returns the position of id in the universe.
func (x *Index) Pos(id string) (int, bool) {
	p, ok := x.pos[id]
	return p, ok
}

// ID returns the block ID at position i.
func (x *Index) ID(i int) string { return x.ids[i] }

// Compress encodes a set of block IDs as a bitset over this universe.
// Unknown IDs are dropped — recorded footprints are only trusted where
// the block still exists (see the explorer's replay rules).
func (x *Index) Compress(ids []string) Bitset {
	b := NewBitset(len(x.ids))
	for _, id := range ids {
		if p, ok := x.pos[id]; ok {
			b.Set(p)
		}
	}
	return b
}

// AppendIDs materializes the bitset's blocks as sorted IDs appended to
// dst — the JSON-boundary inverse of Compress (sorted because the
// universe is).
func (x *Index) AppendIDs(dst []string, b Bitset) []string {
	for w, word := range b {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			if i := w*64 + t; i < len(x.ids) {
				dst = append(dst, x.ids[i])
			}
			word &^= 1 << uint(t)
		}
	}
	return dst
}

// Index builds the ID↔position table over this tracker's registered
// universe.
func (t *Tracker) Index() *Index {
	return NewIndex(t.RegisteredIDs())
}

// CoveredBits encodes the covered blocks as a bitset over x, reusing
// dst when it is large enough.
func (t *Tracker) CoveredBits(x *Index, dst Bitset) Bitset {
	if need := (x.Len() + 63) / 64; cap(dst) < need {
		dst = make(Bitset, need)
	} else {
		dst = dst[:need]
		dst.Reset()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, b := range t.blocks {
		if b.Hits == 0 {
			continue
		}
		if p, ok := x.pos[id]; ok {
			dst.Set(p)
		}
	}
	return dst
}

// RecoveryBits encodes recovery-block membership as a bitset over x.
func (t *Tracker) RecoveryBits(x *Index) Bitset {
	b := NewBitset(x.Len())
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, blk := range t.blocks {
		if !blk.Recovery {
			continue
		}
		if p, ok := x.pos[id]; ok {
			b.Set(p)
		}
	}
	return b
}

// HitBits records one execution of every block set in b (the bitset
// fold of per-run footprints into a campaign accumulator).
func (t *Tracker) HitBits(x *Index, b Bitset) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for w, word := range b {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			word &^= 1 << uint(tz)
			i := w*64 + tz
			if i >= len(x.ids) {
				continue
			}
			id := x.ids[i]
			blk, ok := t.blocks[id]
			if !ok {
				blk = &Block{ID: id, LOC: 1}
				t.blocks[id] = blk
			}
			blk.Hits++
		}
	}
}
