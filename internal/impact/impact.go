// Package impact computes which recovery blocks a code edit can reach —
// the analysis behind change-impact-aware store invalidation.
//
// The persistent exploration store keys every cached outcome on the
// content hash of the code region its scenario targets, so an edit to
// one function already invalidates exactly that function's shard. But
// the occurrence/window dimension keys on the *whole image*: today any
// edit anywhere invalidates every global-count entry, even when the
// edit provably cannot change what those runs observed. This package
// closes that gap, following the regression-verification idea of
// reusing prior results whenever a change cannot affect them (Beyer et
// al., arXiv:1305.6915):
//
//  1. FuncHashes fingerprints every function body; Funcs diffs two
//     fingerprint maps into changed/added/removed sets.
//  2. Compute walks the internal/cfg control-flow graphs of the changed
//     functions (and, through direct CALLN edges, their callees and the
//     post-call windows of their callers), collecting every recovery
//     block whose check site lies on a reachable instruction. Library
//     call sites inside the walk are re-analyzed with internal/dataflow
//     so an inspection tool can show which return-code checks guard the
//     impacted region.
//  3. The resulting Set is intersected with each stored entry's
//     recorded coverage: disjoint entries migrate forward with their
//     outcomes intact; only intersecting entries re-validate.
//
// Soundness caveat: the CFG walk follows fall-through, direct jumps and
// both arms of conditional branches, but indirect branches are recorded,
// not followed (the paper's own prototype makes the same trade — §5,
// 0.13% of branches in its corpus were indirect). A walk that meets an
// indirect branch, exhausts its instruction budget, or loses a removed
// function therefore cannot bound what the edit reaches, and the Set
// degrades to Fallback: every entry re-validates, which is exactly the
// whole-shard behavior the store had before this package existed. The
// approximation is also coverage-relative: an entry is only as
// migratable as its recorded footprint is complete, which holds for the
// built-in targets because every instrumented recovery block reports
// itself on every run.
package impact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"lfi/internal/cfg"
	"lfi/internal/dataflow"
	"lfi/internal/isa"
	"lfi/internal/profile"
)

// ImageHash fingerprints a whole code image (12 hex digits — the same
// width the store has always used for code-region hashes).
func ImageHash(code []byte) string {
	sum := sha256.Sum256(code)
	return hex.EncodeToString(sum[:6])
}

// Hasher fingerprints the code regions of one binary: the enclosing
// function for call-stack candidates, the whole image for global-count
// candidates. The image is hashed once and function regions are
// memoized — candidate generation asks for every candidate.
type Hasher struct {
	bin      *isa.Binary
	image    string
	byCaller map[string]string
}

// NewHasher builds a hasher over b.
func NewHasher(b *isa.Binary) *Hasher {
	return &Hasher{
		bin:      b,
		image:    ImageHash(b.Code),
		byCaller: make(map[string]string),
	}
}

// Image returns the whole-image region hash.
func (h *Hasher) Image() string { return h.image }

// Region returns the region hash a candidate with the given enclosing
// function keys on: the function body's hash, or the image hash when
// the caller is unknown ("") or has no symbol.
func (h *Hasher) Region(caller string) string {
	if caller == "" {
		return h.image
	}
	if cached, ok := h.byCaller[caller]; ok {
		return cached
	}
	region := h.image
	if sym, ok := h.bin.FindSymbol(caller); ok {
		if end := sym.Off + sym.Size; end <= uint64(len(h.bin.Code)) {
			sum := sha256.Sum256(h.bin.Code[sym.Off:end])
			region = hex.EncodeToString(sum[:6])
		}
	}
	h.byCaller[caller] = region
	return region
}

// FuncHashes fingerprints every function symbol of b — the per-image
// metadata the store persists so a later session can diff binaries
// without the old image.
func FuncHashes(b *isa.Binary) map[string]string {
	h := NewHasher(b)
	out := make(map[string]string, len(b.Symbols))
	for _, sym := range b.Symbols {
		out[sym.Name] = h.Region(sym.Name)
	}
	return out
}

// ProfileHashes fingerprints every profiled library function across a
// profile set: a canonical serialization of the function's return
// behaviours (constant values, errno side effects, computed-return
// flag), hashed to the store's usual 12-hex-digit width. The store
// persists the map in each image manifest so a later session can
// detect a *profile* edit — which moves no code byte and therefore no
// image or region hash — and re-validate exactly the candidates whose
// callee's fault model changed.
func ProfileHashes(ps []*profile.Profile) map[string]string {
	out := make(map[string]string)
	for _, p := range ps {
		for _, name := range p.FuncNames() {
			fp := p.Func(name)
			var b []byte
			b = append(b, p.Lib...)
			b = append(b, 0)
			for _, r := range canonicalReturns(fp) {
				b = append(b, r...)
				b = append(b, 0)
			}
			sum := sha256.Sum256(b)
			// First profile wins on a duplicate name, matching how the
			// generator resolves callees across profiles.
			if _, dup := out[name]; !dup {
				out[name] = hex.EncodeToString(sum[:6])
			}
		}
	}
	return out
}

// canonicalReturns renders a function profile's return behaviours in a
// sorted, unambiguous text form.
func canonicalReturns(fp *profile.FuncProfile) []string {
	out := make([]string, 0, len(fp.Returns))
	for _, r := range fp.Returns {
		if !r.Const {
			out = append(out, "computed")
			continue
		}
		s := fmt.Sprintf("const:%d", r.Value)
		es := make([]string, 0, len(r.Errnos))
		for _, e := range r.Errnos {
			es = append(es, e.String())
		}
		sort.Strings(es)
		for _, e := range es {
			s += ":" + e
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// DiffProfiles compares two ProfileHashes maps and returns the function
// names whose fault model changed or appeared, sorted. (Removed
// functions generate no candidates under the new profile set, so they
// need no re-validation.)
func DiffProfiles(old, new map[string]string) []string {
	var out []string
	for name, h := range new {
		if oh, ok := old[name]; !ok || oh != h {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Funcs is a function-level binary diff.
type Funcs struct {
	Changed []string // body differs (sorted)
	Added   []string // only in the new image (sorted)
	Removed []string // only in the old image (sorted)
}

// Empty reports whether the diff found no function-level difference.
func (d Funcs) Empty() bool {
	return len(d.Changed) == 0 && len(d.Added) == 0 && len(d.Removed) == 0
}

// DiffFuncs compares two FuncHashes maps (old image vs new image).
func DiffFuncs(old, new map[string]string) Funcs {
	var d Funcs
	for name, h := range new {
		oh, ok := old[name]
		switch {
		case !ok:
			d.Added = append(d.Added, name)
		case oh != h:
			d.Changed = append(d.Changed, name)
		}
	}
	for name := range old {
		if _, ok := new[name]; !ok {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Strings(d.Changed)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// Check is the dataflow result at one library call site inside the
// impacted region: which return codes the site's post-call window
// checks (inspection/reporting — `lfi diff`).
type Check struct {
	Callee string
	Eq     []int64 // equality-checked return codes
	Ineq   []int64 // inequality-checked return codes
}

// Set is the result of one impact analysis: the recovery blocks a
// function-level diff can reach.
type Set struct {
	// Changed lists the diffed function names the walk started from
	// (changed + added), sorted.
	Changed []string
	// Blocks is the impacted recovery-block set: a stored entry whose
	// recorded coverage intersects it must re-validate.
	Blocks map[string]bool
	// Checks maps library call-site offsets inside the walked region to
	// their dataflow check results.
	Checks map[uint64]Check
	// Fallback marks an analysis that could not bound the edit's reach;
	// Reason says why. A Fallback set intersects everything — the
	// conservative whole-shard invalidation.
	Fallback bool
	Reason   string
}

// fallback builds a degenerate Set that intersects everything.
func fallback(d Funcs, reason string) *Set {
	changed := append(append([]string(nil), d.Changed...), d.Added...)
	sort.Strings(changed)
	return &Set{Changed: changed, Fallback: true, Reason: reason}
}

// Intersects reports whether a stored entry with the given recorded
// coverage could be affected by the diffed change. A Fallback set
// intersects everything.
func (s *Set) Intersects(blocks []string) bool {
	if s == nil || s.Fallback {
		return true
	}
	for _, id := range blocks {
		if s.Blocks[id] {
			return true
		}
	}
	return false
}

// BlockIDs returns the impacted blocks, sorted (reporting).
func (s *Set) BlockIDs() []string {
	out := make([]string, 0, len(s.Blocks))
	for id := range s.Blocks {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Compute walks the new image's CFGs to bound what the function-level
// diff d can reach. blockOffs maps recovery-block IDs to their check
// sites' code offsets (the descriptor's site map); a block is impacted
// when its offset lies on an instruction the walk visits.
//
// The walk covers, transitively:
//
//   - every changed or added function's own body (cfg.BuildFunc);
//   - the bodies of functions a walked function calls directly (CALLN)
//     — a changed caller can drive an unchanged callee differently;
//   - the post-call window (cfg.BuildPartial, the paper's 100-
//     instruction horizon) after every direct call *to* an affected
//     function — the caller's code is unchanged but the value it
//     receives may not be, so the recovery checks right after the call
//     are impacted, and the caller's own callers are walked the same
//     way.
//
// Any removed function, indirect branch, or truncated walk yields a
// Fallback set: the analysis refuses to claim a bound it cannot prove.
func Compute(b *isa.Binary, d Funcs, blockOffs map[string]uint64) *Set {
	if len(d.Removed) > 0 {
		return fallback(d, fmt.Sprintf("function(s) removed: %v", d.Removed))
	}
	blockAt := make(map[uint64]string, len(blockOffs))
	for id, off := range blockOffs {
		blockAt[off] = id
	}
	symAt := make(map[uint64]string, len(b.Symbols))
	for _, sym := range b.Symbols {
		symAt[sym.Off] = sym.Name
	}

	set := &Set{
		Blocks: make(map[string]bool),
		Checks: make(map[uint64]Check),
	}
	set.Changed = append(append(set.Changed, d.Changed...), d.Added...)
	sort.Strings(set.Changed)

	// Downward closure: changed/added functions, plus every function a
	// walked function calls directly.
	walked := make(map[string]bool)
	work := append([]string(nil), set.Changed...)
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if walked[fn] {
			continue
		}
		walked[fn] = true
		sym, ok := b.FindSymbol(fn)
		if !ok {
			return fallback(d, fmt.Sprintf("changed function %s has no symbol", fn))
		}
		g := cfg.BuildFunc(b, sym)
		if g.Indirect > 0 || g.Truncated {
			return fallback(d, fmt.Sprintf("CFG of %s not fully walkable (indirect=%d truncated=%v)",
				fn, g.Indirect, g.Truncated))
		}
		for _, in := range g.Insts {
			collect(b, in, blockAt, set)
			if in.Op == isa.CALLN {
				if callee, ok := symAt[uint64(uint32(in.Imm))]; ok {
					work = append(work, callee)
				}
			}
		}
	}

	// Upward pass: the post-call windows of every direct call into an
	// affected function, propagating to the caller's callers. (The
	// caller's body is unchanged — only the code after the call sees a
	// possibly-different result, so the window suffices; the window's
	// own direct calls are bounded by the same CFG rules.)
	affected := make(map[string]bool, len(set.Changed))
	for _, fn := range set.Changed {
		affected[fn] = true
	}
	for {
		grew := false
		for off := uint64(0); off+isa.InstSize <= uint64(len(b.Code)); off += isa.InstSize {
			in, err := b.DecodeAt(off)
			if err != nil || in.Op != isa.CALLN {
				continue
			}
			callee, ok := symAt[uint64(uint32(in.Imm))]
			if !ok || !affected[callee] {
				continue
			}
			caller, ok := enclosing(b, off)
			if !ok || affected[caller] {
				continue
			}
			w := cfg.BuildPartial(b, off+isa.InstSize, cfg.DefaultWindow)
			if w.Indirect > 0 || w.Truncated {
				return fallback(d, fmt.Sprintf("post-call window at %#x in %s not fully walkable", off, caller))
			}
			for _, win := range w.Insts {
				collect(b, win, blockAt, set)
			}
			affected[caller] = true
			grew = true
		}
		if !grew {
			return set
		}
	}
}

// collect folds one visited instruction into the set: the recovery
// block at its offset, and — for library calls — the dataflow check
// analysis of its post-call window.
func collect(b *isa.Binary, in isa.Inst, blockAt map[uint64]string, set *Set) {
	if id, ok := blockAt[in.Offset]; ok {
		set.Blocks[id] = true
	}
	if in.Op != isa.CALL {
		return
	}
	if _, done := set.Checks[in.Offset]; done {
		return
	}
	w := cfg.BuildPartial(b, in.Offset+isa.InstSize, cfg.DefaultWindow)
	res := dataflow.Analyze(w)
	set.Checks[in.Offset] = Check{
		Callee: b.ImportName(in.Imm),
		Eq:     res.EqCodes(),
		Ineq:   res.IneqCodes(),
	}
}

// enclosing returns the function symbol containing a code offset.
func enclosing(b *isa.Binary, off uint64) (string, bool) {
	for _, sym := range b.Symbols {
		if off >= sym.Off && off < sym.Off+sym.Size {
			return sym.Name, true
		}
	}
	return "", false
}

// PatchFunc returns a copy of b with fn's prologue immediate flipped —
// an inert, behavior-preserving edit (the built-in targets' prologue
// loads a register nothing reads) that moves exactly that function's
// region hash plus the whole-image hash. It is the standard "simulate a
// one-function commit" knob shared by the tests, `lfi explore -patch`,
// `lfi diff -patch`, and the CI incremental smoke job.
func PatchFunc(b *isa.Binary, fn string) (*isa.Binary, error) {
	sym, ok := b.FindSymbol(fn)
	if !ok {
		return nil, fmt.Errorf("impact: patch: no function %q in %s", fn, b.Name)
	}
	if sym.Size < isa.InstSize {
		return nil, fmt.Errorf("impact: patch: function %q is empty", fn)
	}
	in, err := b.DecodeAt(sym.Off)
	if err != nil || in.Op != isa.MOVI {
		return nil, fmt.Errorf("impact: patch: function %q has no MOVI prologue to flip", fn)
	}
	nb := *b
	nb.Code = append([]byte(nil), b.Code...)
	nb.Code[sym.Off+4] ^= 1 // flip the immediate's low byte
	return &nb, nil
}
