package impact

import (
	"reflect"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/isa"
)

// twoFuncs builds a program with two independent functions, each with
// one checked read() site, and returns the binary plus the
// recovery-block → call-site-offset map the descriptors expose.
func twoFuncs(t *testing.T) (*isa.Binary, map[string]uint64) {
	t.Helper()
	bin, offs, err := asm.Program("app", []asm.FuncSpec{
		{Name: "alpha", Sites: []asm.SiteSpec{{Label: "alpha.read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}}}},
		{Name: "beta", Sites: []asm.SiteSpec{{Label: "beta.read", Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	blockOffs := make(map[string]uint64, len(offs))
	for label, off := range offs {
		blockOffs["rec."+label] = off
	}
	return bin, blockOffs
}

func TestFuncHashesDiff(t *testing.T) {
	bin, _ := twoFuncs(t)
	old := FuncHashes(bin)
	if len(old) != 2 {
		t.Fatalf("want 2 function hashes, got %v", old)
	}
	if d := DiffFuncs(old, FuncHashes(bin)); !d.Empty() {
		t.Fatalf("identical binaries diff non-empty: %+v", d)
	}

	pb, err := PatchFunc(bin, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	d := DiffFuncs(old, FuncHashes(pb))
	if !reflect.DeepEqual(d.Changed, []string{"alpha"}) || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("patch of alpha diffed as %+v", d)
	}
	// The image hash moves with any function edit; unrelated regions
	// stay put.
	if ImageHash(bin.Code) == ImageHash(pb.Code) {
		t.Fatal("image hash did not move under the patch")
	}
	if NewHasher(bin).Region("beta") != NewHasher(pb).Region("beta") {
		t.Fatal("unrelated function's region hash moved")
	}
}

func TestPatchFuncErrorsAndInertness(t *testing.T) {
	bin, _ := twoFuncs(t)
	if _, err := PatchFunc(bin, "nope"); err == nil {
		t.Fatal("patching a missing function succeeded")
	}
	pb, err := PatchFunc(bin, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if &pb.Code[0] == &bin.Code[0] {
		t.Fatal("patch mutated the original image")
	}
	// The flip toggles: patching twice restores the original bytes.
	pb2, err := PatchFunc(pb, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if ImageHash(pb2.Code) != ImageHash(bin.Code) {
		t.Fatal("double patch did not restore the image")
	}
	// The patched prologue is still a decodable MOVI to the dead r13.
	sym, _ := pb.FindSymbol("alpha")
	in, err := pb.DecodeAt(sym.Off)
	if err != nil || in.Op != isa.MOVI || in.Rd != 13 {
		t.Fatalf("patched prologue decodes as %v (err %v)", in, err)
	}
}

func TestComputeBoundsBlocksToChangedFunction(t *testing.T) {
	bin, blockOffs := twoFuncs(t)
	set := Compute(bin, Funcs{Changed: []string{"alpha"}}, blockOffs)
	if set.Fallback {
		t.Fatalf("unexpected fallback: %s", set.Reason)
	}
	if !reflect.DeepEqual(set.BlockIDs(), []string{"rec.alpha.read"}) {
		t.Fatalf("impacted blocks = %v, want [rec.alpha.read]", set.BlockIDs())
	}
	if !set.Intersects([]string{"main.x", "rec.alpha.read"}) {
		t.Fatal("entry covering the impacted block reported disjoint")
	}
	if set.Intersects([]string{"main.x", "rec.beta.read"}) {
		t.Fatal("entry covering only unrelated blocks reported intersecting")
	}
	// The walk re-analyzed alpha's library call site.
	ck, ok := set.Checks[blockOffs["rec.alpha.read"]]
	if !ok || ck.Callee != "read" || !reflect.DeepEqual(ck.Eq, []int64{-1}) {
		t.Fatalf("check-site analysis missing or wrong: %+v (present %v)", ck, ok)
	}
}

// callChain builds: main --CALLN--> mid --CALLN--> leaf, with a checked
// site in every function (main's and mid's sit after their calls, so
// they land in post-call windows).
func callChain(t *testing.T) (*isa.Binary, map[string]uint64) {
	t.Helper()
	b := asm.NewBuilder("chain")
	site := func(label string) {
		b.EmitSite(asm.SiteSpec{Label: label, Callee: "read", Style: asm.CheckEq, Codes: []int64{-1}})
	}
	b.Func("leaf")
	b.Label("leaf.entry")
	b.Movi(13, 0)
	site("leaf.read")
	b.Movi(0, 0)
	b.Ret()
	b.Func("mid")
	b.Label("mid.entry")
	b.Movi(13, 0)
	b.J(isa.CALLN, "leaf.entry")
	site("mid.read")
	b.Movi(0, 0)
	b.Ret()
	b.Func("main")
	b.Movi(13, 0)
	b.J(isa.CALLN, "mid.entry")
	site("main.read")
	b.Movi(0, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	blockOffs := make(map[string]uint64)
	for _, label := range []string{"leaf.read", "mid.read", "main.read"} {
		off, ok := b.SiteOffset(label)
		if !ok {
			t.Fatalf("site %s not recorded", label)
		}
		blockOffs["rec."+label] = off
	}
	return bin, blockOffs
}

func TestComputeFollowsCalleesAndCallerWindows(t *testing.T) {
	bin, blockOffs := callChain(t)

	// A change to mid reaches: mid's own blocks, leaf's blocks (mid
	// calls leaf), and main's post-call window (main calls mid) — i.e.
	// everything here.
	set := Compute(bin, Funcs{Changed: []string{"mid"}}, blockOffs)
	if set.Fallback {
		t.Fatalf("unexpected fallback: %s", set.Reason)
	}
	want := []string{"rec.leaf.read", "rec.main.read", "rec.mid.read"}
	if !reflect.DeepEqual(set.BlockIDs(), want) {
		t.Fatalf("impacted blocks = %v, want %v", set.BlockIDs(), want)
	}

	// A change to leaf propagates caller windows transitively: mid's
	// post-call code, and — mid now being affected — main's too.
	set = Compute(bin, Funcs{Changed: []string{"leaf"}}, blockOffs)
	if set.Fallback {
		t.Fatalf("unexpected fallback: %s", set.Reason)
	}
	if !reflect.DeepEqual(set.BlockIDs(), want) {
		t.Fatalf("impacted blocks = %v, want %v", set.BlockIDs(), want)
	}

	// A change to main reaches down (mid, leaf) but has no callers.
	set = Compute(bin, Funcs{Changed: []string{"main"}}, blockOffs)
	if set.Fallback {
		t.Fatalf("unexpected fallback: %s", set.Reason)
	}
	if !reflect.DeepEqual(set.BlockIDs(), want) {
		t.Fatalf("impacted blocks = %v, want %v", set.BlockIDs(), want)
	}
}

func TestComputeFallbacks(t *testing.T) {
	bin, blockOffs := twoFuncs(t)

	// A removed function: its blocks cannot be located in the new
	// image, so the analysis refuses to bound the change.
	set := Compute(bin, Funcs{Removed: []string{"gone"}}, blockOffs)
	if !set.Fallback {
		t.Fatal("removed function did not force fallback")
	}
	if !set.Intersects(nil) || !set.Intersects([]string{"rec.beta.read"}) {
		t.Fatal("fallback set must intersect everything")
	}

	// A changed function with no symbol in the new image.
	set = Compute(bin, Funcs{Changed: []string{"phantom"}}, blockOffs)
	if !set.Fallback {
		t.Fatal("symbol-less changed function did not force fallback")
	}

	// An indirect branch inside a changed function: the CFG walk
	// cannot see where it goes.
	b := asm.NewBuilder("ind")
	b.Func("twisty")
	b.Movi(13, 0)
	b.EmitSite(asm.SiteSpec{Label: "twisty.read", Callee: "read", Style: asm.CheckHiddenIndirect, Codes: []int64{-1}})
	b.Movi(0, 0)
	b.Ret()
	ibin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set = Compute(ibin, Funcs{Changed: []string{"twisty"}}, nil)
	if !set.Fallback {
		t.Fatal("indirect branch did not force fallback")
	}
}
