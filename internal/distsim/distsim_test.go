package distsim

import (
	"testing"

	"lfi/internal/interpose"
)

func call(node string) *interpose.Call {
	return &interpose.Call{Func: "sendto", Node: node}
}

func TestSilencePolicy(t *testing.T) {
	c := NewController(SilencePolicy{Node: "R1"})
	if !c.Decide(call("R1")) {
		t.Fatal("target not silenced")
	}
	if c.Decide(call("R2")) {
		t.Fatal("non-target silenced")
	}
	if c.Consulted() != 2 {
		t.Fatalf("consulted %d", c.Consulted())
	}
}

func TestLossPolicyRate(t *testing.T) {
	c := NewController(NewLossPolicy(0.25, 42))
	dropped := 0
	const n = 8000
	for i := 0; i < n; i++ {
		if c.Decide(call("R0")) {
			dropped++
		}
	}
	if dropped < n/5 || dropped > 3*n/10 {
		t.Fatalf("p=0.25 dropped %d/%d", dropped, n)
	}
}

func TestRotationPolicyBursts(t *testing.T) {
	c := NewController(&RotationPolicy{Nodes: []string{"R1", "R2", "R3"}, Burst: 3})
	// R1 absorbs exactly 3 faults, then the attack moves to R2.
	for i := 0; i < 3; i++ {
		if !c.Decide(call("R1")) {
			t.Fatalf("R1 burst call %d not injected", i)
		}
	}
	if c.Decide(call("R1")) {
		t.Fatal("R1 still targeted after its burst")
	}
	if !c.Decide(call("R2")) {
		t.Fatal("attack did not rotate to R2")
	}
	// Calls from non-targeted nodes never advance the burst.
	for i := 0; i < 10; i++ {
		if c.Decide(call("R0")) {
			t.Fatal("untargeted node injected")
		}
	}
	if !c.Decide(call("R2")) {
		t.Fatal("R2 burst interrupted by other nodes' calls")
	}
}

func TestRotationWrapsAround(t *testing.T) {
	c := NewController(&RotationPolicy{Nodes: []string{"A", "B"}, Burst: 1})
	seq := []string{"A", "B", "A", "B"}
	for i, node := range seq {
		if !c.Decide(call(node)) {
			t.Fatalf("step %d (%s) not injected", i, node)
		}
	}
}

func TestNilPolicyNeverFires(t *testing.T) {
	c := NewController(nil)
	if c.Decide(call("R0")) {
		t.Fatal("nil policy fired")
	}
}

func TestEmptyRotation(t *testing.T) {
	c := NewController(&RotationPolicy{})
	if c.Decide(call("R0")) {
		t.Fatal("empty rotation fired")
	}
}
