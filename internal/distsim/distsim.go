// Package distsim implements the central controller behind distributed
// triggers (§3.2): node-local LFI runtimes forward intercepted calls
// (node, function, arguments, stack) to one controller that decides,
// from a global view of the system, whether the remote trigger fires.
//
// The policies here are the ones the evaluation uses on PBFT (§7.3):
// uniform random loss across inter-replica links, silencing all
// communication of a single replica, and the rotating burst attack (500
// consecutive faults on R1, then R2, then R3, then R1 again, ...) aimed
// at confusing the reconfiguration protocol.
package distsim

import (
	"math/rand"
	"sync"

	"lfi/internal/interpose"
	"lfi/internal/trigger"
)

// Controller is the distributed-trigger decider shared by every node's
// runtime. It is safe for concurrent use by replicas.
type Controller struct {
	mu     sync.Mutex
	policy Policy
	calls  uint64 // global count of consulted calls
}

var _ trigger.Decider = (*Controller)(nil)

// Policy decides from the global call stream.
type Policy interface {
	Decide(globalCount uint64, call *interpose.Call) bool
}

// NewController creates a controller with the given policy.
func NewController(p Policy) *Controller {
	return &Controller{policy: p}
}

// Decide implements trigger.Decider.
func (c *Controller) Decide(call *interpose.Call) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.policy == nil {
		return false
	}
	return c.policy.Decide(c.calls, call)
}

// Consulted returns how many calls reached the central controller (used
// to verify that node-local composition keeps this number low).
func (c *Controller) Consulted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// --- policies ----------------------------------------------------------------

// LossPolicy drops inter-replica communication uniformly at random with
// probability P — the Figure 3 degraded-network scenario.
type LossPolicy struct {
	P   float64
	rng *rand.Rand
	mu  sync.Mutex
}

// NewLossPolicy creates a seeded loss policy.
func NewLossPolicy(p float64, seed int64) *LossPolicy {
	return &LossPolicy{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Decide implements Policy.
func (l *LossPolicy) Decide(_ uint64, _ *interpose.Call) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64() < l.P
}

// SilencePolicy fails every communication call made by one node —
// rendering the replica practically inactive (the first DoS scenario).
type SilencePolicy struct {
	Node string
}

// Decide implements Policy.
func (s SilencePolicy) Decide(_ uint64, call *interpose.Call) bool {
	return call.Node == s.Node
}

// RotationPolicy injects Burst consecutive faults into the
// communication of Nodes[0], then Nodes[1], ..., wrapping around — the
// second DoS scenario targeting the view-change protocol. The burst
// counter advances only on calls from the currently-targeted node, so
// each node absorbs a full burst before the attack rotates.
type RotationPolicy struct {
	Nodes []string
	Burst uint64

	mu     sync.Mutex
	idx    int
	inTurn uint64
}

// Decide implements Policy.
func (r *RotationPolicy) Decide(_ uint64, call *interpose.Call) bool {
	if len(r.Nodes) == 0 || r.Burst == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if call.Node != r.Nodes[r.idx] {
		return false
	}
	r.inTurn++
	if r.inTurn >= r.Burst {
		r.inTurn = 0
		r.idx = (r.idx + 1) % len(r.Nodes)
	}
	return true
}
