package explore

// Change-impact-aware store invalidation (the `-impact` resume path).
//
// Without it, a code edit invalidates per shard: call-stack candidates
// whose enclosing function changed lose their shard, and every
// occurrence/window candidate — keyed on the whole image — loses its
// cache on *any* edit. With it, the resume worklist consults an
// impactPlan built from the store's previous-image function
// fingerprints (persisted in index.json by the last session) and the
// internal/impact CFG walk:
//
//   - an image-keyed entry whose recorded coverage cannot intersect the
//     blocks the edit reaches migrates forward, outcome intact;
//   - everything else re-validates, scheduled ahead of fresh candidates
//     and ordered by expected gain under the store's persisted EWMA
//     cost model (previously-failing entries and entries covering
//     impacted recovery blocks first).
//
// When the analysis cannot bound the edit (indirect branch, truncated
// walk, removed function, no previous-image metadata) the plan degrades
// to the pre-existing whole-shard behavior — strictly conservative.

import (
	"fmt"
	"strings"

	"lfi/internal/exec"
	"lfi/internal/impact"
)

// ImpactSummary reports what the impact plan did on the resume path —
// the Result.Impact / `lfi explore -impact -v` shape.
type ImpactSummary struct {
	PrevImage string   // image version the plan diffed against
	Changed   []string // changed/added functions (sorted)
	Blocks    []string // impacted recovery blocks (sorted)
	Fallback  bool     // analysis could not bound the edit
	Reason    string   // why, when Fallback
	// Migrated counts cached entries carried across the edit with
	// outcomes intact; Revalidated counts entries queued for
	// re-execution because the edit may reach their coverage (or, for
	// ProfilesChanged callees, because the fault model they were cached
	// under changed).
	Migrated    int
	Revalidated int
	// ProfilesChanged lists callees whose library fault profile changed
	// since the last save — an edit no code hash can see (sorted).
	ProfilesChanged []string
}

// String renders the one-line impact report.
func (s *ImpactSummary) String() string {
	var prof string
	if len(s.ProfilesChanged) > 0 {
		prof = fmt.Sprintf(", %d profile(s) changed [%s]", len(s.ProfilesChanged), strings.Join(s.ProfilesChanged, " "))
	}
	if s.Fallback {
		return fmt.Sprintf("impact vs %s: fallback to whole-shard invalidation (%s)%s", s.PrevImage, s.Reason, prof)
	}
	return fmt.Sprintf("impact vs %s: %d changed fn [%s], %d impacted blocks, %d migrated, %d revalidated%s",
		s.PrevImage, len(s.Changed), strings.Join(s.Changed, " "), len(s.Blocks), s.Migrated, s.Revalidated, prof)
}

// impactPlan is the per-run decision table: how to treat a candidate
// whose store key no longer matches any cached entry.
type impactPlan struct {
	set      *impact.Set
	oldImage string            // previous image's whole-image region hash
	oldFuncs map[string]string // previous image's function fingerprints
	model    exec.CostModel    // persisted EWMA economics (re-run ordering)
	sum      *ImpactSummary
}

// newImpactPlan diffs the current binary against the most recent other
// image the store retains. nil when the store has no previous image
// with function fingerprints (first run, unchanged image, or a store
// written before fingerprints existed) — callers then keep the default
// whole-shard resume path.
func newImpactPlan(cfg Config, store *Store) *impactPlan {
	prev, oldFuncs, ok := store.PreviousImage()
	if !ok {
		return nil
	}
	d := impact.DiffFuncs(oldFuncs, impact.FuncHashes(cfg.Binary))
	var set *impact.Set
	if d.Empty() {
		// The image version moved but no function body did: the change
		// is outside every symbol, beyond what the walk can attribute.
		set = &impact.Set{Fallback: true, Reason: "image changed outside function symbols"}
	} else {
		set = impact.Compute(cfg.Binary, d, cfg.BlockOffsets)
	}
	p := &impactPlan{
		set:      set,
		oldImage: regionOfImage(prev),
		oldFuncs: oldFuncs,
		sum: &ImpactSummary{
			PrevImage: prev,
			Changed:   set.Changed,
			Blocks:    set.BlockIDs(),
			Fallback:  set.Fallback,
			Reason:    set.Reason,
		},
	}
	if cost, ok := store.CostModel(); ok {
		p.model = cost
	}
	return p
}

// regionOfImage extracts the code-region hash from an image version
// ("name@hash" — the ImageVersion shape).
func regionOfImage(image string) string {
	if i := strings.LastIndexByte(image, '@'); i >= 0 {
		return image[i+1:]
	}
	return ""
}

// lookupOld finds the previous image's cached entry for a candidate
// whose current key missed: same scenario hash, old region hash (the
// previous image hash for image-keyed candidates, the caller's previous
// fingerprint for call-stack candidates).
func (p *impactPlan) lookupOld(store *Store, c *Candidate) (string, Entry, bool) {
	region := p.oldImage
	if c.Caller != "" {
		region = p.oldFuncs[c.Caller]
	}
	if region == "" {
		return "", Entry{}, false
	}
	key := c.Hash + "@" + region
	e, ok := store.Lookup(key)
	return key, e, ok
}

// revalBoost scores how urgently a stale cached entry should
// re-validate, relative to other pending candidates. Re-validations
// outrank every fresh candidate class (they are the cheapest path back
// to a fully-validated store), and among themselves order by expected
// gain: the persisted EWMA gain-per-run scales up entries that
// previously failed (a bug that might have been fixed — or not) and
// entries covering blocks the edit reaches (the coverage most likely to
// shift).
func (p *impactPlan) revalBoost(e Entry) float64 {
	gain := 1 + p.model.GainPerRun
	b := 120.0
	if e.Failed {
		b += 40 * gain
	}
	if !p.set.Fallback {
		hits := 0
		for _, id := range e.Blocks {
			if p.set.Blocks[id] {
				hits++
			}
		}
		b += 5 * gain * float64(hits)
	}
	return b
}

// DiffReport is the `lfi diff` inspection shape: what the current
// binary's divergence from the store's previous image means for the
// cached candidate space, without executing anything.
type DiffReport struct {
	System    string
	Image     string // current image version
	PrevImage string // previous image the store retains ("" = none)
	Diff      impact.Funcs
	Set       *impact.Set
	// Base-candidate classification against the store (bred mutants
	// ride their parents' regions and follow the same split).
	Cached     int // key unchanged: replays as-is
	Migratable int // key moved, coverage disjoint: migrates intact
	Revalidate int // key moved, possibly affected: re-executes
	Missing    int // never cached under either image
	Entries    int // total cached entries in the store
}

// String renders the report.
func (r *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diff %s: %s", r.System, r.Image)
	if r.PrevImage == "" {
		fmt.Fprintf(&b, "\n  no previous image with function fingerprints in the store; nothing to diff\n")
		return b.String()
	}
	fmt.Fprintf(&b, " vs %s\n", r.PrevImage)
	fmt.Fprintf(&b, "  functions: %d changed %v, %d added %v, %d removed %v\n",
		len(r.Diff.Changed), r.Diff.Changed, len(r.Diff.Added), r.Diff.Added, len(r.Diff.Removed), r.Diff.Removed)
	if r.Set.Fallback {
		fmt.Fprintf(&b, "  impact: UNBOUNDED — %s; every cached entry re-validates\n", r.Set.Reason)
	} else {
		fmt.Fprintf(&b, "  impacted recovery blocks (%d): %s\n", len(r.Set.Blocks), strings.Join(r.Set.BlockIDs(), " "))
		for off, ck := range r.Set.Checks {
			fmt.Fprintf(&b, "    site %#x %s: checks eq=%v ineq=%v\n", off, ck.Callee, ck.Eq, ck.Ineq)
		}
	}
	fmt.Fprintf(&b, "  base candidates: %d cached, %d migratable, %d revalidate, %d missing (%d store entries)\n",
		r.Cached, r.Migratable, r.Revalidate, r.Missing, r.Entries)
	return b.String()
}

// Diff loads the store read-only and classifies the candidate space
// against it — the engine behind `lfi diff`. It never executes a test
// and never writes the store.
func Diff(cfg Config) (*DiffReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == "" {
		return nil, fmt.Errorf("explore: diff: no store configured")
	}
	store, err := LoadStore(cfg.Store, cfg.System, ImageVersion(cfg.Binary))
	if err != nil {
		return nil, err
	}
	rep := &DiffReport{
		System:  cfg.System,
		Image:   ImageVersion(cfg.Binary),
		Entries: store.Stats().Entries,
	}
	plan := newImpactPlan(cfg, store)
	if plan == nil {
		return rep, nil
	}
	rep.PrevImage = plan.sum.PrevImage
	rep.Diff = impact.DiffFuncs(plan.oldFuncs, impact.FuncHashes(cfg.Binary))
	rep.Set = plan.set
	for _, c := range Generate(cfg) {
		if _, ok := store.Lookup(c.key); ok {
			rep.Cached++
			continue
		}
		_, old, hit := plan.lookupOld(store, c)
		switch {
		case !hit:
			rep.Missing++
		case c.Caller == "" && !plan.set.Intersects(old.Blocks):
			rep.Migratable++
		default:
			rep.Revalidate++
		}
	}
	return rep, nil
}
