package explore

import (
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"lfi/internal/callgraph"
	"lfi/internal/impact"
)

// ancestorsOf derives the transitive direct callers of fn from the
// summary set's call edges — independently of the callgraph package's
// own recompute-set logic, so the incremental pinning below is not
// tautological.
func ancestorsOf(sums callgraph.Summaries, fn string) []string {
	callers := make(map[string][]string)
	for name, fs := range sums {
		for _, c := range fs.Calls {
			if c.Callee != "" {
				callers[c.Callee] = append(callers[c.Callee], name)
			}
		}
	}
	seen := map[string]bool{fn: true}
	frontier := []string{fn}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, up := range callers[next] {
			if !seen[up] {
				seen[up] = true
				frontier = append(frontier, up)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TestLintIncremental pins the acceptance property: after a cold lint
// populates the store, editing one function recomputes exactly that
// function's summary plus its call-graph ancestors, and everything
// else is reused.
func TestLintIncremental(t *testing.T) {
	cfg, ok := ConfigFor("minivcs")
	if !ok {
		t.Fatal("minivcs config missing")
	}
	cfg.Store = filepath.Join(t.TempDir(), "store")

	cold, err := Lint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Baseline != "" || cold.Reused != 0 || len(cold.Recomputed) != cold.Funcs {
		t.Fatalf("cold lint not cold: baseline %q, reused %d, recomputed %d/%d",
			cold.Baseline, cold.Reused, len(cold.Recomputed), cold.Funcs)
	}
	if cold.Counts.Swallowed == 0 {
		t.Fatal("minivcs has planted unchecked sites; swallowed count = 0")
	}
	if len(cold.DeadBlocks) != cold.Counts.Swallowed {
		t.Fatalf("dead blocks %v vs swallowed %d; every swallowed site has a registered recovery block",
			cold.DeadBlocks, cold.Counts.Swallowed)
	}

	// Unchanged image: everything reused, nothing recomputed.
	warm, err := Lint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Recomputed) != 0 || warm.Reused != cold.Funcs || warm.Baseline != cold.Image {
		t.Fatalf("warm lint: recomputed %v, reused %d, baseline %q; want none/%d/%q",
			warm.Recomputed, warm.Reused, warm.Baseline, cold.Funcs, cold.Image)
	}
	if !reflect.DeepEqual(warm.Counts, cold.Counts) || !reflect.DeepEqual(warm.Sites, cold.Sites) {
		t.Fatal("warm lint diverges from cold lint on an unchanged image")
	}

	// Deterministic edit target: the first summarized function. The
	// stock applications make no internal calls, so its ancestor set is
	// just itself; the non-trivial chained-ancestor case is pinned by
	// the callgraph package's TestIncrementalRecompute.
	sums := callgraph.Analyze(cfg.Binary, cfg.Profiles).Summaries
	target := ""
	for name := range sums {
		if target == "" || name < target {
			target = name
		}
	}
	if target == "" {
		t.Fatal("no summarized functions in minivcs image")
	}
	want := ancestorsOf(sums, target)

	patched, err := impact.PatchFunc(cfg.Binary, target)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Binary = patched
	inc, err := Lint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc.Recomputed, want) {
		t.Fatalf("patched %s: recomputed %v, want changed function + ancestors %v", target, inc.Recomputed, want)
	}
	if inc.Reused != cold.Funcs-len(want) {
		t.Fatalf("patched %s: reused %d, want %d", target, inc.Reused, cold.Funcs-len(want))
	}
	if inc.Baseline != cold.Image {
		t.Fatalf("patched lint baseline %q, want prior image %q", inc.Baseline, cold.Image)
	}
	// The body edit flips an immediate, not control flow or call
	// structure, so the verdicts must be unchanged.
	if !reflect.DeepEqual(inc.Counts, cold.Counts) {
		t.Fatalf("immaterial patch changed counts: %+v vs %+v", inc.Counts, cold.Counts)
	}
}
