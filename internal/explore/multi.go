package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"lfi/internal/controller"
)

// MultiResult is the outcome of one cross-system exploration run — the
// `lfi explore -all` shape: per-system results plus the merged totals.
type MultiResult struct {
	Results  []*Result        // one per system, in scheduling-input order
	Executed int              // tests actually run, all systems
	Replayed int              // outcomes reused from stores, all systems
	Bugs     []controller.Bug // all systems, sorted by system then signature
	Elapsed  time.Duration
}

// String renders the cross-system summary after the per-system ones.
func (m *MultiResult) String() string {
	var b strings.Builder
	for _, r := range m.Results {
		b.WriteString(r.String())
	}
	fmt.Fprintf(&b, "explore all: %d systems, %d executed, %d replayed, %d distinct failure signatures (%.2fs)\n",
		len(m.Results), m.Executed, m.Replayed, len(m.Bugs), m.Elapsed.Seconds())
	return b.String()
}

// CrashBugs returns the merged crash signatures (excluding
// workload-detected failures), in Bugs order.
func (m *MultiResult) CrashBugs() []controller.Bug {
	var out []controller.Bug
	for _, b := range m.Bugs {
		if b.IsCrash() {
			out = append(out, b)
		}
	}
	return out
}

// ExploreAllContext runs one exploration session over several systems
// at once — the ROADMAP's cross-system campaign orchestration. All
// configs share the caller's execution fleet (by convention: a Session
// passes one fleet to every config) and one store root: LoadStore keys
// shards by system name, so the configs' Store fields may all point at
// the same directory.
//
// Scheduling interleaves batches across systems by expected coverage
// gain per second, priced by each system's cost model: gain/run (EWMA
// of new recovery blocks per executed run, seeded by the uncovered-
// recovery fraction before any batch has run) times the fleet's
// aggregate runs/sec for that system (EWMA per backend, persisted in
// the store index). Early budget still flows to whichever target has
// the most unexplored recovery code — that is the seed prior — but a
// system whose batches keep paying off, or that executes cheaply on
// the available backends, overtakes a nominally larger one that has
// gone cold or runs slow. Each scheduled batch then fans out across
// the fleet's mix of local/pool/remote backends (exec.Fleet.Run).
//
// budget, when positive, bounds the total tests executed across all
// systems (replayed store hits are free, as in Config.MaxRuns).
// Cancellation behaves like ExploreContext per system: every started
// batch's outcomes are saved — drained remote responses included — no
// shard is ever torn, and the partial MultiResult comes back with
// ctx.Err().
func ExploreAllContext(ctx context.Context, cfgs []Config, budget int) (*MultiResult, error) {
	begin := time.Now()
	seen := make(map[string]bool, len(cfgs))
	for _, cfg := range cfgs {
		name := cfg.withDefaults().System
		if seen[name] {
			// Two runs of one system would double-execute its whole
			// candidate space and race their Store instances over the
			// same shard directory.
			return nil, fmt.Errorf("explore: duplicate system %q in cross-system explore", name)
		}
		seen[name] = true
	}
	runs := make([]*run, 0, len(cfgs))
	var runErr error
	for _, cfg := range cfgs {
		if runErr = ctx.Err(); runErr != nil {
			break
		}
		r, err := newRun(cfg)
		if err != nil {
			// Creation failures (bad store, broken baseline) abort the
			// whole session before any scheduling starts.
			return nil, err
		}
		runs = append(runs, r)
	}

	executed := func() int {
		total := 0
		for _, r := range runs {
			total += r.res.Executed
		}
		return total
	}
	for runErr == nil {
		remaining := 0
		if budget > 0 {
			if remaining = budget - executed(); remaining <= 0 {
				break
			}
		}
		r := nextRun(runs)
		if r == nil {
			break
		}
		runErr = r.step(ctx, remaining)
	}

	res := &MultiResult{}
	for _, r := range runs {
		// finish flushes and prunes each store even on a shared error,
		// so an interrupted -all session resumes with no re-execution.
		sysRes, err := r.finish(nil)
		if runErr == nil {
			runErr = err
		}
		res.Results = append(res.Results, sysRes)
		res.Executed += sysRes.Executed
		res.Replayed += sysRes.Replayed
		res.Bugs = append(res.Bugs, sysRes.Bugs...)
	}
	sort.Slice(res.Bugs, func(i, j int) bool {
		if res.Bugs[i].System != res.Bugs[j].System {
			return res.Bugs[i].System < res.Bugs[j].System
		}
		return res.Bugs[i].Signature < res.Bugs[j].Signature
	})
	res.Elapsed = time.Since(begin)
	if runErr != nil {
		return res, runErr
	}
	return res, nil
}

// systemScore prices one more batch of r in expected new recovery
// blocks per second:
//
//	score = (gain + 0.05·uncovered) × speed
//
// where gain is the system's gain-per-run EWMA (seeded by the
// uncovered-recovery fraction before any batch has run), uncovered is
// that fraction — a floor that keeps breadth in the mix after gain
// EWMAs decay — and speed is the fleet's aggregate runs/sec estimate
// for the system.
func systemScore(r *run) float64 {
	uncovered := float64(r.uncoveredRecovery()) / float64(r.x.recBits.Count()+1)
	gain := r.cfg.Exec.GainEstimate(r.cfg.System, uncovered)
	return (gain + 0.05*uncovered) * r.cfg.Exec.SpeedEstimate(r.cfg.System)
}

// nextRun picks the not-done run with the highest cost-model score,
// ties broken by system name so scheduling is deterministic.
func nextRun(runs []*run) *run {
	var best *run
	var bestScore float64
	for _, r := range runs {
		if r.done() {
			continue
		}
		score := systemScore(r)
		switch {
		case best == nil, score > bestScore:
			best, bestScore = r, score
		case score == bestScore && r.cfg.System < best.cfg.System:
			best = r
		}
	}
	return best
}
