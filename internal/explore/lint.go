package explore

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/callgraph"
	"lfi/internal/impact"
)

// LintSite is one library call site in a lint report.
type LintSite struct {
	Offset uint64 `json:"offset"`
	Callee string `json:"callee"`
	Caller string `json:"caller"`
	// Intra is the paper's windowed Algorithm 1 class; Final the
	// interprocedural verdict.
	Intra string `json:"intra"`
	Final string `json:"final"`
	// Block is the recovery block registered for the site ("" when the
	// site map doesn't name one); Dead marks blocks no error path can
	// reach.
	Block string `json:"block,omitempty"`
	Dead  bool   `json:"dead,omitempty"`
}

// LintReport is the result of `lfi lint` over one system: the
// interprocedural analysis (package callgraph) resolved against the
// system's registered site map, plus the summary-reuse accounting of
// the incremental path.
type LintReport struct {
	System        string           `json:"system"`
	Image         string           `json:"image"`
	Funcs         int              `json:"funcs"`
	SCCs          int              `json:"sccs"`
	IndirectCalls int              `json:"indirectCalls"`
	Counts        callgraph.Counts `json:"counts"`
	Sites         []LintSite       `json:"sites"`
	// DeadBlocks lists recovery blocks unreachable by any error path —
	// their sites provably drop the library error, so no error-
	// conditional branch into the block exists.
	DeadBlocks []string `json:"deadBlocks,omitempty"`
	// Recomputed lists functions whose summaries were computed this
	// run; Reused counts summaries taken from the store, and Baseline
	// names the image they were recorded under ("" on a cold run).
	Recomputed []string `json:"recomputed"`
	Reused     int      `json:"reused"`
	Baseline   string   `json:"baseline,omitempty"`
}

// Lint runs the interprocedural error-propagation analysis over one
// system's binary. With cfg.Store set, summaries persisted by an
// earlier lint or explore session are reused for every function whose
// body fingerprint is unchanged (and the fresh set is saved back), so
// a one-function edit recomputes only that function plus its
// call-graph ancestors.
func Lint(cfg Config) (*LintReport, error) {
	image := ImageVersion(cfg.Binary)
	profHashes := impact.ProfileHashes(cfg.Profiles)

	var store *Store
	var prior callgraph.Summaries
	baseline := ""
	if cfg.Store != "" {
		var err error
		store, err = LoadStore(cfg.Store, cfg.System, image)
		if err != nil {
			return nil, err
		}
		if sums, img, ok := store.PriorSummaries(); ok {
			// A profile edit changes the site universe the summaries
			// describe; reuse only under an identical fault model.
			if prev, pok := store.PriorProfileHashes(); pok && sameHashes(prev, profHashes) {
				prior, baseline = sums, img
			}
		}
	}

	a := callgraph.AnalyzeIncremental(cfg.Binary, cfg.Profiles, prior)

	rep := &LintReport{
		System:        cfg.System,
		Image:         image,
		Funcs:         len(a.Summaries),
		SCCs:          len(a.SCCs),
		IndirectCalls: a.IndirectCalls,
		Counts:        a.Counts(),
		Recomputed:    a.Recomputed,
		Reused:        a.Reused,
		Baseline:      baseline,
	}
	blockAt := make(map[uint64]string, len(cfg.BlockOffsets))
	for id, off := range cfg.BlockOffsets {
		blockAt[off] = id
	}
	for _, s := range a.Sites {
		ls := LintSite{
			Offset: s.Offset,
			Callee: s.Callee,
			Caller: s.Caller,
			Intra:  s.Intra.String(),
			Final:  s.Final.String(),
			Block:  blockAt[s.Offset],
		}
		if s.DeadRecovery && ls.Block != "" {
			ls.Dead = true
			rep.DeadBlocks = append(rep.DeadBlocks, ls.Block)
		}
		rep.Sites = append(rep.Sites, ls)
	}
	sort.Strings(rep.DeadBlocks)

	if store != nil {
		if err := store.SaveSummaries(a.Summaries, a.Summaries.Hashes(), profHashes); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// String renders the report for humans: the class tally, the call
// graph shape, the summary-reuse accounting, and one line per site the
// interprocedural analysis has something to say about.
func (r *LintReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lint %s@%s: %d sites — %d checked, %d partial, %d unchecked, %d swallowed, %d checked-in-caller\n",
		r.System, r.Image[strings.IndexByte(r.Image, '@')+1:], len(r.Sites),
		r.Counts.Checked, r.Counts.Partial, r.Counts.Unchecked, r.Counts.Swallowed, r.Counts.CheckedInCaller)
	fmt.Fprintf(&b, "  call graph: %d functions, %d SCCs, %d indirect calls\n", r.Funcs, r.SCCs, r.IndirectCalls)
	switch {
	case r.Baseline != "":
		fmt.Fprintf(&b, "  summaries: %d recomputed, %d reused from %s\n", len(r.Recomputed), r.Reused, r.Baseline)
	default:
		fmt.Fprintf(&b, "  summaries: %d recomputed (cold)\n", len(r.Recomputed))
	}
	for _, s := range r.Sites {
		if s.Final == s.Intra && !s.Dead {
			continue
		}
		fmt.Fprintf(&b, "  %s@%x in %s: %s", s.Callee, s.Offset, s.Caller, s.Final)
		if s.Final != s.Intra {
			fmt.Fprintf(&b, " (windowed: %s)", s.Intra)
		}
		if s.Dead {
			fmt.Fprintf(&b, " — recovery block %s unreachable by any error path", s.Block)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
