package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lfi/internal/exec"
)

// TestStoreCrashSafePartialWrite pins the crash-safety satellite: every
// write goes to a temp file first, so a killed campaign leaves at worst
// a stray .tmp alongside intact shards — and a torn shard (simulated
// here by truncating the file in place) is skipped on load, never
// half-parsed into the campaign.
func TestStoreCrashSafePartialWrite(t *testing.T) {
	root := t.TempDir()
	st, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	st.Put("good@aaaa", Entry{Name: "good"})
	st.Put("torn@bbbb", Entry{Name: "torn"})
	if err := st.FlushDirty(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-write: a partial .tmp for one shard, and a
	// truncated (torn) second shard.
	dir := filepath.Join(root, "sys")
	if err := os.WriteFile(filepath.Join(dir, "aaaa.json.tmp123"), []byte(`{"system":"sys","entr`), 0o644); err != nil {
		t.Fatal(err)
	}
	torn, err := os.ReadFile(filepath.Join(dir, "bbbb.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bbbb.json"), torn[:len(torn)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Lookup("good@aaaa"); !ok {
		t.Fatal("intact shard lost")
	}
	if _, ok := st2.Lookup("torn@bbbb"); ok {
		t.Fatal("partial write was loaded")
	}
	// A torn index must not take the shards down with it either.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"system":"sy`), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st3.Lookup("good@aaaa"); !ok {
		t.Fatal("torn index dropped intact shards")
	}
}

// TestStoreLegacyMigration: a v1 single-document store is split into
// shards transparently and keeps its entries.
func TestStoreLegacyMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "explore.json")
	legacy := `{"system":"sys","image":"img@0","entries":{` +
		`"s1@aaaa":{"name":"one","failed":true,"signature":"sig"},` +
		`"s2@bbbb":{"name":"two","blocks":["rec.x"]}}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadStore(path, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	e, ok := st.Lookup("s1@aaaa")
	if !ok || !e.Failed || e.Signature != "sig" {
		t.Fatalf("legacy entry lost: %+v ok=%v", e, ok)
	}
	if _, ok := st.Lookup("s2@bbbb"); !ok {
		t.Fatal("second legacy entry lost")
	}
	// The old file was swapped for the shard directory, and the
	// migrated entries are durable immediately — a crash right after
	// LoadStore (before any Save) must not lose the cached campaign.
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Fatalf("legacy file not swapped for shard dir: %v", err)
	}
	re, err := LoadStore(path, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Lookup("s1@aaaa"); !ok {
		t.Fatal("migrated entry not durable before first Save")
	}
	if err := st.Save(map[string]bool{"s1@aaaa": true, "s2@bbbb": true}); err != nil {
		t.Fatal(err)
	}
	if got := len(st.Shards()); got != 2 {
		t.Fatalf("want 2 shards after migration, have %d", got)
	}
	// A legacy store for a different system is refused, not destroyed.
	other := filepath.Join(t.TempDir(), "other.json")
	if err := os.WriteFile(other, []byte(`{"system":"theirs","entries":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStore(other, "sys", "img@1"); err == nil || !strings.Contains(err.Error(), "theirs") {
		t.Fatalf("cross-system legacy store accepted: %v", err)
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatal("refused legacy store was removed")
	}
}

// TestStoreConcurrentShardFlush is the -race satellite: two workers
// exploring the same system write disjoint shards concurrently —
// interleaved Puts and per-shard flushes — and no entry is lost.
func TestStoreConcurrentShardFlush(t *testing.T) {
	root := t.TempDir()
	st, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	const perWorker = 200
	keys := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			region := fmt.Sprintf("shard%d", w)
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("scen%d@%s", i, region)
				st.Put(key, Entry{Name: fmt.Sprintf("w%d-%d", w, i)})
				mu.Lock()
				keys[key] = true
				mu.Unlock()
				if i%10 == 9 {
					if err := st.FlushShard(region); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Save(keys); err != nil {
		t.Fatal(err)
	}

	st2, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	for key := range keys {
		if _, ok := st2.Lookup(key); !ok {
			t.Fatalf("entry %s lost", key)
		}
	}
	if got := st2.Shards(); len(got) != 2 {
		t.Fatalf("want 2 shards, have %v", got)
	}
}

// TestStoreConcurrentSameShardFlush: flushes of the SAME region are
// linearized — interleaved Put/FlushShard from two workers can never
// durably persist an older snapshot over a newer one.
func TestStoreConcurrentSameShardFlush(t *testing.T) {
	root := t.TempDir()
	st, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st.Put(fmt.Sprintf("w%d-%d@shared", w, i), Entry{Name: "e"})
				if i%7 == 6 {
					if err := st.FlushShard("shared"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < perWorker; i++ {
			key := fmt.Sprintf("w%d-%d@shared", w, i)
			if _, ok := st2.Lookup(key); !ok {
				t.Fatalf("entry %s lost in same-shard flush race", key)
			}
		}
	}
}

// TestStoreMigrationCrashResume: a crash between parking the v1 file
// and renaming the staged directory into place leaves path missing and
// path+".v1" present — the next LoadStore must resume the migration
// from the parked copy with no entries lost.
func TestStoreMigrationCrashResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "explore.json")
	legacy := `{"system":"sys","entries":{"s1@aaaa":{"name":"one"}}}`
	if err := os.WriteFile(path+".v1", []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := LoadStore(path, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup("s1@aaaa"); !ok {
		t.Fatal("entry lost across interrupted migration")
	}
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Fatalf("migration not completed: %v", err)
	}
	if _, err := os.Stat(path + ".v1"); !os.IsNotExist(err) {
		t.Fatalf("parked v1 file not cleaned up: %v", err)
	}
}

// TestStoreImageRetention: manifests are capped, and shards referenced
// only by evicted images are garbage-collected.
func TestStoreImageRetention(t *testing.T) {
	root := t.TempDir()
	for i := 0; i < maxImages+3; i++ {
		st, err := LoadStore(root, "sys", fmt.Sprintf("img@%d", i))
		if err != nil {
			t.Fatal(err)
		}
		// Every image shares shard "common" and owns one private shard;
		// alternating images also share one of two "pair" shards.
		keys := map[string]bool{
			"s@common":                   true,
			fmt.Sprintf("s@only%d", i):   true,
			fmt.Sprintf("s@pair%d", i%2): true,
		}
		for k := range keys {
			if _, ok := st.Lookup(k); !ok {
				st.Put(k, Entry{Name: k})
			}
		}
		if err := st.Save(keys); err != nil {
			t.Fatal(err)
		}
	}
	st, err := LoadStore(root, "sys", "img@final")
	if err != nil {
		t.Fatal(err)
	}
	if imgs := st.Images(); len(imgs) != maxImages {
		t.Fatalf("retained %d manifests, want %d: %v", len(imgs), maxImages, imgs)
	}
	if _, ok := st.Lookup("s@common"); !ok {
		t.Fatal("shared shard evicted")
	}
	if _, ok := st.Lookup("s@only0"); ok {
		t.Fatal("evicted image's private shard survived")
	}
	last := fmt.Sprintf("s@only%d", maxImages+2)
	if _, ok := st.Lookup(last); !ok {
		t.Fatal("latest image's private shard lost")
	}
}

// TestStoreCostModelRoundTrip: the execution cost model persists in the
// store index across load/save cycles — a resumed session schedules on
// the economics the last one measured.
func TestStoreCostModelRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	st, err := LoadStore(path, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.CostModel(); ok {
		t.Fatal("fresh store claims a cost model")
	}
	want := exec.CostModel{
		GainPerRun: 0.25,
		Batches:    7,
		Speed:      map[string]float64{"local": 1200, "remote(h:1)": 3400},
	}
	st.SetCostModel(want)
	st.Put("scen@aaaa", Entry{Name: "scen"})
	if err := st.Save(map[string]bool{"scen@aaaa": true}); err != nil {
		t.Fatal(err)
	}

	st2, err := LoadStore(path, "sys", "img@2")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.CostModel()
	if !ok {
		t.Fatal("cost model lost across load")
	}
	if got.GainPerRun != want.GainPerRun || got.Batches != want.Batches ||
		got.Speed["local"] != 1200 || got.Speed["remote(h:1)"] != 3400 {
		t.Fatalf("cost model mangled: %+v vs %+v", got, want)
	}
}
