package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lfi/internal/profile"
)

// TestImpactInvalidation pins the diff-aware resume contract: after an
// inert patch to one minidb function, an -impact resume re-executes
// only the scenarios whose recorded coverage the edit can reach —
// strictly fewer than the whole-shard invalidation path on the same
// edit — while keeping the every-entry-exactly-once invariant and the
// full bug list. An identical-binary -impact resume still executes
// nothing.
func TestImpactInvalidation(t *testing.T) {
	const changed = "errmsg_load"

	// Whole-shard baseline: the pre-existing resume behavior on an
	// identical store and identical edit, Impact off.
	wcfg := minidbConfig(t)
	wcfg.Store = filepath.Join(t.TempDir(), "store")
	if _, err := Explore(wcfg); err != nil {
		t.Fatal(err)
	}
	wcfg.Binary = patched(t, wcfg.Binary, changed)
	whole, err := Explore(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Impact path: same sequence with Config.Impact set throughout —
	// the first run has no previous image and must behave identically
	// to a plain full run.
	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "store")
	cfg.Impact = true
	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 || first.Replayed != 0 || first.Impact != nil {
		t.Fatalf("first impact run: executed %d, replayed %d, impact %+v; want a plain full run",
			first.Executed, first.Replayed, first.Impact)
	}

	cfg.Binary = patched(t, cfg.Binary, changed)
	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Impact == nil {
		t.Fatal("impact resume produced no impact summary")
	}
	if second.Impact.Fallback {
		t.Fatalf("inert one-function patch fell back to whole-shard: %s", second.Impact.Reason)
	}
	if !reflect.DeepEqual(second.Impact.Changed, []string{changed}) {
		t.Fatalf("changed functions = %v, want [%s]", second.Impact.Changed, changed)
	}
	// The impacted blocks are exactly the changed function's three
	// check sites — no caller-window or callee spill in minidb, whose
	// app functions are emitted standalone.
	if want := []string{"rec.em_close", "rec.em_open", "rec.em_read"}; !reflect.DeepEqual(second.Impact.Blocks, want) {
		t.Fatalf("impacted blocks = %v, want %v (errmsg_load's sites)", second.Impact.Blocks, want)
	}

	// Every first-run entry is accounted for exactly once, same as the
	// whole-shard invariant — migration rides the replay path.
	if second.Executed+second.Replayed != first.Executed {
		t.Fatalf("executed %d + replayed %d, want total %d", second.Executed, second.Replayed, first.Executed)
	}
	// The point of the feature: strictly fewer re-executions than
	// whole-shard invalidation of the very same edit, because
	// image-keyed entries with disjoint coverage migrated.
	if second.Executed >= whole.Executed {
		t.Fatalf("impact resume executed %d, whole-shard executed %d; want strictly fewer", second.Executed, whole.Executed)
	}
	// Pinned numbers for this exact edit (candidate enumeration is
	// deterministic, see TestExploreDeterministic): whole-shard
	// invalidation re-executes every image-keyed candidate plus
	// errmsg_load's call-stack candidates; the impact plan migrates the
	// 142 whose recorded coverage the edit cannot reach and re-executes
	// only the remaining 72.
	if whole.Executed != 214 {
		t.Fatalf("whole-shard baseline executed %d, want 214 (update alongside candidate-space changes)", whole.Executed)
	}
	if second.Executed != 72 || second.Impact.Migrated != 142 || second.Impact.Revalidated != 32 {
		t.Fatalf("impact resume executed %d (migrated %d, revalidated %d), want 72 (142, 32)",
			second.Executed, second.Impact.Migrated, second.Impact.Revalidated)
	}

	// The bug list survives the inert edit bit-for-bit.
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged across impact resume:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}

	// Identical binary, -impact still on: everything replays, nothing
	// executes, and the plan (built against the pre-patch manifest)
	// neither migrates nor re-validates anything.
	third, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 0 {
		t.Fatalf("identical-binary impact resume executed %d scenarios", third.Executed)
	}
	if third.Impact != nil && (third.Impact.Migrated != 0 || third.Impact.Revalidated != 0) {
		t.Fatalf("identical-binary impact resume migrated %d / revalidated %d entries",
			third.Impact.Migrated, third.Impact.Revalidated)
	}
	if !reflect.DeepEqual(bugSigs(second), bugSigs(third)) {
		t.Fatalf("bug signatures diverged on identical-binary resume:\n%v\nvs\n%v", bugSigs(second), bugSigs(third))
	}
}

// dupReturnProfiles deep-copies a profile set and appends an exact
// duplicate of fn's first constant error return. The edit is
// candidate-space neutral — classification is set-semantic over E and
// duplicate scenarios collapse under the content hash — but it changes
// fn's canonical profile fingerprint (impact.ProfileHashes serializes
// per Return), which is precisely what a fault-model edit looks like
// to the store.
func dupReturnProfiles(t *testing.T, ps []*profile.Profile, fn string) []*profile.Profile {
	t.Helper()
	edited := false
	out := make([]*profile.Profile, len(ps))
	for i, p := range ps {
		np := &profile.Profile{Lib: p.Lib, Funcs: make(map[string]*profile.FuncProfile, len(p.Funcs))}
		for name, fp := range p.Funcs {
			nfp := &profile.FuncProfile{Name: fp.Name, Returns: append([]profile.Return(nil), fp.Returns...)}
			if name == fn && !edited {
				for _, r := range nfp.Returns {
					if r.Const && len(r.Errnos) > 0 {
						nfp.Returns = append(nfp.Returns, r)
						edited = true
						break
					}
				}
			}
			np.Funcs[name] = nfp
		}
		out[i] = np
	}
	if !edited {
		t.Fatalf("profile set has no constant error return for %q to duplicate", fn)
	}
	return out
}

// TestImpactProfileEdit pins the profile-fingerprint half of the impact
// contract: an edit to one library function's fault profile moves no
// code byte — image, region, and function hashes are all identical, so
// every store key still matches — yet an -impact resume must not trust
// outcomes cached under the old fault model. Exactly the changed
// callee's cached entries re-execute; everything else replays.
func TestImpactProfileEdit(t *testing.T) {
	const changed = "read"
	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "store")
	cfg.Impact = true

	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 || first.Impact != nil {
		t.Fatalf("first run: executed %d, impact %+v; want a plain full run", first.Executed, first.Impact)
	}

	cfg.Profiles = dupReturnProfiles(t, cfg.Profiles, changed)
	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Impact == nil {
		t.Fatal("profile edit produced no impact summary")
	}
	if !reflect.DeepEqual(second.Impact.ProfilesChanged, []string{changed}) {
		t.Fatalf("changed profiles = %v, want [%s]", second.Impact.ProfilesChanged, changed)
	}
	// The binary never changed, so nothing migrates — the only work is
	// re-validating the changed callee's cached outcomes.
	if second.Impact.Migrated != 0 {
		t.Fatalf("pure profile edit migrated %d entries; image is identical", second.Impact.Migrated)
	}
	if second.Impact.Revalidated == 0 {
		t.Fatal("profile edit re-validated nothing")
	}
	// Precision: strictly fewer re-executions than the full space, all
	// of them attributable to the changed callee (the base candidates
	// counted by Revalidated plus their runtime-bred window mutants).
	if second.Executed == 0 || second.Executed >= first.Executed {
		t.Fatalf("profile-edit resume executed %d of %d; want a strict non-empty subset", second.Executed, first.Executed)
	}
	if second.Executed < second.Impact.Revalidated {
		t.Fatalf("executed %d < revalidated %d: a re-validated entry fell through", second.Executed, second.Impact.Revalidated)
	}
	// Every first-run entry is still accounted for exactly once.
	if second.Executed+second.Replayed != first.Executed {
		t.Fatalf("executed %d + replayed %d, want total %d", second.Executed, second.Replayed, first.Executed)
	}
	// The duplicated-return edit is semantically inert: the re-executed
	// outcomes reproduce the cached bugs bit-for-bit.
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged across profile-edit resume:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}

	// The store manifest now records the edited fingerprints: an
	// unchanged rerun replays everything and re-validates nothing.
	third, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 0 {
		t.Fatalf("identical-profile resume executed %d scenarios", third.Executed)
	}
	if third.Impact != nil && len(third.Impact.ProfilesChanged) != 0 {
		t.Fatalf("identical-profile resume still flags changes: %v", third.Impact.ProfilesChanged)
	}
	if !reflect.DeepEqual(bugSigs(second), bugSigs(third)) {
		t.Fatalf("bug signatures diverged on identical-profile resume:\n%v\nvs\n%v", bugSigs(second), bugSigs(third))
	}
}

// TestImpactFallbackConservative: minidns hides an indirect jump inside
// load_zone (CheckHiddenIndirect). A patch to that function cannot be
// bounded by the CFG walk, so the plan must degrade to whole-shard
// semantics: nothing migrates, the stale entries re-validate, and the
// run-accounting invariant and bug list hold.
func TestImpactFallbackConservative(t *testing.T) {
	const changed = "load_zone"
	cfg, ok := ConfigFor("minidns")
	if !ok {
		t.Fatal("minidns config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	cfg.Store = filepath.Join(t.TempDir(), "store")
	cfg.Impact = true

	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Binary = patched(t, cfg.Binary, changed)
	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Impact == nil {
		t.Fatal("impact resume produced no impact summary")
	}
	if !second.Impact.Fallback {
		t.Fatal("indirect branch in the changed function did not force fallback")
	}
	if second.Impact.Migrated != 0 {
		t.Fatalf("fallback plan migrated %d entries; conservative mode must migrate none", second.Impact.Migrated)
	}
	if second.Impact.Revalidated == 0 {
		t.Fatal("fallback plan re-validated nothing")
	}
	if second.Executed+second.Replayed != first.Executed {
		t.Fatalf("executed %d + replayed %d, want total %d", second.Executed, second.Replayed, first.Executed)
	}
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged under fallback:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}
}

// TestDiffReport: `lfi diff` classifies the cached candidate space
// against an edit without executing anything or writing the store.
func TestDiffReport(t *testing.T) {
	const changed = "errmsg_load"
	cfg := minidbConfig(t)
	if _, err := Diff(cfg); err == nil {
		t.Fatal("diff without a store succeeded")
	}
	cfg.Store = filepath.Join(t.TempDir(), "store")
	full, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Binary = patched(t, cfg.Binary, changed)
	before, _ := os.ReadFile(filepath.Join(cfg.Store, cfg.System, "index.json"))
	rep, err := Diff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(cfg.Store, cfg.System, "index.json"))
	if !reflect.DeepEqual(before, after) {
		t.Fatal("diff rewrote the store index")
	}
	if rep.PrevImage == "" || rep.Set == nil {
		t.Fatalf("diff found no previous image: %+v", rep)
	}
	if !reflect.DeepEqual(rep.Diff.Changed, []string{changed}) {
		t.Fatalf("diff changed = %v, want [%s]", rep.Diff.Changed, changed)
	}
	if rep.Cached == 0 {
		t.Fatal("no candidate classified cached — unchanged functions keep their keys")
	}
	if rep.Migratable == 0 || rep.Revalidate == 0 {
		t.Fatalf("classification degenerate: %d migratable, %d revalidate", rep.Migratable, rep.Revalidate)
	}
	if rep.Missing != 0 {
		t.Fatalf("%d base candidates missing from a fully-explored store", rep.Missing)
	}
	if rep.Entries == 0 || rep.Entries < full.Executed {
		t.Fatalf("store entries = %d, want >= %d", rep.Entries, full.Executed)
	}
	out := rep.String()
	for _, want := range []string{"diff minidb", changed, "migratable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report %q missing %q", out, want)
		}
	}

	// An identical binary diffs clean: no previous-image pairing is an
	// acceptable report too, but with the store's manifest present the
	// report must show zero work.
	cfg2 := minidbConfig(t)
	cfg2.Store = cfg.Store
	rep2, err := Diff(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PrevImage != "" && (rep2.Migratable != 0 || rep2.Revalidate != 0) {
		t.Fatalf("identical binary classified work: %+v", rep2)
	}
	if rep2.PrevImage == "" && rep2.Entries == 0 {
		t.Fatalf("identical-binary diff lost the store: %+v", rep2)
	}
}

// TestStoreEntryStampRetentionPrune: entries are stamped with the
// newest image that references them, and an entry whose stamp falls out
// of manifest retention is pruned even from a shard file that survives
// for other images — the stale shard file actually shrinks.
func TestStoreEntryStampRetentionPrune(t *testing.T) {
	root := t.TempDir()
	st, err := LoadStore(root, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	st.Put("a@rrrr", Entry{Name: "keeper"})
	st.Put("b@rrrr", Entry{Name: "straggler"})
	if err := st.Save(map[string]bool{"a@rrrr": true, "b@rrrr": true}); err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(root, "sys", "rrrr.json")
	before, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}

	// maxImages-1 later images keep referencing only "a": img@1 stays
	// retained, so the shared shard keeps "b" (stamped img@1).
	for i := 2; i <= maxImages; i++ {
		st, err := LoadStore(root, "sys", fmt.Sprintf("img@%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save(map[string]bool{"a@rrrr": true}); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := LoadStore(root, "sys", "probe")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Lookup("b@rrrr"); !ok {
		t.Fatal("entry pruned while its image was still retained")
	}

	// One more image evicts img@1's manifest; "b" can never replay
	// again and must leave the shard file.
	st3, err := LoadStore(root, "sys", fmt.Sprintf("img@%d", maxImages+1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st3.Save(map[string]bool{"a@rrrr": true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st3.Lookup("b@rrrr"); ok {
		t.Fatal("entry survived eviction of every image that referenced it")
	}
	after, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(after), "straggler") {
		t.Fatal("pruned entry still on disk")
	}
	if len(after) >= len(before) {
		t.Fatalf("stale shard file did not shrink: %d -> %d bytes", len(before), len(after))
	}
	st4, err := LoadStore(root, "sys", "probe2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st4.Lookup("a@rrrr"); !ok {
		t.Fatal("restamped live entry lost")
	}
}

// TestStoreLegacyUnreadable: a torn v1 document — at the store path or
// parked at path+".v1" by an interrupted migration — is parked aside as
// .unreadable and the store starts fresh; it never errors out and never
// half-loads.
func TestStoreLegacyUnreadable(t *testing.T) {
	t.Run("at-path", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "explore.json")
		if err := os.WriteFile(path, []byte(`{"system":"sys","entries":{"s1@aa`), 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := LoadStore(path, "sys", "img@1")
		if err != nil {
			t.Fatalf("torn legacy store refused: %v", err)
		}
		if _, ok := st.Lookup("s1@aaaa"); ok {
			t.Fatal("half-parsed entry loaded from a torn document")
		}
		if _, err := os.Stat(path + ".unreadable"); err != nil {
			t.Fatalf("torn document not parked aside: %v", err)
		}
		// The fresh store is fully usable at the original path.
		st.Put("n@rrrr", Entry{Name: "new"})
		if err := st.Save(map[string]bool{"n@rrrr": true}); err != nil {
			t.Fatal(err)
		}
		re, err := LoadStore(path, "sys", "img@1")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := re.Lookup("n@rrrr"); !ok {
			t.Fatal("store written after parking lost its entry")
		}
	})
	t.Run("parked-v1", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "explore.json")
		if err := os.WriteFile(path+legacyParkSuffix, []byte("not json at all"), 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := LoadStore(path, "sys", "img@1")
		if err != nil {
			t.Fatalf("torn parked migration refused: %v", err)
		}
		if got := st.Stats().Entries; got != 0 {
			t.Fatalf("torn parked document yielded %d entries", got)
		}
		if _, err := os.Stat(path + ".unreadable"); err != nil {
			t.Fatalf("torn parked document not parked as unreadable: %v", err)
		}
		if _, err := os.Stat(path + legacyParkSuffix); !os.IsNotExist(err) {
			t.Fatal("torn .v1 left in place — would re-trigger on every load")
		}
	})
}

// TestStorePreviousImage: the manifest fingerprints round-trip, and
// manifests predating fingerprint recording are skipped as diff bases.
func TestStorePreviousImage(t *testing.T) {
	root := t.TempDir()
	st, err := LoadStore(root, "sys", "img@old")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.PreviousImage(); ok {
		t.Fatal("empty store claims a previous image")
	}
	st.Put("s@rrrr", Entry{Name: "s"})
	st.SetFuncHashes(map[string]string{"alpha": "aaaaaaaaaaaa"})
	if err := st.Save(map[string]bool{"s@rrrr": true}); err != nil {
		t.Fatal(err)
	}

	st2, err := LoadStore(root, "sys", "img@new")
	if err != nil {
		t.Fatal(err)
	}
	img, funcs, ok := st2.PreviousImage()
	if !ok || img != "img@old" || funcs["alpha"] != "aaaaaaaaaaaa" {
		t.Fatalf("previous image lost: %q %v ok=%v", img, funcs, ok)
	}
	// The current image never serves as its own diff base.
	st3, err := LoadStore(root, "sys", "img@old")
	if err != nil {
		t.Fatal(err)
	}
	if img, _, ok := st3.PreviousImage(); ok {
		t.Fatalf("current image offered as its own diff base: %q", img)
	}
}
