package explore

import (
	"lfi/internal/system"
)

// This file adapts registered system descriptors (internal/system) to
// the engine. The explorer no longer knows any target by name: each
// application package registers a descriptor carrying its program
// image, its site-label → offset map (labels double as coverage block
// IDs under the "rec." prefix), and a coverage-merging controller
// target; everything here is generic over that contract.

// blockForSite inverts a site-label → offset map into the recovery
// block naming convention shared by the built-in applications.
func blockForSite(offs map[string]uint64) func(string, uint64) string {
	byOff := make(map[uint64]string, len(offs))
	for label, off := range offs {
		byOff[off] = "rec." + label
	}
	return func(_ string, off uint64) string { return byOff[off] }
}

// ConfigForSystem builds an exploration config from a registered system
// descriptor. The caller still sets budget, batch size, store path,
// workers, seed and logging.
func ConfigForSystem(d *system.Descriptor) Config {
	bin, offs := d.Binary()
	cfg := Config{
		System:       d.Name,
		Binary:       bin,
		Target:       d.TargetWithCoverage,
		Profiles:     d.Profiles(),
		BlockForSite: d.BlockForSite,
		BlockOffsets: make(map[string]uint64, len(offs)),
	}
	if cfg.BlockForSite == nil {
		cfg.BlockForSite = blockForSite(offs)
	}
	// The site map, inverted for impact analysis: recovery-block ID →
	// check-site offset. Workload blocks ("main.*") have no code
	// location and are deliberately absent — they are hit on every run,
	// so mapping them would make every entry intersect every edit.
	for label, off := range offs {
		cfg.BlockOffsets["rec."+label] = off
	}
	return cfg
}

// ConfigFor returns a ready exploration config for a registered system.
// Registration follows package imports (see internal/system/all), so
// callers that do not import the lfi facade must import the system
// packages they target.
func ConfigFor(app string) (Config, bool) {
	d, ok := system.Lookup(app)
	if !ok {
		return Config{}, false
	}
	return ConfigForSystem(d), true
}
