package explore

import (
	"sync"

	"lfi/internal/apps/minidb"
	"lfi/internal/apps/minidns"
	"lfi/internal/apps/minivcs"
	"lfi/internal/apps/miniweb"
	"lfi/internal/libspec"
	"lfi/internal/pbft"
	"lfi/internal/profile"
)

// This file wires the built-in target systems to the engine. Each
// application exposes its program image, its site-label → offset map
// (labels double as coverage block IDs under the "rec." prefix), and a
// coverage-merging controller target; everything else is generic.

var (
	profilesOnce sync.Once
	profilesSet  []*profile.Profile
)

// Profiles builds the fault profiles of the three simulated libraries
// by running the library profiler over their binaries. The set is
// built once and shared — profiles are read-only after construction,
// and every ConfigFor/experiment call site wants the same three.
func Profiles() []*profile.Profile {
	profilesOnce.Do(func() {
		profilesSet = []*profile.Profile{
			profile.ProfileBinary(libspec.BuildLibc()),
			profile.ProfileBinary(libspec.BuildLibxml()),
			profile.ProfileBinary(libspec.BuildLibapr()),
		}
	})
	return profilesSet
}

// blockForSite inverts a site-label → offset map into the recovery
// block naming convention shared by the built-in applications.
func blockForSite(offs map[string]uint64) func(string, uint64) string {
	byOff := make(map[uint64]string, len(offs))
	for label, off := range offs {
		byOff[off] = "rec." + label
	}
	return func(_ string, off uint64) string { return byOff[off] }
}

// PBFTSystem is the explorer's name for the scripted PBFT replica
// harness (the binary itself is named bft/simple-server).
const PBFTSystem = "pbft"

// ConfigFor returns a ready exploration config for one of the built-in
// systems (minidb, minivcs, minidns, miniweb, pbft). The caller still
// sets budget, batch size, store path and logging.
func ConfigFor(app string) (Config, bool) {
	var (
		cfg Config
		ok  = true
	)
	switch app {
	case minidb.Module:
		bin, offs := minidb.Binary()
		cfg = Config{
			System: minidb.Module, Binary: bin,
			Target:       minidb.TargetWithCoverage,
			BlockForSite: blockForSite(offs),
		}
	case minivcs.Module:
		bin, offs := minivcs.Binary()
		cfg = Config{
			System: minivcs.Module, Binary: bin,
			Target:       minivcs.TargetWithCoverage,
			BlockForSite: blockForSite(offs),
		}
	case minidns.Module:
		bin, offs := minidns.Binary()
		cfg = Config{
			System: minidns.Module, Binary: bin,
			Target:       minidns.TargetWithCoverage,
			BlockForSite: blockForSite(offs),
		}
	case miniweb.Module:
		bin, offs := miniweb.Binary()
		cfg = Config{
			System: miniweb.Module, Binary: bin,
			Target:       miniweb.TargetWithCoverage,
			BlockForSite: blockForSite(offs),
		}
	case PBFTSystem:
		bin, offs := pbft.Binary()
		cfg = Config{
			System: PBFTSystem, Binary: bin,
			Target:       pbft.TargetWithCoverage,
			BlockForSite: blockForSite(offs),
		}
	default:
		ok = false
	}
	if ok {
		cfg.Profiles = Profiles()
	}
	return cfg, ok
}

// Systems lists the app names ConfigFor accepts.
func Systems() []string {
	return []string{minidb.Module, minivcs.Module, minidns.Module, miniweb.Module, PBFTSystem}
}
