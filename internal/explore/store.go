package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lfi/internal/callgraph"
	"lfi/internal/exec"
)

// Store is the persistent campaign store, v2: a shard directory instead
// of one JSON document. Outcomes are keyed by scenario content hash plus
// targeted-code-region hash ("scenarioHash@codeHash"), and every code
// region gets its own shard file:
//
//	<dir>/<system>/index.json            image manifests (newest first)
//	<dir>/<system>/<codeHash>.json       one shard per targeted region
//
// The layout buys three properties the single document could not offer:
//
//   - Stores from multiple image versions coexist. Each image version
//     saves a manifest naming the shards its candidate set references;
//     regions the versions share point at the same shard, so entries
//     migrate forward for free when only untargeted code changed, and a
//     shard is deleted only when no retained manifest references it.
//   - A code change to one application function moves that function's
//     region hash, so exactly one shard is invalidated; everything else
//     replays untouched.
//   - Concurrent campaign workers flush independently: FlushShard
//     rewrites one region's file (write-temp-then-rename), never the
//     whole store.
//
// All writes go through a temp file and an atomic rename, so a killed
// campaign can never leave a half-written shard or index behind; stray
// .tmp files and unparsable shards are ignored on load.
type Store struct {
	dir    string // <root>/<system>
	system string
	image  string

	mu     sync.Mutex
	shards map[string]*shard // codeHash -> entries
	index  storeIndex

	// funcs is the current image's per-function fingerprint map,
	// recorded into its manifest at Save — the impact metadata a later
	// session diffs against without needing the old binary.
	funcs map[string]string
	// profiles is the current profile set's per-function fingerprint
	// map (impact.ProfileHashes), recorded alongside funcs.
	profiles map[string]string
	// summaries is the current image's interprocedural analysis record
	// (callgraph.Summaries), persisted in the manifest next to funcs so
	// a later lint or -impact session recomputes only the summaries an
	// edit can reach.
	summaries callgraph.Summaries
	// adopted records old-image keys whose entries the impact plan
	// migrated forward this run (Adopt), so compaction stats count them
	// as migrated rather than invalidated.
	adopted map[string]bool

	// migrated/invalidated are computed by Save from the loaded sets:
	// how many on-disk entries the current image's manifest still
	// references vs how many it can no longer reach (stale code region,
	// or pruned from an exclusive shard).
	migrated    int
	invalidated int
}

type shard struct {
	entries map[string]Entry // scenarioHash -> outcome
	loaded  map[string]bool  // entries read from disk (vs Put this run)
	dirty   bool
	// flushMu serializes writers of this one shard file: without it,
	// two same-region flushes could race snapshot/rename so that the
	// older snapshot lands last while dirty is already false — durably
	// losing the newer entries. Disjoint shards still flush in
	// parallel.
	flushMu sync.Mutex
}

// storeIndex is the on-disk index.json shape.
type storeIndex struct {
	System string          `json:"system"`
	Images []imageManifest `json:"images"` // most recent save first
	// Cost is the system's persisted execution cost model (EWMA of
	// runs/sec per backend and coverage gain per run): the scheduling
	// signal a resumed session starts from.
	Cost *exec.CostModel `json:"cost,omitempty"`
}

// imageManifest names the shards one image version's candidate set
// references, plus that image's per-function code fingerprints — the
// impact metadata the `-impact` resume path diffs against. Manifests
// written before fingerprints existed load fine with Funcs nil; impact
// analysis then reports "no previous image metadata" and the resume
// path stays whole-shard.
type imageManifest struct {
	Image  string            `json:"image"`
	Shards []string          `json:"shards"`
	Funcs  map[string]string `json:"funcs,omitempty"`
	// Profiles fingerprints the library fault profiles the candidate
	// set was generated from (impact.ProfileHashes). A profile edit
	// moves no code byte — image and region hashes all stay put — so
	// this is the only record that lets a later `-impact` session spot
	// one and re-validate the affected callees' cached outcomes.
	Profiles map[string]string `json:"profiles,omitempty"`
	// Summaries is the image's per-function interprocedural analysis
	// record, content-addressed by the same fingerprints as Funcs.
	// `lfi lint` and the explorer's static prior reuse every summary
	// whose function body is unchanged.
	Summaries callgraph.Summaries `json:"summaries,omitempty"`
}

// shardFile is the on-disk shape of one shard.
type shardFile struct {
	System  string           `json:"system"`
	Region  string           `json:"region"`
	Entries map[string]Entry `json:"entries"`
}

// Entry is one cached scenario outcome.
type Entry struct {
	Name       string   `json:"name"`
	Failed     bool     `json:"failed,omitempty"`
	Signature  string   `json:"signature,omitempty"`
	Blocks     []string `json:"blocks,omitempty"` // all blocks the run covered
	Injections int      `json:"injections,omitempty"`
	// Image is the newest image version whose candidate set referenced
	// this entry (stamped by Save). An entry whose image falls out of
	// manifest retention is pruned from its shard file even when the
	// shard itself survives for other images; "" (entries written
	// before stamping existed) keeps the shard-level lifecycle.
	Image string `json:"image,omitempty"`
}

// maxImages bounds how many image-version manifests a store retains;
// shards referenced only by older manifests are garbage-collected on
// Save.
const maxImages = 8

// splitKey breaks a candidate key into its scenario-hash and
// code-region components.
func splitKey(key string) (scen, region string, ok bool) {
	i := strings.IndexByte(key, '@')
	if i < 0 {
		return "", "", false
	}
	return key[:i], key[i+1:], true
}

// LoadStore opens the sharded store rooted at path for one target
// system and image version, creating nothing on disk until the first
// flush. Loading a store written for a different system is refused —
// saving would destroy that system's cache; shards of other image
// versions of the same system are loaded and kept. A legacy v1
// single-document store at path is migrated into the shard layout
// transparently.
func LoadStore(path, system, image string) (*Store, error) {
	st := &Store{
		dir:    filepath.Join(path, system),
		system: system,
		image:  image,
		shards: make(map[string]*shard),
		index:  storeIndex{System: system},
	}
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		// A crash mid-migration leaves the v1 document parked at
		// path+".v1" (see migrateLegacy); resume from it.
		if _, verr := os.Stat(path + legacyParkSuffix); verr == nil {
			if err := st.migrateLegacy(path + legacyParkSuffix); err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("explore: store: %w", err)
	}
	if !fi.IsDir() {
		if err := st.migrateLegacy(path); err != nil {
			return nil, err
		}
		return st, nil
	}
	if err := st.loadDir(); err != nil {
		return nil, err
	}
	return st, nil
}

// legacyParkSuffix is where migrateLegacy parks the v1 document during
// the directory swap; LoadStore resumes from it after a mid-swap crash.
const legacyParkSuffix = ".v1"

// migrateLegacy converts a v1 single-file store (at src, which is
// either the store path itself or a parked path+".v1" from an earlier
// interrupted migration) into the shard layout. The shard tree is
// staged durably in a sibling directory, the legacy document is parked
// aside rather than deleted, and only after the staged directory is
// renamed into place is the parked copy removed — every step of the
// sequence leaves the cached outcomes recoverable on disk.
func (s *Store) migrateLegacy(src string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	var legacy struct {
		System  string           `json:"system"`
		Entries map[string]Entry `json:"entries"`
	}
	if err := json.Unmarshal(data, &legacy); err != nil {
		// A torn v1 document (killed mid-write before the store was
		// crash-safe, or a parked .v1 from an interrupted migration
		// that never completed a write) holds nothing recoverable. Park
		// the bytes aside for post-mortems and start the shard store
		// fresh — the worst case is re-executing what the document
		// would have cached, never an unusable store.
		if rerr := os.Rename(src, strings.TrimSuffix(src, legacyParkSuffix)+".unreadable"); rerr != nil {
			return fmt.Errorf("explore: store %s: unparsable legacy document (%v) could not be parked aside: %w", src, err, rerr)
		}
		return nil
	}
	if legacy.System != "" && legacy.System != s.system {
		return fmt.Errorf("explore: store %s belongs to system %q, not %q — use a separate store path per target",
			src, legacy.System, s.system)
	}
	dst := strings.TrimSuffix(src, legacyParkSuffix)
	tmpRoot := dst + ".migrate"
	if err := os.RemoveAll(tmpRoot); err != nil {
		return fmt.Errorf("explore: store: migrating %s: %w", src, err)
	}
	staged := &Store{
		dir:    filepath.Join(tmpRoot, s.system),
		system: s.system,
		image:  s.image,
		shards: make(map[string]*shard),
		index:  storeIndex{System: s.system},
	}
	if err := os.MkdirAll(staged.dir, 0o755); err != nil {
		return fmt.Errorf("explore: store: migrating %s: %w", src, err)
	}
	for key, e := range legacy.Entries {
		staged.Put(key, e)
	}
	if err := staged.FlushDirty(); err != nil {
		return err
	}
	park := dst + legacyParkSuffix
	if src != park {
		if err := os.Rename(src, park); err != nil {
			return fmt.Errorf("explore: store: migrating %s: %w", src, err)
		}
	}
	if err := os.Rename(tmpRoot, dst); err != nil {
		return fmt.Errorf("explore: store: migrating %s: %w", src, err)
	}
	os.Remove(park) // best-effort: once dst exists, a leftover park is inert
	s.shards = staged.shards
	// Migrated v1 entries came from disk: count them as loaded so the
	// compaction stats treat them like any other cached outcome.
	for _, sh := range s.shards {
		sh.loaded = make(map[string]bool, len(sh.entries))
		for scen := range sh.entries {
			sh.loaded[scen] = true
		}
	}
	return nil
}

// loadDir reads index.json and every parsable shard. Partial writes —
// stray .tmp files from a killed campaign, or a shard that does not
// parse — are skipped, never loaded: the worst case is re-executing the
// scenarios that shard cached.
func (s *Store) loadDir() error {
	data, err := os.ReadFile(filepath.Join(s.dir, "index.json"))
	switch {
	case os.IsNotExist(err):
		// No index (or none survived): shards found on disk are still
		// usable, their keys self-identify.
	case err != nil:
		return fmt.Errorf("explore: store: %w", err)
	default:
		var idx storeIndex
		if jsonErr := json.Unmarshal(data, &idx); jsonErr == nil {
			if idx.System != "" && idx.System != s.system {
				return fmt.Errorf("explore: store %s belongs to system %q, not %q — use a separate store path per target",
					s.dir, idx.System, s.system)
			}
			s.index = idx
			s.index.System = s.system
		}
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	for _, name := range names {
		base := filepath.Base(name)
		if base == "index.json" || strings.Contains(base, ".tmp") {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		var sf shardFile
		if err := json.Unmarshal(data, &sf); err != nil || sf.Entries == nil {
			continue // partial/corrupt write: not loaded
		}
		if sf.System != "" && sf.System != s.system {
			continue
		}
		region := sf.Region
		if region == "" {
			region = strings.TrimSuffix(base, ".json")
		}
		loaded := make(map[string]bool, len(sf.Entries))
		for scen := range sf.Entries {
			loaded[scen] = true
		}
		s.shards[region] = &shard{entries: sf.Entries, loaded: loaded}
	}
	return nil
}

// Lookup returns the cached outcome for a candidate key.
func (s *Store) Lookup(key string) (Entry, bool) {
	if s == nil {
		return Entry{}, false
	}
	scen, region, ok := splitKey(key)
	if !ok {
		return Entry{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[region]
	if !ok {
		return Entry{}, false
	}
	e, ok := sh.entries[scen]
	return e, ok
}

// Adopt migrates an old image's cached entry to a new key (the same
// scenario re-keyed under the current image), recording provenance so
// the compaction stats report it as migrated, not invalidated.
func (s *Store) Adopt(oldKey, newKey string, e Entry) {
	if s == nil {
		return
	}
	s.Put(newKey, e)
	s.mu.Lock()
	if s.adopted == nil {
		s.adopted = make(map[string]bool)
	}
	s.adopted[oldKey] = true
	s.mu.Unlock()
}

// Put records one outcome and marks its shard dirty.
func (s *Store) Put(key string, e Entry) {
	if s == nil {
		return
	}
	scen, region, ok := splitKey(key)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[region]
	if !ok {
		sh = &shard{entries: make(map[string]Entry)}
		s.shards[region] = sh
	}
	sh.entries[scen] = e
	sh.dirty = true
}

// FlushShard persists one region's shard if it is dirty. The entry map
// is snapshotted under the store lock and written outside it while the
// shard's own flush lock is held, so concurrent workers flushing
// disjoint shards do not serialize on each other's file IO, same-shard
// flushes are linearized (a newer snapshot can never be overwritten by
// an older one), and no flush ever rewrites more than its own file.
func (s *Store) FlushShard(region string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	sh, ok := s.shards[region]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	sh.flushMu.Lock()
	defer sh.flushMu.Unlock()
	s.mu.Lock()
	if !sh.dirty {
		s.mu.Unlock()
		return nil
	}
	sf := shardFile{System: s.system, Region: region, Entries: make(map[string]Entry, len(sh.entries))}
	for k, v := range sh.entries {
		sf.Entries[k] = v
	}
	sh.dirty = false
	s.mu.Unlock()
	if err := s.writeJSON(s.shardPath(region), sf); err != nil {
		s.mu.Lock()
		sh.dirty = true // retry on the next flush
		s.mu.Unlock()
		return err
	}
	return nil
}

// FlushDirty persists every dirty shard.
func (s *Store) FlushDirty() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	regions := make([]string, 0, len(s.shards))
	for region, sh := range s.shards {
		if sh.dirty {
			regions = append(regions, region)
		}
	}
	s.mu.Unlock()
	sort.Strings(regions)
	for _, region := range regions {
		if err := s.FlushShard(region); err != nil {
			return err
		}
	}
	return nil
}

// Save is the end-of-run (and end-of-batch) persistence point: it
// updates the current image's manifest to the shards currentKeys
// references, prunes entries and shards no retained image version can
// ever match again, and flushes everything dirty plus the index.
func (s *Store) Save(currentKeys map[string]bool) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	// The current image's shard set and per-shard live key sets.
	liveByRegion := make(map[string]map[string]bool)
	for key := range currentKeys {
		scen, region, ok := splitKey(key)
		if !ok {
			continue
		}
		set := liveByRegion[region]
		if set == nil {
			set = make(map[string]bool)
			liveByRegion[region] = set
		}
		set[scen] = true
	}
	manifest := imageManifest{Image: s.image, Funcs: s.funcs, Profiles: s.profiles, Summaries: s.summaries}
	if manifest.Summaries == nil {
		// Keep summaries a previous session saved for this image: Save
		// rebuilds the manifest, and not every caller recomputes them.
		for _, m := range s.index.Images {
			if m.Image == s.image {
				manifest.Summaries = m.Summaries
				break
			}
		}
	}
	for region := range liveByRegion {
		manifest.Shards = append(manifest.Shards, region)
	}
	sort.Strings(manifest.Shards)

	// Move/insert the manifest at the front, retain at most maxImages.
	images := []imageManifest{manifest}
	for _, m := range s.index.Images {
		if m.Image != s.image && len(images) < maxImages {
			images = append(images, m)
		}
	}
	s.index.Images = images

	// Stamp every entry the current image's candidate set references.
	// The stamp is the entry-level analogue of the manifest: it names
	// the newest image that can still replay the entry, so retention
	// can prune per entry, not just per shard file.
	for region, live := range liveByRegion {
		sh, ok := s.shards[region]
		if !ok {
			continue
		}
		for scen, e := range sh.entries {
			if live[scen] && e.Image != s.image {
				e.Image = s.image
				sh.entries[scen] = e
				sh.dirty = true
			}
		}
	}

	// Shards shared with an older retained manifest may hold entries
	// for candidate sets we cannot see; only shards exclusive to the
	// current image are pruned entry-by-entry against the live set.
	shared := make(map[string]bool)
	for _, m := range s.index.Images[1:] {
		for _, region := range m.Shards {
			shared[region] = true
		}
	}
	for region, live := range liveByRegion {
		sh, ok := s.shards[region]
		if !ok || shared[region] {
			continue
		}
		for scen := range sh.entries {
			if !live[scen] {
				delete(sh.entries, scen)
				sh.dirty = true
			}
		}
	}

	// Retention pruning for shared shards: an entry stamped with an
	// image no retained manifest names can never replay again — drop it
	// even though its shard file survives for other images, so stale
	// shard files shrink instead of accreting dead entries. Unstamped
	// entries (written before stamping existed) keep the conservative
	// shard-level lifecycle.
	retained := make(map[string]bool, len(s.index.Images))
	for _, m := range s.index.Images {
		retained[m.Image] = true
	}
	for _, sh := range s.shards {
		for scen, e := range sh.entries {
			if e.Image != "" && !retained[e.Image] {
				delete(sh.entries, scen)
				sh.dirty = true
			}
		}
	}

	// Compaction stats: of the entries that were on disk when the store
	// was opened, how many the current image's manifest can still
	// replay — in place, or adopted forward across an image edit by the
	// impact plan — vs how many it can no longer reach (their code
	// region changed, or they were pruned).
	current := make(map[string]bool, len(manifest.Shards))
	for _, region := range manifest.Shards {
		current[region] = true
	}
	s.migrated, s.invalidated = 0, 0
	for region, sh := range s.shards {
		for scen := range sh.loaded {
			if _, live := sh.entries[scen]; live && current[region] {
				s.migrated++
			} else if s.adopted[scen+"@"+region] {
				s.migrated++
			} else {
				s.invalidated++
			}
		}
	}

	// Drop shards no retained manifest references.
	referenced := make(map[string]bool)
	for _, m := range s.index.Images {
		for _, region := range m.Shards {
			referenced[region] = true
		}
	}
	var stale []string
	for region := range s.shards {
		if !referenced[region] {
			stale = append(stale, region)
			delete(s.shards, region)
		}
	}
	idx := s.index
	s.mu.Unlock()

	for _, region := range stale {
		if err := os.Remove(s.shardPath(region)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("explore: store: %w", err)
		}
	}
	if err := s.FlushDirty(); err != nil {
		return err
	}
	return s.writeJSON(filepath.Join(s.dir, "index.json"), idx)
}

func (s *Store) shardPath(region string) string {
	return filepath.Join(s.dir, region+".json")
}

// writeJSON writes v crash-safely: marshal, write a unique temp file in
// the target directory, rename over the destination. A kill between
// the two steps leaves only an ignorable .tmp file.
func (s *Store) writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: store: writing %s: %v/%v", path, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: store: %w", err)
	}
	return nil
}

// SetFuncHashes records the current image's per-function fingerprints;
// Save writes them into the image's manifest. The next session diffs
// its own fingerprints against them to run impact analysis without the
// old binary.
func (s *Store) SetFuncHashes(funcs map[string]string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.funcs = funcs
}

// SetProfileHashes records the current profile set's per-function
// fingerprints; Save writes them into the image's manifest next to the
// code fingerprints.
func (s *Store) SetProfileHashes(profiles map[string]string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles = profiles
}

// SetSummaries records the current image's interprocedural summary
// set; Save writes it into the image's manifest next to the funcs and
// profiles fingerprints.
func (s *Store) SetSummaries(sums callgraph.Summaries) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.summaries = sums
}

// PriorSummaries returns the most recently saved summary set and the
// image it was computed for — the reuse base for incremental
// re-analysis. Like PriorProfileHashes it does not skip the current
// image: an unchanged build should reuse every summary. ok is false
// when no retained manifest recorded summaries.
func (s *Store) PriorSummaries() (sums callgraph.Summaries, image string, ok bool) {
	if s == nil {
		return nil, "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.index.Images {
		if len(m.Summaries) > 0 {
			return m.Summaries, m.Image, true
		}
	}
	return nil, "", false
}

// SaveSummaries persists a summary set for the current image by
// rewriting only index.json — the lint path's persistence point. It
// must not go through Save: Save rebuilds the current image's manifest
// from a live candidate-key set, and lint has none, so a full Save
// would disconnect the image's shards and let retention prune cached
// outcomes. The image's existing manifest (shards, funcs, profiles) is
// updated in place when present; otherwise a minimal manifest is
// prepended under the usual retention bound.
func (s *Store) SaveSummaries(sums callgraph.Summaries, funcs, profiles map[string]string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.summaries = sums
	found := false
	for i := range s.index.Images {
		if s.index.Images[i].Image == s.image {
			s.index.Images[i].Summaries = sums
			if len(s.index.Images[i].Funcs) == 0 {
				s.index.Images[i].Funcs = funcs
			}
			if len(s.index.Images[i].Profiles) == 0 {
				s.index.Images[i].Profiles = profiles
			}
			found = true
			break
		}
	}
	if !found {
		images := []imageManifest{{Image: s.image, Funcs: funcs, Profiles: profiles, Summaries: sums}}
		for _, m := range s.index.Images {
			if len(images) < maxImages {
				images = append(images, m)
			}
		}
		s.index.Images = images
	}
	idx := s.index
	s.mu.Unlock()
	return s.writeJSON(filepath.Join(s.dir, "index.json"), idx)
}

// PriorProfileHashes returns the profile fingerprints of the most
// recently saved manifest — the diff base for detecting a profile
// edit. Unlike PreviousImage it does not skip the current image: a
// pure profile edit leaves the image hash untouched, so the manifest
// to diff against is usually the current image's own, written by the
// last session. ok is false when no retained manifest recorded
// profile fingerprints.
func (s *Store) PriorProfileHashes() (map[string]string, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.index.Images {
		if len(m.Profiles) > 0 {
			return m.Profiles, true
		}
	}
	return nil, false
}

// PreviousImage returns the most recently saved retained image other
// than the current one, with its function fingerprints — the diff base
// for impact analysis. ok is false when no such manifest exists or it
// predates fingerprint recording.
func (s *Store) PreviousImage() (image string, funcs map[string]string, ok bool) {
	if s == nil {
		return "", nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.index.Images {
		if m.Image != s.image && len(m.Funcs) > 0 {
			return m.Image, m.Funcs, true
		}
	}
	return "", nil, false
}

// CostModel returns the persisted execution cost model, if any session
// has saved one.
func (s *Store) CostModel() (exec.CostModel, bool) {
	if s == nil {
		return exec.CostModel{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index.Cost == nil {
		return exec.CostModel{}, false
	}
	return *s.index.Cost, true
}

// SetCostModel records the cost model to persist with the next Save.
func (s *Store) SetCostModel(c exec.CostModel) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index.Cost = &c
}

// Names returns the scenario names recorded across all shards, sorted —
// a debugging/reporting convenience.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, sh := range s.shards {
		for _, e := range sh.entries {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Shards returns the in-memory shard regions, sorted (tests, CLI).
func (s *Store) Shards() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.shards))
	for region := range s.shards {
		out = append(out, region)
	}
	sort.Strings(out)
	return out
}

// StoreStats is a store's compaction summary — the `lfi explore -v`
// per-store report.
type StoreStats struct {
	System  string
	Shards  int // shard files retained (one per targeted code region)
	Images  int // retained image-version manifests
	Entries int // cached outcomes across all shards
	// Migrated counts on-disk entries the current image's manifest
	// still references: cache carried forward across image versions.
	Migrated int
	// Invalidated counts on-disk entries the current image can no
	// longer reach — their code region changed (the shard may survive
	// for older retained images) or they were pruned.
	Invalidated int
}

// String renders the one-line -v report.
func (st StoreStats) String() string {
	return fmt.Sprintf("store %s: %d shards, %d image versions, %d entries (%d migrated, %d invalidated)",
		st.System, st.Shards, st.Images, st.Entries, st.Migrated, st.Invalidated)
}

// Stats reports the store's compaction state. Migrated/invalidated
// counts are computed by Save, so they are zero before the first save.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		System:      s.system,
		Shards:      len(s.shards),
		Images:      len(s.index.Images),
		Migrated:    s.migrated,
		Invalidated: s.invalidated,
	}
	for _, sh := range s.shards {
		st.Entries += len(sh.entries)
	}
	return st
}

// Images returns the retained image versions, most recent first.
func (s *Store) Images() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index.Images))
	for _, m := range s.index.Images {
		out = append(out, m.Image)
	}
	return out
}
