package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store is the persistent campaign store: one JSON document per target
// system recording the outcome of every explored scenario, keyed by
// scenario content hash plus targeted-code hash. A second exploration
// of an unchanged target resumes from it and re-executes nothing; a
// change to one application function invalidates only the entries whose
// code-hash component covered that function.
type Store struct {
	path string

	// System names the target the entries belong to.
	System string `json:"system"`
	// Image is the target image version the store was last saved for.
	Image string `json:"image"`
	// Entries maps candidate keys (scenarioHash@codeHash) to outcomes.
	Entries map[string]Entry `json:"entries"`
}

// Entry is one cached scenario outcome.
type Entry struct {
	Name       string   `json:"name"`
	Failed     bool     `json:"failed,omitempty"`
	Signature  string   `json:"signature,omitempty"`
	Blocks     []string `json:"blocks,omitempty"` // all blocks the run covered
	Injections int      `json:"injections,omitempty"`
}

// LoadStore reads the store at path, or returns an empty store when the
// file does not exist yet. Loading a store written for a different
// system is refused — saving would silently destroy that system's
// cache; use one store path per target. Stale entries from an older
// image are kept — their keys carry code hashes, so they can never
// match a changed region, and Save prunes the unmatchable ones.
func LoadStore(path, system, image string) (*Store, error) {
	st := &Store{path: path, System: system, Image: image, Entries: map[string]Entry{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("explore: store: %w", err)
	}
	var onDisk Store
	if err := json.Unmarshal(data, &onDisk); err != nil {
		return nil, fmt.Errorf("explore: store %s: %w", path, err)
	}
	if onDisk.System != "" && onDisk.System != system {
		return nil, fmt.Errorf("explore: store %s belongs to system %q, not %q — use a separate store path per target",
			path, onDisk.System, system)
	}
	if onDisk.Entries != nil {
		st.Entries = onDisk.Entries
	}
	return st, nil
}

// Lookup returns the cached outcome for a candidate key.
func (s *Store) Lookup(key string) (Entry, bool) {
	if s == nil {
		return Entry{}, false
	}
	e, ok := s.Entries[key]
	return e, ok
}

// Put records one outcome.
func (s *Store) Put(key string, e Entry) {
	if s == nil {
		return
	}
	s.Entries[key] = e
}

// Save writes the store, pruning entries whose key no longer belongs to
// the current candidate set (scenarios invalidated by code changes).
// Keys are sorted by the JSON encoder, so the file is deterministic.
func (s *Store) Save(currentKeys map[string]bool) error {
	if s == nil || s.path == "" {
		return nil
	}
	for key := range s.Entries {
		if !currentKeys[key] {
			delete(s.Entries, key)
		}
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	tmp := s.path + ".tmp"
	if dir := filepath.Dir(s.path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("explore: store: %w", err)
		}
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("explore: store: %w", err)
	}
	return nil
}

// Names returns the scenario names recorded in the store, sorted — a
// debugging/reporting convenience.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.Entries))
	for _, e := range s.Entries {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
