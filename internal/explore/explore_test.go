package explore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lfi/internal/callsite"
	"lfi/internal/isa"
)

// minidbConfig returns a config that explores the whole minidb fault
// space deterministically (no budget, stall disabled high enough that
// every candidate runs).
func minidbConfig(t *testing.T) Config {
	t.Helper()
	cfg, ok := ConfigFor("minidb")
	if !ok {
		t.Fatal("minidb config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	return cfg
}

func TestGenerateDeterministicAndDeduped(t *testing.T) {
	cfg := minidbConfig(t)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) == 0 {
		t.Fatal("no candidates generated")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic candidate count: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Hash != b[i].Hash || a[i].Scenario.Name != b[i].Scenario.Name {
			t.Fatalf("candidate %d differs across generations: %s vs %s", i, a[i].Scenario.Name, b[i].Scenario.Name)
		}
		if seen[a[i].Hash] {
			t.Fatalf("duplicate candidate hash %s (%s)", a[i].Hash, a[i].Scenario.Name)
		}
		seen[a[i].Hash] = true
	}

	// The occurrence dimension is gated: only functions with at least
	// one Unchecked/Partial site participate.
	vulnerable := map[string]bool{}
	for _, c := range a {
		if c.Kind != Occurrence && c.Class != callsite.Checked {
			vulnerable[c.Callee] = true
		}
	}
	kinds := map[Kind]int{}
	for _, c := range a {
		kinds[c.Kind]++
		if c.Kind == Occurrence && !vulnerable[c.Callee] {
			t.Errorf("occurrence candidate for fully-checked callee %s", c.Callee)
		}
	}
	if kinds[Vulnerable] == 0 || kinds[Exercise] == 0 || kinds[Occurrence] == 0 {
		t.Fatalf("missing candidate kinds: %v", kinds)
	}
}

// TestExploreMinidbFindsStockBugs is the acceptance run: with no
// hand-written scenario, exploration must rediscover the Table 1 minidb
// bugs (the double-unlock in mi_create's recovery path and the
// uninitialized errmsg structure after a failed read) and must keep
// covering recovery blocks after its first batch.
func TestExploreMinidbFindsStockBugs(t *testing.T) {
	cfg := minidbConfig(t)
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed == 0 || res.Replayed != 0 {
		t.Fatalf("executed %d, replayed %d; want all executed", res.Executed, res.Replayed)
	}
	var foundUnlock, foundErrmsg bool
	for _, b := range res.Bugs {
		if strings.Contains(b.Signature, "double unlock") {
			foundUnlock = true
		}
		if strings.Contains(b.Signature, "uninitialized errmsg") {
			foundErrmsg = true
		}
	}
	if !foundUnlock || !foundErrmsg {
		t.Fatalf("stock minidb bugs not rediscovered (unlock=%v errmsg=%v):\n%s",
			foundUnlock, foundErrmsg, res)
	}
	if !res.CoverageGain() {
		t.Fatalf("no recovery-coverage gain over the first batch:\n%s", res)
	}
	if res.Final.BlocksCovered <= res.Baseline.BlocksCovered {
		t.Fatalf("exploration added no recovery coverage over the suite baseline:\n%s", res)
	}
}

// TestExploreResume checks the incremental store: a second run against
// an unchanged target replays every outcome and executes nothing, and
// reports the same bugs and coverage.
func TestExploreResume(t *testing.T) {
	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "store")

	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 {
		t.Fatal("first run executed nothing")
	}
	if _, err := os.Stat(cfg.Store); err != nil {
		t.Fatalf("store not written: %v", err)
	}

	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 {
		t.Fatalf("second run re-executed %d scenarios", second.Executed)
	}
	if second.Replayed != first.Executed {
		t.Fatalf("second run replayed %d, want %d", second.Replayed, first.Executed)
	}
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged across resume:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}
	if second.Final.BlocksCovered != first.Final.BlocksCovered {
		t.Fatalf("recovery coverage diverged across resume: %s vs %s", first.Final, second.Final)
	}
	if second.Total.BlocksCovered != first.Total.BlocksCovered {
		t.Fatalf("total coverage diverged across resume: %s vs %s", first.Total, second.Total)
	}
}

func bugSigs(r *Result) []string {
	out := make([]string, 0, len(r.Bugs))
	for _, b := range r.Bugs {
		out = append(out, b.Signature)
	}
	return out
}

// TestExploreBudget bounds the run and checks the budget counts only
// executed tests.
func TestExploreBudget(t *testing.T) {
	cfg := minidbConfig(t)
	cfg.MaxRuns = 5
	cfg.BatchSize = 3
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 5 {
		t.Fatalf("executed %d runs, budget was 5", res.Executed)
	}
	if len(res.Batches) != 2 || res.Batches[0].Runs != 3 || res.Batches[1].Runs != 2 {
		t.Fatalf("unexpected batching under budget: %+v", res.Batches)
	}
}

// TestExploreDeterministic runs twice without a store and expects
// identical bug lists and batch structure.
func TestExploreDeterministic(t *testing.T) {
	cfg := minidbConfig(t)
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bugSigs(a), bugSigs(b)) {
		t.Fatalf("bugs diverged:\n%v\nvs\n%v", bugSigs(a), bugSigs(b))
	}
	if len(a.Batches) != len(b.Batches) {
		t.Fatalf("batch counts diverged: %d vs %d", len(a.Batches), len(b.Batches))
	}
	for i := range a.Batches {
		if !reflect.DeepEqual(a.Batches[i].NewBlocks, b.Batches[i].NewBlocks) {
			t.Fatalf("batch %d deltas diverged", i)
		}
	}
}

// TestExploreMiniwebFindsStockBugs: the Apache stand-in's two seeded
// recovery bugs — the NULL-stream fwrite behind the unchecked
// access-log fopen, and the double unlock in the static handler's
// read-error path — must both surface with no hand-written scenario.
func TestExploreMiniwebFindsStockBugs(t *testing.T) {
	cfg, ok := ConfigFor("miniweb")
	if !ok {
		t.Fatal("miniweb config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var foundLog, foundUnlock bool
	for _, b := range res.Bugs {
		if strings.Contains(b.Signature, "NULL FILE") {
			foundLog = true
		}
		if strings.Contains(b.Signature, "double unlock") {
			foundUnlock = true
		}
	}
	if !foundLog || !foundUnlock {
		t.Fatalf("stock miniweb bugs not rediscovered (log=%v unlock=%v):\n%s", foundLog, foundUnlock, res)
	}
	if res.Final.BlocksCovered <= res.Baseline.BlocksCovered {
		t.Fatalf("exploration added no recovery coverage:\n%s", res)
	}
}

// TestExplorePBFTFindsStockBugs: the scripted replica harness must
// surface both release-build Table 1 bugs. The shutdown-checkpoint
// crash needs one fault; the view-change crash needs a *burst* losing
// both the request and the pre-prepare, which no generated single
// candidate expresses — it is reachable only through the explorer's
// occurrence-window mutation, so this test pins that whole mechanism.
func TestExplorePBFTFindsStockBugs(t *testing.T) {
	cfg, ok := ConfigFor("pbft")
	if !ok {
		t.Fatal("pbft config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mutants == 0 {
		t.Fatalf("no window mutants bred:\n%s", res)
	}
	var foundShutdown, foundVC bool
	for _, b := range res.Bugs {
		if strings.Contains(b.Signature, "NULL FILE") {
			foundShutdown = true
		}
		if strings.Contains(b.Signature, "view change") {
			foundVC = true
			for _, name := range b.Scenarios {
				if !strings.Contains(name, "explore-win-") {
					t.Fatalf("view-change bug found by non-window scenario %q", name)
				}
			}
		}
	}
	if !foundShutdown || !foundVC {
		t.Fatalf("stock pbft bugs not rediscovered (shutdown=%v viewchange=%v):\n%s",
			foundShutdown, foundVC, res)
	}
}

// patched returns a copy of bin with the prologue immediate of fn
// flipped — an inert change (r13 feeds nothing) that moves only that
// function's code-region hash, plus the whole-image hash.
func patched(t *testing.T, bin *isa.Binary, fn string) *isa.Binary {
	t.Helper()
	nb := *bin
	nb.Code = append([]byte(nil), bin.Code...)
	sym, ok := nb.FindSymbol(fn)
	if !ok {
		t.Fatalf("symbol %s not found", fn)
	}
	nb.Code[sym.Off+4] = 1 // movi r13, 0 -> movi r13, 1
	return &nb
}

// TestShardInvalidation pins the incremental-reuse contract of the
// sharded store: after a change to one application function, only the
// candidates aimed at that function — its call-stack candidates, plus
// the image-wide occurrence/window dimension — re-execute; every other
// function's shard replays, and the old image's shards stay on disk
// next to the new ones.
func TestShardInvalidation(t *testing.T) {
	const changed = "errmsg_load"
	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "store")

	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 || first.Replayed != 0 {
		t.Fatalf("first run: executed %d, replayed %d", first.Executed, first.Replayed)
	}

	// Entries that survive the change: call-stack candidates in other
	// functions. Occurrence and window candidates target the whole
	// image, so the image edit invalidates them by design.
	surviving := 0
	for _, c := range Generate(cfg) {
		if c.Kind != Occurrence && c.Caller != changed {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatal("no surviving candidates; test is vacuous")
	}

	cfg.Binary = patched(t, cfg.Binary, changed)
	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Replayed != surviving {
		t.Fatalf("replayed %d entries, want %d (only %s and the occurrence dimension invalidated)",
			second.Replayed, surviving, changed)
	}
	if second.Executed != first.Executed-surviving {
		t.Fatalf("executed %d, want %d", second.Executed, first.Executed-surviving)
	}
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged across the code change:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}

	// Both image versions' manifests now coexist in the store.
	st, err := LoadStore(cfg.Store, cfg.System, ImageVersion(cfg.Binary))
	if err != nil {
		t.Fatal(err)
	}
	if imgs := st.Images(); len(imgs) != 2 {
		t.Fatalf("want 2 retained image manifests, have %v", imgs)
	}
}

// TestWindowMutantsDeterministic: breeding must be reproducible — the
// same config twice yields the same mutant count and the same bugs.
func TestWindowMutantsDeterministic(t *testing.T) {
	cfg, ok := ConfigFor("pbft")
	if !ok {
		t.Fatal("pbft config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mutants != b.Mutants || a.Executed != b.Executed {
		t.Fatalf("mutation nondeterministic: %d/%d vs %d/%d mutants/executed",
			a.Mutants, a.Executed, b.Mutants, b.Executed)
	}
	if !reflect.DeepEqual(bugSigs(a), bugSigs(b)) {
		t.Fatalf("bugs diverged:\n%v\nvs\n%v", bugSigs(a), bugSigs(b))
	}
}

func TestStoreShardPrune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	st, err := LoadStore(path, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	st.Put("keep@aaaa", Entry{Name: "keep"})
	st.Put("stale@bbbb", Entry{Name: "stale"})
	if err := st.Save(map[string]bool{"keep@aaaa": true}); err != nil {
		t.Fatal(err)
	}
	// The unreferenced region's shard file is gone from disk.
	if _, err := os.Stat(filepath.Join(path, "sys", "bbbb.json")); !os.IsNotExist(err) {
		t.Fatalf("stale shard still on disk: %v", err)
	}
	st2, err := LoadStore(path, "sys", "img@2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Lookup("keep@aaaa"); !ok {
		t.Fatal("kept entry lost")
	}
	if _, ok := st2.Lookup("stale@bbbb"); ok {
		t.Fatal("stale entry survived pruning")
	}
	// Two systems coexist under one root, each in its own directory;
	// neither sees or clobbers the other's shards.
	other, err := LoadStore(path, "other", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := other.Lookup("keep@aaaa"); ok {
		t.Fatal("cross-system entry visible")
	}
	other.Put("mine@cccc", Entry{Name: "mine"})
	if err := other.Save(map[string]bool{"mine@cccc": true}); err != nil {
		t.Fatal(err)
	}
	again, err := LoadStore(path, "sys", "img@2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := again.Lookup("keep@aaaa"); !ok {
		t.Fatal("sys entry destroyed by other system's save")
	}
}
