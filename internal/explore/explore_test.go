package explore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lfi/internal/callsite"
)

// minidbConfig returns a config that explores the whole minidb fault
// space deterministically (no budget, stall disabled high enough that
// every candidate runs).
func minidbConfig(t *testing.T) Config {
	t.Helper()
	cfg, ok := ConfigFor("minidb")
	if !ok {
		t.Fatal("minidb config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	return cfg
}

func TestGenerateDeterministicAndDeduped(t *testing.T) {
	cfg := minidbConfig(t)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) == 0 {
		t.Fatal("no candidates generated")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic candidate count: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Hash != b[i].Hash || a[i].Scenario.Name != b[i].Scenario.Name {
			t.Fatalf("candidate %d differs across generations: %s vs %s", i, a[i].Scenario.Name, b[i].Scenario.Name)
		}
		if seen[a[i].Hash] {
			t.Fatalf("duplicate candidate hash %s (%s)", a[i].Hash, a[i].Scenario.Name)
		}
		seen[a[i].Hash] = true
	}

	// The occurrence dimension is gated: only functions with at least
	// one Unchecked/Partial site participate.
	vulnerable := map[string]bool{}
	for _, c := range a {
		if c.Kind != Occurrence && c.Class != callsite.Checked {
			vulnerable[c.Callee] = true
		}
	}
	kinds := map[Kind]int{}
	for _, c := range a {
		kinds[c.Kind]++
		if c.Kind == Occurrence && !vulnerable[c.Callee] {
			t.Errorf("occurrence candidate for fully-checked callee %s", c.Callee)
		}
	}
	if kinds[Vulnerable] == 0 || kinds[Exercise] == 0 || kinds[Occurrence] == 0 {
		t.Fatalf("missing candidate kinds: %v", kinds)
	}
}

// TestExploreMinidbFindsStockBugs is the acceptance run: with no
// hand-written scenario, exploration must rediscover the Table 1 minidb
// bugs (the double-unlock in mi_create's recovery path and the
// uninitialized errmsg structure after a failed read) and must keep
// covering recovery blocks after its first batch.
func TestExploreMinidbFindsStockBugs(t *testing.T) {
	cfg := minidbConfig(t)
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed == 0 || res.Replayed != 0 {
		t.Fatalf("executed %d, replayed %d; want all executed", res.Executed, res.Replayed)
	}
	var foundUnlock, foundErrmsg bool
	for _, b := range res.Bugs {
		if strings.Contains(b.Signature, "double unlock") {
			foundUnlock = true
		}
		if strings.Contains(b.Signature, "uninitialized errmsg") {
			foundErrmsg = true
		}
	}
	if !foundUnlock || !foundErrmsg {
		t.Fatalf("stock minidb bugs not rediscovered (unlock=%v errmsg=%v):\n%s",
			foundUnlock, foundErrmsg, res)
	}
	if !res.CoverageGain() {
		t.Fatalf("no recovery-coverage gain over the first batch:\n%s", res)
	}
	if res.Final.BlocksCovered <= res.Baseline.BlocksCovered {
		t.Fatalf("exploration added no recovery coverage over the suite baseline:\n%s", res)
	}
}

// TestExploreResume checks the incremental store: a second run against
// an unchanged target replays every outcome and executes nothing, and
// reports the same bugs and coverage.
func TestExploreResume(t *testing.T) {
	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "explore.json")

	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 {
		t.Fatal("first run executed nothing")
	}
	if _, err := os.Stat(cfg.Store); err != nil {
		t.Fatalf("store not written: %v", err)
	}

	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 {
		t.Fatalf("second run re-executed %d scenarios", second.Executed)
	}
	if second.Replayed != first.Executed {
		t.Fatalf("second run replayed %d, want %d", second.Replayed, first.Executed)
	}
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged across resume:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}
	if second.Final.BlocksCovered != first.Final.BlocksCovered {
		t.Fatalf("recovery coverage diverged across resume: %s vs %s", first.Final, second.Final)
	}
	if second.Total.BlocksCovered != first.Total.BlocksCovered {
		t.Fatalf("total coverage diverged across resume: %s vs %s", first.Total, second.Total)
	}
}

func bugSigs(r *Result) []string {
	out := make([]string, 0, len(r.Bugs))
	for _, b := range r.Bugs {
		out = append(out, b.Signature)
	}
	return out
}

// TestExploreBudget bounds the run and checks the budget counts only
// executed tests.
func TestExploreBudget(t *testing.T) {
	cfg := minidbConfig(t)
	cfg.MaxRuns = 5
	cfg.BatchSize = 3
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 5 {
		t.Fatalf("executed %d runs, budget was 5", res.Executed)
	}
	if len(res.Batches) != 2 || res.Batches[0].Runs != 3 || res.Batches[1].Runs != 2 {
		t.Fatalf("unexpected batching under budget: %+v", res.Batches)
	}
}

// TestExploreDeterministic runs twice without a store and expects
// identical bug lists and batch structure.
func TestExploreDeterministic(t *testing.T) {
	cfg := minidbConfig(t)
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bugSigs(a), bugSigs(b)) {
		t.Fatalf("bugs diverged:\n%v\nvs\n%v", bugSigs(a), bugSigs(b))
	}
	if len(a.Batches) != len(b.Batches) {
		t.Fatalf("batch counts diverged: %d vs %d", len(a.Batches), len(b.Batches))
	}
	for i := range a.Batches {
		if !reflect.DeepEqual(a.Batches[i].NewBlocks, b.Batches[i].NewBlocks) {
			t.Fatalf("batch %d deltas diverged", i)
		}
	}
}

func TestStorePrune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	st, err := LoadStore(path, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	st.Put("keep@a", Entry{Name: "keep"})
	st.Put("stale@b", Entry{Name: "stale"})
	if err := st.Save(map[string]bool{"keep@a": true}); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadStore(path, "sys", "img@2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Lookup("keep@a"); !ok {
		t.Fatal("kept entry lost")
	}
	if _, ok := st2.Lookup("stale@b"); ok {
		t.Fatal("stale entry survived pruning")
	}
	// A store written for a different system is refused, not clobbered.
	if _, err := LoadStore(path, "other", "img@1"); err == nil {
		t.Fatal("cross-system store load accepted")
	}
}
