package explore

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lfi/internal/callsite"
	"lfi/internal/isa"

	// ConfigFor resolves systems through the registry, which is
	// populated by importing the system packages.
	_ "lfi/internal/system/all"
)

// minidbConfig returns a config that explores the whole minidb fault
// space deterministically (no budget, stall disabled high enough that
// every candidate runs).
func minidbConfig(t *testing.T) Config {
	t.Helper()
	cfg, ok := ConfigFor("minidb")
	if !ok {
		t.Fatal("minidb config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	return cfg
}

func TestGenerateDeterministicAndDeduped(t *testing.T) {
	cfg := minidbConfig(t)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) == 0 {
		t.Fatal("no candidates generated")
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic candidate count: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Hash != b[i].Hash || a[i].Scenario.Name != b[i].Scenario.Name {
			t.Fatalf("candidate %d differs across generations: %s vs %s", i, a[i].Scenario.Name, b[i].Scenario.Name)
		}
		if seen[a[i].Hash] {
			t.Fatalf("duplicate candidate hash %s (%s)", a[i].Hash, a[i].Scenario.Name)
		}
		seen[a[i].Hash] = true
	}

	// The occurrence dimension is gated: only functions with at least
	// one Unchecked/Partial site participate.
	vulnerable := map[string]bool{}
	for _, c := range a {
		if c.Kind != Occurrence && c.Class != callsite.Checked {
			vulnerable[c.Callee] = true
		}
	}
	kinds := map[Kind]int{}
	for _, c := range a {
		kinds[c.Kind]++
		if c.Kind == Occurrence && !vulnerable[c.Callee] {
			t.Errorf("occurrence candidate for fully-checked callee %s", c.Callee)
		}
	}
	if kinds[Vulnerable] == 0 || kinds[Exercise] == 0 || kinds[Occurrence] == 0 {
		t.Fatalf("missing candidate kinds: %v", kinds)
	}
}

// TestExploreMinidbCoverageGain: exploration must keep covering
// recovery blocks after its first batch and beat the suite baseline.
// (Stock-bug rediscovery for every registered system, minidb included,
// is pinned by the registry conformance test at the repository root.)
func TestExploreMinidbCoverageGain(t *testing.T) {
	cfg := minidbConfig(t)
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed == 0 || res.Replayed != 0 {
		t.Fatalf("executed %d, replayed %d; want all executed", res.Executed, res.Replayed)
	}
	if !res.CoverageGain() {
		t.Fatalf("no recovery-coverage gain over the first batch:\n%s", res)
	}
	if res.Final.BlocksCovered <= res.Baseline.BlocksCovered {
		t.Fatalf("exploration added no recovery coverage over the suite baseline:\n%s", res)
	}
}

// TestExploreResume checks the incremental store: a second run against
// an unchanged target replays every outcome and executes nothing, and
// reports the same bugs and coverage.
func TestExploreResume(t *testing.T) {
	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "store")

	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 {
		t.Fatal("first run executed nothing")
	}
	if _, err := os.Stat(cfg.Store); err != nil {
		t.Fatalf("store not written: %v", err)
	}

	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 {
		t.Fatalf("second run re-executed %d scenarios", second.Executed)
	}
	if second.Replayed != first.Executed {
		t.Fatalf("second run replayed %d, want %d", second.Replayed, first.Executed)
	}
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged across resume:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}
	if second.Final.BlocksCovered != first.Final.BlocksCovered {
		t.Fatalf("recovery coverage diverged across resume: %s vs %s", first.Final, second.Final)
	}
	if second.Total.BlocksCovered != first.Total.BlocksCovered {
		t.Fatalf("total coverage diverged across resume: %s vs %s", first.Total, second.Total)
	}
}

func bugSigs(r *Result) []string {
	out := make([]string, 0, len(r.Bugs))
	for _, b := range r.Bugs {
		out = append(out, b.Signature)
	}
	return out
}

// TestExploreBudget bounds the run and checks the budget counts only
// executed tests.
func TestExploreBudget(t *testing.T) {
	cfg := minidbConfig(t)
	cfg.MaxRuns = 5
	cfg.BatchSize = 3
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 5 {
		t.Fatalf("executed %d runs, budget was 5", res.Executed)
	}
	if len(res.Batches) != 2 || res.Batches[0].Runs != 3 || res.Batches[1].Runs != 2 {
		t.Fatalf("unexpected batching under budget: %+v", res.Batches)
	}
}

// TestExploreDeterministic runs twice without a store and expects
// identical bug lists and batch structure.
func TestExploreDeterministic(t *testing.T) {
	cfg := minidbConfig(t)
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bugSigs(a), bugSigs(b)) {
		t.Fatalf("bugs diverged:\n%v\nvs\n%v", bugSigs(a), bugSigs(b))
	}
	if len(a.Batches) != len(b.Batches) {
		t.Fatalf("batch counts diverged: %d vs %d", len(a.Batches), len(b.Batches))
	}
	for i := range a.Batches {
		if !reflect.DeepEqual(a.Batches[i].NewBlocks, b.Batches[i].NewBlocks) {
			t.Fatalf("batch %d deltas diverged", i)
		}
	}
}

// patched returns a copy of bin with the prologue immediate of fn
// flipped — an inert change (r13 feeds nothing) that moves only that
// function's code-region hash, plus the whole-image hash.
func patched(t *testing.T, bin *isa.Binary, fn string) *isa.Binary {
	t.Helper()
	nb := *bin
	nb.Code = append([]byte(nil), bin.Code...)
	sym, ok := nb.FindSymbol(fn)
	if !ok {
		t.Fatalf("symbol %s not found", fn)
	}
	nb.Code[sym.Off+4] = 1 // movi r13, 0 -> movi r13, 1
	return &nb
}

// TestShardInvalidation pins the incremental-reuse contract of the
// sharded store: after a change to one application function, only the
// candidates aimed at that function — its call-stack candidates, plus
// the image-wide occurrence/window dimension — re-execute; every other
// function's shard replays, and the old image's shards stay on disk
// next to the new ones.
func TestShardInvalidation(t *testing.T) {
	const changed = "errmsg_load"
	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "store")

	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed == 0 || first.Replayed != 0 {
		t.Fatalf("first run: executed %d, replayed %d", first.Executed, first.Replayed)
	}

	// Entries that survive the change: call-stack candidates in other
	// functions. Occurrence and window candidates target the whole
	// image, so the image edit invalidates them by design. Bred mutants
	// ride their parent's region: stack windows survive with their
	// caller, global windows fall with the image — so the survivor count
	// from the base candidates is a floor on replays, and every entry is
	// either replayed or re-executed, never both or neither.
	surviving := 0
	for _, c := range Generate(cfg) {
		if c.Kind != Occurrence && c.Caller != changed {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatal("no surviving candidates; test is vacuous")
	}

	cfg.Binary = patched(t, cfg.Binary, changed)
	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Replayed < surviving {
		t.Fatalf("replayed %d entries, want >= %d (surviving call-stack candidates)",
			second.Replayed, surviving)
	}
	if second.Executed+second.Replayed != first.Executed {
		t.Fatalf("executed %d + replayed %d, want total %d (every first-run entry exactly once)",
			second.Executed, second.Replayed, first.Executed)
	}
	if !reflect.DeepEqual(bugSigs(first), bugSigs(second)) {
		t.Fatalf("bug signatures diverged across the code change:\n%v\nvs\n%v", bugSigs(first), bugSigs(second))
	}

	// Both image versions' manifests now coexist in the store.
	st, err := LoadStore(cfg.Store, cfg.System, ImageVersion(cfg.Binary))
	if err != nil {
		t.Fatal(err)
	}
	if imgs := st.Images(); len(imgs) != 2 {
		t.Fatalf("want 2 retained image manifests, have %v", imgs)
	}
}

// TestWindowMutantsDeterministic: breeding must be reproducible — the
// same config twice yields the same mutant count and the same bugs.
func TestWindowMutantsDeterministic(t *testing.T) {
	cfg, ok := ConfigFor("pbft")
	if !ok {
		t.Fatal("pbft config missing")
	}
	cfg.StallBatches = 1000
	cfg.Workers = 4
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mutants != b.Mutants || a.Executed != b.Executed {
		t.Fatalf("mutation nondeterministic: %d/%d vs %d/%d mutants/executed",
			a.Mutants, a.Executed, b.Mutants, b.Executed)
	}
	if !reflect.DeepEqual(bugSigs(a), bugSigs(b)) {
		t.Fatalf("bugs diverged:\n%v\nvs\n%v", bugSigs(a), bugSigs(b))
	}
}

// cancelAfterBatches is a Config.Log sink that cancels a context once
// it has seen n per-batch progress lines — a deterministic way to
// interrupt an exploration mid-run.
type cancelAfterBatches struct {
	cancel  context.CancelFunc
	n       int
	batches int
}

func (c *cancelAfterBatches) Write(p []byte) (int, error) {
	if strings.Contains(string(p), ": batch ") {
		if c.batches++; c.batches >= c.n {
			c.cancel()
		}
	}
	return len(p), nil
}

// TestExploreCancelLeavesResumableStore pins the Ctrl-C contract:
// cancelling mid-run returns the partial result with ctx.Err(), the
// sharded store is flushed (no torn shards), and the next run resumes
// from it — replaying everything the interrupted run completed and
// converging on the same bugs as an uninterrupted run.
func TestExploreCancelLeavesResumableStore(t *testing.T) {
	full, err := Explore(minidbConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	cfg := minidbConfig(t)
	cfg.Store = filepath.Join(t.TempDir(), "store")
	cfg.BatchSize = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Log = &cancelAfterBatches{cancel: cancel, n: 2}

	partial, err := ExploreContext(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if partial == nil || partial.Executed == 0 {
		t.Fatalf("cancelled run reported no progress: %+v", partial)
	}
	if partial.Executed >= full.Executed {
		t.Fatalf("cancellation did not interrupt: %d vs full %d", partial.Executed, full.Executed)
	}

	cfg.Log = nil
	resumed, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Replayed != partial.Executed {
		t.Fatalf("resume replayed %d, want the %d completed before cancel", resumed.Replayed, partial.Executed)
	}
	if resumed.Executed+resumed.Replayed != full.Executed {
		t.Fatalf("resume executed %d + replayed %d != full %d",
			resumed.Executed, resumed.Replayed, full.Executed)
	}
	if !reflect.DeepEqual(bugSigs(full), bugSigs(resumed)) {
		t.Fatalf("bugs diverged after cancel+resume:\n%v\nvs\n%v", bugSigs(full), bugSigs(resumed))
	}
}

// TestExploreAllSharedStore: one cross-system session over minidb and
// minivcs, sharing a store root, must find both systems' bugs; a second
// session resumes from both stores and executes nothing.
func TestExploreAllSharedStore(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	configs := func() []Config {
		var cfgs []Config
		for _, sys := range []string{"minidb", "minivcs"} {
			cfg, ok := ConfigFor(sys)
			if !ok {
				t.Fatalf("%s config missing", sys)
			}
			cfg.StallBatches = 1000
			cfg.Workers = 4
			cfg.Store = root
			cfgs = append(cfgs, cfg)
		}
		return cfgs
	}

	first, err := ExploreAllContext(context.Background(), configs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Results) != 2 || first.Executed == 0 || first.Replayed != 0 {
		t.Fatalf("unexpected first multi run: %d results, %d executed, %d replayed",
			len(first.Results), first.Executed, first.Replayed)
	}
	bySystem := map[string]int{}
	for _, b := range first.CrashBugs() {
		bySystem[b.System]++
	}
	if bySystem["minidb"] < 2 || bySystem["minivcs"] < 5 {
		t.Fatalf("cross-system run missed stock bugs: %v", bySystem)
	}

	second, err := ExploreAllContext(context.Background(), configs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 {
		t.Fatalf("second multi run re-executed %d scenarios", second.Executed)
	}
	if second.Replayed != first.Executed {
		t.Fatalf("second multi run replayed %d, want %d", second.Replayed, first.Executed)
	}
	if !reflect.DeepEqual(multiBugSigs(first), multiBugSigs(second)) {
		t.Fatalf("bugs diverged across multi resume:\n%v\nvs\n%v", multiBugSigs(first), multiBugSigs(second))
	}

	// The shared budget is a cross-system total.
	if err := os.RemoveAll(root); err != nil {
		t.Fatal(err)
	}
	capped, err := ExploreAllContext(context.Background(), configs(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Executed != 10 {
		t.Fatalf("budgeted multi run executed %d, want 10", capped.Executed)
	}
}

// TestExploreAllRejectsDuplicateSystems: two runs of one system would
// double-execute its candidate space and race two Store instances over
// the same shard directory, so the engine refuses.
func TestExploreAllRejectsDuplicateSystems(t *testing.T) {
	cfg, ok := ConfigFor("minidb")
	if !ok {
		t.Fatal("minidb config missing")
	}
	if _, err := ExploreAllContext(context.Background(), []Config{cfg, cfg}, 0); err == nil {
		t.Fatal("duplicate system accepted")
	}
}

func multiBugSigs(m *MultiResult) []string {
	out := make([]string, 0, len(m.Bugs))
	for _, b := range m.Bugs {
		out = append(out, b.System+"/"+b.Signature)
	}
	return out
}

func TestStoreShardPrune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	st, err := LoadStore(path, "sys", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	st.Put("keep@aaaa", Entry{Name: "keep"})
	st.Put("stale@bbbb", Entry{Name: "stale"})
	if err := st.Save(map[string]bool{"keep@aaaa": true}); err != nil {
		t.Fatal(err)
	}
	// The unreferenced region's shard file is gone from disk.
	if _, err := os.Stat(filepath.Join(path, "sys", "bbbb.json")); !os.IsNotExist(err) {
		t.Fatalf("stale shard still on disk: %v", err)
	}
	st2, err := LoadStore(path, "sys", "img@2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Lookup("keep@aaaa"); !ok {
		t.Fatal("kept entry lost")
	}
	if _, ok := st2.Lookup("stale@bbbb"); ok {
		t.Fatal("stale entry survived pruning")
	}
	// Two systems coexist under one root, each in its own directory;
	// neither sees or clobbers the other's shards.
	other, err := LoadStore(path, "other", "img@1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := other.Lookup("keep@aaaa"); ok {
		t.Fatal("cross-system entry visible")
	}
	other.Put("mine@cccc", Entry{Name: "mine"})
	if err := other.Save(map[string]bool{"mine@cccc": true}); err != nil {
		t.Fatal(err)
	}
	again, err := LoadStore(path, "sys", "img@2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := again.Lookup("keep@aaaa"); !ok {
		t.Fatal("sys entry destroyed by other system's save")
	}
}
