// Package explore implements the automatic, coverage-guided fault-space
// exploration engine — the layer that turns the reproduction from
// "replays the paper's scenarios" into "discovers its own".
//
// The paper's workflow (§5, §7.1) is a loop a human tester drives: the
// analyzer proposes injection scenarios, the controller runs them, and
// recovery-code coverage goes up. This package closes that loop
// mechanically. A generator enumerates candidate scenarios from the
// cross product of (profiled function × returnable error value × errno
// side effect × occurrence/call-stack trigger), using the library fault
// profiles of internal/profile and the Algorithm 1 classifications of
// internal/callsite — the occurrence dimension is gated to functions
// with at least one Unchecked or Partial call site. A scheduler then
// runs candidates in batches on the parallel campaign executor and
// feeds coverage deltas back in: candidates that target still-uncovered
// recovery blocks are prioritized (the code-combinations-coverage idea
// of Huang et al.), callees that recently produced new blocks or new
// bug signatures get boosted, and the run stops on a budget or when
// consecutive batches add no coverage and no new bugs.
//
// Candidates that prove interesting breed *window* mutants that feed
// back into the queue. Occurrence candidates that injected and then
// failed or reached recovery code the suite alone does not breed
// global CallCount from/to bursts that widen, shift, and split;
// call-stack candidates whose single shot was tolerated but reached
// recovery code breed *call-stack windows* — SiteCount bursts counted
// locally at the call site. Sustained-pressure bugs (PBFT's
// view-change crash needs both the request and the pre-prepare lost)
// are only reachable through the former; bursts hiding past the global
// occurrence range (RAFT's log-truncation crash, deep in the receive
// stream) only through the latter.
//
// Outcomes persist in a sharded store keyed by scenario content hash
// plus a hash of the targeted code region — one shard file per region,
// per-image manifests in an index — so a second run against an
// unchanged target replays results instead of re-executing them, a run
// after a code change re-executes only the scenarios aimed at the
// changed region, and stores for multiple image versions coexist (the
// reuse-of-intermediate-results idea of Beyer et al.).
package explore

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"slices"
	"sort"
	"strings"
	"time"

	"lfi/internal/callgraph"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/errno"
	"lfi/internal/exec"
	"lfi/internal/impact"
	"lfi/internal/isa"
	"lfi/internal/profile"
	"lfi/internal/scenario"
	"lfi/internal/trigger"
)

// Kind classifies how a candidate aims its fault.
type Kind int

const (
	// Vulnerable targets an Unchecked or Partial call site with an
	// error code the site does not check (the paper's C_not/C_part
	// scenarios — likeliest to crash the target).
	Vulnerable Kind = iota
	// Exercise injects a code the site does check, driving execution
	// into the recovery code behind the check (the Table 3 coverage
	// workflow; finds bugs inside recovery code itself).
	Exercise
	// Occurrence injects at the n-th dynamic call of a function,
	// regardless of site — the cross-product dimension that reaches
	// sites and occurrences the stack-targeted candidates miss.
	Occurrence
	// Window injects on every call in a CallCount from/to burst. Window
	// candidates are never generated up front: they are mutants, bred
	// from occurrence candidates that produced recovery coverage or a
	// failure, by widening, shifting, and splitting the burst. Bugs
	// that need *sustained* fault pressure — PBFT's view-change crash
	// requires losing both the request and the pre-prepare — are only
	// reachable through this kind.
	Window
	// StackWindow injects on a burst counted *locally at one call
	// site*: a CallStackTrigger pinning the site composed with a
	// SiteCountTrigger window (the conjunction short-circuits, so the
	// counter only sees calls from that frame). Bred from call-stack
	// candidates whose single shot was tolerated but reached recovery
	// code, then widened, shifted, and split like Window. Distributed
	// recovery bugs that hide *past* the global occurrence range —
	// RAFT's log-truncation crash sits in the replication loop after
	// the election churn has consumed the global recvfrom count — are
	// only reachable through this kind.
	StackWindow
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Vulnerable:
		return "vulnerable"
	case Exercise:
		return "exercise"
	case Occurrence:
		return "occurrence"
	case Window:
		return "window"
	case StackWindow:
		return "stack-window"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Candidate is one proposed injection experiment.
type Candidate struct {
	Scenario   *scenario.Scenario
	Kind       Kind
	Callee     string
	Caller     string // enclosing symbol, call-stack kinds only
	Offset     uint64 // call site offset, call-stack kinds only
	Occurrence uint64 // n-th call, Occurrence kind only
	From, To   uint64 // burst bounds, Window and StackWindow kinds only
	Code       int64
	Errno      errno.Errno
	Class      callsite.Class
	// Block is the recovery basic block this candidate targets, when
	// the target application's site map can name it ("" = unknown).
	Block string
	// Hash is the content hash of the serialized scenario.
	Hash string
	// key is Hash plus the targeted code region's hash — the store
	// identity that invalidates the cached outcome when code changes.
	key string
}

// Config parametrizes one exploration run.
type Config struct {
	// System names the target (store records and bug reports).
	System string
	// Binary is the program image the analyzer dissects.
	Binary *isa.Binary
	// Profiles are the library fault profiles to cross with the
	// binary's imports.
	Profiles []*profile.Profile
	// Target builds the controller target, merging each run's
	// coverage into the given tracker (the TargetWithCoverage shape).
	Target func(*coverage.Tracker) controller.Target
	// BlockForSite maps a (callee, call site offset) to the recovery
	// block its error path executes, when the application's site map
	// knows it. Optional; "" means unknown.
	BlockForSite func(callee string, offset uint64) string
	// BlockOffsets maps recovery-block IDs to their check sites' code
	// offsets — the inverse view impact analysis walks. Optional; when
	// empty, -impact degrades to the conservative whole-shard fallback.
	BlockOffsets map[string]uint64

	// Impact enables change-impact-aware invalidation on the store
	// resume path: when the image changed since the store's last save,
	// entries whose recorded coverage is provably unreachable from the
	// edit migrate forward with their outcomes intact, and only
	// intersecting entries re-execute (highest expected gain first).
	// Requires Store; off by default — the default resume path stays
	// exactly the whole-shard behavior TestShardInvalidation pins.
	Impact bool

	// BatchSize is the number of candidates per scheduling round
	// (default 16).
	BatchSize int
	// MaxOccurrence bounds the occurrence dimension (default 6).
	MaxOccurrence int
	// MaxRuns bounds executed tests, excluding replayed store hits
	// (0 = unlimited).
	MaxRuns int
	// StallBatches stops the run after this many consecutive batches
	// with no new coverage and no new bugs (default 3).
	StallBatches int
	// Workers is the campaign worker-pool width (default GOMAXPROCS).
	// It sizes the default local execution backend; when Exec is set it
	// only carries the session's width for reporting.
	Workers int
	// Exec is the execution-backend fleet batches dispatch through.
	// nil means a private fleet with one local (in-process) backend of
	// Workers width — the pre-backend behavior, bit for bit. The
	// system's cost model (runs/sec per backend, coverage gain per run)
	// lives in the fleet and persists through the store index.
	Exec *exec.Fleet
	// Store is the path of the persistent campaign store ("" = none).
	Store string
	// Seed fixes the runtime random source per run.
	Seed int64
	// Log receives per-batch progress lines (nil = silent).
	Log io.Writer
	// Status, when set, receives a progress snapshot after every batch
	// — the hook the session's fleet publisher forwards to the registry
	// so `lfi fleet status` can watch a campaign live. Called from the
	// scheduling goroutine; keep it fast (hand off, don't block).
	Status func(StatusUpdate)
}

// StatusUpdate is one live campaign progress snapshot: outcomes folded
// so far, the coverage frontier, and the EWMA cost-model state the
// fleet is scheduling on.
type StatusUpdate struct {
	System         string
	Executed       int
	Replayed       int
	Bugs           int
	Covered        int // recovery blocks reached so far
	RecoveryBlocks int // recovery blocks in the universe
	Cost           exec.CostModel
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.MaxOccurrence <= 0 {
		c.MaxOccurrence = 6
	}
	if c.StallBatches <= 0 {
		c.StallBatches = 3
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.System == "" && c.Binary != nil {
		c.System = c.Binary.Name
	}
	return c
}

// BatchReport summarizes one scheduling round.
type BatchReport struct {
	Index     int
	Runs      int
	NewBlocks []string // recovery blocks first covered in this batch
	NewBugs   []string // failure signatures first seen in this batch
	Recovery  coverage.Stats
}

// Result is the outcome of one exploration run.
type Result struct {
	System     string
	Candidates int
	Mutants    int // window candidates bred during the run
	Executed   int // tests actually run
	Replayed   int // outcomes reused from the store
	Batches    []BatchReport
	Bugs       []controller.Bug
	Baseline   coverage.Stats // recovery coverage, default suite alone
	Final      coverage.Stats // recovery coverage after exploration
	Total      coverage.Stats // total coverage after exploration
	Elapsed    time.Duration
	// StoreStats is the persistent store's compaction summary after the
	// final save (nil when the run had no store).
	StoreStats *StoreStats
	// Impact is the change-impact analysis summary (nil unless
	// Config.Impact was set and the store recorded a previous image).
	Impact *ImpactSummary
	// Mixed is the mixed-build reconciliation summary (nil unless some
	// fleet worker ran a different image version than the coordinator).
	Mixed *MixedSummary
}

// MixedSummary reports how outcomes from workers running a *different*
// image version were reconciled instead of dropped: per foreign image,
// the function-level diff bounds what the divergence can reach
// (internal/impact); outcomes whose coverage the divergence provably
// cannot touch fold in and adopt into the store, everything else
// re-executes on a build-matched backend.
type MixedSummary struct {
	Images      []string // foreign image versions seen (sorted)
	Migrated    int      // outcomes adopted — divergence cannot reach their coverage
	Revalidated int      // outcomes discarded, candidates re-run on matching builds
}

// String renders the one-line mixed-build report.
func (s *MixedSummary) String() string {
	return fmt.Sprintf("mixed builds: %d foreign image(s) %v, %d outcomes adopted, %d re-validated on matching builds",
		len(s.Images), s.Images, s.Migrated, s.Revalidated)
}

// CoverageGain reports whether exploration covered recovery blocks the
// run's first batch had not reached yet.
func (r *Result) CoverageGain() bool {
	if len(r.Batches) == 0 {
		return false
	}
	return r.Final.BlocksCovered > r.Batches[0].Recovery.BlocksCovered
}

// String renders the run summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explore %s: %d candidates (+%d window mutants), %d executed, %d replayed, %d batches (%.2fs)\n",
		r.System, r.Candidates, r.Mutants, r.Executed, r.Replayed, len(r.Batches), r.Elapsed.Seconds())
	fmt.Fprintf(&b, "  recovery coverage: %s (suite alone) -> %s\n", r.Baseline, r.Final)
	fmt.Fprintf(&b, "  total coverage:    %s\n", r.Total)
	if r.Impact != nil {
		fmt.Fprintf(&b, "  %s\n", r.Impact)
	}
	if r.Mixed != nil {
		fmt.Fprintf(&b, "  %s\n", r.Mixed)
	}
	fmt.Fprintf(&b, "  %d distinct failure signatures:\n", len(r.Bugs))
	for _, bug := range r.Bugs {
		fmt.Fprintf(&b, "    %s (%d scenarios)\n", bug.Signature, len(bug.Scenarios))
	}
	return b.String()
}

// --- candidate generation ----------------------------------------------------

// Generate enumerates the candidate fault space for cfg, in a
// deterministic order: call-stack candidates by site offset, then the
// occurrence cross product by function name. Duplicate scenarios (same
// content hash) are dropped.
func Generate(cfg Config) []*Candidate {
	cfg = cfg.withDefaults()
	a := &callsite.Analyzer{}
	rep := a.Analyze(cfg.Binary, cfg.Profiles...)

	var out []*Candidate
	seen := make(map[string]bool)
	hashes := impact.NewHasher(cfg.Binary)
	add := func(c *Candidate) {
		c.Hash = contentHash(c.Scenario)
		if seen[c.Hash] {
			return
		}
		seen[c.Hash] = true
		c.key = c.Hash + "@" + hashes.Region(c.Caller)
		out = append(out, c)
	}

	vulnerableFn := make(map[string]bool)
	for _, site := range rep.Sites {
		if site.Class != callsite.Checked {
			vulnerableFn[site.Callee] = true
		}
		// Vulnerable: codes the site fails to check.
		if site.Class != callsite.Checked {
			for _, code := range site.Missing {
				for _, e := range errnosFor(cfg.Profiles, site.Callee, code) {
					add(stackCandidate(cfg, site, code, e, Vulnerable))
				}
			}
		}
		// Exercise: codes the site does check — run its recovery path.
		codes := site.ChkEq
		if len(codes) == 0 && site.Class == callsite.Checked {
			codes = profileErrorCodes(cfg.Profiles, site.Callee)
		}
		for _, code := range codes {
			for _, e := range errnosFor(cfg.Profiles, site.Callee, code) {
				add(stackCandidate(cfg, site, code, e, Exercise))
			}
		}
	}

	// Occurrence cross product, only for functions with a vulnerable
	// (Unchecked/Partial) error return somewhere in the binary.
	fns := make([]string, 0, len(vulnerableFn))
	for fn := range vulnerableFn {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		for _, code := range profileErrorCodes(cfg.Profiles, fn) {
			for _, e := range errnosFor(cfg.Profiles, fn, code) {
				for n := uint64(1); n <= uint64(cfg.MaxOccurrence); n++ {
					add(occurrenceCandidate(cfg, fn, n, code, e))
				}
			}
		}
	}
	return out
}

func stackCandidate(cfg Config, site callsite.Site, code int64, e errno.Errno, kind Kind) *Candidate {
	name := fmt.Sprintf("explore-cs-%s-%s-%x-%d-%s", cfg.Binary.Name, site.Callee, site.Offset, code, e)
	bld := scenario.NewBuilder(name)
	cs := bld.Trigger(fmt.Sprintf("%x", site.Offset), "CallStackTrigger", frameArgs(cfg.Binary.Name, site.Offset))
	once := bld.Trigger("once", "SingletonTrigger", nil)
	bld.Inject(site.Callee, 0, code, e, cs, once)
	s, err := bld.Build()
	if err != nil {
		panic("explore: generated scenario invalid: " + err.Error())
	}
	c := &Candidate{
		Scenario: s, Kind: kind, Callee: site.Callee, Caller: site.Caller,
		Offset: site.Offset, Code: code, Errno: e, Class: site.Class,
	}
	if cfg.BlockForSite != nil {
		c.Block = cfg.BlockForSite(site.Callee, site.Offset)
	}
	return c
}

func occurrenceCandidate(cfg Config, fn string, n uint64, code int64, e errno.Errno) *Candidate {
	name := fmt.Sprintf("explore-occ-%s-%s-%d-%d-%s", cfg.Binary.Name, fn, n, code, e)
	bld := scenario.NewBuilder(name)
	nth := bld.Trigger("nth", "CallCountTrigger", scenario.IntArgs("n", n))
	bld.Inject(fn, 0, code, e, nth)
	s, err := bld.Build()
	if err != nil {
		panic("explore: generated scenario invalid: " + err.Error())
	}
	return &Candidate{
		Scenario: s, Kind: Occurrence, Callee: fn,
		Occurrence: n, Code: code, Errno: e,
	}
}

// windowCandidate builds a CallCount burst mutant: inject on every call
// in [from, to]. The scenario name encodes the window, so the content
// hash (and therefore dedup and the store key) is stable.
func windowCandidate(cfg Config, fn string, from, to uint64, code int64, e errno.Errno) *Candidate {
	name := fmt.Sprintf("explore-win-%s-%s-%d-%d-%d-%s", cfg.Binary.Name, fn, from, to, code, e)
	bld := scenario.NewBuilder(name)
	win := bld.Trigger("win", "CallCountTrigger", scenario.BurstArgs(from, to))
	bld.Inject(fn, 0, code, e, win)
	s, err := bld.Build()
	if err != nil {
		panic("explore: generated scenario invalid: " + err.Error())
	}
	return &Candidate{
		Scenario: s, Kind: Window, Callee: fn,
		From: from, To: to, Code: code, Errno: e,
	}
}

// stackWindowCandidate builds a call-stack window mutant from a
// call-stack parent: inject on the from-th through to-th call *made
// from the parent's call site*. The CallStackTrigger pins the frame and
// the SiteCountTrigger counts its own evaluations, so (with the
// conjunction's short-circuit) the burst is site-local — independent of
// how often the rest of the program called the same function.
func stackWindowCandidate(cfg Config, c *Candidate, from, to uint64) *Candidate {
	name := fmt.Sprintf("explore-swin-%s-%s-%x-%d-%d-%d-%s", cfg.Binary.Name, c.Callee, c.Offset, from, to, c.Code, c.Errno)
	bld := scenario.NewBuilder(name)
	cs := bld.Trigger(fmt.Sprintf("%x", c.Offset), "CallStackTrigger", frameArgs(cfg.Binary.Name, c.Offset))
	win := bld.Trigger("swin", "SiteCountTrigger", scenario.BurstArgs(from, to))
	bld.Inject(c.Callee, 0, c.Code, c.Errno, cs, win)
	s, err := bld.Build()
	if err != nil {
		panic("explore: generated scenario invalid: " + err.Error())
	}
	return &Candidate{
		Scenario: s, Kind: StackWindow, Callee: c.Callee, Caller: c.Caller,
		Offset: c.Offset, From: from, To: to, Code: c.Code, Errno: c.Errno,
		Class: c.Class, Block: c.Block,
	}
}

func frameArgs(module string, off uint64) *trigger.Args {
	return &trigger.Args{
		Name: "args",
		Children: []*trigger.Args{{
			Name: "frame",
			Children: []*trigger.Args{
				{Name: "module", Text: module},
				{Name: "offset", Text: fmt.Sprintf("%x", off)},
			},
		}},
	}
}

func errnosFor(ps []*profile.Profile, callee string, code int64) []errno.Errno {
	for _, p := range ps {
		if fp := p.Func(callee); fp != nil {
			if es := fp.ErrnosFor(code); len(es) > 0 {
				return es
			}
		}
	}
	return []errno.Errno{errno.OK}
}

func profileErrorCodes(ps []*profile.Profile, callee string) []int64 {
	for _, p := range ps {
		if fp := p.Func(callee); fp != nil {
			return fp.ErrorCodes()
		}
	}
	return nil
}

// contentHash is the scenario identity: a hash of the canonical
// (deterministic) XML serialization. Built scenarios carry the hash
// (and the serialized bytes the wire encoders reuse) sealed in, so
// this never re-serializes a scenario the Builder produced.
func contentHash(s *scenario.Scenario) string {
	return s.ContentHash()
}

// ImageVersion identifies the target image the store entries belong to.
// The region-hashing itself lives in internal/impact, shared with the
// diff analysis so both sides always agree on what "changed" means.
func ImageVersion(b *isa.Binary) string {
	return b.Name + "@" + impact.ImageHash(b.Code)
}

// --- the exploration loop ----------------------------------------------------

// explorer is the mutable state of one run.
type explorer struct {
	cfg   Config
	acc   *coverage.Tracker
	sigs  map[string][]string // failure signature -> scenario names
	boost map[string]float64  // callee -> feedback priority boost

	// Block universe, established by the baseline run and encoded as
	// bitsets over idx (the folding of per-run footprints is bit
	// arithmetic, not string-map traffic): recovery membership, the
	// recovery blocks reached so far, and the recovery blocks the suite
	// covers with no injection. Replayed store entries may predate a
	// code change elsewhere in the image, and a mismatched remote
	// worker could report blocks this image does not have, so recorded
	// block IDs are only trusted if they still exist in idx.
	idx      *coverage.Index
	recBits  coverage.Bitset
	covBits  coverage.Bitset
	baseBits coverage.Bitset

	// Mutation state: the scenario hashes already enumerated (initial
	// candidates plus spawned mutants), the candidates already mutated,
	// the code hasher for mutant store keys (stack-window mutants key on
	// their caller's region, like the call-stack candidates they descend
	// from), and the image-wide code region global windows key on.
	// (Mutation triggers only on coverage *beyond* the suite baseline,
	// so the decision is identical whether an outcome was executed or
	// replayed, in any order.)
	seen        map[string]bool
	mutated     map[string]bool
	hashes      *impact.Hasher
	imageRegion string
	spawned     int

	// reval holds per-candidate re-validation boosts assigned by the
	// impact plan: candidates whose cached outcome an image edit may
	// have affected jump the queue, ordered by expected gain under the
	// store's persisted EWMA cost model (nil when impact is off).
	reval map[string]float64

	// static is the interprocedural prior: final site class by call
	// offset (package callgraph). Swallowed sites — statically proven
	// to drop a library error — outrank plain C_not sites; sites every
	// caller provably checks rank below recovery exercising.
	static map[uint64]callsite.Class

	// profileChanged marks callees whose library fault profile changed
	// since the store's last save (impact.DiffProfiles): their cached
	// outcomes were produced under a different fault model and must
	// re-validate even though no code byte — and so no store key —
	// moved (nil when impact is off or nothing changed).
	profileChanged map[string]bool

	// Mixed-build reconciliation state: this coordinator's image
	// version and function fingerprints, plus — per foreign image
	// version some worker reported — the impact set bounding what the
	// build divergence can reach (lazily computed from the worker's
	// own fingerprints; a fallback set when it cannot be bounded).
	imageVersion string
	funcHashes   map[string]string
	mixed        map[string]*mixedImage
	mixedSum     *MixedSummary

	// uniSame memoizes which outcome universes are bit-compatible with
	// idx (same sorted ID table, possibly a different *Index — the local
	// backend builds its own per-system index).
	uniSame map[*coverage.Index]bool
}

// sameUniverse reports whether bitsets over u can be folded directly
// into this explorer's bitsets (identical universes, position for
// position).
func (x *explorer) sameUniverse(u *coverage.Index) bool {
	if u == x.idx {
		return true
	}
	same, ok := x.uniSame[u]
	if !ok {
		if x.uniSame == nil {
			x.uniSame = make(map[*coverage.Index]bool)
		}
		same = slices.Equal(u.IDs(), x.idx.IDs())
		x.uniSame[u] = same
	}
	return same
}

// mutationWorthy reports whether an outcome earns its candidate a set
// of window mutants: it actually injected, and it either failed or
// reached recovery code the default suite does not reach.
func (x *explorer) mutationWorthy(e Entry) bool {
	if e.Injections == 0 {
		return false
	}
	if e.Failed {
		return true
	}
	for _, id := range e.Blocks {
		if p, ok := x.idx.Pos(id); ok && x.recBits.Has(p) && !x.baseBits.Has(p) {
			return true
		}
	}
	return false
}

// mutate breeds window candidates from a worthy candidate. A single
// occurrence n seeds the global bursts [n,n+1] and [n,n+2]; a window
// (global or stack) widens, shifts, and splits in its own kind. A
// call-stack candidate whose single shot was *tolerated* (failed is
// false) but still reached recovery code seeds the site-local bursts
// [1,2] and [1,3] — sustained pressure exactly where one fault was
// absorbed; one that crashed seeds nothing, the single shot already
// found the bug. Results are bounded to [1, 2*MaxOccurrence] for
// global windows and [1, MaxOccurrence] for stack windows (site-local
// counts are aligned to the site, so the interesting bursts sit near
// the start), with bursts no longer than MaxOccurrence, and
// deduplicated against everything already enumerated, so the mutation
// lattice is finite and the loop always terminates. Every decision
// depends only on the candidate and its outcome entry, never on
// scheduling order, so a resumed run re-breeds the same lattice from
// replayed entries alone.
func (x *explorer) mutate(c *Candidate, failed bool) []*Candidate {
	if x.mutated[c.Hash] {
		return nil
	}
	x.mutated[c.Hash] = true
	var wins [][2]uint64
	stack := false
	switch c.Kind {
	case Vulnerable, Exercise:
		if failed {
			return nil
		}
		stack = true
		wins = append(wins, [2]uint64{1, 2}, [2]uint64{1, 3})
	case Occurrence:
		n := c.Occurrence
		wins = append(wins, [2]uint64{n, n + 1}, [2]uint64{n, n + 2})
	case Window, StackWindow:
		stack = c.Kind == StackWindow
		a, b := c.From, c.To
		wins = append(wins, [2]uint64{a, b + 1}) // widen
		wins = append(wins, [2]uint64{a + 1, b + 1})
		if a > 1 {
			wins = append(wins, [2]uint64{a - 1, b}) // shift / widen left
		}
		if b-a >= 3 { // split
			m := (a + b) / 2
			wins = append(wins, [2]uint64{a, m}, [2]uint64{m + 1, b})
		}
	default:
		return nil
	}
	maxTo := uint64(2 * x.cfg.MaxOccurrence)
	if stack {
		maxTo = uint64(x.cfg.MaxOccurrence)
	}
	maxLen := uint64(x.cfg.MaxOccurrence)
	var out []*Candidate
	for _, w := range wins {
		from, to := w[0], w[1]
		if from < 1 || to <= from || to > maxTo || to-from+1 > maxLen {
			continue
		}
		var nc *Candidate
		if stack {
			nc = stackWindowCandidate(x.cfg, c, from, to)
		} else {
			nc = windowCandidate(x.cfg, c.Callee, from, to, c.Code, c.Errno)
		}
		nc.Hash = contentHash(nc.Scenario)
		if x.seen[nc.Hash] {
			continue
		}
		x.seen[nc.Hash] = true
		if stack {
			nc.key = nc.Hash + "@" + x.hashes.Region(nc.Caller)
		} else {
			nc.key = nc.Hash + "@" + x.imageRegion
		}
		x.spawned++
		out = append(out, nc)
	}
	return out
}

// score ranks a pending candidate. Higher runs earlier. The ordering
// encodes §5's testing discipline (exhaust C_not, then C_part, then
// exercise recovery) plus the coverage feedback: a candidate aimed at a
// recovery block that is still uncovered outranks one whose block was
// already reached, and callees that recently produced new blocks or
// new bug signatures are boosted.
func (x *explorer) score(c *Candidate) float64 {
	var s float64
	switch c.Kind {
	case Vulnerable:
		s = 100
		if c.Class == callsite.Partial {
			s = 90
		}
		// Static prior: a site whose error is statically proven to be
		// dropped is the likeliest crash — run it first. A site every
		// caller provably checks is a windowed-analysis false positive;
		// keep it (the proof rests on walkable CFGs) but run it after
		// the genuinely vulnerable sites and recovery exercising.
		switch x.static[c.Offset] {
		case callsite.Swallowed:
			s += 8
		case callsite.CheckedInCaller:
			s = 50
		}
	case Exercise:
		s = 60
	case Occurrence:
		s = 40 - float64(c.Occurrence)
	case Window:
		// Mutants rank just above plain occurrences: they exist because
		// an ancestor already proved the callee interesting.
		s = 45 - float64(c.From) - 0.5*float64(c.To-c.From)
	case StackWindow:
		// A notch above global windows: the ancestor proved this exact
		// call site tolerates a single fault, so the burst is aimed.
		s = 46 - float64(c.From) - 0.5*float64(c.To-c.From)
	}
	if c.Block != "" {
		if p, ok := x.idx.Pos(c.Block); ok && x.covBits.Has(p) {
			s -= 50
		} else {
			s += 30
		}
	}
	if x.reval != nil {
		s += x.reval[c.Hash]
	}
	return s + x.boost[c.Callee]
}

func (x *explorer) reward(callee string) {
	if x.boost[callee] < 45 {
		x.boost[callee] += 15
	}
}

func (x *explorer) logf(format string, args ...any) {
	if x.cfg.Log != nil {
		fmt.Fprintf(x.cfg.Log, format+"\n", args...)
	}
}

// Explore runs the engine: generate candidates, replay the store,
// schedule the rest in coverage-guided batches, persist outcomes.
func Explore(cfg Config) (*Result, error) {
	return ExploreContext(context.Background(), cfg)
}

// ExploreContext is Explore under a context. Cancellation is honored
// between test runs: in-flight tests finish, the sharded store is saved
// (no torn shards — at most the interrupted batch's outcomes are lost),
// and the partial Result comes back together with ctx.Err(), so an
// interrupted run is fully resumable.
func ExploreContext(ctx context.Context, cfg Config) (*Result, error) {
	r, err := newRun(cfg)
	if err != nil {
		return nil, err
	}
	var runErr error
	for runErr == nil && !r.done() {
		runErr = r.step(ctx, 0)
	}
	return r.finish(runErr)
}

// run is one system's in-flight exploration — the schedulable unit
// shared by the single-system driver (ExploreContext) and the
// cross-system driver (ExploreAllContext), which interleaves steps of
// several runs.
type run struct {
	cfg     Config
	x       *explorer
	res     *Result
	store   *Store
	keys    map[string]bool
	pending []*Candidate
	// reval queues candidates whose mixed-build outcome could not be
	// proven build-independent; they re-run ahead of pending, in
	// batches pinned to build-matched backends (Batch.RequireImage).
	reval []*Candidate
	stall int
	begin time.Time
	// ownExec marks a fleet newRun built itself (no Config.Exec);
	// finish closes it.
	ownExec bool
}

// newRun generates the candidate space, runs the coverage baseline, and
// replays the persistent store, leaving the run ready to step.
func newRun(cfg Config) (*run, error) {
	cfg = cfg.withDefaults()
	ownExec := cfg.Exec == nil
	if ownExec {
		cfg.Exec = exec.NewFleet(exec.NewLocal(cfg.Workers))
	}
	begin := time.Now()
	cands := Generate(cfg)

	x := &explorer{
		cfg:     cfg,
		acc:     coverage.New(),
		sigs:    make(map[string][]string),
		boost:   make(map[string]float64),
		seen:    make(map[string]bool, len(cands)),
		mutated: make(map[string]bool),
	}
	for _, c := range cands {
		x.seen[c.Hash] = true
	}
	x.hashes = impact.NewHasher(cfg.Binary)
	x.imageRegion = x.hashes.Image()
	x.imageVersion = ImageVersion(cfg.Binary)
	x.funcHashes = impact.FuncHashes(cfg.Binary)
	x.mixed = make(map[string]*mixedImage)
	res := &Result{System: cfg.System, Candidates: len(cands)}

	// Baseline: the default suite with no injection. This registers
	// the application's block universe in the accumulator and records
	// what the suite reaches on its own.
	if _, err := controller.RunOne(cfg.Target(x.acc), nil); err != nil {
		return nil, fmt.Errorf("explore: baseline: %w", err)
	}
	res.Baseline = x.acc.Recovery()

	// The block universe the baseline registered, as an index plus
	// bitsets: recovery membership, covered-so-far (seeded with what
	// the suite reaches uninjected), and that baseline snapshot.
	x.idx = x.acc.Index()
	x.recBits = x.acc.RecoveryBits(x.idx)
	x.covBits = x.acc.CoveredBits(x.idx, nil)
	x.covBits.And(x.recBits)
	x.baseBits = x.covBits.Clone()

	// Replay the persistent store: cached outcomes count as explored
	// without executing anything. Worthy cached occurrence outcomes
	// spawn their window mutants here too (the worklist), so a cached
	// mutation chain replays to its fixpoint and a resumed run against
	// an unchanged target still executes nothing.
	var store *Store
	var plan *impactPlan
	var sum *ImpactSummary
	profHashes := impact.ProfileHashes(cfg.Profiles)
	if cfg.Store != "" {
		var err error
		store, err = LoadStore(cfg.Store, cfg.System, x.imageVersion)
		if err != nil {
			return nil, err
		}
		// Resume the execution cost model the last session measured, so
		// scheduling starts from observed economics instead of priors.
		if cost, ok := store.CostModel(); ok {
			cfg.Exec.SeedCost(cfg.System, cost)
		}
		if cfg.Impact {
			if plan = newImpactPlan(cfg, store); plan == nil {
				x.logf("explore %s: impact: no previous image metadata in %s — falling back to whole-shard invalidation",
					cfg.System, cfg.Store)
			} else {
				sum = plan.sum
				x.reval = make(map[string]float64)
				x.logf("explore %s: %s", cfg.System, plan.sum)
			}
		}
		if cfg.Impact {
			// A profile edit moves no code byte — every store key still
			// matches — but the cached outcomes were produced under a
			// different fault model. Diff the persisted profile
			// fingerprints and force the affected callees' cached
			// entries through re-execution, ahead of fresh candidates.
			if prior, ok := store.PriorProfileHashes(); ok {
				if changed := impact.DiffProfiles(prior, profHashes); len(changed) > 0 {
					x.profileChanged = make(map[string]bool, len(changed))
					for _, fn := range changed {
						x.profileChanged[fn] = true
					}
					if x.reval == nil {
						x.reval = make(map[string]float64)
					}
					if sum == nil {
						sum = &ImpactSummary{PrevImage: x.imageVersion}
					}
					sum.ProfilesChanged = changed
					x.logf("explore %s: impact: %d callee profile(s) changed %v — re-validating their cached outcomes",
						cfg.System, len(changed), changed)
				}
			}
		}
		// Record this image's function and profile fingerprints so the
		// *next* session can diff against us without the old binary or
		// the old profile set.
		store.SetFuncHashes(x.funcHashes)
		store.SetProfileHashes(profHashes)
	}

	// Static prior: refine the windowed site classes across frames
	// (package callgraph) and hand the final classes to the scheduler.
	// Summaries persisted by an earlier session are reused for every
	// function the current build left untouched — but only under an
	// unchanged fault-profile set, since a profile edit changes the
	// site universe the summaries describe. The fresh summary set is
	// staged for this image's manifest so the next session (lint or
	// explore) diffs against us.
	var priorSums callgraph.Summaries
	if sums, _, ok := store.PriorSummaries(); ok {
		if prev, pok := store.PriorProfileHashes(); pok && sameHashes(prev, profHashes) {
			priorSums = sums
		}
	}
	inter := callgraph.AnalyzeIncremental(cfg.Binary, cfg.Profiles, priorSums)
	x.static = make(map[uint64]callsite.Class, len(inter.Sites))
	for _, st := range inter.Sites {
		x.static[st.Offset] = st.Final
	}
	store.SetSummaries(inter.Summaries)

	keys := candidateKeys(cands)
	pending := make([]*Candidate, 0, len(cands))
	work := append([]*Candidate(nil), cands...)
	for len(work) > 0 {
		c := work[0]
		work = work[1:]
		e, ok := store.Lookup(c.key)
		if ok && x.profileChanged[c.Callee] {
			// Cached under the old fault model: skip the replay and
			// re-execute, failed entries boosted first — a bug found
			// under the old profile is the outcome most worth
			// re-confirming under the new one.
			boost := 125.0
			if e.Failed {
				boost += 40
			}
			x.reval[c.Hash] = boost
			sum.Revalidated++
			ok = false
		}
		if !ok && plan != nil {
			// The candidate's region hash moved (or it keys on the
			// image and the image moved). If the previous image cached
			// this scenario, decide per entry instead of per shard:
			// migrate it forward when the edit provably cannot reach
			// its recorded coverage, otherwise queue it for
			// re-validation ahead of fresh candidates.
			if oldKey, old, hit := plan.lookupOld(store, c); hit {
				if c.Caller == "" && !plan.set.Intersects(old.Blocks) {
					store.Adopt(oldKey, c.key, old)
					e, ok = old, true
					plan.sum.Migrated++
				} else {
					x.reval[c.Hash] = plan.revalBoost(old)
					plan.sum.Revalidated++
				}
			}
		}
		if !ok {
			pending = append(pending, c)
			continue
		}
		res.Replayed++
		for _, id := range e.Blocks {
			p, ok := x.idx.Pos(id)
			if !ok {
				continue
			}
			x.acc.Hit(id)
			if x.recBits.Has(p) {
				x.covBits.Set(p)
			}
		}
		if e.Failed {
			x.sigs[e.Signature] = append(x.sigs[e.Signature], e.Name)
		}
		if x.mutationWorthy(e) {
			for _, m := range x.mutate(c, e.Failed) {
				keys[m.key] = true
				work = append(work, m)
			}
		}
	}
	if res.Replayed > 0 {
		x.logf("explore %s: replayed %d cached outcomes from %s", cfg.System, res.Replayed, cfg.Store)
	}
	if sum != nil {
		res.Impact = sum
	}
	return &run{cfg: cfg, x: x, res: res, store: store, keys: keys, pending: pending, begin: begin, ownExec: ownExec}, nil
}

// sameHashes reports whether two fingerprint maps are identical.
func sameHashes(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// done reports whether scheduling is finished: queue drained, stalled,
// or the per-run budget spent.
func (r *run) done() bool {
	if len(r.pending)+len(r.reval) == 0 || r.stall >= r.cfg.StallBatches {
		return true
	}
	return r.cfg.MaxRuns > 0 && r.res.Executed >= r.cfg.MaxRuns
}

// uncoveredRecovery counts the recovery blocks exploration has not
// reached yet — the cross-system scheduling priority.
func (r *run) uncoveredRecovery() int {
	return r.x.recBits.Count() - r.x.covBits.Count()
}

// step schedules one batch, dispatches it across the execution fleet,
// and persists its outcomes. The store is saved after every batch, not
// just at the end — with the sharded layout that only rewrites the
// batch's dirty shards — so a mid-run error or interrupt loses nothing
// that completed: even a cancelled batch's drained outcomes (local
// prefix, in-flight remote responses) are folded, counted as executed
// and saved, and only the candidates that never ran go back to the
// queue. cap, when positive, additionally bounds the batch size (the
// cross-system driver passes its shared remaining budget).
func (r *run) step(ctx context.Context, cap int) error {
	size := r.cfg.BatchSize
	if r.cfg.MaxRuns > 0 {
		if left := r.cfg.MaxRuns - r.res.Executed; left < size {
			size = left
		}
	}
	if cap > 0 && cap < size {
		size = cap
	}
	if size <= 0 {
		return nil
	}
	// Mixed-build re-validations run first, pinned to build-matched
	// backends: they are completed experiments waiting on a trusted
	// executor — the cheapest path back to a fully-folded frontier.
	require := len(r.reval) > 0
	var batch []*Candidate
	if require {
		if size > len(r.reval) {
			size = len(r.reval)
		}
		batch, r.reval = r.reval[:size], r.reval[size:]
	} else {
		batch, r.pending = r.x.takeBatch(r.pending, size)
	}

	report, mutants, unrun, reval, err := r.x.runBatch(ctx, len(r.res.Batches), batch, r.store, require)
	for _, m := range mutants {
		r.keys[m.key] = true
	}
	r.pending = append(r.pending, mutants...)
	if require {
		// Candidates a pinned batch never ran still need a matched
		// build; everything else requeues on the general queue.
		r.reval = append(r.reval, unrun...)
	} else {
		r.pending = append(r.pending, unrun...)
	}
	r.reval = append(r.reval, reval...)
	if report.Runs > 0 {
		r.res.Executed += report.Runs
		r.res.Batches = append(r.res.Batches, report)
		r.cfg.Exec.ObserveGain(r.cfg.System, report.Runs, len(report.NewBlocks))
		r.x.logf("explore %s: batch %d: %d runs, %d new blocks, %d new bugs, %d mutants bred, recovery %s",
			r.cfg.System, report.Index, report.Runs, len(report.NewBlocks), len(report.NewBugs), len(mutants), report.Recovery)
	}
	if err != nil {
		r.store.Save(r.keys) // keep drained outcomes; the run error wins
		return err
	}
	if err := r.store.Save(r.keys); err != nil {
		return err
	}
	r.publishStatus()

	// A batch that breeds mutants is progress even when it adds no
	// immediate coverage: the interesting part of a mutation chain
	// (pbft's view-change burst) can sit several generations past
	// the last coverage gain, and stalling it off would orphan the
	// bred candidates. Pinned re-validation batches are exempt both
	// ways: they re-confirm known outcomes, which is neither progress
	// nor a stall signal.
	if require {
		return nil
	}
	if len(report.NewBlocks) == 0 && len(report.NewBugs) == 0 && len(mutants) == 0 {
		r.stall++
	} else {
		r.stall = 0
	}
	return nil
}

// publishStatus pushes a progress snapshot to the Config.Status hook.
func (r *run) publishStatus() {
	if r.cfg.Status == nil {
		return
	}
	r.cfg.Status(StatusUpdate{
		System:         r.cfg.System,
		Executed:       r.res.Executed,
		Replayed:       r.res.Replayed,
		Bugs:           len(r.x.sigs),
		Covered:        r.x.covBits.Count(),
		RecoveryBlocks: r.x.recBits.Count(),
		Cost:           r.cfg.Exec.Cost(r.cfg.System),
	})
}

// finish saves the store one last time — the zero-batch pure-replay
// path needs it too, since Save is where entry stamping, invalidated-
// entry pruning, and migrated-entry flushing land on disk — then
// summarizes the run and attaches the store's compaction stats. runErr
// — cancellation or a batch failure — wins over a save error, and the
// partial Result is returned either way so callers can report progress
// up to the interrupt.
func (r *run) finish(runErr error) (*Result, error) {
	r.publishStatus()
	// Persist the measured execution economics next to the outcomes:
	// the next session schedules on them from its first batch.
	r.store.SetCostModel(r.cfg.Exec.Cost(r.cfg.System))
	saveErr := r.store.Save(r.keys)
	if r.ownExec {
		r.cfg.Exec.Close()
	}
	r.res.Mutants = r.x.spawned
	r.res.Mixed = r.x.mixedSum
	r.res.Bugs = r.x.distinctBugs()
	r.res.Final = r.x.acc.Recovery()
	r.res.Total = r.x.acc.Total()
	r.res.Elapsed = time.Since(r.begin)
	if r.store != nil {
		stats := r.store.Stats()
		r.res.StoreStats = &stats
	}
	if runErr != nil {
		return r.res, runErr
	}
	if saveErr != nil {
		return r.res, saveErr
	}
	return r.res, nil
}

// takeBatch removes the size highest-scoring candidates from pending.
// Ties break on scenario name, so scheduling is deterministic.
func (x *explorer) takeBatch(pending []*Candidate, size int) (batch, rest []*Candidate) {
	sort.SliceStable(pending, func(i, j int) bool {
		si, sj := x.score(pending[i]), x.score(pending[j])
		if si != sj {
			return si > sj
		}
		return pending[i].Scenario.Name < pending[j].Scenario.Name
	})
	if size > len(pending) {
		size = len(pending)
	}
	return pending[:size], pending[size:]
}

// mixedImage is the reconciliation state for one foreign worker image:
// the worker's own function fingerprints and the impact set bounding
// which recovery blocks its divergence from our image can reach.
type mixedImage struct {
	set   *impact.Set
	funcs map[string]string
}

// mixedImageFor resolves (memoized) the reconciliation state for a
// foreign image version some worker reported. The fingerprints come
// from the worker itself over the proto-3 "funcs" RPC, routed through
// the fleet; when no live backend can serve them the set degrades to a
// fallback that intersects everything, so every outcome from that
// image re-validates — never adopts on a bound we cannot prove.
func (x *explorer) mixedImageFor(image string) *mixedImage {
	if m, ok := x.mixed[image]; ok {
		return m
	}
	m := &mixedImage{}
	theirs, err := x.cfg.Exec.FuncsForImage(x.cfg.System, image)
	switch {
	case err != nil:
		m.set = &impact.Set{Fallback: true, Reason: err.Error()}
	default:
		m.funcs = theirs
		d := impact.DiffFuncs(theirs, x.funcHashes)
		if d.Empty() {
			m.set = &impact.Set{Fallback: true, Reason: "image differs outside function symbols"}
		} else {
			m.set = impact.Compute(x.cfg.Binary, d, x.cfg.BlockOffsets)
		}
	}
	x.mixed[image] = m
	if x.mixedSum == nil {
		x.mixedSum = &MixedSummary{}
	}
	x.mixedSum.Images = append(x.mixedSum.Images, image)
	sort.Strings(x.mixedSum.Images)
	x.logf("explore %s: worker image %s differs from ours (%s): %s",
		x.cfg.System, image, x.imageVersion, mixedBound(m.set))
	return m
}

// mixedBound renders what the reconciliation decided for a log line.
func mixedBound(s *impact.Set) string {
	if s.Fallback {
		return "divergence unbounded (" + s.Reason + "); all its outcomes re-validate"
	}
	return fmt.Sprintf("%d changed fn, %d impacted blocks; disjoint outcomes adopt", len(s.Changed), len(s.Blocks))
}

// foreignKey derives the store key the candidate would have under the
// foreign image — the provenance Adopt records when an outcome
// migrates across the build divergence. "" when the foreign region
// cannot be named (no fingerprint for the caller).
func (m *mixedImage) foreignKey(c *Candidate, image string) string {
	region := regionOfImage(image)
	if c.Caller != "" {
		region = m.funcs[c.Caller]
	}
	if region == "" {
		return ""
	}
	return c.Hash + "@" + region
}

// runBatch dispatches one batch across the execution fleet, then folds
// coverage and failure deltas back into the scheduler state. Every
// completed outcome is folded even when the dispatch returned an error
// — that is how a cancelled batch's drained remote responses land in
// the store — and candidates the fleet never ran come back as unrun for
// the caller to requeue. It also returns the window mutants bred from
// this batch's worthy occurrence/window outcomes, plus the candidates
// whose outcome came from a mixed-build worker and could not be proven
// build-independent (reval) — the caller re-runs those on a
// build-matched backend, which is what require requests.
func (x *explorer) runBatch(ctx context.Context, index int, batch []*Candidate, store *Store, require bool) (report BatchReport, mutants, unrun, reval []*Candidate, err error) {
	report = BatchReport{Index: index}
	scens := make([]*scenario.Scenario, len(batch))
	for i, c := range batch {
		scens[i] = c.Scenario
	}
	outs, err := x.cfg.Exec.Run(ctx, &exec.Batch{
		System:       x.cfg.System,
		Seed:         x.cfg.Seed,
		Coverage:     true,
		Scenarios:    scens,
		Image:        x.imageVersion,
		RequireImage: require,
	})

	// Delta attribution is sequential in batch order, so results are
	// independent of backend routing and worker interleaving — the
	// executor equivalence property makes the outcomes themselves
	// backend-independent.
	for i, c := range batch {
		var out *exec.Outcome
		if i < len(outs) {
			out = outs[i]
		}
		if out == nil {
			unrun = append(unrun, c)
			continue
		}
		report.Runs++
		// covBlocks is the run's footprint materialized as sorted IDs —
		// the JSON form the store entry keeps (and an owned copy, so
		// nothing wire- or scratch-backed is retained).
		covBlocks := out.BlockIDs()

		// Mixed build: the worker executed a different image version
		// than the coordinator analyzed. Bound the divergence with the
		// worker's own function fingerprints: an outcome whose recorded
		// coverage the divergence provably cannot reach folds in (and
		// adopts into the store with foreign-key provenance); anything
		// else is discarded here and re-executed on a build-matched
		// backend — reconciled, never silently dropped.
		var adoptKey string
		if out.Image != "" && out.Image != x.imageVersion {
			m := x.mixedImageFor(out.Image)
			if m.set.Intersects(covBlocks) {
				x.mixedSum.Revalidated++
				reval = append(reval, c)
				continue
			}
			x.mixedSum.Migrated++
			adoptKey = m.foreignKey(c, out.Image)
		}
		if out.CovU != nil && x.sameUniverse(out.CovU) {
			// Bitset fast path: the outcome's universe matches ours, so
			// the fold is pure bit arithmetic.
			x.acc.HitBits(x.idx, out.Cov)
			x.covBits.FoldNew(out.Cov, x.recBits, func(p int) {
				report.NewBlocks = append(report.NewBlocks, x.idx.ID(p))
				x.reward(c.Callee)
			})
		} else {
			for _, id := range covBlocks {
				p, ok := x.idx.Pos(id)
				if !ok {
					continue
				}
				x.acc.Hit(id)
				if x.recBits.Has(p) && !x.covBits.Has(p) {
					x.covBits.Set(p)
					report.NewBlocks = append(report.NewBlocks, id)
					x.reward(c.Callee)
				}
			}
		}

		// The entry records the run's full covered footprint (not just
		// recovery blocks), so a resumed run reconstructs total
		// coverage too. The failure signature was computed where the
		// run executed — it needs the injection log, which stays with
		// the worker.
		entry := Entry{Name: c.Scenario.Name, Blocks: covBlocks, Injections: out.Injections}
		if out.Signature != "" {
			entry.Failed, entry.Signature = true, out.Signature
			if _, known := x.sigs[out.Signature]; !known {
				report.NewBugs = append(report.NewBugs, out.Signature)
				x.reward(c.Callee)
			}
			x.sigs[out.Signature] = append(x.sigs[out.Signature], c.Scenario.Name)
		}
		if adoptKey != "" {
			store.Adopt(adoptKey, c.key, entry)
		} else {
			store.Put(c.key, entry)
		}
		if x.mutationWorthy(entry) {
			mutants = append(mutants, x.mutate(c, entry.Failed)...)
		}
	}
	// The fold copied everything it keeps (BlockIDs materializes an
	// owned slice; signatures are strings), so the decoded outcomes can
	// go back to the wire pool for the next batch.
	exec.Recycle(outs)
	sort.Strings(report.NewBlocks)
	report.Recovery = x.acc.Recovery()
	return report, mutants, unrun, reval, err
}

// distinctBugs renders the accumulated signatures in DistinctBugs shape.
func (x *explorer) distinctBugs() []controller.Bug {
	sigs := make([]string, 0, len(x.sigs))
	for s := range x.sigs {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	bugs := make([]controller.Bug, 0, len(sigs))
	for _, s := range sigs {
		bugs = append(bugs, controller.Bug{System: x.cfg.System, Signature: s, Scenarios: x.sigs[s]})
	}
	return bugs
}

func candidateKeys(cands []*Candidate) map[string]bool {
	keys := make(map[string]bool, len(cands))
	for _, c := range cands {
		keys[c.key] = true
	}
	return keys
}
