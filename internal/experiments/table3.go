package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/apps/minidns"
	"lfi/internal/apps/minivcs"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/coverage"
)

// Table3Row is one system's coverage improvement.
type Table3Row struct {
	System           string
	RecoveryBaseline coverage.Stats // recovery coverage, default suite alone
	RecoveryWithLFI  coverage.Stats // recovery coverage, suite + LFI campaign
	TotalBaseline    coverage.Stats
	TotalWithLFI     coverage.Stats
	Scenarios        int
}

// AdditionalRecoveryPct is the paper's headline number: the fraction of
// all recovery code newly covered thanks to LFI.
func (r Table3Row) AdditionalRecoveryPct() float64 {
	if r.RecoveryWithLFI.LOC == 0 {
		return 0
	}
	return 100 * float64(r.RecoveryWithLFI.LOCCovered-r.RecoveryBaseline.LOCCovered) /
		float64(r.RecoveryWithLFI.LOC)
}

// AdditionalLOC is the absolute count of newly covered lines.
func (r Table3Row) AdditionalLOC() int {
	return r.TotalWithLFI.LOCCovered - r.TotalBaseline.LOCCovered
}

// Table3Result reproduces Table 3: automated coverage improvement.
type Table3Result struct {
	Rows []Table3Row
}

// String renders the table.
func (r Table3Result) String() string {
	var b strings.Builder
	header(&b, "Table 3: automated improvement in recovery-code coverage")
	fmt.Fprintf(&b, "%-34s", "")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %12s", row.System)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-34s", "Additional recovery code covered")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %11.0f%%", row.AdditionalRecoveryPct())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-34s", "Additional LOC covered by LFI")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %12d", row.AdditionalLOC())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-34s", "Total coverage without LFI")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %11.1f%%", row.TotalBaseline.Percent())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-34s", "Total coverage with LFI")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %11.1f%%", row.TotalWithLFI.Percent())
	}
	b.WriteString("\n")
	return b.String()
}

// coverageTarget pairs an application with its coverage-merging target.
type coverageTarget struct {
	name   string
	bin    *binaryOf
	target func(*coverage.Tracker) controller.Target
}

// Table3 runs the §7.1 coverage experiment on minivcs (Git) and minidns
// (BIND): measure recovery coverage of the default suite alone, then
// re-run the suite once per analyzer-generated scenario (C_not, C_part,
// and recovery-exercising C_yes scenarios — the paper's trimmed list of
// known-fallible calls) and measure again.
func Table3() (Table3Result, error) {
	profs := profiles()
	systems := []coverageTarget{
		{minivcs.Module, firstBin(minivcs.Binary()), minivcs.TargetWithCoverage},
		{minidns.Module, firstBin(minidns.Binary()), minidns.TargetWithCoverage},
	}
	var res Table3Result
	for _, sys := range systems {
		// Baseline: the default suite, no LFI.
		base := coverage.New()
		if _, err := controller.RunOne(sys.target(base), nil); err != nil {
			return res, err
		}
		row := Table3Row{
			System:           sys.name,
			RecoveryBaseline: base.Recovery(),
			TotalBaseline:    base.Total(),
		}

		// Campaign: default suite once per generated scenario, with
		// coverage merged across runs (lcov-style).
		acc := coverage.New()
		if _, err := controller.RunOne(sys.target(acc), nil); err != nil {
			return res, err
		}
		a := &callsite.Analyzer{}
		rep := a.Analyze(sys.bin, profs...)
		yes, part, not := rep.ByClass()
		scens := callsite.GenerateScenarios(sys.bin, append(not, part...), profs...)
		scens = append(scens, callsite.GenerateExercise(sys.bin, yes, profs...)...)
		row.Scenarios = len(scens)
		// Coverage merging is commutative (per-block hit addition into
		// the thread-safe tracker), so the per-scenario suite runs can
		// share the worker pool.
		if _, err := controller.CampaignParallel(sys.target(acc), scens, campaignWorkers()); err != nil {
			return res, err
		}
		row.RecoveryWithLFI = acc.Recovery()
		row.TotalWithLFI = acc.Total()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
