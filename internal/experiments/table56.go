package experiments

import (
	"fmt"
	"strings"
	"time"

	"lfi/internal/apps/minidb"
	"lfi/internal/apps/miniweb"
	"lfi/internal/core"
	"lfi/internal/scenario"
)

// Table5Result reproduces Table 5: miniweb (Apache) request latency with
// 0-5 observational triggers stacked on apr_file_read.
type Table5Result struct {
	Requests    int
	StaticTimes [6]time.Duration // index = trigger count (0 = baseline)
	PHPTimes    [6]time.Duration
	Triggerings uint64 // trigger evaluations at the 5-trigger point
}

// String renders the table.
func (r Table5Result) String() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 5: miniweb running time, %d requests (trigger evaluation only)", r.Requests))
	fmt.Fprintf(&b, "%-18s %14s %14s\n", "", "Static HTML", "PHP")
	fmt.Fprintf(&b, "%-18s %14v %14v\n", "Baseline (no LFI)", r.StaticTimes[0].Round(time.Microsecond), r.PHPTimes[0].Round(time.Microsecond))
	for k := 1; k <= 5; k++ {
		fmt.Fprintf(&b, "%-18s %14v %14v\n", fmt.Sprintf("%d trigger(s)", k),
			r.StaticTimes[k].Round(time.Microsecond), r.PHPTimes[k].Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "(%d triggerings at 5 triggers)\n", r.Triggerings)
	return b.String()
}

// MaxOverheadPct returns the worst relative slowdown across all cells —
// the paper's claim is that it stays negligible.
func (r Table5Result) MaxOverheadPct() float64 {
	worst := 0.0
	for k := 1; k <= 5; k++ {
		for _, pair := range [][2]time.Duration{
			{r.StaticTimes[0], r.StaticTimes[k]},
			{r.PHPTimes[0], r.PHPTimes[k]},
		} {
			if pair[0] == 0 {
				continue
			}
			pct := 100 * (float64(pair[1])/float64(pair[0]) - 1)
			if pct > worst {
				worst = pct
			}
		}
	}
	return worst
}

// StackingOverheadPct returns the worst slowdown of the 5-trigger
// configuration relative to the 1-trigger one — the paper's actual
// subject: the marginal cost of evaluating more triggers. (Baseline vs
// 1 trigger additionally includes raw interception, which on an
// in-memory microsecond workload is proportionally larger than on the
// paper's socket-bound Apache; see EXPERIMENTS.md.)
func (r Table5Result) StackingOverheadPct() float64 {
	worst := 0.0
	for _, pair := range [][2]time.Duration{
		{r.StaticTimes[1], r.StaticTimes[5]},
		{r.PHPTimes[1], r.PHPTimes[5]},
	} {
		if pair[0] == 0 {
			continue
		}
		if pct := 100 * (float64(pair[1])/float64(pair[0]) - 1); pct > worst {
			worst = pct
		}
	}
	return worst
}

// Table5 measures the trigger-evaluation overhead on miniweb: requests
// are timed with no LFI and with 1-5 stacked triggers, no injections.
// Each cell is the median of three repetitions after a warm-up run, to
// keep scheduler noise out of a microsecond-scale measurement.
func Table5(requests int) (Table5Result, error) {
	if requests <= 0 {
		requests = 1000
	}
	res := Table5Result{Requests: requests}
	run := func(k int, php bool) (time.Duration, uint64, error) {
		app := miniweb.New()
		var rt *core.Runtime
		if k > 0 {
			s, err := miniweb.Table5Scenario(k)
			if err != nil {
				return 0, 0, err
			}
			rt, err = core.New(app.C, s)
			if err != nil {
				return 0, 0, err
			}
			rt.Install()
			defer rt.Uninstall()
		}
		if err := app.RunAB(requests/4, php); err != nil { // warm-up
			return 0, 0, err
		}
		var times []time.Duration
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if err := app.RunAB(requests, php); err != nil {
				return 0, 0, err
			}
			times = append(times, time.Since(start))
		}
		// median of three
		if times[0] > times[1] {
			times[0], times[1] = times[1], times[0]
		}
		if times[1] > times[2] {
			times[1], times[2] = times[2], times[1]
		}
		if times[0] > times[1] {
			times[0], times[1] = times[1], times[0]
		}
		var evals uint64
		if rt != nil {
			evals = rt.Evals()
		}
		return times[1], evals, nil
	}
	for k := 0; k <= 5; k++ {
		st, _, err := run(k, false)
		if err != nil {
			return res, err
		}
		res.StaticTimes[k] = st
		pt, evals, err := run(k, true)
		if err != nil {
			return res, err
		}
		res.PHPTimes[k] = pt
		if k == 5 {
			res.Triggerings = evals
		}
	}
	return res, nil
}

// Table6Result reproduces Table 6: minidb OLTP throughput with 0-4
// observational triggers on fcntl.
type Table6Result struct {
	Duration time.Duration
	ReadOnly [5]float64 // txns/sec; index = trigger count
	ReadWr   [5]float64
}

// String renders the table.
func (r Table6Result) String() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 6: minidb OLTP throughput (window %v)", r.Duration))
	fmt.Fprintf(&b, "%-18s %14s %14s\n", "", "Read-only", "Read/Write")
	fmt.Fprintf(&b, "%-18s %10.0f t/s %10.0f t/s\n", "Baseline (no LFI)", r.ReadOnly[0], r.ReadWr[0])
	for k := 1; k <= 4; k++ {
		fmt.Fprintf(&b, "%-18s %10.0f t/s %10.0f t/s\n", fmt.Sprintf("%d trigger(s)", k),
			r.ReadOnly[k], r.ReadWr[k])
	}
	return b.String()
}

// MaxOverheadPct returns the worst throughput degradation in percent.
func (r Table6Result) MaxOverheadPct() float64 {
	worst := 0.0
	for k := 1; k <= 4; k++ {
		for _, pair := range [][2]float64{
			{r.ReadOnly[0], r.ReadOnly[k]},
			{r.ReadWr[0], r.ReadWr[k]},
		} {
			if pair[0] == 0 {
				continue
			}
			pct := 100 * (1 - pair[1]/pair[0])
			if pct > worst {
				worst = pct
			}
		}
	}
	return worst
}

// table6Scenario stacks k (1 ≤ k ≤ 4) observational triggers on fcntl,
// following §7.4: cmd==F_GETLK, thread_count>64, shutdown_in_progress
// set, and caller-is-main-module.
func table6Scenario(k int) (*scenario.Scenario, error) {
	if k < 1 || k > 4 {
		return nil, fmt.Errorf("experiments: table 6 trigger count %d out of [1,4]", k)
	}
	b := scenario.NewBuilder(fmt.Sprintf("table6-%dtriggers", k))
	refs := []string{b.Trigger("t1", "ArgEquals", scenario.IntArgs("index", 1, "value", 5 /* F_GETLK */))}
	if k >= 2 {
		refs = append(refs, b.Trigger("t2", "ProgramStateTrigger",
			scenario.IntArgs("var", "thread_count", "op", "gt", "value", 64)))
	}
	if k >= 3 {
		refs = append(refs, b.Trigger("t3", "ProgramStateTrigger",
			scenario.IntArgs("var", "shutdown_in_progress", "op", "eq", "value", 1)))
	}
	if k >= 4 {
		refs = append(refs, b.Trigger("t4", "CallStackTrigger", moduleFrameArgs(minidb.Module)))
	}
	b.Observe("fcntl", refs...)
	return b.Build()
}

// Table6 measures OLTP throughput over a fixed window per cell.
func Table6(window time.Duration) (Table6Result, error) {
	if window <= 0 {
		window = 300 * time.Millisecond
	}
	res := Table6Result{Duration: window}
	run := func(k int, readWrite bool) (float64, error) {
		app := minidb.New()
		if err := app.BufferPoolInit(); err != nil {
			return 0, err
		}
		if k > 0 {
			s, err := table6Scenario(k)
			if err != nil {
				return 0, err
			}
			rt, err := core.New(app.C, s)
			if err != nil {
				return 0, err
			}
			rt.Install()
			defer rt.Uninstall()
		}
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			for i := 0; i < 32; i++ { // batch to amortize clock reads
				if err := app.Txn(readWrite); err != nil {
					return 0, err
				}
			}
		}
		return float64(app.TxnCount()) / window.Seconds(), nil
	}
	for k := 0; k <= 4; k++ {
		ro, err := run(k, false)
		if err != nil {
			return res, err
		}
		rw, err := run(k, true)
		if err != nil {
			return res, err
		}
		res.ReadOnly[k] = ro
		res.ReadWr[k] = rw
	}
	return res, nil
}
