package experiments

import (
	"strings"
	"testing"
	"time"
)

// These tests pin the SHAPE of each reproduced result — who wins, by
// roughly what factor — with reduced run counts so the suite stays
// fast. The full-size numbers live in EXPERIMENTS.md and come from
// cmd/lfi-experiments / the benchmarks.

func TestTable1FindsElevenBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	res, err := Table1(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) != 11 {
		t.Fatalf("found %d distinct bugs, want 11:\n%s", len(res.Bugs), res)
	}
	want := map[string]int{"minivcs": 5, "minidns": 2, "minidb": 2, "pbft": 2}
	for sys, n := range want {
		if res.PerSys[sys] != n {
			t.Errorf("%s: %d bugs, want %d\n%s", sys, res.PerSys[sys], n, res)
		}
	}
	if !strings.Contains(res.String(), "11 distinct bugs") {
		t.Error("rendering wrong")
	}
}

func TestTable2PrecisionOrdering(t *testing.T) {
	res, err := Table2(40)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: random < within-file < close-after-unlock,
	// with the last at 100%.
	if !(res.Random < res.InFile && res.InFile < res.AfterLock) {
		t.Fatalf("precision ordering violated: %+v", res)
	}
	if res.AfterLock != 1.0 {
		t.Fatalf("close-after-unlock precision %.2f, want 1.0", res.AfterLock)
	}
	if res.Random == 0 {
		t.Fatal("random never hit the bug (calibration broken)")
	}
}

func TestTable3CoverageShape(t *testing.T) {
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Baseline recovery coverage is essentially zero; the gain is
		// tens of percent of recovery code (paper: 35%-60%).
		if gain := row.AdditionalRecoveryPct(); gain < 30 || gain > 90 {
			t.Errorf("%s: recovery gain %.0f%% outside the paper band", row.System, gain)
		}
		// Total coverage moves by a point or two, not more.
		delta := row.TotalWithLFI.Percent() - row.TotalBaseline.Percent()
		if delta <= 0 || delta > 5 {
			t.Errorf("%s: total coverage delta %.1f points", row.System, delta)
		}
		if row.Scenarios == 0 {
			t.Errorf("%s: no scenarios generated", row.System)
		}
	}
}

func TestTable4AccuracyShape(t *testing.T) {
	res := Table4()
	if len(res.Rows) < 7 {
		t.Fatalf("only %d rows:\n%s", len(res.Rows), res)
	}
	fps := 0
	for _, row := range res.Rows {
		if row.FN != 0 {
			t.Errorf("%s/%s: false negatives", row.System, row.Func)
		}
		fps += row.FP
		if row.System == "minidns" && row.Func == "open" {
			if row.FP != 1 {
				t.Errorf("minidns open: FP=%d, want the single known false positive", row.FP)
			}
			if v := row.Value(); v < 0.8 || v > 0.9 {
				t.Errorf("minidns open accuracy %.2f, want ~0.83", v)
			}
		} else if row.Value() != 1.0 {
			t.Errorf("%s/%s: accuracy %.2f, want 100%%", row.System, row.Func, row.Value())
		}
	}
	if fps != 1 {
		t.Errorf("total false positives %d, want exactly 1", fps)
	}
}

func TestTable5OverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := Table5(300)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim is about trigger STACKING being negligible:
	// going from 1 to 5 triggers must not meaningfully slow the
	// workload (short-circuiting keeps evaluation O(1) here). A noisy
	// CI box gets a generous 40% allowance on this millisecond-scale
	// measurement.
	if res.StackingOverheadPct() > 40 {
		t.Errorf("trigger-stacking overhead %.1f%% too large:\n%s", res.StackingOverheadPct(), res)
	}
	if res.Triggerings == 0 {
		t.Fatal("no trigger evaluations recorded")
	}
}

func TestTable6OverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := Table6(150 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxOverheadPct() > 40 {
		t.Errorf("overhead %.1f%% too large:\n%s", res.MaxOverheadPct(), res)
	}
	if res.ReadOnly[0] <= res.ReadWr[0] {
		t.Error("read-only throughput should exceed read-write")
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running distributed experiment")
	}
	res, err := Figure3(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("%d points", len(res.Points))
	}
	if !res.Monotone(0.5) {
		t.Errorf("degradation not monotone:\n%s", res)
	}
	last := res.Points[len(res.Points)-1]
	if last.Slowdown < 1.5 {
		t.Errorf("99%% loss barely slowed PBFT (%.2fx):\n%s", last.Slowdown, res)
	}
}

func TestDoSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running distributed experiment")
	}
	res, err := DoS(20)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: silencing one replica does NOT hurt (it even helps
	// slightly); the rotation attack is strictly worse.
	if res.SilenceDelta < -0.25 {
		t.Errorf("silencing hurt throughput by %.0f%%:\n%s", -100*res.SilenceDelta, res)
	}
	if res.RotationDrop < 1.3 {
		t.Errorf("rotation attack drop only %.2fx:\n%s", res.RotationDrop, res)
	}
	if res.RotationOps >= res.SilencedOps {
		t.Errorf("rotation should be the more effective attack:\n%s", res)
	}
}

func TestEfficiencyFast(t *testing.T) {
	res := Efficiency()
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Sites == 0 {
			t.Errorf("%s: no sites analyzed", row.System)
		}
		if row.Elapsed > 5*time.Second {
			t.Errorf("%s: analysis took %v (paper: seconds at most)", row.System, row.Elapsed)
		}
	}
}

func TestViewChangeBugHuntReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running distributed experiment")
	}
	crash, attempts, err := ViewChangeBugHunt(false)
	if err != nil {
		t.Fatal(err)
	}
	if crash == nil {
		t.Fatalf("view-change bug not reproduced in %d attempts", attempts)
	}
	if !strings.Contains(crash.Reason, "view change") {
		t.Fatalf("wrong crash: %v", crash)
	}
}

func TestExplorerMatchesStockCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	res, err := Explorer(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2 in quick mode", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The closed loop must rediscover every crash bug the stock
		// Table 1 campaigns find, without a hand-written scenario.
		if row.SharedCrashBugs != row.StockCrashBugs {
			t.Errorf("%s: explorer shares %d of %d stock crash bugs:\n%s",
				row.System, row.SharedCrashBugs, row.StockCrashBugs, res)
		}
		if row.ExplorerRecovery.LOCCovered <= row.SuiteRecovery.LOCCovered {
			t.Errorf("%s: exploration added no recovery coverage:\n%s", row.System, res)
		}
	}
}
