package experiments

import (
	"fmt"
	"strings"
	"time"

	"lfi/internal/core"
	"lfi/internal/distsim"
	"lfi/internal/pbft"
	"lfi/internal/scenario"
)

// Figure3Point is one x/y pair of Figure 3.
type Figure3Point struct {
	LossProb  float64
	Slowdown  float64 // per-op latency relative to the 0-loss baseline
	Completed int
	PerOpMean time.Duration
}

// Figure3Result reproduces Figure 3: PBFT throughput slowdown under
// progressively worsening network conditions.
type Figure3Result struct {
	Trials int
	Ops    int
	Points []Figure3Point
}

// String renders the series (the figure's data points).
func (r Figure3Result) String() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Figure 3: PBFT slowdown vs packet-loss probability (%d ops, avg of %d trials)", r.Ops, r.Trials))
	fmt.Fprintf(&b, "%-12s %-12s %-10s %s\n", "loss prob", "slowdown", "completed", "per-op")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12.2f %-12.2f %-10d %v\n", p.LossProb, p.Slowdown, p.Completed, p.PerOpMean.Round(time.Millisecond))
	}
	return b.String()
}

// Monotone reports whether slowdown is non-decreasing in loss (allowing
// small jitter eps), the figure's qualitative shape.
func (r Figure3Result) Monotone(eps float64) bool {
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Slowdown+eps < r.Points[i-1].Slowdown {
			return false
		}
	}
	return true
}

// figure3Probs are the x values of Figure 3.
var figure3Probs = []float64{0, 0.1, 0.8, 0.9, 0.95, 0.99}

// lossScenario builds the random sendto/recvfrom degradation of §7.3.
// The distributed trigger consults the central loss policy, composed
// after a node-local guard is unnecessary here because every call is a
// communication call.
func lossScenario(p float64) (*scenario.Scenario, error) {
	doc := fmt.Sprintf(`<scenario name="net-loss-%v">
	  <trigger id="loss" class="DistributedTrigger" />
	  <function name="sendto" return="-1" errno="EAGAIN"><reftrigger ref="loss" /></function>
	  <function name="recvfrom" return="-1" errno="EINTR"><reftrigger ref="loss" /></function>
	</scenario>`, p)
	return scenario.ParseString(doc)
}

// Figure3 measures PBFT end-to-end performance at each loss probability,
// averaged over trials (the paper used 7). It uses the patched build so
// the performance study is not cut short by the release build's seeded
// crash, and client think time paces the workload the way simple_client
// does.
func Figure3(ops, trials int) (Figure3Result, error) {
	if ops <= 0 {
		ops = 15
	}
	if trials <= 0 {
		trials = 3
	}
	// Client think time paces the workload (the paper's client is
	// similarly not issuing back-to-back requests); the slowdown at
	// high loss is then bounded by protocol latency vs pacing, which
	// is what keeps the paper's 99%-loss point at ~4x rather than
	// unbounded.
	const think = 50 * time.Millisecond
	res := Figure3Result{Trials: trials, Ops: ops}
	var baseline time.Duration
	for _, p := range figure3Probs {
		var total time.Duration
		completedSum := 0
		for trial := 0; trial < trials; trial++ {
			s, err := lossScenario(p)
			if err != nil {
				return res, err
			}
			ctrl := distsim.NewController(distsim.NewLossPolicy(p, int64(1000*p)+int64(trial)))
			cl := pbft.NewCluster(1, pbft.BuildPatched)
			if err := cl.InstallScenario(s, core.WithDecider(ctrl)); err != nil {
				return res, err
			}
			if err := cl.Start(); err != nil {
				return res, err
			}
			completed, perOp := cl.RunPaced(ops, think, 3*time.Second)
			cl.Stop()
			completedSum += completed
			total += perOp
		}
		mean := total / time.Duration(trials)
		point := Figure3Point{
			LossProb:  p,
			Completed: completedSum / trials,
			PerOpMean: mean,
		}
		if p == 0 {
			baseline = mean
			point.Slowdown = 1
		} else if baseline > 0 {
			point.Slowdown = float64(mean) / float64(baseline)
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// DoSResult reproduces the §7.3 denial-of-service study.
type DoSResult struct {
	BaselineOps  float64 // ops/sec, LFI intercepting but passing through
	SilencedOps  float64 // one replica rendered inactive
	RotationOps  float64 // 500-fault bursts rotating across replicas
	SilenceDelta float64 // relative change vs baseline (positive = faster)
	RotationDrop float64 // baseline/rotation throughput factor
}

// String renders the study.
func (r DoSResult) String() string {
	var b strings.Builder
	header(&b, "DoS study (§7.3): PBFT throughput under targeted attacks")
	fmt.Fprintf(&b, "%-34s %8.1f ops/s\n", "Baseline (interception only)", r.BaselineOps)
	fmt.Fprintf(&b, "%-34s %8.1f ops/s (%+.0f%%)\n", "One replica silenced", r.SilencedOps, 100*r.SilenceDelta)
	fmt.Fprintf(&b, "%-34s %8.1f ops/s (%.1fx drop)\n", "Rotating 500-fault bursts", r.RotationOps, r.RotationDrop)
	return b.String()
}

// DoS measures the two attack scenarios against the pass-through
// baseline.
func DoS(ops int) (DoSResult, error) {
	if ops <= 0 {
		ops = 25
	}
	const think = 4 * time.Millisecond
	run := func(policy distsim.Policy) (float64, error) {
		s, err := lossScenario(-1) // probability ignored; policy decides
		if err != nil {
			return 0, err
		}
		ctrl := distsim.NewController(policy)
		cl := pbft.NewCluster(1, pbft.BuildPatched)
		if err := cl.InstallScenario(s, core.WithDecider(ctrl)); err != nil {
			return 0, err
		}
		if err := cl.Start(); err != nil {
			return 0, err
		}
		completed, perOp := cl.RunPaced(ops, think, 2*time.Second)
		cl.Stop()
		if completed == 0 || perOp == 0 {
			return 0, nil
		}
		return 1 / perOp.Seconds(), nil
	}
	var res DoSResult
	var err error
	if res.BaselineOps, err = run(nil); err != nil {
		return res, err
	}
	if res.SilencedOps, err = run(distsim.SilencePolicy{Node: "R3"}); err != nil {
		return res, err
	}
	// The rotation includes the primary's node: muting whoever
	// currently leads forces a view change, and by the time a new
	// primary settles the attack has moved on — "targeting the
	// reconfiguration protocol, aiming to confuse it" (§7.3).
	if res.RotationOps, err = run(&distsim.RotationPolicy{
		Nodes: []string{"R0", "R1", "R2", "R3"}, Burst: 500,
	}); err != nil {
		return res, err
	}
	if res.BaselineOps > 0 {
		res.SilenceDelta = res.SilencedOps/res.BaselineOps - 1
		if res.RotationOps > 0 {
			res.RotationDrop = res.BaselineOps / res.RotationOps
		}
	}
	return res, nil
}
