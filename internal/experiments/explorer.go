package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/apps/minidb"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/explore"
	"lfi/internal/profile"
	"lfi/internal/system"
)

// ExplorerRow compares one system's coverage-guided exploration run
// against the hand-written/stock campaigns of Tables 1-3.
type ExplorerRow struct {
	System     string
	Candidates int
	Mutants    int // window candidates bred by occurrence mutation
	Executed   int
	Batches    int

	ExplorerCrashBugs int // distinct crash signatures the explorer found
	StockCrashBugs    int // distinct crash signatures the Table 1 campaign finds
	SharedCrashBugs   int // found by both

	SuiteRecovery    coverage.Stats // default suite alone
	ExplorerRecovery coverage.Stats // after exploration
}

// ExplorerResult reports the exploration engine next to the paper's
// evaluation: does the closed loop rediscover the Table 1 bugs, and how
// does its recovery coverage compare with the suite baseline of Table 3?
type ExplorerResult struct {
	Rows []ExplorerRow
}

// String renders the comparison.
func (r ExplorerResult) String() string {
	var b strings.Builder
	header(&b, "Explorer: coverage-guided exploration vs the stock campaigns")
	fmt.Fprintf(&b, "%-34s", "")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %12s", row.System)
	}
	b.WriteString("\n")
	line := func(label string, val func(ExplorerRow) string) {
		fmt.Fprintf(&b, "%-34s", label)
		for _, row := range r.Rows {
			fmt.Fprintf(&b, " %12s", val(row))
		}
		b.WriteString("\n")
	}
	line("Candidate scenarios generated", func(r ExplorerRow) string { return fmt.Sprint(r.Candidates) })
	line("Window mutants bred", func(r ExplorerRow) string { return fmt.Sprint(r.Mutants) })
	line("Tests executed", func(r ExplorerRow) string { return fmt.Sprint(r.Executed) })
	line("Scheduling batches", func(r ExplorerRow) string { return fmt.Sprint(r.Batches) })
	line("Crash bugs (explorer)", func(r ExplorerRow) string { return fmt.Sprint(r.ExplorerCrashBugs) })
	line("Crash bugs (stock campaign)", func(r ExplorerRow) string { return fmt.Sprint(r.StockCrashBugs) })
	line("Crash bugs found by both", func(r ExplorerRow) string { return fmt.Sprint(r.SharedCrashBugs) })
	line("Recovery coverage, suite alone", func(r ExplorerRow) string {
		return fmt.Sprintf("%.1f%%", r.SuiteRecovery.Percent())
	})
	line("Recovery coverage, explored", func(r ExplorerRow) string {
		return fmt.Sprintf("%.1f%%", r.ExplorerRecovery.Percent())
	})
	return b.String()
}

// crashSignatures runs a stock campaign for one system and returns its
// distinct crash signatures: the analyzer-generated scenario set over
// the registered descriptor's binary and target (the Table 1
// methodology), except minidb, which keeps the paper's seeded random
// injection (the MySQL methodology). For pbft the stock set covers only
// the shutdown-checkpoint crash — the view-change crash needs a fault
// burst no analyzer-generated scenario expresses, which is exactly
// what the explorer's occurrence-window mutation adds on top.
func crashSignatures(sys *system.Descriptor, quick bool, profs []*profile.Profile) (map[string]bool, error) {
	var bugs []controller.Bug
	if sys.Name == minidb.Module {
		dbBugs, _, err := minidbRandomCampaign(quick)
		if err != nil {
			return nil, err
		}
		bugs = dbBugs
	} else {
		bin, _ := sys.Binary()
		a := &callsite.Analyzer{}
		rep := a.Analyze(bin, profs...)
		yes, part, not := rep.ByClass()
		scens := callsite.GenerateScenarios(bin, append(not, part...), profs...)
		scens = append(scens, callsite.GenerateExercise(bin, yes, profs...)...)
		outs, err := controller.CampaignParallel(sys.Target(), scens, campaignWorkers())
		if err != nil {
			return nil, err
		}
		bugs = controller.DistinctBugs(sys.Name, crashesOnly(outs))
	}
	set := make(map[string]bool, len(bugs))
	for _, b := range bugs {
		set[b.Signature] = true
	}
	return set, nil
}

// Explorer runs the full exploration loop on each registered system and
// lines the findings up against the stock campaigns.
func Explorer(quick bool) (ExplorerResult, error) {
	systems := system.All()
	if quick {
		// minidb + minivcs keep the smoke run short.
		systems = nil
		for _, name := range []string{"minidb", "minivcs"} {
			sys, ok := system.Lookup(name)
			if !ok {
				return ExplorerResult{}, fmt.Errorf("explorer: %q not registered", name)
			}
			systems = append(systems, sys)
		}
	}
	var res ExplorerResult
	profs := profiles() // one shared profile set for every system and campaign
	for _, sys := range systems {
		cfg := explore.ConfigForSystem(sys)
		cfg.Profiles = profs
		cfg.Workers = campaignWorkers()
		// Drain the whole candidate queue, bred window mutants
		// included, so the "Tests executed" row reports the full
		// fault space rather than wherever the stall heuristic
		// happened to stop.
		cfg.StallBatches = 1000
		er, err := explore.Explore(cfg)
		if err != nil {
			return res, err
		}
		stock, err := crashSignatures(sys, quick, profs)
		if err != nil {
			return res, err
		}
		row := ExplorerRow{
			System:           sys.Name,
			Candidates:       er.Candidates,
			Mutants:          er.Mutants,
			Executed:         er.Executed,
			Batches:          len(er.Batches),
			StockCrashBugs:   len(stock),
			SuiteRecovery:    er.Baseline,
			ExplorerRecovery: er.Final,
		}
		for _, b := range er.Bugs {
			if !b.IsCrash() {
				continue // graceful recovery, not a crash bug
			}
			row.ExplorerCrashBugs++
			if stock[b.Signature] {
				row.SharedCrashBugs++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
