package experiments

import (
	"fmt"
	"strings"
	"time"

	"lfi/internal/apps/minidns"
	"lfi/internal/apps/minivcs"
	"lfi/internal/asm"
	"lfi/internal/callsite"
	"lfi/internal/pbft"
)

// Table4Row is one (system, function) accuracy measurement.
type Table4Row struct {
	System string
	callsite.Accuracy
}

// Table4Result reproduces Table 4: call-site analysis accuracy against
// manually established ground truth (here: the site models the binaries
// were assembled from).
type Table4Result struct {
	Rows []Table4Row
}

// String renders the table.
func (r Table4Result) String() string {
	var b strings.Builder
	header(&b, "Table 4: call-site analysis accuracy (no source, no docs)")
	fmt.Fprintf(&b, "%-8s %-10s %6s %4s %4s %9s\n", "System", "Function", "TP+TN", "FN", "FP", "Accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-10s %6d %4d %4d %8.0f%%\n",
			row.System, row.Func, row.TP+row.TN, row.FN, row.FP, 100*row.Value())
	}
	return b.String()
}

// Table4 measures analyzer accuracy per function, following the paper's
// system/function selection: BIND (minidns) malloc/unlink/open/close,
// Git (minivcs) malloc/close/readlink, PBFT fopen.
func Table4() Table4Result {
	profs := profiles()
	a := &callsite.Analyzer{}
	type sysdef struct {
		name  string
		bin   *binaryOf
		specs []asm.FuncSpec
		offs  map[string]uint64
		funcs []string
	}
	dnsBin, dnsOffs := minidns.Binary()
	vcsBin, vcsOffs := minivcs.Binary()
	pbftBin, pbftOffs := pbft.Binary()
	systems := []sysdef{
		{"minidns", dnsBin, minidns.Sites(), dnsOffs, []string{"malloc", "unlink", "open", "close"}},
		{"minivcs", vcsBin, minivcs.Sites(), vcsOffs, []string{"malloc", "close", "readlink"}},
		{"pbft", pbftBin, pbft.Sites(), pbftOffs, []string{"fopen"}},
	}
	var res Table4Result
	for _, sys := range systems {
		rep := a.Analyze(sys.bin, profs...)
		truth := callsite.TruthByOffset(sys.specs, sys.offs)
		for _, fn := range sys.funcs {
			acc := callsite.MeasureAccuracy(fn, rep.Sites, truth)
			if acc.Total() == 0 {
				continue
			}
			res.Rows = append(res.Rows, Table4Row{System: sys.name, Accuracy: acc})
		}
	}
	return res
}

// EfficiencyResult reproduces the §7.2 efficiency paragraph: analysis
// wall-clock time per binary.
type EfficiencyResult struct {
	Rows []struct {
		System  string
		Sites   int
		Elapsed time.Duration
	}
}

// String renders the measurement.
func (r EfficiencyResult) String() string {
	var b strings.Builder
	header(&b, "Analyzer efficiency (§7.2)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %4d call sites analyzed in %v\n", row.System, row.Sites, row.Elapsed)
	}
	return b.String()
}

// Efficiency times the analyzer over every application binary.
func Efficiency() EfficiencyResult {
	profs := profiles()
	a := &callsite.Analyzer{}
	var res EfficiencyResult
	for _, sys := range []struct {
		name string
		bin  *binaryOf
	}{
		{"minidns", firstBin(minidns.Binary())},
		{"minivcs", firstBin(minivcs.Binary())},
		{"pbft", firstBin(pbft.Binary())},
	} {
		start := time.Now()
		rep := a.Analyze(sys.bin, profs...)
		res.Rows = append(res.Rows, struct {
			System  string
			Sites   int
			Elapsed time.Duration
		}{sys.name, len(rep.Sites), time.Since(start)})
	}
	return res
}
