// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment returns a structured result with a
// String method that renders the same rows/series the paper reports;
// cmd/lfi-experiments and the top-level benchmarks share these entry
// points.
//
// Per the reproduction brief, absolute numbers are not expected to match
// the authors' 2010 testbed — the shape is: who wins, by roughly what
// factor, and where crossovers fall. EXPERIMENTS.md records paper-vs-
// measured for every experiment.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"lfi/internal/isa"
	"lfi/internal/profile"
	"lfi/internal/system"
	"lfi/internal/trigger"

	// The Explorer comparison enumerates the full registry, so every
	// built-in system must be registered in this binary too.
	_ "lfi/internal/system/all"
)

// campaignWorkers is the worker-pool width used by the campaign-style
// experiments. Campaign runs are independent (fresh process image per
// test), so the experiments scale to the machine.
func campaignWorkers() int { return runtime.GOMAXPROCS(0) }

// profiles builds the fault profiles of all three simulated libraries by
// actually running the library profiler over the library binaries (the
// same set the explorer uses).
func profiles() []*profile.Profile { return system.DefaultProfiles() }

// header renders a table caption.
func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, "%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// binaryOf is a tiny helper alias to keep experiment files short.
type binaryOf = isa.Binary

// moduleFrameArgs builds a CallStackTrigger <args> tree matching any
// frame of the given module.
func moduleFrameArgs(module string) *trigger.Args {
	return &trigger.Args{
		Name: "args",
		Children: []*trigger.Args{{
			Name:     "frame",
			Children: []*trigger.Args{{Name: "module", Text: module}},
		}},
	}
}
