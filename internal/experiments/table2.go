package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/apps/minidb"
	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

// Table2Result reproduces Table 2: precision of three trigger scenarios
// targeting the MySQL close/double-unlock bug over repeated runs of the
// merge-big workload.
type Table2Result struct {
	Runs      int
	Random    float64 // Random (10%)
	InFile    float64 // Random (10%) within the bug's file
	AfterLock float64 // Close-after-mutex-unlock trigger
}

// String renders the table.
func (r Table2Result) String() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 2: trigger precision on the minidb close bug (%d runs each)", r.Runs))
	fmt.Fprintf(&b, "%-36s %5.0f%%\n", "Random (10%)", 100*r.Random)
	fmt.Fprintf(&b, "%-36s %5.0f%%\n", "Random (10%) within bug's file", 100*r.InFile)
	fmt.Fprintf(&b, "%-36s %5.0f%%\n", "Close after mutex unlock", 100*r.AfterLock)
	return b.String()
}

// table2Scenarios builds the three §7.1 scenarios.
func table2Scenarios() (random, inFile, afterUnlock *scenario.Scenario, err error) {
	random, err = scenario.ParseString(`<scenario name="random-close-10">
	  <trigger id="rnd" class="RandomTrigger"><args><probability>0.1</probability></args></trigger>
	  <function name="close" return="-1" errno="EIO"><reftrigger ref="rnd" /></function>
	</scenario>`)
	if err != nil {
		return
	}
	inFile, err = scenario.ParseString(fmt.Sprintf(`<scenario name="random-close-10-in-file">
	  <trigger id="rnd" class="RandomTrigger"><args><probability>0.1</probability></args></trigger>
	  <trigger id="file" class="CallStackTrigger">
	    <args><frame><file>%s</file></frame></args>
	  </trigger>
	  <function name="close" return="-1" errno="EIO">
	    <reftrigger ref="file" />
	    <reftrigger ref="rnd" />
	  </function>
	</scenario>`, minidb.MiCreateFile))
	if err != nil {
		return
	}
	afterUnlock, err = scenario.ParseString(`<scenario name="close-after-unlock-2">
	  <trigger id="cau" class="CloseAfterUnlock"><args><distance>2</distance></args></trigger>
	  <function name="pthread_mutex_unlock" return="unused" errno="unused">
	    <reftrigger ref="cau" />
	  </function>
	  <function name="close" return="-1" errno="EIO"><reftrigger ref="cau" /></function>
	</scenario>`)
	return
}

// Table2 measures how often each scenario activates the double-unlock
// bug across n runs of merge-big (the paper used 100).
func Table2(runs int) (Table2Result, error) {
	if runs <= 0 {
		runs = 100
	}
	random, inFile, afterUnlock, err := table2Scenarios()
	if err != nil {
		return Table2Result{}, err
	}
	res := Table2Result{Runs: runs}
	tgt := minidb.MergeBigTarget()
	measure := func(s *scenario.Scenario) (float64, error) {
		outs, err := controller.RunN(campaignWorkers(), runs, func(seed int) (controller.Outcome, error) {
			return controller.RunOne(tgt, s, core.WithSeed(int64(seed)))
		})
		if err != nil {
			return 0, err
		}
		hits := 0
		for _, out := range outs {
			if out.Crash != nil && out.Crash.Kind == libsim.Abort &&
				strings.Contains(out.Crash.Reason, "double unlock") {
				hits++
			}
		}
		return float64(hits) / float64(runs), nil
	}
	if res.Random, err = measure(random); err != nil {
		return res, err
	}
	if res.InFile, err = measure(inFile); err != nil {
		return res, err
	}
	if res.AfterLock, err = measure(afterUnlock); err != nil {
		return res, err
	}
	return res, nil
}
