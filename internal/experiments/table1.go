package experiments

import (
	"fmt"
	"strings"
	"time"

	"lfi/internal/apps/minidb"
	"lfi/internal/apps/minidns"
	"lfi/internal/apps/minivcs"
	"lfi/internal/callsite"
	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/libsim"
	"lfi/internal/pbft"
	"lfi/internal/scenario"
)

// Table1Result reproduces Table 1: the bugs LFI finds automatically.
type Table1Result struct {
	Bugs     []controller.Bug
	Tests    int // total test runs executed
	PerSys   map[string]int
	VCDetail string // how the PBFT view-change bug was reproduced
}

// String renders the table.
func (r Table1Result) String() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table 1: %d distinct bugs found automatically (%d test runs)", len(r.Bugs), r.Tests))
	for _, bug := range r.Bugs {
		fmt.Fprintf(&b, "%-8s %s\n", bug.System, bug.Signature)
	}
	if r.VCDetail != "" {
		fmt.Fprintf(&b, "(PBFT view-change: %s)\n", r.VCDetail)
	}
	return b.String()
}

// Table1 runs the §7.1 bug-finding campaigns:
//
//   - minivcs and minidns: the call-site analyzer's generated scenarios
//     (C_not, then C_part, then recovery-exercising scenarios for
//     checked sites), applied with no modifications;
//   - minidb: 1,000-style random injection (the paper's MySQL
//     methodology), here seeded and sized down;
//   - PBFT: the analyzer scenarios against the replica binary, plus the
//     distributed sendto/recvfrom rotation that exposes the release-
//     build view-change bug.
func Table1(quick bool) (Table1Result, error) {
	res := Table1Result{PerSys: map[string]int{}}
	profs := profiles()

	type analyzed struct {
		name   string
		bin    *binaryOf
		target func() controller.Target
	}
	targets := []analyzed{
		{minivcs.Module, firstBin(minivcs.Binary()), minivcs.Target},
		{minidns.Module, firstBin(minidns.Binary()), minidns.Target},
	}
	for _, tgt := range targets {
		a := &callsite.Analyzer{}
		rep := a.Analyze(tgt.bin, profs...)
		yes, part, not := rep.ByClass()
		scens := callsite.GenerateScenarios(tgt.bin, append(not, part...), profs...)
		scens = append(scens, callsite.GenerateExercise(tgt.bin, yes, profs...)...)
		outs, err := controller.CampaignParallel(tgt.target(), scens, campaignWorkers())
		if err != nil {
			return res, err
		}
		res.Tests += len(outs)
		bugs := controller.DistinctBugs(tgt.name, crashesOnly(outs))
		res.Bugs = append(res.Bugs, bugs...)
		res.PerSys[tgt.name] = len(bugs)
	}

	// minidb: random injection campaign.
	dbBugs, dbTests, err := minidbRandomCampaign(quick)
	if err != nil {
		return res, err
	}
	res.Tests += dbTests
	res.Bugs = append(res.Bugs, dbBugs...)
	res.PerSys[minidb.Module] = len(dbBugs)

	// PBFT: analyzer scenario for the shutdown fopen bug.
	pbftBugs, pbftTests, vcDetail, err := pbftCampaign(quick)
	if err != nil {
		return res, err
	}
	res.Tests += pbftTests
	res.Bugs = append(res.Bugs, pbftBugs...)
	res.PerSys["pbft"] = len(pbftBugs)
	res.VCDetail = vcDetail
	return res, nil
}

func firstBin(b *binaryOf, _ map[string]uint64) *binaryOf { return b }

// crashesOnly keeps abnormal terminations: a workload error means the
// program recovered gracefully from the injected fault, which Table 1
// does not count as a bug.
func crashesOnly(outs []controller.Outcome) []controller.Outcome {
	var kept []controller.Outcome
	for _, o := range outs {
		if o.Crash != nil {
			kept = append(kept, o)
		}
	}
	return kept
}

// minidbRandomCampaign mirrors §7.1's MySQL methodology: random
// injection tests targeting different libc functions, then core-dump
// (crash signature) analysis.
func minidbRandomCampaign(quick bool) ([]controller.Bug, int, error) {
	funcs := []struct {
		name   string
		retval int64
		errno  string
	}{
		{"close", -1, "EIO"},
		{"read", -1, "EIO"},
		{"open", -1, "EACCES"},
		{"write", -1, "ENOSPC"},
		{"malloc", 0, "ENOMEM"},
		{"fcntl", -1, "EBADF"},
	}
	runs := 40
	if quick {
		runs = 12
	}
	scens := make([]*scenario.Scenario, 0, len(funcs))
	for _, fn := range funcs {
		doc := fmt.Sprintf(`<scenario name="random-%s">
		  <trigger id="rnd" class="RandomTrigger"><args><probability>0.1</probability></args></trigger>
		  <function name="%s" return="%d" errno="%s"><reftrigger ref="rnd" /></function>
		</scenario>`, fn.name, fn.name, fn.retval, fn.errno)
		s, err := scenario.ParseString(doc)
		if err != nil {
			return nil, 0, err
		}
		scens = append(scens, s)
	}
	// One job per (scenario, seed) pair, spread over the worker pool;
	// job order (and thus outcome order) matches the old nested loop.
	tgt := minidb.Target()
	outs, err := controller.RunN(campaignWorkers(), len(scens)*runs, func(i int) (controller.Outcome, error) {
		s, seed := scens[i/runs], i%runs
		return controller.RunOne(tgt, s, core.WithSeed(int64(seed)))
	})
	if err != nil {
		return nil, 0, err
	}
	return controller.DistinctBugs(minidb.Module, crashesOnly(outs)), len(outs), nil
}

// pbftCampaign finds the two PBFT bugs: the shutdown-checkpoint crash
// via the analyzer-generated fopen scenario, and the view-change crash
// via distributed loss with consecutive per-replica fault bursts.
func pbftCampaign(quick bool) ([]controller.Bug, int, string, error) {
	var outs []controller.Outcome
	tests := 0

	// (a) Analyzer scenarios against the replica binary.
	bin, _ := pbft.Binary()
	a := &callsite.Analyzer{}
	rep := a.Analyze(bin, profiles()...)
	_, part, not := rep.ByClass()
	scens := callsite.GenerateScenarios(bin, append(not, part...), profiles()...)
	for _, s := range scens {
		// Run only fopen/fwrite scenarios through the full cluster
		// (sendto/recvfrom singletons are exercised by (b)).
		fn := s.Functions[0].Name
		if fn != "fopen" && fn != "fwrite" {
			continue
		}
		cl := pbft.NewCluster(1, pbft.BuildDebug)
		if err := cl.InstallScenario(s); err != nil {
			return nil, 0, "", err
		}
		if err := cl.Start(); err != nil {
			return nil, 0, "", err
		}
		cl.RunWorkload(2, time.Second)
		cl.Stop()
		tests++
		out := controller.Outcome{Scenario: s, Crash: cl.FirstCrash()}
		if len(cl.Runtimes()) > 0 {
			for _, rt := range cl.Runtimes() {
				if rt.Log().Len() > 0 {
					out.Log = rt.Log()
				}
			}
		}
		outs = append(outs, out)
	}

	// (b) The distributed rotation experiment (release build).
	crash, attempts, err := ViewChangeBugHunt(quick)
	if err != nil {
		return nil, 0, "", err
	}
	detail := fmt.Sprintf("not reproduced in %d attempts", attempts)
	if crash != nil {
		outs = append(outs, controller.Outcome{
			Scenario: &scenario.Scenario{Name: "pbft-rotation-loss"},
			Crash:    crash,
		})
		detail = fmt.Sprintf("reproduced after %d attempt(s): %s", attempts, crash.Reason)
	} else {
		// The live hunt races wall-clock view-change timeouts against
		// a lossy cluster and can starve under CPU contention (the
		// paper likewise reports the bug manifests intermittently).
		// The scripted replica harness reproduces the same crash
		// deterministically: a burst losing both the REQUEST and the
		// PRE-PREPARE leaves a commit quorum recorded without content,
		// which the NEW-VIEW then dereferences.
		out, attempt, rerr := scriptedViewChangeRepro()
		if rerr != nil {
			return nil, 0, "", rerr
		}
		tests++
		if out.Crash != nil {
			outs = append(outs, out)
			detail = fmt.Sprintf("live rotation missed in %d attempts; reproduced deterministically by %s: %s",
				attempts, attempt, out.Crash.Reason)
		}
	}
	tests += attempts
	return controller.DistinctBugs("pbft", crashesOnly(outs)), tests, detail, nil
}

// scriptedViewChangeRepro replays the deterministic trace harness under
// a recvfrom occurrence-window burst — the shape the fault-space
// explorer breeds on its own (explore-win-…-recvfrom-1-2).
func scriptedViewChangeRepro() (controller.Outcome, string, error) {
	const name = "pbft-scripted-recvfrom-burst"
	s, err := scenario.ParseString(`<scenario name="` + name + `">
	  <trigger id="w" class="CallCountTrigger"><args><from>1</from><to>2</to></args></trigger>
	  <function name="recvfrom" return="-1" errno="EINTR"><reftrigger ref="w" /></function>
	</scenario>`)
	if err != nil {
		return controller.Outcome{}, name, err
	}
	out, err := controller.RunOne(pbft.Target(), s)
	return out, name, err
}

// ViewChangeBugHunt drives the release build with bursts of consecutive
// sendto faults rotating across replicas until the view-change crash
// manifests. Returns the crash (nil if not reproduced) and the number
// of cluster runs used.
func ViewChangeBugHunt(quick bool) (*libsim.Crash, int, error) {
	// Quick mode usually reproduces within 1-2 attempts, but the hunt
	// is wall-clock sensitive (view-change timeouts race the lossy
	// workload), so a 4-attempt bound was observably flaky under the
	// race detector; 8 keeps the smoke fast and the reproduction
	// reliable.
	maxAttempts := 10
	if quick {
		maxAttempts = 8
	}
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		// p=0.9 per sendto call: with the release build's bounded
		// resend (9 calls per message) the per-message loss is
		// ~0.9^9 ≈ 39%, enough for a replica to permanently miss a
		// pre-prepare while the commit quorum still reaches it.
		doc := fmt.Sprintf(`<scenario name="rotation-%d">
		  <trigger id="p" class="RandomTrigger"><args><probability>0.9</probability></args></trigger>
		  <function name="sendto" return="-1" errno="EHOSTUNREACH"><reftrigger ref="p" /></function>
		</scenario>`, attempt)
		s, err := scenario.ParseString(doc)
		if err != nil {
			return nil, attempt, err
		}
		cl := pbft.NewCluster(1, pbft.BuildRelease)
		if err := cl.InstallScenario(s, core.WithSeed(int64(attempt*7))); err != nil {
			return nil, attempt, err
		}
		// The client's datagrams are part of the lossy network too:
		// dropping a REQUEST towards one replica is what leaves that
		// replica without the content behind a commit quorum.
		clientLoss, err := scenario.ParseString(`<scenario name="client-loss">
		  <trigger id="p" class="RandomTrigger"><args><probability>0.5</probability></args></trigger>
		  <function name="sendto" return="-1" errno="EHOSTUNREACH"><reftrigger ref="p" /></function>
		</scenario>`)
		if err != nil {
			return nil, attempt, err
		}
		crt, err := core.New(cl.Client.C, clientLoss, core.WithSeed(int64(attempt*13)))
		if err != nil {
			return nil, attempt, err
		}
		crt.Install()
		if err := cl.Start(); err != nil {
			return nil, attempt, err
		}
		cl.RunWorkload(8, 400*time.Millisecond)
		time.Sleep(300 * time.Millisecond) // let view changes play out
		crt.Uninstall()
		var crash *libsim.Crash
		for _, c := range cl.Crashes() {
			if c != nil && strings.Contains(c.Reason, "view change") {
				crash = c
			}
		}
		cl.Stop()
		if crash != nil {
			return crash, attempt, nil
		}
	}
	return nil, maxAttempts, nil
}
