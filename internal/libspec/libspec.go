// Package libspec is the single source of truth for the simulated
// shared libraries' error behaviour.
//
// From these specs the assembler builds library binaries (whose error
// paths genuinely set errno and return error constants), the profiler
// re-derives fault profiles, and the runtime libsim implementations
// agree on return values and errno codes. Keeping the three consumers on
// one spec is the analogue of LFI profiling the very libc.so the target
// program will run against.
package libspec

import (
	"lfi/internal/asm"
	"lfi/internal/errno"
	"lfi/internal/isa"
)

func e(list ...errno.Errno) []int64 {
	out := make([]int64, len(list))
	for i, x := range list {
		out[i] = int64(x)
	}
	return out
}

// Libc describes the modelled slice of GNU libc.
func Libc() []asm.LibFuncSpec {
	return []asm.LibFuncSpec{
		{Name: "read", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINTR, errno.EIO, errno.EAGAIN, errno.EBADF)},
			{Ret: 0}, // end-of-file: no errno, but callers must handle it
		}},
		{Name: "write", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINTR, errno.EIO, errno.ENOSPC, errno.EPIPE, errno.EBADF)},
		}},
		{Name: "open", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.ENOENT, errno.EACCES, errno.EMFILE, errno.EINTR)},
		}},
		{Name: "close", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EBADF, errno.EIO, errno.EINTR)},
		}},
		{Name: "unlink", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.ENOENT, errno.EACCES, errno.EBUSY)},
		}},
		{Name: "mkdir", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EEXIST, errno.EACCES, errno.ENOSPC)},
		}},
		{Name: "stat", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.ENOENT, errno.EACCES)},
		}},
		{Name: "fstat", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EBADF)},
		}},
		{Name: "lseek", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EBADF, errno.EINVAL)},
		}},
		{Name: "malloc", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.ENOMEM)},
		}},
		{Name: "calloc", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.ENOMEM)},
		}},
		{Name: "fopen", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.ENOENT, errno.EACCES, errno.EMFILE, errno.EINVAL)},
		}},
		{Name: "fclose", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EBADF, errno.EIO)},
		}},
		{Name: "fread", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.EIO)},
		}},
		{Name: "fwrite", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.EIO, errno.ENOSPC)},
		}},
		{Name: "opendir", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.ENOENT, errno.ENOMEM, errno.ENOTDIR)},
		}},
		{Name: "readdir", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.EBADF)},
		}},
		{Name: "readlink", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINVAL, errno.ENOENT, errno.EACCES)},
		}},
		{Name: "setenv", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.ENOMEM, errno.EINVAL)},
		}},
		{Name: "fcntl", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EBADF, errno.EINVAL, errno.EAGAIN)},
		}},
		{Name: "socket", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EMFILE, errno.ENOMEM)},
		}},
		{Name: "bind", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EACCES, errno.EINVAL)},
		}},
		{Name: "sendto", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINTR, errno.EAGAIN, errno.ECONNREFUSED, errno.EHOSTUNREACH)},
		}},
		{Name: "recvfrom", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINTR, errno.EAGAIN, errno.ECONNRESET, errno.ETIMEDOUT)},
		}},
		{Name: "pipe", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EMFILE, errno.ENFILE)},
		}},
		{Name: "pthread_mutex_lock", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINVAL)},
		}},
		{Name: "pthread_mutex_unlock", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINVAL)},
		}},
	}
}

// Libxml describes the modelled slice of libxml2.
func Libxml() []asm.LibFuncSpec {
	return []asm.LibFuncSpec{
		{Name: "xmlNewTextWriterDoc", ComputedSuccess: true, Errors: []asm.ErrorReturn{
			{Ret: 0, SetsErrno: true, Errnos: e(errno.ENOMEM)},
		}},
		{Name: "xmlTextWriterWriteElement", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: -1, SetsErrno: true, Errnos: e(errno.EINVAL)},
		}},
	}
}

// Libapr describes the modelled slice of the Apache Portable Runtime.
func Libapr() []asm.LibFuncSpec {
	return []asm.LibFuncSpec{
		{Name: "apr_file_read", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: int64(errno.EINTR), SetsErrno: true, Errnos: e(errno.EINTR)},
			{Ret: int64(errno.EIO), SetsErrno: true, Errnos: e(errno.EIO)},
		}},
		{Name: "apr_stat", Success: 0, Errors: []asm.ErrorReturn{
			{Ret: int64(errno.EBADF), SetsErrno: true, Errnos: e(errno.EBADF)},
		}},
	}
}

// BuildLibc assembles the libc binary.
func BuildLibc() *isa.Binary { return mustBuild("libc", Libc()) }

// BuildLibxml assembles the libxml binary.
func BuildLibxml() *isa.Binary { return mustBuild("libxml", Libxml()) }

// BuildLibapr assembles the apr binary.
func BuildLibapr() *isa.Binary { return mustBuild("libapr", Libapr()) }

func mustBuild(name string, funcs []asm.LibFuncSpec) *isa.Binary {
	b, err := asm.BuildLibrary(name, funcs)
	if err != nil {
		panic("libspec: " + err.Error())
	}
	return b
}
