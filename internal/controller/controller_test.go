package controller

import (
	"errors"
	"strings"
	"testing"

	"lfi/internal/errno"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

// toyTarget reads a file; with injection the read fails and, in buggy
// mode, the program dereferences a NULL pointer afterwards.
func toyTarget(buggy bool) Target {
	return Target{
		Name: "toy",
		Start: func() *libsim.C {
			c := libsim.New(1 << 16)
			c.MustWriteFile("/f", []byte("data"))
			return c
		},
		Workload: func(c *libsim.C) error {
			th := c.NewThread("toy", "main")
			fd := th.Open("/f", libsim.O_RDONLY)
			buf := make([]byte, 4)
			if th.Read(fd, buf) < 0 {
				if buggy {
					th.Deref(0) // crash
				}
				return errors.New("read failed")
			}
			return nil
		},
	}
}

func injectRead(t *testing.T) *scenario.Scenario {
	t.Helper()
	s, err := scenario.ParseString(`<scenario name="fail-read">
	  <trigger id="a" class="CallCountTrigger"><args><n>1</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="a" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunOneCleanRun(t *testing.T) {
	out, err := RunOne(toyTarget(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() || out.Injections != 0 {
		t.Fatalf("outcome %v", out)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("String: %s", out.String())
	}
}

func TestRunOneWorkloadError(t *testing.T) {
	out, err := RunOne(toyTarget(false), injectRead(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil || out.WorkErr == nil || out.Injections != 1 {
		t.Fatalf("outcome %v", out)
	}
}

func TestRunOneCrashObserved(t *testing.T) {
	out, err := RunOne(toyTarget(true), injectRead(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.Segfault {
		t.Fatalf("outcome %v", out)
	}
	if out.Log == nil || out.Log.Len() != 1 {
		t.Fatal("injection log missing")
	}
	if !strings.Contains(out.String(), "CRASH") {
		t.Fatalf("String: %s", out.String())
	}
}

func TestRunOneInvalidScenario(t *testing.T) {
	bad := &scenario.Scenario{Functions: []scenario.FunctionAssoc{{Name: "read"}}}
	if _, err := RunOne(toyTarget(false), bad); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestCampaignCollectsAllOutcomes(t *testing.T) {
	outs, err := Campaign(toyTarget(true), []*scenario.Scenario{injectRead(t), injectRead(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	bugs := DistinctBugs("toy", outs)
	if len(bugs) != 1 {
		t.Fatalf("bugs %v", bugs)
	}
	if len(bugs[0].Scenarios) != 2 {
		t.Fatalf("bug scenarios %v", bugs[0].Scenarios)
	}
}

func TestDistinctBugsSeparatesSignatures(t *testing.T) {
	outs := []Outcome{
		{Crash: &libsim.Crash{Kind: libsim.Segfault, Reason: "a"}},
		{Crash: &libsim.Crash{Kind: libsim.Abort, Reason: "b"}},
		{WorkErr: errors.New("c")},
		{}, // clean: ignored
	}
	bugs := DistinctBugs("x", outs)
	if len(bugs) != 3 {
		t.Fatalf("bugs %v", bugs)
	}
}

func TestNonCrashPanicPropagates(t *testing.T) {
	tgt := Target{
		Name:     "panicky",
		Start:    func() *libsim.C { return libsim.New(0) },
		Workload: func(*libsim.C) error { panic("logic bug") },
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-crash panic was swallowed")
		}
	}()
	RunOne(tgt, nil)
}

func TestErrnoUnusedInjection(t *testing.T) {
	// return set, errno "unused": the errno must be left alone.
	s, err := scenario.ParseString(`<scenario>
	  <trigger id="a" class="CallCountTrigger"><args><n>1</n></args></trigger>
	  <function name="read" return="-1" errno="unused"><reftrigger ref="a" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{
		Name:  "t",
		Start: func() *libsim.C { c := libsim.New(0); c.MustWriteFile("/f", []byte("x")); return c },
		Workload: func(c *libsim.C) error {
			th := c.NewThread("t", "m")
			th.SetErrno(errno.EBUSY)
			fd := th.Open("/f", libsim.O_RDONLY)
			if th.Read(fd, make([]byte, 1)) != -1 {
				return errors.New("not injected")
			}
			if th.Errno() != errno.EBUSY {
				return errors.New("errno clobbered: " + th.Errno().String())
			}
			return nil
		},
	}
	out, err := RunOne(tgt, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("outcome %v", out)
	}
}
