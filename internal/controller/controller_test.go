package controller

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lfi/internal/core"
	"lfi/internal/errno"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

// toyTarget reads a file; with injection the read fails and, in buggy
// mode, the program dereferences a NULL pointer afterwards.
func toyTarget(buggy bool) Target {
	return Target{
		Name: "toy",
		Start: func() (*libsim.C, func() error) {
			c := libsim.New(1 << 16)
			c.MustWriteFile("/f", []byte("data"))
			return c, func() error {
				th := c.NewThread("toy", "main")
				fd := th.Open("/f", libsim.O_RDONLY)
				buf := make([]byte, 4)
				if th.Read(fd, buf) < 0 {
					if buggy {
						th.Deref(0) // crash
					}
					return errors.New("read failed")
				}
				return nil
			}
		},
	}
}

func injectRead(t *testing.T) *scenario.Scenario {
	t.Helper()
	s, err := scenario.ParseString(`<scenario name="fail-read">
	  <trigger id="a" class="CallCountTrigger"><args><n>1</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="a" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunOneCleanRun(t *testing.T) {
	out, err := RunOne(toyTarget(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() || out.Injections != 0 {
		t.Fatalf("outcome %v", out)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("String: %s", out.String())
	}
}

func TestRunOneWorkloadError(t *testing.T) {
	out, err := RunOne(toyTarget(false), injectRead(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil || out.WorkErr == nil || out.Injections != 1 {
		t.Fatalf("outcome %v", out)
	}
}

func TestRunOneCrashObserved(t *testing.T) {
	out, err := RunOne(toyTarget(true), injectRead(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Kind != libsim.Segfault {
		t.Fatalf("outcome %v", out)
	}
	if out.Log == nil || out.Log.Len() != 1 {
		t.Fatal("injection log missing")
	}
	if !strings.Contains(out.String(), "CRASH") {
		t.Fatalf("String: %s", out.String())
	}
}

func TestRunOneInvalidScenario(t *testing.T) {
	bad := &scenario.Scenario{Functions: []scenario.FunctionAssoc{{Name: "read"}}}
	if _, err := RunOne(toyTarget(false), bad); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestCampaignCollectsAllOutcomes(t *testing.T) {
	outs, err := Campaign(toyTarget(true), []*scenario.Scenario{injectRead(t), injectRead(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outcomes", len(outs))
	}
	bugs := DistinctBugs("toy", outs)
	if len(bugs) != 1 {
		t.Fatalf("bugs %v", bugs)
	}
	if len(bugs[0].Scenarios) != 2 {
		t.Fatalf("bug scenarios %v", bugs[0].Scenarios)
	}
}

// randomRead builds a scenario whose RandomTrigger makes outcomes
// seed-dependent, so sequential/parallel divergence would be visible.
func randomRead(t *testing.T, name string, p float64) *scenario.Scenario {
	t.Helper()
	s, err := scenario.ParseString(fmt.Sprintf(`<scenario name="%s">
	  <trigger id="rnd" class="RandomTrigger"><args><probability>%g</probability></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="rnd" /></function>
	</scenario>`, name, p))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// outcomeKey flattens everything deterministic about an outcome (it
// drops only Elapsed, which is wall-clock).
func outcomeKey(o Outcome) string {
	logStr := ""
	if o.Log != nil {
		logStr = o.Log.String()
	}
	crash := ""
	if o.Crash != nil {
		crash = fmt.Sprintf("%s:%s:t%d", o.Crash.Kind, o.Crash.Reason, o.Crash.Thread)
	}
	return fmt.Sprintf("%s|%v|%s|%d|%s", o.Scenario.Name, o.WorkErr, crash, o.Injections, logStr)
}

func TestCampaignParallelMatchesSequential(t *testing.T) {
	var scens []*scenario.Scenario
	for i, p := range []float64{0, 0.3, 0.5, 0.9, 1, 0.7, 0.2, 0.4} {
		scens = append(scens, randomRead(t, fmt.Sprintf("rnd-%d", i), p))
	}
	seq, err := Campaign(toyTarget(true), scens, core.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	par, err := CampaignParallel(toyTarget(true), scens, 8, core.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("outcome counts: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if a, b := outcomeKey(seq[i]), outcomeKey(par[i]); a != b {
			t.Fatalf("outcome %d diverges:\nsequential: %s\nparallel:   %s", i, a, b)
		}
	}
	sb, pb := DistinctBugs("toy", seq), DistinctBugs("toy", par)
	if fmt.Sprintf("%+v", sb) != fmt.Sprintf("%+v", pb) {
		t.Fatalf("DistinctBugs diverge:\n%+v\n%+v", sb, pb)
	}
}

func TestRunNOrderAndError(t *testing.T) {
	// Outcomes come back in index order regardless of completion order.
	outs, err := RunN(4, 16, func(i int) (Outcome, error) {
		return Outcome{Injections: i}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Injections != i {
			t.Fatalf("slot %d holds run %d", i, o.Injections)
		}
	}
	// The smallest failing index wins, and outcomes below it survive,
	// mirroring the sequential contract.
	boom := errors.New("boom")
	outs, err = RunN(4, 16, func(i int) (Outcome, error) {
		if i >= 5 {
			return Outcome{}, boom
		}
		return Outcome{Injections: i}, nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if len(outs) != 5 {
		t.Fatalf("%d outcomes survive, want 5", len(outs))
	}
}

func TestRunNContextCancellation(t *testing.T) {
	// A pre-cancelled context runs nothing, sequentially and on a pool.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		outs, err := RunNContext(ctx, workers, 16, func(i int) (Outcome, error) {
			return Outcome{Injections: i}, nil
		})
		if err != context.Canceled || len(outs) != 0 {
			t.Fatalf("workers=%d: %d outcomes, err=%v; want 0, context.Canceled", workers, len(outs), err)
		}
	}

	// Cancelling mid-run: in-flight tests finish, no new test starts,
	// and the contiguous completed prefix comes back with ctx.Err().
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	outs, err := RunNContext(ctx, 2, 64, func(i int) (Outcome, error) {
		if i == 7 {
			cancel()
		}
		return Outcome{Injections: i}, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(outs) == 0 || len(outs) >= 64 {
		t.Fatalf("%d outcomes, want a proper prefix", len(outs))
	}
	for i, o := range outs {
		if o.Injections != i {
			t.Fatalf("prefix slot %d holds run %d", i, o.Injections)
		}
	}
}

func TestCampaignParallelWorkersClamped(t *testing.T) {
	// More workers than scenarios, and the degenerate 0/1-worker path.
	for _, workers := range []int{0, 1, 64} {
		outs, err := CampaignParallel(toyTarget(false), []*scenario.Scenario{injectRead(t), injectRead(t)}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 2 {
			t.Fatalf("workers=%d: %d outcomes", workers, len(outs))
		}
	}
}

func TestDistinctBugsSeparatesSignatures(t *testing.T) {
	outs := []Outcome{
		{Crash: &libsim.Crash{Kind: libsim.Segfault, Reason: "a"}},
		{Crash: &libsim.Crash{Kind: libsim.Abort, Reason: "b"}},
		{WorkErr: errors.New("c")},
		{}, // clean: ignored
	}
	bugs := DistinctBugs("x", outs)
	if len(bugs) != 3 {
		t.Fatalf("bugs %v", bugs)
	}
}

func TestNonCrashPanicPropagates(t *testing.T) {
	tgt := Target{
		Name: "panicky",
		Start: func() (*libsim.C, func() error) {
			return libsim.New(0), func() error { panic("logic bug") }
		},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-crash panic was swallowed")
		}
	}()
	RunOne(tgt, nil)
}

func TestNonCrashPanicPropagatesParallel(t *testing.T) {
	// A workload logic-bug panic on a pool worker must re-raise on the
	// caller's goroutine (a worker panic would kill the process).
	defer func() {
		if r := recover(); r != "logic bug" {
			t.Fatalf("recovered %v, want the workload's panic value", r)
		}
	}()
	RunN(4, 8, func(i int) (Outcome, error) {
		if i == 5 {
			panic("logic bug")
		}
		return Outcome{}, nil
	})
	t.Fatal("panic swallowed by the worker pool")
}

func TestErrnoUnusedInjection(t *testing.T) {
	// return set, errno "unused": the errno must be left alone.
	s, err := scenario.ParseString(`<scenario>
	  <trigger id="a" class="CallCountTrigger"><args><n>1</n></args></trigger>
	  <function name="read" return="-1" errno="unused"><reftrigger ref="a" /></function>
	</scenario>`)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{
		Name: "t",
		Start: func() (*libsim.C, func() error) {
			c := libsim.New(0)
			c.MustWriteFile("/f", []byte("x"))
			return c, func() error {
				th := c.NewThread("t", "m")
				th.SetErrno(errno.EBUSY)
				fd := th.Open("/f", libsim.O_RDONLY)
				if th.Read(fd, make([]byte, 1)) != -1 {
					return errors.New("not injected")
				}
				if th.Errno() != errno.EBUSY {
					return errors.New("errno clobbered: " + th.Errno().String())
				}
				return nil
			}
		},
	}
	out, err := RunOne(tgt, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed() {
		t.Fatalf("outcome %v", out)
	}
}
