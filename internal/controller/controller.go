// Package controller orchestrates fault-injection test campaigns — the
// LFI controller of §2.
//
// Given a target (how to start the program under test and how to
// exercise it) and a set of injection scenarios, the controller runs one
// test per scenario: it builds a fresh process image, compiles and
// installs the scenario's runtime, invokes the workload script, monitors
// whether the program terminates normally or abnormally (crash kind and
// reason), and collects the injection log for diagnosis and replay.
//
// Tests in a campaign are independent by construction (each run gets its
// own process image and runtime), so campaigns can execute on a worker
// pool: CampaignParallel distributes runs across workers and still
// returns outcomes in scenario order, byte-identical to the sequential
// Campaign under a fixed seed.
package controller

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lfi/internal/core"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

// Target describes one program under test.
type Target struct {
	// Name identifies the system (e.g. "minivcs").
	Name string
	// Start builds a fresh process image with fixtures staged and
	// returns the workload (the developer-provided script) bound to
	// that image. It is called once per test, so runs are independent;
	// it must be safe to call from concurrent campaign workers. A
	// workload error marks workload-detected misbehaviour that is not
	// a crash (e.g. wrong output).
	Start func() (*libsim.C, func() error)
	// Recycle, when non-nil, takes the process image back after the
	// run's outcome has been fully captured and the runtime detached.
	// Pooled targets reset and reuse the image for a later Start; the
	// controller guarantees nothing still references it. Targets
	// without Recycle keep the one-image-per-run behaviour.
	Recycle func(*libsim.C)
}

// Outcome is the observed result of one test run.
type Outcome struct {
	Scenario   *scenario.Scenario
	Crash      *libsim.Crash // non-nil on abnormal termination
	WorkErr    error         // workload-detected failure (not a crash)
	Injections int
	Log        *core.Log
	Elapsed    time.Duration
}

// Failed reports whether the run ended abnormally in any way.
func (o Outcome) Failed() bool { return o.Crash != nil || o.WorkErr != nil }

// String summarizes the outcome in one line.
func (o Outcome) String() string {
	name := "<none>"
	if o.Scenario != nil {
		name = o.Scenario.Name
	}
	switch {
	case o.Crash != nil:
		return fmt.Sprintf("%-50s %s (%s) after %d injections", name, "CRASH", o.Crash.Kind, o.Injections)
	case o.WorkErr != nil:
		return fmt.Sprintf("%-50s FAIL: %v (%d injections)", name, o.WorkErr, o.Injections)
	default:
		return fmt.Sprintf("%-50s ok (%d injections)", name, o.Injections)
	}
}

// RunOne executes a single test: fresh process, scenario installed,
// workload run under crash monitoring.
func RunOne(tgt Target, s *scenario.Scenario, opts ...core.Option) (Outcome, error) {
	begin := time.Now()
	proc, workload := tgt.Start()
	out := Outcome{Scenario: s}
	var rt *core.Runtime
	if s != nil {
		var err error
		rt, err = core.New(proc, s, opts...)
		if err != nil {
			if tgt.Recycle != nil {
				tgt.Recycle(proc)
			}
			return out, err
		}
		rt.Install()
	}
	out.Crash, out.WorkErr = monitor(workload)
	// Teardown order matters for pooled targets: capture everything the
	// outcome needs, detach the runtime from the dispatcher, release the
	// runtime for reuse, and only then hand the image back — once
	// Recycle returns, another worker may reset and reuse it. (A panic
	// that escapes monitor skips recycling; the pool just loses one
	// image.)
	if rt != nil {
		out.Injections = int(rt.Injections())
		out.Log = rt.Log()
		rt.Uninstall()
		rt.Release()
	}
	if tgt.Recycle != nil {
		tgt.Recycle(proc)
	}
	out.Elapsed = time.Since(begin)
	return out, nil
}

// monitor runs the workload and converts simulated crashes (panics
// carrying *libsim.Crash) into observations, re-raising anything else.
func monitor(workload func() error) (crash *libsim.Crash, werr error) {
	defer func() {
		if r := recover(); r != nil {
			if cr, ok := r.(*libsim.Crash); ok {
				crash = cr
				return
			}
			panic(r)
		}
	}()
	werr = workload()
	return
}

// Campaign runs one test per scenario and returns all outcomes.
func Campaign(tgt Target, scenarios []*scenario.Scenario, opts ...core.Option) ([]Outcome, error) {
	outcomes := make([]Outcome, 0, len(scenarios))
	for _, s := range scenarios {
		o, err := RunOne(tgt, s, opts...)
		if err != nil {
			return outcomes, fmt.Errorf("controller: scenario %q: %w", s.Name, err)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// RunN executes n independent test runs on a pool of workers and returns
// their outcomes in index order. run(i) performs the i-th test (a RunOne
// with the i-th scenario or seed). If any run errors or panics, RunN
// mirrors the sequential contract: the error or panic at the smallest
// failing index wins — errors come back with the outcomes of every run
// below that index, and panics (a workload logic bug escaping the crash
// monitor) re-raise on the caller's goroutine instead of killing the
// process from a worker.
func RunN(workers, n int, run func(i int) (Outcome, error)) ([]Outcome, error) {
	return RunNContext(context.Background(), workers, n, run)
}

// RunNContext is RunN under a context. Cancellation is cooperative at
// run granularity: in-flight tests finish (a test never observes a torn
// process image), no new test starts afterwards, and the call returns
// the contiguous prefix of completed outcomes together with ctx.Err().
func RunNContext(ctx context.Context, workers, n int, run func(i int) (Outcome, error)) ([]Outcome, error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		outcomes := make([]Outcome, 0, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return outcomes, err
			}
			o, err := run(i)
			if err != nil {
				return outcomes, err
			}
			outcomes = append(outcomes, o)
		}
		return outcomes, nil
	}
	outcomes := make([]Outcome, n)
	done := make([]bool, n)
	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					outcomes[i], errs[i] = run(i)
					done[i] = true
				}()
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(panics[i])
		}
		if !done[i] {
			// Only cancellation leaves gaps; report the prefix.
			return outcomes[:i], ctx.Err()
		}
		if errs[i] != nil {
			return outcomes[:i], errs[i]
		}
	}
	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	return outcomes, nil
}

// CampaignParallel is Campaign on a worker pool: one test per scenario,
// executed by up to workers goroutines, with outcomes returned in
// scenario order. Runs are independent (fresh process image and runtime
// each), so with a fixed seed the result is identical to the sequential
// Campaign. workers <= 1 degrades to the sequential path.
func CampaignParallel(tgt Target, scenarios []*scenario.Scenario, workers int, opts ...core.Option) ([]Outcome, error) {
	return CampaignParallelContext(context.Background(), tgt, scenarios, workers, opts...)
}

// CampaignParallelContext is CampaignParallel under a context: on
// cancellation, in-flight tests finish, no new test starts, and the
// contiguous prefix of completed outcomes comes back with ctx.Err().
func CampaignParallelContext(ctx context.Context, tgt Target, scenarios []*scenario.Scenario, workers int, opts ...core.Option) ([]Outcome, error) {
	return RunNContext(ctx, workers, len(scenarios), func(i int) (Outcome, error) {
		o, err := RunOne(tgt, scenarios[i], opts...)
		if err != nil {
			return o, fmt.Errorf("controller: scenario %q: %w", scenarios[i].Name, err)
		}
		return o, nil
	})
}

// workloadPrefix marks signatures of workload-detected failures (the
// program recovered gracefully; no abnormal termination).
const workloadPrefix = "workload: "

// Bug is a distinct failure discovered by a campaign, deduplicated by
// failure signature (crash kind + reason, or workload error text).
type Bug struct {
	System    string
	Signature string
	Scenarios []string // scenarios that reproduced it
}

// IsCrash reports whether the signature records an abnormal termination
// rather than a workload-detected failure.
func (b Bug) IsCrash() bool { return !strings.HasPrefix(b.Signature, workloadPrefix) }

// FailureSignature computes the deduplication signature of a failed
// outcome. The signature combines the failure (crash kind + reason, or
// workload error) with the causal injection — the function and program
// call site of the last fault injected before the failure. This is how
// the paper's developers connect injections to bug manifestations via
// the LFI log, and it distinguishes e.g. Git's three unchecked-malloc
// crashes, which share a reason but live at different source locations.
// ok is false for a passing run.
func FailureSignature(o Outcome) (sig string, ok bool) {
	if !o.Failed() {
		return "", false
	}
	if o.Crash != nil {
		sig = fmt.Sprintf("%s: %s", o.Crash.Kind, o.Crash.Reason)
	} else {
		sig = workloadPrefix + o.WorkErr.Error()
	}
	if o.Crash != nil && o.Log != nil {
		if last, ok := o.Log.Last(); ok {
			site := ""
			if len(last.Stack) > 0 {
				f := last.Stack[len(last.Stack)-1]
				site = fmt.Sprintf("%s+%#x", f.Module, f.Offset)
			}
			sig += fmt.Sprintf(" [inject %s at %s]", last.Func, site)
		}
	}
	return sig, true
}

// DistinctBugs deduplicates campaign failures into the Table 1 shape,
// grouping outcomes by FailureSignature.
func DistinctBugs(system string, outcomes []Outcome) []Bug {
	bySig := map[string]*Bug{}
	for _, o := range outcomes {
		sig, failed := FailureSignature(o)
		if !failed {
			continue
		}
		b, ok := bySig[sig]
		if !ok {
			b = &Bug{System: system, Signature: sig}
			bySig[sig] = b
		}
		if o.Scenario != nil {
			b.Scenarios = append(b.Scenarios, o.Scenario.Name)
		}
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	out := make([]Bug, 0, len(sigs))
	for _, s := range sigs {
		out = append(out, *bySig[s])
	}
	return out
}
