// Package controller orchestrates fault-injection test campaigns — the
// LFI controller of §2.
//
// Given a target (how to start the program under test and how to
// exercise it) and a set of injection scenarios, the controller runs one
// test per scenario: it builds a fresh process image, compiles and
// installs the scenario's runtime, invokes the workload script, monitors
// whether the program terminates normally or abnormally (crash kind and
// reason), and collects the injection log for diagnosis and replay.
package controller

import (
	"fmt"
	"sort"
	"time"

	"lfi/internal/core"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
)

// Target describes one program under test.
type Target struct {
	// Name identifies the system (e.g. "minivcs").
	Name string
	// Start builds a fresh process image with fixtures staged; it is
	// called once per test so runs are independent.
	Start func() *libsim.C
	// Workload exercises the program (the developer-provided script).
	// A returned error marks workload-detected misbehaviour that is
	// not a crash (e.g. wrong output).
	Workload func(c *libsim.C) error
}

// Outcome is the observed result of one test run.
type Outcome struct {
	Scenario   *scenario.Scenario
	Crash      *libsim.Crash // non-nil on abnormal termination
	WorkErr    error         // workload-detected failure (not a crash)
	Injections int
	Log        *core.Log
	Elapsed    time.Duration
}

// Failed reports whether the run ended abnormally in any way.
func (o Outcome) Failed() bool { return o.Crash != nil || o.WorkErr != nil }

// String summarizes the outcome in one line.
func (o Outcome) String() string {
	name := "<none>"
	if o.Scenario != nil {
		name = o.Scenario.Name
	}
	switch {
	case o.Crash != nil:
		return fmt.Sprintf("%-50s %s (%s) after %d injections", name, "CRASH", o.Crash.Kind, o.Injections)
	case o.WorkErr != nil:
		return fmt.Sprintf("%-50s FAIL: %v (%d injections)", name, o.WorkErr, o.Injections)
	default:
		return fmt.Sprintf("%-50s ok (%d injections)", name, o.Injections)
	}
}

// RunOne executes a single test: fresh process, scenario installed,
// workload run under crash monitoring.
func RunOne(tgt Target, s *scenario.Scenario, opts ...core.Option) (Outcome, error) {
	begin := time.Now()
	proc := tgt.Start()
	out := Outcome{Scenario: s}
	var rt *core.Runtime
	if s != nil {
		var err error
		rt, err = core.New(proc, s, opts...)
		if err != nil {
			return out, err
		}
		rt.Install()
		defer rt.Uninstall()
	}
	out.Crash, out.WorkErr = monitor(proc, tgt.Workload)
	if rt != nil {
		out.Injections = int(rt.Injections())
		out.Log = rt.Log()
	}
	out.Elapsed = time.Since(begin)
	return out, nil
}

// monitor runs the workload and converts simulated crashes (panics
// carrying *libsim.Crash) into observations, re-raising anything else.
func monitor(c *libsim.C, workload func(*libsim.C) error) (crash *libsim.Crash, werr error) {
	defer func() {
		if r := recover(); r != nil {
			if cr, ok := r.(*libsim.Crash); ok {
				crash = cr
				return
			}
			panic(r)
		}
	}()
	werr = workload(c)
	return
}

// Campaign runs one test per scenario and returns all outcomes.
func Campaign(tgt Target, scenarios []*scenario.Scenario, opts ...core.Option) ([]Outcome, error) {
	outcomes := make([]Outcome, 0, len(scenarios))
	for _, s := range scenarios {
		o, err := RunOne(tgt, s, opts...)
		if err != nil {
			return outcomes, fmt.Errorf("controller: scenario %q: %w", s.Name, err)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// Bug is a distinct failure discovered by a campaign, deduplicated by
// failure signature (crash kind + reason, or workload error text).
type Bug struct {
	System    string
	Signature string
	Scenarios []string // scenarios that reproduced it
}

// DistinctBugs deduplicates campaign failures into the Table 1 shape.
// The signature combines the failure (crash kind + reason, or workload
// error) with the causal injection — the function and program call site
// of the last fault injected before the failure. This is how the paper's
// developers connect injections to bug manifestations via the LFI log,
// and it distinguishes e.g. Git's three unchecked-malloc crashes, which
// share a reason but live at different source locations.
func DistinctBugs(system string, outcomes []Outcome) []Bug {
	bySig := map[string]*Bug{}
	for _, o := range outcomes {
		if !o.Failed() {
			continue
		}
		var sig string
		if o.Crash != nil {
			sig = fmt.Sprintf("%s: %s", o.Crash.Kind, o.Crash.Reason)
		} else {
			sig = "workload: " + o.WorkErr.Error()
		}
		if o.Crash != nil && o.Log != nil {
			if recs := o.Log.Records(); len(recs) > 0 {
				last := recs[len(recs)-1]
				site := ""
				if len(last.Stack) > 0 {
					f := last.Stack[len(last.Stack)-1]
					site = fmt.Sprintf("%s+%#x", f.Module, f.Offset)
				}
				sig += fmt.Sprintf(" [inject %s at %s]", last.Func, site)
			}
		}
		b, ok := bySig[sig]
		if !ok {
			b = &Bug{System: system, Signature: sig}
			bySig[sig] = b
		}
		if o.Scenario != nil {
			b.Scenarios = append(b.Scenarios, o.Scenario.Name)
		}
	}
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	out := make([]Bug, 0, len(sigs))
	for _, s := range sigs {
		out = append(out, *bySig[s])
	}
	return out
}
