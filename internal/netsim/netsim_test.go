package netsim

import (
	"testing"
	"time"

	"lfi/internal/errno"
)

func TestSendReceive(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	if e := a.Bind("A"); e != errno.OK {
		t.Fatal(e)
	}
	if e := b.Bind("B"); e != errno.OK {
		t.Fatal(e)
	}
	if e := a.SendTo("B", []byte("hi")); e != errno.OK {
		t.Fatal(e)
	}
	payload, from, e := b.RecvFrom(100)
	if e != errno.OK || string(payload) != "hi" || from != "A" {
		t.Fatalf("recv %q from %q e=%v", payload, from, e)
	}
}

func TestUnknownDestinationUnreachable(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	a.Bind("A")
	if e := a.SendTo("ghost", []byte("x")); e != errno.EHOSTUNREACH {
		t.Fatalf("e = %v", e)
	}
}

func TestRecvTimeout(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	a.Bind("A")
	start := time.Now()
	_, _, e := a.RecvFrom(20)
	if e != errno.ETIMEDOUT {
		t.Fatalf("e = %v", e)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
}

func TestRecvPoll(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	a.Bind("A")
	if _, _, e := a.RecvFrom(0); e != errno.EAGAIN {
		t.Fatalf("poll on empty queue: %v", e)
	}
}

func TestDoubleBindRejected(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	a.Bind("X")
	if e := b.Bind("X"); e != errno.EACCES {
		t.Fatalf("double bind: %v", e)
	}
}

func TestCloseUnbinds(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	a.Bind("X")
	a.Close()
	b := n.NewEndpoint()
	if e := b.Bind("X"); e != errno.OK {
		t.Fatalf("rebind after close: %v", e)
	}
	a.Close() // double close is a no-op
}

func TestQueueOverflowDropsSilently(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	a.Bind("A")
	b.Bind("B")
	for i := 0; i < queueDepth+10; i++ {
		if e := a.SendTo("B", []byte{byte(i)}); e != errno.OK {
			t.Fatalf("send %d: %v", i, e)
		}
	}
	if got := b.(*Endpoint).Pending(); got != queueDepth {
		t.Fatalf("pending %d", got)
	}
}

func TestPayloadCopied(t *testing.T) {
	n := New()
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	a.Bind("A")
	b.Bind("B")
	buf := []byte("orig")
	a.SendTo("B", buf)
	buf[0] = 'X' // mutate after send
	payload, _, _ := b.RecvFrom(100)
	if string(payload) != "orig" {
		t.Fatal("payload aliased sender buffer")
	}
}
