// Package netsim provides the in-memory datagram network underneath the
// simulated socket calls.
//
// It deliberately models a *reliable* transport: all loss, delay, and
// partition behaviour in the experiments comes from LFI injecting
// failures into sendto/recvfrom at the library boundary, exactly as the
// paper degrades PBFT's network (§7.3). Keeping the transport itself
// deterministic makes injected faults the only source of nondeterminism.
package netsim

import (
	"sync"
	"time"

	"lfi/internal/errno"
	"lfi/internal/libsim"
)

const queueDepth = 4096

type datagram struct {
	payload []byte
	from    string
}

// Network connects endpoints by string address.
type Network struct {
	mu    sync.Mutex
	bound map[string]*Endpoint
}

// New creates an empty network.
func New() *Network {
	return &Network{bound: make(map[string]*Endpoint)}
}

// NewEndpoint implements libsim.NetBackend.
func (n *Network) NewEndpoint() libsim.NetEndpoint {
	return &Endpoint{net: n, q: make(chan datagram, queueDepth)}
}

// Endpoint is one datagram socket.
type Endpoint struct {
	net    *Network
	q      chan datagram
	mu     sync.Mutex
	addr   string
	closed bool
}

// Bind attaches the endpoint to an address.
func (e *Endpoint) Bind(addr string) errno.Errno {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if _, taken := e.net.bound[addr]; taken {
		return errno.EACCES
	}
	e.mu.Lock()
	e.addr = addr
	e.mu.Unlock()
	e.net.bound[addr] = e
	return errno.OK
}

// SendTo delivers a datagram to the endpoint bound at dst. Unknown
// destinations are unreachable; a full receive queue drops the datagram
// silently (UDP semantics).
func (e *Endpoint) SendTo(dst string, payload []byte) errno.Errno {
	e.net.mu.Lock()
	target, ok := e.net.bound[dst]
	e.net.mu.Unlock()
	if !ok {
		return errno.EHOSTUNREACH
	}
	e.mu.Lock()
	from := e.addr
	e.mu.Unlock()
	d := datagram{payload: append([]byte(nil), payload...), from: from}
	select {
	case target.q <- d:
		return errno.OK
	default:
		return errno.OK // dropped, like UDP under pressure
	}
}

// RecvFrom blocks up to timeoutMs for a datagram (0 = poll, <0 = wait
// forever).
func (e *Endpoint) RecvFrom(timeoutMs int) ([]byte, string, errno.Errno) {
	if timeoutMs == 0 {
		select {
		case d := <-e.q:
			return d.payload, d.from, errno.OK
		default:
			return nil, "", errno.EAGAIN
		}
	}
	if timeoutMs < 0 {
		d, ok := <-e.q
		if !ok {
			return nil, "", errno.EBADF
		}
		return d.payload, d.from, errno.OK
	}
	timer := time.NewTimer(time.Duration(timeoutMs) * time.Millisecond)
	defer timer.Stop()
	select {
	case d := <-e.q:
		return d.payload, d.from, errno.OK
	case <-timer.C:
		return nil, "", errno.ETIMEDOUT
	}
}

// Close unbinds the endpoint.
func (e *Endpoint) Close() {
	e.mu.Lock()
	addr := e.addr
	closed := e.closed
	e.closed = true
	e.mu.Unlock()
	if closed {
		return
	}
	if addr != "" {
		e.net.mu.Lock()
		if e.net.bound[addr] == e {
			delete(e.net.bound, addr)
		}
		e.net.mu.Unlock()
	}
}

// Pending returns the queued datagram count (tests and monitors).
func (e *Endpoint) Pending() int { return len(e.q) }

// Drop removes and discards one queued datagram at addr, reporting
// whether one was queued. It models a zero-depth receive buffer: a
// datagram that was on the wire while the receiving socket call failed
// is gone, exactly like UDP under load. The PBFT scripted harness uses
// it to give injected recvfrom faults real loss semantics — without it
// an injected receive failure would only delay the datagram, because
// injection skips the dequeue.
func (n *Network) Drop(addr string) bool {
	n.mu.Lock()
	e, ok := n.bound[addr]
	n.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.q:
		return true
	default:
		return false
	}
}
