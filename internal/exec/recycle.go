package exec

import "sync"

// outcomePool recycles decoded Outcome structs between batches. The
// steady-state explore loop decodes a full batch of outcomes, folds
// them into scheduler state, and drops them — two allocations per
// outcome (the struct and its coverage bitset) that the pool turns
// into reuse. Recycled structs keep their Cov backing array, so a
// same-universe redecode reslices instead of reallocating.
var outcomePool = sync.Pool{New: func() any { return new(Outcome) }}

// newOutcome returns a zeroed Outcome that may carry spare Cov
// capacity from an earlier Recycle.
func newOutcome() *Outcome { return outcomePool.Get().(*Outcome) }

// Recycle returns a batch's outcomes to the decoder pool. Call it only
// when nothing retains the *Outcome pointers themselves — slices the
// caller copied out (BlockIDs results, signature strings) stay valid,
// since recycling clears the struct but never mutates referenced
// memory. Nil entries (unrun slots in a partial batch) are skipped.
func Recycle(outs []*Outcome) {
	for _, o := range outs {
		if o == nil {
			continue
		}
		cov := o.Cov[:0]
		*o = Outcome{}
		o.Cov = cov
		outcomePool.Put(o)
	}
}
