package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// CostModel is one system's observed execution economics — the
// scheduling signal the explorer persists in its store index so a
// resumed session starts from measured numbers instead of priors.
//
// GainPerRun is an EWMA of new-recovery-blocks-per-executed-run across
// scheduling batches (how much coverage a marginal run of this system
// still buys); Speed maps backend name to an EWMA of observed runs/sec
// on that backend (how cheaply that backend executes this system).
// Together they price a batch: expected coverage gain per second =
// GainPerRun × runs/sec.
type CostModel struct {
	GainPerRun float64            `json:"gain_per_run"`
	Batches    int                `json:"batches"`
	Speed      map[string]float64 `json:"runs_per_sec,omitempty"`
}

// ewmaAlpha weights the newest observation. Batches are coarse (tens
// of runs), so the model converges in a few batches without whipsawing
// on one noisy measurement.
const ewmaAlpha = 0.4

// speedPrior estimates runs/sec for a backend that has not executed
// this system yet. Absolute numbers only matter relative to each
// other: per slot, local in-process dispatch is fastest, a remote
// worker pays framing and transport, and a pool worker pays process
// plumbing on top. The first observation replaces the prior outright.
func speedPrior(info Info) float64 {
	perSlot := map[Kind]float64{KindLocal: 100, KindRemote: 60, KindPool: 25}[info.Kind]
	if perSlot == 0 {
		perSlot = 50
	}
	cap := info.Capacity
	if cap <= 0 {
		cap = 1
	}
	return perSlot * float64(cap)
}

// Fleet owns a mix of executors and fans batches across them. It is
// the scheduling layer between a Session and its backends:
//
//   - a batch is split into contiguous chunks sized by each backend's
//     observed (or prior) runs/sec for the batch's system, so big
//     batches flow to cheap, wide backends and the hot head of the
//     batch — candidates the explorer scored highest — runs on the
//     lowest-latency backend (executors are ordered local, pool,
//     remote);
//   - a chunk whose backend dies (BackendError) is requeued on the
//     surviving executors, up to maxAttempts, so killing a worker
//     never loses work;
//   - completed chunk timings feed the per-system cost model.
//
// Run returns outcomes aligned with the batch's scenarios; an index is
// nil only when cancellation or exhausted retries left that run
// unexecuted — callers requeue exactly those.
type Fleet struct {
	mu    sync.Mutex
	execs []Executor
	dead  map[string]bool
	cost  map[string]*CostModel
	obsMu sync.Mutex
}

// maxAttempts bounds how many backends one chunk may burn through
// before its failure is treated as fatal rather than environmental.
const maxAttempts = 3

// NewFleet builds a fleet over the given executors, ordered by latency
// class (local, then pool, then remote; stable within a class) so the
// head of every batch lands on the fastest-dispatch backend.
func NewFleet(execs ...Executor) *Fleet {
	ordered := append([]Executor(nil), execs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Info().Kind < ordered[j].Info().Kind
	})
	return &Fleet{
		execs: ordered,
		dead:  make(map[string]bool),
		cost:  make(map[string]*CostModel),
	}
}

// pipeliner is implemented by backends that keep several batches in
// flight on one connection (Remote against a protocol-3 worker): the
// scheduler subdivides such a backend's chunk so the worker's input
// queue never drains between batches.
type pipeliner interface{ Pipeline() int }

// imaged is implemented by backends that know which image version they
// execute a system as ("" = unknown, treated as this very build: the
// local and pool backends run in-process or re-exec the same binary).
type imaged interface {
	ImageVersion(sys string) string
	FuncFingerprints(sys string) (map[string]string, error)
}

// Executors reports the fleet's backends, dead ones included.
func (f *Fleet) Executors() []Info {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Info, len(f.execs))
	for i, e := range f.execs {
		out[i] = e.Info()
	}
	return out
}

// Add inserts a backend mid-campaign, preserving latency ordering —
// the fleet-watcher path for a worker that registered after the
// session started. A backend with the same name replaces (and closes)
// the previous one and sheds any dead mark: a re-registered worker
// comes back to life this way.
func (f *Fleet) Add(e Executor) {
	info := e.Info()
	f.mu.Lock()
	var old Executor
	for i, ex := range f.execs {
		if ex.Info().Name == info.Name {
			old = ex
			f.execs = append(f.execs[:i], f.execs[i+1:]...)
			break
		}
	}
	delete(f.dead, info.Name)
	i := sort.Search(len(f.execs), func(i int) bool { return f.execs[i].Info().Kind > info.Kind })
	f.execs = append(f.execs, nil)
	copy(f.execs[i+1:], f.execs[i:])
	f.execs[i] = e
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// Retire marks a named backend dead without waiting for a transport
// failure — the fleet-watcher path for a registry heartbeat eviction.
// Batches already in flight there still fail over through the normal
// BackendError requeue; Retire just stops new dispatches.
func (f *Fleet) Retire(name string) {
	f.mu.Lock()
	f.dead[name] = true
	f.mu.Unlock()
}

// FuncsForImage fetches per-function fingerprints for a foreign image
// version some backend advertised for sys — the reconciliation input
// for mixed-build outcomes. It asks the first live backend advertising
// exactly that image.
func (f *Fleet) FuncsForImage(sys, image string) (map[string]string, error) {
	for _, e := range f.live(nil) {
		im, ok := e.(imaged)
		if !ok || im.ImageVersion(sys) != image {
			continue
		}
		return im.FuncFingerprints(sys)
	}
	return nil, fmt.Errorf("exec: no live backend advertises image %s for %s", image, sys)
}

// Close closes every backend.
func (f *Fleet) Close() error {
	f.mu.Lock()
	execs := append([]Executor(nil), f.execs...)
	f.mu.Unlock()
	var first error
	for _, e := range execs {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// live returns the usable executors, in latency order. A batch that
// requires an image match (re-validation of mixed-build outcomes)
// additionally excludes backends advertising a different image; nil is
// "any batch".
func (f *Fleet) live(b *Batch) []Executor {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Executor
	for _, e := range f.execs {
		if f.dead[e.Info().Name] {
			continue
		}
		if b != nil && b.RequireImage && b.Image != "" {
			if im, ok := e.(imaged); ok {
				if v := im.ImageVersion(b.System); v != "" && v != b.Image {
					continue
				}
			}
		}
		out = append(out, e)
	}
	return out
}

// markDead retires a backend whose transport failed. Pool backends
// respawn their own workers, so only remotes are retired: a Remote
// closes its connection on any transport error and cannot recover.
func (f *Fleet) markDead(e Executor) {
	if e.Info().Kind != KindRemote {
		return
	}
	f.mu.Lock()
	f.dead[e.Info().Name] = true
	f.mu.Unlock()
}

// model returns the (created-on-demand) cost model for one system.
// Callers hold f.mu.
func (f *Fleet) model(sys string) *CostModel {
	m, ok := f.cost[sys]
	if !ok {
		m = &CostModel{Speed: make(map[string]float64)}
		f.cost[sys] = m
	}
	if m.Speed == nil {
		m.Speed = make(map[string]float64)
	}
	return m
}

// speed returns the backend's runs/sec estimate for sys.
func (f *Fleet) speed(sys string, info Info) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.model(sys).Speed[info.Name]; ok && v > 0 {
		return v
	}
	return speedPrior(info)
}

// observeSpeed folds one completed chunk's timing into the model.
func (f *Fleet) observeSpeed(sys string, info Info, runs int, elapsed time.Duration) {
	if runs <= 0 || elapsed <= 0 {
		return
	}
	obs := float64(runs) / elapsed.Seconds()
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.model(sys)
	if prev, ok := m.Speed[info.Name]; ok && prev > 0 {
		obs = ewmaAlpha*obs + (1-ewmaAlpha)*prev
	}
	m.Speed[info.Name] = obs
}

// ObserveGain folds one scheduling batch's coverage yield into the
// system's gain-per-run EWMA.
func (f *Fleet) ObserveGain(sys string, runs, newBlocks int) {
	if runs <= 0 {
		return
	}
	obs := float64(newBlocks) / float64(runs)
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.model(sys)
	if m.Batches > 0 {
		obs = ewmaAlpha*obs + (1-ewmaAlpha)*m.GainPerRun
	}
	m.GainPerRun = obs
	m.Batches++
}

// SeedCost primes a system's model from a persisted snapshot (the
// store index), so a resumed session schedules on measured economics.
func (f *Fleet) SeedCost(sys string, c CostModel) {
	if c.Batches == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.model(sys)
	m.GainPerRun, m.Batches = c.GainPerRun, c.Batches
	for k, v := range c.Speed {
		m.Speed[k] = v
	}
}

// Cost snapshots a system's model for persistence.
func (f *Fleet) Cost(sys string) CostModel {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.model(sys)
	out := CostModel{GainPerRun: m.GainPerRun, Batches: m.Batches, Speed: make(map[string]float64, len(m.Speed))}
	for k, v := range m.Speed {
		out.Speed[k] = v
	}
	return out
}

// GainEstimate prices one more run of sys: the observed EWMA once any
// batch has run, else the caller's prior.
func (f *Fleet) GainEstimate(sys string, prior float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.model(sys)
	if m.Batches == 0 {
		return prior
	}
	return m.GainPerRun
}

// SpeedEstimate prices the fleet's aggregate throughput for sys —
// runs/sec summed over live backends.
func (f *Fleet) SpeedEstimate(sys string) float64 {
	total := 0.0
	for _, e := range f.live(nil) {
		total += f.speed(sys, e.Info())
	}
	return total
}

// chunk is one contiguous slice of a batch awaiting execution.
type chunk struct {
	off, end int
	attempts int
}

// dispatch pairs a chunk with the executor chosen to run it.
type dispatch struct {
	c chunk
	e Executor
}

// Run fans one batch across the fleet. See the type comment for the
// contract; the returned error is ctx.Err() after cancellation, or the
// first fatal (non-requeueable) failure.
func (f *Fleet) Run(ctx context.Context, b *Batch) ([]*Outcome, error) {
	n := len(b.Scenarios)
	outs := make([]*Outcome, n)
	if n == 0 {
		return outs, nil
	}
	queue := []chunk{{off: 0, end: n}}
	first := true
	var fatal error
	for len(queue) > 0 && fatal == nil && ctx.Err() == nil {
		live := f.live(b)
		if len(live) == 0 {
			fatal = &BackendError{Backend: "fleet", Err: fmt.Errorf("no live executors")}
			break
		}
		// First wave: split the whole batch by cost-model share. Retry
		// waves keep failed chunks intact and spread them round-robin.
		// Either way, a pipelining backend's chunk is subdivided so
		// several slices ride its connection at once.
		var wave []dispatch
		if first {
			wave = f.split(b.System, live, queue[0])
			queue = queue[1:]
			first = false
		} else {
			for i, c := range queue {
				wave = append(wave, dispatch{c: c, e: live[i%len(live)]})
			}
			queue = nil
		}
		wave = expandWave(wave)
		var (
			wg      sync.WaitGroup
			retryMu sync.Mutex
			retry   []chunk
		)
		for _, d := range wave {
			e, c := d.e, d.c
			wg.Add(1)
			go func(e Executor, c chunk) {
				defer wg.Done()
				sub := &Batch{System: b.System, Seed: b.Seed, Coverage: b.Coverage, Image: b.Image, RequireImage: b.RequireImage, Scenarios: b.Scenarios[c.off:c.end]}
				if b.Observe != nil {
					sub.Observe = func(i int, o *Outcome) {
						f.obsMu.Lock()
						defer f.obsMu.Unlock()
						b.Observe(c.off+i, o)
					}
				}
				begin := time.Now()
				got, err := e.Run(ctx, sub)
				f.observeSpeed(b.System, e.Info(), len(got), time.Since(begin))
				for i, o := range got {
					outs[c.off+i] = o
				}
				if err == nil || (ctx.Err() != nil && errors.Is(err, ctx.Err())) {
					return
				}
				if IsBackendError(err) {
					f.markDead(e)
					if rest := (chunk{off: c.off + len(got), end: c.end, attempts: c.attempts + 1}); rest.off < rest.end {
						if rest.attempts >= maxAttempts {
							retryMu.Lock()
							fatal = err
							retryMu.Unlock()
							return
						}
						retryMu.Lock()
						retry = append(retry, rest)
						retryMu.Unlock()
					}
					return
				}
				retryMu.Lock()
				fatal = err
				retryMu.Unlock()
			}(e, c)
		}
		wg.Wait()
		sort.Slice(retry, func(i, j int) bool { return retry[i].off < retry[j].off })
		queue = append(queue, retry...)
	}
	if fatal != nil {
		return outs, fatal
	}
	if err := ctx.Err(); err != nil {
		return outs, err
	}
	return outs, nil
}

// split cuts one chunk into contiguous sub-chunks, at most one per
// live executor, sized by cost-model share: backend i gets
// round(n × speedᵢ / Σspeed) runs. The head of the batch — the
// explorer's hottest candidates — goes to live[0], the lowest-latency
// backend; the wide cheap tail fans out behind it. A backend whose
// share rounds to zero is simply skipped (its chunk is not handed to
// someone else: each sub-chunk stays paired with the executor it was
// sized for).
func (f *Fleet) split(sys string, live []Executor, c chunk) []dispatch {
	n := c.end - c.off
	if len(live) == 1 || n == 1 {
		return []dispatch{{c: c, e: live[0]}}
	}
	speeds := make([]float64, len(live))
	total := 0.0
	for i, e := range live {
		speeds[i] = f.speed(sys, e.Info())
		total += speeds[i]
	}
	var out []dispatch
	off := c.off
	for i, e := range live {
		size := int(float64(n)*speeds[i]/total + 0.5)
		if i == len(live)-1 {
			size = c.end - off // the last backend absorbs rounding
		}
		if size > c.end-off {
			size = c.end - off
		}
		if size <= 0 {
			continue
		}
		out = append(out, dispatch{c: chunk{off: off, end: off + size}, e: e})
		off += size
		if off >= c.end {
			break
		}
	}
	if off < c.end {
		// All-zero rounding tail: the fastest backend takes the rest.
		out = append(out, dispatch{c: chunk{off: off, end: c.end}, e: live[0]})
	}
	return out
}

// minPipelineSlice is the smallest slice worth pipelining: below this
// the per-frame overhead outweighs the overlap.
const minPipelineSlice = 8

// expandWave subdivides each pipelining backend's chunk into up to
// Pipeline() contiguous slices dispatched concurrently on the same
// backend: while the worker executes one slice the next is already on
// the wire, taking the round-trip off the critical path. Slices stay
// contiguous and in order (the worker executes them FIFO), so outcome
// determinism is untouched.
func expandWave(wave []dispatch) []dispatch {
	out := make([]dispatch, 0, len(wave))
	for _, d := range wave {
		p, ok := d.e.(pipeliner)
		depth := 1
		if ok {
			depth = p.Pipeline()
		}
		n := d.c.end - d.c.off
		if depth > n/minPipelineSlice {
			depth = n / minPipelineSlice
		}
		if depth <= 1 {
			out = append(out, d)
			continue
		}
		off := d.c.off
		for i := 0; i < depth; i++ {
			size := (d.c.end - off) / (depth - i)
			out = append(out, dispatch{c: chunk{off: off, end: off + size, attempts: d.c.attempts}, e: d.e})
			off += size
		}
	}
	return out
}
