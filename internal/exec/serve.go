package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"

	"lfi/internal/coverage"
	"lfi/internal/scenario"
	"lfi/internal/system"
)

// This file is the worker side of the wire protocol: the TCP server
// behind `lfi serve`, the stdio loop pool workers run, and the
// self-re-exec hook that turns any binary calling MaybeWorker into a
// pool-capable worker.

// EnvWorker, when set in a process's environment, makes MaybeWorker
// take over the process as a stdio protocol worker (the pool backend's
// subprocess mode).
const EnvWorker = "LFI_EXEC_WORKER"

// EnvServe, when set to a TCP listen address, makes MaybeWorker take
// over the process as a serve worker on that address. It prints
// "listening <addr>" on stdout once bound — tests and scripts spawn
// workers on ":0" and read the chosen port back.
const EnvServe = "LFI_EXEC_SERVE"

// EnvWorkerJobs overrides a worker's in-process pool width (default 1
// for stdio workers: pool parallelism comes from having several).
const EnvWorkerJobs = "LFI_EXEC_WORKER_J"

// MaybeWorker checks the worker environment hooks and, when one is
// set, runs the corresponding protocol loop and exits the process.
// Call it first thing in main (cmd/lfi does) or TestMain: it is what
// lets the pool backend re-exec the current binary as its worker
// without a dedicated worker executable.
func MaybeWorker() {
	jobs := 1
	if j, err := strconv.Atoi(os.Getenv(EnvWorkerJobs)); err == nil && j > 0 {
		jobs = j
	}
	if os.Getenv(EnvWorker) != "" {
		err := ServeConn(struct {
			io.Reader
			io.Writer
		}{os.Stdin, os.Stdout}, jobs)
		if err != nil && !errors.Is(err, io.EOF) {
			fmt.Fprintln(os.Stderr, "lfi exec worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if addr := os.Getenv(EnvServe); addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi exec serve:", err)
			os.Exit(1)
		}
		fmt.Printf("listening %s\n", ln.Addr())
		if err := Serve(context.Background(), ln, jobs, nil); err != nil {
			fmt.Fprintln(os.Stderr, "lfi exec serve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// Serve accepts protocol connections on ln until ctx is cancelled and
// answers each with ServeConn — the engine behind `lfi serve`. Every
// batch a connection carries runs on an in-process pool of the given
// width. Cancellation closes the listener and every active connection:
// a client mid-batch observes a dead worker and requeues (the same
// contract as a killed worker process).
func Serve(ctx context.Context, ln net.Listener, workers int, logw io.Writer) error {
	if workers <= 0 {
		workers = 1
	}
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]bool)
		wg    sync.WaitGroup
	)
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for c := range conns {
			c.Close()
		}
	})
	defer stop()
	logf := func(format string, args ...any) {
		if logw != nil {
			fmt.Fprintf(logw, format+"\n", args...)
		}
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		mu.Lock()
		conns[conn] = true
		mu.Unlock()
		logf("lfi serve: %s connected", conn.RemoteAddr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := ServeConn(conn, workers)
			conn.Close()
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
			if err != nil && !errors.Is(err, io.EOF) && ctx.Err() == nil {
				logf("lfi serve: %s: %v", conn.RemoteAddr(), err)
			} else {
				logf("lfi serve: %s disconnected", conn.RemoteAddr())
			}
		}()
	}
}

// scenarioCacheMax caps a connection's parsed-scenario cache; beyond it
// the cache is dropped wholesale (campaigns resend a bounded working
// set of scenario documents, and a fresh parse is always correct).
const scenarioCacheMax = 4096

// serverConn is the per-connection protocol state: the parsed-scenario
// cache (repeated batches reuse scenario — and therefore compiled-
// program — identity) and the coverage-universe tags already sent to
// this client.
type serverConn struct {
	scenarios map[string]*scenario.Scenario // canonical XML -> parsed
	uniTags   map[*coverage.Index]uint64
	sent      map[uint64]bool
	nextTag   uint64
}

// parse resolves one canonical XML document, memoized per connection.
func (sc *serverConn) parse(doc string) (*scenario.Scenario, error) {
	if s, ok := sc.scenarios[doc]; ok {
		return s, nil
	}
	s, err := scenario.ParseString(doc)
	if err != nil {
		return nil, err
	}
	if sc.scenarios == nil || len(sc.scenarios) >= scenarioCacheMax {
		sc.scenarios = make(map[string]*scenario.Scenario)
	}
	sc.scenarios[doc] = s
	return s, nil
}

// universe assigns (or recalls) this connection's tag for a coverage
// universe and reports whether its ID table must still be sent inline.
func (sc *serverConn) universe(idx *coverage.Index) (tag uint64, inline []string) {
	if sc.uniTags == nil {
		sc.uniTags = make(map[*coverage.Index]uint64)
		sc.sent = make(map[uint64]bool)
	}
	tag, ok := sc.uniTags[idx]
	if !ok {
		sc.nextTag++
		tag = sc.nextTag
		sc.uniTags[idx] = tag
	}
	if !sc.sent[tag] {
		sc.sent[tag] = true
		return tag, idx.IDs()
	}
	return tag, nil
}

// runBatch executes one received batch on the local backend, returning
// the completed prefix and the in-band error string. On a mid-batch
// error the completed prefix still ships alongside the error, mirroring
// the local backend's contract — the client folds it so no completed
// run is ever re-executed.
func runBatch(local *Local, b *Batch) (outs []*Outcome, errStr string) {
	outs, err := local.Run(context.Background(), b)
	if err != nil {
		errStr = err.Error()
	}
	return outs, errStr
}

// ServeConn answers one protocol connection: hello, then run requests,
// each batch executed on an in-process Local backend of the given
// width. It returns io.EOF on clean client disconnect. Which systems
// the worker offers follows from which system packages the serving
// binary imports (cmd/lfi imports them all via the lfi facade).
//
// Run requests arrive as protocol-2 binary frames (answered in kind)
// or as protocol-1 JSON (answered with JSON, coverage materialized as
// sorted block-ID strings) — the first payload byte tells them apart,
// so one worker serves both old and new clients.
func ServeConn(conn io.ReadWriter, workers int) error {
	local := NewLocal(workers)
	sc := &serverConn{}
	for {
		payload, err := readRawFrame(conn)
		if err != nil {
			return err
		}
		if isBinaryFrame(payload, frameRunReq) {
			id, b, derr := decodeRunRequest(payload, sc.parse)
			var outs []*Outcome
			var errStr string
			if derr != nil {
				errStr = derr.Error()
			} else {
				outs, errStr = runBatch(local, b)
			}
			var tag uint64
			var inline []string
			for _, o := range outs {
				if o.CovU != nil {
					// One system per batch, so one universe per response.
					tag, inline = sc.universe(o.CovU)
					break
				}
			}
			if err := writeRawFrame(conn, encodeRunResponse(id, errStr, outs, tag, inline)); err != nil {
				return err
			}
			continue
		}
		var req request
		if err := json.Unmarshal(payload, &req); err != nil {
			return fmt.Errorf("exec: unmarshal: %w", err)
		}
		resp := response{ID: req.ID}
		switch req.Method {
		case "hello":
			resp.Hello = &helloInfo{Proto: protoVersion, Capacity: workers, Systems: system.Names()}
		case "run":
			if req.Batch == nil {
				resp.Error = "run request without batch"
				break
			}
			b, err := fromWireCached(sc, req.Batch)
			if err != nil {
				resp.Error = err.Error()
				break
			}
			resp.Outcomes, resp.Error = runBatch(local, b)
			for _, o := range resp.Outcomes {
				if o.Blocks == nil && o.CovU != nil {
					o.Blocks = o.BlockIDs() // JSON boundary: sorted-ID form
				}
			}
		default:
			resp.Error = fmt.Sprintf("unknown method %q", req.Method)
		}
		if err := writeFrame(conn, &resp); err != nil {
			return err
		}
	}
}
