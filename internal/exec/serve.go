package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lfi/internal/coverage"
	"lfi/internal/fleetd"
	"lfi/internal/impact"
	"lfi/internal/isa"
	"lfi/internal/scenario"
	"lfi/internal/system"
)

// This file is the worker side of the wire protocol: the TCP server
// behind `lfi serve`, the stdio loop pool workers run, and the
// self-re-exec hook that turns any binary calling MaybeWorker into a
// pool-capable worker.

// EnvWorker, when set in a process's environment, makes MaybeWorker
// take over the process as a stdio protocol worker (the pool backend's
// subprocess mode).
const EnvWorker = "LFI_EXEC_WORKER"

// EnvServe, when set to a TCP listen address, makes MaybeWorker take
// over the process as a serve worker on that address. It prints
// "listening <addr>" on stdout once bound — tests and scripts spawn
// workers on ":0" and read the chosen port back.
const EnvServe = "LFI_EXEC_SERVE"

// EnvWorkerJobs overrides a worker's in-process pool width (default 1
// for stdio workers: pool parallelism comes from having several).
const EnvWorkerJobs = "LFI_EXEC_WORKER_J"

// EnvRegister, when set to a fleet registry address alongside
// EnvServe, makes the serve worker self-register there and heartbeat
// until it exits — the subprocess form of `lfi serve -register`.
const EnvRegister = "LFI_EXEC_REGISTER"

// EnvPatch, when set to "system:function" alongside EnvServe, applies
// an inert one-function patch to that system's image before serving —
// a deliberately mixed-build worker for tests and smoke jobs: it
// executes identically but advertises a different image version and
// per-function fingerprints, exercising the reconciliation path.
const EnvPatch = "LFI_EXEC_PATCH"

// MaybeWorker checks the worker environment hooks and, when one is
// set, runs the corresponding protocol loop and exits the process.
// Call it first thing in main (cmd/lfi does) or TestMain: it is what
// lets the pool backend re-exec the current binary as its worker
// without a dedicated worker executable.
func MaybeWorker() {
	jobs := 1
	if j, err := strconv.Atoi(os.Getenv(EnvWorkerJobs)); err == nil && j > 0 {
		jobs = j
	}
	if os.Getenv(EnvWorker) != "" {
		err := ServeConn(struct {
			io.Reader
			io.Writer
		}{os.Stdin, os.Stdout}, jobs)
		if err != nil && !errors.Is(err, io.EOF) {
			fmt.Fprintln(os.Stderr, "lfi exec worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if addr := os.Getenv(EnvServe); addr != "" {
		if spec := os.Getenv(EnvPatch); spec != "" {
			if err := PatchWorkerSystem(spec); err != nil {
				fmt.Fprintln(os.Stderr, "lfi exec serve:", err)
				os.Exit(1)
			}
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfi exec serve:", err)
			os.Exit(1)
		}
		fmt.Printf("listening %s\n", ln.Addr())
		opts := ServeOptions{Workers: jobs}
		ctx := context.Background()
		if reg := os.Getenv(EnvRegister); reg != "" {
			opts.Counters = new(ServeCounters)
			agent := fleetd.NewAgent(reg, WorkerRegistration(ln.Addr().String(), jobs), opts.Counters.Stats)
			go agent.Run(ctx)
		}
		if err := ServeWith(ctx, ln, opts); err != nil && ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "lfi exec serve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// PatchWorkerSystem replaces the registered system named in spec
// ("system:function") with a copy whose image carries the inert
// one-function patch of impact.PatchFunc. Execution is unchanged (the
// patch is behavior-preserving by construction), but the image hash
// and the function's fingerprint differ — this process now looks like
// a worker built from a different commit, which is exactly what the
// mixed-build reconciliation tests need.
func PatchWorkerSystem(spec string) error {
	name, fn, ok := strings.Cut(spec, ":")
	if !ok || name == "" || fn == "" {
		return fmt.Errorf("exec: patch spec %q: want system:function", spec)
	}
	d, ok := system.Lookup(name)
	if !ok {
		return fmt.Errorf("exec: patch: system %q not registered (have: %v)", name, system.Names())
	}
	orig := d.Binary
	b, _ := orig()
	if _, err := impact.PatchFunc(b, fn); err != nil {
		return fmt.Errorf("exec: patch %s: %w", spec, err)
	}
	nd := *d
	nd.Binary = func() (*isa.Binary, map[string]uint64) {
		b, offs := orig()
		pb, err := impact.PatchFunc(b, fn)
		if err != nil {
			return b, offs
		}
		return pb, offs
	}
	return system.Replace(&nd)
}

// WorkerRegistration describes this process as a fleet worker: the
// registry record `lfi serve -register` announces, advertising the
// same systems and image versions the hello exchange does.
func WorkerRegistration(addr string, workers int) fleetd.Worker {
	return fleetd.Worker{
		Addr:     addr,
		Capacity: workers,
		Proto:    protoVersion,
		Systems:  system.Names(),
		Images:   workerImages(),
	}
}

// ServeCounters aggregates a worker's lifetime execution counters for
// heartbeat reporting: batches and runs completed, and batches cut
// short by a protocol-3 cancel. All methods are safe for concurrent
// use.
type ServeCounters struct {
	batches atomic.Int64
	runs    atomic.Int64
	cancels atomic.Int64
}

// Stats snapshots the counters in the registry's heartbeat form.
func (c *ServeCounters) Stats() fleetd.WorkerStats {
	if c == nil {
		return fleetd.WorkerStats{}
	}
	return fleetd.WorkerStats{
		Batches: c.batches.Load(),
		Runs:    c.runs.Load(),
		Cancels: c.cancels.Load(),
	}
}

// ServeOptions parametrizes ServeWith beyond the listener: the
// in-process pool width each connection's batches run on, an optional
// log sink, and optional counters for heartbeat reporting.
type ServeOptions struct {
	Workers  int
	Log      io.Writer
	Counters *ServeCounters
}

// Serve accepts protocol connections on ln until ctx is cancelled and
// answers each with the connection loop — the engine behind
// `lfi serve`. See ServeWith for the full option set.
func Serve(ctx context.Context, ln net.Listener, workers int, logw io.Writer) error {
	return ServeWith(ctx, ln, ServeOptions{Workers: workers, Log: logw})
}

// ServeWith accepts protocol connections on ln until ctx is cancelled.
// Every batch a connection carries runs on an in-process pool of
// opts.Workers width. Cancellation closes the listener and every
// active connection: a client mid-batch observes a dead worker and
// requeues (the same contract as a killed worker process).
func ServeWith(ctx context.Context, ln net.Listener, opts ServeOptions) error {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]bool)
		wg    sync.WaitGroup
	)
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for c := range conns {
			c.Close()
		}
	})
	defer stop()
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		mu.Lock()
		conns[conn] = true
		mu.Unlock()
		logf("lfi serve: %s connected", conn.RemoteAddr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := serveConn(ctx, conn, opts)
			conn.Close()
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
			if err != nil && !errors.Is(err, io.EOF) && ctx.Err() == nil {
				logf("lfi serve: %s: %v", conn.RemoteAddr(), err)
			} else {
				logf("lfi serve: %s disconnected", conn.RemoteAddr())
			}
		}()
	}
}

// workerImages advertises the image version of every registered
// system, computed exactly as the explorer computes its own
// (explore.ImageVersion): binary name + "@" + image hash. A client
// compares these against its build to detect a mixed-build worker.
func workerImages() map[string]string {
	ds := system.All()
	out := make(map[string]string, len(ds))
	for _, d := range ds {
		b, _ := d.Binary()
		out[d.Name] = b.Name + "@" + impact.ImageHash(b.Code)
	}
	return out
}

// scenarioCacheMax caps a connection's parsed-scenario cache; beyond it
// the cache is dropped wholesale (campaigns resend a bounded working
// set of scenario documents, and a fresh parse is always correct).
const scenarioCacheMax = 4096

// serverConn is the per-connection protocol state: the parsed-scenario
// cache (repeated batches reuse scenario — and therefore compiled-
// program — identity) and the coverage-universe tags already sent to
// this client. It is touched only by the connection's executor
// goroutine, so it needs no locking even under pipelining.
type serverConn struct {
	scenarios map[string]*scenario.Scenario // canonical XML -> parsed
	uniTags   map[*coverage.Index]uint64
	sent      map[uint64]bool
	nextTag   uint64
}

// parse resolves one canonical XML document, memoized per connection.
func (sc *serverConn) parse(doc string) (*scenario.Scenario, error) {
	if s, ok := sc.scenarios[doc]; ok {
		return s, nil
	}
	s, err := scenario.ParseString(doc)
	if err != nil {
		return nil, err
	}
	if sc.scenarios == nil || len(sc.scenarios) >= scenarioCacheMax {
		sc.scenarios = make(map[string]*scenario.Scenario)
	}
	sc.scenarios[doc] = s
	return s, nil
}

// universe assigns (or recalls) this connection's tag for a coverage
// universe and reports whether its ID table must still be sent inline.
func (sc *serverConn) universe(idx *coverage.Index) (tag uint64, inline []string) {
	if sc.uniTags == nil {
		sc.uniTags = make(map[*coverage.Index]uint64)
		sc.sent = make(map[uint64]bool)
	}
	tag, ok := sc.uniTags[idx]
	if !ok {
		sc.nextTag++
		tag = sc.nextTag
		sc.uniTags[idx] = tag
	}
	if !sc.sent[tag] {
		sc.sent[tag] = true
		return tag, idx.IDs()
	}
	return tag, nil
}

// cancelledBatch is the in-band error a worker answers a cancelled run
// request with: the client that sent the cancel maps it back to its
// own ctx.Err(), anyone else treats it as a dead backend and requeues.
const cancelledBatch = "cancelled"

// pipelineQueueMax bounds how many run requests one connection may
// hold queued behind the executing batch. Clients pipeline far fewer
// (Remote defaults to 4); a client that exceeds the bound just blocks
// the connection's read loop — its own cancels included — until the
// queue drains, which only hurts itself.
const pipelineQueueMax = 64

// queuedRun is one run request awaiting the connection's executor
// goroutine: either a protocol-2/3 binary payload (decoded at
// execution time, so the read loop never touches serverConn state) or
// an already-unmarshalled JSON request.
type queuedRun struct {
	id      uint64
	payload []byte   // binary form; nil when req is set
	req     *request // JSON form; nil when payload is set
	ctx     context.Context
}

// ServeConn answers one protocol connection: hello, then run requests,
// each batch executed on an in-process Local backend of the given
// width. It returns io.EOF on clean client disconnect. Which systems
// the worker offers follows from which system packages the serving
// binary imports (cmd/lfi imports them all via the lfi facade).
func ServeConn(conn io.ReadWriter, workers int) error {
	return serveConn(context.Background(), conn, ServeOptions{Workers: workers})
}

// serveConn is the connection loop. Run requests arrive as binary
// frames (protocol 2/3, answered in kind) or as protocol-1 JSON
// (answered with JSON, coverage materialized as sorted block-ID
// strings) — the first payload byte tells them apart, so one worker
// serves every client vintage.
//
// The loop splits into two goroutines so protocol-3 semantics work:
// the read loop enqueues run requests (up to pipelineQueueMax deep —
// pipelining) and handles control frames inline, while a single
// executor goroutine runs batches strictly in arrival order
// (determinism: same FIFO execution a sequential client got). A
// cancel frame cancels the named request's context whether it is
// executing or still queued; the cancelled batch answers with its
// completed prefix and the in-band "cancelled" error, which is what
// frees clients from the 30s drain grace.
func serveConn(ctx context.Context, conn io.ReadWriter, opts ServeOptions) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	local := NewLocal(workers)
	sc := &serverConn{}
	var (
		writeMu  sync.Mutex
		cancelMu sync.Mutex
		cancels  = make(map[uint64]context.CancelFunc)
	)
	write := func(data []byte) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeRawFrame(conn, data)
	}
	writeJSON := func(v any) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeFrame(conn, v)
	}
	admit := func(id uint64) context.Context {
		rctx, rcancel := context.WithCancel(ctx)
		cancelMu.Lock()
		cancels[id] = rcancel
		cancelMu.Unlock()
		return rctx
	}
	retire := func(id uint64) {
		cancelMu.Lock()
		if c := cancels[id]; c != nil {
			c()
			delete(cancels, id)
		}
		cancelMu.Unlock()
	}

	// The executor: batches run one at a time, FIFO. Its write errors
	// are not surfaced separately — a broken connection fails the read
	// loop too, which is where the connection error is reported.
	queue := make(chan queuedRun, pipelineQueueMax)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for qr := range queue {
			serveRun(local, sc, opts.Counters, qr, write, writeJSON)
			retire(qr.id)
		}
	}()

	var readErr error
read:
	for {
		payload, err := readRawFrame(conn)
		if err != nil {
			readErr = err
			break
		}
		switch {
		case isBinaryFrame(payload, frameRunReq):
			id, err := frameID(payload)
			if err != nil {
				readErr = err
				break read
			}
			queue <- queuedRun{id: id, payload: payload, ctx: admit(id)}
		case isBinaryFrame(payload, frameCancel):
			// Cancel an executing or queued request; unknown ids (the
			// response already shipped) are a harmless race.
			if id, err := frameID(payload); err == nil {
				cancelMu.Lock()
				if c := cancels[id]; c != nil {
					c()
				}
				cancelMu.Unlock()
			}
		default:
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				readErr = fmt.Errorf("exec: unmarshal: %w", err)
				break read
			}
			switch req.Method {
			case "hello":
				resp := response{ID: req.ID, Hello: helloFor(req.Proto, workers)}
				if err := writeJSON(&resp); err != nil {
					readErr = err
					break read
				}
			case "funcs":
				resp := response{ID: req.ID}
				if d, ok := system.Lookup(req.System); ok {
					b, _ := d.Binary()
					resp.Funcs = impact.FuncHashes(b)
				} else {
					resp.Error = fmt.Sprintf("system %q not registered", req.System)
				}
				if err := writeJSON(&resp); err != nil {
					readErr = err
					break read
				}
			case "run":
				r := req
				queue <- queuedRun{id: req.ID, req: &r, ctx: admit(req.ID)}
			default:
				resp := response{ID: req.ID, Error: fmt.Sprintf("unknown method %q", req.Method)}
				if err := writeJSON(&resp); err != nil {
					readErr = err
					break read
				}
			}
		}
	}
	// Stop queued work before waiting it out: the client is gone, so
	// finishing its batches buys nothing.
	cancelMu.Lock()
	for _, c := range cancels {
		c()
	}
	cancelMu.Unlock()
	close(queue)
	<-done
	return readErr
}

// helloFor negotiates the hello response: min(ours, client's), where a
// client that sent no version (the field exists since protocol 3)
// counts as protocol 2 — exactly what those builds were. Image
// versions are advertised to protocol-3 clients only.
func helloFor(clientProto, workers int) *helloInfo {
	p := protoVersion
	if clientProto == 0 {
		clientProto = 2
	}
	if clientProto < p {
		p = clientProto
	}
	h := &helloInfo{Proto: p, Capacity: workers, Systems: system.Names()}
	if p >= 3 {
		h.Images = workerImages()
	}
	return h
}

// serveRun executes one queued run request and writes its response.
func serveRun(local *Local, sc *serverConn, counters *ServeCounters, qr queuedRun, write func([]byte) error, writeJSON func(any) error) {
	runCtx := func(b *Batch) (outs []*Outcome, errStr string) {
		outs, err := local.Run(qr.ctx, b)
		if err != nil {
			if qr.ctx.Err() != nil && errors.Is(err, qr.ctx.Err()) {
				errStr = cancelledBatch
				if counters != nil {
					counters.cancels.Add(1)
				}
			} else {
				errStr = err.Error()
			}
		}
		if counters != nil {
			counters.batches.Add(1)
			counters.runs.Add(int64(len(outs)))
		}
		return outs, errStr
	}
	if qr.payload != nil {
		id, b, derr := decodeRunRequest(qr.payload, sc.parse)
		var outs []*Outcome
		var errStr string
		if derr != nil {
			errStr = derr.Error()
		} else {
			outs, errStr = runCtx(b)
		}
		var tag uint64
		var inline []string
		for _, o := range outs {
			if o.CovU != nil {
				// One system per batch, so one universe per response.
				tag, inline = sc.universe(o.CovU)
				break
			}
		}
		write(encodeRunResponse(id, errStr, outs, tag, inline))
		return
	}
	req := qr.req
	resp := response{ID: req.ID}
	if req.Batch == nil {
		resp.Error = "run request without batch"
	} else if b, err := fromWireCached(sc, req.Batch); err != nil {
		resp.Error = err.Error()
	} else {
		resp.Outcomes, resp.Error = runCtx(b)
		for _, o := range resp.Outcomes {
			if o.Blocks == nil && o.CovU != nil {
				o.Blocks = o.BlockIDs() // JSON boundary: sorted-ID form
			}
		}
	}
	writeJSON(&resp)
}
