package exec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"lfi/internal/coverage"
	"lfi/internal/scenario"
)

// fuzzUniverse is a fixed 130-block universe (three bitset words, the
// last one partial) shared by the wire round-trip tests.
func fuzzUniverse() []string {
	ids := make([]string, 130)
	for i := range ids {
		ids[i] = fmt.Sprintf("minidb.c:%03d", i)
	}
	return ids
}

// outcomesFromBytes deterministically derives a slice of outcomes from
// fuzz input: every 8 input bytes shape one outcome's flags, strings,
// and coverage words, so the fuzzer explores crashed/covered/empty
// combinations and string-table sharing without a structured corpus.
func outcomesFromBytes(data []byte, idx *coverage.Index) []*Outcome {
	var outs []*Outcome
	for i := 0; i+8 <= len(data) && len(outs) < 64; i += 8 {
		b := data[i : i+8]
		o := &Outcome{
			Name:       fmt.Sprintf("scenario-%d", b[0]%7),
			Injections: int(b[1]),
		}
		if b[2]&1 != 0 {
			o.Crashed = true
			o.CrashKind = int(b[2] >> 4)
			o.CrashReason = fmt.Sprintf("reason-%d", b[3]%3)
			o.CrashThread = int(b[3] >> 4)
		}
		if b[4]&1 != 0 {
			o.WorkErr = fmt.Sprintf("workerr-%d", b[4]%5)
		}
		if b[4]&2 != 0 {
			o.Signature = fmt.Sprintf("sig-%d", b[5]%3)
		}
		if b[6]&1 != 0 {
			cov := coverage.NewBitset(idx.Len())
			for w := range cov {
				cov[w] = uint64(b[7]) * 0x0101010101010101 >> uint(w)
			}
			// Mask bits beyond the universe so AppendIDs and the JSON
			// path agree on the footprint.
			cov[len(cov)-1] &= (1 << (uint(idx.Len()) % 64)) - 1
			o.Cov = cov
			o.CovU = idx
		}
		outs = append(outs, o)
	}
	return outs
}

// outcomeEqual compares the serializable fields of two outcomes,
// coverage in materialized sorted-ID form (the cross-encoding
// invariant: binary and JSON must agree on exactly these).
func outcomeEqual(a, b *Outcome) bool {
	if a.Name != b.Name || a.Crashed != b.Crashed || a.CrashKind != b.CrashKind ||
		a.CrashReason != b.CrashReason || a.CrashThread != b.CrashThread ||
		a.WorkErr != b.WorkErr || a.Signature != b.Signature || a.Injections != b.Injections {
		return false
	}
	ab, bb := a.BlockIDs(), b.BlockIDs()
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

// FuzzWireFrame is the binary wire codec's round-trip fuzzer, the
// protocol-2 analogue of the scenario XML FuzzRoundTrip:
//
//   - outcomes derived from the fuzz input must survive
//     encodeRunResponse → decodeRunResponse bit-for-bit, both with the
//     universe inline (first response on a connection) and by tag
//     (steady state);
//   - the decoded outcomes must serialize to exactly the same JSON as
//     the originals — the binary and JSON encodings are two views of
//     one response, never two dialects;
//   - a run request must survive encodeRunRequest → decodeRunRequest;
//   - arbitrary bytes fed to the decoders may error but never panic.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xB2, 0x02})
	f.Add([]byte{0xB2, 0x01, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 1, 0, 3, 0, 1, 255, 9, 9, 0, 0, 0, 0, 0, 128})
	f.Add(bytes.Repeat([]byte{0xaa}, 64))
	sc, err := scenario.ParseString(`<scenario name="fuzz-read">
	  <trigger id="nth" class="CallCountTrigger"><args><n>3</n></args></trigger>
	  <function name="read" return="-1" errno="EIO"><reftrigger ref="nth" /></function>
	</scenario>`)
	if err != nil {
		f.Fatal(err)
	}
	idx := coverage.NewIndex(fuzzUniverse())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder robustness: whatever the bytes, no panic. (The frame
		// layer only hands payloads to a decoder when isBinaryFrame
		// matched, so replicate that guard.)
		if isBinaryFrame(data, frameRunReq) {
			_, _, _ = decodeRunRequest(data, scenario.ParseString)
		}
		if isBinaryFrame(data, frameRunResp) {
			var resp response
			_ = decodeRunResponse(data, &resp, map[uint64]*coverage.Index{})
		}

		// Structured response round trip, inline universe then by tag.
		outs := outcomesFromBytes(data, idx)
		errStr := ""
		if len(data) > 0 && data[0]&0x80 != 0 {
			errStr = "mid-batch failure"
		}
		universes := map[uint64]*coverage.Index{}
		for round, inline := range [][]string{idx.IDs(), nil} {
			payload := encodeRunResponse(7, errStr, outs, 3, inline)
			var resp response
			if err := decodeRunResponse(payload, &resp, universes); err != nil {
				t.Fatalf("round %d: decode: %v", round, err)
			}
			if resp.ID != 7 || resp.Error != errStr {
				t.Fatalf("round %d: header (%d, %q) != (7, %q)", round, resp.ID, resp.Error, errStr)
			}
			if len(resp.Outcomes) != len(outs) {
				t.Fatalf("round %d: %d outcomes != %d", round, len(resp.Outcomes), len(outs))
			}
			for i := range outs {
				if !outcomeEqual(outs[i], resp.Outcomes[i]) {
					t.Fatalf("round %d: outcome %d differs:\n got %+v\nwant %+v", round, i, resp.Outcomes[i], outs[i])
				}
			}
			// JSON equivalence: materialize both sides at the JSON
			// boundary exactly like ServeConn does for proto-1 clients.
			want := marshalJSONForm(t, outs)
			got := marshalJSONForm(t, resp.Outcomes)
			if !bytes.Equal(want, got) {
				t.Fatalf("round %d: JSON form differs:\n got %s\nwant %s", round, got, want)
			}
		}

		// Request round trip: system/seed/coverage from the input.
		b := &Batch{System: "minidb", Seed: 42, Scenarios: []*scenario.Scenario{sc, sc}}
		if len(data) > 2 {
			b.System = fmt.Sprintf("sys-%d", data[0])
			b.Seed = int64(data[1]) - int64(data[2])<<3
			b.Coverage = data[0]&1 != 0
		}
		id, got, err := decodeRunRequest(encodeRunRequest(9, b), scenario.ParseString)
		if err != nil {
			t.Fatalf("request decode: %v", err)
		}
		if id != 9 || got.System != b.System || got.Seed != b.Seed || got.Coverage != b.Coverage {
			t.Fatalf("request header: got (%d %q %d %v), want (9 %q %d %v)",
				id, got.System, got.Seed, got.Coverage, b.System, b.Seed, b.Coverage)
		}
		if len(got.Scenarios) != len(b.Scenarios) {
			t.Fatalf("%d scenarios != %d", len(got.Scenarios), len(b.Scenarios))
		}
		for i := range got.Scenarios {
			if !bytes.Equal(got.Scenarios[i].Serialize(), b.Scenarios[i].Serialize()) {
				t.Fatalf("scenario %d did not round-trip", i)
			}
		}
	})
}

// marshalJSONForm renders outcomes the way the JSON wire path ships
// them: Blocks materialized, hot-path fields json:"-" so they drop out.
func marshalJSONForm(t *testing.T, outs []*Outcome) []byte {
	t.Helper()
	forms := make([]*Outcome, len(outs))
	for i, o := range outs {
		c := *o
		if c.Blocks == nil && c.CovU != nil {
			c.Blocks = c.BlockIDs()
		}
		c.Cov, c.CovU = nil, nil
		forms[i] = &c
	}
	data, err := json.Marshal(forms)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDecodeUnknownUniverseTag pins the steady-state failure mode: a
// tag-only response on a connection that never saw the inline table is
// an error, not silently empty coverage.
func TestDecodeUnknownUniverseTag(t *testing.T) {
	idx := coverage.NewIndex(fuzzUniverse())
	o := &Outcome{Name: "s", Cov: coverage.NewBitset(idx.Len()), CovU: idx}
	o.Cov.Set(1)
	payload := encodeRunResponse(1, "", []*Outcome{o}, 5, nil)
	var resp response
	err := decodeRunResponse(payload, &resp, map[uint64]*coverage.Index{})
	if err == nil {
		t.Fatal("decode with unknown universe tag succeeded")
	}
}
