package exec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"lfi/internal/scenario"
)

// The wire protocol shared by the pool (stdio) and remote (TCP)
// backends: length-prefixed JSON-RPC. Every message is one frame —
// a 4-byte big-endian payload length followed by that many bytes of
// JSON — so framing survives any stream transport and a reader can
// reject oversized or torn messages before parsing.
//
//	client → worker: {"id":1,"method":"hello"}
//	worker → client: {"id":1,"hello":{"proto":1,"capacity":4,"systems":[...]}}
//	client → worker: {"id":2,"method":"run","batch":{...}}
//	worker → client: {"id":2,"outcomes":[...]}
//
// A batch's scenarios travel as canonical XML (scenario.Serialize is
// byte-deterministic), so content hashes — and therefore store keys —
// mean the same thing on both ends. Errors come back in-band on the
// response's error field; transport failures surface as BackendError.

// protoVersion is bumped on incompatible message changes; hello
// mismatches are rejected at connection setup, not mid-campaign.
const protoVersion = 1

// maxFrame bounds one message (a batch of a few hundred scenarios is
// well under 1 MiB; 64 MiB rejects garbage and runaway peers).
const maxFrame = 64 << 20

type request struct {
	ID     uint64     `json:"id"`
	Method string     `json:"method"`
	Batch  *wireBatch `json:"batch,omitempty"`
}

type response struct {
	ID       uint64     `json:"id"`
	Error    string     `json:"error,omitempty"`
	Hello    *helloInfo `json:"hello,omitempty"`
	Outcomes []*Outcome `json:"outcomes,omitempty"`
}

type helloInfo struct {
	Proto    int      `json:"proto"`
	Capacity int      `json:"capacity"`
	Systems  []string `json:"systems"`
}

// wireBatch is a Batch with scenarios serialized for transport.
type wireBatch struct {
	System    string   `json:"system"`
	Seed      int64    `json:"seed,omitempty"`
	Coverage  bool     `json:"coverage,omitempty"`
	Scenarios []string `json:"scenarios"`
}

// toWire serializes a batch's scenarios into canonical XML.
func toWire(b *Batch) *wireBatch {
	wb := &wireBatch{System: b.System, Seed: b.Seed, Coverage: b.Coverage}
	wb.Scenarios = make([]string, len(b.Scenarios))
	for i, s := range b.Scenarios {
		wb.Scenarios[i] = string(s.Serialize())
	}
	return wb
}

// fromWire parses a received batch back into scenarios.
func fromWire(wb *wireBatch) (*Batch, error) {
	b := &Batch{System: wb.System, Seed: wb.Seed, Coverage: wb.Coverage}
	b.Scenarios = make([]*scenario.Scenario, len(wb.Scenarios))
	for i, doc := range wb.Scenarios {
		s, err := scenario.ParseString(doc)
		if err != nil {
			return nil, fmt.Errorf("exec: batch scenario %d: %w", i, err)
		}
		b.Scenarios[i] = s
	}
	return b, nil
}

// writeFrame marshals v and writes one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("exec: marshal: %w", err)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("exec: frame too large: %d bytes", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// readFrame reads one length-prefixed frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("exec: frame too large: %d bytes", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("exec: unmarshal: %w", err)
	}
	return nil
}
