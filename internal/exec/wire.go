package exec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"lfi/internal/scenario"
)

// The wire protocol shared by the pool (stdio) and remote (TCP)
// backends. Every message is one frame — a 4-byte big-endian payload
// length followed by that many payload bytes — so framing survives any
// stream transport and a reader can reject oversized or torn messages
// before parsing.
//
// Two payload encodings share the framing and are distinguished by the
// first payload byte:
//
//   - JSON (first byte '{'): the protocol-1 encoding, still used for
//     hello/control methods and as the fallback when either end speaks
//     protocol 1.
//
//	client → worker: {"id":1,"method":"hello"}
//	worker → client: {"id":1,"hello":{"proto":2,"capacity":4,"systems":[...]}}
//	client → worker: {"id":2,"method":"run","batch":{...}}
//	worker → client: {"id":2,"outcomes":[...]}
//
//   - binary (first byte 0xB2): the protocol-2 encoding of the hot
//     "run" method — varint batch header, per-connection block-universe
//     table, bitset coverage, and a per-response string table (see
//     wire2.go). Negotiated by the hello exchange: a client that
//     learns the worker speaks protocol 2 switches its run frames to
//     binary; everything else stays JSON.
//
// Protocol 3 keeps both encodings and adds service semantics on top:
//
//   - the hello request carries the client's protocol version and the
//     two ends settle on min(client, worker), so every pairing of old
//     and new builds still interoperates;
//   - a binary **cancel** frame (kind 0x03) names an in-flight run
//     request by id; the worker stops starting new runs, finishes the
//     ones in flight, and answers the cancelled request with its
//     completed prefix — drains no longer depend on the 30s grace
//     timeout (kept only as the fallback for proto≤2 peers);
//   - requests are **pipelined**: a worker reads the next run request
//     while executing the current one (batches still execute in FIFO
//     order per connection, preserving determinism), and responses
//     carry ids so a client can keep several batches in flight;
//   - the hello response advertises per-system **image versions** and a
//     "funcs" control method serves per-function fingerprints, so a
//     client can detect a mixed-build worker and reconcile its
//     outcomes through the store's migration machinery instead of
//     dropping them.
//
// A batch's scenarios travel as canonical XML (scenario.Serialize is
// byte-deterministic), so content hashes — and therefore store keys —
// mean the same thing on both ends. Errors come back in-band on the
// response's error field; transport failures surface as BackendError.

// protoVersion is what this build speaks natively; protoOldest is the
// oldest peer protocol it can still fall back to (JSON frames). A hello
// outside [protoOldest, protoVersion] is rejected at connection setup,
// not mid-campaign.
const (
	protoVersion = 3
	protoOldest  = 1
)

// maxFrame bounds one message (a batch of a few hundred scenarios is
// well under 1 MiB; 64 MiB rejects garbage and runaway peers).
const maxFrame = 64 << 20

type request struct {
	ID     uint64     `json:"id"`
	Method string     `json:"method"`
	Batch  *wireBatch `json:"batch,omitempty"`
	// Proto is the client's native protocol version, sent with hello
	// since protocol 3 (absent — zero — means a proto≤2 client).
	Proto int `json:"proto,omitempty"`
	// System parametrizes the "funcs" method (protocol 3).
	System string `json:"system,omitempty"`
}

type response struct {
	ID       uint64     `json:"id"`
	Error    string     `json:"error,omitempty"`
	Hello    *helloInfo `json:"hello,omitempty"`
	Outcomes []*Outcome `json:"outcomes,omitempty"`
	// Funcs answers a "funcs" request: the worker's per-function
	// fingerprints for one system (protocol 3).
	Funcs map[string]string `json:"funcs,omitempty"`
}

type helloInfo struct {
	Proto    int      `json:"proto"`
	Capacity int      `json:"capacity"`
	Systems  []string `json:"systems"`
	// Images maps each advertised system to the image version the
	// worker would execute it as (protocol 3) — the mixed-build
	// handshake: a client whose own image differs reconciles this
	// worker's outcomes instead of trusting them blindly.
	Images map[string]string `json:"images,omitempty"`
}

// wireBatch is a Batch with scenarios serialized for transport.
type wireBatch struct {
	System    string   `json:"system"`
	Seed      int64    `json:"seed,omitempty"`
	Coverage  bool     `json:"coverage,omitempty"`
	Scenarios []string `json:"scenarios"`
}

// toWire serializes a batch's scenarios into canonical XML.
func toWire(b *Batch) *wireBatch {
	wb := &wireBatch{System: b.System, Seed: b.Seed, Coverage: b.Coverage}
	wb.Scenarios = make([]string, len(b.Scenarios))
	for i, s := range b.Scenarios {
		wb.Scenarios[i] = string(s.Serialize())
	}
	return wb
}

// fromWireCached parses a received batch back into scenarios through
// the connection's memoizing parser, so a resent scenario document maps
// to the same *Scenario (and the same compiled program).
func fromWireCached(sc *serverConn, wb *wireBatch) (*Batch, error) {
	b := &Batch{System: wb.System, Seed: wb.Seed, Coverage: wb.Coverage}
	b.Scenarios = make([]*scenario.Scenario, len(wb.Scenarios))
	for i, doc := range wb.Scenarios {
		s, err := sc.parse(doc)
		if err != nil {
			return nil, fmt.Errorf("exec: batch scenario %d: %w", i, err)
		}
		b.Scenarios[i] = s
	}
	return b, nil
}

// writeRawFrame writes one length-prefixed frame.
func writeRawFrame(w io.Writer, data []byte) error {
	if len(data) > maxFrame {
		return fmt.Errorf("exec: frame too large: %d bytes", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// readRawFrame reads one length-prefixed frame's payload.
func readRawFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("exec: frame too large: %d bytes", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

// writeFrame marshals v as JSON and writes one frame.
func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("exec: marshal: %w", err)
	}
	return writeRawFrame(w, data)
}

// readFrame reads one frame and unmarshals its JSON payload into v.
func readFrame(r io.Reader, v any) error {
	data, err := readRawFrame(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("exec: unmarshal: %w", err)
	}
	return nil
}
