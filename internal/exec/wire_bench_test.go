package exec

import (
	"testing"

	"lfi/internal/coverage"
)

// benchResponse builds a representative 32-outcome response over the
// 130-block test universe: a mix of passes, crashes with shared
// reasons, and coverage bitsets — the steady-state shape of one remote
// batch.
func benchResponse() ([]*Outcome, *coverage.Index) {
	idx := coverage.NewIndex(fuzzUniverse())
	outs := make([]*Outcome, 32)
	for i := range outs {
		o := &Outcome{Name: "bench-exec-read", Injections: 3}
		if i%4 == 0 {
			o.Crashed = true
			o.CrashKind = 1
			o.CrashReason = "double unlock"
			o.Signature = "close@EIO->double unlock"
		}
		cov := coverage.NewBitset(idx.Len())
		for p := 0; p < idx.Len(); p += 2 + i%3 {
			cov.Set(p)
		}
		o.Cov, o.CovU = cov, idx
		outs[i] = o
	}
	return outs, idx
}

// BenchmarkWireEncodeResponse measures the protocol-2 binary encoder on
// a steady-state response (universe already sent, tag only).
func BenchmarkWireEncodeResponse(b *testing.B) {
	outs, _ := benchResponse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(encodeRunResponse(uint64(i+1), "", outs, 1, nil)) == 0 {
			b.Fatal("empty payload")
		}
	}
}

// BenchmarkWireDecodeResponse measures the matching decoder with the
// universe already cached on the connection.
func BenchmarkWireDecodeResponse(b *testing.B) {
	outs, idx := benchResponse()
	payload := encodeRunResponse(1, "", outs, 1, nil)
	universes := map[uint64]*coverage.Index{1: idx}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp response
		if err := decodeRunResponse(payload, &resp, universes); err != nil {
			b.Fatal(err)
		}
		if len(resp.Outcomes) != len(outs) {
			b.Fatalf("%d outcomes", len(resp.Outcomes))
		}
		// Steady state: the consumer folds and recycles each batch.
		Recycle(resp.Outcomes)
	}
}
