// Package exec abstracts how a batch of fault-injection tests is
// executed — the pluggable execution backend layer behind the public
// Session API.
//
// The paper's technique is embarrassingly parallel at the granularity
// of one injection run: every test stages a fresh process image and a
// fresh runtime, so runs never share state. Up to now that parallelism
// was confined to the controller's in-process worker pool; this package
// turns "where a batch runs" into an interface with three backends:
//
//   - Local — the zero-allocation in-process pool (controller.RunN),
//     now an adapter. Fastest per-run latency, no isolation.
//   - Pool — a fixed pool of worker subprocesses speaking the wire
//     protocol over stdin/stdout. A workload panic that escapes the
//     crash monitor kills one worker, not the session; the worker is
//     respawned and the batch slice retried.
//   - Remote — a TCP client for `lfi serve` workers, same protocol
//     with a length-prefix frame. Fan batches across machines.
//
// All three consume a Batch (system name + serialized scenarios + seed)
// and produce the same Outcome records: because runs are deterministic
// under a fixed seed, the three backends are observationally equivalent
// — byte-identical outcome sequences — which is what lets the Fleet
// scheduler route batches by cost alone and requeue a dead backend's
// batch anywhere else without changing results.
package exec

import (
	"context"
	"errors"
	"fmt"

	"sync"

	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/coverage"
	"lfi/internal/libsim"
	"lfi/internal/scenario"
	"lfi/internal/system"
)

// Kind classifies a backend for latency-class ordering and cost priors.
type Kind int

const (
	// KindLocal runs batches on the in-process worker pool.
	KindLocal Kind = iota
	// KindPool runs batches in a pool of worker subprocesses.
	KindPool
	// KindRemote runs batches on an `lfi serve` worker over TCP.
	KindRemote
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLocal:
		return "local"
	case KindPool:
		return "pool"
	case KindRemote:
		return "remote"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Info is an executor's capability and cost metadata: the Name keys the
// cost model, Capacity is how many runs the backend absorbs in
// parallel, and Isolated reports whether a crashing test process can
// take the session process down with it.
type Info struct {
	Name     string
	Kind     Kind
	Capacity int
	Isolated bool
}

// Batch is one unit of dispatch: scenarios to run against a registered
// system under a fixed seed. Scenarios ship as canonical XML on the
// wire, so a batch means the same thing to every backend.
type Batch struct {
	System    string
	Seed      int64
	Coverage  bool // collect per-run coverage block IDs
	Scenarios []*scenario.Scenario

	// Image is the image version the dispatching session expects the
	// batch to execute against (explore.ImageVersion of its own
	// binary). Optional; when set, a remote backend whose advertised
	// image for the system differs tags the returned outcomes with its
	// own version so the caller can reconcile them (see Outcome.Image).
	Image string
	// RequireImage restricts dispatch to backends whose image for the
	// system matches Image (or is unknown — the local and pool backends
	// run this very build). The explorer sets it when re-validating
	// outcomes a mixed-build worker produced, so the re-run cannot land
	// on another mismatched worker.
	RequireImage bool

	// Observe, when non-nil, streams each completed outcome (by batch
	// index) as backends finish; the Fleet serializes calls. Wire
	// backends only see the serializable fields above.
	Observe func(i int, o *Outcome)
}

// Outcome is one run's serializable result — the part of a
// controller.Outcome every backend can reproduce bit-for-bit. The
// failure signature is computed where the run executed (it needs the
// injection log), so local, pool and remote batches dedup identically.
type Outcome struct {
	Name        string   `json:"name"`
	Crashed     bool     `json:"crashed,omitempty"`
	CrashKind   int      `json:"crash_kind,omitempty"`
	CrashReason string   `json:"crash_reason,omitempty"`
	CrashThread int      `json:"crash_thread,omitempty"`
	WorkErr     string   `json:"work_err,omitempty"`
	Signature   string   `json:"signature,omitempty"` // "" = passed
	Injections  int      `json:"injections,omitempty"`
	Blocks      []string `json:"blocks,omitempty"` // covered block IDs, sorted (JSON boundary form)

	// Cov/CovU are the hot-path coverage encoding: a dense bitset over
	// the block universe CovU. Backends fill these instead of Blocks;
	// BlockIDs materializes the sorted-ID form at serialization
	// boundaries (JSON stores, wire fallback).
	Cov  coverage.Bitset `json:"-"`
	CovU *coverage.Index `json:"-"`

	// Raw carries the full in-process outcome (injection log included)
	// when the run executed locally; wire backends leave it nil.
	Raw *controller.Outcome `json:"-"`

	// Image is set (client-side, never on the wire) when the outcome
	// came from a backend whose image version for the batch's system
	// differs from Batch.Image: the version the run actually executed
	// against. Consumers reconcile such outcomes through change-impact
	// analysis instead of folding them as current-image results.
	Image string `json:"-"`
}

// BlockIDs returns the run's covered block IDs, sorted: the explicit
// Blocks slice when set (wire/store deserialization), otherwise a fresh
// materialization of the bitset. The result is caller-owned.
func (o *Outcome) BlockIDs() []string {
	if o.Blocks != nil || o.CovU == nil {
		return o.Blocks
	}
	return o.CovU.AppendIDs(nil, o.Cov)
}

// Failed reports whether the run ended abnormally in any way.
func (o *Outcome) Failed() bool { return o.Crashed || o.WorkErr != "" }

// Controller reconstructs a controller.Outcome for reporting: the full
// local outcome when available, otherwise a synthesis from the wire
// fields (the injection log and crash stack stay on the worker).
func (o *Outcome) Controller(s *scenario.Scenario) controller.Outcome {
	if o.Raw != nil {
		return *o.Raw
	}
	out := controller.Outcome{Scenario: s, Injections: o.Injections}
	if o.Crashed {
		out.Crash = &libsim.Crash{
			Kind:   libsim.CrashKind(o.CrashKind),
			Reason: o.CrashReason,
			Thread: o.CrashThread,
		}
	}
	if o.WorkErr != "" {
		out.WorkErr = errors.New(o.WorkErr)
	}
	return out
}

// Executor is a pluggable execution backend. Run executes a batch and
// returns the contiguous prefix of completed outcomes: on cancellation
// in-flight runs finish and the prefix comes back with ctx.Err(); on a
// backend failure (dead subprocess, broken connection) the error wraps
// BackendError so schedulers can requeue the unfinished tail elsewhere.
// Implementations must be safe for use by one dispatcher goroutine at a
// time per Run call; Close releases subprocesses or connections.
type Executor interface {
	Info() Info
	Run(ctx context.Context, b *Batch) ([]*Outcome, error)
	Close() error
}

// BackendError marks an executor failure that invalidates the backend,
// not the batch: the scheduler should requeue the batch's unfinished
// runs on another executor.
type BackendError struct {
	Backend string
	Err     error
}

// Error renders the failure.
func (e *BackendError) Error() string { return fmt.Sprintf("exec: backend %s: %v", e.Backend, e.Err) }

// Unwrap exposes the cause.
func (e *BackendError) Unwrap() error { return e.Err }

// IsBackendError reports whether err is a requeue-able backend failure.
func IsBackendError(err error) bool {
	var be *BackendError
	return errors.As(err, &be)
}

// --- the local backend -------------------------------------------------------

// Local is the in-process backend: batches run on the controller's
// zero-allocation worker pool, exactly as they did before this package
// existed. It resolves targets through the system registry.
type Local struct {
	workers int
}

// NewLocal returns the in-process backend with the given worker-pool
// width (<= 0 means 1).
func NewLocal(workers int) *Local {
	if workers <= 0 {
		workers = 1
	}
	return &Local{workers: workers}
}

// Info reports the local backend's metadata.
func (l *Local) Info() Info {
	return Info{Name: "local", Kind: KindLocal, Capacity: l.workers}
}

// Close is a no-op: the local backend holds no resources.
func (l *Local) Close() error { return nil }

// sysCov caches per-system coverage machinery: the block-universe index
// (built from the first run's registrations, immutable afterwards) and
// a pool of per-run trackers, so coverage batches neither rebuild the
// universe nor allocate a tracker per run.
type sysCov struct {
	mu   sync.Mutex
	idx  *coverage.Index
	pool sync.Pool
}

var sysCovs sync.Map // system name -> *sysCov

func covState(sys string) *sysCov {
	if v, ok := sysCovs.Load(sys); ok {
		return v.(*sysCov)
	}
	v, _ := sysCovs.LoadOrStore(sys, &sysCov{})
	return v.(*sysCov)
}

func (s *sysCov) tracker() *coverage.Tracker {
	if tr, ok := s.pool.Get().(*coverage.Tracker); ok {
		return tr
	}
	return coverage.New()
}

func (s *sysCov) release(tr *coverage.Tracker) {
	tr.ResetHits()
	s.pool.Put(tr)
}

// index returns the system's block universe, built once from a tracker
// that has seen a full run's registrations.
func (s *sysCov) index(tr *coverage.Tracker) *coverage.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		s.idx = tr.Index()
	}
	return s.idx
}

// Run executes the batch on the in-process pool. Outcomes come back in
// scenario order; under a fixed seed the sequence is identical to a
// sequential campaign (the PR-1 equivalence invariant), which is what
// makes every other backend's output comparable to this one's.
func (l *Local) Run(ctx context.Context, b *Batch) ([]*Outcome, error) {
	d, ok := system.Lookup(b.System)
	if !ok {
		return nil, fmt.Errorf("exec: system %q not registered (have: %v)", b.System, system.Names())
	}
	outs := make([]*Outcome, len(b.Scenarios))
	var obsMu sync.Mutex
	// The plain target is stateless (Start/Recycle functions) and shared
	// by every non-coverage run; coverage runs bind a pooled per-run
	// tracker instead.
	baseTgt := d.Target()
	var sc *sysCov
	if b.Coverage {
		sc = covState(b.System)
	}
	ctrl, err := controller.RunNContext(ctx, l.workers, len(b.Scenarios), func(i int) (controller.Outcome, error) {
		tgt := baseTgt
		var tr *coverage.Tracker
		if sc != nil {
			tr = sc.tracker()
			tgt = d.TargetWithCoverage(tr)
		}
		o, rerr := controller.RunOne(tgt, b.Scenarios[i], core.WithSeed(b.Seed))
		if rerr != nil {
			if tr != nil {
				sc.release(tr)
			}
			return o, fmt.Errorf("exec: scenario %q: %w", b.Scenarios[i].Name, rerr)
		}
		outs[i] = fromController(&o)
		if tr != nil {
			idx := sc.index(tr)
			outs[i].Cov = tr.CoveredBits(idx, nil)
			outs[i].CovU = idx
			sc.release(tr)
		}
		if b.Observe != nil {
			// Streamed in completion order, serialized; the deferred
			// unlock keeps a panicking observer from wedging the pool.
			obsMu.Lock()
			defer obsMu.Unlock()
			b.Observe(i, outs[i])
		}
		return o, nil
	})
	// RunNContext's contiguous-prefix contract: only the prefix it
	// vouches for is returned, even if later indexes finished.
	return outs[:len(ctrl)], err
}

// fromController converts a completed in-process outcome into the
// serializable form, keeping the full outcome on Raw.
func fromController(o *controller.Outcome) *Outcome {
	out := &Outcome{Injections: o.Injections, Raw: o}
	if o.Scenario != nil {
		out.Name = o.Scenario.Name
	}
	if o.Crash != nil {
		out.Crashed = true
		out.CrashKind = int(o.Crash.Kind)
		out.CrashReason = o.Crash.Reason
		out.CrashThread = o.Crash.Thread
	}
	if o.WorkErr != nil {
		out.WorkErr = o.WorkErr.Error()
	}
	if sig, failed := controller.FailureSignature(*o); failed {
		out.Signature = sig
	}
	return out
}
