package exec

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	osexec "os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lfi/internal/scenario"

	// The backends resolve targets through the system registry.
	_ "lfi/internal/system/all"
)

// TestMain makes this test binary pool- and serve-capable: a copy
// re-executed with EnvWorker/EnvServe set becomes a protocol worker
// instead of running the tests (the same hook cmd/lfi installs).
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// testScenarios is a small deterministic candidate set against minidb:
// single-shot and burst injections on functions its suite calls.
func testScenarios(t *testing.T) []*scenario.Scenario {
	t.Helper()
	var docs []string
	for _, fn := range []string{"malloc", "read", "fopen"} {
		ret := "-1"
		if fn == "malloc" || fn == "fopen" {
			ret = "0" // pointer-returning functions fail with NULL
		}
		for n := 1; n <= 4; n++ {
			docs = append(docs, fmt.Sprintf(`<scenario name="eq-%s-%d">
			  <trigger id="nth" class="CallCountTrigger"><args><n>%d</n></args></trigger>
			  <function name="%s" return="%s" errno="EIO"><reftrigger ref="nth" /></function>
			</scenario>`, fn, n, n, fn, ret))
		}
	}
	out := make([]*scenario.Scenario, len(docs))
	for i, doc := range docs {
		s, err := scenario.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func marshalOutcomes(t *testing.T, outs []*Outcome) []byte {
	t.Helper()
	data, err := json.MarshalIndent(outs, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// startLoopbackServe runs a protocol server in-process and returns a
// connected Remote.
func startLoopbackServe(t *testing.T, workers int) *Remote {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go Serve(ctx, ln, workers, nil)
	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := request{ID: 7, Method: "run", Batch: &wireBatch{System: "minidb", Seed: 3, Scenarios: []string{"<x/>"}}}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Method != "run" || out.Batch == nil || out.Batch.System != "minidb" {
		t.Fatalf("frame round trip mangled the request: %+v", out)
	}
	// A frame claiming an absurd length is rejected before allocation.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0}
	if err := readFrame(bytes.NewReader(bad), &out); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestBackendEquivalence is the executor equivalence property: for the
// same system, scenarios and seed, the local, pool and loopback-remote
// backends must produce byte-identical outcome sequences — coverage
// blocks, injections and worker-computed failure signatures included.
// This is the contract that lets the fleet route batches by cost alone.
func TestBackendEquivalence(t *testing.T) {
	scens := testScenarios(t)
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	remote := startLoopbackServe(t, 2)
	backends := []Executor{NewLocal(4), pool, remote}

	for _, seed := range []int64{0, 7, 42} {
		var want []byte
		for _, e := range backends {
			b := &Batch{System: "minidb", Seed: seed, Coverage: true, Scenarios: scens}
			outs, err := e.Run(context.Background(), b)
			if err != nil {
				t.Fatalf("%s seed %d: %v", e.Info().Name, seed, err)
			}
			if len(outs) != len(scens) {
				t.Fatalf("%s seed %d: %d outcomes for %d scenarios", e.Info().Name, seed, len(outs), len(scens))
			}
			got := marshalOutcomes(t, outs)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s seed %d: outcome sequence diverges from local:\nlocal: %s\ngot:   %s",
					e.Info().Name, seed, want, got)
			}
		}
	}
}

// TestPoolWorkerCrashRespawn: killing a pool worker between batches
// must not lose work — the dead worker's slice is retried and the pool
// respawns back to strength.
func TestPoolWorkerCrashRespawn(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	scens := testScenarios(t)

	first, err := pool.Run(context.Background(), &Batch{System: "minidb", Scenarios: scens})
	if err != nil || len(first) != len(scens) {
		t.Fatalf("healthy pool run: %d outcomes, err %v", len(first), err)
	}

	pool.mu.Lock()
	for w := range pool.procs {
		w.cmd.Process.Kill()
		break
	}
	pool.mu.Unlock()

	second, err := pool.Run(context.Background(), &Batch{System: "minidb", Scenarios: scens})
	if err != nil || len(second) != len(scens) {
		t.Fatalf("run across a killed worker: %d outcomes, err %v", len(second), err)
	}
	if !bytes.Equal(marshalOutcomes(t, first), marshalOutcomes(t, second)) {
		t.Fatal("outcomes diverged across a worker crash")
	}
}

// spawnServeWorker starts a real `serve` worker subprocess (this test
// binary re-executed with EnvServe) and returns its address and a kill
// function.
func spawnServeWorker(t *testing.T) (addr string, kill func()) {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := osexec.Command(self)
	cmd.Env = append(os.Environ(), EnvServe+"=127.0.0.1:0", EnvWorkerJobs+"=2")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(out).ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("serve worker said %q: %v", line, err)
	}
	addr = strings.TrimSpace(strings.TrimPrefix(line, "listening "))
	killed := false
	kill = func() {
		if !killed {
			killed = true
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
	t.Cleanup(kill)
	return addr, kill
}

// TestFleetRequeuesKilledRemote is the requeue contract: a batch
// dispatched to a remote worker that dies is requeued on the surviving
// backends, so every run still completes and none is lost.
func TestFleetRequeuesKilledRemote(t *testing.T) {
	addr, kill := spawnServeWorker(t)
	remote, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(NewLocal(2), remote)
	defer fleet.Close()
	scens := testScenarios(t)

	// Reference result from an all-local fleet.
	wantOuts, err := NewFleet(NewLocal(2)).Run(context.Background(), &Batch{System: "minidb", Coverage: true, Scenarios: scens})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the worker under the fleet's feet: the remote's first chunk
	// fails with BackendError, the fleet marks it dead and requeues the
	// chunk locally.
	kill()
	outs, err := fleet.Run(context.Background(), &Batch{System: "minidb", Coverage: true, Scenarios: scens})
	if err != nil {
		t.Fatalf("fleet with killed remote: %v", err)
	}
	for i, o := range outs {
		if o == nil {
			t.Fatalf("run %d lost after worker death", i)
		}
	}
	if !bytes.Equal(marshalOutcomes(t, wantOuts), marshalOutcomes(t, outs)) {
		t.Fatal("requeued outcomes diverge from all-local outcomes")
	}
	if got := len(fleet.live(nil)); got != 1 {
		t.Fatalf("dead remote still listed live: %d live backends", got)
	}
}

// TestFleetCancellationSparse: cancelling mid-batch returns the
// completed outcomes with ctx.Err(); unexecuted indexes stay nil so
// the caller can requeue exactly those.
func TestFleetCancellationSparse(t *testing.T) {
	fleet := NewFleet(NewLocal(1))
	defer fleet.Close()
	scens := testScenarios(t)
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int32
	b := &Batch{System: "minidb", Scenarios: scens, Observe: func(i int, o *Outcome) {
		if n.Add(1) == 2 {
			cancel()
		}
	}}
	outs, err := fleet.Run(ctx, b)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	completed := 0
	for _, o := range outs {
		if o != nil {
			completed++
		}
	}
	if completed == 0 || completed == len(scens) {
		t.Fatalf("cancellation completed %d of %d runs; want a partial batch", completed, len(scens))
	}
}

// TestRemoteDrainGraceTimeout: a cancelled Run against a wedged worker
// gives up after the configured drain grace instead of the 30s default
// — the connection is force-closed and the batch comes back as
// BackendError for the scheduler to requeue.
func TestRemoteDrainGraceTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A worker that answers hello and then wedges: it swallows the run
	// request and never responds, the shape of a hung or livelocked
	// worker process (a killed one fails fast with a transport error).
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var req request
		if err := readFrame(conn, &req); err != nil || req.Method != "hello" {
			return
		}
		hello := &response{ID: req.ID, Hello: &helloInfo{Proto: protoVersion, Capacity: 1, Systems: []string{"minidb"}}}
		if err := writeFrame(conn, hello); err != nil {
			return
		}
		io.Copy(io.Discard, conn) // swallow the run request, never answer
	}()

	r, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetDrainGrace(50 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Run goes straight to the drain wait
	start := time.Now()
	outs, err := r.Run(ctx, &Batch{System: "minidb", Scenarios: testScenarios(t)})
	elapsed := time.Since(start)
	if outs != nil {
		t.Fatalf("wedged worker returned outcomes: %v", outs)
	}
	if !IsBackendError(err) || !strings.Contains(err.Error(), "drain timed out") {
		t.Fatalf("want drain-timeout BackendError, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("drain grace not honored: gave up after %v", elapsed)
	}
}

// TestFleetSplitSharesByCost: once a backend's observed speed dwarfs
// the others', it receives the bulk of a batch, and the batch head
// stays on the local (lowest-latency) backend.
func TestFleetSplitSharesByCost(t *testing.T) {
	local := NewLocal(1)
	remote := startLoopbackServe(t, 4)
	fleet := NewFleet(remote, NewLocal(1), local) // order scrambled on purpose
	if fleet.Executors()[0].Kind != KindLocal {
		t.Fatalf("fleet not ordered by latency class: %+v", fleet.Executors())
	}
	fleet.observeSpeed("sys", local.Info(), 100, time.Second)           // 100 runs/s
	fleet.observeSpeed("sys", remote.Info(), 100, 100*time.Millisecond) // 1000 runs/s
	wave := fleet.split("sys", []Executor{local, remote}, chunk{off: 0, end: 100})
	if len(wave) != 2 || wave[0].c.off != 0 || wave[0].e != local || wave[1].e != Executor(remote) {
		t.Fatalf("unexpected split: %+v", wave)
	}
	localShare := wave[0].c.end - wave[0].c.off
	remoteShare := wave[1].c.end - wave[1].c.off
	if localShare >= remoteShare {
		t.Fatalf("cost model did not route the big batch to the fast backend: local %d, remote %d", localShare, remoteShare)
	}

	// A backend whose share rounds to zero is skipped — its chunk must
	// stay with the backend it was sized for, not shift positionally.
	fleet.observeSpeed("sys", local.Info(), 1, 10*time.Second)            // 0.1 runs/s
	fleet.observeSpeed("sys", remote.Info(), 10000, 100*time.Millisecond) // ~40k runs/s EWMA
	wave = fleet.split("sys", []Executor{local, remote}, chunk{off: 0, end: 32})
	total := 0
	for _, d := range wave {
		if d.c.end-d.c.off >= 31 && d.e != Executor(remote) {
			t.Fatalf("bulk chunk routed to %s, want the fast remote: %+v", d.e.Info().Name, wave)
		}
		total += d.c.end - d.c.off
	}
	if total != 32 {
		t.Fatalf("split lost runs: %d of 32 assigned", total)
	}
}

// TestCostModelEWMA: gain observations fold in as an EWMA and seed/
// snapshot round-trips preserve the model.
func TestCostModelEWMA(t *testing.T) {
	f := NewFleet(NewLocal(1))
	if g := f.GainEstimate("sys", 0.5); g != 0.5 {
		t.Fatalf("prior not honored before observations: %v", g)
	}
	f.ObserveGain("sys", 10, 5) // 0.5 gain/run
	f.ObserveGain("sys", 10, 0)
	got := f.GainEstimate("sys", 99)
	want := (1-ewmaAlpha)*0.5 + ewmaAlpha*0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("gain EWMA: got %v want %v", got, want)
	}
	snap := f.Cost("sys")
	f2 := NewFleet(NewLocal(1))
	f2.SeedCost("sys", snap)
	if g := f2.GainEstimate("sys", 99); g != got {
		t.Fatalf("seeded model lost the EWMA: %v vs %v", g, got)
	}
}
