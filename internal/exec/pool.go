package exec

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	osexec "os/exec"
	"sync"
	"time"

	"lfi/internal/coverage"
)

// Pool is the subprocess backend: a fixed pool of worker processes,
// each speaking the wire protocol over its stdin/stdout. The workers
// re-exec the current binary with EnvWorker set, so any program whose
// main (or TestMain) calls MaybeWorker is pool-capable with no separate
// worker executable.
//
// What the pool buys over Local is crash isolation: a workload panic
// that escapes the controller's crash monitor — a logic bug in the
// harness itself, not a simulated crash — kills one worker process, not
// the session. The dead worker is respawned, the lost slice of the
// batch is retried once on a live worker, and only a repeat failure
// surfaces as BackendError for the scheduler to requeue elsewhere.
type Pool struct {
	argv       []string
	size       int
	drainGrace time.Duration

	mu     sync.Mutex
	closed bool
	procs  map[*poolWorker]bool
	free   chan *poolWorker
}

// NewPool starts size worker subprocesses running argv (default: the
// current executable with EnvWorker set) and verifies each with a hello
// exchange. The returned pool must be Closed to reap the workers.
func NewPool(size int, argv ...string) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("exec: pool: %w", err)
		}
		argv = []string{self}
	}
	p := &Pool{
		argv:       argv,
		size:       size,
		drainGrace: defaultDrainGrace,
		procs:      make(map[*poolWorker]bool),
		free:       make(chan *poolWorker, size),
	}
	for i := 0; i < size; i++ {
		w, err := p.spawn()
		if err != nil {
			p.Close()
			return nil, err
		}
		p.free <- w
	}
	return p, nil
}

// SetDrainGrace bounds how long a cancelled Run keeps draining a
// worker's in-flight slice before killing the process (default 30s).
func (p *Pool) SetDrainGrace(d time.Duration) {
	if d > 0 {
		p.drainGrace = d
	}
}

// Info reports the pool's metadata: capacity is the worker count (each
// worker runs its slice sequentially; pool parallelism is process-level).
func (p *Pool) Info() Info {
	return Info{Name: fmt.Sprintf("pool(%d)", p.size), Kind: KindPool, Capacity: p.size, Isolated: true}
}

// Close kills every worker process.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	procs := make([]*poolWorker, 0, len(p.procs))
	for w := range p.procs {
		procs = append(procs, w)
	}
	p.procs = make(map[*poolWorker]bool)
	p.mu.Unlock()
	for _, w := range procs {
		w.kill()
	}
	return nil
}

// Run scatters the batch in contiguous slices across the pool's
// workers and reassembles outcomes in scenario order. It returns the
// contiguous prefix of completed outcomes; a slice that failed twice
// leaves a gap, and everything from the gap on is reported unfinished
// via BackendError so the scheduler requeues it.
func (p *Pool) Run(ctx context.Context, b *Batch) ([]*Outcome, error) {
	n := len(b.Scenarios)
	if n == 0 {
		return nil, nil
	}
	chunk := (n + p.size - 1) / p.size
	type slice struct{ off, end int }
	var slices []slice
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		slices = append(slices, slice{off, end})
	}
	outs := make([]*Outcome, n)
	errs := make([]error, len(slices))
	var wg sync.WaitGroup
	for si, sl := range slices {
		wg.Add(1)
		go func(si int, sl slice) {
			defer wg.Done()
			// One retry on a fresh worker, resuming past whatever the
			// dead worker completed: the first failure may be a
			// crashed (now respawned) process; a second failure means
			// the slice itself is poison or the pool is going down.
			done := 0
			var err error
			for attempt := 0; attempt < 2 && sl.off+done < sl.end; attempt++ {
				sub := &Batch{System: b.System, Seed: b.Seed, Coverage: b.Coverage, Scenarios: b.Scenarios[sl.off+done : sl.end]}
				var got []*Outcome
				got, err = p.runSlice(ctx, sub)
				for i, o := range got {
					outs[sl.off+done+i] = o
				}
				done += len(got)
				if err == nil || !IsBackendError(err) || ctx.Err() != nil {
					break
				}
			}
			errs[si] = err
		}(si, sl)
	}
	wg.Wait()

	// Contiguous-prefix contract: stop at the first gap; a slice that
	// completed fully despite a flagged error (cancellation after a
	// drain) still counts.
	var err error
	end := n
	for si, sl := range slices {
		done := len(sliceDone(outs[sl.off:sl.end]))
		if sl.off+done < sl.end {
			end = sl.off + done
			if err = errs[si]; err == nil {
				err = ctx.Err()
			}
			break
		}
		if errs[si] != nil {
			err = errs[si]
		}
	}
	done := outs[:end]
	if b.Observe != nil {
		for i, o := range done {
			b.Observe(i, o)
		}
	}
	return done, err
}

// sliceDone returns the contiguous completed prefix of one slice.
func sliceDone(outs []*Outcome) []*Outcome {
	for i, o := range outs {
		if o == nil {
			return outs[:i]
		}
	}
	return outs
}

// runSlice executes one contiguous slice on the next free worker,
// respawning the worker if it died.
func (p *Pool) runSlice(ctx context.Context, sub *Batch) ([]*Outcome, error) {
	var w *poolWorker
	select {
	case w = <-p.free:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	var resp response
	done := make(chan error, 1)
	go func() {
		done <- w.call("run", sub, &resp)
	}()
	var err error
	select {
	case err = <-done:
	case <-ctx.Done():
		// Drain like the remote backend: the worker finishes its
		// slice; its outcomes land in the store before we stop.
		t := time.NewTimer(p.drainGrace)
		select {
		case err = <-done:
			t.Stop()
		case <-t.C:
			p.replace(w)
			<-done
			return nil, &BackendError{Backend: p.Info().Name, Err: fmt.Errorf("cancelled and drain timed out")}
		}
	}
	if err != nil {
		p.replace(w)
		return nil, &BackendError{Backend: p.Info().Name, Err: err}
	}
	p.free <- w
	if len(resp.Outcomes) > len(sub.Scenarios) {
		resp.Outcomes = resp.Outcomes[:len(sub.Scenarios)]
	}
	if resp.Error != "" {
		// A batch problem; the worker's completed prefix still counts.
		return resp.Outcomes, fmt.Errorf("exec: pool worker: %s", resp.Error)
	}
	return resp.Outcomes, ctx.Err()
}

// replace kills a (presumed dead) worker and tries to spawn a fresh
// one in its place; on spawn failure the pool just shrinks.
func (p *Pool) replace(w *poolWorker) {
	w.kill()
	p.mu.Lock()
	delete(p.procs, w)
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return
	}
	nw, err := p.spawn()
	if err != nil {
		return
	}
	p.free <- nw
}

// spawn starts one worker subprocess and verifies it with hello.
func (p *Pool) spawn() (*poolWorker, error) {
	cmd := osexec.Command(p.argv[0], p.argv[1:]...)
	cmd.Env = append(os.Environ(), EnvWorker+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("exec: pool: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("exec: pool: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("exec: pool: %w", err)
	}
	w := &poolWorker{cmd: cmd, in: stdin, out: stdout, proto: protoOldest, universes: make(map[uint64]*coverage.Index)}
	var resp response
	if err := w.call("hello", nil, &resp); err != nil {
		w.kill()
		return nil, fmt.Errorf("exec: pool worker hello: %w", err)
	}
	if resp.Hello == nil {
		w.kill()
		return nil, fmt.Errorf("exec: pool worker: malformed hello response")
	}
	if resp.Hello.Proto < protoOldest || resp.Hello.Proto > protoVersion {
		w.kill()
		return nil, fmt.Errorf("exec: pool worker speaks proto v%d, need v%d — rebuild worker", resp.Hello.Proto, protoVersion)
	}
	w.proto = resp.Hello.Proto
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		w.kill()
		return nil, fmt.Errorf("exec: pool closed")
	}
	p.procs[w] = true
	p.mu.Unlock()
	return w, nil
}

// poolWorker is one subprocess and its stdio protocol stream.
type poolWorker struct {
	cmd       *osexec.Cmd
	in        io.WriteCloser
	out       io.ReadCloser
	nextID    uint64
	proto     int
	universes map[uint64]*coverage.Index // per-worker universe table
}

// call sends one request and reads its response: binary frames for run
// requests once the worker negotiated protocol 2, JSON otherwise
// (mirrors Remote.call; pool workers are single-client so no lock).
func (w *poolWorker) call(method string, b *Batch, resp *response) error {
	w.nextID++
	id := w.nextID
	if method == "run" && w.proto >= 2 {
		if err := writeRawFrame(w.in, encodeRunRequest(id, b)); err != nil {
			return err
		}
		payload, err := readRawFrame(w.out)
		if err != nil {
			return err
		}
		if isBinaryFrame(payload, frameRunResp) {
			err = decodeRunResponse(payload, resp, w.universes)
		} else {
			err = json.Unmarshal(payload, resp)
		}
		if err != nil {
			return err
		}
	} else {
		req := &request{ID: id, Method: method}
		if b != nil {
			req.Batch = toWire(b)
		}
		if err := writeFrame(w.in, req); err != nil {
			return err
		}
		if err := readFrame(w.out, resp); err != nil {
			return err
		}
	}
	if resp.ID != id {
		return fmt.Errorf("response id %d for request %d", resp.ID, id)
	}
	return nil
}

func (w *poolWorker) kill() {
	w.in.Close()
	w.out.Close()
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.cmd.Wait()
}
