package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"lfi/internal/scenario"
)

// TestRemoteCancelFastWithoutGrace pins the protocol-3 cancel contract:
// cancelling a Run against a live worker returns the completed prefix
// promptly — the cancel frame stops the worker after its in-flight run
// — with the 30s drain grace untouched (it remains a fallback for
// wedged workers and proto≤2 peers, never the steady-state cost of a
// Ctrl-C). Completed runs are not lost: the prefix is byte-identical to
// a local run of the same batch.
func TestRemoteCancelFastWithoutGrace(t *testing.T) {
	r := startLoopbackServe(t, 1)
	if r.Pipeline() != defaultPipeline {
		t.Fatalf("loopback worker negotiated pipeline %d, want proto-3 default %d", r.Pipeline(), defaultPipeline)
	}
	// Note: the drain grace is left at its 30s default on purpose.
	scens := testScenarios(t)
	var big []*scenario.Scenario
	for len(big) < 2000 {
		big = append(big, scens...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	outs, err := r.Run(ctx, &Batch{System: "minidb", Coverage: true, Scenarios: big})
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("cancelled run: err %v (completed %d), want context.Canceled — batch too fast for the cancel?", err, len(outs))
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancel took %v: the run leaned on the 30s drain grace instead of the cancel frame", elapsed)
	}
	completed := 0
	for _, o := range outs {
		if o == nil {
			break
		}
		completed++
	}
	if completed == 0 || completed >= len(big) {
		t.Fatalf("cancel completed %d of %d runs; want a partial prefix", completed, len(big))
	}
	// Zero completed runs lost or corrupted: the prefix matches a local
	// run of the identical batch.
	want, err := NewLocal(1).Run(context.Background(), &Batch{System: "minidb", Coverage: true, Scenarios: big[:completed]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalOutcomes(t, outs[:completed]), marshalOutcomes(t, want)) {
		t.Fatal("cancelled prefix diverges from a local run of the same scenarios")
	}
}

// TestRemotePipelinedConcurrentBatches: a protocol-3 connection carries
// several batches at once (the scheduler keeps Pipeline() in flight);
// concurrent Runs on one Remote must all complete and stay
// byte-identical to the local backend per batch.
func TestRemotePipelinedConcurrentBatches(t *testing.T) {
	r := startLoopbackServe(t, 2)
	if got := r.Pipeline(); got != defaultPipeline {
		t.Fatalf("Pipeline() = %d, want %d against a proto-3 worker", got, defaultPipeline)
	}
	scens := testScenarios(t)
	local := NewLocal(2)
	var wg sync.WaitGroup
	errs := make(chan error, defaultPipeline)
	for seed := int64(0); seed < int64(defaultPipeline); seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			got, err := r.Run(context.Background(), &Batch{System: "minidb", Seed: seed, Coverage: true, Scenarios: scens})
			if err != nil {
				errs <- fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			want, err := local.Run(context.Background(), &Batch{System: "minidb", Seed: seed, Coverage: true, Scenarios: scens})
			if err != nil {
				errs <- fmt.Errorf("seed %d local: %w", seed, err)
				return
			}
			g, _ := json.Marshal(got)
			w, _ := json.Marshal(want)
			if !bytes.Equal(g, w) {
				errs <- fmt.Errorf("seed %d: pipelined outcomes diverge from local", seed)
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
