package exec

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"lfi/internal/coverage"
)

// Remote is the client side of the wire protocol: one TCP connection to
// an `lfi serve` worker. A Remote dispatches one batch at a time (the
// Fleet gives each backend its own dispatcher); a broken connection
// fails the batch with BackendError and marks the backend dead — the
// scheduler requeues the batch's runs elsewhere, so killing a worker
// loses no work.
type Remote struct {
	addr  string
	hello helloInfo
	proto int // negotiated protocol: min(ours, worker's)

	// drainGrace bounds how long a cancelled Run keeps waiting for the
	// in-flight response before force-closing the connection. Remote
	// workers get no cancel message; draining the response is what
	// lands an interrupted batch's outcomes in the store just like a
	// local Ctrl-C.
	drainGrace time.Duration

	mu        sync.Mutex // serializes request/response exchanges
	nextID    uint64
	universes map[uint64]*coverage.Index // per-connection universe table

	// conn teardown has its own lock: a drain timeout must force-close
	// the connection while a call still holds mu blocked in a read —
	// closing the socket is exactly what unblocks that read.
	connMu sync.Mutex
	conn   net.Conn
}

// ProtoMismatchError reports a worker whose wire protocol this client
// cannot speak. The fleet assembler treats it as "drop this worker",
// not "abort the campaign" — the worker just needs a rebuild.
type ProtoMismatchError struct {
	Addr string
	Got  int
}

// Error renders the mismatch with the remedy.
func (e *ProtoMismatchError) Error() string {
	return fmt.Sprintf("exec: remote %s: worker speaks proto v%d, need v%d — rebuild worker",
		e.Addr, e.Got, protoVersion)
}

// defaultDrainGrace is generous: a batch is at most a few hundred
// simulated runs, each of which completes in milliseconds.
const defaultDrainGrace = 30 * time.Second

// Dial connects to an `lfi serve` worker and performs the hello
// exchange, negotiating the protocol version and learning the worker's
// capacity and registered systems. A protocol-1 worker is served with
// JSON run frames; a worker outside [protoOldest, protoVersion] fails
// with ProtoMismatchError so fleet assembly can drop the worker and
// keep the campaign.
func Dial(addr string) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("exec: remote %s: %w", addr, err)
	}
	r := &Remote{
		addr:       addr,
		conn:       conn,
		proto:      protoOldest, // hello itself is always JSON
		drainGrace: defaultDrainGrace,
		universes:  make(map[uint64]*coverage.Index),
	}
	var resp response
	if err := r.call("hello", nil, &resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("exec: remote %s: hello: %w", addr, err)
	}
	if resp.Hello == nil {
		conn.Close()
		return nil, fmt.Errorf("exec: remote %s: malformed hello response", addr)
	}
	if resp.Hello.Proto < protoOldest || resp.Hello.Proto > protoVersion {
		conn.Close()
		return nil, &ProtoMismatchError{Addr: addr, Got: resp.Hello.Proto}
	}
	r.hello = *resp.Hello
	r.proto = resp.Hello.Proto
	return r, nil
}

// SetDrainGrace bounds how long a cancelled Run keeps draining the
// in-flight batch before force-closing the connection (default 30s).
// Shorten it when losing an interrupted batch's tail beats waiting for
// a wedged worker; it never delays an uncancelled run.
func (r *Remote) SetDrainGrace(d time.Duration) {
	if d > 0 {
		r.drainGrace = d
	}
}

// Info reports the worker's advertised metadata. A remote worker is
// crash-isolated by construction: it is a different process on
// (possibly) a different machine.
func (r *Remote) Info() Info {
	return Info{Name: "remote(" + r.addr + ")", Kind: KindRemote, Capacity: r.hello.Capacity, Isolated: true}
}

// Systems returns the registered system names the worker advertised.
func (r *Remote) Systems() []string { return r.hello.Systems }

// Close shuts the connection down. It never waits on an in-flight
// call: closing the socket is what fails that call's blocked read.
func (r *Remote) Close() error {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}

// drop tears the connection down after a protocol failure.
func (r *Remote) drop() {
	r.Close()
}

// liveConn snapshots the connection for one exchange.
func (r *Remote) liveConn() net.Conn {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	return r.conn
}

// call sends one request and reads its response under the connection
// lock. Run requests to a protocol-2 worker go as binary frames (and
// come back binary, decoded against the connection's universe table);
// everything else is JSON. The caller holds no locks.
func (r *Remote) call(method string, b *Batch, resp *response) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	conn := r.liveConn()
	if conn == nil {
		return fmt.Errorf("connection closed")
	}
	r.nextID++
	id := r.nextID
	if method == "run" && r.proto >= 2 {
		if err := writeRawFrame(conn, encodeRunRequest(id, b)); err != nil {
			r.drop()
			return err
		}
		payload, err := readRawFrame(conn)
		if err != nil {
			r.drop()
			return err
		}
		if isBinaryFrame(payload, frameRunResp) {
			err = decodeRunResponse(payload, resp, r.universes)
		} else {
			err = json.Unmarshal(payload, resp)
		}
		if err != nil {
			r.drop()
			return err
		}
	} else {
		req := &request{ID: id, Method: method}
		if b != nil {
			req.Batch = toWire(b)
		}
		if err := writeFrame(conn, req); err != nil {
			r.drop()
			return err
		}
		if err := readFrame(conn, resp); err != nil {
			r.drop()
			return err
		}
	}
	if resp.ID != id {
		r.drop()
		return fmt.Errorf("response id %d for request %d", resp.ID, id)
	}
	return nil
}

// Run ships the batch to the worker and waits for its outcomes. On
// cancellation it keeps draining the in-flight response for up to the
// drain grace — outcomes that come back are returned with ctx.Err(), so
// the caller persists them exactly like a locally interrupted batch —
// then force-closes the connection. Transport failures (a killed
// worker) come back as BackendError: requeue, don't retry here.
func (r *Remote) Run(ctx context.Context, b *Batch) ([]*Outcome, error) {
	var resp response
	done := make(chan error, 1)
	go func() {
		done <- r.call("run", b, &resp)
	}()
	var err error
	select {
	case err = <-done:
	case <-ctx.Done():
		// Drain: the worker finishes the whole batch; give it the
		// grace period before declaring the backend dead.
		t := time.NewTimer(r.drainGrace)
		select {
		case err = <-done:
			t.Stop()
		case <-t.C:
			r.Close()
			<-done // roundTrip fails fast once the conn is closed
			return nil, &BackendError{Backend: r.Info().Name, Err: fmt.Errorf("cancelled and drain timed out")}
		}
		if err == nil {
			if resp.Error != "" {
				return r.observed(b, resp.Outcomes), fmt.Errorf("exec: remote %s: %s", r.addr, resp.Error)
			}
			return r.observed(b, resp.Outcomes), ctx.Err()
		}
	}
	if err != nil {
		return nil, &BackendError{Backend: r.Info().Name, Err: err}
	}
	if resp.Error != "" {
		// A batch problem (unknown system, bad scenario, mid-batch run
		// error), not a backend one; the worker's completed prefix
		// still comes back for the caller to fold.
		return r.observed(b, resp.Outcomes), fmt.Errorf("exec: remote %s: %s", r.addr, resp.Error)
	}
	return r.observed(b, resp.Outcomes), nil
}

// observed caps outcomes at the batch length and streams them to the
// batch observer.
func (r *Remote) observed(b *Batch, outs []*Outcome) []*Outcome {
	if len(outs) > len(b.Scenarios) {
		outs = outs[:len(b.Scenarios)]
	}
	if b.Observe != nil {
		for i, o := range outs {
			b.Observe(i, o)
		}
	}
	return outs
}
